# Empty compiler generated dependencies file for example_fec_reliable_link.
# This may be replaced when dependencies are built.
