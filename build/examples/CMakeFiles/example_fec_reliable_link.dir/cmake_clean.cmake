file(REMOVE_RECURSE
  "CMakeFiles/example_fec_reliable_link.dir/fec_reliable_link.cpp.o"
  "CMakeFiles/example_fec_reliable_link.dir/fec_reliable_link.cpp.o.d"
  "example_fec_reliable_link"
  "example_fec_reliable_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fec_reliable_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
