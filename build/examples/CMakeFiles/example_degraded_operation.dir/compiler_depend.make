# Empty compiler generated dependencies file for example_degraded_operation.
# This may be replaced when dependencies are built.
