file(REMOVE_RECURSE
  "CMakeFiles/example_degraded_operation.dir/degraded_operation.cpp.o"
  "CMakeFiles/example_degraded_operation.dir/degraded_operation.cpp.o.d"
  "example_degraded_operation"
  "example_degraded_operation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_degraded_operation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
