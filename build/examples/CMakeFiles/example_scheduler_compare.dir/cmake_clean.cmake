file(REMOVE_RECURSE
  "CMakeFiles/example_scheduler_compare.dir/scheduler_compare.cpp.o"
  "CMakeFiles/example_scheduler_compare.dir/scheduler_compare.cpp.o.d"
  "example_scheduler_compare"
  "example_scheduler_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_scheduler_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
