# Empty compiler generated dependencies file for example_scheduler_compare.
# This may be replaced when dependencies are built.
