# Empty dependencies file for example_fabric_2048.
# This may be replaced when dependencies are built.
