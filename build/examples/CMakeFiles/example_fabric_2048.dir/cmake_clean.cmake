file(REMOVE_RECURSE
  "CMakeFiles/example_fabric_2048.dir/fabric_2048.cpp.o"
  "CMakeFiles/example_fabric_2048.dir/fabric_2048.cpp.o.d"
  "example_fabric_2048"
  "example_fabric_2048.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fabric_2048.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
