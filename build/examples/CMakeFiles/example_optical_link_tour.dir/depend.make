# Empty dependencies file for example_optical_link_tour.
# This may be replaced when dependencies are built.
