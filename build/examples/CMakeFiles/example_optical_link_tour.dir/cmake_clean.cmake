file(REMOVE_RECURSE
  "CMakeFiles/example_optical_link_tour.dir/optical_link_tour.cpp.o"
  "CMakeFiles/example_optical_link_tour.dir/optical_link_tour.cpp.o.d"
  "example_optical_link_tour"
  "example_optical_link_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_optical_link_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
