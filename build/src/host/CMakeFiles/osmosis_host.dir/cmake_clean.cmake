file(REMOVE_RECURSE
  "CMakeFiles/osmosis_host.dir/hca.cpp.o"
  "CMakeFiles/osmosis_host.dir/hca.cpp.o.d"
  "CMakeFiles/osmosis_host.dir/message.cpp.o"
  "CMakeFiles/osmosis_host.dir/message.cpp.o.d"
  "CMakeFiles/osmosis_host.dir/message_sim.cpp.o"
  "CMakeFiles/osmosis_host.dir/message_sim.cpp.o.d"
  "CMakeFiles/osmosis_host.dir/patterns.cpp.o"
  "CMakeFiles/osmosis_host.dir/patterns.cpp.o.d"
  "libosmosis_host.a"
  "libosmosis_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osmosis_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
