
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/host/hca.cpp" "src/host/CMakeFiles/osmosis_host.dir/hca.cpp.o" "gcc" "src/host/CMakeFiles/osmosis_host.dir/hca.cpp.o.d"
  "/root/repo/src/host/message.cpp" "src/host/CMakeFiles/osmosis_host.dir/message.cpp.o" "gcc" "src/host/CMakeFiles/osmosis_host.dir/message.cpp.o.d"
  "/root/repo/src/host/message_sim.cpp" "src/host/CMakeFiles/osmosis_host.dir/message_sim.cpp.o" "gcc" "src/host/CMakeFiles/osmosis_host.dir/message_sim.cpp.o.d"
  "/root/repo/src/host/patterns.cpp" "src/host/CMakeFiles/osmosis_host.dir/patterns.cpp.o" "gcc" "src/host/CMakeFiles/osmosis_host.dir/patterns.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/osmosis_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/osmosis_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sw/CMakeFiles/osmosis_sw.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/osmosis_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
