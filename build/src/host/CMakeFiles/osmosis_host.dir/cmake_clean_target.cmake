file(REMOVE_RECURSE
  "libosmosis_host.a"
)
