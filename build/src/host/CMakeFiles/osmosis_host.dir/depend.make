# Empty dependencies file for osmosis_host.
# This may be replaced when dependencies are built.
