file(REMOVE_RECURSE
  "CMakeFiles/osmosis_core.dir/config.cpp.o"
  "CMakeFiles/osmosis_core.dir/config.cpp.o.d"
  "CMakeFiles/osmosis_core.dir/latency_budget.cpp.o"
  "CMakeFiles/osmosis_core.dir/latency_budget.cpp.o.d"
  "CMakeFiles/osmosis_core.dir/osmosis_system.cpp.o"
  "CMakeFiles/osmosis_core.dir/osmosis_system.cpp.o.d"
  "libosmosis_core.a"
  "libosmosis_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osmosis_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
