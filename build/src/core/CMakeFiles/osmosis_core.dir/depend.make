# Empty dependencies file for osmosis_core.
# This may be replaced when dependencies are built.
