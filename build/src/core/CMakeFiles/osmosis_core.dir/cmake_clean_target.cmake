file(REMOVE_RECURSE
  "libosmosis_core.a"
)
