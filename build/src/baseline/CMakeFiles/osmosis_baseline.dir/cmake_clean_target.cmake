file(REMOVE_RECURSE
  "libosmosis_baseline.a"
)
