file(REMOVE_RECURSE
  "CMakeFiles/osmosis_baseline.dir/birkhoff.cpp.o"
  "CMakeFiles/osmosis_baseline.dir/birkhoff.cpp.o.d"
  "CMakeFiles/osmosis_baseline.dir/burst_switch.cpp.o"
  "CMakeFiles/osmosis_baseline.dir/burst_switch.cpp.o.d"
  "CMakeFiles/osmosis_baseline.dir/cioq.cpp.o"
  "CMakeFiles/osmosis_baseline.dir/cioq.cpp.o.d"
  "CMakeFiles/osmosis_baseline.dir/data_vortex.cpp.o"
  "CMakeFiles/osmosis_baseline.dir/data_vortex.cpp.o.d"
  "CMakeFiles/osmosis_baseline.dir/oq_switch.cpp.o"
  "CMakeFiles/osmosis_baseline.dir/oq_switch.cpp.o.d"
  "libosmosis_baseline.a"
  "libosmosis_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osmosis_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
