
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/birkhoff.cpp" "src/baseline/CMakeFiles/osmosis_baseline.dir/birkhoff.cpp.o" "gcc" "src/baseline/CMakeFiles/osmosis_baseline.dir/birkhoff.cpp.o.d"
  "/root/repo/src/baseline/burst_switch.cpp" "src/baseline/CMakeFiles/osmosis_baseline.dir/burst_switch.cpp.o" "gcc" "src/baseline/CMakeFiles/osmosis_baseline.dir/burst_switch.cpp.o.d"
  "/root/repo/src/baseline/cioq.cpp" "src/baseline/CMakeFiles/osmosis_baseline.dir/cioq.cpp.o" "gcc" "src/baseline/CMakeFiles/osmosis_baseline.dir/cioq.cpp.o.d"
  "/root/repo/src/baseline/data_vortex.cpp" "src/baseline/CMakeFiles/osmosis_baseline.dir/data_vortex.cpp.o" "gcc" "src/baseline/CMakeFiles/osmosis_baseline.dir/data_vortex.cpp.o.d"
  "/root/repo/src/baseline/oq_switch.cpp" "src/baseline/CMakeFiles/osmosis_baseline.dir/oq_switch.cpp.o" "gcc" "src/baseline/CMakeFiles/osmosis_baseline.dir/oq_switch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/osmosis_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/osmosis_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sw/CMakeFiles/osmosis_sw.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/osmosis_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
