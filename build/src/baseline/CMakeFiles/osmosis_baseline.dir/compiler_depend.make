# Empty compiler generated dependencies file for osmosis_baseline.
# This may be replaced when dependencies are built.
