file(REMOVE_RECURSE
  "CMakeFiles/osmosis_sw.dir/event_switch_sim.cpp.o"
  "CMakeFiles/osmosis_sw.dir/event_switch_sim.cpp.o.d"
  "CMakeFiles/osmosis_sw.dir/flppr.cpp.o"
  "CMakeFiles/osmosis_sw.dir/flppr.cpp.o.d"
  "CMakeFiles/osmosis_sw.dir/islip.cpp.o"
  "CMakeFiles/osmosis_sw.dir/islip.cpp.o.d"
  "CMakeFiles/osmosis_sw.dir/pim.cpp.o"
  "CMakeFiles/osmosis_sw.dir/pim.cpp.o.d"
  "CMakeFiles/osmosis_sw.dir/pipelined_islip.cpp.o"
  "CMakeFiles/osmosis_sw.dir/pipelined_islip.cpp.o.d"
  "CMakeFiles/osmosis_sw.dir/portset.cpp.o"
  "CMakeFiles/osmosis_sw.dir/portset.cpp.o.d"
  "CMakeFiles/osmosis_sw.dir/scheduler.cpp.o"
  "CMakeFiles/osmosis_sw.dir/scheduler.cpp.o.d"
  "CMakeFiles/osmosis_sw.dir/switch_sim.cpp.o"
  "CMakeFiles/osmosis_sw.dir/switch_sim.cpp.o.d"
  "CMakeFiles/osmosis_sw.dir/tdm.cpp.o"
  "CMakeFiles/osmosis_sw.dir/tdm.cpp.o.d"
  "CMakeFiles/osmosis_sw.dir/voq.cpp.o"
  "CMakeFiles/osmosis_sw.dir/voq.cpp.o.d"
  "CMakeFiles/osmosis_sw.dir/wfa.cpp.o"
  "CMakeFiles/osmosis_sw.dir/wfa.cpp.o.d"
  "libosmosis_sw.a"
  "libosmosis_sw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osmosis_sw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
