
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sw/event_switch_sim.cpp" "src/sw/CMakeFiles/osmosis_sw.dir/event_switch_sim.cpp.o" "gcc" "src/sw/CMakeFiles/osmosis_sw.dir/event_switch_sim.cpp.o.d"
  "/root/repo/src/sw/flppr.cpp" "src/sw/CMakeFiles/osmosis_sw.dir/flppr.cpp.o" "gcc" "src/sw/CMakeFiles/osmosis_sw.dir/flppr.cpp.o.d"
  "/root/repo/src/sw/islip.cpp" "src/sw/CMakeFiles/osmosis_sw.dir/islip.cpp.o" "gcc" "src/sw/CMakeFiles/osmosis_sw.dir/islip.cpp.o.d"
  "/root/repo/src/sw/pim.cpp" "src/sw/CMakeFiles/osmosis_sw.dir/pim.cpp.o" "gcc" "src/sw/CMakeFiles/osmosis_sw.dir/pim.cpp.o.d"
  "/root/repo/src/sw/pipelined_islip.cpp" "src/sw/CMakeFiles/osmosis_sw.dir/pipelined_islip.cpp.o" "gcc" "src/sw/CMakeFiles/osmosis_sw.dir/pipelined_islip.cpp.o.d"
  "/root/repo/src/sw/portset.cpp" "src/sw/CMakeFiles/osmosis_sw.dir/portset.cpp.o" "gcc" "src/sw/CMakeFiles/osmosis_sw.dir/portset.cpp.o.d"
  "/root/repo/src/sw/scheduler.cpp" "src/sw/CMakeFiles/osmosis_sw.dir/scheduler.cpp.o" "gcc" "src/sw/CMakeFiles/osmosis_sw.dir/scheduler.cpp.o.d"
  "/root/repo/src/sw/switch_sim.cpp" "src/sw/CMakeFiles/osmosis_sw.dir/switch_sim.cpp.o" "gcc" "src/sw/CMakeFiles/osmosis_sw.dir/switch_sim.cpp.o.d"
  "/root/repo/src/sw/tdm.cpp" "src/sw/CMakeFiles/osmosis_sw.dir/tdm.cpp.o" "gcc" "src/sw/CMakeFiles/osmosis_sw.dir/tdm.cpp.o.d"
  "/root/repo/src/sw/voq.cpp" "src/sw/CMakeFiles/osmosis_sw.dir/voq.cpp.o" "gcc" "src/sw/CMakeFiles/osmosis_sw.dir/voq.cpp.o.d"
  "/root/repo/src/sw/wfa.cpp" "src/sw/CMakeFiles/osmosis_sw.dir/wfa.cpp.o" "gcc" "src/sw/CMakeFiles/osmosis_sw.dir/wfa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/osmosis_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/osmosis_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/osmosis_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
