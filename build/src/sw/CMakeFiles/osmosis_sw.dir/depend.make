# Empty dependencies file for osmosis_sw.
# This may be replaced when dependencies are built.
