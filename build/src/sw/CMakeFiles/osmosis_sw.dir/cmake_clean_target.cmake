file(REMOVE_RECURSE
  "libosmosis_sw.a"
)
