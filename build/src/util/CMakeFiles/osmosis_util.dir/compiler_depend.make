# Empty compiler generated dependencies file for osmosis_util.
# This may be replaced when dependencies are built.
