file(REMOVE_RECURSE
  "CMakeFiles/osmosis_util.dir/cli.cpp.o"
  "CMakeFiles/osmosis_util.dir/cli.cpp.o.d"
  "CMakeFiles/osmosis_util.dir/log.cpp.o"
  "CMakeFiles/osmosis_util.dir/log.cpp.o.d"
  "CMakeFiles/osmosis_util.dir/table.cpp.o"
  "CMakeFiles/osmosis_util.dir/table.cpp.o.d"
  "libosmosis_util.a"
  "libosmosis_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osmosis_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
