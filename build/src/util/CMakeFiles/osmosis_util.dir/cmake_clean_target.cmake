file(REMOVE_RECURSE
  "libosmosis_util.a"
)
