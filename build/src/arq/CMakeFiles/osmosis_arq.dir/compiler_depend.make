# Empty compiler generated dependencies file for osmosis_arq.
# This may be replaced when dependencies are built.
