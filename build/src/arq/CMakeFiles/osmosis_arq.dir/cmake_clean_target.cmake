file(REMOVE_RECURSE
  "libosmosis_arq.a"
)
