
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arq/go_back_n.cpp" "src/arq/CMakeFiles/osmosis_arq.dir/go_back_n.cpp.o" "gcc" "src/arq/CMakeFiles/osmosis_arq.dir/go_back_n.cpp.o.d"
  "/root/repo/src/arq/reliable_control.cpp" "src/arq/CMakeFiles/osmosis_arq.dir/reliable_control.cpp.o" "gcc" "src/arq/CMakeFiles/osmosis_arq.dir/reliable_control.cpp.o.d"
  "/root/repo/src/arq/residual.cpp" "src/arq/CMakeFiles/osmosis_arq.dir/residual.cpp.o" "gcc" "src/arq/CMakeFiles/osmosis_arq.dir/residual.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/osmosis_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/osmosis_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fec/CMakeFiles/osmosis_fec.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/osmosis_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
