file(REMOVE_RECURSE
  "CMakeFiles/osmosis_arq.dir/go_back_n.cpp.o"
  "CMakeFiles/osmosis_arq.dir/go_back_n.cpp.o.d"
  "CMakeFiles/osmosis_arq.dir/reliable_control.cpp.o"
  "CMakeFiles/osmosis_arq.dir/reliable_control.cpp.o.d"
  "CMakeFiles/osmosis_arq.dir/residual.cpp.o"
  "CMakeFiles/osmosis_arq.dir/residual.cpp.o.d"
  "libosmosis_arq.a"
  "libosmosis_arq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osmosis_arq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
