file(REMOVE_RECURSE
  "libosmosis_sim.a"
)
