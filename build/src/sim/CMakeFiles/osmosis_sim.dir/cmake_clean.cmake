file(REMOVE_RECURSE
  "CMakeFiles/osmosis_sim.dir/event_queue.cpp.o"
  "CMakeFiles/osmosis_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/osmosis_sim.dir/rng.cpp.o"
  "CMakeFiles/osmosis_sim.dir/rng.cpp.o.d"
  "CMakeFiles/osmosis_sim.dir/stats.cpp.o"
  "CMakeFiles/osmosis_sim.dir/stats.cpp.o.d"
  "CMakeFiles/osmosis_sim.dir/traffic.cpp.o"
  "CMakeFiles/osmosis_sim.dir/traffic.cpp.o.d"
  "libosmosis_sim.a"
  "libosmosis_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osmosis_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
