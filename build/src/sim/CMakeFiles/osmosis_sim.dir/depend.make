# Empty dependencies file for osmosis_sim.
# This may be replaced when dependencies are built.
