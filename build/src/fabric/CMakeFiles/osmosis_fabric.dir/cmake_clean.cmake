file(REMOVE_RECURSE
  "CMakeFiles/osmosis_fabric.dir/clos_sim.cpp.o"
  "CMakeFiles/osmosis_fabric.dir/clos_sim.cpp.o.d"
  "CMakeFiles/osmosis_fabric.dir/fabric_sim.cpp.o"
  "CMakeFiles/osmosis_fabric.dir/fabric_sim.cpp.o.d"
  "CMakeFiles/osmosis_fabric.dir/fat_tree.cpp.o"
  "CMakeFiles/osmosis_fabric.dir/fat_tree.cpp.o.d"
  "CMakeFiles/osmosis_fabric.dir/multiplane.cpp.o"
  "CMakeFiles/osmosis_fabric.dir/multiplane.cpp.o.d"
  "CMakeFiles/osmosis_fabric.dir/placement.cpp.o"
  "CMakeFiles/osmosis_fabric.dir/placement.cpp.o.d"
  "libosmosis_fabric.a"
  "libosmosis_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osmosis_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
