file(REMOVE_RECURSE
  "libosmosis_fabric.a"
)
