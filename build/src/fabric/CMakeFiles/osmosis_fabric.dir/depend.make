# Empty dependencies file for osmosis_fabric.
# This may be replaced when dependencies are built.
