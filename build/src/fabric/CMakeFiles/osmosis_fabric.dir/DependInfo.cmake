
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fabric/clos_sim.cpp" "src/fabric/CMakeFiles/osmosis_fabric.dir/clos_sim.cpp.o" "gcc" "src/fabric/CMakeFiles/osmosis_fabric.dir/clos_sim.cpp.o.d"
  "/root/repo/src/fabric/fabric_sim.cpp" "src/fabric/CMakeFiles/osmosis_fabric.dir/fabric_sim.cpp.o" "gcc" "src/fabric/CMakeFiles/osmosis_fabric.dir/fabric_sim.cpp.o.d"
  "/root/repo/src/fabric/fat_tree.cpp" "src/fabric/CMakeFiles/osmosis_fabric.dir/fat_tree.cpp.o" "gcc" "src/fabric/CMakeFiles/osmosis_fabric.dir/fat_tree.cpp.o.d"
  "/root/repo/src/fabric/multiplane.cpp" "src/fabric/CMakeFiles/osmosis_fabric.dir/multiplane.cpp.o" "gcc" "src/fabric/CMakeFiles/osmosis_fabric.dir/multiplane.cpp.o.d"
  "/root/repo/src/fabric/placement.cpp" "src/fabric/CMakeFiles/osmosis_fabric.dir/placement.cpp.o" "gcc" "src/fabric/CMakeFiles/osmosis_fabric.dir/placement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/osmosis_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/osmosis_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sw/CMakeFiles/osmosis_sw.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/osmosis_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
