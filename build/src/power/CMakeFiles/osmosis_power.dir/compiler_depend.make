# Empty compiler generated dependencies file for osmosis_power.
# This may be replaced when dependencies are built.
