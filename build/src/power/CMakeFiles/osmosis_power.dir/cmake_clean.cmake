file(REMOVE_RECURSE
  "CMakeFiles/osmosis_power.dir/power_model.cpp.o"
  "CMakeFiles/osmosis_power.dir/power_model.cpp.o.d"
  "libosmosis_power.a"
  "libosmosis_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osmosis_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
