file(REMOVE_RECURSE
  "libosmosis_power.a"
)
