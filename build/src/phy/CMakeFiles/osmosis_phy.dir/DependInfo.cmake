
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/burst_rx.cpp" "src/phy/CMakeFiles/osmosis_phy.dir/burst_rx.cpp.o" "gcc" "src/phy/CMakeFiles/osmosis_phy.dir/burst_rx.cpp.o.d"
  "/root/repo/src/phy/cascade.cpp" "src/phy/CMakeFiles/osmosis_phy.dir/cascade.cpp.o" "gcc" "src/phy/CMakeFiles/osmosis_phy.dir/cascade.cpp.o.d"
  "/root/repo/src/phy/crossbar_optical.cpp" "src/phy/CMakeFiles/osmosis_phy.dir/crossbar_optical.cpp.o" "gcc" "src/phy/CMakeFiles/osmosis_phy.dir/crossbar_optical.cpp.o.d"
  "/root/repo/src/phy/guard_time.cpp" "src/phy/CMakeFiles/osmosis_phy.dir/guard_time.cpp.o" "gcc" "src/phy/CMakeFiles/osmosis_phy.dir/guard_time.cpp.o.d"
  "/root/repo/src/phy/link_budget.cpp" "src/phy/CMakeFiles/osmosis_phy.dir/link_budget.cpp.o" "gcc" "src/phy/CMakeFiles/osmosis_phy.dir/link_budget.cpp.o.d"
  "/root/repo/src/phy/soa.cpp" "src/phy/CMakeFiles/osmosis_phy.dir/soa.cpp.o" "gcc" "src/phy/CMakeFiles/osmosis_phy.dir/soa.cpp.o.d"
  "/root/repo/src/phy/sync.cpp" "src/phy/CMakeFiles/osmosis_phy.dir/sync.cpp.o" "gcc" "src/phy/CMakeFiles/osmosis_phy.dir/sync.cpp.o.d"
  "/root/repo/src/phy/technology.cpp" "src/phy/CMakeFiles/osmosis_phy.dir/technology.cpp.o" "gcc" "src/phy/CMakeFiles/osmosis_phy.dir/technology.cpp.o.d"
  "/root/repo/src/phy/wdm.cpp" "src/phy/CMakeFiles/osmosis_phy.dir/wdm.cpp.o" "gcc" "src/phy/CMakeFiles/osmosis_phy.dir/wdm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/osmosis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
