# Empty compiler generated dependencies file for osmosis_phy.
# This may be replaced when dependencies are built.
