file(REMOVE_RECURSE
  "libosmosis_phy.a"
)
