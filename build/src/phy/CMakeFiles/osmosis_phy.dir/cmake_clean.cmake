file(REMOVE_RECURSE
  "CMakeFiles/osmosis_phy.dir/burst_rx.cpp.o"
  "CMakeFiles/osmosis_phy.dir/burst_rx.cpp.o.d"
  "CMakeFiles/osmosis_phy.dir/cascade.cpp.o"
  "CMakeFiles/osmosis_phy.dir/cascade.cpp.o.d"
  "CMakeFiles/osmosis_phy.dir/crossbar_optical.cpp.o"
  "CMakeFiles/osmosis_phy.dir/crossbar_optical.cpp.o.d"
  "CMakeFiles/osmosis_phy.dir/guard_time.cpp.o"
  "CMakeFiles/osmosis_phy.dir/guard_time.cpp.o.d"
  "CMakeFiles/osmosis_phy.dir/link_budget.cpp.o"
  "CMakeFiles/osmosis_phy.dir/link_budget.cpp.o.d"
  "CMakeFiles/osmosis_phy.dir/soa.cpp.o"
  "CMakeFiles/osmosis_phy.dir/soa.cpp.o.d"
  "CMakeFiles/osmosis_phy.dir/sync.cpp.o"
  "CMakeFiles/osmosis_phy.dir/sync.cpp.o.d"
  "CMakeFiles/osmosis_phy.dir/technology.cpp.o"
  "CMakeFiles/osmosis_phy.dir/technology.cpp.o.d"
  "CMakeFiles/osmosis_phy.dir/wdm.cpp.o"
  "CMakeFiles/osmosis_phy.dir/wdm.cpp.o.d"
  "libosmosis_phy.a"
  "libosmosis_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osmosis_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
