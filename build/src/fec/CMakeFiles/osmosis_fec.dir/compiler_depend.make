# Empty compiler generated dependencies file for osmosis_fec.
# This may be replaced when dependencies are built.
