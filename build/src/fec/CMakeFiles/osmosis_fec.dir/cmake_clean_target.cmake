file(REMOVE_RECURSE
  "libosmosis_fec.a"
)
