file(REMOVE_RECURSE
  "CMakeFiles/osmosis_fec.dir/channel.cpp.o"
  "CMakeFiles/osmosis_fec.dir/channel.cpp.o.d"
  "CMakeFiles/osmosis_fec.dir/gf256.cpp.o"
  "CMakeFiles/osmosis_fec.dir/gf256.cpp.o.d"
  "CMakeFiles/osmosis_fec.dir/hamming272.cpp.o"
  "CMakeFiles/osmosis_fec.dir/hamming272.cpp.o.d"
  "CMakeFiles/osmosis_fec.dir/interleave.cpp.o"
  "CMakeFiles/osmosis_fec.dir/interleave.cpp.o.d"
  "libosmosis_fec.a"
  "libosmosis_fec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osmosis_fec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
