
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fec/channel.cpp" "src/fec/CMakeFiles/osmosis_fec.dir/channel.cpp.o" "gcc" "src/fec/CMakeFiles/osmosis_fec.dir/channel.cpp.o.d"
  "/root/repo/src/fec/gf256.cpp" "src/fec/CMakeFiles/osmosis_fec.dir/gf256.cpp.o" "gcc" "src/fec/CMakeFiles/osmosis_fec.dir/gf256.cpp.o.d"
  "/root/repo/src/fec/hamming272.cpp" "src/fec/CMakeFiles/osmosis_fec.dir/hamming272.cpp.o" "gcc" "src/fec/CMakeFiles/osmosis_fec.dir/hamming272.cpp.o.d"
  "/root/repo/src/fec/interleave.cpp" "src/fec/CMakeFiles/osmosis_fec.dir/interleave.cpp.o" "gcc" "src/fec/CMakeFiles/osmosis_fec.dir/interleave.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/osmosis_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/osmosis_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
