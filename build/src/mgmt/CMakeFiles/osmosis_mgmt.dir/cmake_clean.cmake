file(REMOVE_RECURSE
  "CMakeFiles/osmosis_mgmt.dir/config_check.cpp.o"
  "CMakeFiles/osmosis_mgmt.dir/config_check.cpp.o.d"
  "CMakeFiles/osmosis_mgmt.dir/counters.cpp.o"
  "CMakeFiles/osmosis_mgmt.dir/counters.cpp.o.d"
  "CMakeFiles/osmosis_mgmt.dir/health.cpp.o"
  "CMakeFiles/osmosis_mgmt.dir/health.cpp.o.d"
  "libosmosis_mgmt.a"
  "libosmosis_mgmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osmosis_mgmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
