# Empty dependencies file for osmosis_mgmt.
# This may be replaced when dependencies are built.
