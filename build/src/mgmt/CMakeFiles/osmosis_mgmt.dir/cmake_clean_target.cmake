file(REMOVE_RECURSE
  "libosmosis_mgmt.a"
)
