# Empty dependencies file for clos_test.
# This may be replaced when dependencies are built.
