file(REMOVE_RECURSE
  "CMakeFiles/clos_test.dir/clos_test.cpp.o"
  "CMakeFiles/clos_test.dir/clos_test.cpp.o.d"
  "clos_test"
  "clos_test.pdb"
  "clos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
