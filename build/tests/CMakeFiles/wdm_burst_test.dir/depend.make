# Empty dependencies file for wdm_burst_test.
# This may be replaced when dependencies are built.
