file(REMOVE_RECURSE
  "CMakeFiles/wdm_burst_test.dir/wdm_burst_test.cpp.o"
  "CMakeFiles/wdm_burst_test.dir/wdm_burst_test.cpp.o.d"
  "wdm_burst_test"
  "wdm_burst_test.pdb"
  "wdm_burst_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wdm_burst_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
