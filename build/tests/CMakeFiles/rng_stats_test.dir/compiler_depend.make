# Empty compiler generated dependencies file for rng_stats_test.
# This may be replaced when dependencies are built.
