file(REMOVE_RECURSE
  "CMakeFiles/crossbar_optical_test.dir/crossbar_optical_test.cpp.o"
  "CMakeFiles/crossbar_optical_test.dir/crossbar_optical_test.cpp.o.d"
  "crossbar_optical_test"
  "crossbar_optical_test.pdb"
  "crossbar_optical_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossbar_optical_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
