# Empty dependencies file for crossbar_optical_test.
# This may be replaced when dependencies are built.
