
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/traffic_test.cpp" "tests/CMakeFiles/traffic_test.dir/traffic_test.cpp.o" "gcc" "tests/CMakeFiles/traffic_test.dir/traffic_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/host/CMakeFiles/osmosis_host.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/osmosis_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/mgmt/CMakeFiles/osmosis_mgmt.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/osmosis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/arq/CMakeFiles/osmosis_arq.dir/DependInfo.cmake"
  "/root/repo/build/src/fec/CMakeFiles/osmosis_fec.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/osmosis_power.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/osmosis_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/sw/CMakeFiles/osmosis_sw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/osmosis_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/osmosis_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/osmosis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
