# Empty compiler generated dependencies file for multiplane_test.
# This may be replaced when dependencies are built.
