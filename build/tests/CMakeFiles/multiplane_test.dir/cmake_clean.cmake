file(REMOVE_RECURSE
  "CMakeFiles/multiplane_test.dir/multiplane_test.cpp.o"
  "CMakeFiles/multiplane_test.dir/multiplane_test.cpp.o.d"
  "multiplane_test"
  "multiplane_test.pdb"
  "multiplane_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiplane_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
