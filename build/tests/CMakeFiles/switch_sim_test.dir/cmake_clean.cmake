file(REMOVE_RECURSE
  "CMakeFiles/switch_sim_test.dir/switch_sim_test.cpp.o"
  "CMakeFiles/switch_sim_test.dir/switch_sim_test.cpp.o.d"
  "switch_sim_test"
  "switch_sim_test.pdb"
  "switch_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switch_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
