# Empty compiler generated dependencies file for switch_sim_test.
# This may be replaced when dependencies are built.
