file(REMOVE_RECURSE
  "CMakeFiles/event_switch_test.dir/event_switch_test.cpp.o"
  "CMakeFiles/event_switch_test.dir/event_switch_test.cpp.o.d"
  "event_switch_test"
  "event_switch_test.pdb"
  "event_switch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_switch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
