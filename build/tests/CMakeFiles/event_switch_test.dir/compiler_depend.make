# Empty compiler generated dependencies file for event_switch_test.
# This may be replaced when dependencies are built.
