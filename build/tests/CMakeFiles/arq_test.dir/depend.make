# Empty dependencies file for arq_test.
# This may be replaced when dependencies are built.
