file(REMOVE_RECURSE
  "CMakeFiles/portset_test.dir/portset_test.cpp.o"
  "CMakeFiles/portset_test.dir/portset_test.cpp.o.d"
  "portset_test"
  "portset_test.pdb"
  "portset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
