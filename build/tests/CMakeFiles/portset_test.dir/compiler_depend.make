# Empty compiler generated dependencies file for portset_test.
# This may be replaced when dependencies are built.
