# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/rng_stats_test[1]_include.cmake")
include("/root/repo/build/tests/event_queue_test[1]_include.cmake")
include("/root/repo/build/tests/traffic_test[1]_include.cmake")
include("/root/repo/build/tests/portset_test[1]_include.cmake")
include("/root/repo/build/tests/voq_test[1]_include.cmake")
include("/root/repo/build/tests/phy_test[1]_include.cmake")
include("/root/repo/build/tests/wdm_burst_test[1]_include.cmake")
include("/root/repo/build/tests/crossbar_optical_test[1]_include.cmake")
include("/root/repo/build/tests/fec_test[1]_include.cmake")
include("/root/repo/build/tests/arq_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/switch_sim_test[1]_include.cmake")
include("/root/repo/build/tests/event_switch_test[1]_include.cmake")
include("/root/repo/build/tests/host_test[1]_include.cmake")
include("/root/repo/build/tests/failures_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_test[1]_include.cmake")
include("/root/repo/build/tests/clos_test[1]_include.cmake")
include("/root/repo/build/tests/multiplane_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/power_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/mgmt_test[1]_include.cmake")
