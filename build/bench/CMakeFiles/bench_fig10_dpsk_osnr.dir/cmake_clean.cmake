file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_dpsk_osnr.dir/bench_fig10_dpsk_osnr.cpp.o"
  "CMakeFiles/bench_fig10_dpsk_osnr.dir/bench_fig10_dpsk_osnr.cpp.o.d"
  "bench_fig10_dpsk_osnr"
  "bench_fig10_dpsk_osnr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_dpsk_osnr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
