# Empty compiler generated dependencies file for bench_fig10_dpsk_osnr.
# This may be replaced when dependencies are built.
