file(REMOVE_RECURSE
  "CMakeFiles/bench_power_scaling.dir/bench_power_scaling.cpp.o"
  "CMakeFiles/bench_power_scaling.dir/bench_power_scaling.cpp.o.d"
  "bench_power_scaling"
  "bench_power_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_power_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
