# Empty dependencies file for bench_fig1_single_stage_latency.
# This may be replaced when dependencies are built.
