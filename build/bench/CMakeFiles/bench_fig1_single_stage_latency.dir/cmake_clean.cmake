file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_single_stage_latency.dir/bench_fig1_single_stage_latency.cpp.o"
  "CMakeFiles/bench_fig1_single_stage_latency.dir/bench_fig1_single_stage_latency.cpp.o.d"
  "bench_fig1_single_stage_latency"
  "bench_fig1_single_stage_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_single_stage_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
