# Empty compiler generated dependencies file for bench_app_latency.
# This may be replaced when dependencies are built.
