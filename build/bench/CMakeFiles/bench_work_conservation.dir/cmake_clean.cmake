file(REMOVE_RECURSE
  "CMakeFiles/bench_work_conservation.dir/bench_work_conservation.cpp.o"
  "CMakeFiles/bench_work_conservation.dir/bench_work_conservation.cpp.o.d"
  "bench_work_conservation"
  "bench_work_conservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_work_conservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
