# Empty dependencies file for bench_work_conservation.
# This may be replaced when dependencies are built.
