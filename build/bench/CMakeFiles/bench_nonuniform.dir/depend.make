# Empty dependencies file for bench_nonuniform.
# This may be replaced when dependencies are built.
