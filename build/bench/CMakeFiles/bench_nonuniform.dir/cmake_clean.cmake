file(REMOVE_RECURSE
  "CMakeFiles/bench_nonuniform.dir/bench_nonuniform.cpp.o"
  "CMakeFiles/bench_nonuniform.dir/bench_nonuniform.cpp.o.d"
  "bench_nonuniform"
  "bench_nonuniform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nonuniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
