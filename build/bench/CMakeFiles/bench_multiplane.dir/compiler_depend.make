# Empty compiler generated dependencies file for bench_multiplane.
# This may be replaced when dependencies are built.
