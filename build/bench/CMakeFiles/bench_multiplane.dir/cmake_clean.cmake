file(REMOVE_RECURSE
  "CMakeFiles/bench_multiplane.dir/bench_multiplane.cpp.o"
  "CMakeFiles/bench_multiplane.dir/bench_multiplane.cpp.o.d"
  "bench_multiplane"
  "bench_multiplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
