file(REMOVE_RECURSE
  "CMakeFiles/bench_vi_b_latency_budget.dir/bench_vi_b_latency_budget.cpp.o"
  "CMakeFiles/bench_vi_b_latency_budget.dir/bench_vi_b_latency_budget.cpp.o.d"
  "bench_vi_b_latency_budget"
  "bench_vi_b_latency_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vi_b_latency_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
