# Empty compiler generated dependencies file for bench_vi_b_latency_budget.
# This may be replaced when dependencies are built.
