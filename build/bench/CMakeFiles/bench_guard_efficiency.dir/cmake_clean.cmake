file(REMOVE_RECURSE
  "CMakeFiles/bench_guard_efficiency.dir/bench_guard_efficiency.cpp.o"
  "CMakeFiles/bench_guard_efficiency.dir/bench_guard_efficiency.cpp.o.d"
  "bench_guard_efficiency"
  "bench_guard_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_guard_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
