# Empty compiler generated dependencies file for bench_guard_efficiency.
# This may be replaced when dependencies are built.
