# Empty compiler generated dependencies file for bench_vi_d_architectures.
# This may be replaced when dependencies are built.
