file(REMOVE_RECURSE
  "CMakeFiles/bench_vi_d_architectures.dir/bench_vi_d_architectures.cpp.o"
  "CMakeFiles/bench_vi_d_architectures.dir/bench_vi_d_architectures.cpp.o.d"
  "bench_vi_d_architectures"
  "bench_vi_d_architectures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vi_d_architectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
