# Empty dependencies file for bench_fig5_datapath_audit.
# This may be replaced when dependencies are built.
