file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_datapath_audit.dir/bench_fig5_datapath_audit.cpp.o"
  "CMakeFiles/bench_fig5_datapath_audit.dir/bench_fig5_datapath_audit.cpp.o.d"
  "bench_fig5_datapath_audit"
  "bench_fig5_datapath_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_datapath_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
