# Empty dependencies file for bench_fig2_buffer_placement.
# This may be replaced when dependencies are built.
