# Empty compiler generated dependencies file for bench_vi_c_stage_count.
# This may be replaced when dependencies are built.
