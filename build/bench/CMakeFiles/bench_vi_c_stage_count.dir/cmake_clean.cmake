file(REMOVE_RECURSE
  "CMakeFiles/bench_vi_c_stage_count.dir/bench_vi_c_stage_count.cpp.o"
  "CMakeFiles/bench_vi_c_stage_count.dir/bench_vi_c_stage_count.cpp.o.d"
  "bench_vi_c_stage_count"
  "bench_vi_c_stage_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vi_c_stage_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
