# Empty compiler generated dependencies file for bench_fig6_flppr_latency.
# This may be replaced when dependencies are built.
