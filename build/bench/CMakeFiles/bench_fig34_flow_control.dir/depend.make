# Empty dependencies file for bench_fig34_flow_control.
# This may be replaced when dependencies are built.
