# Empty dependencies file for bench_fec_waterfall.
# This may be replaced when dependencies are built.
