file(REMOVE_RECURSE
  "CMakeFiles/bench_fec_waterfall.dir/bench_fec_waterfall.cpp.o"
  "CMakeFiles/bench_fec_waterfall.dir/bench_fec_waterfall.cpp.o.d"
  "bench_fec_waterfall"
  "bench_fec_waterfall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fec_waterfall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
