// Tests for the host layer: segmentation/reassembly, HCA latency budget,
// message workloads, and end-to-end message simulation over the switch.

#include <gtest/gtest.h>

#include "src/host/admission.hpp"
#include "src/host/hca.hpp"
#include "src/host/message.hpp"
#include "src/host/message_sim.hpp"
#include "src/host/patterns.hpp"

namespace osmosis::host {
namespace {

// ---- segmentation / reassembly -----------------------------------------------

TEST(Segmenter, CellCountRounding) {
  Segmenter seg(195.0);
  EXPECT_EQ(seg.cells_for(1.0), 1);
  EXPECT_EQ(seg.cells_for(195.0), 1);
  EXPECT_EQ(seg.cells_for(196.0), 2);
  EXPECT_EQ(seg.cells_for(1950.0), 10);
  EXPECT_EQ(seg.cells_for(0.0), 1);  // header-only message still ships
}

TEST(Segmenter, EmitsAllCellsInOrder) {
  Segmenter seg(100.0);
  Message m;
  m.src = 0;
  m.dst = 3;
  m.id = 42;
  m.bytes = 450.0;  // 5 cells
  seg.post(m);
  for (int i = 0; i < 5; ++i) {
    std::uint64_t id;
    int dst;
    bool control, last;
    ASSERT_TRUE(seg.next_cell(id, dst, control, last));
    EXPECT_EQ(id, 42u);
    EXPECT_EQ(dst, 3);
    EXPECT_FALSE(control);
    EXPECT_EQ(last, i == 4);
  }
  std::uint64_t id;
  int dst;
  bool control, last;
  EXPECT_FALSE(seg.next_cell(id, dst, control, last));
  EXPECT_TRUE(seg.idle());
}

TEST(Segmenter, ControlMessagesPreemptDataBetweenCells) {
  Segmenter seg(100.0);
  Message data;
  data.src = 0;
  data.dst = 1;
  data.id = 1;
  data.bytes = 300.0;  // 3 cells
  seg.post(data);
  std::uint64_t id;
  int dst;
  bool control, last;
  ASSERT_TRUE(seg.next_cell(id, dst, control, last));
  EXPECT_EQ(id, 1u);  // data cell 1 goes out

  Message ctrl;
  ctrl.src = 0;
  ctrl.dst = 2;
  ctrl.id = 2;
  ctrl.bytes = 50.0;
  ctrl.control = true;
  seg.post(ctrl);
  ASSERT_TRUE(seg.next_cell(id, dst, control, last));
  EXPECT_EQ(id, 2u);  // control preempts the remaining data cells
  EXPECT_TRUE(control);
  EXPECT_TRUE(last);
  ASSERT_TRUE(seg.next_cell(id, dst, control, last));
  EXPECT_EQ(id, 1u);  // data resumes
}

TEST(Reassembler, CompletesOnLastCell) {
  Reassembler r;
  r.expect(7, 3);
  EXPECT_FALSE(r.receive(7));
  EXPECT_FALSE(r.receive(7));
  EXPECT_TRUE(r.receive(7));
  EXPECT_EQ(r.incomplete(), 0u);
}

TEST(Reassembler, RejectsUnknownAndDuplicate) {
  Reassembler r;
  r.expect(1, 1);
  EXPECT_TRUE(r.receive(1));
  EXPECT_DEATH(r.receive(1), "unknown");
  EXPECT_DEATH(r.expect(2, 0), "at least one");
}

// ---- HCA budget ----------------------------------------------------------------

TEST(Hca, AppToAppBudgetComposition) {
  HcaParams hca;
  const auto b = app_to_app_budget(hca, 150.0, 245.0);
  ASSERT_EQ(b.items.size(), 6u);
  EXPECT_DOUBLE_EQ(b.total_ns(),
                   2 * 250.0 + 2 * 120.0 + 150.0 + 245.0);
  // The paper's contemporary target: ~1 us application to application.
  EXPECT_LT(b.total_ns(), 1'200.0);
}

// ---- workloads ------------------------------------------------------------------

TEST(Workloads, RandomMessagesNeverSelfAddressed) {
  RandomMessages w(8, 1.0, 0.3, 64.0, 2048.0, sim::Rng(1));
  std::vector<Message> out;
  for (int t = 0; t < 200; ++t) {
    for (int h = 0; h < 8; ++h) {
      out.clear();
      w.poll(h, static_cast<std::uint64_t>(t), out);
      for (const auto& m : out) {
        EXPECT_NE(m.dst, h);
        EXPECT_GE(m.dst, 0);
        EXPECT_LT(m.dst, 8);
        EXPECT_GT(m.id, 0u);
      }
    }
  }
}

TEST(Workloads, AllToAllPostsExactlyOnce) {
  AllToAll w(6, 512.0);
  std::vector<Message> out;
  int total = 0;
  for (int h = 0; h < 6; ++h) {
    out.clear();
    w.poll(h, 0, out);
    EXPECT_EQ(out.size(), 5u);
    total += static_cast<int>(out.size());
    out.clear();
    w.poll(h, 1, out);
    EXPECT_TRUE(out.empty());
  }
  EXPECT_EQ(total, 30);  // N(N-1)
}

TEST(Workloads, RingIsPermutation) {
  RingExchange w(5, 100.0);
  std::vector<bool> dst_seen(5, false);
  for (int h = 0; h < 5; ++h) {
    std::vector<Message> out;
    w.poll(h, 0, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_FALSE(dst_seen[static_cast<std::size_t>(out[0].dst)]);
    dst_seen[static_cast<std::size_t>(out[0].dst)] = true;
  }
}

// ---- end-to-end message simulation ------------------------------------------------

MessageSimConfig base_config(int hosts) {
  MessageSimConfig cfg;
  cfg.sw.ports = hosts;
  cfg.sw.sched.kind = sw::SchedulerKind::kFlppr;
  cfg.sw.sched.receivers = 2;
  cfg.sw.warmup_slots = 0;
  cfg.sw.measure_slots = 20'000;
  cfg.cell = phy::demonstrator_cell_format();
  return cfg;
}

TEST(MessageSim, AllToAllCompletesAndIsAccounted) {
  auto cfg = base_config(8);
  MessageSim sim(cfg, std::make_unique<AllToAll>(8, 1024.0));
  const auto r = sim.run();
  EXPECT_TRUE(r.all_complete);
  EXPECT_EQ(r.posted, 56u);
  EXPECT_EQ(r.completed, 56u);
  EXPECT_EQ(r.cell_level.out_of_order, 0u);
  // 1024 B = 6 cells of ~195 B; 7 messages per source; the collective
  // cannot finish faster than 42 injection slots per host.
  EXPECT_GE(r.collective_completion_slot, 42u);
  EXPECT_LT(r.collective_completion_slot, 200u);
}

TEST(MessageSim, RingExchangeNearOptimal) {
  auto cfg = base_config(16);
  const double bytes = 1950.0;  // 10 cells
  MessageSim sim(cfg, std::make_unique<RingExchange>(16, bytes));
  const auto r = sim.run();
  EXPECT_TRUE(r.all_complete);
  // A permutation has no contention: completion ~ cells + pipeline.
  EXPECT_LE(r.collective_completion_slot, 10u + 8u);
}

TEST(MessageSim, ControlMessagesFasterThanDataUnderLoad) {
  auto cfg = base_config(16);
  cfg.sw.measure_slots = 30'000;
  cfg.stats_after_slot = 2'000;
  // 0.05 msgs/slot/host x ~11 cells mean -> ~55 % cell load.
  MessageSim sim(cfg, std::make_unique<RandomMessages>(
                          16, 0.05, 0.3, 64.0, 2048.0, sim::Rng(3)));
  const auto r = sim.run();
  EXPECT_GT(r.completed, 10'000u);
  // Control messages are single-cell and strictly prioritized.
  EXPECT_LT(r.mean_control_latency_cycles, r.mean_data_latency_cycles);
  EXPECT_EQ(r.cell_level.out_of_order, 0u);
}

TEST(MessageSim, SmallMessageAppLatencyNearMicrosecond) {
  // §III: "a contemporary target is 1 us application to application".
  auto cfg = base_config(64);
  cfg.sw.measure_slots = 10'000;
  MessageSim sim(cfg, std::make_unique<RandomMessages>(
                          64, 0.02, 1.0, 64.0, 64.0, sim::Rng(5)));
  const auto r = sim.run();
  EXPECT_GT(r.completed, 10'000u);
  EXPECT_LT(r.control_app_latency_ns, 1'300.0);
  EXPECT_GT(r.control_app_latency_ns, 700.0);
}

// ---- degraded-mode admission control ---------------------------------------

TEST(Admission, FullCapacityAdmitsEverything) {
  AdmissionConfig cfg;
  cfg.enabled = true;
  AdmissionControl ac(cfg, 4);
  ac.set_capacity(4, 4);
  for (int slot = 0; slot < 100; ++slot) {
    ac.begin_slot();
    for (int src = 0; src < 4; ++src) EXPECT_TRUE(ac.admit(src));
  }
  EXPECT_EQ(ac.shed_total(), 0u);
}

TEST(Admission, DisabledControlNeverSheds) {
  AdmissionControl ac(AdmissionConfig{}, 4);  // enabled = false
  ac.set_capacity(1, 4);
  for (int slot = 0; slot < 50; ++slot) {
    ac.begin_slot();
    for (int src = 0; src < 4; ++src) EXPECT_TRUE(ac.admit(src));
  }
  EXPECT_EQ(ac.shed_total(), 0u);
}

TEST(Admission, ReducedCapacityShedsTheOverflowFairly) {
  AdmissionConfig cfg;
  cfg.enabled = true;
  cfg.margin_pct = 100;
  cfg.burst_cells = 1;
  AdmissionControl ac(cfg, 8);
  ac.set_capacity(2, 4);  // half capacity: admit ~1 of every 2 cells
  const int slots = 1'000;
  std::uint64_t admitted = 0;
  for (int slot = 0; slot < slots; ++slot) {
    ac.begin_slot();
    for (int src = 0; src < 8; ++src)
      if (ac.admit(src)) ++admitted;
  }
  const std::uint64_t offered = 8ull * slots;
  EXPECT_EQ(admitted + ac.shed_total(), offered);
  EXPECT_NEAR(static_cast<double>(admitted), offered / 2.0, offered * 0.01);
  // Identical buckets, identical arrivals: the shed spread across
  // sources must be tight (fairness).
  EXPECT_LE(ac.shed_max() - ac.shed_min(), 2u);
}

TEST(Admission, RestoredCapacityStopsShedding) {
  AdmissionConfig cfg;
  cfg.enabled = true;
  AdmissionControl ac(cfg, 2);
  ac.set_capacity(1, 4);
  for (int slot = 0; slot < 100; ++slot) {
    ac.begin_slot();
    ac.admit(0);
    ac.admit(1);
  }
  const std::uint64_t shed_degraded = ac.shed_total();
  EXPECT_GT(shed_degraded, 0u);
  ac.set_capacity(4, 4);  // repaired: disengage
  for (int slot = 0; slot < 100; ++slot) {
    ac.begin_slot();
    EXPECT_TRUE(ac.admit(0));
    EXPECT_TRUE(ac.admit(1));
  }
  EXPECT_EQ(ac.shed_total(), shed_degraded);
}

TEST(MessageSim, RejectsWorkloadPortMismatch) {
  auto cfg = base_config(8);
  EXPECT_DEATH(MessageSim(cfg, std::make_unique<AllToAll>(4, 100.0)),
               "must equal switch ports");
}

}  // namespace
}  // namespace osmosis::host
