// Tests for the §VI.D comparison architectures: output-queued reference,
// load-balanced Birkhoff-von-Neumann, Data Vortex, burst switching.

#include <gtest/gtest.h>

#include "src/baseline/birkhoff.hpp"
#include "src/baseline/burst_switch.hpp"
#include "src/baseline/cioq.hpp"
#include "src/baseline/data_vortex.hpp"
#include "src/baseline/oq_switch.hpp"

namespace osmosis::baseline {
namespace {

// ---- output-queued reference ---------------------------------------------------

TEST(OqSwitch, ThroughputEqualsLoad) {
  for (double load : {0.3, 0.7, 0.95}) {
    const auto r = run_oq_uniform(16, load, 1);
    EXPECT_NEAR(r.throughput, load, 0.02);
  }
}

TEST(OqSwitch, AlwaysInOrder) {
  const auto r = run_oq_uniform(16, 0.95, 3);
  EXPECT_EQ(r.out_of_order, 0u);
  EXPECT_FALSE(r.work_conserving_violated);
}

TEST(OqSwitch, DelayIsMm1LikeFloor) {
  // Uniform iid at 50 %: the OQ switch behaves like N independent
  // queues; mean delay stays small and grows toward saturation.
  const auto lo = run_oq_uniform(16, 0.5, 5);
  const auto hi = run_oq_uniform(16, 0.95, 5);
  EXPECT_LT(lo.mean_delay, 3.0);
  EXPECT_GT(hi.mean_delay, lo.mean_delay * 2.0);
}

// ---- CIOQ speedup / work conservation ([11]) ---------------------------------------

CioqConfig cioq_config(int speedup, int buffers = 8) {
  CioqConfig cfg;
  cfg.ports = 16;
  cfg.speedup = speedup;
  cfg.output_buffer_cells = buffers;
  cfg.measure_slots = 15'000;
  return cfg;
}

TEST(Cioq, SpeedupOneViolatesWorkConservation) {
  // An input-queued switch (S = 1) routinely idles outputs that have
  // cells parked behind busy inputs.
  const auto r = run_cioq_uniform(cioq_config(1), 0.9, 33);
  EXPECT_GT(r.work_conservation_violation_rate, 0.02);
}

TEST(Cioq, SpeedupTwoNearlyWorkConserving) {
  // [11]: S = 2 with adequate output buffers makes CIOQ effectively
  // work-conserving.
  const auto s1 = run_cioq_uniform(cioq_config(1), 0.9, 35);
  const auto s2 = run_cioq_uniform(cioq_config(2), 0.9, 35);
  EXPECT_LT(s2.work_conservation_violation_rate,
            s1.work_conservation_violation_rate / 5.0);
  EXPECT_LT(s2.work_conservation_violation_rate, 0.01);
}

TEST(Cioq, TinyOutputBuffersReintroduceViolations) {
  // The "limited output buffers" half of [11]: with S = 2 but a 1-cell
  // output buffer, backpressure stalls the crossbar again.
  const auto roomy = run_cioq_uniform(cioq_config(2, 8), 0.9, 37);
  const auto tiny = run_cioq_uniform(cioq_config(2, 1), 0.9, 37);
  EXPECT_GT(tiny.work_conservation_violation_rate,
            roomy.work_conservation_violation_rate);
}

TEST(Cioq, OutputBuffersRespectLimit) {
  const auto r = run_cioq_uniform(cioq_config(3, 4), 0.95, 39);
  EXPECT_LE(r.max_output_occupancy, 4);
  EXPECT_EQ(r.out_of_order, 0u);
}

TEST(Cioq, ThroughputMatchesLoad) {
  const auto r = run_cioq_uniform(cioq_config(2), 0.7, 41);
  EXPECT_NEAR(r.throughput, 0.7, 0.02);
}

TEST(Cioq, SpeedupReducesDelayTowardOqFloor) {
  const auto s1 = run_cioq_uniform(cioq_config(1), 0.9, 43);
  const auto s3 = run_cioq_uniform(cioq_config(3), 0.9, 43);
  const auto oq = run_oq_uniform(16, 0.9, 43, 1'000, 15'000);
  EXPECT_LT(s3.mean_delay, s1.mean_delay);
  EXPECT_LT(oq.mean_delay, s3.mean_delay + 2.0);
}

// ---- Birkhoff-von-Neumann ---------------------------------------------------------

TEST(Bvn, UnloadedDelayIsHalfPortCount) {
  // §VI.D: "high average switching latency of N/2 packets for an
  // unloaded N-port switch".
  for (int ports : {16, 32, 64}) {
    const auto r = run_bvn_uniform(ports, 0.02, 7);
    EXPECT_NEAR(r.mean_delay, ports / 2.0 + 1.0, ports * 0.15)
        << ports << " ports";
  }
}

TEST(Bvn, DeliversOutOfOrder) {
  // §VI.D: "and also because of the out-of-order packet delivery".
  const auto r = run_bvn_uniform(16, 0.6, 9);
  EXPECT_GT(r.out_of_order, 0u);
  EXPECT_GT(r.reorder_fraction, 0.01);
}

TEST(Bvn, SustainsUniformThroughput) {
  // The architecture's merit is scalability: near-100 % throughput with
  // no scheduler at all.
  const auto r = run_bvn_uniform(16, 0.95, 11);
  EXPECT_NEAR(r.throughput, 0.95, 0.02);
}

TEST(Bvn, DelayScalesWithPortCountNotLoad) {
  const auto small = run_bvn_uniform(16, 0.5, 13);
  const auto large = run_bvn_uniform(64, 0.5, 13);
  EXPECT_GT(large.mean_delay, small.mean_delay * 2.5);
}

// ---- Data Vortex -------------------------------------------------------------------

DataVortexConfig vortex_config(int ports) {
  DataVortexConfig cfg;
  cfg.ports = ports;
  cfg.warmup_slots = 1'000;
  cfg.measure_slots = 15'000;
  return cfg;
}

TEST(DataVortex, DeliversEverythingAtLowLoad) {
  const auto r = run_vortex_uniform(vortex_config(16), 0.1, 15);
  EXPECT_NEAR(r.throughput, 0.1, 0.01);
  EXPECT_GT(r.delivered, 10'000u);
}

TEST(DataVortex, UnloadedLatencyIsLogPorts) {
  // A packet descends log2(N)+1 cylinders with few deflections.
  const auto r = run_vortex_uniform(vortex_config(16), 0.02, 17);
  EXPECT_GT(r.mean_hops, 4.0);   // log2(16) = 4 descents minimum
  EXPECT_LT(r.mean_hops, 10.0);
  EXPECT_LT(r.deflection_rate, 1.5);
}

TEST(DataVortex, LimitedThroughputPerPort) {
  // §II: "can scale to very high port counts but has limited throughput
  // per port" — saturation lands well below full line rate.
  const auto r = run_vortex_uniform(vortex_config(16), 1.0, 19);
  EXPECT_LT(r.throughput, 0.9);
  EXPECT_GT(r.injection_blocked, 0u);
  EXPECT_GT(r.deflection_rate, 0.5);
}

TEST(DataVortex, DeflectionsGrowWithLoad) {
  const auto lo = run_vortex_uniform(vortex_config(16), 0.1, 21);
  const auto hi = run_vortex_uniform(vortex_config(16), 0.8, 21);
  EXPECT_GT(hi.deflection_rate, lo.deflection_rate * 2.0);
  EXPECT_GT(hi.mean_delay, lo.mean_delay);
}

TEST(DataVortex, ScalesToLargerPortCounts) {
  const auto r = run_vortex_uniform(vortex_config(64), 0.3, 23);
  EXPECT_NEAR(r.throughput, 0.3, 0.03);
}

TEST(DataVortex, RejectsNonPowerOfTwo) {
  DataVortexConfig cfg = vortex_config(12);
  EXPECT_DEATH(run_vortex_uniform(cfg, 0.1, 1), "power-of-two");
}

// ---- burst switching ----------------------------------------------------------------

BurstSwitchConfig burst_config(int burst) {
  BurstSwitchConfig cfg;
  cfg.ports = 16;
  cfg.burst_cells = burst;
  cfg.warmup_slots = 1'000;
  cfg.measure_slots = 20'000;
  return cfg;
}

TEST(BurstSwitch, UnloadedLatencyOnOrderOfBurstTime) {
  // §VI.D: "these architectures exhibit latencies on the order of the
  // packet burst time for unloaded switches".
  const auto small = run_burst_uniform(burst_config(4), 0.05, 25);
  const auto large = run_burst_uniform(burst_config(32), 0.05, 25);
  EXPECT_GT(large.mean_delay, small.mean_delay * 3.0);
  EXPECT_GT(large.mean_delay, 32.0);  // at least the container time
}

TEST(BurstSwitch, CellSizedContainersBehaveLikeCellSwitch) {
  const auto r = run_burst_uniform(burst_config(1), 0.3, 27);
  EXPECT_LT(r.mean_delay, 8.0);
  EXPECT_NEAR(r.throughput, 0.3, 0.02);
}

TEST(BurstSwitch, ThroughputHoldsUnderLoad) {
  const auto r = run_burst_uniform(burst_config(16), 0.8, 29);
  EXPECT_NEAR(r.throughput, 0.8, 0.05);
}

TEST(BurstSwitch, PartialContainersWasteBandwidth) {
  // At low load the aggregation timeout ships half-empty containers —
  // the fill statistic exposes the efficiency loss.
  const auto r = run_burst_uniform(burst_config(16), 0.1, 31);
  EXPECT_LT(r.mean_container_fill, 16.0);
}

}  // namespace
}  // namespace osmosis::baseline
