// Tests for the optical physical layer: technology viability, guard-time
// and efficiency budgets, SOA gain / DPSK model (Fig. 10), BER math.

#include <gtest/gtest.h>

#include "src/phy/cascade.hpp"
#include "src/phy/guard_time.hpp"
#include "src/phy/link_budget.hpp"
#include "src/phy/soa.hpp"
#include "src/phy/sync.hpp"
#include "src/phy/technology.hpp"

namespace osmosis::phy {
namespace {

// ---- technology catalogue ---------------------------------------------------

TEST(Technology, CatalogueCoversPaperEntries) {
  EXPECT_NEAR(technology(SwitchTech::kSoa).guard_time_ns, 5.0, 0.01);
  EXPECT_NEAR(technology(SwitchTech::kTunableLaser).guard_time_ns, 45.0, 0.1);
  EXPECT_NEAR(technology(SwitchTech::kBeamSteering).guard_time_ns, 20.0, 0.1);
  EXPECT_LT(technology(SwitchTech::kSoaDpskSaturated).guard_time_ns, 1.0);
}

TEST(Technology, MechanicalAndThermalNotPacketSwitchable) {
  // §IV.C: "this prohibits technologies that use slower physical
  // effects (moving mirrors, heating/cooling)".
  const double cell_ns = demonstrator_cell_format().cycle_ns();
  EXPECT_FALSE(viable_for_packet_switching(technology(SwitchTech::kMems),
                                           cell_ns));
  EXPECT_FALSE(viable_for_packet_switching(
      technology(SwitchTech::kThermoOptic), cell_ns));
  EXPECT_TRUE(viable_for_packet_switching(technology(SwitchTech::kSoa),
                                          cell_ns));
}

TEST(Technology, TunableLaserMarginalAtShortCells) {
  // A 45 ns guard cannot fit a 51.2 ns cell; it needs longer cells.
  const auto& laser = technology(SwitchTech::kTunableLaser);
  EXPECT_FALSE(viable_for_packet_switching(laser, 51.2));
  EXPECT_TRUE(viable_for_packet_switching(laser, 400.0));
}

// ---- guard time and efficiency ----------------------------------------------

TEST(GuardTime, DemonstratorCycleIs51ns) {
  const CellFormat f = demonstrator_cell_format();
  EXPECT_DOUBLE_EQ(f.cycle_ns(), 51.2);
}

TEST(GuardTime, EffectiveUserBandwidthNear75Percent) {
  // §V / Table 1: effective user bandwidth close to 75 %.
  const CellFormat f = demonstrator_cell_format();
  EXPECT_GT(f.user_efficiency(), 0.72);
  EXPECT_LT(f.user_efficiency(), 0.80);
}

TEST(GuardTime, FecOverheadMatchesCode) {
  EXPECT_DOUBLE_EQ(demonstrator_cell_format().fec_overhead, 0.0625);
}

TEST(GuardTime, EfficiencyFallsWithGuard) {
  CellFormat f = demonstrator_cell_format();
  const double base = f.user_efficiency();
  f.guard.switch_settle_ns = 45.0;  // tunable-laser class guard
  EXPECT_LT(f.user_efficiency(), base);
}

TEST(GuardTime, SubNanosecondGuardRecoversEfficiency) {
  // §VII: DPSK-saturated SOAs with sub-ns guard let the cell shrink
  // while keeping the payload fraction.
  CellFormat f = demonstrator_cell_format();
  f.guard.switch_settle_ns = 0.8;
  EXPECT_GT(f.user_efficiency(), demonstrator_cell_format().user_efficiency());
}

TEST(GuardTime, InfeasibleWhenGuardSwallowsCell) {
  CellFormat f = demonstrator_cell_format();
  f.guard.switch_settle_ns = 60.0;  // exceeds the 51.2 ns cycle
  EXPECT_FALSE(f.feasible());
}

TEST(GuardTime, StoreAndForwardPenaltyMatchesPaper) {
  // §IV: 64 B at 12 GByte/s stores in 5.33 ns.
  EXPECT_NEAR(store_and_forward_penalty_ns(64.0, 96.0), 5.33, 0.01);
}

// ---- SOA / Fig. 10 -----------------------------------------------------------

TEST(Soa, GainCompresses3dbAtSaturationInput) {
  SoaGainModel model;
  const double psat = model.params().saturation_input_dbm;
  EXPECT_NEAR(model.compression_db(psat), 3.01, 0.05);
  EXPECT_NEAR(model.gain_db(-30.0), model.params().small_signal_gain_db,
              0.05);
}

TEST(Soa, QForBerRoundTrip) {
  for (double ber : {1e-3, 1e-6, 1e-10, 1e-12}) {
    const double q = SoaGainModel::q_for_ber(ber);
    EXPECT_NEAR(ber_from_q(q), ber, ber * 1e-3);
  }
  // Known values: Q(1e-6) ~ 4.75, Q(1e-10) ~ 6.36.
  EXPECT_NEAR(SoaGainModel::q_for_ber(1e-6), 4.75, 0.02);
  EXPECT_NEAR(SoaGainModel::q_for_ber(1e-10), 6.36, 0.02);
}

TEST(Soa, PenaltyMonotoneInPower) {
  SoaGainModel model;
  double prev = -1.0;
  for (double p = 0.0; p <= 20.0; p += 1.0) {
    const double pen = model.osnr_penalty_db(p, Modulation::kNrz, 1e-6);
    EXPECT_GE(pen, prev);
    prev = pen;
  }
}

TEST(Soa, DpskAllows14dbMoreLoading) {
  // The Fig. 10 headline: "a 14 dB improvement measured in SOA input
  // loading at 1 dB OSNR penalty".
  SoaGainModel model;
  EXPECT_NEAR(model.dpsk_loading_improvement_db(1.0, 1e-6), 14.0, 0.2);
  EXPECT_NEAR(model.dpsk_loading_improvement_db(1.0, 1e-10), 14.0, 0.2);
}

TEST(Soa, StricterBerCurveSitsAbove) {
  // Fig. 10 shows the 1e-10 curves above the 1e-6 curves.
  SoaGainModel model;
  for (double p = 0.0; p <= 20.0; p += 2.0) {
    EXPECT_GE(model.osnr_penalty_db(p, Modulation::kNrz, 1e-10),
              model.osnr_penalty_db(p, Modulation::kNrz, 1e-6));
  }
}

TEST(Soa, DpskPenaltyBelowNrzEverywhere) {
  SoaGainModel model;
  for (double p = 0.0; p <= 20.0; p += 1.0) {
    EXPECT_LE(model.osnr_penalty_db(p, Modulation::kDpsk, 1e-6),
              model.osnr_penalty_db(p, Modulation::kNrz, 1e-6));
  }
}

TEST(Soa, SweepCoversFigureRange) {
  SoaGainModel model;
  const auto pts = sweep_osnr_penalty(model, 1e-10, 0.0, 20.0, 4.0);
  ASSERT_EQ(pts.size(), 6u);
  EXPECT_DOUBLE_EQ(pts.front().input_dbm, 0.0);
  EXPECT_DOUBLE_EQ(pts.back().input_dbm, 20.0);
  // NRZ collapses within the plotted range; DPSK stays moderate.
  EXPECT_GT(pts.back().penalty_nrz_db, 5.0);
  EXPECT_LT(pts.back().penalty_dpsk_db, 5.0);
}

// ---- link budget -------------------------------------------------------------

TEST(LinkBudget, DpskNeeds3dbLessOsnr) {
  // §VII: "the SOA-switched link operates with 3 dB lower OSNR than NRZ
  // at any given bit-error rate".
  for (double ber : {1e-6, 1e-10}) {
    EXPECT_NEAR(required_osnr_db(ber, Modulation::kNrz) -
                    required_osnr_db(ber, Modulation::kDpsk),
                3.0, 1e-9);
  }
}

TEST(LinkBudget, ChainedErrorRateSmallProbabilities) {
  // Union-bound regime: n * p for tiny p.
  EXPECT_NEAR(chained_error_rate(1e-12, 3), 3e-12, 1e-15);
  EXPECT_DOUBLE_EQ(chained_error_rate(0.0, 100), 0.0);
  EXPECT_NEAR(chained_error_rate(0.5, 2), 0.75, 1e-12);
}

// ---- stage cascade ------------------------------------------------------------

TEST(Cascade, SingleStageOsnrFormula) {
  CascadeStage s;  // -3 dBm in, NF 8 dB
  EXPECT_DOUBLE_EQ(stage_osnr_db(s), 47.0);
  EXPECT_DOUBLE_EQ(cascade_osnr_db(s, 1), 47.0);
}

TEST(Cascade, OsnrFallsLogarithmicallyWithStages) {
  CascadeStage s;
  EXPECT_NEAR(cascade_osnr_db(s, 2), 47.0 - 3.01, 0.02);
  EXPECT_NEAR(cascade_osnr_db(s, 10), 47.0 - 10.0, 0.02);
}

TEST(Cascade, PaperStageCountsAllClose) {
  // 3, 5 and 9 stages all close comfortably at healthy per-stage power
  // — OSNR is not what forbids multistage optics; buffering is (§III).
  CascadeStage s;
  for (int stages : {3, 5, 9}) {
    const auto a = analyze_cascade(s, stages, 1e-12, Modulation::kNrz);
    EXPECT_TRUE(a.closes) << stages << " stages, margin " << a.margin_db;
  }
}

TEST(Cascade, StarvedStagesLimitDepth) {
  // Skip the per-stage amplification (deep split, no preamp): the
  // cascade depth collapses.
  CascadeStage starved;
  starved.input_power_dbm = -24.0;
  const int max_nrz = max_cascade_stages(starved, 1e-12, Modulation::kNrz);
  EXPECT_LT(max_nrz, 9);
  // DPSK's 3 dB OSNR advantage doubles the admissible depth.
  const int max_dpsk = max_cascade_stages(starved, 1e-12, Modulation::kDpsk);
  EXPECT_NEAR(static_cast<double>(max_dpsk) / std::max(max_nrz, 1), 2.0,
              0.7);
}

TEST(Cascade, MarginMonotoneInStages) {
  CascadeStage s;
  const auto a3 = analyze_cascade(s, 3, 1e-10, Modulation::kNrz);
  const auto a9 = analyze_cascade(s, 9, 1e-10, Modulation::kNrz);
  EXPECT_GT(a3.margin_db, a9.margin_db);
}

// ---- synchronization ([20]) -------------------------------------------------

TEST(Sync, DemonstratorTreeCoversAdaptersWithinJitterBudget) {
  // 64 adapters at fanout 8 need 2 levels; the resulting arrival window
  // must fit the cell format's arrival-jitter allocation.
  SyncTreeParams p;  // fanout 8, 2 levels
  EXPECT_EQ(sync_levels_needed(64, 8), 2);
  const auto a = analyze_sync_tree(p);
  EXPECT_EQ(a.adapters_covered, 64);
  EXPECT_TRUE(sync_fits_budget(a, demonstrator_cell_format().guard));
}

TEST(Sync, JitterAccumulatesWithDepth) {
  SyncTreeParams shallow;
  shallow.levels = 1;
  SyncTreeParams deep;
  deep.levels = 4;
  const auto s = analyze_sync_tree(shallow);
  const auto d = analyze_sync_tree(deep);
  EXPECT_NEAR(d.worst_case_jitter_ns, 4.0 * s.worst_case_jitter_ns, 1e-12);
  EXPECT_LT(d.rss_jitter_ns, d.worst_case_jitter_ns);
  EXPECT_GE(s.rss_jitter_ns, s.worst_case_jitter_ns - 1e-12);  // 1 hop: equal
}

TEST(Sync, DeepTreeBreaksTightBudget) {
  SyncTreeParams p;
  p.levels = 6;  // machine-scale tree without recalibration
  const auto a = analyze_sync_tree(p);
  GuardTimeBudget tight;
  tight.arrival_jitter_ns = 1.0;
  EXPECT_FALSE(sync_fits_budget(a, tight));
}

TEST(Sync, LevelsNeededMonotone) {
  EXPECT_EQ(sync_levels_needed(1, 8), 1);
  EXPECT_EQ(sync_levels_needed(8, 8), 1);
  EXPECT_EQ(sync_levels_needed(9, 8), 2);
  EXPECT_EQ(sync_levels_needed(2048, 8), 4);
}

TEST(LinkBudget, RawBerEnvelopes) {
  // The paper's premise: optics 1e-10..1e-12 raw, copper to 1e-17.
  EXPECT_LT(kOpticalRawBerBest, kOpticalRawBerWorst);
  EXPECT_LT(kCopperEngineeredBer, kOpticalRawBerBest);
}

}  // namespace
}  // namespace osmosis::phy
