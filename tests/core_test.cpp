// Tests for the top-level OSMOSIS system: configs, latency budgets
// (Fig. 1, §VI.B), and the Table 1 compliance report.

#include <gtest/gtest.h>

#include "src/core/config.hpp"
#include "src/core/latency_budget.hpp"
#include "src/core/osmosis_system.hpp"

namespace osmosis::core {
namespace {

TEST(Config, DemonstratorMatchesSectionV) {
  const auto c = demonstrator_config();
  EXPECT_EQ(c.ports, 64);
  EXPECT_EQ(c.fibers * c.wavelengths, 64);
  EXPECT_EQ(c.receivers, 2);
  EXPECT_DOUBLE_EQ(c.cell.cycle_ns(), 51.2);
  EXPECT_EQ(c.fabric_ports, 2048u);
}

TEST(Config, ProductPointReaches50TbpsClass) {
  const auto c = product_config();
  EXPECT_EQ(c.ports, 256);
  const double aggregate_tbps =
      c.ports * c.cell.line_rate_gbps / 1000.0;
  EXPECT_GE(aggregate_tbps, 50.0);
}

TEST(Config, CrossbarGeometryDerived) {
  const auto c = demonstrator_config();
  const auto xb = c.crossbar();
  EXPECT_EQ(xb.switching_modules(), 128);
  EXPECT_EQ(xb.total_soa_gates(), 2048);
}

TEST(LatencyBudget, SingleStageCostsTwoRtts) {
  // Fig. 1: 2 x RTT + scheduling + switching.
  const auto l = single_stage_latency(50.0, 51.2, 51.2);
  EXPECT_NEAR(l.rtt_ns, 245.0, 5.0);
  EXPECT_NEAR(l.total_ns, 2.0 * l.rtt_ns + 102.4, 1e-9);
  // This blows the 500 ns fabric budget on cables alone — the paper's
  // argument for multistage.
  EXPECT_GT(l.total_ns, 500.0);
}

TEST(LatencyBudget, MultistageAvoidsTheDoubleRtt) {
  const auto single = single_stage_latency(50.0, 51.2, 51.2);
  const double multi = multistage_latency_ns(3, 102.4, 245.0);
  EXPECT_LT(multi, single.total_ns);
}

TEST(LatencyBudget, DemonstratorTotalsMatchSectionVIB) {
  const auto b = demonstrator_latency_budget();
  // "the demonstrator prototype has only around 1200 ns latency".
  EXPECT_NEAR(b.fpga_total_ns(), 1200.0, 60.0);
  // "A straightforward mapping of the FPGAs into ASIC technology will
  // reduce the latency down to a few hundred nanoseconds."
  EXPECT_LT(b.asic_total_ns(), 450.0);
  EXPECT_GT(b.asic_total_ns(), 200.0);
  // ASIC wins at least 3x overall.
  EXPECT_GT(b.fpga_total_ns() / b.asic_total_ns(), 3.0);
}

TEST(LatencyBudget, SchedulerFitsInFourAsics) {
  // §VI.B: "the scheduler can be built with no more than four identical
  // ASICs".
  EXPECT_LE(scheduler_asic_count(64, 6), 4);
  EXPECT_GE(scheduler_asic_count(64, 6), 2);
}

TEST(OsmosisSystem, OpticalBudgetCloses) {
  OsmosisSystem sys;
  EXPECT_TRUE(sys.optical_budget().closes);
}

TEST(OsmosisSystem, FabricSizingThreeStages) {
  OsmosisSystem sys;
  const auto s = sys.fabric_sizing();
  EXPECT_EQ(s.path_stages, 3);
  EXPECT_EQ(s.endpoint_ports, 2048u);
}

TEST(OsmosisSystem, SwitchLatencyUnderModerateLoad) {
  OsmosisSystem sys;
  // Mean queueing traversal in a 64-port FLPPR switch at 50 % load is a
  // couple of cell cycles -> around 100 ns.
  const double ns = sys.switch_latency_ns(0.5);
  EXPECT_GT(ns, 51.2);
  EXPECT_LT(ns, 250.0);
}

TEST(OsmosisSystem, ProductFabricMeetsLatencyBudget) {
  // §III: < 500 ns fabric including cabling. The 200 Gb/s product cell
  // (10.24 ns) makes the 3-stage path + 50 m cabling fit.
  OsmosisSystem sys{product_config()};
  EXPECT_LT(sys.fabric_latency_ns(), 500.0);
}

TEST(OsmosisSystem, ComplianceReportAllPass) {
  OsmosisSystem sys;
  const auto rows = sys.check_requirements(10'000);
  ASSERT_EQ(rows.size(), 8u);
  for (const auto& row : rows)
    EXPECT_TRUE(row.pass) << row.requirement << ": " << row.achieved;
}

TEST(OsmosisSystem, SimulationHonorsConfiguredScheduler) {
  OsmosisConfig cfg = demonstrator_config();
  cfg.scheduler = sw::SchedulerKind::kPipelinedIslip;
  OsmosisSystem sys{cfg};
  const auto r = sys.simulate_uniform(0.3, 1, 5'000);
  EXPECT_NE(r.scheduler.find("pipelined"), std::string::npos);
}

TEST(OsmosisSystem, RejectsInfeasibleCellFormat) {
  OsmosisConfig cfg = demonstrator_config();
  cfg.cell.guard.switch_settle_ns = 60.0;  // guard exceeds the cycle
  EXPECT_DEATH(OsmosisSystem{cfg}, "no user payload");
}

}  // namespace
}  // namespace osmosis::core
