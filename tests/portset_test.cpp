// Tests for the PortSet bitmask used by the round-robin arbiters.

#include <gtest/gtest.h>

#include "src/sw/portset.hpp"

namespace osmosis::sw {
namespace {

TEST(PortSet, SetClearTest) {
  PortSet s(64);
  EXPECT_FALSE(s.any());
  s.set(0);
  s.set(63);
  EXPECT_TRUE(s.test(0));
  EXPECT_TRUE(s.test(63));
  EXPECT_FALSE(s.test(1));
  EXPECT_EQ(s.count(), 2);
  s.clear(0);
  EXPECT_FALSE(s.test(0));
  EXPECT_EQ(s.count(), 1);
}

TEST(PortSet, SetAllRespectsSize) {
  PortSet s(70);
  s.set_all();
  EXPECT_EQ(s.count(), 70);
  for (int i = 0; i < 70; ++i) EXPECT_TRUE(s.test(i));
}

TEST(PortSet, ClearAll) {
  PortSet s(100);
  s.set_all();
  s.clear_all();
  EXPECT_FALSE(s.any());
  EXPECT_EQ(s.count(), 0);
}

TEST(PortSet, NextCircularBasic) {
  PortSet s(8);
  s.set(2);
  s.set(5);
  EXPECT_EQ(s.next_circular(0), 2);
  EXPECT_EQ(s.next_circular(2), 2);  // inclusive start
  EXPECT_EQ(s.next_circular(3), 5);
  EXPECT_EQ(s.next_circular(6), 2);  // wraps
}

TEST(PortSet, NextCircularEmpty) {
  PortSet s(8);
  EXPECT_EQ(s.next_circular(0), -1);
  EXPECT_EQ(s.next_circular(7), -1);
}

TEST(PortSet, NextCircularSingleElement) {
  PortSet s(64);
  s.set(17);
  for (int from = 0; from < 64; ++from) EXPECT_EQ(s.next_circular(from), 17);
}

TEST(PortSet, NextCircularAcrossWords) {
  PortSet s(130);
  s.set(1);
  s.set(65);
  s.set(129);
  EXPECT_EQ(s.next_circular(0), 1);
  EXPECT_EQ(s.next_circular(2), 65);
  EXPECT_EQ(s.next_circular(66), 129);
  EXPECT_EQ(s.next_circular(129), 129);
  // Wrap from past the last set bit... 129 is the last index.
  s.clear(1);
  EXPECT_EQ(s.next_circular(0), 65);
}

TEST(PortSet, NextCircularExhaustiveAgainstReference) {
  // Property test: compare against a naive scan for many random sets.
  std::uint64_t state = 0x9E3779B97F4A7C15ULL;
  auto next_rand = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 1 + static_cast<int>(next_rand() % 150);
    PortSet s(n);
    std::vector<bool> ref(static_cast<std::size_t>(n), false);
    for (int i = 0; i < n; ++i) {
      if (next_rand() % 3 == 0) {
        s.set(i);
        ref[static_cast<std::size_t>(i)] = true;
      }
    }
    for (int from = 0; from < n; ++from) {
      int expect = -1;
      for (int k = 0; k < n; ++k) {
        const int idx = (from + k) % n;
        if (ref[static_cast<std::size_t>(idx)]) {
          expect = idx;
          break;
        }
      }
      ASSERT_EQ(s.next_circular(from), expect)
          << "n=" << n << " from=" << from;
    }
  }
}

TEST(PortSet, IntersectionInPlace) {
  PortSet a(64), b(64);
  a.set(1);
  a.set(2);
  a.set(3);
  b.set(2);
  b.set(3);
  b.set(4);
  a &= b;
  EXPECT_FALSE(a.test(1));
  EXPECT_TRUE(a.test(2));
  EXPECT_TRUE(a.test(3));
  EXPECT_FALSE(a.test(4));
}

TEST(PortSet, OutOfRangeDies) {
  PortSet s(8);
  EXPECT_DEATH(s.set(8), "out of range");
  EXPECT_DEATH(s.test(-1), "out of range");
}

}  // namespace
}  // namespace osmosis::sw
