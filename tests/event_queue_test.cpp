// Tests for the discrete-event kernel.

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.hpp"

namespace osmosis::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30.0, [&] { order.push_back(3); });
  q.schedule_at(10.0, [&] { order.push_back(1); });
  q.schedule_at(20.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 30.0);
}

TEST(EventQueue, EqualTimesFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    q.schedule_at(5.0, [&order, i] { order.push_back(i); });
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, HandlersCanScheduleMore) {
  EventQueue q;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) q.schedule_in(1.0, chain);
  };
  q.schedule_at(0.0, chain);
  q.run();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

TEST(EventQueue, RunUntilStopsAtHorizon) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(100.0, [&] { ++fired; });
  q.run_until(50.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 50.0);
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty) {
  EventQueue q;
  EXPECT_FALSE(q.step());
  q.schedule_at(0.0, [] {});
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
}

TEST(EventQueue, CountsFired) {
  EventQueue q;
  for (int i = 0; i < 7; ++i) q.schedule_at(static_cast<double>(i), [] {});
  q.run();
  EXPECT_EQ(q.fired(), 7u);
}

TEST(PeriodicProcess, FiresAtPeriod) {
  EventQueue q;
  int count = 0;
  PeriodicProcess p(q, 10.0, 5.0, [&] { ++count; });
  q.run_until(30.0);  // fires at 10, 15, 20, 25, 30
  EXPECT_EQ(count, 5);
  p.cancel();
  q.run_until(100.0);
  EXPECT_EQ(count, 5);
}

TEST(PeriodicProcess, CancelledByDestruction) {
  EventQueue q;
  int count = 0;
  {
    PeriodicProcess p(q, 0.0, 1.0, [&] { ++count; });
    q.run_until(3.0);
  }
  const int at_destruction = count;
  q.run_until(10.0);
  EXPECT_EQ(count, at_destruction);
}

}  // namespace
}  // namespace osmosis::sim
