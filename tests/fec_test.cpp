// Tests for the (272,256) GF(2^8) FEC: field arithmetic, encoder,
// decoder correction/detection guarantees, channels and analytics.

#include <gtest/gtest.h>

#include <cmath>

#include "src/fec/channel.hpp"
#include "src/fec/gf256.hpp"
#include "src/fec/hamming272.hpp"
#include "src/fec/interleave.hpp"
#include "src/sim/rng.hpp"

namespace osmosis::fec {
namespace {

// ---- GF(2^8) ----------------------------------------------------------------

TEST(Gf256, TableMatchesReferenceExhaustively) {
  for (int a = 0; a < 256; ++a)
    for (int b = 0; b < 256; ++b)
      ASSERT_EQ(Gf256::mul(static_cast<std::uint8_t>(a),
                           static_cast<std::uint8_t>(b)),
                Gf256::mul_reference(static_cast<std::uint8_t>(a),
                                     static_cast<std::uint8_t>(b)))
          << a << " * " << b;
}

TEST(Gf256, MultiplicativeIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(Gf256::mul(static_cast<std::uint8_t>(a), 1), a);
    EXPECT_EQ(Gf256::mul(static_cast<std::uint8_t>(a), 0), 0);
  }
}

TEST(Gf256, InverseExhaustive) {
  for (int a = 1; a < 256; ++a) {
    const auto inv = Gf256::inv(static_cast<std::uint8_t>(a));
    EXPECT_EQ(Gf256::mul(static_cast<std::uint8_t>(a), inv), 1) << a;
  }
}

TEST(Gf256, DivisionConsistent) {
  sim::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next() & 0xFF);
    const auto b = static_cast<std::uint8_t>(1 + rng.uniform_int(255));
    EXPECT_EQ(Gf256::mul(Gf256::div(a, b), b), a);
  }
}

TEST(Gf256, AlphaIsPrimitive) {
  // α = 2 must have multiplicative order exactly 255 under 0x11D.
  std::uint8_t x = 1;
  for (int i = 1; i < 255; ++i) {
    x = Gf256::mul(x, 2);
    ASSERT_NE(x, 1) << "order divides " << i;
  }
  EXPECT_EQ(Gf256::mul(x, 2), 1);
}

TEST(Gf256, LogExpRoundTrip) {
  for (int a = 1; a < 256; ++a) {
    EXPECT_EQ(Gf256::alpha_pow(Gf256::log(static_cast<std::uint8_t>(a))), a);
  }
}

TEST(Gf256, PowMatchesRepeatedMul) {
  const std::uint8_t a = 0x53;
  std::uint8_t acc = 1;
  for (unsigned n = 0; n < 300; ++n) {
    EXPECT_EQ(Gf256::pow(a, n), acc) << n;
    acc = Gf256::mul(acc, a);
  }
}

// ---- (272,256) code -----------------------------------------------------------

Hamming272::DataBlock random_data(sim::Rng& rng) {
  Hamming272::DataBlock d;
  for (auto& b : d) b = static_cast<std::uint8_t>(rng.next() & 0xFF);
  return d;
}

TEST(Hamming272, ParametersMatchPaper) {
  EXPECT_EQ(Hamming272::kCodeBits, 272);
  EXPECT_EQ(Hamming272::kDataSymbols * 8, 256);
  EXPECT_DOUBLE_EQ(Hamming272::kOverhead, 0.0625);  // 6.25 %
}

TEST(Hamming272, EncodeProducesCodeword) {
  sim::Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const auto data = random_data(rng);
    const auto cw = Hamming272::encode(data);
    EXPECT_TRUE(Hamming272::is_codeword(cw));
    EXPECT_EQ(Hamming272::extract(cw), data);  // systematic
  }
}

TEST(Hamming272, CleanDecode) {
  sim::Rng rng(3);
  auto cw = Hamming272::encode(random_data(rng));
  const auto r = Hamming272::decode(cw);
  EXPECT_EQ(r.status, Hamming272::DecodeStatus::kClean);
}

TEST(Hamming272, CorrectsAllSingleBitErrorsExhaustively) {
  // The paper's guarantee: "It corrects all single bit errors".
  // Exhaustive over all 272 bit positions, several random data words.
  sim::Rng rng(4);
  for (int trial = 0; trial < 5; ++trial) {
    const auto data = random_data(rng);
    const auto clean = Hamming272::encode(data);
    for (int bit = 0; bit < Hamming272::kCodeBits; ++bit) {
      auto noisy = clean;
      Hamming272::flip_bit(noisy, bit);
      const auto r = Hamming272::decode(noisy);
      ASSERT_EQ(r.status, Hamming272::DecodeStatus::kCorrected)
          << "bit " << bit;
      ASSERT_EQ(noisy, clean) << "bit " << bit;
      ASSERT_EQ(r.error_symbol, bit / 8);
    }
  }
}

TEST(Hamming272, CorrectsAnySingleSymbolError) {
  // Stronger than the paper's claim: any error burst within one byte.
  sim::Rng rng(5);
  const auto data = random_data(rng);
  const auto clean = Hamming272::encode(data);
  for (int sym = 0; sym < Hamming272::kCodeSymbols; ++sym) {
    for (int pattern = 1; pattern < 256; pattern += 17) {
      auto noisy = clean;
      noisy[static_cast<std::size_t>(sym)] ^=
          static_cast<std::uint8_t>(pattern);
      const auto r = Hamming272::decode(noisy);
      ASSERT_EQ(r.status, Hamming272::DecodeStatus::kCorrected);
      ASSERT_EQ(noisy, clean);
      ASSERT_EQ(r.error_magnitude, pattern);
    }
  }
}

TEST(Hamming272, DoubleBitErrorsAcrossSymbolsMostlyDetected) {
  // The paper claims "detects all double bit errors". A distance-3 code
  // in CORRECTING mode cannot guarantee that: ~n/q ≈ 13 % of two-symbol
  // patterns alias to a plausible single-symbol correction. We verify
  // the measured aliasing stays at that theoretical level (most
  // double-bit errors detected), and that detect_only() — the mode in
  // which the paper's claim holds exactly — flags every one of them.
  sim::Rng rng(6);
  const auto data = random_data(rng);
  const auto clean = Hamming272::encode(data);
  std::uint64_t detected = 0, miscorrected = 0, trials = 0;
  for (int b1 = 0; b1 < Hamming272::kCodeBits; b1 += 3) {
    for (int b2 = b1 + 8 - (b1 % 8); b2 < Hamming272::kCodeBits; b2 += 7) {
      auto noisy = clean;
      Hamming272::flip_bit(noisy, b1);
      Hamming272::flip_bit(noisy, b2);
      // Guaranteed detection in detect-only mode (d = 3).
      ASSERT_EQ(Hamming272::detect_only(noisy).status,
                Hamming272::DecodeStatus::kDetected);
      const auto r = Hamming272::decode(noisy);
      ++trials;
      if (r.status == Hamming272::DecodeStatus::kDetected) {
        ++detected;
      } else if (Hamming272::extract(noisy) != data) {
        ++miscorrected;
      }
    }
  }
  ASSERT_GT(trials, 1000u);
  EXPECT_GT(static_cast<double>(detected) / static_cast<double>(trials), 0.8);
  EXPECT_LT(static_cast<double>(miscorrected) / static_cast<double>(trials),
            34.0 / 255.0 + 0.03);  // the n/q aliasing bound
}

TEST(Hamming272, DoubleBitWithinSymbolIsCorrected) {
  // Two flips inside one byte form a single symbol error — repaired.
  sim::Rng rng(7);
  const auto data = random_data(rng);
  const auto clean = Hamming272::encode(data);
  auto noisy = clean;
  Hamming272::flip_bit(noisy, 80);
  Hamming272::flip_bit(noisy, 83);
  const auto r = Hamming272::decode(noisy);
  EXPECT_EQ(r.status, Hamming272::DecodeStatus::kCorrected);
  EXPECT_EQ(noisy, clean);
}

TEST(Hamming272, MostMultiBitErrorsDetected) {
  // "detects ... most multi-bit errors": measure the detection fraction
  // for random weight-4 patterns; a d=3 code detects the large majority.
  sim::Rng rng(8);
  const auto out = inject_bit_errors(4, 20'000, rng);
  EXPECT_GT(out.detected_fraction(), 0.85);
  EXPECT_LT(out.miscorrected_fraction(), 0.15);
}

// ---- interleaving ----------------------------------------------------------------

TEST(Interleaver, RoundTripIdentity) {
  sim::Rng rng(0x117);
  for (int depth : {1, 2, 6, 8}) {
    Interleaver il(depth);
    std::vector<Hamming272::CodeBlock> blocks(
        static_cast<std::size_t>(depth));
    for (auto& b : blocks)
      for (auto& s : b) s = static_cast<std::uint8_t>(rng.next() & 0xFF);
    EXPECT_EQ(il.deinterleave(il.interleave(blocks)), blocks) << depth;
  }
}

TEST(Interleaver, BurstUpToDepthAlwaysCorrected) {
  // The guarantee: a burst of <= D consecutive wire symbols puts at most
  // one corrupted symbol in each codeword — always corrected.
  sim::Rng rng(0x118);
  for (int depth : {2, 4, 6}) {
    for (int trial = 0; trial < 50; ++trial) {
      ASSERT_TRUE(burst_survives(depth, depth, rng)) << "depth " << depth;
    }
  }
}

TEST(Interleaver, BurstBeyondDepthEventuallyFails) {
  // A burst of 2D symbols puts two errors into every codeword it spans:
  // beyond the code's correction radius, so data survives at most by
  // (rare) miscorrection coincidence.
  sim::Rng rng(0x119);
  int failures = 0;
  for (int trial = 0; trial < 50; ++trial)
    failures += burst_survives(4, 8, rng) ? 0 : 1;
  EXPECT_GT(failures, 40);
}

TEST(Interleaver, DepthOneCannotTakeBursts) {
  sim::Rng rng(0x11A);
  int failures = 0;
  for (int trial = 0; trial < 20; ++trial)
    failures += burst_survives(1, 2, rng) ? 0 : 1;
  EXPECT_GT(failures, 15);
}

TEST(Interleaver, CellSizedGroupMatchesDemonstratorPayload) {
  // A 256 B cell payload (~216 B on the wire) carries 6 interleaved
  // blocks of 34 symbols = 204 symbols: the natural cell grouping.
  Interleaver il(6);
  EXPECT_EQ(il.wire_symbols(), 204);
  EXPECT_LE(il.wire_symbols(), 216);
}

TEST(Interleaver, RejectsWrongBlockCount) {
  Interleaver il(3);
  std::vector<Hamming272::CodeBlock> two(2);
  EXPECT_DEATH(il.interleave(two), "need exactly");
}

// ---- channels -----------------------------------------------------------------

TEST(Channel, BscFlipCountMatchesRate) {
  sim::Rng rng(9);
  BinarySymmetricChannel bsc(0.01, rng.split());
  std::uint64_t flips = 0;
  const int blocks = 20'000;
  for (int i = 0; i < blocks; ++i) {
    Hamming272::CodeBlock cw{};
    flips += static_cast<std::uint64_t>(bsc.transmit(cw));
  }
  const double expected = 0.01 * 272 * blocks;
  EXPECT_NEAR(static_cast<double>(flips), expected, expected * 0.05);
}

TEST(Channel, BscZeroRateIsClean) {
  sim::Rng rng(10);
  BinarySymmetricChannel bsc(0.0, rng.split());
  Hamming272::CodeBlock cw{};
  EXPECT_EQ(bsc.transmit(cw), 0);
}

TEST(Channel, InjectWeightOneAlwaysCorrects) {
  sim::Rng rng(11);
  const auto out = inject_bit_errors(1, 5'000, rng);
  EXPECT_EQ(out.corrected_ok, out.trials);
  EXPECT_EQ(out.miscorrected, 0u);
  EXPECT_EQ(out.detected, 0u);
}

TEST(Channel, InjectWeightZeroIsClean) {
  sim::Rng rng(12);
  const auto out = inject_bit_errors(0, 100, rng);
  EXPECT_EQ(out.corrected_ok, out.trials);
}

TEST(Channel, RunBscModerateNoise) {
  sim::Rng rng(13);
  const auto stats = run_bsc(1e-3, 20'000, rng);
  EXPECT_EQ(stats.blocks, 20'000u);
  // At 1e-3 most blocks are clean or single-error corrected.
  EXPECT_GT(stats.clean + stats.corrected, stats.blocks * 9 / 10);
  // Residual silent corruption must be rare.
  EXPECT_LT(stats.miscorrection_rate(), 5e-3);
}

TEST(Channel, GilbertElliottBadStateRaisesErrors) {
  sim::Rng rng(14);
  GilbertElliottChannel::Params p;
  p.good_ber = 0.0;
  p.bad_ber = 0.05;
  p.mean_good_blocks = 10.0;
  p.mean_bad_blocks = 10.0;
  GilbertElliottChannel ch(p, rng.split());
  std::uint64_t flips = 0;
  for (int i = 0; i < 20'000; ++i) {
    Hamming272::CodeBlock cw{};
    flips += static_cast<std::uint64_t>(ch.transmit(cw));
  }
  // Half the time in the bad state: ~0.5 * 0.05 * 272 flips per block.
  const double expected = 0.5 * 0.05 * 272 * 20'000;
  EXPECT_NEAR(static_cast<double>(flips), expected, expected * 0.15);
}

// ---- analytics -----------------------------------------------------------------

TEST(Analytic, SymbolErrorProb) {
  EXPECT_NEAR(symbol_error_prob(1e-10), 8e-10, 1e-12);
  EXPECT_DOUBLE_EQ(symbol_error_prob(0.0), 0.0);
}

TEST(Analytic, PostFecMatchesPaperTier) {
  // Raw 1e-10 -> "better than 1e-17 user BER" (§IV.C).
  const double out = post_fec_ber(1e-10);
  EXPECT_LT(out, 1e-16);
  EXPECT_GT(out, 1e-19);  // sanity: not absurdly optimistic
}

TEST(Analytic, PostArqMatchesPaperTier) {
  // With hop-by-hop retransmission only miscorrections escape. At the
  // measured d=3 aliasing fraction (~0.12) the worst-case raw BER gains
  // another decade past the FEC tier; the paper's "better than 1e-21"
  // corresponds to the 1e-12 end of its raw-BER envelope.
  EXPECT_LT(post_arq_ber(1e-10, 0.12), 2e-18);
  EXPECT_LT(post_arq_ber(1e-12, 0.12), 1e-21);
}

TEST(Analytic, WaterfallMonotoneInRawBer) {
  EXPECT_LT(post_fec_ber(1e-12), post_fec_ber(1e-10));
  EXPECT_LT(frame_multi_error_prob(1e-12), frame_multi_error_prob(1e-10));
}

TEST(Analytic, FrameMultiErrorScalesQuadratically) {
  // P(>=2 symbol errors) ~ C(34,2) ps^2: two decades in p give four in P.
  const double r = frame_multi_error_prob(1e-8) / frame_multi_error_prob(1e-10);
  EXPECT_NEAR(std::log10(r), 4.0, 0.05);
}

}  // namespace
}  // namespace osmosis::fec
