// Tests for the VOQ ingress adapter: FIFO order, control-class strict
// priority, occupancy accounting.

#include <gtest/gtest.h>

#include "src/sw/voq.hpp"

namespace osmosis::sw {
namespace {

Cell make_cell(int dst, std::uint64_t seq,
               sim::TrafficClass cls = sim::TrafficClass::kData) {
  Cell c;
  c.src = 0;
  c.dst = dst;
  c.seq = seq;
  c.cls = cls;
  return c;
}

TEST(VoqBank, FifoPerDestination) {
  VoqBank v(0, 4);
  v.push(make_cell(2, 0));
  v.push(make_cell(2, 1));
  v.push(make_cell(3, 0));
  EXPECT_EQ(v.pop(2).seq, 0u);
  EXPECT_EQ(v.pop(2).seq, 1u);
  EXPECT_EQ(v.pop(3).seq, 0u);
}

TEST(VoqBank, ControlClassHasStrictPriority) {
  // §IV: "a strict priority selection mechanism at the output of each
  // buffer" keeps control latency low.
  VoqBank v(0, 2);
  v.push(make_cell(1, 0, sim::TrafficClass::kData));
  v.push(make_cell(1, 1, sim::TrafficClass::kData));
  v.push(make_cell(1, 0, sim::TrafficClass::kControl));
  EXPECT_EQ(v.pop(1).cls, sim::TrafficClass::kControl);
  EXPECT_EQ(v.pop(1).seq, 0u);  // data resumes in order
  EXPECT_EQ(v.pop(1).seq, 1u);
}

TEST(VoqBank, OccupancyAccounting) {
  VoqBank v(1, 4);
  EXPECT_EQ(v.total_occupancy(), 0);
  v.push(make_cell(0, 0));
  v.push(make_cell(0, 1));
  v.push(make_cell(3, 0));
  EXPECT_EQ(v.occupancy(0), 2);
  EXPECT_EQ(v.occupancy(3), 1);
  EXPECT_EQ(v.occupancy(1), 0);
  EXPECT_EQ(v.total_occupancy(), 3);
  v.pop(0);
  EXPECT_EQ(v.total_occupancy(), 2);
}

TEST(VoqBank, TracksMaxDepth) {
  VoqBank v(0, 2);
  for (int i = 0; i < 5; ++i) v.push(make_cell(1, static_cast<unsigned>(i)));
  for (int i = 0; i < 5; ++i) v.pop(1);
  v.push(make_cell(1, 9));
  EXPECT_EQ(v.max_depth_seen(), 5);
}

TEST(VoqBank, PopEmptyDies) {
  VoqBank v(0, 2);
  EXPECT_DEATH(v.pop(0), "empty VOQ");
}

TEST(VoqBank, RejectsOutOfRangeDestination) {
  VoqBank v(0, 2);
  EXPECT_DEATH(v.push(make_cell(2, 0)), "out of range");
  EXPECT_DEATH(v.occupancy(-1), "out of range");
}

}  // namespace
}  // namespace osmosis::sw
