// Tests for the central schedulers: matching validity properties across
// all kinds, FLPPR's single-cycle grant latency vs the pipelined prior
// art (Fig. 6), throughput, flow-control blocking, fairness.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "src/sim/rng.hpp"
#include "src/sw/scheduler.hpp"

namespace osmosis::sw {
namespace {

struct KindParam {
  SchedulerKind kind;
  const char* name;
  int receivers;
};

class MatchingValidityTest : public ::testing::TestWithParam<KindParam> {};

TEST_P(MatchingValidityTest, GrantsFormValidMatching) {
  // Property: over random demand, every tick's grant set matches each
  // input at most once and each (output, receiver) at most once, and
  // never grants demand that does not exist.
  const auto param = GetParam();
  SchedulerConfig cfg;
  cfg.kind = param.kind;
  cfg.ports = 16;
  cfg.receivers = param.receivers;
  cfg.seed = 99;
  auto sched = make_scheduler(cfg);

  sim::Rng rng(1234);
  std::map<std::pair<int, int>, long> owed;  // requests minus grants
  for (int t = 0; t < 2'000; ++t) {
    for (int in = 0; in < cfg.ports; ++in) {
      if (rng.bernoulli(0.4)) {
        const int out = static_cast<int>(rng.uniform_int(16));
        sched->request(in, out);
        ++owed[{in, out}];
      }
    }
    const auto grants = sched->tick();
    std::set<int> inputs;
    std::set<std::pair<int, int>> slots;
    for (const auto& g : grants) {
      ASSERT_TRUE(inputs.insert(g.input).second)
          << "input " << g.input << " matched twice in one cycle";
      ASSERT_TRUE(slots.insert({g.output, g.receiver}).second)
          << "(output, receiver) reused";
      ASSERT_GE(g.receiver, 0);
      ASSERT_LT(g.receiver, param.receivers);
      const long remaining = --owed[std::make_pair(g.input, g.output)];
      ASSERT_GE(remaining, 0)
          << "granted more cells than requested for (" << g.input << ","
          << g.output << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, MatchingValidityTest,
    ::testing::Values(KindParam{SchedulerKind::kIslip, "islip", 1},
                      KindParam{SchedulerKind::kIslip, "islip_dual", 2},
                      KindParam{SchedulerKind::kPim, "pim", 1},
                      KindParam{SchedulerKind::kPipelinedIslip, "pipe", 1},
                      KindParam{SchedulerKind::kPipelinedIslip, "pipe_dual",
                                2},
                      KindParam{SchedulerKind::kFlppr, "flppr", 1},
                      KindParam{SchedulerKind::kFlppr, "flppr_dual", 2},
                      KindParam{SchedulerKind::kTdm, "tdm", 1},
                      KindParam{SchedulerKind::kWfa, "wfa", 1},
                      KindParam{SchedulerKind::kWfa, "wfa_dual", 2}),
    [](const auto& info) { return std::string(info.param.name); });

/// Cycles from a single request in an otherwise idle switch to its grant.
int grant_latency_of_single_request(Scheduler& sched, int in, int out,
                                    int max_cycles = 64) {
  sched.request(in, out);
  for (int t = 0; t < max_cycles; ++t) {
    const auto grants = sched.tick();
    for (const auto& g : grants)
      if (g.input == in && g.output == out) return t + 1;
  }
  return -1;
}

TEST(Flppr, SingleRequestGrantedInOneCycle) {
  // Fig. 6: FLPPR needs a single packet cycle from request to grant in
  // a lightly loaded 64-port switch.
  SchedulerConfig cfg;
  cfg.kind = SchedulerKind::kFlppr;
  cfg.ports = 64;
  cfg.receivers = 1;
  auto sched = make_scheduler(cfg);
  // Warm the pipeline with a few idle cycles first.
  for (int t = 0; t < 12; ++t) sched->tick();
  EXPECT_EQ(grant_latency_of_single_request(*sched, 5, 9), 1);
  EXPECT_EQ(grant_latency_of_single_request(*sched, 63, 0), 1);
}

TEST(PipelinedIslip, SingleRequestWaitsPipelineDepth) {
  // Fig. 6: prior art grants after ~log2(N) = 6 cycles at 64 ports.
  SchedulerConfig cfg;
  cfg.kind = SchedulerKind::kPipelinedIslip;
  cfg.ports = 64;
  cfg.receivers = 1;
  auto sched = make_scheduler(cfg);
  for (int t = 0; t < 12; ++t) sched->tick();
  const int latency = grant_latency_of_single_request(*sched, 5, 9);
  EXPECT_GE(latency, 5);
  EXPECT_LE(latency, 7);
}

TEST(Flppr, EarliestFirstPolicyIsTheLowLatencyOne) {
  // Ablation: the FLPPR novelty is serving the soonest-issuing
  // sub-scheduler first. With a naive fixed service order the same
  // hardware averages ~(K+1)/2 cycles of request-to-grant latency.
  auto latency_of = [](FlpprPolicy policy) {
    SchedulerConfig cfg;
    cfg.kind = SchedulerKind::kFlppr;
    cfg.ports = 64;
    cfg.receivers = 1;
    cfg.flppr_policy = policy;
    auto sched = make_scheduler(cfg);
    for (int t = 0; t < 12; ++t) sched->tick();
    double total = 0;
    int samples = 0;
    for (int probe = 0; probe < 24; ++probe) {
      const int in = (probe * 7) % 64;
      const int out = (probe * 13 + 5) % 64;
      const int lat = grant_latency_of_single_request(*sched, in, out);
      EXPECT_GT(lat, 0);
      total += lat;
      ++samples;
    }
    return total / samples;
  };
  const double fast = latency_of(FlpprPolicy::kEarliestFirst);
  const double naive = latency_of(FlpprPolicy::kFixedOrder);
  EXPECT_LT(fast, 1.3);
  EXPECT_GT(naive, fast + 1.0);
}

TEST(Flppr, DepthMatchesLog2Ports) {
  SchedulerConfig cfg;
  cfg.kind = SchedulerKind::kFlppr;
  cfg.ports = 64;
  auto sched = make_scheduler(cfg);
  EXPECT_NE(sched->name().find("depth=6"), std::string::npos);
}

TEST(Scheduler, SaturatedUniformThroughputNear100) {
  // [17]: VOQ + good matching reaches ~100 % throughput. Saturate all
  // VOQs and count grants per cycle.
  for (SchedulerKind kind :
       {SchedulerKind::kIslip, SchedulerKind::kFlppr,
        SchedulerKind::kPipelinedIslip}) {
    SchedulerConfig cfg;
    cfg.kind = kind;
    cfg.ports = 16;
    cfg.receivers = 1;
    auto sched = make_scheduler(cfg);
    sim::Rng rng(7);
    // Pre-fill: every VOQ holds plenty of cells.
    for (int in = 0; in < 16; ++in)
      for (int out = 0; out < 16; ++out)
        for (int k = 0; k < 64; ++k) sched->request(in, out);
    std::uint64_t grants = 0;
    const int cycles = 500;
    for (int t = 0; t < cycles; ++t) grants += sched->tick().size();
    const double throughput =
        static_cast<double>(grants) / (cycles * 16.0);
    EXPECT_GT(throughput, 0.95) << "kind " << static_cast<int>(kind);
  }
}

TEST(Wfa, ProducesMaximalMatching) {
  // After a WFA tick no augmenting pair may remain: any (input, output)
  // with leftover demand must have its input matched or its output full.
  SchedulerConfig cfg;
  cfg.kind = SchedulerKind::kWfa;
  cfg.ports = 16;
  cfg.receivers = 1;
  auto sched = make_scheduler(cfg);
  sim::Rng rng(0x3FA);
  for (int t = 0; t < 200; ++t) {
    std::vector<std::vector<int>> demand(16, std::vector<int>(16, 0));
    for (int in = 0; in < 16; ++in) {
      if (rng.bernoulli(0.6)) {
        const int out = static_cast<int>(rng.uniform_int(16));
        sched->request(in, out);
        ++demand[static_cast<std::size_t>(in)][static_cast<std::size_t>(out)];
      }
    }
    const auto grants = sched->tick();
    std::vector<bool> in_matched(16, false);
    std::vector<int> out_used(16, 0);
    for (const auto& g : grants) {
      in_matched[static_cast<std::size_t>(g.input)] = true;
      ++out_used[static_cast<std::size_t>(g.output)];
      --demand[static_cast<std::size_t>(g.input)]
              [static_cast<std::size_t>(g.output)];
    }
    // demand[][] now holds what was requested this tick minus grants;
    // older leftovers also count, so query the scheduler's residual via
    // a second tick opportunity instead: check only this tick's fresh
    // leftovers for augmenting pairs.
    for (int in = 0; in < 16; ++in) {
      for (int out = 0; out < 16; ++out) {
        if (demand[static_cast<std::size_t>(in)]
                  [static_cast<std::size_t>(out)] > 0) {
          EXPECT_TRUE(in_matched[static_cast<std::size_t>(in)] ||
                      out_used[static_cast<std::size_t>(out)] >= 1)
              << "augmenting pair (" << in << "," << out << ") left";
        }
      }
    }
  }
}

TEST(Wfa, SaturatedThroughputNearFull) {
  SchedulerConfig cfg;
  cfg.kind = SchedulerKind::kWfa;
  cfg.ports = 16;
  cfg.receivers = 1;
  auto sched = make_scheduler(cfg);
  for (int in = 0; in < 16; ++in)
    for (int out = 0; out < 16; ++out)
      for (int k = 0; k < 64; ++k) sched->request(in, out);
  std::uint64_t grants = 0;
  for (int t = 0; t < 400; ++t) grants += sched->tick().size();
  EXPECT_GT(static_cast<double>(grants) / (400.0 * 16.0), 0.99);
}

TEST(Scheduler, BlockedOutputReceivesNoGrants) {
  SchedulerConfig cfg;
  cfg.kind = SchedulerKind::kFlppr;
  cfg.ports = 8;
  auto sched = make_scheduler(cfg);
  for (int in = 0; in < 8; ++in) {
    sched->request(in, 3);
    sched->request(in, 4);
  }
  sched->block_output(3);
  for (int t = 0; t < 50; ++t) {
    for (const auto& g : sched->tick()) EXPECT_NE(g.output, 3);
  }
  // Unblocking releases the parked demand.
  sched->unblock_output(3);
  std::uint64_t grants_to_3 = 0;
  for (int t = 0; t < 50; ++t)
    for (const auto& g : sched->tick())
      if (g.output == 3) ++grants_to_3;
  EXPECT_EQ(grants_to_3, 8u);
}

TEST(Scheduler, DualReceiverDoublesOutputCapacity) {
  // All inputs demand the same output: with R receivers the output can
  // sink R cells per cycle.
  SchedulerConfig cfg;
  cfg.kind = SchedulerKind::kIslip;
  cfg.ports = 8;
  cfg.receivers = 2;
  auto sched = make_scheduler(cfg);
  for (int in = 0; in < 8; ++in)
    for (int k = 0; k < 10; ++k) sched->request(in, 0);
  const auto grants = sched->tick();
  int to_zero = 0;
  for (const auto& g : grants) to_zero += g.output == 0;
  EXPECT_EQ(to_zero, 2);
}

TEST(Scheduler, IslipFairUnderPersistentContention) {
  // Round-robin pointers must serve all inputs contending for one
  // output, with no starvation.
  SchedulerConfig cfg;
  cfg.kind = SchedulerKind::kIslip;
  cfg.ports = 8;
  cfg.receivers = 1;
  auto sched = make_scheduler(cfg);
  std::vector<int> served(8, 0);
  for (int t = 0; t < 800; ++t) {
    for (int in = 0; in < 8; ++in) sched->request(in, 5);
    for (const auto& g : sched->tick()) ++served[static_cast<std::size_t>(g.input)];
  }
  for (int in = 0; in < 8; ++in)
    EXPECT_NEAR(served[static_cast<std::size_t>(in)], 100, 25) << "input " << in;
}

TEST(Scheduler, TdmServesDiagonalPattern) {
  SchedulerConfig cfg;
  cfg.kind = SchedulerKind::kTdm;
  cfg.ports = 4;
  auto sched = make_scheduler(cfg);
  sched->request(0, 0);
  const auto g0 = sched->tick();  // t=0 connects 0->0
  ASSERT_EQ(g0.size(), 1u);
  EXPECT_EQ(g0[0].input, 0);
  EXPECT_EQ(g0[0].output, 0);
  sched->request(0, 1);  // only served when the rotation hits 0->1 (t=1)
  const auto g1 = sched->tick();
  ASSERT_EQ(g1.size(), 1u);
  EXPECT_EQ(g1[0].output, 1);
}

TEST(Scheduler, OutstandingTracksRequestsMinusGrants) {
  SchedulerConfig cfg;
  cfg.kind = SchedulerKind::kIslip;
  cfg.ports = 4;
  auto sched = make_scheduler(cfg);
  sched->request(0, 1);
  sched->request(2, 3);
  EXPECT_EQ(sched->outstanding(), 2u);
  const auto grants = sched->tick();
  EXPECT_EQ(sched->outstanding(), 2u - grants.size());
}

TEST(Scheduler, FactoryRejectsInvalid) {
  SchedulerConfig cfg;
  cfg.ports = 0;
  EXPECT_DEATH(make_scheduler(cfg), "at least one port");
}

}  // namespace
}  // namespace osmosis::sw
