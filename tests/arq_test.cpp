// Tests for hop-by-hop retransmission (go-back-N), the reliable control
// channel, and the reliability waterfall.

#include <gtest/gtest.h>

#include "src/arq/go_back_n.hpp"
#include "src/arq/reliable_control.hpp"
#include "src/arq/residual.hpp"

namespace osmosis::arq {
namespace {

TEST(GoBackN, CleanLinkFullGoodput) {
  GoBackNParams p;
  p.window = 32;
  GoBackNLink link(p, sim::Rng(1));
  const auto s = link.run_saturated(20'000);
  EXPECT_GT(s.goodput(), 0.99);
  EXPECT_EQ(s.retransmissions, 0u);
  EXPECT_EQ(s.residual_errors, 0u);
}

TEST(GoBackN, WindowSmallerThanRttLimitsGoodput) {
  GoBackNParams p;
  p.window = 4;
  p.link_delay_slots = 8;
  p.ack_delay_slots = 8;
  GoBackNLink link(p, sim::Rng(2));
  const auto s = link.run_saturated(20'000);
  // At most window/RTT of the line rate.
  const double bound = 4.0 / 16.0;
  EXPECT_LT(s.goodput(), bound * 1.15);
  EXPECT_GT(s.goodput(), bound * 0.7);
}

TEST(GoBackN, RecoversDetectedLosses) {
  GoBackNParams p;
  p.window = 64;
  p.detected_loss_prob = 0.01;
  GoBackNLink link(p, sim::Rng(3));
  const auto s = link.run_saturated(50'000);
  EXPECT_GT(s.retransmissions, 0u);
  EXPECT_EQ(s.residual_errors, 0u);
  // Goodput degrades by roughly the loss-recovery overhead, not more
  // than a few multiples of p * RTT.
  EXPECT_GT(s.goodput(), 0.85);
}

TEST(GoBackN, DeliveryInOrderUnderLoss) {
  GoBackNParams p;
  p.window = 16;
  p.detected_loss_prob = 0.05;
  GoBackNLink link(p, sim::Rng(4));
  const auto s = link.run_saturated(30'000);
  // GBN receivers discard out-of-order arrivals; nothing is *delivered*
  // out of order by construction, and progress still happens.
  EXPECT_GT(s.delivered, 10'000u);
}

TEST(GoBackN, UndetectedErrorsCounted) {
  GoBackNParams p;
  p.undetected_error_prob = 0.001;
  GoBackNLink link(p, sim::Rng(5));
  const auto s = link.run_saturated(50'000);
  const double rate =
      static_cast<double>(s.residual_errors) / static_cast<double>(s.delivered);
  EXPECT_NEAR(rate, 0.001, 0.0005);
}

TEST(GoBackN, LightLoadNoRetransmissionsNeeded) {
  GoBackNParams p;
  GoBackNLink link(p, sim::Rng(6));
  const auto s = link.run(50'000, 0.3);
  EXPECT_NEAR(s.goodput(), 0.3, 0.01);
  EXPECT_EQ(s.retransmissions, 0u);
}

TEST(GoBackN, HeavyLossStillProgresses) {
  GoBackNParams p;
  p.window = 8;
  p.detected_loss_prob = 0.3;
  GoBackNLink link(p, sim::Rng(7));
  const auto s = link.run_saturated(50'000);
  EXPECT_GT(s.delivered, 5'000u);
  EXPECT_EQ(s.residual_errors, 0u);
}

TEST(ReliableControl, ConvergesOnCleanChannel) {
  ReliableControlChannel ch(8, 0.0, sim::Rng(8));
  const auto s = ch.run(10'000, 0.7);
  EXPECT_TRUE(s.consistent_at_end);
  EXPECT_EQ(s.messages_corrupted, 0u);
  EXPECT_EQ(ch.adapter_counters(), ch.scheduler_counters());
}

TEST(ReliableControl, ConvergesDespiteHeavyCorruption) {
  // [19]: the scheduler's VOQ image must end exactly consistent even
  // when half the control messages are lost.
  ReliableControlChannel ch(16, 0.5, sim::Rng(9));
  const auto s = ch.run(20'000, 0.9);
  EXPECT_TRUE(s.consistent_at_end);
  EXPECT_GT(s.messages_corrupted, 5'000u);
  EXPECT_GT(s.resyncs, 0u);
  EXPECT_EQ(ch.adapter_counters(), ch.scheduler_counters());
}

TEST(ReliableControl, AbsoluteCountsAreIdempotent) {
  // Losing every message except the last still resynchronizes fully.
  ReliableControlChannel ch(4, 0.95, sim::Rng(10));
  const auto s = ch.run(5'000, 1.0);
  EXPECT_TRUE(s.consistent_at_end);
}

TEST(Waterfall, TiersImproveMonotonically) {
  const auto tier = reliability_waterfall(1e-10);
  EXPECT_LT(tier.post_fec_ber, tier.raw_ber);
  EXPECT_LT(tier.post_arq_ber, tier.post_fec_ber);
}

TEST(Waterfall, MatchesPaperOrdersOfMagnitude) {
  // §IV.C: raw optics 1e-10..1e-12 -> FEC "better than 1e-17" -> ARQ
  // "better than 1e-21". With the measured conditional miscorrection
  // (~0.12, the d=3 aliasing fraction), the worst-case raw BER lands at
  // ~1e-17 post-FEC with ARQ buying another decade; the best-case raw
  // BER passes 1e-21 already at the FEC tier and 1e-22 after ARQ.
  const auto worst = reliability_waterfall(1e-10, 0.12);
  EXPECT_LT(worst.post_fec_ber, 1e-16);
  EXPECT_LT(worst.post_arq_ber, worst.post_fec_ber * 0.2);
  const auto best = reliability_waterfall(1e-12, 0.12);
  EXPECT_LT(best.post_fec_ber, 1e-20);
  EXPECT_LT(best.post_arq_ber, 1e-21);
}

TEST(Waterfall, SweepCoversEnvelope) {
  const auto tiers = reliability_sweep({1e-12, 1e-11, 1e-10});
  ASSERT_EQ(tiers.size(), 3u);
  EXPECT_LT(tiers[0].post_fec_ber, tiers[2].post_fec_ber);
}

}  // namespace
}  // namespace osmosis::arq
