// Tests for fat-tree sizing (§VI.C), buffer placement (Fig. 2), and the
// flow-controlled multistage fabric simulation (Figs. 3-4).

#include <gtest/gtest.h>

#include "src/fabric/fabric_sim.hpp"
#include "src/topo/sizing.hpp"
#include "src/fabric/placement.hpp"

namespace osmosis::fabric {
namespace {

using topo::cable_hops;
using topo::path_latency_ns;
using topo::size_fat_tree;

// ---- sizing (§VI.C) ----------------------------------------------------------

TEST(FatTree, Osmosis64PortGives2048InThreeStages) {
  // §V/§VI.C: "a two-level (i.e., three-stage) fat-tree topology yields
  // 2048 ports at the fabric level".
  const auto s = size_fat_tree(64, 2048);
  EXPECT_EQ(s.levels, 2);
  EXPECT_EQ(s.path_stages, 3);
  EXPECT_EQ(s.endpoint_ports, 2048u);
  EXPECT_EQ(s.switches_total, 96u);  // 64 leaves + 32 spines
}

TEST(FatTree, HighEndElectronic32PortNeedsFiveStages) {
  const auto s = size_fat_tree(32, 2048);
  EXPECT_EQ(s.path_stages, 5);
  EXPECT_GE(s.endpoint_ports, 2048u);
}

TEST(FatTree, Commodity8PortNeedsNineStages) {
  const auto s = size_fat_tree(8, 2048);
  EXPECT_EQ(s.path_stages, 9);
  EXPECT_GE(s.endpoint_ports, 2048u);
}

TEST(FatTree, Commodity12PortSavesALevel) {
  // "commodity parts will probably offer only 8 to 12 ports": the
  // paper's 9-stage figure corresponds to the 8-port end; 12-port parts
  // reach 2048 endpoints one level earlier (7 stages) — still far more
  // than OSMOSIS' 3.
  const auto s = size_fat_tree(12, 2048);
  EXPECT_EQ(s.path_stages, 7);
  EXPECT_GE(s.endpoint_ports, 2048u);
}

TEST(FatTree, OsmosisSavesTwoOeoLayersVsHighEnd) {
  // §VI.C: "OSMOSIS saves two layers of OEO conversions in the fat tree".
  const auto osmosis = size_fat_tree(64, 2048);
  const auto electronic = size_fat_tree(32, 2048);
  EXPECT_EQ(electronic.oeo_pairs_per_path - osmosis.oeo_pairs_per_path, 2u);
}

TEST(FatTree, SingleSwitchCase) {
  const auto s = size_fat_tree(64, 64);
  EXPECT_EQ(s.levels, 1);
  EXPECT_EQ(s.path_stages, 1);
  EXPECT_EQ(s.switches_total, 1u);
  EXPECT_EQ(s.interswitch_cables, 0u);
}

TEST(FatTree, SwitchCountFormulaHolds) {
  // Folded Clos: total switches = stages * endpoints / radix.
  for (int radix : {8, 16, 32, 64}) {
    const auto s = size_fat_tree(radix, 2048);
    EXPECT_EQ(s.switches_total,
              static_cast<std::uint64_t>(s.path_stages) * s.endpoint_ports /
                  static_cast<std::uint64_t>(radix))
        << "radix " << radix;
  }
}

TEST(FatTree, PathLatencyComposition) {
  const auto s = size_fat_tree(64, 2048);
  // 3 stages x 100 ns + 4 cable hops x 50 ns.
  EXPECT_DOUBLE_EQ(path_latency_ns(s, 100.0, 50.0), 500.0);
  EXPECT_EQ(cable_hops(s), 4);
}

TEST(FatTree, RejectsOddRadix) {
  EXPECT_DEATH(size_fat_tree(7, 100), "even");
}

// ---- buffer placement (Fig. 2) -------------------------------------------------

TEST(Placement, OptionOneDoublesOeo) {
  const auto rows = compare_placements(250.0, 51.2, 51.2);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].oeo_pairs_per_stage, 2);
  EXPECT_EQ(rows[1].oeo_pairs_per_stage, 1);
  EXPECT_EQ(rows[2].oeo_pairs_per_stage, 1);
}

TEST(Placement, OptionTwoPaysCableOnEveryGrant) {
  const double cable = 250.0, cell = 51.2, sched = 51.2;
  const auto o2 = analyze_placement(BufferPlacement::kOutputOnly, cable, cell,
                                    sched);
  const auto o3 = analyze_placement(BufferPlacement::kInputOnly, cable, cell,
                                    sched);
  EXPECT_NEAR(o2.request_grant_rtt_ns - o3.request_grant_rtt_ns, 2.0 * cable,
              1e-9);
}

TEST(Placement, OptionThreeBuffersSizedByRtt) {
  const auto a = analyze_placement(BufferPlacement::kInputOnly, 250.0, 51.2,
                                   51.2);
  // 2 x 250 ns / 51.2 ns/cell ~ 10 cells + margin.
  EXPECT_GE(a.min_input_buffer_cells, 10);
  EXPECT_LE(a.min_input_buffer_cells, 14);
  EXPECT_FALSE(a.point_to_point_fc);  // many-to-one, relayed via scheduler
}

TEST(Placement, BufferCellsForRtt) {
  EXPECT_EQ(buffer_cells_for_rtt(0.0, 51.2, 0), 0);
  EXPECT_EQ(buffer_cells_for_rtt(512.0, 51.2, 2), 12);
}

// ---- multistage simulation (Figs. 3-4) ------------------------------------------

FabricSimConfig small_fabric() {
  FabricSimConfig cfg;
  cfg.radix = 8;  // 32 hosts, 8 leaves + 4 spines
  cfg.trunk_cable_slots = 4;
  cfg.buffer_cells = 16;
  cfg.warmup_slots = 1'000;
  cfg.measure_slots = 12'000;
  return cfg;
}

TEST(FabricSim, LosslessAndInOrderUnderUniformLoad) {
  const auto r = run_fabric_uniform(small_fabric(), 0.7, 31);
  EXPECT_EQ(r.buffer_overflows, 0u);
  EXPECT_EQ(r.out_of_order, 0u);
  EXPECT_GT(r.delivered, 100'000u);
}

TEST(FabricSim, ThroughputMatchesOfferedLoad) {
  for (double load : {0.3, 0.6}) {
    const auto r = run_fabric_uniform(small_fabric(), load, 37);
    EXPECT_NEAR(r.throughput, load, 0.03) << "load " << load;
  }
}

TEST(FabricSim, BuffersNeverExceedCapacity) {
  auto cfg = small_fabric();
  cfg.buffer_cells = 6;
  const auto r = run_fabric_uniform(cfg, 0.9, 41);
  EXPECT_EQ(r.buffer_overflows, 0u);
  EXPECT_LE(r.max_leaf_input_occupancy, cfg.buffer_cells);
  EXPECT_LE(r.max_spine_input_occupancy, cfg.buffer_cells);
}

TEST(FabricSim, SmallBuffersThrottleButNeverDrop) {
  // Figs. 3-4 story: the FC loop has a deterministic RTT; buffers
  // smaller than the RTT product cost throughput, never packets.
  auto starved = small_fabric();
  starved.buffer_cells = 2;  // far below the trunk RTT of ~8 slots
  starved.trunk_cable_slots = 8;
  const auto r_starved = run_fabric_uniform(starved, 0.9, 43);

  auto sized = small_fabric();
  sized.trunk_cable_slots = 8;
  sized.buffer_cells = buffer_cells_for_rtt(2.0 * 8.0, 1.0, 4);
  const auto r_sized = run_fabric_uniform(sized, 0.9, 43);

  EXPECT_EQ(r_starved.buffer_overflows, 0u);
  EXPECT_LT(r_starved.throughput, r_sized.throughput * 0.8);
}

TEST(FabricSim, RttSizedBuffersSustainHighLoad) {
  auto cfg = small_fabric();
  cfg.trunk_cable_slots = 6;
  cfg.buffer_cells = buffer_cells_for_rtt(2.0 * 6.0, 1.0, 4);
  const auto r = run_fabric_uniform(cfg, 0.85, 47);
  EXPECT_GT(r.throughput, 0.80);
  EXPECT_EQ(r.buffer_overflows, 0u);
}

TEST(FabricSim, HotspotStaysLossless) {
  // Adversarial many-to-one pressure exercises the many-to-one FC that
  // §IV.B's scheduler relay solves.
  auto cfg = small_fabric();
  const int hosts = cfg.radix * cfg.radix / 2;
  FabricSim sim(cfg, sim::make_hotspot(hosts, 0.6, 5, 0.5, 51));
  const auto r = sim.run();
  EXPECT_EQ(r.buffer_overflows, 0u);
  EXPECT_EQ(r.out_of_order, 0u);
}

TEST(FabricSim, LargerRadixScalesHostCount) {
  FabricSimConfig cfg = small_fabric();
  cfg.radix = 16;
  cfg.measure_slots = 4'000;
  const auto r = run_fabric_uniform(cfg, 0.5, 53);
  EXPECT_EQ(r.hosts, 128);
  EXPECT_EQ(r.buffer_overflows, 0u);
}

TEST(FabricSim, DelayIncludesCableFlightTimes) {
  // Remote traffic crosses host + 2 trunk cables + 3 switch stages; the
  // minimum end-to-end delay must exceed the raw flight time.
  auto cfg = small_fabric();
  cfg.trunk_cable_slots = 10;
  const auto r = run_fabric_uniform(cfg, 0.1, 59);
  // Remote minimum: host(1) + trunk(10) + trunk(10) + egress(1) = 22;
  // 1/8 of traffic is leaf-local (~3 slots), so the mean sits near
  // 0.875 * 22 + 0.125 * 3 ~ 19.6 at light load.
  EXPECT_GT(r.mean_delay_slots, 18.0);
  EXPECT_LT(r.mean_delay_slots, 26.0);
}

TEST(FabricSim, RequiresImmediateIssueScheduler) {
  auto cfg = small_fabric();
  cfg.scheduler = sw::SchedulerKind::kFlppr;
  EXPECT_DEATH(run_fabric_uniform(cfg, 0.5, 61), "immediate-issue");
}

// ---- fault-aware spine route table -----------------------------------------

TEST(SpineRouteTable, NominalRoutingIsDModK) {
  SpineRouteTable rt(4, 100);
  EXPECT_EQ(rt.usable_count(), 4);
  for (int dst = 0; dst < 32; ++dst) EXPECT_EQ(rt.route(dst), dst % 4);
}

TEST(SpineRouteTable, FailureReSpreadsOnlyTheHomedFlows) {
  SpineRouteTable rt(4, 100);
  rt.fail(1);
  EXPECT_EQ(rt.usable_count(), 3);
  EXPECT_FALSE(rt.usable(1));
  for (int dst = 0; dst < 64; ++dst) {
    const int sp = rt.route(dst);
    EXPECT_NE(sp, 1) << "dst " << dst;
    if (dst % 4 != 1)
      EXPECT_EQ(sp, dst % 4) << "unaffected flow moved, dst " << dst;
  }
  // Deterministic: the same destination always takes the same detour.
  for (int dst = 1; dst < 64; dst += 4) EXPECT_EQ(rt.route(dst), rt.route(dst));
}

TEST(SpineRouteTable, RevivalIsQuarantinedForTheHoldDown) {
  SpineRouteTable rt(4, 100);
  rt.fail(2);
  rt.revive(2, 1'000);
  EXPECT_FALSE(rt.usable(2));  // up, but quarantined
  EXPECT_FALSE(rt.tick(1'050));
  EXPECT_FALSE(rt.usable(2));
  EXPECT_TRUE(rt.tick(1'100));  // hold-down expired: re-admitted
  EXPECT_TRUE(rt.usable(2));
  EXPECT_EQ(rt.usable_count(), 4);
  EXPECT_EQ(rt.route(2), 2);  // homed flows return
}

TEST(SpineRouteTable, ReFailureDuringQuarantineJustStaysDown) {
  SpineRouteTable rt(4, 100);
  rt.fail(3);
  rt.revive(3, 500);
  rt.fail(3);  // flap: re-failed inside the hold-down
  EXPECT_FALSE(rt.tick(5'000));  // quarantine was cancelled by the fail
  EXPECT_FALSE(rt.usable(3));
  rt.revive(3, 6'000);
  EXPECT_TRUE(rt.tick(6'100));
  EXPECT_TRUE(rt.usable(3));
}

TEST(SpineRouteTable, ZeroSurvivorsFallBackToTheMaskedHome) {
  SpineRouteTable rt(2, 10);
  rt.fail(0);
  rt.fail(1);
  EXPECT_EQ(rt.usable_count(), 0);
  for (int dst = 0; dst < 8; ++dst) {
    const int sp = rt.route(dst);
    EXPECT_GE(sp, 0);
    EXPECT_LT(sp, 2);
  }
}

}  // namespace
}  // namespace osmosis::fabric
