// Tests for the RNG and the statistics accumulators.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/sim/rng.hpp"
#include "src/sim/stats.hpp"

namespace osmosis::sim {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  MeanVar mv;
  for (int i = 0; i < 100'000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    mv.add(u);
  }
  EXPECT_NEAR(mv.mean(), 0.5, 0.01);
  EXPECT_NEAR(mv.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformIntUnbiased) {
  Rng rng(9);
  std::vector<int> counts(7, 0);
  const int trials = 140'000;
  for (int i = 0; i < trials; ++i) ++counts[rng.uniform_int(7)];
  for (int c : counts) EXPECT_NEAR(c, trials / 7.0, trials * 0.01);
}

TEST(Rng, GeometricMean) {
  Rng rng(11);
  const double p = 0.2;
  MeanVar mv;
  for (int i = 0; i < 100'000; ++i)
    mv.add(static_cast<double>(rng.geometric(p)));
  EXPECT_NEAR(mv.mean(), (1.0 - p) / p, 0.1);
}

TEST(Rng, GeometricPOneIsZero) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  MeanVar mv;
  for (int i = 0; i < 100'000; ++i) mv.add(rng.exponential(3.0));
  EXPECT_NEAR(mv.mean(), 3.0, 0.1);
}

TEST(Rng, PermutationIsValid) {
  Rng rng(17);
  for (int n : {1, 2, 8, 64}) {
    auto p = rng.permutation(n);
    ASSERT_EQ(static_cast<int>(p.size()), n);
    std::vector<bool> seen(static_cast<std::size_t>(n), false);
    for (int v : p) {
      ASSERT_GE(v, 0);
      ASSERT_LT(v, n);
      ASSERT_FALSE(seen[static_cast<std::size_t>(v)]);
      seen[static_cast<std::size_t>(v)] = true;
    }
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += parent.next() == child.next();
  EXPECT_LT(same, 2);
}

TEST(MeanVar, BasicMoments) {
  MeanVar mv;
  for (double x : {1.0, 2.0, 3.0, 4.0}) mv.add(x);
  EXPECT_DOUBLE_EQ(mv.mean(), 2.5);
  EXPECT_NEAR(mv.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(mv.min(), 1.0);
  EXPECT_DOUBLE_EQ(mv.max(), 4.0);
  EXPECT_EQ(mv.count(), 4u);
  EXPECT_DOUBLE_EQ(mv.sum(), 10.0);
}

TEST(MeanVar, EmptyIsZero) {
  MeanVar mv;
  EXPECT_DOUBLE_EQ(mv.mean(), 0.0);
  EXPECT_DOUBLE_EQ(mv.variance(), 0.0);
}

TEST(MeanVar, MergeMatchesCombined) {
  Rng rng(3);
  MeanVar a, b, all;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform();
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Histogram, ExactInLinearRegion) {
  Histogram h(64.0);
  for (int i = 0; i < 100; ++i) h.add(5.0);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.p50(), 5.5, 0.6);  // within the [5,6) bin
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
}

TEST(Histogram, QuantilesOrdered) {
  Histogram h;
  Rng rng(5);
  for (int i = 0; i < 50'000; ++i) h.add(rng.exponential(10.0));
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
  EXPECT_LE(h.quantile(0.9), h.quantile(0.99));
  EXPECT_LE(h.quantile(0.99), h.max());
  // Exponential(10): median = 10*ln2 ~ 6.93, p99 ~ 46.
  EXPECT_NEAR(h.p50(), 6.93, 0.7);
  EXPECT_NEAR(h.p99(), 46.0, 6.0);
}

TEST(Histogram, GeometricTailHoldsLargeValues) {
  Histogram h(8.0, 1.5);
  h.add(1e6);
  h.add(2.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GE(h.quantile(1.0), 1e5);
}

TEST(Histogram, EmptyQuantileIsZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

// Regression: q = 0 and q = 1 must return the exact observed extremes,
// not bin-interpolated edge values (which round min down to its bin's
// lower bound and can push max past the largest sample).
TEST(Histogram, ExtremeQuantilesReturnObservedMinMax) {
  Histogram h(8.0, 1.5);
  h.add(1.5);
  h.add(20.25);
  h.add(7.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.25);
  EXPECT_DOUBLE_EQ(h.min(), 1.5);
  EXPECT_DOUBLE_EQ(h.max(), 20.25);
}

TEST(Histogram, SingleSampleQuantilesAllEqualIt) {
  Histogram h;
  h.add(7.3);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 7.3);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 7.3);
  // Interior quantiles still interpolate within the sample's bin.
  EXPECT_GE(h.p50(), 7.0);
  EXPECT_LE(h.p50(), 8.0);
}

TEST(Histogram, TailQuantileNeverExceedsMax) {
  Histogram h(8.0, 1.5);
  for (int i = 0; i < 99; ++i) h.add(2.0);
  h.add(1000.0);  // deep in a wide geometric bin
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);
  EXPECT_LE(h.quantile(0.999), h.max());
}

TEST(ThroughputMeter, Utilization) {
  ThroughputMeter m;
  m.advance_slots(100, 4);  // 400 cell opportunities
  for (int i = 0; i < 300; ++i) m.add_delivery();
  EXPECT_DOUBLE_EQ(m.utilization(), 0.75);
}

TEST(ThroughputMeter, EmptyIsZero) {
  ThroughputMeter m;
  EXPECT_DOUBLE_EQ(m.utilization(), 0.0);
}

TEST(ReorderDetector, InOrderFlows) {
  ReorderDetector d;
  for (std::uint64_t s = 0; s < 100; ++s) {
    EXPECT_FALSE(d.deliver(0, 1, s));
    EXPECT_FALSE(d.deliver(2, 3, s));
  }
  EXPECT_EQ(d.out_of_order(), 0u);
  EXPECT_EQ(d.total(), 200u);
}

TEST(ReorderDetector, DetectsReordering) {
  ReorderDetector d;
  d.deliver(0, 0, 0);
  d.deliver(0, 0, 2);
  EXPECT_TRUE(d.deliver(0, 0, 1));  // late
  EXPECT_EQ(d.out_of_order(), 1u);
  EXPECT_NEAR(d.reorder_fraction(), 1.0 / 3.0, 1e-12);
}

TEST(ReorderDetector, FlowsAreIndependent) {
  ReorderDetector d;
  d.deliver(0, 0, 5);
  EXPECT_FALSE(d.deliver(0, 1, 0));  // different flow, fresh sequence
}

// ---- Histogram::merge (exact shard aggregation for the campaign runner)

TEST(HistogramMerge, MatchesSingleHistogramBinForBin) {
  // Two shards of one sample stream must merge into exactly the
  // histogram the full stream produces: same counts, same quantiles.
  Histogram full(64.0, 1.1), a(64.0, 1.1), b(64.0, 1.1);
  Rng rng(0xABCDEF);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.uniform() * 500.0;
    full.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), full.count());
  // The parallel mean/variance combine reassociates the sums, so allow
  // last-bit float differences against the sequential accumulation.
  EXPECT_NEAR(a.mean(), full.mean(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), full.min());
  EXPECT_DOUBLE_EQ(a.max(), full.max());
  for (double q : {0.1, 0.5, 0.9, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(a.quantile(q), full.quantile(q)) << "q=" << q;
}

TEST(HistogramMerge, BucketsAlignAcrossDifferentRanges) {
  // Shards that populated different bin ranges: merge must extend the
  // shorter bin vector, not clip it.
  Histogram a(8.0, 1.5), b(8.0, 1.5);
  for (int i = 0; i < 10; ++i) a.add(2.0);     // low bins only
  for (int i = 0; i < 10; ++i) b.add(5000.0);  // deep geometric bin
  a.merge(b);
  EXPECT_EQ(a.count(), 20u);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 5000.0);
  EXPECT_DOUBLE_EQ(a.quantile(1.0), 5000.0);
  // Low half still resolves to the low samples.
  EXPECT_LE(a.quantile(0.25), 8.0);
}

TEST(HistogramMerge, MinMaxAndMeanAfterMerge) {
  Histogram a, b;
  a.add(1.0);
  a.add(3.0);
  b.add(100.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 100.0);
  EXPECT_NEAR(a.mean(), (1.0 + 3.0 + 100.0) / 3.0, 1e-12);
}

TEST(HistogramMerge, EmptyOperands) {
  Histogram a, b;
  a.add(4.0);
  a.merge(b);  // merging empty is a no-op
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  Histogram c;
  c.merge(a);  // merging into empty adopts the other's contents
  EXPECT_EQ(c.count(), 1u);
  EXPECT_DOUBLE_EQ(c.min(), 4.0);
  EXPECT_DOUBLE_EQ(c.max(), 4.0);
}

TEST(HistogramMerge, MergeOrderInvariant) {
  // a.merge(b) and b.merge(a) agree — required for deterministic
  // aggregation regardless of which shard is the accumulator.
  Histogram a1(64.0, 1.1), b1(64.0, 1.1), a2(64.0, 1.1), b2(64.0, 1.1);
  Rng rng(0x5EED);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform() * 300.0;
    if (i % 3) {
      a1.add(x);
      a2.add(x);
    } else {
      b1.add(x);
      b2.add(x);
    }
  }
  a1.merge(b1);
  b2.merge(a2);
  EXPECT_EQ(a1.count(), b2.count());
  EXPECT_DOUBLE_EQ(a1.mean(), b2.mean());
  EXPECT_DOUBLE_EQ(a1.p50(), b2.p50());
  EXPECT_DOUBLE_EQ(a1.p99(), b2.p99());
}

TEST(HistogramMergeDeathTest, RejectsMismatchedBinShape) {
  Histogram a(64.0, 1.1), b(8.0, 1.5);
  a.add(1.0);
  b.add(1.0);
  EXPECT_DEATH(a.merge(b), "merge");
}

}  // namespace
}  // namespace osmosis::sim
