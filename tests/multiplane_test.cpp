// Tests for the multi-plane striped fabric with egress resequencing.

#include <gtest/gtest.h>

#include "src/fabric/multiplane.hpp"

namespace osmosis::fabric {
namespace {

MultiPlaneConfig base(int ports, int planes) {
  MultiPlaneConfig cfg;
  cfg.ports = ports;
  cfg.planes = planes;
  cfg.warmup_slots = 500;
  cfg.measure_slots = 10'000;
  return cfg;
}

TEST(MultiPlane, SinglePlaneDegeneratesToPlainSwitch) {
  const auto r = run_multiplane_uniform(base(16, 1), 0.6, 1);
  EXPECT_NEAR(r.throughput_per_plane, 0.6, 0.02);
  EXPECT_EQ(r.post_resequencer_ooo, 0u);
  // One in-order plane: nothing ever waits in the resequencer.
  EXPECT_DOUBLE_EQ(r.mean_resequencing_wait, 0.0);
  EXPECT_EQ(r.cross_plane_ooo, 0u);
}

TEST(MultiPlane, StripingMultipliesAggregateBandwidth) {
  // 4 planes at 0.7 load each = 2.8 cells/slot/port aggregate — far
  // beyond a single line's capacity — delivered in full.
  const auto r = run_multiplane_uniform(base(16, 4), 0.7, 3);
  EXPECT_NEAR(r.throughput_per_plane, 0.7, 0.02);
  EXPECT_GT(r.delivered, 4u * 16u * 10'000u * 6 / 10);
}

TEST(MultiPlane, ResequencerRestoresOrder) {
  const auto r = run_multiplane_uniform(base(16, 4), 0.8, 5);
  // Planes genuinely reorder across each other...
  EXPECT_GT(r.cross_plane_ooo, 0u);
  // ...and the resequencer hides all of it.
  EXPECT_EQ(r.post_resequencer_ooo, 0u);
}

TEST(MultiPlane, ResequencingCostGrowsWithPlaneCountAndLoad) {
  const auto few = run_multiplane_uniform(base(16, 2), 0.8, 7);
  const auto many = run_multiplane_uniform(base(16, 8), 0.8, 7);
  EXPECT_GE(many.max_resequencer_depth, few.max_resequencer_depth);
  const auto light = run_multiplane_uniform(base(16, 4), 0.2, 9);
  const auto heavy = run_multiplane_uniform(base(16, 4), 0.9, 9);
  EXPECT_GT(heavy.mean_resequencing_wait, light.mean_resequencing_wait);
}

TEST(MultiPlane, ResequencerDepthBounded) {
  // The wait is bounded by plane-delay spread, not unbounded growth.
  const auto r = run_multiplane_uniform(base(16, 4), 0.85, 11);
  EXPECT_LT(r.mean_resequencing_wait, 20.0);
  EXPECT_LT(r.max_resequencer_depth, 600);
}

TEST(MultiPlane, WorksWithPipelinedSchedulers) {
  auto cfg = base(16, 3);
  cfg.scheduler = sw::SchedulerKind::kPipelinedIslip;
  const auto r = run_multiplane_uniform(cfg, 0.6, 13);
  EXPECT_NEAR(r.throughput_per_plane, 0.6, 0.02);
  EXPECT_EQ(r.post_resequencer_ooo, 0u);
}

TEST(MultiPlane, RejectsGeneratorMismatch) {
  MultiPlaneConfig cfg = base(16, 2);
  std::vector<std::unique_ptr<sim::TrafficGen>> gens;
  gens.push_back(sim::make_uniform(16, 0.5, 1));  // only one generator
  EXPECT_DEATH(MultiPlaneSim(cfg, std::move(gens)),
               "one traffic generator per plane");
}

}  // namespace
}  // namespace osmosis::fabric
