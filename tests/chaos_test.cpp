// Unit tests for the chaos soak subsystem (DESIGN.md §12): seeded trial
// generation (determinism, diversity, validity), trial execution purity,
// the delta-debugging shrinker, and the osmosis.repro.v1 round trip the
// chaos_repro tool replays.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "src/chaos/generator.hpp"
#include "src/chaos/repro.hpp"
#include "src/chaos/shrink.hpp"
#include "src/chaos/trial.hpp"
#include "src/exec/campaign.hpp"
#include "src/mgmt/config_check.hpp"

namespace osmosis {
namespace {

bool specs_equal(const chaos::TrialSpec& a, const chaos::TrialSpec& b) {
  if (a.seed != b.seed || a.sim != b.sim || a.ports != b.ports ||
      a.planes != b.planes || a.receivers != b.receivers ||
      a.scheduler != b.scheduler || a.topology != b.topology ||
      a.flow_control != b.flow_control || a.routing != b.routing ||
      a.failed_switches != b.failed_switches ||
      a.adaptive_routing != b.adaptive_routing ||
      a.admission != b.admission || a.bursty != b.bursty ||
      a.load != b.load || a.mean_burst != b.mean_burst ||
      a.warmup_slots != b.warmup_slots ||
      a.measure_slots != b.measure_slots ||
      a.drain_max_slots != b.drain_max_slots ||
      a.plan.seed() != b.plan.seed() || a.plan.size() != b.plan.size())
    return false;
  for (std::size_t i = 0; i < a.plan.size(); ++i) {
    const auto& x = a.plan.events()[i];
    const auto& y = b.plan.events()[i];
    if (x.kind != y.kind || x.at_slot != y.at_slot || x.a != y.a ||
        x.b != y.b || x.duration_slots != y.duration_slots ||
        x.rate != y.rate)
      return false;
  }
  return true;
}

// ---- generator -------------------------------------------------------------

TEST(ChaosGenerator, SameSeedAndIndexYieldIdenticalSpecs) {
  for (std::uint64_t i = 0; i < 16; ++i) {
    const auto a = chaos::generate_trial(42, i);
    const auto b = chaos::generate_trial(42, i);
    EXPECT_TRUE(specs_equal(a, b)) << "trial " << i;
    EXPECT_EQ(a.label(), b.label());
  }
}

TEST(ChaosGenerator, SeedsFollowTheCampaignDerivation) {
  const auto s = chaos::generate_trial(42, 7);
  EXPECT_EQ(s.seed, exec::derive_job_seed(42, 7));
  EXPECT_EQ(s.campaign_seed, 42u);
  EXPECT_EQ(s.trial_index, 7u);
}

TEST(ChaosGenerator, TrialsAreDiverseAcrossIndices) {
  std::set<chaos::TrialSim> sims;
  std::set<int> ports;
  std::size_t with_faults = 0, bursty = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    const auto s = chaos::generate_trial(1, i);
    sims.insert(s.sim);
    ports.insert(s.ports);
    if (!s.plan.empty()) ++with_faults;
    if (s.bursty) ++bursty;
  }
  EXPECT_EQ(sims.size(), 5u);   // all five simulators exercised
  EXPECT_GE(ports.size(), 2u);
  EXPECT_GT(with_faults, 32u);  // most trials inject at least one fault
  EXPECT_GT(bursty, 8u);
}

TEST(ChaosGenerator, DifferentCampaignSeedsDiverge) {
  std::size_t differing = 0;
  for (std::uint64_t i = 0; i < 16; ++i) {
    if (!specs_equal(chaos::generate_trial(1, i), chaos::generate_trial(2, i)))
      ++differing;
  }
  EXPECT_GT(differing, 12u);
}

TEST(ChaosGenerator, GeneratedFaultWindowsCloseBeforeTheDrain) {
  for (std::uint64_t i = 0; i < 64; ++i) {
    const auto s = chaos::generate_trial(9, i);
    const std::uint64_t horizon = s.warmup_slots + s.measure_slots;
    for (const auto& e : s.plan.events()) {
      EXPECT_LT(e.at_slot, horizon) << s.label();
      if (e.transient()) {
        EXPECT_LE(e.end_slot(), horizon) << s.label();
      } else if (s.sim == chaos::TrialSim::kFabric) {
        // Permanent spine faults exist only under adaptive routing,
        // which drains them completely — budget is capacity-derived
        // (fault-free budget scaled by total/surviving spines), not
        // the stranded-cell walk cap.
        EXPECT_TRUE(s.adaptive_routing)
            << s.label() << ": permanent fabric fault without adaptive";
        EXPECT_GE(s.drain_max_slots, 80'000u) << s.label();
        EXPECT_LE(s.drain_max_slots,
                  80'000u * static_cast<std::uint64_t>(s.ports / 2))
            << s.label();
      } else {
        EXPECT_LE(s.drain_max_slots, 4'096u)
            << s.label() << ": permanent fault with a long drain budget";
      }
    }
  }
}

TEST(ChaosGenerator, AdaptiveFabricTrialsAppearInTheGrammar) {
  std::size_t adaptive = 0, admit = 0, permanent_spines = 0;
  for (std::uint64_t i = 0; i < 128; ++i) {
    const auto s = chaos::generate_trial(21, i);
    if (s.sim != chaos::TrialSim::kFabric) continue;
    if (s.adaptive_routing) ++adaptive;
    if (s.admission) ++admit;
    EXPECT_TRUE(s.adaptive_routing || !s.admission)
        << s.label() << ": admission without adaptive routing";
    int dead = 0;
    std::set<int> dead_spines;
    for (const auto& e : s.plan.events())
      if (e.kind == faults::FaultKind::kPlaneFailure && !e.transient()) {
        EXPECT_TRUE(s.adaptive_routing)
            << s.label() << ": permanent spine fault without adaptive";
        dead_spines.insert(e.a);
        ++dead;
      }
    // The grammar must always keep at least one surviving spine.
    EXPECT_LT(static_cast<int>(dead_spines.size()), s.ports / 2)
        << s.label();
    if (dead > 0) ++permanent_spines;
  }
  EXPECT_GT(adaptive, 4u);
  EXPECT_GT(admit, 1u);
  EXPECT_GT(permanent_spines, 0u);
}

TEST(ChaosGenerator, TopoTrialsCoverTheZooWithValidFaults) {
  std::size_t topo = 0, wormhole = 0, min_kind = 0;
  for (std::uint64_t i = 0; i < 256; ++i) {
    const auto s = chaos::generate_trial(87, i);
    if (s.sim != chaos::TrialSim::kTopo) continue;
    ++topo;
    if (s.flow_control == topo::FcKind::kWormholeVc) ++wormhole;
    if (s.topology == topo::TopoKind::kOmega ||
        s.topology == topo::TopoKind::kBanyan ||
        s.topology == topo::TopoKind::kBenes) {
      ++min_kind;
      // Unique-path MINs never roll construction-time failures.
      EXPECT_TRUE(s.failed_switches.empty()) << s.label();
    }
    // Mid-run faults honor the TopoSim contract: the two accepted
    // kinds only, plane freezes transient and aimed inside the fault
    // stage, which the wounded topology must still realize cleanly.
    const topo::Topology t = topo::make_topology(
        s.topology, s.ports, s.routing, s.failed_switches);
    EXPECT_TRUE(t.audit().empty()) << s.label();
    int max_stage = 1;
    for (const auto& sw_spec : t.switches)
      max_stage = std::max(max_stage, sw_spec.stage);
    const int fault_stage = t.folded ? max_stage : (t.stages + 1) / 2;
    const int planes =
        static_cast<int>(t.stage_switches(fault_stage).size());
    for (const auto& e : s.plan.events()) {
      if (e.kind == faults::FaultKind::kPlaneFailure) {
        EXPECT_TRUE(e.transient()) << s.label();
        EXPECT_LT(e.a, planes) << s.label();
      } else {
        EXPECT_EQ(e.kind, faults::FaultKind::kAdapterStall) << s.label();
        EXPECT_LT(e.a, s.ports) << s.label();
      }
      EXPECT_GE(e.a, 0) << s.label();
    }
  }
  EXPECT_GT(topo, 16u);
  EXPECT_GT(wormhole, 4u);
  EXPECT_GT(min_kind, 4u);
}

// ---- trial execution -------------------------------------------------------

TEST(ChaosTrial, RunTrialIsAPureFunctionOfTheSpec) {
  const auto spec = chaos::generate_trial(5, 3);
  const auto a = chaos::run_trial(spec);
  const auto b = chaos::run_trial(spec);
  EXPECT_EQ(a.violated, b.violated);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.checks, b.checks);
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.first_violation, b.first_violation);
}

TEST(ChaosTrial, GeneratedTrialsRunCleanly) {
  // A slice of the soak property: generated = valid = zero violations.
  for (std::uint64_t i = 0; i < 8; ++i) {
    const auto spec = chaos::generate_trial(11, i);
    const auto r = chaos::run_trial(spec);
    EXPECT_FALSE(r.violated) << spec.label() << ": " << r.first_violation;
    EXPECT_GT(r.offered, 0u) << spec.label();
  }
}

TEST(ChaosTrial, ViolationInvariantParsesTheToken) {
  EXPECT_EQ(chaos::violation_invariant(
                "slot=12 conservation: offered=5 != delivered=1"),
            "conservation");
  EXPECT_EQ(chaos::violation_invariant(
                "slot=900 liveness(final): 3 cells stranded"),
            "liveness(final)");
  EXPECT_EQ(chaos::violation_invariant(""), "");
}

TEST(ChaosTrial, MutingASourceLeavesOthersArrivalsUntouched) {
  // MaskedTraffic samples-then-discards, so muting must only remove the
  // muted source's cells, never shift another source's stream: the
  // offered count shrinks, and the run stays clean.
  auto spec = chaos::generate_trial(11, 1);
  const auto base = chaos::run_trial(spec);
  spec.muted_sources.push_back(0);
  const auto muted = chaos::run_trial(spec);
  EXPECT_LT(muted.offered, base.offered);
  EXPECT_FALSE(muted.violated) << muted.first_violation;
}

// ---- shrinker + repro round trip -------------------------------------------

namespace {

// A violating spec with a known injected accounting defect: a switch
// trial whose delivery ledger drops every 3rd completion while its one
// adapter-stall window is open.
chaos::TrialSpec defective_spec() {
  chaos::TrialSpec s;
  s.campaign_seed = 1234;
  s.trial_index = 0;
  s.seed = 0x0123'4567'89ab'cdefULL;
  s.sim = chaos::TrialSim::kSwitch;
  s.ports = 8;
  s.receivers = 2;
  s.scheduler = sw::SchedulerKind::kIslip;
  s.load = 0.6;
  s.warmup_slots = 128;
  s.measure_slots = 1'024;
  s.drain_max_slots = 20'000;
  s.plan.seeded(s.seed ^ 0x5eedULL);
  s.plan.stall_adapter(300, 2, 400).kill_module(500, 4, 0, 200);
  s.defect = chaos::Defect::kDropDeliveryDuringFault;
  s.defect_period = 3;
  return s;
}

}  // namespace

TEST(ChaosShrink, ShrinksAnInjectedDefectToOneFaultEvent) {
  const auto failing = defective_spec();
  const auto original = chaos::run_trial(failing);
  ASSERT_TRUE(original.violated);
  ASSERT_EQ(original.invariant, "conservation");

  const auto sh = chaos::shrink(failing);
  EXPECT_EQ(sh.invariant, "conservation");
  EXPECT_TRUE(sh.result.violated);
  // The defect only fires inside a fault window, so exactly one of the
  // two events must survive; the horizon must not grow.
  EXPECT_EQ(sh.shrunk_events, 1u);
  EXPECT_EQ(sh.original_events, 2u);
  EXPECT_LE(sh.shrunk_slots, sh.original_slots);
  EXPECT_LE(sh.runs, 200);
  // Shrinking is deterministic: same failing spec, same minimal spec.
  const auto again = chaos::shrink(failing);
  EXPECT_TRUE(specs_equal(sh.spec, again.spec));
  EXPECT_EQ(sh.runs, again.runs);
}

TEST(ChaosRepro, JsonRoundTripPreservesEveryField) {
  chaos::Repro r;
  r.spec = defective_spec();
  // Force a seed above 2^53 to prove string serialization is lossless
  // where a JSON double would round.
  r.spec.seed = 0xffff'ffff'ffff'fff1ULL;
  r.spec.muted_sources = {1, 5};
  r.expected_violated = true;
  r.expected_invariant = "conservation";
  r.expected_violations = 42;
  r.note = "unit-test round trip";

  const auto back = chaos::repro_from_json(chaos::repro_to_json(r));
  EXPECT_TRUE(specs_equal(back.spec, r.spec));
  EXPECT_EQ(back.spec.seed, 0xffff'ffff'ffff'fff1ULL);
  EXPECT_EQ(back.spec.muted_sources, r.spec.muted_sources);
  EXPECT_EQ(back.spec.defect, r.spec.defect);
  EXPECT_EQ(back.spec.defect_period, r.spec.defect_period);
  EXPECT_EQ(back.expected_violated, true);
  EXPECT_EQ(back.expected_invariant, "conservation");
  EXPECT_EQ(back.expected_violations, 42u);
  EXPECT_EQ(back.note, "unit-test round trip");
}

TEST(ChaosRepro, AdaptiveDegradedSpecRoundTripsAndReplaysClean) {
  // A graceful-degradation trial: permanent spine cut under adaptive
  // routing + admission. The repro format must carry both flags (a
  // replay without them would reject the permanent fault outright).
  chaos::TrialSpec s;
  s.sim = chaos::TrialSim::kFabric;
  s.ports = 8;
  s.scheduler = sw::SchedulerKind::kIslip;
  s.adaptive_routing = true;
  s.admission = true;
  s.load = 0.8;
  s.warmup_slots = 256;
  s.measure_slots = 2'048;
  s.drain_max_slots = 106'666;
  s.seed = 0xDE6;
  s.plan.fail_plane(700, 0);  // duration 0 = permanent
  chaos::Repro r;
  r.spec = s;
  r.expected_violated = false;

  const std::string json = chaos::repro_to_json(r);
  EXPECT_NE(json.find("\"adaptive_routing\": true"), std::string::npos);
  EXPECT_NE(json.find("\"admission\": true"), std::string::npos);
  const auto back = chaos::repro_from_json(json);
  EXPECT_TRUE(specs_equal(back.spec, s));
  EXPECT_TRUE(back.spec.adaptive_routing);
  EXPECT_TRUE(back.spec.admission);

  chaos::TrialResult replay;
  EXPECT_TRUE(chaos::replay_matches(back, replay));
  EXPECT_EQ(replay.violations, 0u);
}

TEST(ChaosRepro, TopoSpecRoundTripsAndReplaysClean) {
  // A zoo trial with every new axis set: wounded Clos under wormhole
  // VC with a transient middle freeze. The repro format must carry
  // topology/flow_control/routing/failed_switches or a replay would
  // run the default fat tree instead.
  chaos::TrialSpec s;
  s.sim = chaos::TrialSim::kTopo;
  s.ports = 32;
  s.receivers = 1;
  s.scheduler = sw::SchedulerKind::kIslip;
  s.topology = topo::TopoKind::kClos;
  s.flow_control = topo::FcKind::kWormholeVc;
  s.routing = topo::RouteKind::kHashSpread;
  s.failed_switches = {10};  // a middle, in global switch ids
  s.load = 0.2;
  s.warmup_slots = 128;
  s.measure_slots = 1'024;
  s.drain_max_slots = 50'000;
  s.seed = 0x7070;
  s.plan.fail_plane(300, 0, 200);
  chaos::Repro r;
  r.spec = s;
  r.expected_violated = false;

  const std::string json = chaos::repro_to_json(r);
  EXPECT_NE(json.find("\"topology\": \"clos\""), std::string::npos);
  EXPECT_NE(json.find("\"flow_control\": \"wormhole_vc\""),
            std::string::npos);
  const auto back = chaos::repro_from_json(json);
  EXPECT_TRUE(specs_equal(back.spec, s));
  EXPECT_EQ(back.spec.failed_switches, s.failed_switches);

  chaos::TrialResult replay;
  EXPECT_TRUE(chaos::replay_matches(back, replay));
  EXPECT_EQ(replay.violations, 0u);
}

TEST(ChaosRepro, LegacyFilesWithoutDegradedKeysDefaultOff) {
  // Pre-graceful-degradation repro files lack the adaptive_routing and
  // admission keys; the reader must default both to false.
  chaos::Repro r;
  r.spec = chaos::generate_trial(3, 0);
  r.spec.adaptive_routing = false;
  r.spec.admission = false;
  std::string json = chaos::repro_to_json(r);
  const auto strip = [&](const std::string& key) {
    const auto at = json.find("  \"" + key + "\":");
    ASSERT_NE(at, std::string::npos);
    json.erase(at, json.find('\n', at) - at + 1);
  };
  strip("adaptive_routing");
  strip("admission");
  const auto back = chaos::repro_from_json(json);
  EXPECT_FALSE(back.spec.adaptive_routing);
  EXPECT_FALSE(back.spec.admission);
}

TEST(ChaosRepro, ShrunkReproReplaysToTheSameVerdict) {
  const auto sh = chaos::shrink(defective_spec());
  chaos::Repro r;
  r.spec = sh.spec;
  r.expected_violated = sh.result.violated;
  r.expected_invariant = sh.invariant;
  r.expected_violations = sh.result.violations;

  // Round-trip through JSON first: the replay must work from the file
  // format, not from the in-memory spec.
  const auto loaded = chaos::repro_from_json(chaos::repro_to_json(r));
  chaos::TrialResult replay;
  EXPECT_TRUE(chaos::replay_matches(loaded, replay));
  EXPECT_EQ(replay.invariant, sh.invariant);
  EXPECT_EQ(replay.violations, sh.result.violations);
}

TEST(ChaosRepro, CleanSpecReplaysClean) {
  auto s = defective_spec();
  s.defect = chaos::Defect::kNone;  // same trial, no injected bug
  chaos::Repro r;
  r.spec = s;
  r.expected_violated = false;
  chaos::TrialResult replay;
  EXPECT_TRUE(chaos::replay_matches(r, replay));
  EXPECT_FALSE(replay.violated) << replay.first_violation;
}

}  // namespace
}  // namespace osmosis
