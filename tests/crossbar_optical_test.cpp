// Tests for the gate-accurate broadcast-and-select crossbar (Fig. 5).

#include <gtest/gtest.h>

#include "src/phy/crossbar_optical.hpp"

namespace osmosis::phy {
namespace {

TEST(BroadcastSelect, DemonstratorGeometryMatchesFig5) {
  BroadcastSelectCrossbar xbar;  // default = demonstrator
  const auto& cfg = xbar.config();
  EXPECT_EQ(cfg.ports, 64);
  EXPECT_EQ(cfg.fibers, 8);            // 8 broadcast modules
  EXPECT_EQ(cfg.wavelengths, 8);       // 8 WDM colors per fiber
  EXPECT_EQ(cfg.switching_modules(), 128);  // 2 receivers x 64 egress
  EXPECT_EQ(cfg.gates_per_module(), 16);    // 8 fiber + 8 color SOAs
  EXPECT_EQ(cfg.total_soa_gates(), 2048);
  EXPECT_EQ(cfg.split_ways(), 128);    // each fiber split 128 ways
}

TEST(BroadcastSelect, InputToFiberColorMapping) {
  BroadcastSelectCrossbar xbar;
  // Eight ingress adapters share a fiber, one per color (Fig. 5).
  EXPECT_EQ(xbar.fiber_of_input(0), 0);
  EXPECT_EQ(xbar.wavelength_of_input(0), 0);
  EXPECT_EQ(xbar.fiber_of_input(7), 0);
  EXPECT_EQ(xbar.wavelength_of_input(7), 7);
  EXPECT_EQ(xbar.fiber_of_input(8), 1);
  EXPECT_EQ(xbar.fiber_of_input(63), 7);
  EXPECT_EQ(xbar.wavelength_of_input(63), 7);
}

TEST(BroadcastSelect, ConnectSelectsExactlyThatInput) {
  BroadcastSelectCrossbar xbar;
  // Property sweep: every (input, egress, receiver) path is selectable
  // and carries exactly that input's light.
  for (int in = 0; in < 64; in += 5) {
    for (int eg = 0; eg < 64; eg += 7) {
      for (int rx = 0; rx < 2; ++rx) {
        xbar.connect(in, eg, rx);
        EXPECT_EQ(xbar.selected_input(eg, rx), in);
      }
    }
  }
}

TEST(BroadcastSelect, AtMostTwoGatesPerModule) {
  BroadcastSelectCrossbar xbar;
  for (int eg = 0; eg < 64; ++eg) {
    xbar.connect((eg * 13) % 64, eg, 0);
    xbar.connect((eg * 29 + 1) % 64, eg, 1);
  }
  // 128 modules, each exactly one fiber + one color gate on.
  EXPECT_EQ(xbar.gates_on(), 256);
}

TEST(BroadcastSelect, ReleaseDarkensModule) {
  BroadcastSelectCrossbar xbar;
  xbar.connect(12, 30, 1);
  EXPECT_EQ(xbar.selected_input(30, 1), 12);
  xbar.release(30, 1);
  EXPECT_EQ(xbar.selected_input(30, 1), -1);
  EXPECT_EQ(xbar.gates_on(), 0);
}

TEST(BroadcastSelect, ReconfigurationCounting) {
  BroadcastSelectCrossbar xbar;
  xbar.connect(0, 0, 0);  // 2 gate changes (fiber 0 on, color 0 on)
  EXPECT_EQ(xbar.reconfigurations(), 2u);
  xbar.connect(0, 0, 0);  // no-op: same selection
  EXPECT_EQ(xbar.reconfigurations(), 2u);
  xbar.connect(1, 0, 0);  // same fiber (0), new color: 1 change
  EXPECT_EQ(xbar.reconfigurations(), 3u);
  xbar.connect(9, 0, 0);  // fiber 0 -> 1 changes; color stays 1
  EXPECT_EQ(xbar.reconfigurations(), 4u);
  xbar.connect(18, 0, 0);  // fiber 1 -> 2 AND color 1 -> 2: two changes
  EXPECT_EQ(xbar.reconfigurations(), 6u);
}

TEST(BroadcastSelect, PowerBudgetCloses) {
  BroadcastSelectCrossbar xbar;
  const PowerBudgetReport r = xbar.power_budget();
  // 1x128 split ~ 21 dB.
  EXPECT_NEAR(r.split_loss_db, 21.07, 0.05);
  EXPECT_TRUE(r.closes) << "margin " << r.margin_db << " dB";
  EXPECT_GE(r.margin_db, xbar.config().required_margin_db);
}

TEST(BroadcastSelect, ElectricalPowerTracksActiveGates) {
  BroadcastSelectCrossbar xbar;
  const double idle = xbar.electrical_power_w();  // amplifiers only
  EXPECT_NEAR(idle, 8 * 2.0, 1e-9);               // 8 x 2 W amps
  xbar.connect(5, 9, 0);
  EXPECT_GT(xbar.electrical_power_w(), idle);
  // Data-rate independence: the model has no rate input at all; control
  // power is a separate packet-rate term.
  const double ctrl = xbar.control_power_w(2.0 / 51.2e-9);
  EXPECT_GT(ctrl, 0.0);
}

TEST(BroadcastSelect, SmallGeometries) {
  BroadcastSelectConfig cfg;
  cfg.ports = 16;
  cfg.fibers = 4;
  cfg.wavelengths = 4;
  cfg.receivers_per_egress = 1;
  BroadcastSelectCrossbar xbar(cfg);
  EXPECT_EQ(xbar.config().total_soa_gates(), 16 * 8);
  xbar.connect(15, 3, 0);
  EXPECT_EQ(xbar.selected_input(3, 0), 15);
}

TEST(BroadcastSelect, RejectsInconsistentGeometry) {
  BroadcastSelectConfig cfg;
  cfg.ports = 60;  // not fibers * wavelengths
  EXPECT_DEATH(BroadcastSelectCrossbar{cfg}, "fibers\\*wavelengths");
}

}  // namespace
}  // namespace osmosis::phy
