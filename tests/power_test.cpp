// Tests for the power/cost models behind §I, §VI.C and §VII.

#include <gtest/gtest.h>

#include "src/power/power_model.hpp"

namespace osmosis::power {
namespace {

TEST(SwitchPower, CmosScalesWithDataRate) {
  const auto tech = highend_electronic_profile();
  const double p1 = switch_power_w(tech, 1'000.0, 0.0);
  const double p2 = switch_power_w(tech, 2'000.0, 0.0);
  EXPECT_NEAR(p2 / p1, 2.0, 1e-9);
}

TEST(SwitchPower, OpticalIndependentOfDataRate) {
  // §I: "the optical switch element power consumption is independent of
  // the data rate".
  const auto tech = osmosis_profile();
  const double cells = 64.0 * 40e9 / (256.0 * 8.0);
  EXPECT_DOUBLE_EQ(switch_power_w(tech, 2'560.0, cells),
                   switch_power_w(tech, 25'600.0, cells));
}

TEST(SwitchPower, OpticalControlScalesWithPacketRate) {
  // "...power consumption of the optical switch control function is
  // proportional to the packet rate."
  const auto tech = osmosis_profile();
  const double base = switch_power_w(tech, 1'000.0, 0.0);
  const double loaded = switch_power_w(tech, 1'000.0, 1e9);
  EXPECT_NEAR(loaded - base, 1e9 * tech.control_nj_per_cell * 1e-9, 1e-9);
}

TEST(FabricPower, StageCountsMatchSectionVIC) {
  const auto osmosis = fabric_power(osmosis_profile(), 2048, 320.0, 256.0);
  const auto highend =
      fabric_power(highend_electronic_profile(), 2048, 320.0, 256.0);
  const auto commodity =
      fabric_power(commodity_electronic_profile(), 2048, 320.0, 256.0);
  EXPECT_EQ(osmosis.sizing.path_stages, 3);
  EXPECT_EQ(highend.sizing.path_stages, 5);
  EXPECT_EQ(commodity.sizing.path_stages, 9);
}

TEST(FabricPower, OpticalWinsAtHighPortRates) {
  // The paper's §I argument: CMOS power scales with the data rate,
  // optical element power does not — so there is a crossover rate above
  // which the optical fabric wins. At 12 GByte/s-class ports (~100
  // Gb/s) electronics is still competitive; at the §VII product rates
  // the hybrid fabric clearly wins per port.
  const auto at = [](const SwitchTechProfile& t, double rate) {
    return fabric_power(t, 2048, rate, 256.0).power_per_port_w;
  };
  const auto osm = osmosis_profile();
  const auto he = highend_electronic_profile();
  const auto com = commodity_electronic_profile();
  // High rate: optical < high-end electronic < commodity.
  EXPECT_LT(at(osm, 960.0), at(he, 960.0));
  EXPECT_LT(at(he, 960.0), at(com, 960.0));
  // The optical ELEMENT power is rate-independent — only the control
  // share (proportional to the packet rate) moves, a few percent here.
  // The CMOS datapath grows with the rate itself.
  EXPECT_LT(at(osm, 960.0), at(osm, 120.0) * 1.10);
  EXPECT_GT(at(he, 960.0), at(he, 120.0) * 1.5);
}

TEST(FabricPower, OeoSavings) {
  const auto osmosis = fabric_power(osmosis_profile(), 2048, 320.0, 256.0);
  const auto highend =
      fabric_power(highend_electronic_profile(), 2048, 320.0, 256.0);
  EXPECT_DOUBLE_EQ(highend.oeo_pairs_per_path - osmosis.oeo_pairs_per_path,
                   2.0);
}

TEST(FabricPower, CostRollupPositive) {
  const auto r = fabric_power(osmosis_profile(), 2048, 320.0, 256.0);
  EXPECT_GT(r.cost_usd, 0.0);
  EXPECT_GT(r.usd_per_gbps, 0.0);
  EXPECT_GT(r.total_power_w, r.switch_power_w);
}

TEST(Scaling, ElectronicLimitMatchesPaper) {
  // §VII: "6 - 8 Tb/s aggregate switch bandwidth around the maximum
  // single-stage electronic limit".
  EXPECT_GE(electronic_single_stage_limit_tbps(), 6.0);
  EXPECT_LE(electronic_single_stage_limit_tbps(), 8.0);
}

TEST(Scaling, OsmosisAggregateScales) {
  // Demonstrator: 8 x 8 x 40 Gb/s = 2.56 Tb/s.
  EXPECT_NEAR(osmosis_aggregate_tbps(8, 8, 40.0), 2.56, 1e-9);
  // §VII product point: 256 ports x 200 Gb/s = 51.2 Tb/s >= 50 Tb/s.
  EXPECT_GE(osmosis_aggregate_tbps(16, 16, 200.0), 50.0);
  // And it beats the electronic single-stage ceiling by a wide margin.
  EXPECT_GT(osmosis_aggregate_tbps(16, 16, 200.0),
            electronic_single_stage_limit_tbps() * 6.0);
}

}  // namespace
}  // namespace osmosis::power
