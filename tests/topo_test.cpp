// Tests for the topology zoo (DESIGN.md §15): canonical shapes and
// their error contract, generator structure, the connectivity audit,
// permutation routability of the MINs (Benes rearrangeability via the
// looping algorithm, Omega blocking), and the management validators
// for topology / flow-control scenario axes.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "src/mgmt/config_check.hpp"
#include "src/sim/rng.hpp"
#include "src/topo/min_route.hpp"
#include "src/topo/topology.hpp"

namespace osmosis::topo {
namespace {

constexpr TopoKind kAllKinds[] = {TopoKind::kFatTree, TopoKind::kClos,
                                  TopoKind::kOmega, TopoKind::kBanyan,
                                  TopoKind::kBenes};

std::string one_error(const std::vector<mgmt::Finding>& findings) {
  for (const auto& f : findings)
    if (f.severity == mgmt::Severity::kError) return f.detail;
  return "";
}

TEST(TopoShape, CanonicalShapesAt32Hosts) {
  // At 32 hosts the zoo realizes exactly the §VI.C stage-count triple:
  // a 3-hop folded fat tree, 5-column Omega/Banyan, a 9-column Benes.
  const Topology ft = make_topology(TopoKind::kFatTree, 32);
  EXPECT_TRUE(ft.folded);
  EXPECT_EQ(ft.diameter, 3);
  const Topology clos = make_topology(TopoKind::kClos, 32);
  EXPECT_EQ(clos.stages, 3);
  EXPECT_EQ(clos.switch_count(), 20);  // r + m + r = 8 + 4 + 8
  for (TopoKind kind : {TopoKind::kOmega, TopoKind::kBanyan}) {
    const Topology t = make_topology(kind, 32);
    EXPECT_EQ(t.stages, 5) << to_string(kind);
    EXPECT_EQ(t.switch_count(), 5 * 16) << to_string(kind);
  }
  const Topology benes = make_topology(TopoKind::kBenes, 32);
  EXPECT_EQ(benes.stages, 9);
  EXPECT_EQ(benes.switch_count(), 9 * 16);
}

TEST(TopoShape, ShapeErrorsNameNearestValidCounts) {
  const Shape ft = derive_shape(TopoKind::kFatTree, 30);
  ASSERT_FALSE(ft.ok);
  // 18 (radix 6) and 32 (radix 8) bracket 30.
  EXPECT_NE(ft.error.find("18"), std::string::npos) << ft.error;
  EXPECT_NE(ft.error.find("32"), std::string::npos) << ft.error;

  const Shape min = derive_shape(TopoKind::kOmega, 24);
  ASSERT_FALSE(min.ok);
  EXPECT_NE(min.error.find("power of two"), std::string::npos) << min.error;
  EXPECT_NE(min.error.find("16"), std::string::npos) << min.error;

  // The validator surfaces the same message as an error finding.
  const auto findings = mgmt::validate_topology(TopoKind::kBenes, 24);
  EXPECT_FALSE(mgmt::config_ok(findings));
  EXPECT_NE(one_error(findings).find("power of two"), std::string::npos);
}

TEST(TopoAudit, EveryGeneratorIsFullyConnected) {
  for (TopoKind kind : kAllKinds) {
    for (int hosts : {32, 128}) {
      const Topology t = make_topology(kind, hosts);
      EXPECT_EQ(t.hosts, hosts) << t.name;
      EXPECT_EQ(static_cast<int>(t.inject.size()), hosts) << t.name;
      EXPECT_EQ(static_cast<int>(t.deliver.size()), hosts) << t.name;
      const auto findings = t.audit();
      EXPECT_TRUE(findings.empty())
          << t.name << ": " << (findings.empty() ? "" : findings.front());
    }
  }
}

TEST(TopoAudit, RoutesAroundConstructionTimeFailures) {
  // Fat tree: one dead top switch leaves every pair connected. Global
  // ids put the 2-level tops after the leaves (leaf 0..7, top 8..11).
  const Topology ft =
      make_topology(TopoKind::kFatTree, 32, RouteKind::kDestMod, {9});
  EXPECT_TRUE(ft.audit().empty());
  EXPECT_TRUE(ft.dead(9));
  // Clos: a dead middle (global ids r..r+m-1 = 8..11 at 32 hosts).
  const Topology clos =
      make_topology(TopoKind::kClos, 32, RouteKind::kDestMod, {10});
  EXPECT_TRUE(clos.audit().empty());
  EXPECT_TRUE(clos.dead(10));
}

TEST(TopoRoute, HashSpreadStaysConnectedAndDeterministic) {
  for (TopoKind kind : kAllKinds) {
    const Topology t = make_topology(kind, 32, RouteKind::kHashSpread);
    EXPECT_TRUE(t.audit().empty()) << t.name;
    // Static routing: the same (switch, dst) always answers the same.
    EXPECT_EQ(t.route_port(0, 17), t.route_port(0, 17)) << t.name;
  }
}

TEST(MinRoute, BenesRoutesEveryPermutationLinkDisjointly) {
  // The looping algorithm must realize ANY permutation; check identity,
  // reversal, rotation, and a random sample, verifying the routes are
  // link-disjoint (per-column line sets are permutations) and land on
  // perm[f].
  const int hosts = 16;
  const int columns = 2 * 4 - 1;
  std::vector<std::vector<int>> perms;
  std::vector<int> p(hosts);
  std::iota(p.begin(), p.end(), 0);
  perms.push_back(p);                           // identity
  std::reverse(p.begin(), p.end());
  perms.push_back(p);                           // reversal
  std::iota(p.begin(), p.end(), 0);
  std::rotate(p.begin(), p.begin() + 1, p.end());
  perms.push_back(p);                           // rotation
  sim::Rng rng(0xBE2E5);
  for (int i = 0; i < 200; ++i) {
    std::iota(p.begin(), p.end(), 0);
    for (int j = hosts - 1; j > 0; --j)
      std::swap(p[static_cast<std::size_t>(j)],
                p[rng.uniform_int(static_cast<std::uint64_t>(j + 1))]);
    perms.push_back(p);
  }
  for (const auto& perm : perms) {
    const BenesRoute r = benes_loop_route(hosts, perm);
    ASSERT_TRUE(r.ok);
    ASSERT_EQ(static_cast<int>(r.lines.size()), hosts);
    for (int c = 0; c <= columns; ++c) {
      std::set<int> used;
      for (int f = 0; f < hosts; ++f)
        used.insert(r.lines[static_cast<std::size_t>(f)]
                           [static_cast<std::size_t>(c)]);
      EXPECT_EQ(static_cast<int>(used.size()), hosts) << "column " << c;
    }
    for (int f = 0; f < hosts; ++f)
      EXPECT_EQ(r.lines[static_cast<std::size_t>(f)].back(),
                perm[static_cast<std::size_t>(f)]);
  }
  // Not a permutation -> rejected, not mis-routed.
  std::vector<int> dup(hosts, 3);
  EXPECT_FALSE(benes_loop_route(hosts, dup).ok);
}

TEST(MinRoute, OmegaBlocksConflictingPermutations) {
  const int hosts = 8;
  // The shuffle-exchange has a unique path per pair; some permutation
  // must collide internally while others pass. Scan a deterministic
  // sample and require both outcomes.
  std::vector<int> p(hosts);
  std::iota(p.begin(), p.end(), 0);
  int admitted = 0, blocked = 0;
  sim::Rng rng(0x03E6A);
  for (int i = 0; i < 500; ++i) {
    for (int j = hosts - 1; j > 0; --j)
      std::swap(p[static_cast<std::size_t>(j)],
                p[rng.uniform_int(static_cast<std::uint64_t>(j + 1))]);
    if (omega_admits(hosts, p)) {
      ++admitted;
    } else {
      ++blocked;
      // The same conflicting permutation always routes on a Benes.
      EXPECT_TRUE(benes_loop_route(hosts, p).ok);
    }
  }
  EXPECT_GT(admitted, 0);
  EXPECT_GT(blocked, 0);
}

TEST(TopoValidate, FailedSwitchContract) {
  // Unique-path MINs reject any permanent failure.
  for (TopoKind kind :
       {TopoKind::kOmega, TopoKind::kBanyan, TopoKind::kBenes}) {
    const auto findings = mgmt::validate_topology(kind, 32, {0});
    EXPECT_FALSE(mgmt::config_ok(findings)) << to_string(kind);
    EXPECT_NE(one_error(findings).find("unique path"), std::string::npos);
  }
  // Fat-tree leaves and Clos ingress/egress have no path diversity.
  const auto leaf = mgmt::validate_topology(TopoKind::kFatTree, 32, {0});
  EXPECT_FALSE(mgmt::config_ok(leaf));
  EXPECT_NE(one_error(leaf).find("leaf"), std::string::npos);
  const auto ingress = mgmt::validate_topology(TopoKind::kClos, 32, {0});
  EXPECT_FALSE(mgmt::config_ok(ingress));
  EXPECT_NE(one_error(ingress).find("ingress"), std::string::npos);
  // Diverse switches are accepted — and what the validator accepts, the
  // generic builder builds with the same (global) switch indexing.
  EXPECT_TRUE(
      mgmt::config_ok(mgmt::validate_topology(TopoKind::kFatTree, 32, {9})));
  EXPECT_TRUE(
      mgmt::config_ok(mgmt::validate_topology(TopoKind::kClos, 32, {10})));
  // Killing every parallel path is rejected even though each switch
  // individually is diverse.
  const auto all_mids =
      mgmt::validate_topology(TopoKind::kClos, 32, {8, 9, 10, 11});
  EXPECT_FALSE(mgmt::config_ok(all_mids));
}

TEST(TopoValidate, FlowControlShapeAndSizing) {
  FcParams fc;
  fc.kind = FcKind::kWormholeVc;
  fc.lanes = 0;
  EXPECT_FALSE(mgmt::config_ok(mgmt::validate_flow_control(fc, 16)));
  fc.lanes = 2;
  fc.lane_flits = 4;
  // 4-flit lanes cannot cover the 9-slot round trip of a 4-slot trunk:
  // warning, not error.
  const auto shallow = mgmt::validate_flow_control(fc, 16, 4);
  EXPECT_TRUE(mgmt::config_ok(shallow));
  EXPECT_FALSE(shallow.empty());
  EXPECT_NE(shallow.front().detail.find("round trip"), std::string::npos);
  fc.lane_flits = 9;
  EXPECT_TRUE(mgmt::validate_flow_control(fc, 16, 4).empty());
  // Cell kinds need at least one buffer cell.
  fc.kind = FcKind::kCredit;
  EXPECT_FALSE(mgmt::config_ok(mgmt::validate_flow_control(fc, 0)));
}

TEST(TopoStrings, RoundTrip) {
  for (TopoKind kind : kAllKinds)
    EXPECT_EQ(topo_kind_from_string(to_string(kind)), kind);
  for (RouteKind r : {RouteKind::kDestMod, RouteKind::kHashSpread})
    EXPECT_EQ(route_kind_from_string(to_string(r)), r);
  for (FcKind fc :
       {FcKind::kCredit, FcKind::kRelayed, FcKind::kWormholeVc})
    EXPECT_EQ(fc_kind_from_string(to_string(fc)), fc);
}

}  // namespace
}  // namespace osmosis::topo
