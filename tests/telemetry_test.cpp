// Tests for the telemetry layer: trace-ring wraparound, deterministic
// 1-in-N sampling, the stage-latency decomposition invariant (the three
// lifecycle legs must sum to the end-to-end delay, per simulator), and
// the RunReport JSON round trip.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/fabric/fabric_sim.hpp"
#include "src/sim/traffic.hpp"
#include "src/sw/event_switch_sim.hpp"
#include "src/sw/switch_sim.hpp"
#include "src/telemetry/json.hpp"
#include "src/telemetry/run_report.hpp"
#include "src/telemetry/telemetry.hpp"
#include "src/telemetry/trace.hpp"

namespace osmosis::telemetry {
namespace {

// ---- TraceRing -------------------------------------------------------------

TEST(TraceRing, FillsThenWrapsOverwritingOldest) {
  TraceRing ring(4);
  for (std::uint64_t i = 0; i < 3; ++i) {
    CellSpan s;
    s.trace_seq = i;
    ring.push(s);
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.at(0).trace_seq, 0u);
  EXPECT_EQ(ring.at(2).trace_seq, 2u);

  for (std::uint64_t i = 3; i < 10; ++i) {
    CellSpan s;
    s.trace_seq = i;
    ring.push(s);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total_pushed(), 10u);
  // Oldest retained is seq 6, newest seq 9.
  EXPECT_EQ(ring.at(0).trace_seq, 6u);
  EXPECT_EQ(ring.at(3).trace_seq, 9u);
}

// ---- CellTrace -------------------------------------------------------------

TEST(CellTrace, SamplesOneInN) {
  CellTrace trace(64, 4);
  int sampled = 0;
  for (int i = 0; i < 100; ++i) {
    const std::int32_t h = trace.begin(0, 1, static_cast<double>(i));
    if (h >= 0) {
      ++sampled;
      trace.end(h, static_cast<double>(i) + 1.0);
    }
  }
  EXPECT_EQ(sampled, 25);
  EXPECT_EQ(trace.cells_seen(), 100u);
  EXPECT_EQ(trace.cells_sampled(), 25u);
  EXPECT_EQ(trace.cells_dropped(), 0u);
}

TEST(CellTrace, FcHoldAndRetransmitAccumulate) {
  CellTrace trace(8, 1);
  const std::int32_t h = trace.begin(2, 3, 10.0);
  ASSERT_GE(h, 0);
  trace.mark(h, Stage::kRequest, 11.0);
  trace.mark(h, Stage::kGrant, 12.0);
  trace.mark(h, Stage::kTransmit, 13.0);
  trace.fc_hold(h);
  trace.fc_hold(h, 3);
  trace.retransmit(h);
  const CellSpan s = trace.end(h, 20.0);
  EXPECT_EQ(s.fc_hold_cycles, 4u);
  EXPECT_EQ(s.retransmits, 1u);
  EXPECT_DOUBLE_EQ(s.end_to_end(), 10.0);
  EXPECT_DOUBLE_EQ(s.request_to_grant() + s.grant_to_transmit() +
                       s.transmit_to_deliver(),
                   s.end_to_end());
}

TEST(CellTrace, MarkFirstKeepsEarliestStamp) {
  CellTrace trace(8, 1);
  const std::int32_t h = trace.begin(0, 0, 0.0);
  ASSERT_GE(h, 0);
  trace.mark_first(h, Stage::kGrant, 5.0);
  trace.mark_first(h, Stage::kGrant, 9.0);  // ignored: already stamped
  trace.mark(h, Stage::kTransmit, 9.0);
  trace.mark(h, Stage::kTransmit, 11.0);  // overwrite: last wins
  const CellSpan s = trace.end(h, 12.0);
  EXPECT_DOUBLE_EQ(s.at(Stage::kGrant), 5.0);
  EXPECT_DOUBLE_EQ(s.at(Stage::kTransmit), 11.0);
}

TEST(CellTrace, DropsWhenOpenPoolExhausted) {
  CellTrace trace(8, 1, /*max_open_spans=*/2);
  const std::int32_t a = trace.begin(0, 0, 0.0);
  const std::int32_t b = trace.begin(0, 0, 1.0);
  const std::int32_t c = trace.begin(0, 0, 2.0);  // no slot left
  EXPECT_GE(a, 0);
  EXPECT_GE(b, 0);
  EXPECT_EQ(c, -1);
  EXPECT_EQ(trace.cells_dropped(), 1u);
  trace.end(a, 3.0);
  EXPECT_GE(trace.begin(0, 0, 4.0), 0);  // slot recycled
}

TEST(Telemetry, DisabledIsInertAndFree) {
  Telemetry t;  // default: disabled
  EXPECT_FALSE(t.enabled());
  const std::int32_t h = t.begin_cell(0, 1, 0.0);
  EXPECT_EQ(h, -1);
  t.mark(h, Stage::kGrant, 1.0);
  t.finish_cell(h, 2.0, true);  // all no-ops
  EXPECT_EQ(t.trace().cells_seen(), 0u);
  EXPECT_EQ(t.stages().count(), 0u);
}

// ---- deterministic sampling under a fixed seed -----------------------------

std::string switch_report_json(std::uint32_t sample_every) {
  sw::SwitchSimConfig cfg;
  cfg.ports = 16;
  cfg.warmup_slots = 200;
  cfg.measure_slots = 2'000;
  cfg.telemetry.enabled = true;
  cfg.telemetry.sample_every = sample_every;
  sw::SwitchSim sim(cfg, sim::make_uniform(cfg.ports, 0.6, 0x1234));
  sim.run();
  return sim.report().to_json();
}

TEST(Telemetry, SamplingIsDeterministicUnderFixedSeed) {
  const std::string a = switch_report_json(4);
  const std::string b = switch_report_json(4);
  EXPECT_EQ(a, b);  // bitwise-identical export, traces included
}

TEST(Telemetry, SampleEveryControlsSampledCount) {
  sw::SwitchSimConfig cfg;
  cfg.ports = 16;
  cfg.warmup_slots = 100;
  cfg.measure_slots = 1'000;
  cfg.telemetry.enabled = true;
  cfg.telemetry.sample_every = 8;
  sw::SwitchSim sim(cfg, sim::make_uniform(cfg.ports, 0.5, 7));
  sim.run();
  const auto& trace = sim.telemetry().trace();
  EXPECT_GT(trace.cells_seen(), 0u);
  // Exactly ceil(seen / 8) sampled (counter-based, no RNG involved).
  EXPECT_EQ(trace.cells_sampled(), (trace.cells_seen() + 7) / 8);
}

// ---- stage decomposition sums to end-to-end, per simulator -----------------

TEST(StageDecomposition, SwitchSimLegsSumToMeanDelay) {
  sw::SwitchSimConfig cfg;
  cfg.ports = 16;
  cfg.warmup_slots = 500;
  cfg.measure_slots = 5'000;
  cfg.telemetry.enabled = true;
  cfg.telemetry.sample_every = 1;  // trace every cell
  sw::SwitchSim sim(cfg, sim::make_uniform(cfg.ports, 0.7, 99));
  const auto result = sim.run();

  const auto& stages = sim.telemetry().stages();
  ASSERT_GT(stages.count(), 0u);
  // The three legs telescope per cell, so their means sum to the
  // end-to-end mean...
  EXPECT_NEAR(stages.decomposition_mean(), stages.end_to_end().mean(), 1e-9);
  // ...and with every cell traced, the stage book's end-to-end mean is
  // the simulator's reported mean delay over the same population.
  EXPECT_EQ(stages.count(), result.delivered);
  EXPECT_NEAR(stages.end_to_end().mean(), result.mean_delay, 1e-9);
  // The crossbar leg is exactly the one-cycle transfer.
  EXPECT_DOUBLE_EQ(stages.grant_to_transmit().mean(), 1.0);
}

TEST(StageDecomposition, EventSwitchSimLegsSumToMeanDelayNs) {
  sw::EventSwitchConfig cfg;
  cfg.ports = 8;
  cfg.default_ctrl_ns = 100.0;
  cfg.warmup_ns = 20'000.0;
  cfg.measure_ns = 100'000.0;
  cfg.telemetry.enabled = true;
  cfg.telemetry.sample_every = 1;
  sw::EventSwitchSim sim(cfg, sim::make_uniform(cfg.ports, 0.5, 42));
  const auto result = sim.run();

  const auto& stages = sim.telemetry().stages();
  ASSERT_GT(stages.count(), 0u);
  EXPECT_NEAR(stages.decomposition_mean(), stages.end_to_end().mean(), 1e-6);
  EXPECT_EQ(stages.count(), result.delivered);
  EXPECT_NEAR(stages.end_to_end().mean(), result.mean_delay_ns, 1e-6);
}

TEST(StageDecomposition, FabricSimLegsSumToMeanDelaySlots) {
  fabric::FabricSimConfig cfg;
  cfg.radix = 4;
  cfg.warmup_slots = 500;
  cfg.measure_slots = 5'000;
  cfg.telemetry.enabled = true;
  cfg.telemetry.sample_every = 1;
  const int hosts = cfg.radix * cfg.radix / 2;
  fabric::FabricSim sim(cfg, sim::make_uniform(hosts, 0.5, 11));
  const auto result = sim.run();

  const auto& stages = sim.telemetry().stages();
  ASSERT_GT(stages.count(), 0u);
  EXPECT_NEAR(stages.decomposition_mean(), stages.end_to_end().mean(), 1e-9);
  EXPECT_EQ(stages.count(), result.delivered);
  EXPECT_NEAR(stages.end_to_end().mean(), result.mean_delay_slots, 1e-9);
  // The final leg is at least the last cable flight.
  EXPECT_GE(stages.transmit_to_deliver().min(), cfg.host_cable_slots);
}

// ---- RunReport JSON ---------------------------------------------------------

TEST(RunReport, JsonRoundTripPreservesEverything) {
  sw::SwitchSimConfig cfg;
  cfg.ports = 8;
  cfg.warmup_slots = 100;
  cfg.measure_slots = 1'000;
  cfg.telemetry.enabled = true;
  cfg.telemetry.sample_every = 2;
  sw::SwitchSim sim(cfg, sim::make_uniform(cfg.ports, 0.4, 5));
  sim.run();
  RunReport r = sim.report();
  r.health.push_back("scheduler: ok");

  const std::string text = r.to_json();
  const RunReport back = RunReport::from_json(text);
  EXPECT_EQ(back.sim, "SwitchSim");
  EXPECT_EQ(back.time_unit, "cycles");
  EXPECT_EQ(back.config, r.config);
  EXPECT_EQ(back.info, r.info);
  EXPECT_EQ(back.counters, r.counters);
  EXPECT_EQ(back.health, r.health);
  ASSERT_EQ(back.histograms.size(), r.histograms.size());
  for (const auto& [name, h] : r.histograms) {
    ASSERT_TRUE(back.histograms.count(name)) << name;
    const auto& b = back.histograms.at(name);
    EXPECT_EQ(b.count, h.count);
    EXPECT_DOUBLE_EQ(b.mean, h.mean);
    EXPECT_DOUBLE_EQ(b.p99, h.p99);
  }
  // Serialization is deterministic.
  EXPECT_EQ(back.to_json(), text);
}

TEST(RunReport, EmittedDocumentHasTheSchemaKeys) {
  sw::SwitchSimConfig cfg;
  cfg.ports = 8;
  cfg.warmup_slots = 50;
  cfg.measure_slots = 500;
  cfg.telemetry.enabled = true;
  sw::SwitchSim sim(cfg, sim::make_uniform(cfg.ports, 0.3, 5));
  sim.run();

  const JsonValue doc = json_parse(sim.report().to_json());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("schema").str, RunReport::kSchema);
  for (const char* key :
       {"sim", "time_unit", "config", "info", "counters", "histograms",
        "health"})
    EXPECT_TRUE(doc.has(key)) << key;
  for (const char* h :
       {"stage.request_to_grant", "stage.grant_to_transmit",
        "stage.transmit_to_deliver", "stage.end_to_end", "delay",
        "grant_latency"}) {
    ASSERT_TRUE(doc.at("histograms").has(h)) << h;
    for (const char* field : {"count", "mean", "min", "p50", "p99", "max"})
      EXPECT_TRUE(doc.at("histograms").at(h).has(field)) << h << "." << field;
  }
  EXPECT_TRUE(doc.at("counters").has("trace.cells_seen"));
  EXPECT_TRUE(doc.at("counters").has("switch.delivered"));
  EXPECT_TRUE(doc.at("counters").has("ingress.0.enqueued"));
}

TEST(RunReport, AllThreeSimulatorsEmitTheCommonSchema) {
  std::vector<std::string> docs;

  {
    sw::SwitchSimConfig cfg;
    cfg.ports = 8;
    cfg.warmup_slots = 50;
    cfg.measure_slots = 500;
    cfg.telemetry.enabled = true;
    sw::SwitchSim sim(cfg, sim::make_uniform(cfg.ports, 0.3, 5));
    sim.run();
    docs.push_back(sim.report().to_json());
  }
  {
    sw::EventSwitchConfig cfg;
    cfg.ports = 8;
    cfg.warmup_ns = 5'000.0;
    cfg.measure_ns = 30'000.0;
    cfg.telemetry.enabled = true;
    sw::EventSwitchSim sim(cfg, sim::make_uniform(cfg.ports, 0.3, 5));
    sim.run();
    docs.push_back(sim.report().to_json());
  }
  {
    fabric::FabricSimConfig cfg;
    cfg.radix = 4;
    cfg.warmup_slots = 200;
    cfg.measure_slots = 2'000;
    cfg.telemetry.enabled = true;
    const int hosts = cfg.radix * cfg.radix / 2;
    fabric::FabricSim sim(cfg, sim::make_uniform(hosts, 0.3, 5));
    sim.run();
    docs.push_back(sim.report().to_json());
  }

  for (const auto& text : docs) {
    const JsonValue doc = json_parse(text);
    EXPECT_EQ(doc.at("schema").str, RunReport::kSchema);
    for (const char* h :
         {"stage.request_to_grant", "stage.grant_to_transmit",
          "stage.transmit_to_deliver", "stage.end_to_end"}) {
      ASSERT_TRUE(doc.at("histograms").has(h)) << doc.at("sim").str;
      EXPECT_GT(doc.at("histograms").at(h).at("count").number, 0.0)
          << doc.at("sim").str << " " << h;
    }
  }
}

TEST(RunReport, FabricRollupSubtotalsMatchPerSwitchCounters) {
  fabric::FabricSimConfig cfg;
  cfg.radix = 4;
  cfg.warmup_slots = 200;
  cfg.measure_slots = 2'000;
  cfg.telemetry.enabled = true;
  const int hosts = cfg.radix * cfg.radix / 2;
  fabric::FabricSim sim(cfg, sim::make_uniform(hosts, 0.4, 17));
  sim.run();

  const auto& ctr = sim.telemetry().counters();
  double leaf_sum = 0.0;
  for (int s = 0; s < cfg.radix; ++s)
    leaf_sum += ctr.value("stage.leaf." + std::to_string(s) + ".grants");
  EXPECT_DOUBLE_EQ(ctr.value("rollup.leaf.grants"), leaf_sum);
  EXPECT_GT(leaf_sum, 0.0);
  // FC backpressure shows up both per-cell (trace spans) and globally.
  EXPECT_TRUE(ctr.has("fc.host_hold_cycles"));
  EXPECT_TRUE(ctr.has("fc.blocked_output_cycles"));
}

// ---- JSON parser edge cases -------------------------------------------------

// ---- HistogramSummary tails (p999 / p9999) ---------------------------------

TEST(HistogramSummary, MergePreservesTailQuantilesExactly) {
  // The campaign aggregation invariant, extended to the new tail
  // columns: sharded collection + merge() must report the same
  // p50/p99/p999/p9999 as one histogram fed every sample.
  sim::Histogram a, b, combined;
  std::uint64_t x = 0x9E37'79B9'7F4A'7C15ULL;
  for (int i = 0; i < 30'000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const double v = static_cast<double>(x % 5'000) / 3.0;
    (i % 2 ? a : b).add(v);
    combined.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  // Mean combines via the Welford merge formula: same value to within
  // reassociation ulps, not bit-identical to sequential adds.
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9 * combined.mean());
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
  EXPECT_DOUBLE_EQ(a.p50(), combined.p50());
  EXPECT_DOUBLE_EQ(a.p99(), combined.p99());
  EXPECT_DOUBLE_EQ(a.p999(), combined.p999());
  EXPECT_DOUBLE_EQ(a.p9999(), combined.p9999());

  const HistogramSummary sa = HistogramSummary::of(a);
  const HistogramSummary sc = HistogramSummary::of(combined);
  EXPECT_DOUBLE_EQ(sa.p999, sc.p999);
  EXPECT_DOUBLE_EQ(sa.p9999, sc.p9999);
  EXPECT_TRUE(sa.has_p9999());
  // Quantile ladder is monotone.
  EXPECT_LE(sa.p50, sa.p99);
  EXPECT_LE(sa.p99, sa.p999);
  EXPECT_LE(sa.p999, sa.p9999);
  EXPECT_LE(sa.p9999, sa.max);
}

TEST(HistogramSummary, P9999GatedOnSampleCount) {
  sim::Histogram small;
  for (int i = 0; i < 100; ++i) small.add(static_cast<double>(i));
  const HistogramSummary s = HistogramSummary::of(small);
  EXPECT_FALSE(s.has_p9999());
  EXPECT_EQ(s.p9999, 0.0);  // never emitted below kP9999MinCount
  EXPECT_GT(s.p999, 0.0);   // p999 is always carried

  sim::Histogram big;
  for (std::uint64_t i = 0; i < HistogramSummary::kP9999MinCount; ++i)
    big.add(static_cast<double>(i % 777));
  const HistogramSummary sb = HistogramSummary::of(big);
  EXPECT_TRUE(sb.has_p9999());
  EXPECT_GT(sb.p9999, 0.0);
}

TEST(HistogramSummary, JsonCarriesP999AndGatesP9999) {
  sim::Histogram small;
  for (int i = 0; i < 500; ++i) small.add(static_cast<double>(i % 90));
  JsonWriter ws(0);
  write_histogram_summary(ws, HistogramSummary::of(small));
  const JsonValue ds = json_parse(ws.str());
  EXPECT_TRUE(ds.has("p999"));
  EXPECT_FALSE(ds.has("p9999"));

  sim::Histogram big;
  for (int i = 0; i < 20'000; ++i) big.add(static_cast<double>(i % 90));
  JsonWriter wb(0);
  write_histogram_summary(wb, HistogramSummary::of(big));
  const JsonValue db = json_parse(wb.str());
  ASSERT_TRUE(db.has("p9999"));

  // Round trip through the parser preserves both tails bit-exactly.
  const HistogramSummary orig = HistogramSummary::of(big);
  const HistogramSummary back = parse_histogram_summary(db);
  EXPECT_DOUBLE_EQ(back.p999, orig.p999);
  EXPECT_DOUBLE_EQ(back.p9999, orig.p9999);
}

TEST(Json, ParsesEscapesAndNesting) {
  const JsonValue v = json_parse(
      R"({"a": [1, 2.5, -3e2], "s": "x\"y\\z\n", "t": true, "n": null})");
  EXPECT_DOUBLE_EQ(v.at("a").array[0].number, 1.0);
  EXPECT_DOUBLE_EQ(v.at("a").array[2].number, -300.0);
  EXPECT_EQ(v.at("s").str, "x\"y\\z\n");
  EXPECT_TRUE(v.at("t").boolean);
  EXPECT_EQ(v.at("n").kind, JsonValue::Kind::kNull);
}

TEST(Json, EscapeRoundTrip) {
  const std::string nasty = "quote\" slash\\ newline\n tab\t ctrl\x01";
  const JsonValue v = json_parse("\"" + json_escape(nasty) + "\"");
  EXPECT_EQ(v.str, nasty);
}

// Regression: every control character U+0000..U+001F must leave
// json_escape as an escape sequence, never as a raw byte — a raw 0x1F
// (or NUL) in a string key renders the whole document unparseable for
// strict consumers like Perfetto. Exercised via JsonWriter, the path
// every report/trace string takes.
TEST(Json, EscapesAllControlCharacters) {
  std::string all;
  for (int c = 0; c < 0x20; ++c) all.push_back(static_cast<char>(c));
  const std::string escaped = json_escape(all);
  for (const char c : escaped)
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u)
        << "raw control byte leaked into escaped output";
  EXPECT_NE(escaped.find("\\u0000"), std::string::npos);
  EXPECT_NE(escaped.find("\\u001f"), std::string::npos);
  EXPECT_NE(escaped.find("\\n"), std::string::npos);

  JsonWriter w(0);
  w.open('{');
  w.key(all);
  w.string(all);
  w.close('}');
  const JsonValue doc = json_parse(w.str());
  ASSERT_TRUE(doc.has(all));
  EXPECT_EQ(doc.at(all).str, all);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_DEATH(json_parse("{"), "");
  EXPECT_DEATH(json_parse("{} trailing"), "");
  EXPECT_DEATH(json_parse("[1,, 2]"), "");
}

}  // namespace
}  // namespace osmosis::telemetry
