// Property/fuzz suite for every scheduler kind: random interleavings of
// requests, flow-control blocking, input masking, capacity degradation
// and ticks must always produce valid matchings, never manufacture
// grants out of thin air, and — once the chaos stops — drain every
// outstanding request exactly once.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/sim/rng.hpp"
#include "src/sw/scheduler.hpp"

namespace osmosis::sw {
namespace {

struct FuzzParam {
  SchedulerKind kind;
  const char* name;
  int receivers;
};

class SchedulerFuzzTest : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(SchedulerFuzzTest, SurvivesChaosAndConservesCells) {
  const auto param = GetParam();
  constexpr int kPorts = 12;
  SchedulerConfig cfg;
  cfg.kind = param.kind;
  cfg.ports = kPorts;
  cfg.receivers = param.receivers;
  cfg.seed = 0xF022;
  auto sched = make_scheduler(cfg);

  sim::Rng rng(0xFADE + static_cast<std::uint64_t>(param.kind) * 131 +
               static_cast<std::uint64_t>(param.receivers));
  std::map<std::pair<int, int>, long> owed;
  std::uint64_t requested = 0, granted = 0;
  std::vector<std::uint8_t> out_blocked(kPorts, 0);
  std::vector<std::uint8_t> in_blocked(kPorts, 0);

  auto check_grants = [&](const std::vector<Grant>& grants) {
    std::set<int> inputs;
    std::set<std::pair<int, int>> slots;
    for (const auto& g : grants) {
      ASSERT_TRUE(inputs.insert(g.input).second) << "input matched twice";
      ASSERT_TRUE(slots.insert({g.output, g.receiver}).second)
          << "(output, receiver) reused";
      ASSERT_GE(g.receiver, 0);
      ASSERT_LT(g.receiver, param.receivers);
      const long left = --owed[{g.input, g.output}];
      ASSERT_GE(left, 0) << "granted a cell that was never requested";
      ++granted;
    }
  };

  // Phase 1: chaos.
  for (int step = 0; step < 1'500; ++step) {
    // Requests.
    for (int in = 0; in < kPorts; ++in) {
      if (rng.bernoulli(0.5)) {
        const int out = static_cast<int>(rng.uniform_int(kPorts));
        sched->request(in, out);
        ++owed[{in, out}];
        ++requested;
      }
    }
    // Random control-plane events.
    if (rng.bernoulli(0.10)) {
      const int out = static_cast<int>(rng.uniform_int(kPorts));
      if (out_blocked[static_cast<std::size_t>(out)] ^= 1)
        sched->block_output(out);
      else
        sched->unblock_output(out);
    }
    if (rng.bernoulli(0.06)) {
      const int in = static_cast<int>(rng.uniform_int(kPorts));
      if (in_blocked[static_cast<std::size_t>(in)] ^= 1)
        sched->block_input(in);
      else
        sched->unblock_input(in);
    }
    if (param.receivers > 1 && rng.bernoulli(0.05)) {
      const int out = static_cast<int>(rng.uniform_int(kPorts));
      sched->set_output_capacity(
          out, 1 + static_cast<int>(rng.uniform_int(
                       static_cast<std::uint64_t>(param.receivers))));
    }
    check_grants(sched->tick());
  }

  // Phase 2: restore everything and drain.
  for (int p = 0; p < kPorts; ++p) {
    sched->set_output_capacity(p, param.receivers);
    sched->unblock_output(p);
    sched->unblock_input(p);
  }
  int idle_ticks = 0;
  for (int step = 0; step < 20'000 && idle_ticks < 3 * kPorts; ++step) {
    const auto grants = sched->tick();
    check_grants(grants);
    idle_ticks = grants.empty() ? idle_ticks + 1 : 0;
  }

  EXPECT_EQ(granted, requested)
      << "scheduler lost or duplicated cells across the chaos";
  EXPECT_EQ(sched->outstanding(), 0u);
  for (const auto& [pair, count] : owed)
    EXPECT_EQ(count, 0) << "residual demand at (" << pair.first << ","
                        << pair.second << ")";
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, SchedulerFuzzTest,
    ::testing::Values(FuzzParam{SchedulerKind::kIslip, "islip", 1},
                      FuzzParam{SchedulerKind::kIslip, "islip_dual", 2},
                      FuzzParam{SchedulerKind::kPim, "pim", 2},
                      FuzzParam{SchedulerKind::kPipelinedIslip, "pipe", 1},
                      FuzzParam{SchedulerKind::kPipelinedIslip, "pipe_dual",
                                2},
                      FuzzParam{SchedulerKind::kFlppr, "flppr", 1},
                      FuzzParam{SchedulerKind::kFlppr, "flppr_dual", 2},
                      FuzzParam{SchedulerKind::kWfa, "wfa", 2},
                      FuzzParam{SchedulerKind::kTdm, "tdm", 1}),
    [](const auto& info) { return std::string(info.param.name); });

}  // namespace
}  // namespace osmosis::sw
