// Tests for the single-stage switch simulator: conservation, ordering,
// dual-receiver benefit, optical-path validation, control-delay effects.

#include <gtest/gtest.h>

#include "src/sw/switch_sim.hpp"

namespace osmosis::sw {
namespace {

SwitchSimConfig small_config(SchedulerKind kind, int receivers) {
  SwitchSimConfig cfg;
  cfg.ports = 16;
  cfg.sched.kind = kind;
  cfg.sched.receivers = receivers;
  cfg.warmup_slots = 500;
  cfg.measure_slots = 8'000;
  return cfg;
}

TEST(SwitchSim, ThroughputEqualsOfferedLoadBelowSaturation) {
  for (double load : {0.2, 0.5, 0.8}) {
    const auto r = run_uniform(small_config(SchedulerKind::kFlppr, 1), load, 3);
    EXPECT_NEAR(r.throughput, load, 0.02) << "load " << load;
  }
}

TEST(SwitchSim, OrderingAlwaysMaintained) {
  for (auto kind : {SchedulerKind::kIslip, SchedulerKind::kFlppr,
                    SchedulerKind::kPipelinedIslip, SchedulerKind::kPim}) {
    const auto r = run_uniform(small_config(kind, 1), 0.9, 5);
    EXPECT_EQ(r.out_of_order, 0u) << r.scheduler;
  }
}

TEST(SwitchSim, SaturationThroughputAbove95Percent) {
  // Table 1: sustained throughput > 95 %.
  const auto r = run_uniform(small_config(SchedulerKind::kFlppr, 1), 1.0, 7);
  EXPECT_GT(r.throughput, 0.95);
}

TEST(SwitchSim, DualReceiverReducesDelayAtHighLoad) {
  // Fig. 7: the dual-receiver curve stays flat far longer.
  const auto single =
      run_uniform(small_config(SchedulerKind::kFlppr, 1), 0.9, 11);
  const auto dual =
      run_uniform(small_config(SchedulerKind::kFlppr, 2), 0.9, 11);
  EXPECT_LT(dual.mean_delay, single.mean_delay * 0.8);
}

TEST(SwitchSim, FlpprGrantLatencyNearOneAtLightLoad) {
  const auto r = run_uniform(small_config(SchedulerKind::kFlppr, 1), 0.1, 13);
  EXPECT_LT(r.mean_grant_latency, 1.5);
}

TEST(SwitchSim, PipelinedGrantLatencyNearDepth) {
  auto cfg = small_config(SchedulerKind::kPipelinedIslip, 1);
  const auto r = run_uniform(cfg, 0.1, 13);  // depth = log2(16) = 4
  EXPECT_GT(r.mean_grant_latency, 3.0);
  EXPECT_LT(r.mean_grant_latency, 5.5);
}

TEST(SwitchSim, ControlDelayShiftsGrantLatency) {
  auto cfg = small_config(SchedulerKind::kFlppr, 1);
  const auto base = run_uniform(cfg, 0.2, 17);
  cfg.request_delay_slots = 4;
  const auto delayed = run_uniform(cfg, 0.2, 17);
  // The queueing delay includes the control-path latency.
  EXPECT_GT(delayed.mean_delay, base.mean_delay + 3.0);
}

TEST(SwitchSim, OpticalPathValidationHolds) {
  // Drive the gate-accurate broadcast-and-select crossbar alongside the
  // scheduler; the simulator asserts every granted path carries exactly
  // the granted input's light.
  auto cfg = small_config(SchedulerKind::kFlppr, 2);
  cfg.validate_optical_path = true;
  cfg.measure_slots = 3'000;
  const auto r = run_uniform(cfg, 0.7, 19);
  EXPECT_GT(r.crossbar_reconfigs, 0u);
  EXPECT_GT(r.delivered, 0u);
}

TEST(SwitchSim, ControlClassDelayLowUnderBimodalMix) {
  // §III bimodal traffic: short control packets need low latency even
  // while data packets load the switch; strict priority delivers that.
  auto cfg = small_config(SchedulerKind::kFlppr, 1);
  SwitchSim sim(cfg, std::make_unique<sim::BimodalHpc>(cfg.ports, 0.85, 0.1,
                                                       sim::Rng(21)));
  const auto r = sim.run();
  EXPECT_LT(r.mean_control_delay, r.mean_data_delay);
}

TEST(SwitchSim, VoqDepthBoundedBelowSaturation) {
  const auto r = run_uniform(small_config(SchedulerKind::kFlppr, 1), 0.5, 23);
  EXPECT_LT(r.max_voq_depth, 32);
}

TEST(SwitchSim, DelayGrowsWithLoad) {
  const auto lo = run_uniform(small_config(SchedulerKind::kIslip, 1), 0.3, 29);
  const auto hi = run_uniform(small_config(SchedulerKind::kIslip, 1), 0.95, 29);
  EXPECT_GT(hi.mean_delay, lo.mean_delay);
  EXPECT_GT(hi.p99_delay, lo.p99_delay);
}

TEST(SwitchSim, RejectsMismatchedTraffic) {
  SwitchSimConfig cfg = small_config(SchedulerKind::kIslip, 1);
  EXPECT_DEATH(SwitchSim(cfg, sim::make_uniform(8, 0.5, 1)),
               "traffic generator");
}

}  // namespace
}  // namespace osmosis::sw
