// Tests for the event-driven switch simulator: cross-validation against
// the slot-synchronous engine and the control-fiber-geometry effects the
// slot engine cannot express.

#include <gtest/gtest.h>

#include "src/sw/event_switch_sim.hpp"
#include "src/sw/switch_sim.hpp"

namespace osmosis::sw {
namespace {

EventSwitchConfig event_config(int ports, SchedulerKind kind, int receivers) {
  EventSwitchConfig cfg;
  cfg.ports = ports;
  cfg.sched.kind = kind;
  cfg.sched.receivers = receivers;
  cfg.cell_ns = 51.2;
  cfg.warmup_ns = 500 * 51.2;
  cfg.measure_ns = 8'000 * 51.2;
  return cfg;
}

TEST(EventSwitch, CrossValidatesAgainstSlotEngine) {
  // Zero control distance: the two independently written simulators of
  // the same architecture must agree on throughput, and on delay up to a
  // CONSTANT pipeline offset — the event model explicitly pays the
  // request-message, grant-message and launch-realignment stages that
  // the slot engine folds into its single-cycle abstraction (~2.5
  // cycles, the same fixed pipeline §VI.B describes in hardware). The
  // offset must not vary with load: the queueing dynamics match.
  double first_offset = 0.0;
  bool have_offset = false;
  for (double load : {0.3, 0.7, 0.9}) {
    const auto ev =
        run_event_uniform(event_config(16, SchedulerKind::kFlppr, 1), load,
                          777);
    SwitchSimConfig sc;
    sc.ports = 16;
    sc.sched.kind = SchedulerKind::kFlppr;
    sc.sched.receivers = 1;
    sc.warmup_slots = 500;
    sc.measure_slots = 8'000;
    const auto slot = run_uniform(sc, load, 777);

    EXPECT_NEAR(ev.throughput, slot.throughput, 0.02) << "load " << load;
    const double offset = ev.mean_delay_cycles - slot.mean_delay;
    EXPECT_GT(offset, 1.5) << "load " << load;
    EXPECT_LT(offset, 3.5) << "load " << load;
    if (!have_offset) {
      first_offset = offset;
      have_offset = true;
    } else {
      EXPECT_NEAR(offset, first_offset, 0.35) << "load " << load;
    }
  }
}

TEST(EventSwitch, InOrderAndConflictFreeWithUniformGeometry) {
  const auto r =
      run_event_uniform(event_config(16, SchedulerKind::kFlppr, 2), 0.8, 11);
  EXPECT_EQ(r.out_of_order, 0u);
  EXPECT_EQ(r.receiver_conflicts, 0u);
}

TEST(EventSwitch, ControlFiberAddsRoundTripToGrantLatency) {
  auto near = event_config(16, SchedulerKind::kFlppr, 1);
  const auto r_near = run_event_uniform(near, 0.2, 13);

  auto far = event_config(16, SchedulerKind::kFlppr, 1);
  far.default_ctrl_ns = 100.0;  // ~20 m of control fiber
  const auto r_far = run_event_uniform(far, 0.2, 13);

  // Requests are re-synchronized to the cell-cycle grid at the
  // scheduler (100 ns quantizes to the 102.4 ns tick, +51.2 vs the
  // zero-distance case) and grants pay the full 100 ns flight back:
  // ~151 ns of extra request-to-grant latency.
  EXPECT_NEAR(r_far.mean_grant_latency_ns - r_near.mean_grant_latency_ns,
              151.0, 25.0);
  // End-to-end the cell additionally rides the data fiber: >= ~250 ns.
  EXPECT_GT(r_far.mean_delay_ns, r_near.mean_delay_ns + 230.0);
}

TEST(EventSwitch, RaggedControlDistancesCauseReceiverConflicts) {
  // Adapters at wildly different distances from the scheduler deliver
  // their granted cells in different cycles than the matching assumed —
  // overbooking output receivers. This is the quantitative argument for
  // the [20] synchronization scheme / equalized control paths.
  auto ragged = event_config(16, SchedulerKind::kFlppr, 1);
  ragged.ctrl_fiber_ns.resize(16);
  for (int in = 0; in < 16; ++in)
    ragged.ctrl_fiber_ns[static_cast<std::size_t>(in)] =
        (in % 4) * 37.0;  // 0..111 ns spread, not cycle-aligned
  const auto r = run_event_uniform(ragged, 0.8, 17);
  EXPECT_GT(r.receiver_conflicts, 0u);
  // Equalized (even if long) distances restore conflict-free delivery.
  auto equalized = event_config(16, SchedulerKind::kFlppr, 1);
  equalized.default_ctrl_ns = 111.0;
  const auto eq = run_event_uniform(equalized, 0.8, 17);
  EXPECT_EQ(eq.receiver_conflicts, 0u);
}

TEST(EventSwitch, PipelinedPriorArtKeepsItsLatencyGap) {
  const auto flppr =
      run_event_uniform(event_config(16, SchedulerKind::kFlppr, 1), 0.2, 19);
  const auto pipe = run_event_uniform(
      event_config(16, SchedulerKind::kPipelinedIslip, 1), 0.2, 19);
  // log2(16) = 4 cycles vs ~1 cycle, in nanoseconds.
  EXPECT_GT(pipe.mean_grant_latency_ns,
            flppr.mean_grant_latency_ns + 2.0 * 51.2);
}

}  // namespace
}  // namespace osmosis::sw
