// Tests for failure injection and degraded operation: failed optical
// switching modules (dual-receiver redundancy), failed broadcast fibers
// (dark ingress ports), scheduler-side capacity/input masking, the
// crossbar's crosstalk analysis, and mid-run fault injection with
// automatic recovery (exactly-once in-order delivery under module
// death, fiber cuts, grant corruption, burst errors, adapter stalls,
// spine outages and plane failures).

#include <gtest/gtest.h>

#include "src/fabric/fabric_sim.hpp"
#include "src/fabric/multiplane.hpp"
#include "src/faults/fault_plan.hpp"
#include "src/phy/crossbar_optical.hpp"
#include "src/sim/traffic.hpp"
#include "src/sw/event_switch_sim.hpp"
#include "src/sw/scheduler.hpp"
#include "src/sw/switch_sim.hpp"

namespace osmosis {
namespace {

// ---- crossbar-level failures ------------------------------------------------

TEST(CrossbarFailures, FailedModuleGoesDark) {
  phy::BroadcastSelectCrossbar xbar;
  xbar.connect(10, 20, 0);
  EXPECT_EQ(xbar.selected_input(20, 0), 10);
  xbar.fail_module(20, 0);
  EXPECT_EQ(xbar.selected_input(20, 0), -1);
  // The egress stays reachable through its second receiver.
  xbar.connect(10, 20, 1);
  EXPECT_EQ(xbar.selected_input(20, 1), 10);
  xbar.repair_module(20, 0);
  EXPECT_EQ(xbar.selected_input(20, 0), 10);  // gates were still set
}

TEST(CrossbarFailures, DualReceiverKeepsFullReachability) {
  phy::BroadcastSelectCrossbar xbar;
  // Kill one module of every egress: every input still reaches all 64.
  for (int eg = 0; eg < 64; ++eg) xbar.fail_module(eg, eg % 2);
  for (int in = 0; in < 64; in += 9)
    EXPECT_EQ(xbar.reachable_egress_count(in), 64);
  // Kill both modules of one egress: exactly one egress lost.
  xbar.fail_module(7, 0);
  xbar.fail_module(7, 1);
  EXPECT_EQ(xbar.reachable_egress_count(0), 63);
}

TEST(CrossbarFailures, FiberFailureDarkensItsWdmGroup) {
  phy::BroadcastSelectCrossbar xbar;
  xbar.fail_fiber(2);  // inputs 16..23 transmit on fiber 2
  xbar.connect(17, 5, 0);
  EXPECT_EQ(xbar.selected_input(5, 0), -1);  // no light from fiber 2
  EXPECT_EQ(xbar.reachable_egress_count(17), 0);
  xbar.connect(3, 5, 0);  // fiber 0 input works normally
  EXPECT_EQ(xbar.selected_input(5, 0), 3);
  xbar.repair_fiber(2);
  xbar.connect(17, 5, 0);
  EXPECT_EQ(xbar.selected_input(5, 0), 17);
}

TEST(Crosstalk, DemonstratorGeometryClearsTolerance) {
  phy::BroadcastSelectCrossbar xbar;
  // 8x8 at 40 dB extinction: SXR ~ 40 - 10log10(14) ~ 28.5 dB.
  EXPECT_NEAR(xbar.signal_to_crosstalk_db(), 28.5, 0.2);
  EXPECT_TRUE(xbar.crosstalk_acceptable());
}

TEST(Crosstalk, DegradesWithExtinctionAndChannelCount) {
  phy::BroadcastSelectConfig weak;
  weak.soa_extinction_db = 20.0;  // poor gates
  phy::BroadcastSelectCrossbar bad(weak);
  EXPECT_FALSE(bad.crosstalk_acceptable());

  phy::BroadcastSelectConfig big;
  big.ports = 256;
  big.fibers = 16;
  big.wavelengths = 16;
  phy::BroadcastSelectCrossbar product(big);
  // More channels -> more leakage paths -> lower SXR than 8x8.
  phy::BroadcastSelectCrossbar demo;
  EXPECT_LT(product.signal_to_crosstalk_db(),
            demo.signal_to_crosstalk_db());
  EXPECT_TRUE(product.crosstalk_acceptable());
}

// ---- scheduler-level masking ---------------------------------------------------

TEST(SchedulerFailures, BlockedInputReceivesNoGrants) {
  sw::SchedulerConfig cfg;
  cfg.kind = sw::SchedulerKind::kFlppr;
  cfg.ports = 8;
  cfg.receivers = 1;
  auto sched = sw::make_scheduler(cfg);
  for (int in = 0; in < 8; ++in) sched->request(in, (in + 1) % 8);
  sched->block_input(3);
  std::uint64_t grants_from_3 = 0, total = 0;
  for (int t = 0; t < 40; ++t) {
    for (const auto& g : sched->tick()) {
      total += 1;
      grants_from_3 += g.input == 3;
    }
  }
  EXPECT_EQ(grants_from_3, 0u);
  EXPECT_EQ(total, 7u);  // everyone else got served
  // Unblocking releases the parked demand.
  sched->unblock_input(3);
  std::uint64_t after = 0;
  for (int t = 0; t < 40; ++t)
    for (const auto& g : sched->tick()) after += g.input == 3;
  EXPECT_EQ(after, 1u);
}

TEST(SchedulerFailures, ReducedCapacityLimitsPerOutputGrants) {
  sw::SchedulerConfig cfg;
  cfg.kind = sw::SchedulerKind::kIslip;
  cfg.ports = 8;
  cfg.receivers = 2;
  auto sched = sw::make_scheduler(cfg);
  sched->set_output_capacity(0, 1);  // one of two receivers failed
  for (int in = 0; in < 8; ++in) sched->request(in, 0);
  const auto grants = sched->tick();
  int to_zero = 0;
  for (const auto& g : grants) {
    if (g.output == 0) {
      ++to_zero;
      EXPECT_EQ(g.receiver, 0);  // single logical receiver
    }
  }
  EXPECT_EQ(to_zero, 1);
}

TEST(SchedulerFailures, ZeroCapacityActsAsBlocked) {
  sw::SchedulerConfig cfg;
  cfg.kind = sw::SchedulerKind::kFlppr;
  cfg.ports = 4;
  cfg.receivers = 2;
  auto sched = sw::make_scheduler(cfg);
  sched->set_output_capacity(2, 0);
  for (int in = 0; in < 4; ++in) sched->request(in, 2);
  for (int t = 0; t < 30; ++t)
    for (const auto& g : sched->tick()) EXPECT_NE(g.output, 2);
  // FC unblock must NOT revive a failed output.
  sched->unblock_output(2);
  for (int t = 0; t < 10; ++t)
    for (const auto& g : sched->tick()) EXPECT_NE(g.output, 2);
}

// ---- switch-level degraded operation ---------------------------------------------

sw::SwitchSimConfig failure_config() {
  sw::SwitchSimConfig cfg;
  cfg.ports = 16;
  cfg.sched.kind = sw::SchedulerKind::kFlppr;
  cfg.sched.receivers = 2;
  cfg.warmup_slots = 500;
  cfg.measure_slots = 8'000;
  cfg.validate_optical_path = true;
  return cfg;
}

TEST(SwitchFailures, SingleReceiverLossIsGraceful) {
  // Fail receiver 1 of a quarter of the outputs: the egress line rate
  // (1 cell/slot) still bounds throughput, so moderate load is served
  // in full with slightly higher delay.
  auto cfg = failure_config();
  for (int out = 0; out < 16; out += 4) cfg.failed_receivers.push_back({out, 1});
  const auto degraded = sw::run_uniform(cfg, 0.7, 99);
  const auto healthy = sw::run_uniform(failure_config(), 0.7, 99);
  EXPECT_NEAR(degraded.throughput, 0.7, 0.02);
  EXPECT_EQ(degraded.out_of_order, 0u);
  EXPECT_GE(degraded.mean_delay, healthy.mean_delay * 0.95);
}

TEST(SwitchFailures, FailedFiberIsolatesOnlyItsGroup) {
  auto cfg = failure_config();
  cfg.failed_fibers.push_back(1);  // inputs 4..7 dark (4 fibers x 4 colors)
  const auto r = sw::run_uniform(cfg, 0.6, 101);
  // 12 of 16 inputs remain: aggregate throughput = 0.6 * 12/16.
  EXPECT_NEAR(r.throughput, 0.6 * 12.0 / 16.0, 0.02);
  EXPECT_EQ(r.out_of_order, 0u);
}

TEST(SwitchFailures, OpticalValidationHoldsUnderFailures) {
  auto cfg = failure_config();
  cfg.failed_receivers = {{3, 1}, {8, 0}, {12, 1}};
  cfg.failed_fibers = {2};
  // The run itself asserts every granted light path; surviving-receiver
  // remapping must route grants around failed modules.
  const auto r = sw::run_uniform(cfg, 0.8, 103);
  EXPECT_GT(r.delivered, 10'000u);
  EXPECT_EQ(r.out_of_order, 0u);
}

// ---- runtime fault injection & automatic recovery ---------------------------

sw::SwitchSimConfig fault_config() {
  auto cfg = failure_config();
  cfg.drain_max_slots = 30'000;
  return cfg;
}

TEST(FaultInjection, TransientModuleDeathRecoversExactlyOnce) {
  auto cfg = fault_config();
  cfg.fault_plan.kill_module(2'000, 5, 1, 1'500);
  const auto r = sw::run_uniform(cfg, 0.6, 0xD1);
  EXPECT_TRUE(r.exactly_once_in_order);
  EXPECT_EQ(r.duplicates, 0u);
  EXPECT_EQ(r.missing, 0u);
  EXPECT_EQ(r.out_of_order, 0u);
  EXPECT_EQ(r.faults_injected, 1u);
  EXPECT_EQ(r.faults_repaired, 1u);
  EXPECT_EQ(r.faults_recovered, 1u);  // recovery time is finite
  EXPECT_NEAR(r.throughput, 0.6, 0.05);
}

TEST(FaultInjection, MidRunFiberCutParksCellsUntilTheSplice) {
  // Unlike a pre-run failed fiber (hosts offline), a mid-run cut leaves
  // the hosts up: their cells park in the VOQs and drain after repair —
  // nothing lost, nothing reordered.
  auto cfg = fault_config();
  cfg.fault_plan.cut_fiber(2'000, 1, 2'000);  // inputs 4..7 dark
  const auto r = sw::run_uniform(cfg, 0.6, 0xD2);
  EXPECT_TRUE(r.exactly_once_in_order);
  EXPECT_EQ(r.out_of_order, 0u);
  EXPECT_EQ(r.faults_recovered, 1u);
  EXPECT_GT(r.mean_recovery_slots, 0.0);  // a real backlog had built up
}

TEST(FaultInjection, GrantCorruptionIsHealedByTheTimeoutPath) {
  auto cfg = fault_config();
  cfg.fault_plan.corrupt_grants(1'000, 5'000, 0.05);
  const auto r = sw::run_uniform(cfg, 0.6, 0xD3);
  EXPECT_GT(r.grant_corruptions, 0u);
  EXPECT_TRUE(r.exactly_once_in_order);
  EXPECT_EQ(r.out_of_order, 0u);
}

TEST(FaultInjection, BurstErrorsAreHealedByRetransmission) {
  auto cfg = fault_config();
  cfg.fault_plan.burst_errors(1'000, -1, 5'000, 0.02);
  const auto r = sw::run_uniform(cfg, 0.6, 0xD4);
  EXPECT_GT(r.retransmissions, 0u);
  EXPECT_TRUE(r.exactly_once_in_order);
  EXPECT_EQ(r.out_of_order, 0u);
}

TEST(FaultInjection, AdapterStallBackpressuresLosslessly) {
  auto cfg = fault_config();
  cfg.fault_plan.stall_adapter(2'000, 3, 1'500);
  const auto r = sw::run_uniform(cfg, 0.6, 0xD5);
  EXPECT_TRUE(r.exactly_once_in_order);
  EXPECT_EQ(r.faults_recovered, 1u);
}

TEST(FaultInjection, PermanentModuleDeathSurvivesOnTheSecondReceiver) {
  auto cfg = fault_config();
  cfg.fault_plan.kill_module(2'000, 5, 1);  // never repaired
  const auto r = sw::run_uniform(cfg, 0.6, 0xD6);
  EXPECT_TRUE(r.exactly_once_in_order);  // survivor carries the egress
  EXPECT_EQ(r.faults_injected, 1u);
  EXPECT_EQ(r.faults_repaired, 0u);
  EXPECT_EQ(r.faults_recovered, 0u);  // recovery stays open by definition
  EXPECT_NEAR(r.throughput, 0.6, 0.05);
}

TEST(FaultInjection, CombinedFaultsStillDeliverExactlyOnce) {
  auto cfg = fault_config();
  cfg.fault_plan.kill_module(2'000, 5, 1, 1'200)
      .cut_fiber(2'600, 2, 1'000)
      .corrupt_grants(1'500, 4'000, 0.02)
      .burst_errors(2'200, 7, 2'000, 0.03)
      .stall_adapter(3'000, 11, 900);
  const auto r = sw::run_uniform(cfg, 0.6, 0xD7);
  EXPECT_TRUE(r.exactly_once_in_order);
  EXPECT_EQ(r.duplicates, 0u);
  EXPECT_EQ(r.missing, 0u);
  EXPECT_EQ(r.out_of_order, 0u);
  EXPECT_EQ(r.faults_injected, 5u);
  EXPECT_EQ(r.faults_repaired, 5u);
}

TEST(FaultInjection, SamePlanAndSeedReplaysBitIdentically) {
  const auto make_cfg = [] {
    auto cfg = fault_config();
    cfg.fault_plan.kill_module(2'000, 5, 1, 1'000)
        .cut_fiber(3'000, 2, 800)
        .corrupt_grants(1'500, 3'000, 0.03)
        .burst_errors(1'500, -1, 3'000, 0.01)
        .seeded(0x5EED);
    return cfg;
  };
  sw::SwitchSim a(make_cfg(), sim::make_uniform(16, 0.6, 0xD8));
  const auto ra = a.run();
  sw::SwitchSim b(make_cfg(), sim::make_uniform(16, 0.6, 0xD8));
  const auto rb = b.run();
  EXPECT_EQ(ra.delivered, rb.delivered);
  EXPECT_EQ(ra.offered, rb.offered);
  EXPECT_EQ(ra.grant_corruptions, rb.grant_corruptions);
  EXPECT_EQ(ra.retransmissions, rb.retransmissions);
  EXPECT_EQ(ra.drained_slots, rb.drained_slots);
  EXPECT_DOUBLE_EQ(ra.throughput, rb.throughput);
  EXPECT_DOUBLE_EQ(ra.mean_delay, rb.mean_delay);
  EXPECT_DOUBLE_EQ(ra.mean_recovery_slots, rb.mean_recovery_slots);
  // The determinism audit trail: identical health event logs.
  EXPECT_EQ(a.health().event_log(), b.health().event_log());
}

TEST(FaultInjection, ZeroRateWindowLeavesTheTrafficPathUntouched) {
  // The injector owns a private RNG stream, so arming the machinery
  // without any effective fault must not perturb the simulation.
  const auto base = sw::run_uniform(failure_config(), 0.7, 99);
  auto cfg = failure_config();
  cfg.fault_plan.corrupt_grants(1'000, 4'000, 0.0);
  const auto r = sw::run_uniform(cfg, 0.7, 99);
  EXPECT_EQ(r.delivered, base.delivered);
  EXPECT_DOUBLE_EQ(r.throughput, base.throughput);
  EXPECT_DOUBLE_EQ(r.mean_delay, base.mean_delay);
  EXPECT_EQ(r.grant_corruptions, 0u);
  EXPECT_EQ(r.retransmissions, 0u);
}

TEST(FaultInjection, SingleStageSwitchRejectsPlaneFaults) {
  auto cfg = fault_config();
  cfg.fault_plan.fail_plane(100, 0, 50);
  EXPECT_DEATH(sw::run_uniform(cfg, 0.5, 1), "multi-plane");
}

TEST(EventSwitchFaults, MidRunFaultsStayExactlyOnceInRealTime) {
  sw::EventSwitchConfig cfg;
  cfg.ports = 8;
  cfg.sched.kind = sw::SchedulerKind::kFlppr;
  cfg.sched.receivers = 2;
  cfg.warmup_ns = 500 * 51.2;
  cfg.measure_ns = 6'000 * 51.2;
  cfg.drain_max_cycles = 30'000;
  cfg.fault_plan.kill_module(1'500, 3, 1, 1'000)
      .corrupt_grants(1'000, 3'000, 0.03)
      .burst_errors(1'000, -1, 3'000, 0.01);
  const auto r = sw::run_event_uniform(cfg, 0.5, 0xE1);
  EXPECT_TRUE(r.exactly_once_in_order);
  EXPECT_EQ(r.out_of_order, 0u);
  EXPECT_GT(r.grant_corruptions, 0u);
  EXPECT_GT(r.retransmissions, 0u);
  EXPECT_EQ(r.faults_injected, 3u);
  EXPECT_EQ(r.faults_repaired, 3u);
}

TEST(FabricFaults, TransientSpineOutageBackpressuresLosslessly) {
  fabric::FabricSimConfig cfg;
  cfg.radix = 8;
  cfg.warmup_slots = 1'000;
  cfg.measure_slots = 8'000;
  cfg.drain_max_slots = 30'000;
  cfg.fault_plan.fail_plane(3'000, 1, 1'500);  // spine 1 down
  const auto r = fabric::run_fabric_uniform(cfg, 0.5, 0xFB1);
  EXPECT_TRUE(r.exactly_once_in_order);
  EXPECT_EQ(r.buffer_overflows, 0u);
  EXPECT_EQ(r.out_of_order, 0u);
  EXPECT_EQ(r.faults_injected, 1u);
  EXPECT_EQ(r.faults_repaired, 1u);
  EXPECT_EQ(r.faults_recovered, 1u);
}

TEST(FabricFaults, PermanentSpineLossIsRejected) {
  // d-mod-k routing has no alternate path: a permanent spine death
  // would strand every flow routed through it, so the configuration is
  // refused up front instead of deadlocking the run.
  fabric::FabricSimConfig cfg;
  cfg.radix = 8;
  cfg.fault_plan.fail_plane(3'000, 1);  // duration 0 = permanent
  EXPECT_DEATH(fabric::run_fabric_uniform(cfg, 0.5, 1), "transient");
}

TEST(FabricFaults, AdaptiveRoutingCarriesAPermanentSpineCut) {
  // Graceful degradation: with fault-aware adaptive routing and
  // degraded-mode admission, a permanent spine cut is survivable — the
  // surviving spines carry re-spread flows, the sources shed the excess,
  // and every non-shed cell still arrives exactly once in order.
  fabric::FabricSimConfig cfg;
  cfg.radix = 8;  // 4 spines, 32 hosts
  cfg.warmup_slots = 1'000;
  cfg.measure_slots = 8'000;
  cfg.drain_max_slots = 200'000;
  cfg.adaptive_routing = true;
  cfg.admission.enabled = true;

  const auto base = fabric::run_fabric_uniform(cfg, 0.85, 0xFB5);
  EXPECT_TRUE(base.exactly_once_in_order);
  EXPECT_EQ(base.shed_cells, 0u);  // full capacity: nothing engages

  cfg.fault_plan.fail_plane(3'000, 1);  // duration 0 = permanent
  const auto r = fabric::run_fabric_uniform(cfg, 0.85, 0xFB5);
  EXPECT_TRUE(r.exactly_once_in_order);
  EXPECT_EQ(r.out_of_order, 0u);
  EXPECT_EQ(r.buffer_overflows, 0u);
  EXPECT_GT(r.resteered, 0u);       // VOQ cells moved off the dead uplink
  EXPECT_GT(r.shed_cells, 0u);      // 0.85 load > 0.75 surviving capacity
  EXPECT_GT(r.brownout_slots, 0u);
  EXPECT_EQ(r.generated, r.offered + r.shed_cells);  // shed accounting
  EXPECT_EQ(r.faults_repaired, 0u);
  // Availability floor: 3/4 survivors must sustain at least 3/4 of the
  // fault-free throughput, less a 10% transient allowance.
  EXPECT_GE(r.throughput, 0.75 * base.throughput * 0.9);
}

TEST(FabricFaults, AdaptiveResteerKeepsResequencerDepthBounded) {
  // The egress resequencer only ever parks cells that were overtaken
  // during a re-steer; its depth must stay far below the in-flight
  // population (bounded by the trunk pipes + input buffers, not by the
  // run length).
  fabric::FabricSimConfig cfg;
  cfg.radix = 8;
  cfg.warmup_slots = 500;
  cfg.measure_slots = 6'000;
  cfg.drain_max_slots = 200'000;
  cfg.adaptive_routing = true;
  cfg.admission.enabled = true;
  // Repeated cut/revive of two spines forces re-steers in both
  // directions through the hysteresis hold-down.
  cfg.fault_plan.fail_plane(1'000, 0, 800)
      .fail_plane(2'500, 1, 800)
      .fail_plane(4'000, 0);  // then spine 0 goes for good
  const auto r = fabric::run_fabric_uniform(cfg, 0.7, 0xFB6);
  EXPECT_TRUE(r.exactly_once_in_order);
  EXPECT_EQ(r.out_of_order, 0u);
  EXPECT_GT(r.resteered, 0u);
  EXPECT_LE(r.max_resequencer_depth, 512u);
  EXPECT_EQ(r.generated, r.offered + r.shed_cells);
}

TEST(FabricFaults, AdaptiveTransientOutageRecoversThroughHysteresis) {
  // A transient outage under adaptive routing: flows re-spread away,
  // then return only after the revival hold-down expires; the run must
  // recover and stay exactly-once with no residual reorder.
  fabric::FabricSimConfig cfg;
  cfg.radix = 8;
  cfg.warmup_slots = 1'000;
  cfg.measure_slots = 8'000;
  cfg.drain_max_slots = 60'000;
  cfg.adaptive_routing = true;
  cfg.reroute_hysteresis_slots = 400;
  cfg.fault_plan.fail_plane(3'000, 1, 1'500);
  const auto r = fabric::run_fabric_uniform(cfg, 0.5, 0xFB7);
  EXPECT_TRUE(r.exactly_once_in_order);
  EXPECT_EQ(r.out_of_order, 0u);
  EXPECT_EQ(r.faults_repaired, 1u);
  EXPECT_EQ(r.faults_recovered, 1u);
  EXPECT_GT(r.resteered, 0u);
}

TEST(FabricFaults, CuttingEverySpineIsRejectedEvenWithAdaptiveRouting) {
  // Adaptive routing needs at least one survivor to re-steer onto; a
  // plan that permanently cuts all spines is refused up front.
  fabric::FabricSimConfig cfg;
  cfg.radix = 8;
  cfg.adaptive_routing = true;
  for (int sp = 0; sp < 4; ++sp) cfg.fault_plan.fail_plane(3'000, sp);
  EXPECT_DEATH(fabric::run_fabric_uniform(cfg, 0.5, 1), "surviving");
}

TEST(FabricFaults, HostStallRecoversThroughCreditFlowControl) {
  fabric::FabricSimConfig cfg;
  cfg.radix = 8;
  cfg.warmup_slots = 1'000;
  cfg.measure_slots = 8'000;
  cfg.drain_max_slots = 30'000;
  cfg.fault_plan.stall_adapter(3'000, 5, 1'500);
  const auto r = fabric::run_fabric_uniform(cfg, 0.5, 0xFB2);
  EXPECT_TRUE(r.exactly_once_in_order);
  EXPECT_EQ(r.buffer_overflows, 0u);
  EXPECT_EQ(r.faults_recovered, 1u);
}

TEST(MultiPlaneFaults, TransientPlaneLossResteersAndStaysInOrder) {
  fabric::MultiPlaneConfig cfg;
  cfg.ports = 8;
  cfg.planes = 4;
  cfg.warmup_slots = 500;
  cfg.measure_slots = 6'000;
  cfg.drain_max_slots = 20'000;
  cfg.fault_plan.fail_plane(2'000, 1, 2'000);
  const auto r = fabric::run_multiplane_uniform(cfg, 0.5, 0xFB3);
  EXPECT_TRUE(r.exactly_once_in_order);
  EXPECT_EQ(r.post_resequencer_ooo, 0u);
  EXPECT_EQ(r.faults_injected, 1u);
  EXPECT_EQ(r.faults_repaired, 1u);
  EXPECT_EQ(r.faults_recovered, 1u);
}

TEST(MultiPlaneFaults, PermanentPlaneLossDegradesToTheSurvivors) {
  fabric::MultiPlaneConfig cfg;
  cfg.ports = 8;
  cfg.planes = 4;
  cfg.warmup_slots = 500;
  cfg.measure_slots = 6'000;
  cfg.drain_max_slots = 20'000;
  cfg.fault_plan.fail_plane(2'000, 2);  // never revived
  const auto r = fabric::run_multiplane_uniform(cfg, 0.4, 0xFB4);
  EXPECT_TRUE(r.exactly_once_in_order);  // re-steer saved the parked cells
  EXPECT_GT(r.resteered, 0u);
  EXPECT_EQ(r.post_resequencer_ooo, 0u);
  EXPECT_EQ(r.faults_repaired, 0u);
}

}  // namespace
}  // namespace osmosis
