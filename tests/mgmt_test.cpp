// Tests for the §VI.A management subsystem: counters, component health
// with dual-receiver redundancy semantics, and configuration validation.

#include <gtest/gtest.h>

#include "src/core/config.hpp"
#include "src/mgmt/config_check.hpp"
#include "src/mgmt/counters.hpp"
#include "src/mgmt/health.hpp"

namespace osmosis::mgmt {
namespace {

// ---- counters ----------------------------------------------------------------

TEST(Counters, AddAndRead) {
  CounterRegistry reg;
  reg.add("ingress.0.cells", 5);
  reg.add("ingress.0.cells", 3);
  EXPECT_DOUBLE_EQ(reg.value("ingress.0.cells"), 8.0);
  EXPECT_TRUE(reg.has("ingress.0.cells"));
  EXPECT_FALSE(reg.has("ingress.1.cells"));
}

TEST(Counters, GaugesOverwrite) {
  CounterRegistry reg;
  reg.set_gauge("voq.depth", 7.0);
  reg.set_gauge("voq.depth", 3.0);
  EXPECT_DOUBLE_EQ(reg.value("voq.depth"), 3.0);
}

TEST(Counters, MonotonicCountersRejectDecrease) {
  CounterRegistry reg;
  EXPECT_DEATH(reg.add("x", -1.0), "cannot decrease");
}

TEST(Counters, PrefixQuery) {
  CounterRegistry reg;
  reg.add("a.one");
  reg.add("a.two");
  reg.add("b.one");
  const auto names = reg.names_with_prefix("a.");
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a.one");
  EXPECT_EQ(names[1], "a.two");
}

TEST(Counters, SnapshotDeltaAndRates) {
  CounterRegistry reg;
  reg.add("cells", 100);
  const Snapshot s1 = reg.snapshot();
  reg.add("cells", 60);
  const Snapshot s2 = reg.snapshot();
  const auto d = CounterRegistry::delta(s1, s2);
  EXPECT_DOUBLE_EQ(d.at("cells"), 60.0);
  const auto r = CounterRegistry::rates(s1, s2, 2.0);
  EXPECT_DOUBLE_EQ(r.at("cells"), 30.0);
}

// ---- health -------------------------------------------------------------------

TEST(Counters, MergeAccumulatesValueWise) {
  CounterRegistry a;
  a.add("leaf.0.grants", 10);
  a.add("leaf.1.grants", 5);
  CounterRegistry b;
  b.add("leaf.0.grants", 3);
  b.add("spine.0.grants", 7);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.value("leaf.0.grants"), 13.0);
  EXPECT_DOUBLE_EQ(a.value("leaf.1.grants"), 5.0);
  EXPECT_DOUBLE_EQ(a.value("spine.0.grants"), 7.0);
  // Merging an empty registry is a no-op.
  a.merge(CounterRegistry{});
  EXPECT_EQ(a.size(), 3u);
}

TEST(Counters, SubtotalSumsPrefix) {
  CounterRegistry reg;
  reg.add("leaf.0.grants", 4);
  reg.add("leaf.1.grants", 6);
  reg.add("leafy.other", 100);  // shares a string prefix, not a hierarchy
  reg.add("spine.0.grants", 9);
  EXPECT_DOUBLE_EQ(reg.subtotal("leaf."), 10.0);
  EXPECT_DOUBLE_EQ(reg.subtotal("spine."), 9.0);
  EXPECT_DOUBLE_EQ(reg.subtotal("leaf"), 110.0);  // prefix is literal
  EXPECT_DOUBLE_EQ(reg.subtotal("nope."), 0.0);
  EXPECT_DOUBLE_EQ(reg.subtotal(""), 119.0);  // whole registry
}

TEST(Health, DeclareAndReport) {
  HealthRegistry reg;
  reg.declare("scheduler");
  EXPECT_EQ(reg.status("scheduler"), Status::kOk);
  reg.report("scheduler", Status::kDegraded, 100, "FPGA over temperature");
  EXPECT_EQ(reg.status("scheduler"), Status::kDegraded);
  ASSERT_EQ(reg.events().size(), 1u);
  EXPECT_EQ(reg.events()[0].time_slot, 100u);
}

TEST(Health, RedundantModuleFailureOnlyDegrades) {
  HealthRegistry reg;
  reg.declare("module/5/0");
  reg.declare("module/5/1");
  reg.report("module/5/0", Status::kFailed, 1);
  // Dual-receiver redundancy: the egress is still reachable.
  EXPECT_EQ(reg.system_status(), Status::kDegraded);
  reg.report("module/5/1", Status::kFailed, 2);
  EXPECT_EQ(reg.system_status(), Status::kFailed);
}

TEST(Health, NonRedundantFailureIsFatal) {
  HealthRegistry reg;
  reg.declare("broadcast/3");
  reg.report("broadcast/3", Status::kFailed, 1, "fiber cut");
  EXPECT_EQ(reg.system_status(), Status::kFailed);
}

TEST(Health, SurveyImportsCrossbarState) {
  phy::BroadcastSelectCrossbar xbar;
  xbar.fail_module(9, 1);
  xbar.fail_fiber(4);
  const auto reg = survey_crossbar(xbar, 77);
  // 8 broadcast + 128 modules + scheduler.
  EXPECT_EQ(reg.component_count(), 137u);
  EXPECT_EQ(reg.status("module/9/1"), Status::kFailed);
  EXPECT_EQ(reg.status("module/9/0"), Status::kOk);
  EXPECT_EQ(reg.status("broadcast/4"), Status::kFailed);
  EXPECT_EQ(reg.count(Status::kFailed), 2u);
  // The dark fiber is not redundant: system failed.
  EXPECT_EQ(reg.system_status(), Status::kFailed);
}

TEST(Health, HealthyCrossbarSurveyIsOk) {
  phy::BroadcastSelectCrossbar xbar;
  const auto reg = survey_crossbar(xbar, 0);
  EXPECT_EQ(reg.system_status(), Status::kOk);
  EXPECT_TRUE(reg.events().empty());
}

// ---- configuration validation ---------------------------------------------------

TEST(ConfigCheck, DemonstratorConfigValidates) {
  const auto findings = validate_config(core::demonstrator_config());
  EXPECT_TRUE(config_ok(findings));
  for (const auto& f : findings)
    EXPECT_NE(f.severity, Severity::kError) << to_string(f);
}

TEST(ConfigCheck, ProductConfigValidates) {
  const auto findings = validate_config(core::product_config());
  EXPECT_TRUE(config_ok(findings)) << findings.size() << " findings";
}

TEST(ConfigCheck, DetectsGeometryMismatch) {
  auto cfg = core::demonstrator_config();
  cfg.fibers = 7;
  const auto findings = validate_config(cfg);
  EXPECT_FALSE(config_ok(findings));
  EXPECT_EQ(findings[0].check, "geometry");
}

TEST(ConfigCheck, DetectsInfeasibleCellTiming) {
  auto cfg = core::demonstrator_config();
  cfg.cell.guard.switch_settle_ns = 60.0;
  const auto findings = validate_config(cfg);
  EXPECT_FALSE(config_ok(findings));
}

TEST(ConfigCheck, WarnsOnLowEfficiency) {
  auto cfg = core::demonstrator_config();
  cfg.cell.guard.switch_settle_ns = 20.0;  // beam-steering-class guard
  const auto findings = validate_config(cfg);
  bool warned = false;
  for (const auto& f : findings)
    warned |= f.severity == Severity::kWarning && f.check == "cell timing";
  EXPECT_TRUE(warned);
}

TEST(ConfigCheck, ReportsSchedulerSizing) {
  const auto findings = validate_config(core::demonstrator_config());
  bool sized = false;
  for (const auto& f : findings) sized |= f.check == "scheduler sizing";
  EXPECT_TRUE(sized);
}

}  // namespace
}  // namespace osmosis::mgmt
