// Tests for src/exec: the thread pool, campaign expansion and seed
// derivation, thread-count determinism of the campaign runner (the
// osmosis.campaign.v1 document must be byte-identical at any worker
// count, including under an active FaultPlan), the retry path, and the
// campaign_compare regression gate.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/exec/campaign.hpp"
#include "src/exec/campaign_compare.hpp"
#include "src/exec/campaign_runner.hpp"
#include "src/exec/thread_pool.hpp"

namespace osmosis::exec {
namespace {

// ---- ThreadPool -----------------------------------------------------------

TEST(ThreadPool, RunsAllSubmittedJobs) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 100);
  EXPECT_TRUE(pool.take_exceptions().empty());
}

TEST(ThreadPool, CapturesExceptionsPerJob) {
  ThreadPool pool(2);
  std::atomic<int> survivors{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&, i] {
      if (i % 2) throw std::runtime_error("job " + std::to_string(i));
      survivors.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(survivors.load(), 5);  // throwing jobs never kill workers
  auto errs = pool.take_exceptions();
  EXPECT_EQ(errs.size(), 5u);
  EXPECT_TRUE(pool.take_exceptions().empty());  // take clears the list
}

TEST(ThreadPool, SubmitFromInsideAJob) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  pool.submit([&] {
    done.fetch_add(1);
    pool.submit([&] { done.fetch_add(1); });
  });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 2);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  pool.submit([&] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 1);
  pool.submit([&] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 2);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), ThreadPool::default_threads());
  EXPECT_GE(pool.size(), 1u);
}

// ---- seed derivation and grid expansion -----------------------------------

TEST(Campaign, SeedDependsOnlyOnCampaignSeedAndIndex) {
  EXPECT_EQ(derive_job_seed(1, 0), derive_job_seed(1, 0));
  EXPECT_NE(derive_job_seed(1, 0), derive_job_seed(1, 1));
  EXPECT_NE(derive_job_seed(1, 0), derive_job_seed(2, 0));
  // No collisions over a realistic campaign size.
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10'000; ++i)
    seen.insert(derive_job_seed(0xCA3B'A167ULL, i));
  EXPECT_EQ(seen.size(), 10'000u);
}

TEST(Campaign, ExpandCoversTheFullGridInDeclaredOrder) {
  CampaignSpec spec;
  spec.receivers = {1, 2};
  spec.loads = {0.3, 0.7};
  spec.faults = {FaultScenario::kNone, FaultScenario::kGrantCorruption};
  spec.repetitions = 2;
  ASSERT_EQ(spec.job_count(), 16u);
  const auto jobs = spec.expand();
  ASSERT_EQ(jobs.size(), 16u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].index, i);
    EXPECT_EQ(jobs[i].seed, derive_job_seed(spec.campaign_seed, i));
  }
  // Outermost-to-innermost: receivers varies slowest of the three axes,
  // repetition fastest.
  EXPECT_EQ(jobs[0].receivers, 1);
  EXPECT_EQ(jobs[8].receivers, 2);
  EXPECT_EQ(jobs[0].repetition, 0);
  EXPECT_EQ(jobs[1].repetition, 1);
  EXPECT_EQ(jobs[0].fault, FaultScenario::kNone);
  EXPECT_EQ(jobs[2].fault, FaultScenario::kGrantCorruption);
  // Labels are unique — campaign_compare keys on them.
  std::set<std::string> labels;
  for (const auto& j : jobs) labels.insert(j.label());
  EXPECT_EQ(labels.size(), jobs.size());
}

TEST(CampaignDeathTest, RejectsIncompatibleAxes) {
  CampaignSpec fabric;
  fabric.sims = {SimKind::kFabric};
  fabric.schedulers = {sw::SchedulerKind::kFlppr};  // needs immediate issue
  EXPECT_DEATH(fabric.expand(), "immediate-issue");

  CampaignSpec spine;
  spine.faults = {FaultScenario::kSpineOutage};  // fabric-only scenario
  EXPECT_DEATH(spine.expand(), "fabric-only");

  CampaignSpec single_rx;
  single_rx.receivers = {1};
  single_rx.faults = {FaultScenario::kCombined};  // kills receiver 1
  EXPECT_DEATH(single_rx.expand(), "receivers");
}

// ---- runner: determinism across thread counts -----------------------------

CampaignSpec small_campaign() {
  // Small but representative: two loads, a fault-free and a combined
  // mid-run fault scenario, dual receivers, 16 ports.
  CampaignSpec spec;
  spec.name = "determinism";
  spec.ports = {16};
  spec.receivers = {2};
  spec.loads = {0.3, 0.7};
  spec.faults = {FaultScenario::kNone, FaultScenario::kCombined};
  spec.warmup_slots = 200;
  spec.measure_slots = 1'500;
  spec.campaign_seed = 0xD17E;
  return spec;
}

TEST(CampaignRunner, ByteIdenticalAcrossThreadCounts) {
  const CampaignSpec spec = small_campaign();
  std::vector<std::string> docs;
  for (unsigned threads : {1u, 2u, 8u}) {
    RunnerOptions opts;
    opts.threads = threads;
    CampaignRunner runner(opts);
    const CampaignResult result = runner.run(spec);
    EXPECT_EQ(result.failed_jobs(), 0u);
    EXPECT_EQ(result.threads_used, threads);
    docs.push_back(result.to_json(2, /*include_timing=*/false));
  }
  EXPECT_EQ(docs[0], docs[1]);
  EXPECT_EQ(docs[1], docs[2]);
  // The fault scenario actually fired (the document is not trivially
  // identical because nothing happened).
  EXPECT_NE(docs[0].find("combined"), std::string::npos);
  EXPECT_NE(docs[0].find("faults_injected"), std::string::npos);
}

TEST(CampaignRunner, DegradedFabricByteIdenticalAcrossThreadCounts) {
  // Graceful degradation determinism: a fabric campaign with a
  // permanent spine cut (adaptive routing + admission engage in the
  // driver) must serialize byte-identically at any worker count.
  CampaignSpec spec;
  spec.name = "degraded_determinism";
  spec.sims = {SimKind::kFabric};
  spec.schedulers = {sw::SchedulerKind::kIslip};
  spec.ports = {8};
  spec.receivers = {1};
  spec.loads = {0.8};
  spec.faults = {FaultScenario::kNone, FaultScenario::kSpinePermanent};
  spec.warmup_slots = 200;
  spec.measure_slots = 1'500;
  spec.campaign_seed = 0xDE6;

  std::vector<std::string> docs;
  for (unsigned threads : {1u, 2u, 8u}) {
    RunnerOptions opts;
    opts.threads = threads;
    CampaignRunner runner(opts);
    const CampaignResult result = runner.run(spec);
    EXPECT_EQ(result.failed_jobs(), 0u);
    docs.push_back(result.to_json(2, /*include_timing=*/false));
  }
  EXPECT_EQ(docs[0], docs[1]);
  EXPECT_EQ(docs[1], docs[2]);
  // The degraded scenario actually engaged: its extra metrics are in
  // the document, and cells were shed under the permanent cut.
  EXPECT_NE(docs[0].find("spine_permanent"), std::string::npos);
  EXPECT_NE(docs[0].find("shed_cells"), std::string::npos);
  EXPECT_NE(docs[0].find("brownout_slots"), std::string::npos);
}

TEST(CampaignRunner, TimingFieldsAreExcludedOnRequest) {
  RunnerOptions opts;
  opts.threads = 2;
  CampaignRunner runner(opts);
  const CampaignResult result = runner.run(small_campaign());
  const std::string timed = result.to_json(2, true);
  const std::string bare = result.to_json(2, false);
  EXPECT_NE(timed.find("wall_ms"), std::string::npos);
  EXPECT_NE(timed.find("timing"), std::string::npos);
  EXPECT_EQ(bare.find("wall_ms"), std::string::npos);
  EXPECT_EQ(bare.find("timing"), std::string::npos);
  EXPECT_EQ(bare.find("timed_out"), std::string::npos);
}

TEST(CampaignRunner, AggregatesCountersAndHistogramsExactly) {
  RunnerOptions opts;
  opts.threads = 4;
  CampaignRunner runner(opts);
  const CampaignResult result = runner.run(small_campaign());
  // Aggregate delay histogram holds exactly the union of the per-job
  // raw histograms.
  std::uint64_t expected = 0;
  for (const auto& j : result.jobs) expected += j.raw_hists.at("delay").count();
  ASSERT_TRUE(result.aggregate_hists.count("switch.delay"));
  EXPECT_EQ(result.aggregate_hists.at("switch.delay").count(), expected);
  EXPECT_GT(expected, 0u);
}

// ---- runner: retry and failure capture ------------------------------------

TEST(CampaignRunner, RetriesFailedJobsViaExecutorHook) {
  CampaignSpec spec;
  spec.name = "retry";
  spec.loads = {0.1, 0.2, 0.3};
  std::atomic<int> attempts_of_job1{0};
  RunnerOptions opts;
  opts.threads = 2;
  opts.max_attempts = 3;
  opts.executor = [&](const JobSpec& j) {
    // Distinct message per attempt: identical messages would be
    // classified deterministic and quarantined instead of retried.
    if (j.index == 1) {
      const int attempt = attempts_of_job1.fetch_add(1);
      if (attempt < 2)
        throw std::runtime_error("transient failure #" +
                                 std::to_string(attempt));
    }
    JobResult r;
    r.ok = true;
    r.metrics["throughput"] = j.load;
    return r;
  };
  CampaignRunner runner(opts);
  const CampaignResult result = runner.run(spec);
  EXPECT_EQ(result.failed_jobs(), 0u);
  EXPECT_EQ(result.jobs[1].attempts, 3);  // two failures, then success
  EXPECT_EQ(result.jobs[0].attempts, 1);
  EXPECT_DOUBLE_EQ(result.jobs[1].metrics.at("throughput"), 0.2);
}

TEST(CampaignRunner, ExhaustedRetriesMarkTheJobFailed) {
  CampaignSpec spec;
  spec.name = "fail";
  spec.loads = {0.1, 0.2};
  RunnerOptions opts;
  opts.threads = 2;
  opts.max_attempts = 2;
  opts.executor = [](const JobSpec& j) -> JobResult {
    if (j.index == 0) throw std::runtime_error("persistent failure");
    JobResult r;
    r.ok = true;
    return r;
  };
  CampaignRunner runner(opts);
  const CampaignResult result = runner.run(spec);
  EXPECT_EQ(result.failed_jobs(), 1u);
  EXPECT_FALSE(result.jobs[0].ok);
  EXPECT_EQ(result.jobs[0].attempts, 2);
  EXPECT_EQ(result.jobs[0].error, "persistent failure");
  EXPECT_TRUE(result.jobs[1].ok);
  // A failed job still serializes (ok=false, error filled in).
  const std::string doc = result.to_json(2, false);
  EXPECT_NE(doc.find("persistent failure"), std::string::npos);
}

// ---- runner: failure classification & quarantine ---------------------------

TEST(CampaignRunner, DeterministicFailureShortCircuitsToQuarantine) {
  CampaignSpec spec;
  spec.name = "quarantine";
  spec.loads = {0.1, 0.2};
  std::atomic<int> attempts_of_job0{0};
  RunnerOptions opts;
  opts.threads = 2;
  opts.max_attempts = 5;
  opts.executor = [&](const JobSpec& j) -> JobResult {
    if (j.index == 0) {
      attempts_of_job0.fetch_add(1);
      throw std::runtime_error("same message every time");
    }
    JobResult r;
    r.ok = true;
    return r;
  };
  CampaignRunner runner(opts);
  const CampaignResult result = runner.run(spec);
  // Identical messages on attempts 1 and 2 => deterministic; attempts
  // 3..5 are never burned.
  EXPECT_EQ(attempts_of_job0.load(), 2);
  EXPECT_FALSE(result.jobs[0].ok);
  EXPECT_TRUE(result.jobs[0].quarantined);
  EXPECT_EQ(result.jobs[0].failure_class, "deterministic");
  EXPECT_EQ(result.jobs[0].attempts, 2);
  EXPECT_TRUE(result.jobs[1].ok);
  EXPECT_FALSE(result.jobs[1].quarantined);
  // The document grows a quarantine section naming the job.
  const std::string doc = result.to_json(2, false);
  EXPECT_NE(doc.find("\"quarantine\""), std::string::npos);
  EXPECT_NE(doc.find("\"class\": \"deterministic\""), std::string::npos);
}

TEST(CampaignRunner, DistinctFailuresStayTransientAndRetry) {
  CampaignSpec spec;
  spec.name = "transient";
  spec.loads = {0.1};
  std::atomic<int> attempts{0};
  RunnerOptions opts;
  opts.threads = 1;
  opts.max_attempts = 3;
  opts.retry_backoff_ms = 0.1;  // exercise the backoff path
  opts.executor = [&](const JobSpec&) -> JobResult {
    throw std::runtime_error("flaky #" +
                             std::to_string(attempts.fetch_add(1)));
  };
  CampaignRunner runner(opts);
  const CampaignResult result = runner.run(spec);
  EXPECT_EQ(result.jobs[0].attempts, 3);  // every attempt was used
  EXPECT_FALSE(result.jobs[0].ok);
  EXPECT_FALSE(result.jobs[0].quarantined);
  EXPECT_EQ(result.jobs[0].failure_class, "transient");
  // Not quarantined => no quarantine section.
  const std::string doc = result.to_json(2, false);
  EXPECT_EQ(doc.find("\"quarantine\""), std::string::npos);
}

TEST(CampaignRunner, TimeoutCancelsCooperativelyAndQuarantines) {
  // A job far too large for a 1 ms budget: the built-in executor's
  // watchdog must abort it mid-run rather than flagging it afterwards.
  JobSpec big;
  big.sim = SimKind::kSwitch;
  big.ports = 16;
  big.load = 0.5;
  big.seed = derive_job_seed(1, 0);
  big.warmup_slots = 1'000;
  big.measure_slots = 50'000'000;
  EXPECT_THROW(run_job(big, 1.0), JobTimeout);

  CampaignSpec spec;
  spec.name = "timeout";
  spec.loads = {0.5};
  spec.ports = {16};
  spec.warmup_slots = 1'000;
  spec.measure_slots = 50'000'000;
  RunnerOptions opts;
  opts.threads = 1;
  opts.max_attempts = 3;
  opts.job_timeout_ms = 1.0;
  CampaignRunner runner(opts);
  const CampaignResult result = runner.run(spec);
  EXPECT_FALSE(result.jobs[0].ok);
  EXPECT_TRUE(result.jobs[0].timed_out);
  EXPECT_TRUE(result.jobs[0].quarantined);
  EXPECT_EQ(result.jobs[0].failure_class, "timeout");
  EXPECT_EQ(result.jobs[0].attempts, 1);  // no retry after a timeout
  const std::string doc = result.to_json(2, false);
  EXPECT_NE(doc.find("\"class\": \"timeout\""), std::string::npos);
}

// ---- campaign_compare ------------------------------------------------------

CampaignResult synthetic_campaign(double throughput, double delay,
                                  bool drop_last = false, bool fail_last = false) {
  CampaignSpec spec;
  spec.name = "gate";
  spec.loads = {0.3, 0.7};
  const auto jobs = spec.expand();
  CampaignResult result;
  result.name = spec.name;
  result.campaign_seed = spec.campaign_seed;
  for (const auto& j : jobs) {
    if (drop_last && j.index + 1 == jobs.size()) continue;
    JobResult r;
    r.spec = j;
    r.ok = !(fail_last && j.index + 1 == jobs.size());
    r.attempts = 1;
    r.metrics["throughput"] = throughput;
    r.metrics["mean_delay"] = delay;
    r.metrics["p99_delay"] = delay * 3.0;
    result.jobs.push_back(std::move(r));
  }
  return result;
}

TEST(CampaignCompare, IdenticalDocumentsPass) {
  const std::string doc = synthetic_campaign(0.8, 10.0).to_json(2, false);
  const auto report = compare_campaigns(doc, doc);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.jobs_compared, 2u);
  EXPECT_GT(report.metrics_compared, 0u);
}

TEST(CampaignCompare, SmallNoiseWithinTolerancePasses) {
  const std::string base = synthetic_campaign(0.80, 10.0).to_json(2, false);
  const std::string cand = synthetic_campaign(0.795, 10.1).to_json(2, false);
  EXPECT_TRUE(compare_campaigns(base, cand).ok());
}

TEST(CampaignCompare, FivePercentThroughputDropFails) {
  const std::string base = synthetic_campaign(0.80, 10.0).to_json(2, false);
  const std::string cand = synthetic_campaign(0.76, 10.0).to_json(2, false);
  const auto report = compare_campaigns(base, cand);
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.regressions.empty());
  EXPECT_EQ(report.regressions[0].metric, "throughput");
}

TEST(CampaignCompare, LatencyRiseBeyondToleranceFails) {
  const std::string base = synthetic_campaign(0.80, 10.0).to_json(2, false);
  const std::string cand = synthetic_campaign(0.80, 12.0).to_json(2, false);
  const auto report = compare_campaigns(base, cand);
  EXPECT_FALSE(report.ok());
  bool latency_flagged = false;
  for (const auto& r : report.regressions)
    latency_flagged |= r.metric == "mean_delay" || r.metric == "p99_delay";
  EXPECT_TRUE(latency_flagged);
}

TEST(CampaignCompare, NearZeroLatencyDustIsNotGated) {
  // 0.5 -> 0.65 cycles is within the absolute slack even though it is
  // +30% relative (applies to p99 = 3x the mean as well).
  const std::string base = synthetic_campaign(0.80, 0.5).to_json(2, false);
  const std::string cand = synthetic_campaign(0.80, 0.65).to_json(2, false);
  EXPECT_TRUE(compare_campaigns(base, cand).ok());
}

TEST(CampaignCompare, MissingAndFailedJobsAreRegressions) {
  const std::string base = synthetic_campaign(0.8, 10.0).to_json(2, false);
  const std::string dropped =
      synthetic_campaign(0.8, 10.0, /*drop_last=*/true).to_json(2, false);
  const auto m = compare_campaigns(base, dropped);
  EXPECT_FALSE(m.ok());
  EXPECT_EQ(m.regressions[0].metric, "missing");

  const std::string failed =
      synthetic_campaign(0.8, 10.0, false, /*fail_last=*/true)
          .to_json(2, false);
  const auto f = compare_campaigns(base, failed);
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.regressions[0].metric, "job_failed");
}

TEST(CampaignCompare, WiderToleranceAcceptsTheSameDrop) {
  const std::string base = synthetic_campaign(0.80, 10.0).to_json(2, false);
  const std::string cand = synthetic_campaign(0.76, 10.0).to_json(2, false);
  CompareOptions loose;
  loose.tolerance = 0.10;
  EXPECT_TRUE(compare_campaigns(base, cand, loose).ok());
}

}  // namespace
}  // namespace osmosis::exec
