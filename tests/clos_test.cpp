// Tests for the generalized L-level folded-Clos fabric simulator:
// topology construction, routing, cross-validation against the
// dedicated leaf-spine simulator, and 3-vs-5-stage behaviour.

#include <gtest/gtest.h>

#include <cmath>

#include "src/fabric/clos_sim.hpp"
#include "src/fabric/fabric_sim.hpp"
#include "src/topo/sizing.hpp"

namespace osmosis::fabric {
namespace {

ClosConfig clos_config(int radix, int levels) {
  ClosConfig cfg;
  cfg.radix = radix;
  cfg.levels = levels;
  cfg.trunk_cable_slots = 4;
  cfg.buffer_cells = 16;
  cfg.warmup_slots = 1'000;
  cfg.measure_slots = 10'000;
  return cfg;
}

TEST(ClosSim, TopologyCountsMatchAnalyticSizing) {
  for (const auto& [radix, levels] : {std::pair{8, 2}, std::pair{8, 3},
                                      std::pair{4, 3}, std::pair{16, 2}}) {
    ClosConfig cfg = clos_config(radix, levels);
    const int hosts = radix * static_cast<int>(std::pow(radix / 2.0,
                                                        levels - 1));
    ClosFabricSim sim(cfg, sim::make_uniform(hosts, 0.1, 1));
    const auto sizing = topo::size_fat_tree(radix, static_cast<std::uint64_t>(hosts));
    EXPECT_EQ(sim.hosts(), hosts) << radix << "/" << levels;
    EXPECT_EQ(static_cast<std::uint64_t>(sim.switch_count()),
              sizing.switches_total)
        << radix << "/" << levels;
  }
}

TEST(ClosSim, SingleSwitchDegenerateCase) {
  ClosConfig cfg = clos_config(8, 1);
  const auto r = run_clos_uniform(cfg, 0.6, 3);
  EXPECT_EQ(r.hosts, 8);
  EXPECT_EQ(r.switches, 1);
  EXPECT_NEAR(r.throughput, 0.6, 0.03);
  EXPECT_EQ(r.buffer_overflows, 0u);
  EXPECT_EQ(r.out_of_order, 0u);
  EXPECT_NEAR(r.mean_hops, 1.0, 0.01);  // exactly one stage
}

TEST(ClosSim, TwoLevelMatchesLeafSpineSimulator) {
  // Same topology, same FC mechanics — the two independent
  // implementations must agree on the steady-state metrics.
  ClosConfig cc = clos_config(8, 2);
  const auto clos = run_clos_uniform(cc, 0.7, 5);

  FabricSimConfig fc;
  fc.radix = 8;
  fc.trunk_cable_slots = 4;
  fc.buffer_cells = 16;
  fc.warmup_slots = 1'000;
  fc.measure_slots = 10'000;
  const auto leafspine = run_fabric_uniform(fc, 0.7, 5);

  EXPECT_EQ(clos.hosts, leafspine.hosts);
  EXPECT_NEAR(clos.throughput, leafspine.throughput, 0.02);
  EXPECT_NEAR(clos.mean_delay_slots, leafspine.mean_delay_slots,
              leafspine.mean_delay_slots * 0.25);
  EXPECT_EQ(clos.buffer_overflows, 0u);
  EXPECT_EQ(clos.out_of_order, 0u);
}

TEST(ClosSim, ThreeLevelLosslessAndInOrder) {
  ClosConfig cfg = clos_config(8, 3);  // 128 hosts, 5 stages, 80 switches
  const auto r = run_clos_uniform(cfg, 0.6, 7);
  EXPECT_EQ(r.hosts, 128);
  EXPECT_EQ(r.path_stages, 5);
  EXPECT_NEAR(r.throughput, 0.6, 0.03);
  EXPECT_EQ(r.buffer_overflows, 0u);
  EXPECT_EQ(r.out_of_order, 0u);
}

TEST(ClosSim, MoreStagesMoreLatency) {
  // §VI.C at cell level: 128 hosts either as a 3-stage radix-16 fabric
  // or a 5-stage radix-8 fabric. The extra stages cost delay.
  const auto three = run_clos_uniform(clos_config(16, 2), 0.5, 9);
  const auto five = run_clos_uniform(clos_config(8, 3), 0.5, 9);
  ASSERT_EQ(three.hosts, five.hosts);
  EXPECT_LT(three.mean_hops, five.mean_hops);
  EXPECT_LT(three.mean_delay_slots, five.mean_delay_slots);
}

TEST(ClosSim, HopCountsBoundedByPathStages) {
  const auto r = run_clos_uniform(clos_config(8, 3), 0.3, 11);
  EXPECT_GE(r.mean_hops, 1.0);
  EXPECT_LE(r.mean_hops, 5.0);  // never more than 2L-1 switch traversals
}

TEST(ClosSim, BuffersRespectCapacityAtHighLoad) {
  ClosConfig cfg = clos_config(8, 3);
  cfg.buffer_cells = 10;  // just above the trunk RTT of 8
  const auto r = run_clos_uniform(cfg, 0.85, 13);
  EXPECT_EQ(r.buffer_overflows, 0u);
  for (int occ : r.max_input_occupancy_per_level)
    EXPECT_LE(occ, cfg.buffer_cells);
}

namespace {

/// Generator that injects Bernoulli traffic for `active_slots` host
/// polls, then goes silent — used to drain the fabric and prove cell
/// conservation.
class TruncatedUniform final : public sim::TrafficGen {
 public:
  TruncatedUniform(int ports, double load, std::uint64_t active_slots,
                   std::uint64_t seed)
      : inner_(ports, load, sim::Rng(seed)),
        samples_budget_(active_slots * static_cast<std::uint64_t>(ports)) {}

  int ports() const override { return inner_.ports(); }
  double offered_load() const override { return inner_.offered_load(); }
  bool sample(int input, sim::Arrival& out) override {
    if (samples_budget_ == 0) return false;
    --samples_budget_;
    return inner_.sample(input, out);
  }

 private:
  sim::BernoulliUniform inner_;
  std::uint64_t samples_budget_;
};

}  // namespace

TEST(ClosSim, ConservationEveryInjectedCellDelivered) {
  // Inject for 3000 slots, then drain for 5000 silent slots: the fabric
  // must deliver every single cell it accepted (losslessness as exact
  // conservation, not just "no overflow counters").
  ClosConfig cfg = clos_config(8, 3);
  cfg.warmup_slots = 0;
  cfg.measure_slots = 8'000;
  const int hosts = 128;
  ClosFabricSim sim(cfg, std::make_unique<TruncatedUniform>(hosts, 0.7,
                                                            3'000, 99));
  const auto r = sim.run();
  EXPECT_GT(r.injected_total, 100'000u);
  EXPECT_EQ(r.injected_total, r.delivered_total);
  EXPECT_EQ(r.buffer_overflows, 0u);
  EXPECT_EQ(r.out_of_order, 0u);
}

// ---- degraded topologies (failed switches) ---------------------------------

TEST(ClosDegraded, FailedSpineReroutesAndConserves) {
  // radix 8, L=2: leaves are ids 0..7, the 4 top-level spines 8..11.
  // Killing one spine re-spreads every flow over the 3 survivors; the
  // fabric must still deliver every accepted cell, in order.
  ClosConfig cfg = clos_config(8, 2);
  cfg.warmup_slots = 0;
  cfg.measure_slots = 8'000;
  cfg.failed_switches = {8};
  ClosFabricSim sim(cfg, std::make_unique<TruncatedUniform>(32, 0.6,
                                                            3'000, 7));
  const auto r = sim.run();
  EXPECT_GT(r.injected_total, 30'000u);
  EXPECT_EQ(r.injected_total, r.delivered_total);
  EXPECT_EQ(r.buffer_overflows, 0u);
  EXPECT_EQ(r.out_of_order, 0u);
}

TEST(ClosDegraded, MidLevelFailureReroutesInsideThePod) {
  // radix 4, L=3: each FT'(2) slice builds leaves then its level-2
  // switches, so id 2 is the first slice's first level-2 switch. Flows
  // out of that pod re-spread over its twin.
  ClosConfig cfg = clos_config(4, 3);
  cfg.warmup_slots = 500;
  cfg.measure_slots = 6'000;
  cfg.failed_switches = {2};
  const auto r = run_clos_uniform(cfg, 0.5, 17);
  EXPECT_EQ(r.buffer_overflows, 0u);
  EXPECT_EQ(r.out_of_order, 0u);
  EXPECT_GT(r.throughput, 0.35);  // degraded but alive
}

TEST(ClosDegraded, FailedLeafIsRejected) {
  // A leaf is its hosts' only attachment point: no reroute exists, so
  // the configuration is refused with the stranded host range named.
  ClosConfig cfg = clos_config(8, 2);
  cfg.failed_switches = {0};
  EXPECT_DEATH(run_clos_uniform(cfg, 0.5, 1), "outright");
}

TEST(ClosDegraded, DisconnectingEveryTopSwitchIsRejected) {
  // All 4 spines dead leaves no inter-leaf path at all; the
  // connectivity audit names a disconnected host pair.
  ClosConfig cfg = clos_config(8, 2);
  cfg.failed_switches = {8, 9, 10, 11};
  EXPECT_DEATH(run_clos_uniform(cfg, 0.5, 1), "disconnect");
}

TEST(ClosDegraded, OutOfRangeFailedSwitchIsRejected) {
  ClosConfig cfg = clos_config(8, 2);
  cfg.failed_switches = {12};  // only 12 switches: ids 0..11
  EXPECT_DEATH(run_clos_uniform(cfg, 0.5, 1), "out of range");
}

TEST(ClosSim, RejectsBadConfigs) {
  EXPECT_DEATH(run_clos_uniform(clos_config(7, 2), 0.5, 1), "even");
  ClosConfig cfg = clos_config(8, 2);
  cfg.scheduler = sw::SchedulerKind::kFlppr;
  EXPECT_DEATH(run_clos_uniform(cfg, 0.5, 1), "immediate-issue");
}

}  // namespace
}  // namespace osmosis::fabric
