// Unit tests for src/util: units, tables, CLI parsing.

#include <gtest/gtest.h>

#include <sstream>

#include "src/util/cli.hpp"
#include "src/util/table.hpp"
#include "src/util/units.hpp"

namespace osmosis::util {
namespace {

TEST(Units, FiberDelayMatchesPaperBudget) {
  // The paper supports "fiber cabling with 250 ns time-of-flight delay
  // for a 50-m-diameter machine room" — about 5 ns/m.
  EXPECT_NEAR(kFiberDelayNsPerM, 4.9, 0.1);
  EXPECT_NEAR(fiber_delay_ns(50.0), 245.0, 5.0);
}

TEST(Units, SerializationTimeMatchesPaperExample) {
  // §IV: "at 12 GByte/s a 64-Byte packet takes 5.33 ns to store".
  EXPECT_NEAR(serialization_ns(64.0, gbyte_to_gbit(12.0)), 5.33, 0.01);
}

TEST(Units, DemonstratorCellCycle) {
  // 256 B at 40 Gb/s = 51.2 ns (§V).
  EXPECT_DOUBLE_EQ(serialization_ns(256.0, 40.0), 51.2);
}

TEST(Units, DbRoundTrip) {
  for (double x : {0.001, 0.5, 1.0, 2.0, 1234.5}) {
    EXPECT_NEAR(from_db(to_db(x)), x, 1e-9 * x);
  }
  EXPECT_DOUBLE_EQ(to_db(10.0), 10.0);
  EXPECT_DOUBLE_EQ(to_db(100.0), 20.0);
}

TEST(Units, DbmRoundTrip) {
  EXPECT_DOUBLE_EQ(mw_to_dbm(1.0), 0.0);
  EXPECT_NEAR(dbm_to_mw(10.0), 10.0, 1e-12);
  EXPECT_NEAR(dbm_to_mw(mw_to_dbm(3.7)), 3.7, 1e-12);
}

TEST(Units, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(64), 6);   // the paper's 64-port switch
  EXPECT_EQ(ceil_log2(65), 7);
  EXPECT_EQ(ceil_log2(2048), 11);
}

TEST(Units, Ipow) {
  EXPECT_EQ(ipow(2, 0), 1u);
  EXPECT_EQ(ipow(2, 10), 1024u);
  EXPECT_EQ(ipow(32, 2), 1024u);
  EXPECT_EQ(ipow(7, 3), 343u);
}

TEST(Units, AlmostEqual) {
  EXPECT_TRUE(almost_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(almost_equal(1.0, 1.001));
  EXPECT_TRUE(almost_equal(0.0, 0.0));
}

TEST(Table, AlignedRendering) {
  Table t({"a", "bb"});
  t.add_row({std::string("x"), 42LL});
  t.add_row({1.5, 7LL});
  std::ostringstream oss;
  t.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_EQ(t.column_count(), 2u);
}

TEST(Table, CsvRendering) {
  Table t({"x", "y"}, 2);
  t.add_row({1LL, 2.5});
  std::ostringstream oss;
  t.print_csv(oss);
  EXPECT_EQ(oss.str(), "x,y\n1,2.50\n");
}

TEST(Table, CellAccessor) {
  Table t({"v"}, 3);
  t.add_row({3.14159});
  EXPECT_EQ(t.rendered(0, 0), "3.142");
}

TEST(Cli, KeyValueForms) {
  const char* argv[] = {"prog", "--ports=64", "--load=0.9", "--verbose",
                        "positional"};
  Cli cli(5, argv);
  EXPECT_EQ(cli.get_int("ports", 0), 64);
  EXPECT_DOUBLE_EQ(cli.get_double("load", 0.0), 0.9);
  EXPECT_TRUE(cli.get_bool("verbose", false));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "positional");
}

TEST(Cli, Defaults) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv);
  EXPECT_EQ(cli.get_int("missing", 7), 7);
  EXPECT_EQ(cli.get("missing", "d"), "d");
  EXPECT_FALSE(cli.has("missing"));
}

TEST(Cli, StrictIntParsing) {
  long long v = 0;
  std::string err;
  EXPECT_TRUE(parse_strict_int("42", &v, &err));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(parse_strict_int("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_TRUE(parse_strict_int("0x1f", &v));  // hex accepted (base 0)
  EXPECT_EQ(v, 31);
  EXPECT_FALSE(parse_strict_int("", &v, &err));
  EXPECT_FALSE(parse_strict_int("12abc", &v, &err));  // trailing junk
  EXPECT_FALSE(parse_strict_int("1.5", &v, &err));
  EXPECT_FALSE(parse_strict_int("99999999999999999999", &v, &err));
  EXPECT_FALSE(err.empty());
}

TEST(Cli, StrictDoubleParsing) {
  double v = 0.0;
  EXPECT_TRUE(parse_strict_double("0.85", &v));
  EXPECT_DOUBLE_EQ(v, 0.85);
  EXPECT_TRUE(parse_strict_double("1e-3", &v));
  EXPECT_DOUBLE_EQ(v, 1e-3);
  EXPECT_FALSE(parse_strict_double("", &v));
  EXPECT_FALSE(parse_strict_double("0.5x", &v));
  EXPECT_FALSE(parse_strict_double("load", &v));
}

TEST(Cli, IntListParsing) {
  std::vector<long long> v;
  EXPECT_TRUE(parse_int_list("1,2,8", &v));
  EXPECT_EQ(v, (std::vector<long long>{1, 2, 8}));
  EXPECT_TRUE(parse_int_list("64", &v));
  EXPECT_EQ(v, (std::vector<long long>{64}));
  std::string err;
  EXPECT_FALSE(parse_int_list("", &v, &err));
  EXPECT_FALSE(parse_int_list("1,,2", &v, &err));   // empty item
  EXPECT_FALSE(parse_int_list("1,2,", &v, &err));   // trailing comma
  EXPECT_FALSE(parse_int_list("1,two", &v, &err));  // malformed item
  EXPECT_NE(err.find("two"), std::string::npos);
}

TEST(Cli, DoubleListParsing) {
  std::vector<double> v;
  EXPECT_TRUE(parse_double_list("0.1,0.5,0.9", &v));
  EXPECT_EQ(v, (std::vector<double>{0.1, 0.5, 0.9}));
  EXPECT_FALSE(parse_double_list("0.1,oops", &v));
  EXPECT_FALSE(parse_double_list(",0.1", &v));
}

TEST(Cli, ListFlagsWithDefaults) {
  const char* argv[] = {"prog", "--loads=0.1,0.5,0.9", "--receivers=1,2"};
  Cli cli(3, argv);
  EXPECT_EQ(cli.get_doubles("loads", {}),
            (std::vector<double>{0.1, 0.5, 0.9}));
  EXPECT_EQ(cli.get_ints("receivers", {}),
            (std::vector<long long>{1, 2}));
  // Absent key returns the default unchanged.
  EXPECT_EQ(cli.get_doubles("missing", {0.7}), (std::vector<double>{0.7}));
  EXPECT_EQ(cli.get_ints("missing", {3, 4}),
            (std::vector<long long>{3, 4}));
}

using CliDeathTest = ::testing::Test;

TEST(Cli, TypedGettersRegisterFlagsForUsage) {
  const char* argv[] = {"prog", "--ports=8"};
  Cli cli(2, argv);
  cli.get_int("ports", 64);
  cli.get_double("load", 0.5);
  cli.get_bool("timing", true);
  cli.get_path("json", "");
  cli.get_ints("receivers", {1, 2, 4});
  cli.get_doubles("loads", {0.1, 0.9});
  cli.has("smoke");

  const auto& flags = cli.flags();
  ASSERT_EQ(flags.size(), 7u);
  EXPECT_EQ(flags.at("ports").type, "int");
  EXPECT_EQ(flags.at("ports").def, "64");  // the default, not the parsed 8
  EXPECT_EQ(flags.at("load").type, "number");
  EXPECT_EQ(flags.at("load").def, "0.5");
  EXPECT_EQ(flags.at("timing").type, "bool");
  EXPECT_EQ(flags.at("timing").def, "true");
  EXPECT_EQ(flags.at("json").type, "path");
  EXPECT_EQ(flags.at("receivers").type, "int-list");
  EXPECT_EQ(flags.at("receivers").def, "1,2,4");
  EXPECT_EQ(flags.at("loads").type, "number-list");
  EXPECT_EQ(flags.at("smoke").type, "flag");
}

TEST(Cli, TypedGetterUpgradesBarePresenceProbeNeverTheReverse) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv);
  // has() first, typed getter later: the richer type wins.
  cli.has("json");
  cli.get_path("json", "");
  EXPECT_EQ(cli.flags().at("json").type, "path");
  // Typed getter first, has() later: the probe must not downgrade it.
  cli.get_int("ports", 16);
  cli.has("ports");
  EXPECT_EQ(cli.flags().at("ports").type, "int");
}

TEST(Cli, UsageListsEveryRegisteredFlagDeterministically) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv);
  cli.get_int("ports", 64);
  cli.has("smoke");
  const std::string u = cli.usage("test synopsis");
  EXPECT_NE(u.find("test synopsis"), std::string::npos);
  EXPECT_NE(u.find("--ports=<int>"), std::string::npos);
  EXPECT_NE(u.find("(default: 64)"), std::string::npos);
  EXPECT_NE(u.find("--smoke"), std::string::npos);
  EXPECT_NE(u.find("(presence flag)"), std::string::npos);
  EXPECT_NE(u.find("--help"), std::string::npos);
  EXPECT_EQ(u, cli.usage("test synopsis"));  // deterministic rendering
}

TEST(CliDeathTest, HelpPrintsUsageAndExitsZero) {
  const char* argv[] = {"prog", "--help"};
  Cli cli(2, argv);
  cli.get_int("ports", 64);
  EXPECT_EXIT(cli.maybe_help("synopsis"), ::testing::ExitedWithCode(0),
              "");
}

TEST(CliDeathTest, MalformedIntExitsWithUsageError) {
  const char* argv[] = {"prog", "--ports=sixty-four"};
  Cli cli(2, argv);
  EXPECT_EXIT(cli.get_int("ports", 0), ::testing::ExitedWithCode(2),
              "--ports");
}

TEST(CliDeathTest, MalformedListExitsWithUsageError) {
  const char* argv[] = {"prog", "--loads=0.1,,0.9"};
  Cli cli(2, argv);
  EXPECT_EXIT(cli.get_doubles("loads", {}), ::testing::ExitedWithCode(2),
              "--loads");
}

}  // namespace
}  // namespace osmosis::util
