// Unit tests for the fault-injection layer: FaultPlan builders, the
// FaultInjector timeline/roll determinism contract, the exactly-once
// invariant checker, the recovery-time tracker, the management-side
// validators for static failures and fault plans, and the chaos
// InvariantMonitor (silent under every declared fault kind; every
// invariant demonstrably fires against a deliberately broken ledger).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/chaos/monitor.hpp"
#include "src/chaos/trial.hpp"
#include "src/core/config.hpp"
#include "src/faults/fault_injector.hpp"
#include "src/faults/fault_plan.hpp"
#include "src/faults/invariant.hpp"
#include "src/mgmt/config_check.hpp"

namespace osmosis {
namespace {

// ---- FaultPlan -------------------------------------------------------------

TEST(FaultPlan, BuildersRecordEventsInOrder) {
  faults::FaultPlan plan;
  plan.kill_module(100, 3, 1, 50)
      .cut_fiber(200, 2)
      .burst_errors(300, 5, 40, 0.1)
      .corrupt_grants(400, 20, 0.05)
      .stall_adapter(500, 7, 10)
      .fail_plane(600, 1, 30);
  ASSERT_EQ(plan.size(), 6u);
  EXPECT_FALSE(plan.empty());
  const auto& e = plan.events();
  EXPECT_EQ(e[0].kind, faults::FaultKind::kModuleDeath);
  EXPECT_TRUE(e[0].transient());
  EXPECT_EQ(e[0].end_slot(), 150u);
  EXPECT_EQ(e[1].kind, faults::FaultKind::kFiberCut);
  EXPECT_FALSE(e[1].transient());  // duration 0 = permanent
  EXPECT_EQ(e[2].rate, 0.1);
  EXPECT_EQ(e[4].a, 7);
  EXPECT_TRUE(plan.has_permanent_fault());
}

TEST(FaultPlan, RejectsNonProbabilityRates) {
  faults::FaultPlan plan;
  EXPECT_DEATH(plan.burst_errors(0, 1, 10, 1.5), "probability");
}

TEST(FaultPlan, RejectsPermanentRateWindows) {
  faults::FaultPlan plan;
  EXPECT_DEATH(plan.corrupt_grants(0, 0, 0.1), "transient");
  EXPECT_DEATH(plan.stall_adapter(0, 1, 0), "transient");
}

// ---- FaultInjector ---------------------------------------------------------

TEST(FaultInjector, TimelineFiresBeginAndRepairAtTheRightSlots) {
  faults::FaultPlan plan;
  plan.kill_module(10, 2, 0, 5).cut_fiber(12, 1);
  faults::FaultInjector inj(plan);
  EXPECT_EQ(inj.pending(), 3u);  // 2 begins + 1 repair

  for (std::uint64_t t = 0; t < 10; ++t)
    EXPECT_TRUE(inj.tick(t).empty());
  const auto at10 = inj.tick(10);
  ASSERT_EQ(at10.size(), 1u);
  EXPECT_TRUE(at10[0].begin);
  EXPECT_EQ(at10[0].event.kind, faults::FaultKind::kModuleDeath);
  EXPECT_EQ(inj.active_faults(), 1);

  const auto at12 = inj.tick(12);
  ASSERT_EQ(at12.size(), 1u);
  EXPECT_EQ(at12[0].event.kind, faults::FaultKind::kFiberCut);

  EXPECT_TRUE(inj.tick(13).empty());
  const auto at15 = inj.tick(15);
  ASSERT_EQ(at15.size(), 1u);
  EXPECT_FALSE(at15[0].begin);  // module repair
  EXPECT_EQ(inj.pending(), 0u);
  EXPECT_EQ(inj.active_faults(), 1);  // permanent fiber cut stays open
  EXPECT_EQ(inj.log().size(), 3u);
}

TEST(FaultInjector, LateTickCatchesUpMissedTransitions) {
  faults::FaultPlan plan;
  plan.kill_module(5, 0, 0, 2);
  faults::FaultInjector inj(plan);
  // One call far past both slots delivers begin AND repair, in order.
  const auto both = inj.tick(100);
  ASSERT_EQ(both.size(), 2u);
  EXPECT_TRUE(both[0].begin);
  EXPECT_FALSE(both[1].begin);
}

TEST(FaultInjector, RollsOnlyInsideActiveWindows) {
  faults::FaultPlan plan;
  plan.corrupt_grants(10, 5, 1.0).burst_errors(10, 3, 5, 1.0);
  faults::FaultInjector inj(plan);
  inj.tick(0);
  EXPECT_FALSE(inj.corrupt_grant());       // window not open yet
  EXPECT_FALSE(inj.corrupt_transfer(3));
  inj.tick(10);
  EXPECT_TRUE(inj.corrupt_grant());        // rate 1.0: certain
  EXPECT_TRUE(inj.corrupt_transfer(3));
  EXPECT_FALSE(inj.corrupt_transfer(4));   // burst scoped to ingress 3
  inj.tick(15);                            // windows closed
  EXPECT_FALSE(inj.corrupt_grant());
  EXPECT_FALSE(inj.corrupt_transfer(3));
}

TEST(FaultInjector, SamePlanSameSeedReplaysIdentically) {
  faults::FaultPlan plan;
  plan.corrupt_grants(0, 200, 0.35).seeded(0xBEEF);
  faults::FaultInjector a(plan);
  faults::FaultInjector b(plan);
  std::vector<bool> rolls_a, rolls_b;
  for (std::uint64_t t = 0; t < 200; ++t) {
    a.tick(t);
    b.tick(t);
    for (int k = 0; k < 3; ++k) {
      rolls_a.push_back(a.corrupt_grant());
      rolls_b.push_back(b.corrupt_grant());
    }
  }
  EXPECT_EQ(rolls_a, rolls_b);
  EXPECT_EQ(a.log(), b.log());
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  faults::FaultPlan base;
  base.corrupt_grants(0, 500, 0.5);
  faults::FaultInjector a(base);
  faults::FaultPlan reseeded = base;
  reseeded.seeded(0x1234);
  faults::FaultInjector b(reseeded);
  int differ = 0;
  for (std::uint64_t t = 0; t < 500; ++t) {
    a.tick(t);
    b.tick(t);
    differ += a.corrupt_grant() != b.corrupt_grant();
  }
  EXPECT_GT(differ, 0);
}

// ---- ExactlyOnceChecker ----------------------------------------------------

TEST(ExactlyOnce, CleanRunPasses) {
  faults::ExactlyOnceChecker c;
  for (int i = 0; i < 5; ++i) c.offered(7);
  for (int i = 0; i < 5; ++i) c.delivered(7, static_cast<std::uint64_t>(i));
  const auto r = c.report();
  EXPECT_TRUE(r.exactly_once_in_order());
  EXPECT_EQ(r.offered, 5u);
  EXPECT_EQ(r.delivered, 5u);
}

TEST(ExactlyOnce, DetectsDuplicates) {
  faults::ExactlyOnceChecker c;
  c.offered(1);
  c.offered(1);
  c.delivered(1, 0);
  c.delivered(1, 0);  // duplicate
  c.delivered(1, 1);
  const auto r = c.report();
  EXPECT_FALSE(r.exactly_once_in_order());
  EXPECT_EQ(r.duplicates, 1u);
}

TEST(ExactlyOnce, DetectsReorderingAndMissing) {
  faults::ExactlyOnceChecker c;
  for (int i = 0; i < 3; ++i) c.offered(2);
  c.delivered(2, 1);  // 0 skipped: reorder, and 0 never arrives
  c.delivered(2, 2);
  const auto r = c.report();
  EXPECT_FALSE(r.exactly_once_in_order());
  EXPECT_GE(r.reordered, 1u);
  EXPECT_EQ(r.missing, 1u);
}

TEST(ExactlyOnce, TracksFlowsIndependently) {
  faults::ExactlyOnceChecker c;
  c.offered(10);
  c.offered(11);
  c.delivered(11, 0);
  c.delivered(10, 0);  // cross-flow interleave is fine
  EXPECT_TRUE(c.report().exactly_once_in_order());
}

// ---- RecoveryTracker -------------------------------------------------------

TEST(RecoveryTracker, MeasuresRepairToBaselineBacklog) {
  faults::RecoveryTracker rt;
  rt.on_fault(100, "cut", 4);  // baseline backlog 4
  rt.observe(150, 50);         // still faulty, backlog ballooning
  rt.on_repair(200, "cut");
  rt.observe(210, 30);         // draining
  rt.observe(240, 4);          // back at baseline -> recovered
  rt.observe(260, 2);          // no double count
  EXPECT_EQ(rt.faults(), 1u);
  EXPECT_EQ(rt.repaired(), 1u);
  EXPECT_EQ(rt.recovered(), 1u);
  EXPECT_DOUBLE_EQ(rt.mean_recovery_slots(), 40.0);
  EXPECT_DOUBLE_EQ(rt.max_recovery_slots(), 40.0);
}

TEST(RecoveryTracker, UnrepairedFaultNeverRecovers) {
  faults::RecoveryTracker rt;
  rt.on_fault(10, "perm", 0);
  for (std::uint64_t t = 11; t < 100; ++t) rt.observe(t, 0);
  EXPECT_EQ(rt.recovered(), 0u);
  EXPECT_EQ(rt.repaired(), 0u);
}

TEST(RecoveryTracker, OverlappingWindowsRecoverIndependently) {
  // Two faults whose windows overlap: each recovery is timed from ITS
  // OWN repair against ITS OWN onset baseline, not from the other's.
  faults::RecoveryTracker rt;
  rt.on_fault(100, "a", 4);   // baseline 4
  rt.on_fault(150, "b", 20);  // opened while "a" is still down
  rt.on_repair(200, "a");
  rt.observe(230, 18);        // above a's baseline, b unrepaired: nothing
  EXPECT_EQ(rt.recovered(), 0u);
  rt.on_repair(250, "b");
  rt.observe(260, 15);        // b recovers (15 <= 20), dt = 10; a waits
  EXPECT_EQ(rt.recovered(), 1u);
  rt.observe(300, 3);         // a recovers (3 <= 4), dt = 100
  EXPECT_EQ(rt.faults(), 2u);
  EXPECT_EQ(rt.repaired(), 2u);
  EXPECT_EQ(rt.recovered(), 2u);
  EXPECT_DOUBLE_EQ(rt.mean_recovery_slots(), 55.0);
  EXPECT_DOUBLE_EQ(rt.max_recovery_slots(), 100.0);
  EXPECT_EQ(rt.recovery_histogram().count(), 2u);
}

TEST(RecoveryTracker, AdjacentWindowsOnOneKeyCountSeparately) {
  // The same component failing again right after recovering opens a
  // fresh window with a fresh baseline and MTTR sample.
  faults::RecoveryTracker rt;
  rt.on_fault(100, "spine/0", 2);
  rt.on_repair(150, "spine/0");
  rt.observe(170, 1);  // recovered, dt = 20
  rt.on_fault(180, "spine/0", 6);
  rt.on_repair(240, "spine/0");
  rt.observe(250, 6);  // recovered, dt = 10
  EXPECT_EQ(rt.faults(), 2u);
  EXPECT_EQ(rt.recovered(), 2u);
  EXPECT_DOUBLE_EQ(rt.mean_recovery_slots(), 15.0);
  EXPECT_EQ(rt.recovery_histogram().count(), 2u);
}

// ---- management-side validation --------------------------------------------

core::OsmosisConfig demo_config() { return core::OsmosisConfig{}; }

TEST(ValidateFailures, AcceptsSurvivableSets) {
  const auto f = mgmt::validate_failures(demo_config(), {{0, 1}, {5, 0}},
                                         {2});
  EXPECT_TRUE(mgmt::config_ok(f));
}

TEST(ValidateFailures, RejectsOutOfRangeAndDeadEgress) {
  const auto bad_range =
      mgmt::validate_failures(demo_config(), {{64, 0}}, {});
  EXPECT_FALSE(mgmt::config_ok(bad_range));

  // Both modules of egress 3 dead: the port is unreachable.
  const auto dead =
      mgmt::validate_failures(demo_config(), {{3, 0}, {3, 1}}, {});
  EXPECT_FALSE(mgmt::config_ok(dead));

  const auto bad_fiber = mgmt::validate_failures(demo_config(), {}, {8});
  EXPECT_FALSE(mgmt::config_ok(bad_fiber));
}

TEST(ValidateFailures, FlagsDuplicatesAsWarnings) {
  const auto f =
      mgmt::validate_failures(demo_config(), {{1, 0}, {1, 0}}, {2, 2});
  EXPECT_TRUE(mgmt::config_ok(f));  // warnings, not errors
  int warnings = 0;
  for (const auto& x : f) warnings += x.severity == mgmt::Severity::kWarning;
  EXPECT_EQ(warnings, 2);
}

TEST(ValidateFailures, AllFibersDarkIsAnError) {
  std::vector<int> all;
  for (int i = 0; i < 8; ++i) all.push_back(i);
  EXPECT_FALSE(mgmt::config_ok(
      mgmt::validate_failures(demo_config(), {}, all)));
}

TEST(ValidateFaultPlan, AcceptsAWellFormedPlan) {
  faults::FaultPlan plan;
  plan.kill_module(100, 3, 1, 50)
      .cut_fiber(200, 2, 100)
      .burst_errors(300, -1, 40, 0.1)
      .corrupt_grants(400, 20, 0.05)
      .stall_adapter(500, 7, 10);
  const auto f = mgmt::validate_fault_plan(demo_config(), plan);
  EXPECT_TRUE(mgmt::config_ok(f));
}

TEST(ValidateFaultPlan, RejectsOutOfRangeTargets) {
  faults::FaultPlan plan;
  plan.kill_module(0, 64, 0, 10);  // egress out of range
  EXPECT_FALSE(mgmt::config_ok(
      mgmt::validate_fault_plan(demo_config(), plan)));

  faults::FaultPlan fiber;
  fiber.cut_fiber(0, 9);
  EXPECT_FALSE(mgmt::config_ok(
      mgmt::validate_fault_plan(demo_config(), fiber)));

  faults::FaultPlan stall;
  stall.stall_adapter(0, 64, 10);
  EXPECT_FALSE(mgmt::config_ok(
      mgmt::validate_fault_plan(demo_config(), stall)));
}

TEST(ValidateFaultPlan, WarnsWhenBothModulesOfAnEgressOverlap) {
  faults::FaultPlan plan;
  plan.kill_module(100, 3, 0, 200).kill_module(150, 3, 1, 200);
  const auto f = mgmt::validate_fault_plan(demo_config(), plan);
  EXPECT_TRUE(mgmt::config_ok(f));  // masked output is legal
  bool warned = false;
  for (const auto& x : f)
    warned |= x.severity == mgmt::Severity::kWarning;
  EXPECT_TRUE(warned);
}

TEST(ValidateFaultPlan, RejectsPermanentFaultsCoveringEveryParallelPath) {
  // With 4 parallel spines/planes, permanently cutting all 4 strands
  // every host no matter how adaptive the routing is — the plan must be
  // rejected up front. 3 of 4 (plus a transient on the 4th) is fine.
  faults::FaultPlan all;
  for (int sp = 0; sp < 4; ++sp) all.fail_plane(100 + sp, sp);
  EXPECT_FALSE(mgmt::config_ok(
      mgmt::validate_fault_plan(demo_config(), all, /*parallel_paths=*/4)));

  faults::FaultPlan three;
  for (int sp = 0; sp < 3; ++sp) three.fail_plane(100 + sp, sp);
  three.fail_plane(400, 3, 200);  // transient: repaired, does not count
  EXPECT_TRUE(mgmt::config_ok(
      mgmt::validate_fault_plan(demo_config(), three, 4)));

  // Duplicate permanent events on one path count once.
  faults::FaultPlan dup;
  dup.fail_plane(100, 0).fail_plane(900, 0).fail_plane(200, 1);
  EXPECT_TRUE(mgmt::config_ok(
      mgmt::validate_fault_plan(demo_config(), dup, 4)));

  // parallel_paths = 0 (single-path simulators) keeps legacy behaviour.
  EXPECT_TRUE(mgmt::config_ok(
      mgmt::validate_fault_plan(demo_config(), all, 0)));
}

TEST(ValidateFaultPlan, NonOverlappingModuleKillsDoNotWarn) {
  faults::FaultPlan plan;
  plan.kill_module(100, 3, 0, 50).kill_module(500, 3, 1, 50);
  for (const auto& x : mgmt::validate_fault_plan(demo_config(), plan))
    EXPECT_NE(x.severity, mgmt::Severity::kWarning);
}

// ---- InvariantMonitor: silent under every declared fault kind --------------
//
// The monitor must never mistake a *declared* fault (whose effects the
// simulators handle correctly — masking, retries, resequencing) for an
// invariant violation. One trial per fault kind, on a simulator whose
// constructor accepts it.

namespace {

chaos::TrialSpec chaos_spec(chaos::TrialSim sim) {
  chaos::TrialSpec s;
  s.campaign_seed = 77;
  s.trial_index = 0;
  s.seed = 0x6b45'9c1e'22f0'8d31ULL;
  s.sim = sim;
  s.ports = 8;
  s.planes = 4;
  s.receivers = 2;
  s.scheduler = sw::SchedulerKind::kIslip;
  s.load = 0.5;
  s.warmup_slots = 128;
  s.measure_slots = 1'024;
  s.drain_max_slots = 20'000;
  s.plan.seeded(s.seed ^ 0xfau);
  return s;
}

void expect_silent(const chaos::TrialSpec& s) {
  const chaos::TrialResult r = chaos::run_trial(s);
  EXPECT_FALSE(r.violated) << s.label() << ": " << r.first_violation;
  EXPECT_GT(r.offered, 0u);
  EXPECT_GT(r.checks, 0u);
}

}  // namespace

TEST(ChaosMonitorSilent, ModuleDeathOnSwitch) {
  auto s = chaos_spec(chaos::TrialSim::kSwitch);
  s.plan.kill_module(200, 3, 1, 300);
  expect_silent(s);
}

TEST(ChaosMonitorSilent, PermanentFiberCutOnSwitch) {
  auto s = chaos_spec(chaos::TrialSim::kSwitch);
  s.plan.cut_fiber(200, 2);        // duration 0 = permanent
  s.drain_max_slots = 4'096;       // stranded cells can never drain
  expect_silent(s);
}

TEST(ChaosMonitorSilent, BurstErrorsOnSwitch) {
  auto s = chaos_spec(chaos::TrialSim::kSwitch);
  s.plan.burst_errors(200, -1, 300, 0.2);
  expect_silent(s);
}

TEST(ChaosMonitorSilent, GrantCorruptionOnSwitch) {
  auto s = chaos_spec(chaos::TrialSim::kSwitch);
  s.plan.corrupt_grants(200, 300, 0.1);
  expect_silent(s);
}

TEST(ChaosMonitorSilent, AdapterStallOnEventSwitch) {
  auto s = chaos_spec(chaos::TrialSim::kEventSwitch);
  s.plan.stall_adapter(200, 5, 300);
  expect_silent(s);
}

TEST(ChaosMonitorSilent, PlaneFailureOnFabric) {
  auto s = chaos_spec(chaos::TrialSim::kFabric);
  s.plan.fail_plane(200, 1, 300);  // spine plane, transient only
  s.drain_max_slots = 80'000;      // faulted fabric backlog drains slowly
  expect_silent(s);
}

TEST(ChaosMonitorSilent, PlaneFailureOnMultiPlane) {
  auto s = chaos_spec(chaos::TrialSim::kMultiPlane);
  s.plan.fail_plane(200, 2, 300);
  expect_silent(s);
}

// ---- InvariantMonitor: every invariant fires on a broken toy ledger --------
//
// Each test drives the monitor directly with a scripted, deliberately
// inconsistent account of a "simulation" and asserts the matching
// invariant (and only a sensible one) trips.

namespace {

std::string first_token(const chaos::InvariantMonitor& m) {
  return chaos::violation_invariant(m.first_violation());
}

}  // namespace

TEST(ChaosMonitorFires, ConservationOnLostCell) {
  chaos::InvariantMonitor m;
  for (int i = 0; i < 5; ++i) m.offered(0);
  m.delivered(0, 0);
  // 5 offered, 1 delivered, but only 3 accounted for in queues.
  m.end_slot({/*slot=*/1, /*queued=*/3, /*active_faults=*/0, 0});
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(first_token(m), "conservation");
  EXPECT_EQ(m.first_violation_slot(), 1u);
}

TEST(ChaosMonitorFires, DeadlockOnStalledBacklog) {
  chaos::MonitorConfig cfg;
  cfg.deadlock_slots = 16;
  chaos::InvariantMonitor m(cfg);
  m.offered(0);
  for (std::uint64_t t = 0; t < 40; ++t)
    m.end_slot({t, /*queued=*/1, /*active_faults=*/0, 0});
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(first_token(m), "deadlock");
}

TEST(ChaosMonitorFires, DeadlockSuppressedByOpenFaultOrRetries) {
  chaos::MonitorConfig cfg;
  cfg.deadlock_slots = 16;
  chaos::InvariantMonitor m(cfg);
  m.offered(0);
  for (std::uint64_t t = 0; t < 40; ++t)
    m.end_slot({t, 1, /*active_faults=*/1, 0});  // fault window open
  for (std::uint64_t t = 40; t < 80; ++t)
    m.end_slot({t, 1, 0, /*retries_pending=*/2});  // retries maturing
  EXPECT_TRUE(m.ok()) << m.first_violation();
}

TEST(ChaosMonitorFires, OccupancyOverCap) {
  chaos::InvariantMonitor m;
  m.check_occupancy(7, "leaf_buffer", 8, 8);   // at cap: fine
  EXPECT_TRUE(m.ok());
  m.check_occupancy(9, "leaf_buffer", 9, 8);   // over cap
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(first_token(m), "occupancy");
  EXPECT_NE(m.first_violation().find("leaf_buffer"), std::string::npos);
}

TEST(ChaosMonitorFires, CreditLedgerMismatchAndNegativePool) {
  chaos::InvariantMonitor m;
  m.check_credits(3, /*ledger=*/10, /*pool_total=*/10, /*min_pool=*/0);
  EXPECT_TRUE(m.ok());
  m.check_credits(4, 9, 10, 0);    // one credit vanished
  m.check_credits(5, 10, 10, -1);  // a pool went negative
  EXPECT_EQ(m.violations(), 2u);
  EXPECT_EQ(first_token(m), "credit");
}

TEST(ChaosMonitorFires, DuplicateDeliveryAtFinish) {
  chaos::InvariantMonitor m;
  m.offered(1);
  m.offered(1);
  m.delivered(1, 0);
  m.delivered(1, 0);  // duplicate completion
  m.delivered(1, 1);
  m.finish(10, /*residual_backlog=*/0);
  ASSERT_FALSE(m.ok());
  // The duplicate also skews the delivered count, so the residual
  // conservation audit trips alongside the exactly-once verdict.
  bool duplicate = false;
  for (const auto& v : m.violation_log())
    duplicate |= chaos::violation_invariant(v) == "exactly_once";
  EXPECT_TRUE(duplicate) << m.first_violation();
}

TEST(ChaosMonitorFires, ReorderedDeliveryAtFinish) {
  chaos::MonitorConfig cfg;
  cfg.expect_drain = true;
  chaos::InvariantMonitor m(cfg);
  for (int i = 0; i < 2; ++i) m.offered(2);
  m.delivered(2, 1);  // out of order
  m.delivered(2, 0);
  m.finish(10, 0);
  ASSERT_FALSE(m.ok());
  bool reordered = false;
  for (const auto& v : m.violation_log())
    reordered |= chaos::violation_invariant(v) == "ordering";
  EXPECT_TRUE(reordered) << m.first_violation();
}

TEST(ChaosMonitorFires, MissingAndStrandedAtFinish) {
  chaos::MonitorConfig cfg;
  cfg.expect_drain = true;  // run claims to have fully drained
  chaos::InvariantMonitor m(cfg);
  for (int i = 0; i < 3; ++i) m.offered(4);
  m.delivered(4, 0);
  m.finish(20, /*residual_backlog=*/2);  // 2 stranded, no permanent fault
  ASSERT_FALSE(m.ok());
  bool stranded = false, missing = false;
  for (const auto& v : m.violation_log()) {
    stranded |= chaos::violation_invariant(v) == "liveness(final)";
    missing |= chaos::violation_invariant(v) == "exactly_once";
  }
  EXPECT_TRUE(stranded);
  EXPECT_TRUE(missing);
}

TEST(ChaosMonitorFires, AllowStrandedAcceptsPermanentFaultResidue) {
  chaos::MonitorConfig cfg;
  cfg.expect_drain = true;
  cfg.allow_stranded = true;  // plan declared a permanent fault
  chaos::InvariantMonitor m(cfg);
  for (int i = 0; i < 3; ++i) m.offered(4);
  m.delivered(4, 0);
  m.finish(20, 2);  // same residue as above, now legitimate
  EXPECT_TRUE(m.ok()) << m.first_violation();
}

TEST(ChaosMonitorFires, FinishIsIdempotent) {
  chaos::MonitorConfig cfg;
  cfg.expect_drain = true;
  chaos::InvariantMonitor m(cfg);
  m.offered(0);
  m.finish(5, 1);  // stranded: one violation
  const std::uint64_t first = m.violations();
  m.finish(5, 1);  // double finalize must not double-count
  EXPECT_EQ(m.violations(), first);
}

TEST(ChaosMonitorFires, DefectOnlyCorruptsInsideFaultWindows) {
  chaos::MonitorConfig cfg;
  cfg.defect = chaos::Defect::kDropDeliveryDuringFault;
  cfg.defect_period = 1;  // every opportunity
  chaos::InvariantMonitor m(cfg);
  // No fault open: the armed defect must stay dormant.
  m.offered(0);
  m.end_slot({0, 1, /*active_faults=*/0, 0});
  m.delivered(0, 0);
  m.end_slot({1, 0, 0, 0});
  EXPECT_TRUE(m.ok()) << m.first_violation();
  // Fault window opens: the dropped delivery now breaks conservation.
  m.offered(0);
  m.end_slot({2, 1, /*active_faults=*/1, 0});
  m.delivered(0, 1);  // silently swallowed by the defect
  m.end_slot({3, 0, 1, 0});
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(first_token(m), "conservation");
}

}  // namespace
}  // namespace osmosis
