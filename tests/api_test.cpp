// Tests for the serving front-end (DESIGN.md §14): tagged matching
// (exact, wildcard, unexpected-queue ordering), bounded completion
// queues with overrun accounting, the MR registry's key/bounds checks,
// ServeSim end-to-end operation (two-sided sends, one-sided RMA, the
// offered == accepted + shed >= delivered ledger), open-loop arrival
// rates, deterministic campaign documents at 1 vs 8 threads, and
// mid-run checkpoint/resume with tagged sends still in flight.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/api/completion.hpp"
#include "src/api/endpoint.hpp"
#include "src/api/memory.hpp"
#include "src/api/openloop.hpp"
#include "src/api/serve_sim.hpp"
#include "src/ckpt/ckpt.hpp"
#include "src/exec/campaign_runner.hpp"

namespace osmosis::api {
namespace {

// ---- Endpoint: tagged matching --------------------------------------------

InboundMsg msg(std::uint64_t op_id, int src, std::uint64_t tag) {
  InboundMsg m;
  m.op_id = op_id;
  m.src = src;
  m.tag = tag;
  m.bytes = 64.0;
  return m;
}

TaggedRecv recv(std::uint64_t tag, std::uint64_t ignore_mask,
                std::uint64_t context) {
  TaggedRecv r;
  r.tag = tag;
  r.ignore_mask = ignore_mask;
  r.context = context;
  return r;
}

TEST(Endpoint, ExactMatchRequiresEveryBit) {
  EXPECT_TRUE(Endpoint::matches(recv(0xABCD, 0, 0), 0xABCD));
  EXPECT_FALSE(Endpoint::matches(recv(0xABCD, 0, 0), 0xABCC));
  // Wildcard: every bit ignored matches anything.
  EXPECT_TRUE(Endpoint::matches(recv(0, ~std::uint64_t{0}, 0), 0xDEAD));
  // Partial mask: low byte ignored, high bits must agree.
  EXPECT_TRUE(Endpoint::matches(recv(0xAB00, 0xFF, 0), 0xAB42));
  EXPECT_FALSE(Endpoint::matches(recv(0xAB00, 0xFF, 0), 0xAC42));
}

TEST(Endpoint, PostedRecvsMatchInPostOrder) {
  Endpoint ep(3);
  TaggedRecv out;
  // Two receives that both match tag 7; the first-posted one must win.
  ep.post_recv(recv(7, 0, /*context=*/100), nullptr);
  ep.post_recv(recv(7, 0, /*context=*/200), nullptr);
  ASSERT_TRUE(ep.on_message(msg(1, 0, 7), &out));
  EXPECT_EQ(out.context, 100u);
  ASSERT_TRUE(ep.on_message(msg(2, 0, 7), &out));
  EXPECT_EQ(out.context, 200u);
  EXPECT_EQ(ep.posted_recvs(), 0u);
  EXPECT_EQ(ep.recv_matches(), 2u);
}

TEST(Endpoint, FirstMatchingRecvWinsNotFirstPosted) {
  Endpoint ep(0);
  TaggedRecv out;
  ep.post_recv(recv(5, 0, 100), nullptr);  // does not match tag 9
  ep.post_recv(recv(9, 0, 200), nullptr);
  ASSERT_TRUE(ep.on_message(msg(1, 2, 9), &out));
  EXPECT_EQ(out.context, 200u);
  EXPECT_EQ(ep.posted_recvs(), 1u);  // the tag-5 recv stays armed
}

TEST(Endpoint, UnexpectedQueueDrainsInArrivalOrder) {
  Endpoint ep(1);
  TaggedRecv rout;
  // Three messages land with nothing posted: all go unexpected.
  EXPECT_FALSE(ep.on_message(msg(10, 0, 7), &rout));
  EXPECT_FALSE(ep.on_message(msg(11, 0, 9), &rout));
  EXPECT_FALSE(ep.on_message(msg(12, 0, 7), &rout));
  EXPECT_EQ(ep.unexpected_depth(), 3u);
  EXPECT_EQ(ep.unexpected_peak(), 3u);
  // A wildcard recv consumes the OLDEST unexpected message, not the
  // newest and not a tag-preferred one.
  InboundMsg mout;
  ASSERT_TRUE(ep.post_recv(recv(0, ~std::uint64_t{0}, 0), &mout));
  EXPECT_EQ(mout.op_id, 10u);
  // An exact recv for tag 7 skips the tag-9 message and takes op 12.
  ASSERT_TRUE(ep.post_recv(recv(7, 0, 0), &mout));
  EXPECT_EQ(mout.op_id, 12u);
  EXPECT_EQ(ep.unexpected_depth(), 1u);
  EXPECT_EQ(ep.unexpected_matches(), 2u);
}

TEST(Endpoint, StateRoundTripsThroughCheckpoint) {
  Endpoint ep(2);
  ep.post_recv(recv(1, 0, 11), nullptr);
  TaggedRecv rout;
  ep.on_message(msg(5, 3, 99), &rout);  // unexpected
  ckpt::Sink sink;
  ep.io_state(sink);

  Endpoint back;
  ckpt::Source src(sink.bytes());
  back.io_state(src);
  EXPECT_EQ(back.port(), 2);
  EXPECT_EQ(back.posted_recvs(), 1u);
  EXPECT_EQ(back.unexpected_depth(), 1u);
  InboundMsg mout;
  ASSERT_TRUE(back.post_recv(recv(99, 0, 0), &mout));
  EXPECT_EQ(mout.op_id, 5u);
}

// ---- CompletionQueue -------------------------------------------------------

Completion comp(std::uint64_t op_id) {
  Completion c;
  c.op_id = op_id;
  return c;
}

TEST(CompletionQueue, FifoOrderAndOverrunAccounting) {
  CompletionQueue q(2);
  EXPECT_TRUE(q.push(comp(1)));
  EXPECT_TRUE(q.push(comp(2)));
  EXPECT_FALSE(q.push(comp(3)));  // full: dropped, counted
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_EQ(q.overruns(), 1u);
  EXPECT_EQ(q.peak_depth(), 2u);

  Completion out;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out.op_id, 1u);  // the overrun dropped entry 3, not entry 1
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out.op_id, 2u);
  EXPECT_FALSE(q.pop(out));
  EXPECT_EQ(q.pushed(), 2u);
  EXPECT_EQ(q.popped(), 2u);
}

// ---- MemoryRegistry --------------------------------------------------------

TEST(MemoryRegistry, KeysStartAtOneAndNeverRecycle) {
  MemoryRegistry mr;
  const std::uint64_t a = mr.register_region(0, 4096);
  const std::uint64_t b = mr.register_region(1, 4096);
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  ASSERT_TRUE(mr.deregister(a));
  EXPECT_EQ(mr.register_region(0, 64), 3u);  // freed key 1 is not reused
  EXPECT_EQ(mr.check(a, 0, 0, 8.0), RmaVerdict::kBadKey);  // stale key
}

TEST(MemoryRegistry, ChecksOwnershipAndBounds) {
  MemoryRegistry mr;
  const std::uint64_t key = mr.register_region(/*port=*/2, /*length=*/1024);
  EXPECT_EQ(mr.check(key, 2, 0, 1024.0), RmaVerdict::kOk);
  EXPECT_EQ(mr.check(key, 3, 0, 8.0), RmaVerdict::kBadKey);  // wrong port
  EXPECT_EQ(mr.check(key, 2, 1020, 8.0), RmaVerdict::kBadBounds);
  EXPECT_EQ(mr.bad_key(), 1u);
  EXPECT_EQ(mr.bad_bounds(), 1u);
}

// ---- ServeSim: manual API end to end ---------------------------------------

ServeSimConfig manual_config(int ports = 4) {
  ServeSimConfig cfg;
  cfg.sw.ports = ports;
  cfg.sw.sched.ports = ports;
  cfg.sw.warmup_slots = 0;
  cfg.sw.measure_slots = 400;
  cfg.sw.drain_max_slots = 2'000;
  return cfg;  // openloop.clients == 0: manual API only
}

TEST(ServeSim, TaggedSendMatchesPostedRecvAndLedgersBalance) {
  ServeSim sim(manual_config());
  sim.post_recv(/*port=*/1, /*tag=*/42, /*ignore_mask=*/0, /*context=*/7);
  const std::uint64_t op =
      sim.send_tagged(/*src=*/0, /*dst=*/1, /*tag=*/42, /*bytes=*/64.0,
                      /*context=*/123);
  ASSERT_GT(op, 0u);
  const ServeSimResult r = sim.run();

  EXPECT_EQ(r.offered, 1u);
  EXPECT_EQ(r.accepted, 1u);
  EXPECT_EQ(r.shed, 0u);
  EXPECT_EQ(r.delivered, 1u);
  EXPECT_EQ(r.sends, 1u);
  EXPECT_EQ(r.cq_overruns, 0u);

  Completion c;
  ASSERT_TRUE(sim.tx_cq(0).pop(c));
  EXPECT_EQ(c.op_id, op);
  EXPECT_EQ(c.kind, CompletionKind::kSend);
  EXPECT_EQ(c.peer, 1);
  ASSERT_TRUE(sim.rx_cq(1).pop(c));
  EXPECT_EQ(c.op_id, op);
  EXPECT_EQ(c.kind, CompletionKind::kRecv);
  EXPECT_EQ(c.context, 7u);  // the receive's cookie, not the sender's
  EXPECT_EQ(c.tag, 42u);
}

TEST(ServeSim, UnmatchedSendParksInUnexpectedQueue) {
  ServeSim sim(manual_config());
  sim.send_tagged(0, 1, /*tag=*/5, 64.0);
  sim.run();
  Completion c;
  EXPECT_FALSE(sim.rx_cq(1).pop(c));  // no recv was ever posted
  EXPECT_EQ(sim.endpoint(1).unexpected_depth(), 1u);
  // Late recv still finds it.
  sim.post_recv(1, 5, 0, /*context=*/9);
  ASSERT_TRUE(sim.rx_cq(1).pop(c));
  EXPECT_EQ(c.context, 9u);
}

TEST(ServeSim, RmaWriteValidatesAtTargetAndRmaReadRoundTrips) {
  ServeSim sim(manual_config());
  const std::uint64_t key = sim.register_mr(/*port=*/2, /*length=*/4096);
  const std::uint64_t w_ok = sim.rma_write(0, 2, key, 0, 256.0);
  const std::uint64_t w_bad = sim.rma_write(1, 2, key, 4000, 256.0);  // OOB
  const std::uint64_t rd = sim.rma_read(3, 2, key, 128, 256.0);
  ASSERT_GT(w_ok, 0u);
  ASSERT_GT(w_bad, 0u);
  ASSERT_GT(rd, 0u);
  const ServeSimResult r = sim.run();

  EXPECT_EQ(r.rma_writes, 2u);
  EXPECT_EQ(r.rma_reads, 1u);
  EXPECT_EQ(r.rma_errors, 1u);
  EXPECT_EQ(r.offered, 3u);
  EXPECT_EQ(r.delivered, 3u);

  Completion c;
  ASSERT_TRUE(sim.tx_cq(0).pop(c));
  EXPECT_EQ(c.kind, CompletionKind::kRmaWrite);
  EXPECT_EQ(c.status, CompletionStatus::kOk);
  ASSERT_TRUE(sim.tx_cq(1).pop(c));
  EXPECT_EQ(c.kind, CompletionKind::kRmaWrite);
  EXPECT_EQ(c.status, CompletionStatus::kRmaError);
  ASSERT_TRUE(sim.tx_cq(3).pop(c));
  EXPECT_EQ(c.kind, CompletionKind::kRmaRead);
  EXPECT_EQ(c.status, CompletionStatus::kOk);
  EXPECT_EQ(c.op_id, rd);  // the read's own id, not the response op's

  const MemoryRegion* region = sim.memory().find(key);
  ASSERT_NE(region, nullptr);
  EXPECT_EQ(region->writes, 1u);
  EXPECT_EQ(region->reads, 1u);
}

TEST(ServeSim, CqOverrunDropsNotificationNeverAccounting) {
  ServeSimConfig cfg = manual_config();
  cfg.cq_capacity = 2;
  ServeSim sim(cfg);
  for (int i = 0; i < 6; ++i)
    sim.send_tagged(0, 1, static_cast<std::uint64_t>(i), 64.0);
  const ServeSimResult r = sim.run();
  // All six sends settle (the ledger is out-of-band), but only two tx
  // completions fit; the other four are overruns.
  EXPECT_EQ(r.delivered, 6u);
  EXPECT_EQ(sim.tx_cq(0).overruns(), 4u);
  EXPECT_GE(r.cq_overruns, 4u);
  EXPECT_EQ(sim.endpoint(1).unexpected_peak(), 6u);
}

// ---- ServeSim: open-loop driver mode ---------------------------------------

ServeSimConfig driver_config(std::int64_t clients, ArrivalKind arrival,
                             std::uint64_t seed) {
  ServeSimConfig cfg;
  cfg.sw.ports = 8;
  cfg.sw.sched.ports = 8;
  cfg.sw.warmup_slots = 100;
  cfg.sw.measure_slots = 600;
  cfg.sw.drain_max_slots = 5'000;
  cfg.seed = seed;
  cfg.openloop.clients = clients;
  cfg.openloop.arrival = arrival;
  cfg.openloop.load = 0.5;
  return cfg;
}

TEST(ServeSim, OpenLoopLedgerIsConserved) {
  ServeSim sim(driver_config(2'000, ArrivalKind::kPoisson, 0xBEEF));
  const ServeSimResult r = sim.run();
  EXPECT_GT(r.offered, 0u);
  EXPECT_EQ(r.offered, r.accepted + r.shed);
  EXPECT_GE(r.accepted, r.delivered);
  EXPECT_EQ(r.offered, r.sends + r.rma_writes + r.rma_reads + r.shed);
  EXPECT_GT(r.p999_latency + 1.0, r.p99_latency);  // quantiles monotone
}

TEST(ServeSim, SameSeedSameConfigIsByteIdentical) {
  ServeSim a(driver_config(1'000, ArrivalKind::kMmpp, 0x5EED));
  ServeSim b(driver_config(1'000, ArrivalKind::kMmpp, 0x5EED));
  a.run();
  b.run();
  EXPECT_EQ(a.report().to_json(2), b.report().to_json(2));
}

TEST(OpenLoopDriver, ArrivalProcessesHitTheConfiguredMeanRate) {
  for (ArrivalKind kind : {ArrivalKind::kPoisson, ArrivalKind::kMmpp,
                           ArrivalKind::kDiurnal}) {
    OpenLoopConfig cfg;
    cfg.clients = 10'000;
    cfg.arrival = kind;
    cfg.load = 0.5;
    cfg.diurnal_period_slots = 2'048.0;  // whole periods average out
    OpenLoopDriver drv(cfg, /*ports=*/8, /*cells_per_request=*/3, 0xA11CE);
    std::vector<Request> batch;
    std::uint64_t total = 0;
    const std::uint64_t slots = 8'192;
    for (std::uint64_t s = 0; s < slots; ++s) {
      drv.poll(s, batch);
      total += batch.size();
      for (const Request& r : batch) {
        EXPECT_GE(r.src, 0);
        EXPECT_LT(r.src, 8);
        EXPECT_GE(r.dst, 0);
        EXPECT_LT(r.dst, 8);
        EXPECT_NE(r.src, r.dst);
        EXPECT_GE(r.tenant, 0);
        EXPECT_LT(r.tenant, cfg.tenants);
        EXPECT_GE(r.client, 0);
        EXPECT_LT(r.client, cfg.clients);
      }
    }
    const double empirical =
        static_cast<double>(total) / static_cast<double>(slots);
    EXPECT_NEAR(empirical, drv.mean_rate(), 0.15 * drv.mean_rate())
        << "arrival kind " << to_string(kind);
  }
}

// ---- determinism across campaign thread counts -----------------------------

exec::CampaignSpec small_serve_spec() {
  exec::CampaignSpec spec;
  spec.name = "serve_threads_test";
  spec.sims = {exec::SimKind::kServe};
  spec.ports = {8};
  spec.receivers = {2};
  spec.loads = {0.5};
  spec.clients = {500};
  spec.arrivals = {ArrivalKind::kPoisson, ArrivalKind::kMmpp};
  spec.warmup_slots = 100;
  spec.measure_slots = 500;
  spec.campaign_seed = 0x5E12'7E;
  return spec;
}

TEST(ServeCampaign, DocumentIsByteIdenticalAtOneAndEightThreads) {
  const exec::CampaignSpec spec = small_serve_spec();
  exec::RunnerOptions one;
  one.threads = 1;
  exec::RunnerOptions eight;
  eight.threads = 8;
  const std::string a =
      exec::CampaignRunner(one).run(spec).to_json(2, /*include_timing=*/false);
  const std::string b =
      exec::CampaignRunner(eight).run(spec).to_json(2, false);
  EXPECT_EQ(a, b);
  // Serve rows carry the serving axes and latency-tail metrics.
  EXPECT_NE(a.find("\"arrival\""), std::string::npos);
  EXPECT_NE(a.find("\"p999_latency\""), std::string::npos);
}

// ---- mid-run checkpoint/resume ---------------------------------------------

TEST(ServeSim, CheckpointWithTaggedSendsInFlightResumesByteIdentical) {
  // Multi-cell sends issued right before the snapshot guarantee the
  // snapshot carries segmenter backlog and unsettled ops.
  ServeSimConfig cfg = manual_config();
  ServeSim sim(cfg);
  for (int i = 0; i < 3; ++i) sim.post_recv(1, 7, 0, 100 + i);
  for (int s = 0; s < 4; ++s) ASSERT_TRUE(sim.advance_slot());
  const int srcs[] = {0, 2, 3};
  for (int i = 0; i < 3; ++i)
    sim.send_tagged(srcs[i], /*dst=*/1, /*tag=*/7, /*bytes=*/600.0,
                    /*context=*/static_cast<std::uint64_t>(i));
  sim.rma_read(2, 0, sim.register_mr(0, 4096), 0, 256.0);
  ASSERT_TRUE(sim.advance_slot());  // first cells leave, ops in flight
  ASSERT_GT(sim.ops_in_flight(), 0u);

  ckpt::Writer w;
  sim.save_state(w);
  const std::string bytes = w.serialize();

  // Restored copy (fresh object, same construction config) and the
  // original must finish the run with byte-identical reports.
  ServeSim restored(cfg);
  restored.load_state(ckpt::Reader::from_bytes(bytes));
  EXPECT_EQ(restored.ops_in_flight(), sim.ops_in_flight());
  EXPECT_EQ(restored.current_slot(), sim.current_slot());

  while (sim.advance_slot()) {
  }
  while (restored.advance_slot()) {
  }
  sim.finalize();
  restored.finalize();
  EXPECT_EQ(sim.report().to_json(2), restored.report().to_json(2));
  EXPECT_EQ(restored.serving_report().summary.at("delivered"), 4.0);
}

TEST(ServeSim, DriverModeCheckpointResumesByteIdentical) {
  const ServeSimConfig cfg =
      driver_config(1'000, ArrivalKind::kDiurnal, 0xD1DA);
  ServeSim sim(cfg);
  for (int s = 0; s < 250; ++s) ASSERT_TRUE(sim.advance_slot());

  ckpt::Writer w;
  sim.save_state(w);
  const std::string bytes = w.serialize();

  ServeSim restored(cfg);
  restored.load_state(ckpt::Reader::from_bytes(bytes));
  while (sim.advance_slot()) {
  }
  while (restored.advance_slot()) {
  }
  sim.finalize();
  restored.finalize();
  EXPECT_EQ(sim.report().to_json(2), restored.report().to_json(2));
}

}  // namespace
}  // namespace osmosis::api
