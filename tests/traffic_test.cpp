// Tests for the synthetic traffic generators: offered load, destination
// distributions, burstiness, and class mix.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/sim/traffic.hpp"

namespace osmosis::sim {
namespace {

/// Empirically measures the offered load of any generator.
double measure_load(TrafficGen& gen, int slots) {
  std::uint64_t arrivals = 0;
  Arrival a;
  for (int t = 0; t < slots; ++t)
    for (int in = 0; in < gen.ports(); ++in)
      if (gen.sample(in, a)) ++arrivals;
  return static_cast<double>(arrivals) /
         (static_cast<double>(slots) * gen.ports());
}

struct GenFactory {
  const char* name;
  std::unique_ptr<TrafficGen> (*make)(int ports, double load);
};

std::unique_ptr<TrafficGen> make_uni(int p, double l) {
  return make_uniform(p, l, 42);
}
std::unique_ptr<TrafficGen> make_bur(int p, double l) {
  return make_bursty(p, l, 8.0, 42);
}
std::unique_ptr<TrafficGen> make_hot(int p, double l) {
  return make_hotspot(p, l, 3, 0.3, 42);
}
std::unique_ptr<TrafficGen> make_bim(int p, double l) {
  return std::make_unique<BimodalHpc>(p, l, 0.2, Rng(42));
}
std::unique_ptr<TrafficGen> make_perm(int p, double l) {
  return std::make_unique<Permutation>(
      Permutation::diagonal(p, l, 1, Rng(42)));
}

class OfferedLoadTest
    : public ::testing::TestWithParam<std::tuple<GenFactory, double>> {};

TEST_P(OfferedLoadTest, LongRunLoadMatches) {
  const auto& [factory, load] = GetParam();
  auto gen = factory.make(16, load);
  EXPECT_DOUBLE_EQ(gen->offered_load(), load);
  EXPECT_NEAR(measure_load(*gen, 40'000), load, 0.015) << factory.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, OfferedLoadTest,
    ::testing::Combine(
        ::testing::Values(GenFactory{"uniform", make_uni},
                          GenFactory{"bursty", make_bur},
                          GenFactory{"hotspot", make_hot},
                          GenFactory{"bimodal", make_bim},
                          GenFactory{"permutation", make_perm}),
        ::testing::Values(0.1, 0.5, 0.9)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param).name) + "_load" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

TEST(BernoulliUniform, DestinationsUniform) {
  BernoulliUniform gen(8, 1.0, Rng(1));
  std::vector<int> counts(8, 0);
  Arrival a;
  const int trials = 80'000;
  for (int i = 0; i < trials; ++i) {
    ASSERT_TRUE(gen.sample(0, a));
    ++counts[static_cast<std::size_t>(a.dst)];
  }
  for (int c : counts) EXPECT_NEAR(c, trials / 8.0, trials * 0.01);
}

TEST(BurstyOnOff, MeanBurstLengthMatches) {
  BurstyOnOff gen(4, 0.3, 10.0, Rng(3));
  // Measure run lengths of consecutive same-destination arrivals on one
  // input.
  Arrival a;
  int bursts = 0;
  std::uint64_t cells = 0;
  bool prev_on = false;
  for (int t = 0; t < 200'000; ++t) {
    const bool on = gen.sample(0, a);
    if (on) {
      ++cells;
      if (!prev_on) ++bursts;
    }
    prev_on = on;
  }
  ASSERT_GT(bursts, 100);
  // Consecutive bursts can merge when the off gap is 0 slots, so the
  // measured run length is slightly above the configured mean.
  const double mean_run = static_cast<double>(cells) / bursts;
  EXPECT_GT(mean_run, 8.0);
  EXPECT_LT(mean_run, 16.0);
}

TEST(BurstyOnOff, BurstTargetsSingleDestination) {
  // Within a burst the destination never changes. Externally, a
  // destination switch during consecutive on-slots can only happen when
  // two bursts merge back-to-back (zero-slot gap), which at low load is
  // rare: P(gap = 0) = p_off_to_on ~ load/(mean_burst(1-load)).
  BurstyOnOff gen(16, 0.2, 16.0, Rng(5));
  Arrival a;
  int prev_dst = -1;
  int switches = 0, cells = 0, runs = 0;
  bool prev_on = false;
  for (int t = 0; t < 200'000; ++t) {
    if (gen.sample(3, a)) {
      ++cells;
      if (!prev_on) ++runs;
      if (prev_on && a.dst != prev_dst) ++switches;
      prev_dst = a.dst;
      prev_on = true;
    } else {
      prev_on = false;
    }
  }
  ASSERT_GT(runs, 500);
  // Mid-run switches only at burst merges: well under 5 % of runs.
  EXPECT_LT(switches, runs / 20);
  EXPECT_GT(cells, 10'000);
}

TEST(Hotspot, HotFractionLands) {
  Hotspot gen(16, 1.0, 5, 0.5, Rng(7));
  Arrival a;
  int hot = 0;
  const int trials = 50'000;
  for (int i = 0; i < trials; ++i) {
    ASSERT_TRUE(gen.sample(1, a));
    if (a.dst == 5) ++hot;
  }
  // 50 % directed + 1/16 of the uniform remainder.
  const double expected = 0.5 + 0.5 / 16.0;
  EXPECT_NEAR(hot / static_cast<double>(trials), expected, 0.01);
}

TEST(Permutation, ConflictFree) {
  auto gen = Permutation::diagonal(8, 1.0, 3, Rng(9));
  Arrival a;
  for (int in = 0; in < 8; ++in) {
    ASSERT_TRUE(gen.sample(in, a));
    EXPECT_EQ(a.dst, (in + 3) % 8);
  }
}

TEST(Permutation, RejectsNonPermutation) {
  EXPECT_DEATH(Permutation(3, 0.5, {0, 0, 1}, Rng(1)), "repeated");
}

TEST(BimodalHpc, ControlFraction) {
  BimodalHpc gen(8, 1.0, 0.25, Rng(11));
  Arrival a;
  int control = 0;
  const int trials = 50'000;
  for (int i = 0; i < trials; ++i) {
    ASSERT_TRUE(gen.sample(0, a));
    if (a.cls == TrafficClass::kControl) ++control;
  }
  EXPECT_NEAR(control / static_cast<double>(trials), 0.25, 0.01);
}

}  // namespace
}  // namespace osmosis::sim
