// Tests for the WDM channel plan and the burst-mode receiver model.

#include <gtest/gtest.h>

#include "src/phy/burst_rx.hpp"
#include "src/phy/guard_time.hpp"
#include "src/phy/wdm.hpp"

namespace osmosis::phy {
namespace {

// ---- WDM plan ----------------------------------------------------------------

TEST(Wdm, ItuGridFrequencies) {
  WdmPlan plan;  // 8 channels @ 100 GHz from 193.1 THz
  EXPECT_DOUBLE_EQ(plan.channel(0).frequency_thz, 193.1);
  EXPECT_DOUBLE_EQ(plan.channel(1).frequency_thz, 193.2);
  EXPECT_DOUBLE_EQ(plan.channel(7).frequency_thz, 193.8);
  // 193.1 THz is ~1552.5 nm (ITU anchor).
  EXPECT_NEAR(plan.channel(0).wavelength_nm, 1552.52, 0.01);
  // Wavelengths decrease with frequency.
  EXPECT_LT(plan.channel(7).wavelength_nm, plan.channel(0).wavelength_nm);
}

TEST(Wdm, AdapterColorAssignmentMatchesCrossbar) {
  WdmPlan plan;
  // Adapter i uses color i mod 8 (Fig. 5's eight colors per fiber).
  EXPECT_EQ(plan.channel_of_adapter(0).index, 0);
  EXPECT_EQ(plan.channel_of_adapter(7).index, 7);
  EXPECT_EQ(plan.channel_of_adapter(8).index, 0);
  EXPECT_EQ(plan.channel_of_adapter(63).index, 7);
}

TEST(Wdm, DemonstratorPlanIsConsistent) {
  WdmPlan plan;  // 40 Gb/s on the 100 GHz grid
  EXPECT_TRUE(plan.spacing_sufficient());  // 60 GHz signal in 100 GHz slots
  EXPECT_TRUE(plan.fits_c_band());
  EXPECT_GT(plan.tuning_range_nm(), 0.0);
  EXPECT_LT(plan.tuning_range_nm(), 10.0);  // a few nm across 8 channels
}

TEST(Wdm, ProductPlanNeedsWiderSpacingAndDenserModulation) {
  // §VII: 200 Gb/s per port. On the 100 GHz grid a binary 200 G signal
  // cannot fit; with a spectrally denser format (DPSK-class, ~0.75
  // factor) on a 200 GHz grid, 16 channels fit the C-band — the kind of
  // engineering the product design point implies.
  WdmPlanConfig tight;
  tight.channels = 16;
  tight.line_rate_gbps = 200.0;
  EXPECT_FALSE(WdmPlan(tight).spacing_sufficient());

  WdmPlanConfig dense = tight;
  dense.spacing_ghz = 200.0;
  dense.spectral_width_factor = 0.75;
  WdmPlan plan(dense);
  EXPECT_TRUE(plan.spacing_sufficient());
  EXPECT_TRUE(plan.fits_c_band());
}

TEST(Wdm, SingleChannelEdgeCases) {
  WdmPlanConfig cfg;
  cfg.channels = 1;
  WdmPlan plan(cfg);
  EXPECT_DOUBLE_EQ(plan.tuning_range_nm(), 0.0);
  EXPECT_EQ(plan.channel_of_adapter(5).index, 0);
}

// ---- burst-mode receiver --------------------------------------------------------

TEST(BurstRx, LocksWithinAFewBits) {
  // §VII: fast phase-lock "during the first few bits of a packet".
  const auto a = analyze_burst_rx(BurstRxParams{});
  EXPECT_GT(a.lock_bits, 2);
  EXPECT_LT(a.lock_bits, 40);
  EXPECT_LT(a.lock_time_ns, 1.0);  // well under the 2 ns guard allocation
}

TEST(BurstRx, LockTimeFitsGuardBudget) {
  const double reacq = phase_reacquisition_ns(BurstRxParams{});
  EXPECT_LE(reacq, GuardTimeBudget{}.phase_reacquisition_ns);
}

TEST(BurstRx, HigherGainLocksFaster) {
  BurstRxParams slow;
  slow.fast_loop_gain = 0.05;
  BurstRxParams fast;
  fast.fast_loop_gain = 0.4;
  EXPECT_LT(analyze_burst_rx(fast).lock_bits,
            analyze_burst_rx(slow).lock_bits);
}

TEST(BurstRx, TracksReferenceDisciplinedOffset) {
  // With the central reference clock the offset is a few ppm: the slow
  // loop rides out any coded run length comfortably.
  const auto a = analyze_burst_rx(BurstRxParams{});
  EXPECT_TRUE(a.tracking_stable);
  EXPECT_GT(a.max_run_length_bits, 1'000.0);
}

TEST(BurstRx, FreeRunningClocksWouldBreakTracking) {
  // Without reference distribution (~100 ppm), long runs break lock —
  // the reason the paper distributes a central reference (§IV.C).
  BurstRxParams p;
  p.frequency_offset_ppm = 400.0;
  const auto a = analyze_burst_rx(p);
  EXPECT_FALSE(a.tracking_stable);
}

TEST(BurstRx, FasterLineShortensLockTime) {
  BurstRxParams demo;  // 40 G
  BurstRxParams product;
  product.line_rate_gbps = 200.0;
  EXPECT_LT(analyze_burst_rx(product).lock_time_ns,
            analyze_burst_rx(demo).lock_time_ns);
}

}  // namespace
}  // namespace osmosis::phy
