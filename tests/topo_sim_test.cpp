// Tests for the topology x flow-control simulator (DESIGN.md §15):
// lossless exactly-once in-order delivery across the full scenario
// matrix, wormhole-VC deadlock freedom under fuzzed loads, freeze-and-
// repair fault semantics, the fault-kind contract, and kill-safe
// checkpoint/resume with worms mid-flight in VC lanes.

#include <gtest/gtest.h>

#include "src/ckpt/ckpt.hpp"
#include "src/sim/traffic.hpp"
#include "src/topo/topo_sim.hpp"

namespace osmosis::topo {
namespace {

constexpr TopoKind kAllKinds[] = {TopoKind::kFatTree, TopoKind::kClos,
                                  TopoKind::kOmega, TopoKind::kBanyan,
                                  TopoKind::kBenes};

TopoSimConfig base_config(TopoKind kind, FcKind fc, int hosts = 32) {
  TopoSimConfig cfg;
  cfg.topology = kind;
  cfg.hosts = hosts;
  cfg.fc.kind = fc;
  cfg.warmup_slots = 200;
  cfg.measure_slots = 1'500;
  cfg.drain_max_slots = 50'000;
  return cfg;
}

void expect_clean(const TopoSimResult& r, const std::string& what) {
  EXPECT_TRUE(r.exactly_once_in_order) << what;
  EXPECT_EQ(r.buffer_overflows, 0u) << what;
  EXPECT_EQ(r.out_of_order, 0u) << what;
  EXPECT_EQ(r.invariant_violations, 0u) << what << ": "
                                        << r.first_violation;
  EXPECT_EQ(r.injected_total, r.delivered_total) << what;
}

TEST(TopoSim, EveryTopologyTimesFlowControlIsLosslessInOrder) {
  for (TopoKind kind : kAllKinds) {
    for (FcKind fc :
         {FcKind::kCredit, FcKind::kRelayed, FcKind::kWormholeVc}) {
      const TopoSimConfig cfg = base_config(kind, fc);
      const TopoSimResult r = run_topo_uniform(cfg, 0.4, 0x715);
      expect_clean(r, r.topology + "/" + r.flow_control);
      EXPECT_GT(r.delivered, 0u) << r.topology;
      EXPECT_GE(r.mean_hops, static_cast<double>(r.stages) - 0.5)
          << r.topology;
    }
  }
}

TEST(TopoSim, RelayedCreditsBeatCableFlightCredits) {
  // §IV.B: with buffers too shallow for the credit round trip, relayed
  // FC (credits on the control path) sustains more than credit FC.
  TopoSimConfig credit = base_config(TopoKind::kFatTree, FcKind::kCredit);
  credit.buffer_cells = 2;
  credit.measure_slots = 4'000;
  TopoSimConfig relayed = credit;
  relayed.fc.kind = FcKind::kRelayed;
  const TopoSimResult rc = run_topo_uniform(credit, 0.9, 0x44);
  const TopoSimResult rr = run_topo_uniform(relayed, 0.9, 0x44);
  expect_clean(rc, "credit");
  expect_clean(rr, "relayed");
  EXPECT_GT(rr.throughput, rc.throughput);
}

TEST(TopoSim, WormholeVcDeadlockFreeUnderFuzzedLoads) {
  // The acyclic-route + lane-holding design must never wedge: every
  // fuzzed run terminates (drain completes) with conservation intact,
  // even above saturation.
  sim::Rng rng(0xF022);
  for (int trial = 0; trial < 10; ++trial) {
    const TopoKind kind = kAllKinds[rng.uniform_int(5)];
    TopoSimConfig cfg = base_config(kind, FcKind::kWormholeVc);
    cfg.fc.lanes = 1 + static_cast<int>(rng.uniform_int(3));
    cfg.fc.lane_flits = 2 + static_cast<int>(rng.uniform_int(7));
    cfg.measure_slots = 1'000;
    const double load = 0.1 + 0.15 * static_cast<double>(rng.uniform_int(5));
    const TopoSimResult r = run_topo_uniform(cfg, load, 0x900D + trial);
    expect_clean(r, r.topology + " lanes=" + std::to_string(cfg.fc.lanes) +
                        " load=" + std::to_string(load));
  }
}

TEST(TopoSim, TransientFaultsFreezeAndRepairLosslessly) {
  for (FcKind fc : {FcKind::kCredit, FcKind::kWormholeVc}) {
    TopoSimConfig cfg = base_config(TopoKind::kFatTree, fc);
    faults::FaultEvent spine;
    spine.kind = faults::FaultKind::kPlaneFailure;
    spine.a = 0;
    spine.at_slot = 400;
    spine.duration_slots = 300;
    cfg.fault_plan.add(spine);
    faults::FaultEvent stall;
    stall.kind = faults::FaultKind::kAdapterStall;
    stall.a = 7;
    stall.at_slot = 600;
    stall.duration_slots = 200;
    cfg.fault_plan.add(stall);
    cfg.fault_plan.seeded(1);
    const TopoSimResult r = run_topo_uniform(cfg, 0.3, 0xFA17);
    expect_clean(r, r.flow_control);
    EXPECT_EQ(r.faults_injected, 2u) << r.flow_control;
    EXPECT_EQ(r.faults_repaired, 2u) << r.flow_control;
  }
}

TEST(TopoSimDeath, PermanentMidRunFaultIsRejected) {
  TopoSimConfig cfg = base_config(TopoKind::kFatTree, FcKind::kCredit);
  faults::FaultEvent e;
  e.kind = faults::FaultKind::kPlaneFailure;
  e.a = 0;
  e.at_slot = 400;
  e.duration_slots = 0;  // permanent
  cfg.fault_plan.add(e);
  cfg.fault_plan.seeded(1);
  EXPECT_DEATH(TopoSim(cfg, sim::make_uniform(cfg.hosts, 0.3, 1)),
               "construction-time failed_switches");
}

TEST(TopoSimDeath, MinRejectsConstructionTimeFailures) {
  TopoSimConfig cfg = base_config(TopoKind::kBenes, FcKind::kCredit);
  cfg.failed_switches = {0};
  EXPECT_DEATH(TopoSim(cfg, sim::make_uniform(cfg.hosts, 0.3, 1)),
               "unique path");
}

TEST(TopoSim, RoutesAroundFailedSwitchesDegradedButClean) {
  // A dead fat-tree top (global id 9 of the 32-host tree) and a dead
  // Clos middle (global id 10): reduced capacity, same guarantees.
  for (const auto& [kind, id] :
       {std::pair{TopoKind::kFatTree, 9}, std::pair{TopoKind::kClos, 10}}) {
    TopoSimConfig cfg = base_config(kind, FcKind::kCredit);
    cfg.failed_switches = {id};
    const TopoSimResult r = run_topo_uniform(cfg, 0.3, 0xDEAD);
    expect_clean(r, r.topology + " failed_sw");
  }
}

TEST(TopoSim, CheckpointResumeWithWormsInFlightIsByteIdentical) {
  // Snapshot mid-measurement with flits parked in VC lanes, restore
  // into a fresh sim, and require the continued runs to agree exactly
  // — field-for-field results and byte-identical final state.
  TopoSimConfig cfg = base_config(TopoKind::kBenes, FcKind::kWormholeVc);
  cfg.measure_slots = 2'000;
  const double packet_p = 0.5 / cfg.fc.flits_per_packet;
  TopoSim a(cfg, sim::make_uniform(cfg.hosts, packet_p, 0x5EED));
  for (int i = 0; i < 700; ++i) ASSERT_TRUE(a.advance_slot());
  // Worms must actually be in flight at the snapshot.
  ASSERT_GT(a.monitor().offered_cells(), a.monitor().delivered_cells());

  ckpt::Writer snap;
  a.save_state(snap);
  TopoSim b(cfg, sim::make_uniform(cfg.hosts, packet_p, 0x5EED));
  b.load_state(ckpt::Reader::from_bytes(snap.serialize()));

  while (a.advance_slot()) {
  }
  while (b.advance_slot()) {
  }
  ckpt::Writer fa;
  a.save_state(fa);
  ckpt::Writer fb;
  b.save_state(fb);
  EXPECT_EQ(fa.serialize(), fb.serialize());

  const TopoSimResult ra = a.finalize();
  const TopoSimResult rb = b.finalize();
  expect_clean(ra, "original");
  expect_clean(rb, "resumed");
  EXPECT_EQ(ra.injected_total, rb.injected_total);
  EXPECT_EQ(ra.delivered_total, rb.delivered_total);
  EXPECT_EQ(ra.throughput, rb.throughput);
  EXPECT_EQ(ra.mean_delay_slots, rb.mean_delay_slots);
  EXPECT_EQ(ra.drained_slots, rb.drained_slots);
}

TEST(TopoSim, CheckpointRejectsMismatchedStructure) {
  TopoSimConfig cfg = base_config(TopoKind::kOmega, FcKind::kCredit);
  TopoSim a(cfg, sim::make_uniform(cfg.hosts, 0.3, 1));
  for (int i = 0; i < 300; ++i) ASSERT_TRUE(a.advance_slot());
  ckpt::Writer snap;
  a.save_state(snap);
  // A different topology has different per-switch vector shapes.
  TopoSimConfig other = base_config(TopoKind::kBenes, FcKind::kCredit);
  TopoSim b(other, sim::make_uniform(other.hosts, 0.3, 1));
  EXPECT_THROW(b.load_state(ckpt::Reader::from_bytes(snap.serialize())),
               ckpt::Error);
}

}  // namespace
}  // namespace osmosis::topo
