// Tests for the profiling & tracing layer (src/prof/ + DESIGN.md §11):
// the flat wall-clock profile and its enable/disable discipline, the
// deterministic time-series sampler (stride-doubling decimation,
// checkpoint round trip mid-sample-window, byte-identity at any thread
// count), Chrome-trace export invariants (parseable JSON, nondecreasing
// timestamps, balanced B/E and b/e streams), and the RunReport contract
// that the new "profile"/"timeseries"/"build" keys appear only when
// populated — so a run with the layer off serializes exactly as before.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/ckpt/ckpt.hpp"
#include "src/exec/campaign.hpp"
#include "src/exec/thread_pool.hpp"
#include "src/prof/profiler.hpp"
#include "src/prof/timeseries.hpp"
#include "src/prof/trace_export.hpp"
#include "src/sim/traffic.hpp"
#include "src/sw/switch_sim.hpp"
#include "src/telemetry/build_info.hpp"
#include "src/telemetry/json.hpp"
#include "src/telemetry/run_report.hpp"

namespace osmosis {
namespace {

using telemetry::JsonValue;

// The profiler is process-global; every test leaves it disabled+clean.
struct ProfilerGuard {
  ProfilerGuard() { reset(); }
  ~ProfilerGuard() { reset(); }
  static void reset() {
    prof::Profiler::instance().disable();
    prof::Profiler::instance().reset();
  }
};

// ---- Profiler flat profile -------------------------------------------------

TEST(Profiler, DisabledScopesRecordNothing) {
  ProfilerGuard guard;
  EXPECT_FALSE(prof::enabled());
  for (int i = 0; i < 100; ++i) {
    OSMOSIS_PROF_SCOPE("prof_test.noop");
  }
  EXPECT_TRUE(prof::Profiler::instance().flat_profile().empty());
}

// The next two tests exercise OSMOSIS_PROF_SCOPE itself, which a
// -DOSMOSIS_PROF_DISABLED build compiles to nothing by design.
#ifndef OSMOSIS_PROF_DISABLED
TEST(Profiler, EnabledScopesCountAndAccumulate) {
  ProfilerGuard guard;
  prof::Profiler::instance().enable();
  for (int i = 0; i < 32; ++i) {
    OSMOSIS_PROF_SCOPE("prof_test.outer");
    OSMOSIS_PROF_SCOPE("prof_test.inner");
  }
  prof::Profiler::instance().disable();

  const auto profile = prof::Profiler::instance().flat_profile();
  ASSERT_TRUE(profile.count("prof_test.outer"));
  ASSERT_TRUE(profile.count("prof_test.inner"));
  const prof::PhaseStats& outer = profile.at("prof_test.outer");
  EXPECT_EQ(outer.count, 32u);
  EXPECT_GT(outer.total_ns, 0.0);
  EXPECT_GE(outer.max_ns, outer.mean_ns());
  // Outer encloses inner, so its total cannot be smaller.
  EXPECT_GE(outer.total_ns, profile.at("prof_test.inner").total_ns);
}

TEST(Profiler, MergesPhasesAcrossThreads) {
  ProfilerGuard guard;
  prof::Profiler::instance().enable();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  {
    exec::ThreadPool pool(kThreads);
    for (int t = 0; t < kThreads; ++t)
      pool.submit([] {
        for (int i = 0; i < kPerThread; ++i) {
          OSMOSIS_PROF_SCOPE("prof_test.pooled");
        }
      });
    pool.wait_idle();
  }
  prof::Profiler::instance().disable();
  const auto profile = prof::Profiler::instance().flat_profile();
  ASSERT_TRUE(profile.count("prof_test.pooled"));
  EXPECT_EQ(profile.at("prof_test.pooled").count,
            static_cast<std::uint64_t>(kThreads * kPerThread));
}
#endif  // OSMOSIS_PROF_DISABLED

TEST(Profiler, CapturedSpansCarryThreadNames) {
  ProfilerGuard guard;
  prof::Profiler::instance().enable(/*capture_spans=*/true);
  prof::Profiler::instance().set_thread_name("prof-test-main");
  { prof::ScopedTask task("job[alpha]"); }
  // ScopedPhase directly (not the macro), so this also covers the
  // -DOSMOSIS_PROF_DISABLED build, where the classes remain available.
  { prof::ScopedPhase span("prof_test.span"); }
  prof::Profiler::instance().disable();

  const auto spans = prof::Profiler::instance().spans();
  std::set<std::string> names;
  for (const auto& s : spans) names.insert(s.name);
  EXPECT_TRUE(names.count("job[alpha]"));
  EXPECT_TRUE(names.count("prof_test.span"));
  bool named = false;
  for (const auto& [tid, name] : prof::Profiler::instance().thread_names())
    named = named || name == "prof-test-main";
  EXPECT_TRUE(named);
  // ScopedTask also lands in the flat profile under its phase bucket.
  EXPECT_TRUE(prof::Profiler::instance().flat_profile().count("exec.job"));
}

// ---- Time-series sampler ---------------------------------------------------

prof::TimeSeriesSampler make_sampler(std::uint64_t every,
                                     std::size_t max_samples) {
  prof::TimeSeriesConfig cfg;
  cfg.enabled = true;
  cfg.every_slots = every;
  cfg.max_samples = max_samples;
  prof::TimeSeriesSampler s(cfg);
  s.set_channels({"a", "b"});
  return s;
}

TEST(TimeSeries, InertWithoutChannelsOrEnable) {
  prof::TimeSeriesConfig cfg;
  cfg.enabled = true;
  prof::TimeSeriesSampler no_channels(cfg);
  EXPECT_FALSE(no_channels.enabled());
  EXPECT_FALSE(no_channels.due(0));

  prof::TimeSeriesSampler disabled;  // default config: enabled = false
  EXPECT_FALSE(disabled.enabled());
  EXPECT_FALSE(disabled.due(0));
}

TEST(TimeSeries, StrideDoublingKeepsUniformSpacingUnderCap) {
  auto s = make_sampler(/*every=*/1, /*max_samples=*/8);
  for (std::uint64_t slot = 0; slot < 1000; ++slot)
    if (s.due(slot))
      s.record(slot, {static_cast<double>(slot), 2.0 * slot});

  EXPECT_LE(s.size(), 8u);
  const prof::TimeSeriesData data = s.snapshot();
  ASSERT_GE(data.slots.size(), 2u);
  EXPECT_EQ(data.every_slots, s.stride());
  // Retained rows are uniformly spaced by the final stride and each
  // row still carries the value recorded at that slot.
  for (std::size_t i = 0; i < data.slots.size(); ++i) {
    EXPECT_EQ(data.slots[i], i * data.every_slots);
    EXPECT_DOUBLE_EQ(data.values[i][0], static_cast<double>(data.slots[i]));
    EXPECT_DOUBLE_EQ(data.values[i][1], 2.0 * data.slots[i]);
  }
  // Decimation fires on reaching capacity, so the stride is a power of
  // two and 1000 slots of pressure have pushed it to 256.
  EXPECT_EQ(s.stride(), 256u);
}

TEST(TimeSeries, DueDependsOnlyOnSlotAndStride) {
  auto s = make_sampler(/*every=*/4, /*max_samples=*/512);
  // Asking in any order, repeatedly, never perturbs the answer: due()
  // is a pure predicate of (slot, stride).
  EXPECT_TRUE(s.due(0));
  EXPECT_FALSE(s.due(2));
  EXPECT_TRUE(s.due(8));
  EXPECT_TRUE(s.due(8));
  EXPECT_FALSE(s.due(7));
  EXPECT_TRUE(s.due(0));
}

TEST(TimeSeries, CheckpointRoundTripMidSampleWindow) {
  // Straight run: sample slots 0..N with decimation pressure.
  auto straight = make_sampler(/*every=*/2, /*max_samples=*/16);
  // Interrupted run: identical, but serialized and restored at a slot
  // that is NOT a sampling point (mid-window), the worst case for any
  // phase-dependent bug.
  auto first = make_sampler(2, 16);

  constexpr std::uint64_t kCut = 333;  // odd => not on the stride grid
  constexpr std::uint64_t kEnd = 1000;
  for (std::uint64_t slot = 0; slot <= kEnd; ++slot) {
    if (straight.due(slot))
      straight.record(slot, {static_cast<double>(slot), 0.5 * slot});
    if (slot <= kCut && first.due(slot))
      first.record(slot, {static_cast<double>(slot), 0.5 * slot});
  }
  ASSERT_FALSE(first.due(kCut));

  ckpt::Sink sink;
  first.io_state(sink);
  std::string bytes = sink.take();

  auto resumed = make_sampler(2, 16);
  ckpt::Source src(bytes);
  resumed.io_state(src);

  for (std::uint64_t slot = kCut + 1; slot <= kEnd; ++slot)
    if (resumed.due(slot))
      resumed.record(slot, {static_cast<double>(slot), 0.5 * slot});

  // Byte-level equality of the serialized series.
  ckpt::Sink sa, sb;
  straight.io_state(sa);
  resumed.io_state(sb);
  EXPECT_EQ(sa.take(), sb.take());
}

TEST(TimeSeries, CheckpointRejectsChannelCountMismatch) {
  auto two = make_sampler(4, 16);
  two.record(0, {1.0, 2.0});
  ckpt::Sink sink;
  two.io_state(sink);
  std::string bytes = sink.take();

  prof::TimeSeriesConfig cfg;
  cfg.enabled = true;
  cfg.every_slots = 4;
  cfg.max_samples = 16;
  prof::TimeSeriesSampler three(cfg);
  three.set_channels({"a", "b", "c"});
  ckpt::Source src(bytes);
  EXPECT_THROW(three.io_state(src), ckpt::Error);
}

// ---- End-to-end determinism through SwitchSim ------------------------------

sw::SwitchSimConfig series_cfg() {
  sw::SwitchSimConfig cfg;
  cfg.ports = 16;
  cfg.warmup_slots = 200;
  cfg.measure_slots = 2'000;
  cfg.telemetry.enabled = true;
  cfg.telemetry.sample_every = 4;
  cfg.telemetry.timeseries.enabled = true;
  cfg.telemetry.timeseries.every_slots = 8;
  cfg.telemetry.timeseries.max_samples = 64;
  cfg.drain_max_slots = 20'000;
  cfg.fault_plan = exec::make_fault_plan(exec::FaultScenario::kCombined,
                                         cfg.warmup_slots,
                                         cfg.measure_slots);
  cfg.fault_plan.seeded(0x5EED);
  return cfg;
}

std::string run_report_json(const sw::SwitchSimConfig& cfg) {
  sw::SwitchSim sim(cfg, sim::make_uniform(cfg.ports, 0.6, 99));
  sim.run();
  return sim.report().to_json();
}

TEST(TimeSeries, SwitchSimSeriesByteIdenticalAtAnyThreadCount) {
  // Profiler on (worst case: wall-clock instrumentation active) while
  // four identical simulations race on a pool; every report, including
  // its "timeseries" section, must equal the serial single-thread run.
  ProfilerGuard guard;
  prof::Profiler::instance().enable();
  const std::string serial = run_report_json(series_cfg());
  ASSERT_NE(serial.find("\"timeseries\""), std::string::npos);

  constexpr int kJobs = 4;
  std::vector<std::string> parallel(kJobs);
  {
    exec::ThreadPool pool(kJobs);
    for (int j = 0; j < kJobs; ++j)
      pool.submit([&parallel, j] { parallel[j] = run_report_json(series_cfg()); });
    pool.wait_idle();
  }
  for (int j = 0; j < kJobs; ++j) EXPECT_EQ(parallel[j], serial) << "job " << j;
}

TEST(TimeSeries, SwitchSimSeriesSurvivesCheckpointMidWindow) {
  const auto cfg = series_cfg();
  sw::SwitchSim a(cfg, sim::make_uniform(cfg.ports, 0.6, 99));
  a.run();

  // 901 is mid-window for every stride the 64-row buffer can reach, and
  // mid-outage for the combined fault plan.
  sw::SwitchSim b(cfg, sim::make_uniform(cfg.ports, 0.6, 99));
  for (int i = 0; i < 901; ++i) ASSERT_TRUE(b.advance_slot());
  ckpt::Writer w;
  b.save_state(w);

  sw::SwitchSim c(cfg, sim::make_uniform(cfg.ports, 0.6, 99));
  c.load_state(ckpt::Reader::from_bytes(w.serialize()));
  c.run();

  EXPECT_EQ(a.report().to_json(), c.report().to_json());
  EXPECT_FALSE(a.telemetry().series().snapshot().empty());
}

// ---- Chrome-trace export ---------------------------------------------------

// Minimal structural validator mirroring bench/schema_check.cpp: every
// timed event timestamped in nondecreasing order, duration events
// balanced per (pid, tid), async events balanced per (pid, cat, id).
void check_chrome_trace(const std::string& json, std::size_t* timed_out) {
  const JsonValue doc = telemetry::json_parse(json);
  ASSERT_TRUE(doc.has("traceEvents"));
  const auto& events = doc.at("traceEvents").array;
  ASSERT_FALSE(events.empty());

  std::map<std::pair<int, int>, std::vector<std::string>> stacks;
  std::map<std::string, int> async_open;
  double last_ts = -1.0;
  std::size_t timed = 0;
  for (const JsonValue& e : events) {
    ASSERT_TRUE(e.has("ph"));
    const char ph = e.at("ph").str.at(0);
    if (ph == 'M') continue;
    ASSERT_TRUE(e.has("ts"));
    const double ts = e.at("ts").number;
    EXPECT_GE(ts, last_ts);
    last_ts = ts;
    ++timed;
    const int pid = static_cast<int>(e.at("pid").number);
    const int tid = static_cast<int>(e.at("tid").number);
    if (ph == 'B') {
      stacks[{pid, tid}].push_back(e.at("name").str);
    } else if (ph == 'E') {
      auto& st = stacks[{pid, tid}];
      ASSERT_FALSE(st.empty());
      EXPECT_EQ(e.at("name").str, st.back());
      st.pop_back();
    } else if (ph == 'b' || ph == 'e') {
      const std::string key = e.at("cat").str + "#" +
                              telemetry::json_number(e.at("id").number);
      if (ph == 'b') {
        ++async_open[key];
      } else {
        ASSERT_GT(async_open[key], 0) << key;
        --async_open[key];
      }
    }
  }
  for (const auto& [track, st] : stacks) EXPECT_TRUE(st.empty());
  for (const auto& [key, open] : async_open) EXPECT_EQ(open, 0) << key;
  if (timed_out) *timed_out = timed;
}

TEST(ChromeTrace, BuilderNestsStraddlingSpansAndSorts) {
  prof::ChromeTraceBuilder b;
  b.process_name(0, "test");
  b.thread_name(0, 1, "t1");
  // Inserted out of order, with a child straddling its parent's end:
  // the builder must clamp and emit a well-formed nondecreasing stream.
  b.duration(0, 1, "child", 5.0, 10.0);
  b.duration(0, 1, "parent", 0.0, 12.0);
  b.duration(0, 1, "later", 20.0, 1.0, {{"x", 3.0}});
  b.async_begin(0, 1, "win", 7, "window", 2.0);
  b.async_end(0, 1, "win", 7, 18.0);
  b.counter(0, 2, "depth", 4.0, {{"value", 9.0}});
  b.instant(0, 1, "mark", 6.0);

  std::size_t timed = 0;
  check_chrome_trace(b.to_json(), &timed);
  EXPECT_GE(timed, 8u);  // 3 spans => 6 B/E, plus b/e, C, i
}

TEST(ChromeTrace, WallTraceFromProfilerSpans) {
  ProfilerGuard guard;
  prof::Profiler::instance().enable(/*capture_spans=*/true);
  prof::Profiler::instance().set_thread_name("main");
  {
    prof::ScopedTask job("job[fig7:load=0.5]");
    for (int i = 0; i < 3; ++i) {
      prof::ScopedPhase phase("prof_test.phase");
    }
  }
  prof::Profiler::instance().disable();

  const std::string json =
      prof::wall_trace_json(prof::Profiler::instance());
  std::size_t timed = 0;
  check_chrome_trace(json, &timed);
  EXPECT_GE(timed, 8u);  // 4 spans as B/E pairs
  EXPECT_NE(json.find("job[fig7:load=0.5]"), std::string::npos);
  EXPECT_NE(json.find("\"main\""), std::string::npos);
}

TEST(ChromeTrace, SimTraceCoversCellsFaultsAndCounters) {
  auto cfg = series_cfg();
  cfg.telemetry.sample_every = 1;  // trace every cell
  sw::SwitchSim sim(cfg, sim::make_uniform(cfg.ports, 0.6, 11));
  sim.run();

  const prof::TimeSeriesData series = sim.telemetry().series().snapshot();
  const std::string json = prof::sim_trace_json(
      &sim.telemetry().trace(), &cfg.fault_plan, &series);
  std::size_t timed = 0;
  check_chrome_trace(json, &timed);
  EXPECT_GT(timed, 100u);
  // All three sections present: cell lifecycles, the fault timeline,
  // and one counter track per series channel.
  EXPECT_NE(json.find("\"cell\""), std::string::npos);
  EXPECT_NE(json.find("\"fault\""), std::string::npos);
  EXPECT_NE(json.find("backlog"), std::string::npos);
}

// ---- RunReport integration -------------------------------------------------

TEST(RunReport, NewSectionsOmittedWhenEmpty) {
  ProfilerGuard guard;  // profiler off => sim runs collect no profile
  sw::SwitchSimConfig cfg;
  cfg.ports = 8;
  cfg.warmup_slots = 50;
  cfg.measure_slots = 500;
  cfg.telemetry.enabled = true;
  cfg.telemetry.sample_every = 4;
  // timeseries left disabled (the default): the key must not appear.
  sw::SwitchSim sim(cfg, sim::make_uniform(cfg.ports, 0.5, 7));
  sim.run();
  const std::string json = sim.report().to_json();
  EXPECT_EQ(json.find("\"profile\""), std::string::npos);
  EXPECT_EQ(json.find("\"timeseries\""), std::string::npos);
  EXPECT_EQ(json.find("\"build\""), std::string::npos);
}

TEST(RunReport, ProfileAndBuildRoundTripThroughJson) {
  ProfilerGuard guard;
  prof::Profiler::instance().enable();
  { prof::ScopedPhase phase("prof_test.report"); }
  prof::Profiler::instance().disable();

  sw::SwitchSimConfig cfg;
  cfg.ports = 8;
  cfg.warmup_slots = 50;
  cfg.measure_slots = 500;
  cfg.telemetry.enabled = true;
  sw::SwitchSim sim(cfg, sim::make_uniform(cfg.ports, 0.5, 7));
  sim.run();
  telemetry::RunReport rep = sim.report();
  rep.profile = prof::Profiler::instance().flat_profile();
  rep.attach_build_info();

  const JsonValue doc = telemetry::json_parse(rep.to_json());
  ASSERT_TRUE(doc.has("profile"));
  ASSERT_TRUE(doc.at("profile").has("prof_test.report"));
  EXPECT_GE(doc.at("profile").at("prof_test.report").at("count").number,
            1.0);
  ASSERT_TRUE(doc.has("meta"));
  ASSERT_TRUE(doc.at("meta").has("build"));
  EXPECT_TRUE(doc.at("meta").at("build").has("compiler"));
  EXPECT_TRUE(doc.at("meta").at("build").has("git_sha"));

  const telemetry::RunReport back =
      telemetry::RunReport::from_json(rep.to_json());
  EXPECT_EQ(back.to_json(), rep.to_json());
}

}  // namespace
}  // namespace osmosis
