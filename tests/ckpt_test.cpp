// Tests for the checkpoint/restore subsystem (src/ckpt/ + DESIGN.md
// §10): container validation (corruption and truncation fail loudly,
// nothing partially loads), RNG round-trips, resume equivalence for all
// four simulators — N slots straight must equal k slots, snapshot,
// restore into a fresh sim, N-k slots — including a snapshot taken in
// the middle of a combined fault outage, and kill-safe campaign resume
// producing a byte-identical document.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/ckpt/ckpt.hpp"
#include "src/exec/campaign.hpp"
#include "src/exec/campaign_runner.hpp"
#include "src/fabric/fabric_sim.hpp"
#include "src/fabric/multiplane.hpp"
#include "src/sim/rng.hpp"
#include "src/sim/traffic.hpp"
#include "src/sw/event_switch_sim.hpp"
#include "src/sw/switch_sim.hpp"
#include "src/util/cli.hpp"

namespace osmosis {
namespace {

// ---- container format -----------------------------------------------------

std::string sample_container() {
  ckpt::Writer w;
  w.add_chunk("alpha", "payload-a");
  w.add_chunk("beta", std::string("\0\x01\x02", 3));
  return w.serialize();
}

TEST(CkptFormat, RoundTripsChunksByName) {
  ckpt::Writer w;
  std::string alpha = "payload-a";
  std::uint64_t beta = 0xB17E;
  ckpt::write_chunk(w, "alpha", [&](ckpt::Sink& s) { ckpt::field(s, alpha); });
  ckpt::write_chunk(w, "beta", [&](ckpt::Sink& s) { ckpt::field(s, beta); });

  const ckpt::Reader r = ckpt::Reader::from_bytes(w.serialize());
  EXPECT_TRUE(r.has("alpha"));
  EXPECT_FALSE(r.has("gamma"));
  std::string got_alpha;
  std::uint64_t got_beta = 0;
  ckpt::read_chunk(r, "alpha",
                   [&](ckpt::Source& s) { ckpt::field(s, got_alpha); });
  ckpt::read_chunk(r, "beta",
                   [&](ckpt::Source& s) { ckpt::field(s, got_beta); });
  EXPECT_EQ(got_alpha, alpha);
  EXPECT_EQ(got_beta, beta);
}

TEST(CkptFormat, UnknownChunksAreSkippable) {
  // A reader that only knows "alpha" still opens a file carrying
  // unknown chunks — explicit lengths keep it from desynchronizing.
  const ckpt::Reader r = ckpt::Reader::from_bytes(sample_container());
  EXPECT_NO_THROW(r.chunk("alpha"));
}

TEST(CkptFormat, EveryFlippedByteIsRejected) {
  const std::string good = sample_container();
  ASSERT_NO_THROW(ckpt::Reader::from_bytes(good));
  int rejected = 0;
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x5A);
    try {
      ckpt::Reader::from_bytes(std::move(bad));
    } catch (const ckpt::Error&) {
      ++rejected;
    }
  }
  // The CRC covers every byte, so a single-byte flip anywhere must fail
  // validation (some flips also die earlier, on magic or structure).
  EXPECT_EQ(rejected, static_cast<int>(good.size()));
}

TEST(CkptFormat, EveryTruncationIsRejected) {
  const std::string good = sample_container();
  for (std::size_t n = 0; n < good.size(); ++n) {
    EXPECT_THROW(ckpt::Reader::from_bytes(good.substr(0, n)), ckpt::Error)
        << "truncation to " << n << " bytes was accepted";
  }
}

TEST(CkptFormat, MissingChunkAndMissingFileThrow) {
  const ckpt::Reader r = ckpt::Reader::from_bytes(sample_container());
  EXPECT_THROW(r.chunk("gamma"), ckpt::Error);
  EXPECT_THROW(ckpt::Reader::from_file("/nonexistent/dir/x.ckpt"),
               ckpt::Error);
}

TEST(CkptFormat, WriteFileIsAtomicAndReadable) {
  const std::string path = ::testing::TempDir() + "ckpt_atomic.ckpt";
  ckpt::Writer w;
  w.add_chunk("alpha", "payload-a");
  w.write_file(path);
  const ckpt::Reader r = ckpt::Reader::from_file(path);
  EXPECT_TRUE(r.has("alpha"));
  std::remove(path.c_str());
}

// ---- RNG round-trip -------------------------------------------------------

TEST(CkptRng, ThousandDrawsIdenticalAfterRestore) {
  sim::Rng a(0xDEAD'BEEF);
  for (int i = 0; i < 137; ++i) a.next();  // advance off the seed point

  ckpt::Sink sink;
  ckpt::field(sink, a);
  std::string bytes = sink.take();

  sim::Rng b(1);  // different seed: load must overwrite all state
  ckpt::Source src(bytes);
  ckpt::field(src, b);
  src.expect_end();

  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next()) << "draw " << i;
}

TEST(CkptRng, RestoredGeneratorMatchesAcrossDistributions) {
  sim::Rng a(42);
  a.uniform();
  a.geometric(0.25);

  ckpt::Sink sink;
  ckpt::field(sink, a);
  std::string bytes = sink.take();
  sim::Rng b(7);
  ckpt::Source src(bytes);
  ckpt::field(src, b);

  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(a.uniform(), b.uniform());
    ASSERT_EQ(a.uniform_int(97), b.uniform_int(97));
    ASSERT_EQ(a.bernoulli(0.3), b.bernoulli(0.3));
  }
}

// ---- resume equivalence: all four simulators ------------------------------

// Serialized RunReport bytes — the strongest equality we can ask for:
// config echo, counters, histograms, health verdicts, all of it.
std::string report_bytes(const telemetry::RunReport& rep) {
  ckpt::Sink s;
  ckpt::field(s, const_cast<telemetry::RunReport&>(rep));
  return s.take();
}

sw::SwitchSimConfig small_switch_cfg(bool faulty) {
  sw::SwitchSimConfig cfg;
  cfg.ports = 16;  // the combined plan stalls adapter 12
  cfg.sched.kind = sw::SchedulerKind::kFlppr;
  cfg.sched.receivers = 2;
  cfg.warmup_slots = 200;
  cfg.measure_slots = 2'000;
  cfg.telemetry.enabled = true;
  cfg.telemetry.sample_every = 4;
  cfg.drain_max_slots = 20'000;
  if (faulty) {
    // Combined scenario, same derivation the campaign layer uses.
    cfg.fault_plan = exec::make_fault_plan(exec::FaultScenario::kCombined,
                                           cfg.warmup_slots,
                                           cfg.measure_slots);
    cfg.fault_plan.seeded(0x5EED);
  }
  return cfg;
}

TEST(CkptResume, SwitchSimMidRunRestoreIsExact) {
  for (bool faulty : {false, true}) {
    SCOPED_TRACE(faulty ? "combined faults" : "fault-free");
    const auto cfg = small_switch_cfg(faulty);
    // With faults on, k lands mid-outage: the combined plan opens at
    // warmup + measure/4 = 700 and spans 500 slots.
    const std::uint64_t k = faulty ? 900 : 777;

    sw::SwitchSim a(cfg, sim::make_uniform(cfg.ports, 0.6, 99));
    const auto straight = a.run();

    sw::SwitchSim b(cfg, sim::make_uniform(cfg.ports, 0.6, 99));
    for (std::uint64_t i = 0; i < k; ++i) ASSERT_TRUE(b.advance_slot());
    ckpt::Writer w;
    b.save_state(w);
    const std::string bytes = w.serialize();

    sw::SwitchSim c(cfg, sim::make_uniform(cfg.ports, 0.6, 99));
    c.load_state(ckpt::Reader::from_bytes(bytes));
    const auto resumed = c.run();

    EXPECT_EQ(straight.delivered, resumed.delivered);
    EXPECT_EQ(straight.mean_delay, resumed.mean_delay);
    EXPECT_EQ(report_bytes(a.report()), report_bytes(c.report()));
  }
}

TEST(CkptResume, SwitchSimRejectsForeignConfig) {
  const auto cfg = small_switch_cfg(false);
  sw::SwitchSim a(cfg, sim::make_uniform(cfg.ports, 0.6, 99));
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(a.advance_slot());
  ckpt::Writer w;
  a.save_state(w);

  auto other = cfg;
  other.ports = 8;
  sw::SwitchSim b(other, sim::make_uniform(other.ports, 0.6, 99));
  EXPECT_THROW(b.load_state(ckpt::Reader::from_bytes(w.serialize())),
               ckpt::Error);
}

TEST(CkptResume, EventSwitchSimMidRunRestoreIsExact) {
  sw::EventSwitchConfig cfg;
  cfg.ports = 16;  // the combined plan stalls adapter 12
  cfg.sched.kind = sw::SchedulerKind::kFlppr;
  cfg.sched.receivers = 2;
  cfg.default_ctrl_ns = 100.0;
  cfg.warmup_ns = 200 * cfg.cell_ns;
  cfg.measure_ns = 2'000 * cfg.cell_ns;
  cfg.telemetry.enabled = true;
  cfg.telemetry.sample_every = 4;
  cfg.fault_plan = exec::make_fault_plan(exec::FaultScenario::kCombined,
                                         200, 2'000);
  cfg.fault_plan.seeded(0x5EED);
  cfg.drain_max_cycles = 20'000;

  sw::EventSwitchSim a(cfg, sim::make_uniform(cfg.ports, 0.5, 7));
  const auto straight = a.run();

  sw::EventSwitchSim b(cfg, sim::make_uniform(cfg.ports, 0.5, 7));
  for (int i = 0; i < 5'000; ++i) ASSERT_TRUE(b.advance());  // mid-outage
  ckpt::Writer w;
  b.save_state(w);

  sw::EventSwitchSim c(cfg, sim::make_uniform(cfg.ports, 0.5, 7));
  c.load_state(ckpt::Reader::from_bytes(w.serialize()));
  const auto resumed = c.run();

  EXPECT_EQ(straight.delivered, resumed.delivered);
  EXPECT_EQ(straight.mean_delay_ns, resumed.mean_delay_ns);
  EXPECT_EQ(report_bytes(a.report()), report_bytes(c.report()));
}

TEST(CkptResume, FabricSimMidOutageRestoreIsExact) {
  fabric::FabricSimConfig cfg;
  cfg.radix = 4;
  cfg.warmup_slots = 200;
  cfg.measure_slots = 2'000;
  cfg.telemetry.enabled = true;
  cfg.telemetry.sample_every = 4;
  cfg.fault_plan = exec::make_fault_plan(exec::FaultScenario::kSpineOutage,
                                         cfg.warmup_slots, cfg.measure_slots);
  cfg.fault_plan.seeded(0x5EED);
  cfg.drain_max_slots = 20'000;
  const int hosts = cfg.radix * cfg.radix / 2;

  fabric::FabricSim a(cfg, sim::make_uniform(hosts, 0.4, 11));
  const auto straight = a.run();

  fabric::FabricSim b(cfg, sim::make_uniform(hosts, 0.4, 11));
  for (int i = 0; i < 900; ++i) ASSERT_TRUE(b.advance_slot());  // spine down
  ckpt::Writer w;
  b.save_state(w);

  fabric::FabricSim c(cfg, sim::make_uniform(hosts, 0.4, 11));
  c.load_state(ckpt::Reader::from_bytes(w.serialize()));
  const auto resumed = c.run();

  EXPECT_EQ(straight.delivered, resumed.delivered);
  EXPECT_EQ(straight.mean_delay_slots, resumed.mean_delay_slots);
  EXPECT_EQ(report_bytes(a.report()), report_bytes(c.report()));
}

TEST(CkptResume, FabricSimMidDegradedRestoreIsExact) {
  // Checkpoint taken DURING a permanent degraded interval: adaptive
  // route tables, resequencer parkings, admission bucket levels, and
  // the availability accumulators must all restore so the resumed run
  // is byte-identical to the uninterrupted one.
  fabric::FabricSimConfig cfg;
  cfg.radix = 8;
  cfg.warmup_slots = 200;
  cfg.measure_slots = 2'000;
  cfg.adaptive_routing = true;
  cfg.admission.enabled = true;
  cfg.telemetry.enabled = true;
  cfg.telemetry.sample_every = 4;
  cfg.fault_plan = exec::make_fault_plan(exec::FaultScenario::kSpinePermanent,
                                         cfg.warmup_slots, cfg.measure_slots);
  cfg.fault_plan.seeded(0x5EED);
  cfg.drain_max_slots = 60'000;
  const int hosts = cfg.radix * cfg.radix / 2;

  fabric::FabricSim a(cfg, sim::make_uniform(hosts, 0.8, 11));
  const auto straight = a.run();
  EXPECT_GT(straight.shed_cells, 0u);  // the snapshot interval is degraded

  fabric::FabricSim b(cfg, sim::make_uniform(hosts, 0.8, 11));
  for (int i = 0; i < 1'200; ++i) ASSERT_TRUE(b.advance_slot());  // spine cut
  ckpt::Writer w;
  b.save_state(w);

  fabric::FabricSim c(cfg, sim::make_uniform(hosts, 0.8, 11));
  c.load_state(ckpt::Reader::from_bytes(w.serialize()));
  const auto resumed = c.run();

  EXPECT_EQ(straight.delivered, resumed.delivered);
  EXPECT_EQ(straight.shed_cells, resumed.shed_cells);
  EXPECT_EQ(straight.resteered, resumed.resteered);
  EXPECT_EQ(straight.brownout_slots, resumed.brownout_slots);
  EXPECT_EQ(straight.mean_delay_slots, resumed.mean_delay_slots);
  EXPECT_EQ(report_bytes(a.report()), report_bytes(c.report()));
}

TEST(CkptResume, MultiPlaneSimMidOutageRestoreIsExact) {
  fabric::MultiPlaneConfig cfg;
  cfg.ports = 8;
  cfg.planes = 2;
  cfg.warmup_slots = 200;
  cfg.measure_slots = 2'000;
  cfg.fault_plan.fail_plane(700, 1, 500);
  cfg.drain_max_slots = 20'000;

  auto gens = [&] {
    std::vector<std::unique_ptr<sim::TrafficGen>> v;
    for (int p = 0; p < cfg.planes; ++p)
      v.push_back(sim::make_uniform(cfg.ports, 0.3,
                                    0x9000 + static_cast<std::uint64_t>(p)));
    return v;
  };

  fabric::MultiPlaneSim a(cfg, gens());
  const auto straight = a.run();

  fabric::MultiPlaneSim b(cfg, gens());
  for (int i = 0; i < 900; ++i) ASSERT_TRUE(b.advance_slot());  // plane dead
  ckpt::Writer w;
  b.save_state(w);

  fabric::MultiPlaneSim c(cfg, gens());
  c.load_state(ckpt::Reader::from_bytes(w.serialize()));
  const auto resumed = c.run();

  EXPECT_EQ(straight.delivered, resumed.delivered);
  EXPECT_EQ(straight.mean_delay_slots, resumed.mean_delay_slots);
  EXPECT_EQ(straight.resteered, resumed.resteered);
  EXPECT_EQ(straight.cross_plane_ooo, resumed.cross_plane_ooo);
  EXPECT_TRUE(resumed.exactly_once_in_order);
}

TEST(CkptResume, TamperedSnapshotNeverLoadsPartially) {
  const auto cfg = small_switch_cfg(false);
  sw::SwitchSim a(cfg, sim::make_uniform(cfg.ports, 0.6, 99));
  for (int i = 0; i < 500; ++i) ASSERT_TRUE(a.advance_slot());
  ckpt::Writer w;
  a.save_state(w);
  std::string bytes = w.serialize();
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0xFF);

  sw::SwitchSim fresh(cfg, sim::make_uniform(cfg.ports, 0.6, 99));
  // Validation fails at open, before any chunk is handed out...
  EXPECT_THROW(fresh.load_state(ckpt::Reader::from_bytes(std::move(bytes))),
               ckpt::Error);
  // ...so the sim is untouched and still runs the pristine trajectory.
  sw::SwitchSim straight(cfg, sim::make_uniform(cfg.ports, 0.6, 99));
  (void)straight.run();
  (void)fresh.run();
  EXPECT_EQ(report_bytes(straight.report()), report_bytes(fresh.report()));
}

// ---- campaign checkpoint/resume -------------------------------------------

exec::CampaignSpec tiny_campaign() {
  exec::CampaignSpec spec;
  spec.name = "ckpt_tiny";
  spec.ports = {16};  // combined plan stalls adapter 12
  spec.schedulers = {sw::SchedulerKind::kFlppr};
  spec.receivers = {2};
  spec.loads = {0.4, 0.8};
  spec.faults = {exec::FaultScenario::kNone, exec::FaultScenario::kCombined};
  spec.warmup_slots = 200;
  spec.measure_slots = 1'000;
  spec.campaign_seed = 0xC4;
  return spec;
}

TEST(CkptCampaign, InFlightJobResumesToIdenticalResult) {
  const auto jobs = tiny_campaign().expand();
  ASSERT_FALSE(jobs.empty());
  const exec::JobSpec job = jobs.back();  // kCombined fault job

  const exec::JobResult straight = exec::run_job(job);

  exec::CheckpointPolicy ck;
  ck.dir = ::testing::TempDir() + "ckpt_inflight";
  std::filesystem::create_directories(ck.dir);
  ck.every = 300;
  std::uint64_t last_step = 0;
  ck.on_checkpoint = [&](const std::string&, std::uint64_t step) {
    last_step = step;
  };
  (void)exec::run_job_checkpointed(job, ck);
  ASSERT_GT(last_step, 0u);  // a state file exists from step last_step

  ck.resume = true;  // restore mid-flight and finish
  const exec::JobResult resumed = exec::run_job_checkpointed(job, ck);

  EXPECT_EQ(straight.metrics, resumed.metrics);
  EXPECT_EQ(report_bytes(straight.report), report_bytes(resumed.report));
}

TEST(CkptCampaign, ResumedCampaignDocumentIsByteIdentical) {
  const auto spec = tiny_campaign();

  exec::RunnerOptions straight_opts;
  straight_opts.threads = 2;
  const std::string want =
      exec::CampaignRunner(straight_opts).run(spec).to_json(2, false);

  const std::string dir = ::testing::TempDir() + "ckpt_campaign";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  exec::RunnerOptions opts;
  opts.threads = 2;
  opts.checkpoint.dir = dir;
  opts.checkpoint.every = 250;
  EXPECT_EQ(exec::CampaignRunner(opts).run(spec).to_json(2, false), want);

  // Simulate a kill: drop one done file entirely and corrupt another,
  // then resume — both jobs re-run, the rest load verbatim.
  std::filesystem::remove(dir + "/job_0.done.ckpt");
  {
    std::ofstream f(dir + "/job_1.done.ckpt",
                    std::ios::binary | std::ios::trunc);
    f << "not a checkpoint";
  }
  opts.checkpoint.resume = true;
  EXPECT_EQ(exec::CampaignRunner(opts).run(spec).to_json(2, false), want);

  std::filesystem::remove_all(dir);
}

TEST(CkptCampaign, DoneFileForOneSpecRejectsAnother) {
  const auto jobs = tiny_campaign().expand();
  ASSERT_GE(jobs.size(), 2u);
  const std::string path = ::testing::TempDir() + "ckpt_done_swap.ckpt";
  exec::write_job_result_file(exec::run_job(jobs[0]), path);
  EXPECT_NO_THROW(exec::read_job_result_file(jobs[0], path));
  exec::JobSpec other = jobs[1];
  other.index = jobs[0].index;  // same slot, different axes
  EXPECT_THROW(exec::read_job_result_file(other, path), ckpt::Error);
  std::remove(path.c_str());
}

// ---- cli path flags -------------------------------------------------------

TEST(CliPath, BooleanLiteralsAreRecognized) {
  for (const char* t : {"true", "false", "1", "0", "yes", "no", "on", "off"})
    EXPECT_TRUE(util::is_boolean_literal(t)) << t;
  for (const char* t : {"./true", "out.json", "", "2", "TRUE", "/tmp/x"})
    EXPECT_FALSE(util::is_boolean_literal(t)) << t;
}

TEST(CliPath, GetPathReturnsValueOrDefault) {
  const char* argv[] = {"prog", "--json=/tmp/out.json"};
  const util::Cli cli(2, argv);
  EXPECT_EQ(cli.get_path("json", ""), "/tmp/out.json");
  EXPECT_EQ(cli.get_path("resume", "fallback"), "fallback");
}

TEST(CliPathDeathTest, BareFlagForPathOptionIsAUsageError) {
  const char* argv[] = {"prog", "--resume"};
  const util::Cli cli(2, argv);
  EXPECT_EXIT((void)cli.get_path("resume", ""),
              ::testing::ExitedWithCode(2), "is not a path");
}

}  // namespace
}  // namespace osmosis
