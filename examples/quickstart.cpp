// Quickstart: build the OSMOSIS demonstrator (64 ports x 40 Gb/s,
// broadcast-and-select SOA crossbar, FLPPR scheduler, dual receivers),
// run it under load, and print what the architecture delivers.
//
//   ./example_quickstart [--load=0.9] [--slots=20000]

#include <iostream>

#include "src/core/osmosis_system.hpp"
#include "src/util/cli.hpp"

using namespace osmosis;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const double load = cli.get_double("load", 0.9);
  const auto slots = static_cast<std::uint64_t>(cli.get_int("slots", 20'000));

  // 1. The demonstrator configuration from the paper's SS V.
  core::OsmosisSystem sys;  // = demonstrator_config()
  const auto& cfg = sys.config();
  std::cout << "OSMOSIS demonstrator: " << cfg.ports << " ports x "
            << cfg.cell.line_rate_gbps << " Gb/s, "
            << cfg.fibers << " fibers x " << cfg.wavelengths
            << " WDM colors, cell cycle " << cfg.cell.cycle_ns() << " ns, "
            << "effective user bandwidth "
            << cfg.cell.user_efficiency() * 100.0 << " %\n";

  // 2. The optical datapath must close its power budget.
  const auto budget = sys.optical_budget();
  std::cout << "optical budget: received " << budget.received_power_dbm
            << " dBm, margin " << budget.margin_db << " dB ("
            << (budget.closes ? "closes" : "DOES NOT CLOSE") << ")\n";

  // 3. Simulate the switch under uniform traffic, with the simulator
  //    double-checking every grant against the SOA gate states.
  std::cout << "\nsimulating " << slots << " cell cycles at " << load * 100
            << " % load...\n";
  const auto r = sys.simulate_uniform(load, /*seed=*/1, slots,
                                      /*validate_optical=*/true);
  std::cout << "  scheduler           " << r.scheduler << "\n"
            << "  throughput          " << r.throughput << " cells/slot/port\n"
            << "  mean delay          " << r.mean_delay << " cycles  ("
            << r.mean_delay * cfg.cell.cycle_ns() << " ns)\n"
            << "  p99 delay           " << r.p99_delay << " cycles\n"
            << "  request-to-grant    " << r.mean_grant_latency
            << " cycles (paper Fig. 6: ~1 at light/moderate load)\n"
            << "  out-of-order        " << r.out_of_order << " (must be 0)\n"
            << "  SOA reconfigurations " << r.crossbar_reconfigs << "\n";

  // 4. Fabric-level view: what this switch builds at machine scale.
  const auto sizing = sys.fabric_sizing();
  std::cout << "\nfabric: " << sizing.to_string() << "\n"
            << "worst-case fabric latency (ASIC stages + 50 m cabling): "
            << sys.fabric_latency_ns() << " ns\n";
  return 0;
}
