// Degraded-operation walkthrough: the §VI.A management view of a switch
// taking field failures. Validates a configuration, injects switching-
// module and broadcast-fiber failures into the gate-accurate crossbar,
// surveys component health (dual-receiver redundancy degrades rather
// than fails), and measures the degraded switch.
//
//   ./example_degraded_operation [--slots=10000]

#include <iostream>

#include "src/core/config.hpp"
#include "src/mgmt/config_check.hpp"
#include "src/mgmt/counters.hpp"
#include "src/mgmt/health.hpp"
#include "src/sw/switch_sim.hpp"
#include "src/util/cli.hpp"

using namespace osmosis;

namespace {

const char* status_name(mgmt::Status s) {
  switch (s) {
    case mgmt::Status::kOk:
      return "OK";
    case mgmt::Status::kDegraded:
      return "DEGRADED";
    case mgmt::Status::kFailed:
      return "FAILED";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto slots = static_cast<std::uint64_t>(cli.get_int("slots", 10'000));

  // 1. Configuration check before bring-up.
  const auto cfg = core::demonstrator_config();
  std::cout << "=== configuration validation ===\n";
  for (const auto& f : mgmt::validate_config(cfg))
    std::cout << "  " << mgmt::to_string(f) << "\n";

  // 2. Healthy system survey.
  phy::BroadcastSelectCrossbar xbar(cfg.crossbar());
  auto healthy = mgmt::survey_crossbar(xbar, 0);
  std::cout << "\n=== health survey (healthy) ===\n  components: "
            << healthy.component_count() << ", system "
            << status_name(healthy.system_status()) << "\n";

  // 3. Failures hit: one switching module dies, then a fiber.
  xbar.fail_module(20, 1);
  auto survey1 = mgmt::survey_crossbar(xbar, 1'000);
  std::cout << "\n=== after module/20/1 failure ===\n  system "
            << status_name(survey1.system_status())
            << " (dual-receiver redundancy holds; egress 20 reachable "
               "through module/20/0)\n";

  xbar.fail_fiber(3);
  auto survey2 = mgmt::survey_crossbar(xbar, 2'000);
  std::cout << "\n=== after broadcast fiber 3 failure ===\n  system "
            << status_name(survey2.system_status()) << " ("
            << survey2.count(mgmt::Status::kFailed)
            << " failed components; inputs 24-31 dark)\n";
  for (const auto& e : survey2.events())
    std::cout << "  event @" << e.time_slot << ": " << e.component << " -> "
              << status_name(e.status) << " " << e.note << "\n";

  // 4. Run the degraded switch and extract performance counters.
  sw::SwitchSimConfig sc;
  sc.ports = cfg.ports;
  sc.sched = cfg.scheduler_config();
  sc.measure_slots = slots;
  sc.validate_optical_path = true;
  sc.failed_receivers = {{20, 1}};
  sc.failed_fibers = {3};
  const auto r = sw::run_uniform(sc, 0.8, 0xDE6);

  mgmt::CounterRegistry counters;
  counters.add("switch.delivered", static_cast<double>(r.delivered));
  counters.add("switch.reconfigurations",
               static_cast<double>(r.crossbar_reconfigs));
  counters.set_gauge("switch.throughput", r.throughput);
  counters.set_gauge("switch.mean_delay_cycles", r.mean_delay);
  counters.set_gauge("switch.max_voq_depth", r.max_voq_depth);

  std::cout << "\n=== degraded run (80 % load on surviving ports) ===\n";
  for (const auto& name : counters.names_with_prefix("switch."))
    std::cout << "  " << name << " = " << counters.value(name) << "\n";
  std::cout << "  out_of_order = " << r.out_of_order << " (still 0)\n"
            << "\nExpected: aggregate throughput ~ 0.8 x 56/64 = 0.70 "
               "(eight dark ports), zero loss, zero reordering.\n";
  return 0;
}
