// Scheduler playground: compare FLPPR against pipelined iSLIP (prior
// art), idealized iSLIP, PIM and TDM on any port count / load / traffic
// pattern from the command line.
//
//   ./example_scheduler_compare [--ports=64] [--load=0.7]
//       [--traffic=uniform|bursty|hotspot] [--receivers=1]
//       [--slots=20000] [--burst=16] [--hot-fraction=0.3]

#include <iostream>
#include <memory>

#include "src/sw/switch_sim.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

using namespace osmosis;

namespace {

std::unique_ptr<sim::TrafficGen> make_traffic(const util::Cli& cli, int ports,
                                              double load) {
  const std::string kind = cli.get("traffic", "uniform");
  const std::uint64_t seed = 0x5C4ED;
  if (kind == "bursty")
    return sim::make_bursty(ports, load, cli.get_double("burst", 16.0), seed);
  if (kind == "hotspot")
    return sim::make_hotspot(ports, load, 0,
                             cli.get_double("hot-fraction", 0.3), seed);
  return sim::make_uniform(ports, load, seed);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int ports = static_cast<int>(cli.get_int("ports", 64));
  const double load = cli.get_double("load", 0.7);
  const int receivers = static_cast<int>(cli.get_int("receivers", 1));
  const auto slots = static_cast<std::uint64_t>(cli.get_int("slots", 20'000));

  std::cout << "scheduler comparison: " << ports << " ports, load " << load
            << ", traffic " << cli.get("traffic", "uniform") << ", "
            << receivers << " receiver(s)\n\n";

  util::Table t({"scheduler", "throughput", "mean delay", "p99 delay",
                 "req-to-grant", "max VOQ"},
                3);
  const sw::SchedulerKind kinds[] = {
      sw::SchedulerKind::kFlppr, sw::SchedulerKind::kPipelinedIslip,
      sw::SchedulerKind::kIslip, sw::SchedulerKind::kPim,
      sw::SchedulerKind::kWfa,   sw::SchedulerKind::kTdm};
  for (const auto kind : kinds) {
    sw::SwitchSimConfig cfg;
    cfg.ports = ports;
    cfg.sched.kind = kind;
    cfg.sched.receivers = receivers;
    cfg.measure_slots = slots;
    sw::SwitchSim sim(cfg, make_traffic(cli, ports, load));
    const auto r = sim.run();
    t.add_row({r.scheduler, r.throughput, r.mean_delay, r.p99_delay,
               r.mean_grant_latency, static_cast<long long>(r.max_voq_depth)});
  }
  t.print(std::cout);

  std::cout << "\nreading the table: FLPPR should match idealized iSLIP on "
               "throughput while granting in ~1 cycle at light load; the "
               "pipelined prior art pays ~log2(" << ports
            << ") cycles of request-to-grant latency; TDM ignores demand "
               "and pays ~N/2.\n";
  return 0;
}
