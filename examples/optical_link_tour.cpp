// Physical-layer tour: walks one 40 Gb/s channel through every optical
// model in the library — the WDM plan, the broadcast-and-select power
// budget and crosstalk, the SOA's NRZ/DPSK operating point (Fig. 10),
// the burst-mode receiver lock, the synchronization tree, the guard-time
// budget it all feeds, and the multi-stage OSNR cascade.
//
//   ./example_optical_link_tour [--channel=3]

#include <iostream>

#include "src/core/config.hpp"
#include "src/phy/burst_rx.hpp"
#include "src/phy/cascade.hpp"
#include "src/phy/crossbar_optical.hpp"
#include "src/phy/soa.hpp"
#include "src/phy/sync.hpp"
#include "src/phy/wdm.hpp"
#include "src/util/cli.hpp"

using namespace osmosis;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int adapter = static_cast<int>(cli.get_int("channel", 3));
  const auto cfg = core::demonstrator_config();

  // 1. Which color and fiber does this adapter use?
  phy::WdmPlan plan;
  const auto& ch = plan.channel_of_adapter(adapter);
  phy::BroadcastSelectCrossbar xbar(cfg.crossbar());
  std::cout << "adapter " << adapter << ": fiber "
            << xbar.fiber_of_input(adapter) << ", color " << ch.index
            << " @ " << ch.frequency_thz << " THz (" << ch.wavelength_nm
            << " nm)\n"
            << "plan: " << plan.describe() << "\n"
            << "  spacing sufficient: "
            << (plan.spacing_sufficient() ? "yes" : "NO")
            << ", fits C-band: " << (plan.fits_c_band() ? "yes" : "NO")
            << "\n";

  // 2. Power budget and crosstalk through the crossbar.
  const auto budget = xbar.power_budget();
  std::cout << "\ncrossbar path: split loss " << budget.split_loss_db
            << " dB, received " << budget.received_power_dbm
            << " dBm, margin " << budget.margin_db << " dB ("
            << (budget.closes ? "closes" : "DOES NOT CLOSE") << ")\n"
            << "worst-case signal-to-crosstalk: "
            << xbar.signal_to_crosstalk_db() << " dB ("
            << (xbar.crosstalk_acceptable() ? "acceptable" : "TOO LOW")
            << ")\n";

  // 3. SOA operating point: how hard can the gates be driven?
  phy::SoaGainModel soa;
  std::cout << "\nSOA loading at 1 dB OSNR penalty (BER 1e-10):\n"
            << "  NRZ : "
            << soa.input_power_at_penalty(1.0, phy::Modulation::kNrz, 1e-10)
            << " dBm\n"
            << "  DPSK: "
            << soa.input_power_at_penalty(1.0, phy::Modulation::kDpsk, 1e-10)
            << " dBm  (+"
            << soa.dpsk_loading_improvement_db(1.0, 1e-10)
            << " dB, the Fig. 10 result)\n";

  // 4. Burst-mode receive and synchronization feed the guard budget.
  const auto rx = phy::analyze_burst_rx(phy::BurstRxParams{});
  phy::SyncTreeParams tree;
  tree.levels = phy::sync_levels_needed(cfg.ports, tree.fanout);
  const auto sync = phy::analyze_sync_tree(tree);
  std::cout << "\nburst-mode receiver: locks in " << rx.lock_bits
            << " bits (" << rx.lock_time_ns << " ns), tolerates runs of "
            << rx.max_run_length_bits << " bits\n"
            << "sync tree: " << tree.levels << " levels cover "
            << sync.adapters_covered << " adapters, arrival window "
            << sync.arrival_window_ns << " ns\n"
            << "guard budget: settle " << cfg.cell.guard.switch_settle_ns
            << " + reacquire " << cfg.cell.guard.phase_reacquisition_ns
            << " + jitter " << cfg.cell.guard.arrival_jitter_ns << " = "
            << cfg.cell.guard.total_ns() << " ns of the "
            << cfg.cell.cycle_ns() << " ns cycle -> "
            << cfg.cell.user_efficiency() * 100.0
            << " % effective user bandwidth\n";

  // 5. How deep could this cascade?
  const phy::CascadeStage stage;
  std::cout << "\nstage cascade: OSNR after 3 stages = "
            << phy::cascade_osnr_db(stage, 3) << " dB; max depth at BER "
               "1e-12 with 1 dB allowance: NRZ "
            << phy::max_cascade_stages(stage, 1e-12, phy::Modulation::kNrz)
            << " stages, DPSK "
            << phy::max_cascade_stages(stage, 1e-12, phy::Modulation::kDpsk)
            << " stages\n";
  return 0;
}
