// Reliable 40 Gb/s optical link example: the §IV.C two-tier scheme end
// to end. Random cells are FEC-encoded with the (272,256) GF(2^8) code,
// pushed through a noisy channel (optionally bursty), decoded — and the
// detected-uncorrectable residue is repaired by go-back-N hop-by-hop
// retransmission. Prints the measured waterfall next to the analytic
// one.
//
//   ./example_fec_reliable_link [--ber=1e-4] [--blocks=50000] [--bursty]

#include <cstdio>
#include <iostream>

#include "src/arq/go_back_n.hpp"
#include "src/arq/residual.hpp"
#include "src/fec/channel.hpp"
#include "src/sim/rng.hpp"
#include "src/util/cli.hpp"

using namespace osmosis;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const double ber = cli.get_double("ber", 1e-4);
  const auto blocks = static_cast<std::uint64_t>(
      cli.get_int("blocks", 50'000));
  const bool bursty = cli.get_bool("bursty", false);
  sim::Rng rng(0xFEC);

  std::cout << "reliable link demo: (272,256) FEC + go-back-N over a "
            << (bursty ? "bursty (Gilbert-Elliott)" : "memoryless")
            << " channel at raw BER " << ber << "\n\n";

  // --- tier 1: FEC over the noisy channel -----------------------------------
  fec::CodecStats stats;
  if (bursty) {
    fec::GilbertElliottChannel::Params p;
    p.good_ber = ber;
    p.bad_ber = 1e-2;
    p.mean_good_blocks = 5'000;
    p.mean_bad_blocks = 5;
    fec::GilbertElliottChannel channel(p, rng.split());
    for (std::uint64_t i = 0; i < blocks; ++i) {
      fec::Hamming272::DataBlock data{};
      for (auto& b : data) b = static_cast<std::uint8_t>(rng.next() & 0xFF);
      const auto clean = fec::Hamming272::encode(data);
      auto noisy = clean;
      channel.transmit(noisy);
      const auto res = fec::Hamming272::decode(noisy);
      ++stats.blocks;
      if (res.status == fec::Hamming272::DecodeStatus::kDetected)
        ++stats.detected;
      else if (noisy == clean)
        res.status == fec::Hamming272::DecodeStatus::kClean ? ++stats.clean
                                                            : ++stats.corrected;
      else
        ++stats.miscorrected;
    }
  } else {
    stats = fec::run_bsc(ber, blocks, rng);
  }

  std::printf("FEC tier over %llu blocks:\n",
              static_cast<unsigned long long>(stats.blocks));
  std::printf("  clean      %10llu\n",
              static_cast<unsigned long long>(stats.clean));
  std::printf("  corrected  %10llu   (single-symbol repairs)\n",
              static_cast<unsigned long long>(stats.corrected));
  std::printf("  detected   %10llu   (handed to retransmission)\n",
              static_cast<unsigned long long>(stats.detected));
  std::printf("  miscorrect %10llu   (would escape; rate %.2e)\n",
              static_cast<unsigned long long>(stats.miscorrected),
              stats.miscorrection_rate());

  // --- tier 2: retransmission repairs the detected residue ------------------
  arq::GoBackNParams p;
  p.window = 32;
  p.link_delay_slots = 5;  // ~25 m of fiber at one cell per 51.2 ns
  p.ack_delay_slots = 5;
  p.detected_loss_prob = stats.detected_rate();
  p.undetected_error_prob = stats.miscorrection_rate();
  arq::GoBackNLink link(p, rng.split());
  const auto s = link.run_saturated(100'000);
  std::printf("\nretransmission tier (go-back-N, window %d, RTT %d cycles):\n",
              p.window, p.rtt_slots());
  std::printf("  goodput               %.4f of line rate\n", s.goodput());
  std::printf("  retransmission overhead %.5f per delivered cell\n",
              s.retransmission_overhead());
  std::printf("  residual errors       %llu of %llu delivered\n",
              static_cast<unsigned long long>(s.residual_errors),
              static_cast<unsigned long long>(s.delivered));

  // --- the paper's envelope --------------------------------------------------
  std::cout << "\nanalytic waterfall at the paper's raw BERs (using the "
               "d=3 aliasing fraction ~0.12 for the ARQ tier):\n";
  for (const auto& tier : arq::reliability_sweep({1e-12, 1e-10}, 0.12)) {
    std::printf("  raw %.0e -> post-FEC %.2e -> post-ARQ %.2e\n",
                tier.raw_ber, tier.post_fec_ber, tier.post_arq_ber);
  }
  std::cout << "(paper: raw 1e-10..1e-12 -> better than 1e-17 -> better "
               "than 1e-21; the 1e-21 tier corresponds to the 1e-12 end "
               "of the raw envelope)\n";
  return 0;
}
