// Telemetry tour: run the demonstrator switch with cell-lifecycle
// tracing on, decompose the mean delay into its scheduler legs
// (request->grant, grant->transmit, transmit->deliver), compare the
// measured path against the SS VI.B hardware latency budget, and emit
// the structured RunReport JSON that the benchmarks also produce.
//
//   ./example_telemetry_tour [--load=0.7] [--slots=20000] [--sample=4]

#include <cstdlib>
#include <iostream>

#include "src/core/config.hpp"
#include "src/core/latency_budget.hpp"
#include "src/sim/traffic.hpp"
#include "src/sw/switch_sim.hpp"
#include "src/telemetry/json.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

using namespace osmosis;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const double load = cli.get_double("load", 0.7);
  const auto slots = static_cast<std::uint64_t>(cli.get_int("slots", 20'000));
  const int sample = cli.get_int("sample", 4);

  // 1. A demonstrator-sized switch with tracing enabled. sample_every=1
  //    would time every cell; 1-in-N keeps the overhead negligible while
  //    the stage means stay unbiased under stationary load.
  sw::SwitchSimConfig cfg;
  cfg.ports = 64;
  cfg.warmup_slots = 2'000;
  cfg.measure_slots = slots;
  cfg.telemetry.enabled = true;
  cfg.telemetry.sample_every = sample;
  sw::SwitchSim sim(cfg, sim::make_uniform(cfg.ports, load, /*seed=*/1));
  const auto r = sim.run();

  std::cout << "switch: " << cfg.ports << " ports, load " << load * 100
            << " %, " << slots << " measured cycles, sampling 1-in-"
            << sample << " cells\n\n";

  // 2. Stage decomposition. The three legs telescope, so their means sum
  //    exactly to the end-to-end mean delay.
  const auto& st = sim.telemetry().stages();
  const double cycle_ns = core::demonstrator_config().cell.cycle_ns();
  util::Table t({"stage", "mean [cycles]", "p99", "max", "mean [ns]"});
  t.set_title("cell lifecycle decomposition (" +
              std::to_string(st.count()) + " sampled cells)");
  const auto row = [&](const char* name, const sim::Histogram& h) {
    t.add_row({std::string(name), h.mean(), h.p99(), h.max(),
               h.mean() * cycle_ns});
  };
  row("request -> grant", st.request_to_grant());
  row("grant -> transmit", st.grant_to_transmit());
  row("transmit -> deliver", st.transmit_to_deliver());
  row("end to end", st.end_to_end());
  t.print(std::cout);
  std::cout << "decomposition mean " << st.decomposition_mean()
            << " == end-to-end mean " << st.end_to_end().mean()
            << " (telescoping sum)\n\n";

  // 3. The measured request->grant leg vs the SS VI.B hardware budget.
  //    The simulator counts scheduler cycles; the demonstrator hardware
  //    adds adapter/FEC/serdes items on top, totalling ~1200 ns in FPGAs.
  const auto budget = core::demonstrator_latency_budget();
  std::cout << "measured request->grant: "
            << st.request_to_grant().mean() * cycle_ns
            << " ns; SS VI.B control-path budget: " << budget.fpga_total_ns()
            << " ns as built (FPGA), " << budget.asic_total_ns()
            << " ns after ASIC mapping\n\n";

  // 4. The structured export every benchmark emits. Self-check: the
  //    document must re-parse and carry the schema marker.
  const auto report = sim.report();
  const std::string json = report.to_json();
  const auto doc = telemetry::json_parse(json);
  if (!doc.has("schema") ||
      doc.at("schema").str != telemetry::RunReport::kSchema) {
    std::cerr << "RunReport JSON failed its self-check\n";
    return EXIT_FAILURE;
  }
  std::cout << "RunReport (" << json.size() << " bytes, schema "
            << doc.at("schema").str << "):\n" << json << "\n";

  return r.out_of_order == 0 ? EXIT_SUCCESS : EXIT_FAILURE;
}
