// Machine-scale example: the 2048-port HPC interconnect of Table 1,
// built as a two-level (three-stage) fat tree of 64-port OSMOSIS
// switches. Prints the full inventory / power / latency roll-up and then
// runs a scaled-down cell-accurate fabric simulation (same topology
// shape, radix 16 => 128 hosts) to demonstrate losslessness, ordering
// and the flow-control behaviour at machine-room cable delays.
//
//   ./example_fabric_2048 [--radix=16] [--load=0.8] [--slots=15000]

#include <iostream>

#include "src/core/osmosis_system.hpp"
#include "src/fabric/fabric_sim.hpp"
#include "src/fabric/placement.hpp"
#include "src/power/power_model.hpp"
#include "src/util/cli.hpp"
#include "src/util/units.hpp"

using namespace osmosis;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);

  // ---- the real machine, analytically --------------------------------------
  core::OsmosisSystem sys;
  const auto sizing = sys.fabric_sizing();
  std::cout << "=== 2048-port OSMOSIS fabric ===\n"
            << sizing.to_string() << "\n"
            << "aggregate bandwidth: "
            << sizing.endpoint_ports * sys.config().cell.line_rate_gbps /
                   1000.0
            << " Tb/s raw\n"
            << "worst-case latency: " << sys.fabric_latency_ns()
            << " ns (ASIC stages + "
            << util::fiber_delay_ns(sys.config().machine_diameter_m)
            << " ns cabling)\n";

  const auto pw =
      power::fabric_power(power::osmosis_profile(), 2048, 320.0, 256.0);
  std::cout << "power: " << pw.total_power_w / 1000.0 << " kW total, "
            << pw.power_per_port_w << " W/port at 320 Gb/s ports\n";

  // The input buffers are sized by the deterministic FC RTT (SS IV.B).
  const double trunk_ns =
      util::fiber_delay_ns(sys.config().machine_diameter_m / 2.0);
  const int buffer = fabric::buffer_cells_for_rtt(
      2.0 * trunk_ns, sys.config().cell.cycle_ns());
  std::cout << "per-port input buffer for " << trunk_ns
            << " ns trunks: " << buffer << " cells\n";

  // ---- scaled-down cell-accurate simulation --------------------------------
  fabric::FabricSimConfig cfg;
  cfg.radix = static_cast<int>(cli.get_int("radix", 16));
  cfg.trunk_cable_slots = 5;  // ~ trunk_ns / cycle, scaled down
  cfg.buffer_cells = fabric::buffer_cells_for_rtt(
      2.0 * cfg.trunk_cable_slots, 1.0, 4);
  cfg.measure_slots = static_cast<std::uint64_t>(cli.get_int("slots", 15'000));
  const double load = cli.get_double("load", 0.8);

  std::cout << "\n=== scaled-down cell-accurate simulation ===\n"
            << "radix " << cfg.radix << " => " << cfg.radix * cfg.radix / 2
            << " hosts, trunk " << cfg.trunk_cable_slots
            << " cycles, buffers " << cfg.buffer_cells << " cells, load "
            << load << "\n";
  const auto r = fabric::run_fabric_uniform(cfg, load, 2048);
  std::cout << "  throughput       " << r.throughput << " cells/slot/host\n"
            << "  mean delay       " << r.mean_delay_slots << " cycles ("
            << r.mean_delay_slots * sys.config().cell.cycle_ns() << " ns at "
            << "demonstrator cycle time)\n"
            << "  p99 delay        " << r.p99_delay_slots << " cycles\n"
            << "  max buffer use   leaf " << r.max_leaf_input_occupancy
            << " / spine " << r.max_spine_input_occupancy << " of "
            << cfg.buffer_cells << " cells\n"
            << "  overflows        " << r.buffer_overflows
            << " (lossless => 0)\n"
            << "  out-of-order     " << r.out_of_order << " (must be 0)\n";
  return 0;
}
