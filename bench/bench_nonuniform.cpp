// Non-uniform and bursty traffic study — the "various traffic
// conditions" under which §V says the scheduler needs its log2(N)
// iterations, evaluated with the same workload families the
// input-queued-switch literature of the paper's era used ([17], [22]):
// uniform Bernoulli, bursty on/off, hotspot, and permutation
// (contention-free floor). FLPPR vs idealized iSLIP vs the dual-receiver
// architecture.

#include <iostream>
#include <memory>

#include "src/sw/switch_sim.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

using namespace osmosis;

namespace {

sw::SwitchSimResult run(sw::SchedulerKind kind, int receivers,
                        std::unique_ptr<sim::TrafficGen> traffic,
                        std::uint64_t slots) {
  sw::SwitchSimConfig cfg;
  cfg.ports = 64;
  cfg.sched.kind = kind;
  cfg.sched.receivers = receivers;
  cfg.measure_slots = slots;
  sw::SwitchSim sim(cfg, std::move(traffic));
  return sim.run();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto slots = static_cast<std::uint64_t>(cli.get_int("slots", 15'000));
  const std::uint64_t seed = 0x40F;

  std::cout << "Non-uniform traffic study, 64-port switch (delays in cell "
               "cycles, load 0.6 unless noted)\n\n";

  struct WorkloadRow {
    const char* name;
    std::unique_ptr<sim::TrafficGen> (*make)(std::uint64_t);
  };
  auto make_uniform_w = [](std::uint64_t s) {
    return sim::make_uniform(64, 0.6, s);
  };
  auto make_bursty_w = [](std::uint64_t s) {
    return sim::make_bursty(64, 0.6, 16.0, s);
  };
  // Hotspot sized to keep the hot output subcritical (64 sources x 0.5
  // x (0.01 + 0.99/64) ~ 0.81 of the hot line) so steady-state delays
  // are meaningful; saturating hotspots are the fabric-level tree-
  // saturation study of bench_fig34.
  auto make_hotspot_w = [](std::uint64_t s) {
    return sim::make_hotspot(64, 0.5, 0, 0.01, s);
  };
  auto make_diag_w = [](std::uint64_t s) -> std::unique_ptr<sim::TrafficGen> {
    return std::make_unique<sim::Permutation>(
        sim::Permutation::diagonal(64, 0.6, 7, sim::Rng(s)));
  };

  const WorkloadRow rows[] = {
      {"uniform", +make_uniform_w},
      {"bursty (mean 16)", +make_bursty_w},
      {"hotspot (hot line @ 81%)", +make_hotspot_w},
      {"diagonal permutation", +make_diag_w},
  };

  util::Table t({"workload", "scheduler", "throughput", "mean delay",
                 "p99 delay", "max VOQ"},
                3);
  for (const auto& w : rows) {
    struct Config {
      const char* label;
      sw::SchedulerKind kind;
      int receivers;
    };
    for (const auto& c :
         {Config{"FLPPR single-rx", sw::SchedulerKind::kFlppr, 1},
          Config{"FLPPR dual-rx", sw::SchedulerKind::kFlppr, 2},
          Config{"iSLIP(6)", sw::SchedulerKind::kIslip, 1}}) {
      const auto r = run(c.kind, c.receivers, w.make(seed), slots);
      t.add_row({std::string(w.name), std::string(c.label), r.throughput,
                 r.mean_delay, r.p99_delay,
                 static_cast<long long>(r.max_voq_depth)});
    }
  }
  t.print(std::cout);

  std::cout
      << "\nShapes: the diagonal permutation is the contention-free floor "
         "(~1 cycle); bursty traffic multiplies delay for every scheduler "
         "(burst-length queueing) but dual receivers absorb much of it; "
         "the modest hotspot loads one output's VOQs without collapsing "
         "the rest of the switch (VOQ isolation — the reason Table 1 can "
         "demand high throughput under non-uniform traffic).\n";
  return 0;
}
