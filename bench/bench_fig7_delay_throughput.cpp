// Fig. 7 — OSMOSIS delay versus throughput: FLPPR with a single receiver
// vs the dual-receiver architecture (two paths from each input to every
// output). The paper's schematic shows the dual-receiver delay staying
// nearly flat over a wide load range and only rising at high loads.
// Includes a receiver-count ablation (R = 1, 2, 4) and a bursty-traffic
// variant, matching the OMNeT++ study the authors describe in §V.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>

#include "src/sw/switch_sim.hpp"
#include "src/telemetry/run_report.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

using namespace osmosis;

namespace {

sw::SwitchSimConfig make_config(int receivers, std::uint64_t slots) {
  sw::SwitchSimConfig cfg;
  cfg.ports = 64;
  cfg.sched.kind = sw::SchedulerKind::kFlppr;
  cfg.sched.receivers = receivers;
  cfg.measure_slots = slots;
  return cfg;
}

sw::SwitchSimResult run(int receivers, double load, std::uint64_t slots,
                        double mean_burst) {
  auto cfg = make_config(receivers, slots);
  std::unique_ptr<sim::TrafficGen> traffic =
      mean_burst > 1.0 ? sim::make_bursty(cfg.ports, load, mean_burst, 0x717)
                       : sim::make_uniform(cfg.ports, load, 0x717);
  sw::SwitchSim s(cfg, std::move(traffic));
  return s.run();
}

// Structured companion to the tables: the dual-receiver design point at
// moderate load, traced and exported as RunReport JSON (stdout, or a
// file with --json=<path>).
void emit_report(const util::Cli& cli, std::uint64_t slots) {
  auto cfg = make_config(/*receivers=*/2, slots);
  cfg.telemetry.enabled = true;
  cfg.telemetry.sample_every = 4;
  sw::SwitchSim sim(cfg, sim::make_uniform(cfg.ports, 0.7, 0x717));
  sim.run();
  auto report = sim.report();
  report.info["figure"] = "fig7";
  const std::string json = report.to_json();
  if (cli.has("json")) {
    const std::string path = cli.get("json", "");
    std::ofstream out(path);
    if (!(out << json << "\n")) {
      std::cerr << "error: cannot write RunReport to " << path << "\n";
      std::exit(EXIT_FAILURE);
    }
    std::cout << "\nRunReport written to " << path << "\n";
  } else {
    std::cout << "\nRunReport (dual receiver at load 0.7):\n" << json << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto slots = static_cast<std::uint64_t>(cli.get_int("slots", 20'000));

  std::cout << "Fig. 7 reproduction: delay vs throughput, 64-port FLPPR "
               "switch (51.2 ns cell cycles)\n"
            << "(paper: the dual-receiver delay is ~constant over a large "
               "load range, rising only near saturation)\n\n";

  util::Table t({"offered load", "single-rx delay", "dual-rx delay",
                 "quad-rx delay", "single-rx thr", "dual-rx thr"},
                2);
  t.set_title("mean delay [cell cycles], uniform Bernoulli");
  for (double load : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.85, 0.9,
                      0.95, 0.99}) {
    const auto r1 = run(1, load, slots, 0.0);
    const auto r2 = run(2, load, slots, 0.0);
    const auto r4 = run(4, load, slots, 0.0);
    t.add_row({load, r1.mean_delay, r2.mean_delay, r4.mean_delay,
               r1.throughput, r2.throughput});
  }
  t.print(std::cout);

  std::cout << "\nBursty traffic (on/off, mean burst 16 cells):\n\n";
  util::Table b({"offered load", "single-rx delay", "dual-rx delay"}, 2);
  for (double load : {0.2, 0.4, 0.6, 0.8, 0.9}) {
    const auto r1 = run(1, load, slots, 16.0);
    const auto r2 = run(2, load, slots, 16.0);
    b.add_row({load, r1.mean_delay, r2.mean_delay});
  }
  b.print(std::cout);

  emit_report(cli, slots);
  return 0;
}
