// Fig. 7 — OSMOSIS delay versus throughput: FLPPR with a single receiver
// vs the dual-receiver architecture (two paths from each input to every
// output). The paper's schematic shows the dual-receiver delay staying
// nearly flat over a wide load range and only rising at high loads.
// Includes a receiver-count ablation (R = 1, 2, 4) and a bursty-traffic
// variant, matching the OMNeT++ study the authors describe in §V.
//
// The sweep grids run through the exec::CampaignRunner: --threads=N
// fans the (receivers x load) grid out over N workers (default: all
// hardware threads) with per-job seeds derived from (campaign seed, job
// index), so any thread count produces identical per-point numbers.
// --loads=a,b,c overrides the load axis; --json=<path> still emits the
// single-run RunReport companion.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>

#include "src/exec/campaign_runner.hpp"
#include "src/sw/switch_sim.hpp"
#include "src/telemetry/run_report.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

using namespace osmosis;

namespace {

exec::CampaignSpec base_spec(const util::Cli& cli,
                             std::vector<double> default_loads) {
  exec::CampaignSpec spec;
  spec.ports = {64};
  spec.loads = cli.get_doubles("loads", std::move(default_loads));
  spec.warmup_slots = 2'000;
  spec.measure_slots =
      static_cast<std::uint64_t>(cli.get_int("slots", 20'000));
  spec.campaign_seed = static_cast<std::uint64_t>(cli.get_int("seed", 0x717));
  return spec;
}

double metric(const exec::CampaignResult& result, int receivers, double load,
              const char* name) {
  const exec::JobResult* j =
      result.find([&](const exec::JobSpec& s) {
        return s.receivers == receivers && s.load == load;
      });
  return j && j->ok ? j->metrics.at(name) : 0.0;
}

// Structured companion to the tables: the dual-receiver design point at
// moderate load, traced and exported as RunReport JSON (stdout, or a
// file with --json=<path>).
void emit_report(const util::Cli& cli, std::uint64_t slots) {
  sw::SwitchSimConfig cfg;
  cfg.ports = 64;
  cfg.sched.kind = sw::SchedulerKind::kFlppr;
  cfg.sched.receivers = 2;
  cfg.measure_slots = slots;
  cfg.telemetry.enabled = true;
  cfg.telemetry.sample_every = 4;
  sw::SwitchSim sim(cfg, sim::make_uniform(cfg.ports, 0.7, 0x717));
  sim.run();
  auto report = sim.report();
  report.info["figure"] = "fig7";
  const std::string json = report.to_json();
  if (cli.has("json")) {
    const std::string path = cli.get_path("json", "");
    std::ofstream out(path);
    if (!(out << json << "\n")) {
      std::cerr << "error: cannot write RunReport to " << path << "\n";
      std::exit(EXIT_FAILURE);
    }
    std::cout << "\nRunReport written to " << path << "\n";
  } else {
    std::cout << "\nRunReport (dual receiver at load 0.7):\n" << json << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto slots = static_cast<std::uint64_t>(cli.get_int("slots", 20'000));

  exec::RunnerOptions opts;
  opts.threads = static_cast<unsigned>(cli.get_int("threads", 0));
  exec::CampaignRunner runner(opts);

  std::cout << "Fig. 7 reproduction: delay vs throughput, 64-port FLPPR "
               "switch (51.2 ns cell cycles)\n"
            << "(paper: the dual-receiver delay is ~constant over a large "
               "load range, rising only near saturation)\n\n";

  // Uniform grid: receivers x loads, one campaign.
  exec::CampaignSpec uniform =
      base_spec(cli, {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.85, 0.9,
                      0.95, 0.99});
  uniform.name = "fig7_uniform";
  uniform.receivers = {1, 2, 4};
  const exec::CampaignResult uni = runner.run(uniform);

  util::Table t({"offered load", "single-rx delay", "dual-rx delay",
                 "quad-rx delay", "single-rx thr", "dual-rx thr"},
                2);
  t.set_title("mean delay [cell cycles], uniform Bernoulli");
  for (double load : uniform.loads) {
    t.add_row({load, metric(uni, 1, load, "mean_delay"),
               metric(uni, 2, load, "mean_delay"),
               metric(uni, 4, load, "mean_delay"),
               metric(uni, 1, load, "throughput"),
               metric(uni, 2, load, "throughput")});
  }
  t.print(std::cout);

  // Bursty grid: its own campaign so the seed stream stays independent
  // of the uniform grid's shape.
  exec::CampaignSpec bursty = base_spec(cli, {0.2, 0.4, 0.6, 0.8, 0.9});
  bursty.name = "fig7_bursty";
  bursty.receivers = {1, 2};
  bursty.traffics = {exec::TrafficKind::kBursty};
  bursty.mean_burst = 16.0;
  const exec::CampaignResult bur = runner.run(bursty);

  std::cout << "\nBursty traffic (on/off, mean burst 16 cells):\n\n";
  util::Table b({"offered load", "single-rx delay", "dual-rx delay"}, 2);
  for (double load : bursty.loads) {
    b.add_row({load, metric(bur, 1, load, "mean_delay"),
               metric(bur, 2, load, "mean_delay")});
  }
  b.print(std::cout);

  std::cout << "\n(" << uni.jobs.size() + bur.jobs.size() << " jobs on "
            << uni.threads_used << " threads, "
            << uni.wall_ms + bur.wall_ms << " ms wall)\n";

  emit_report(cli, slots);
  return 0;
}
