// Fig. 7 — OSMOSIS delay versus throughput: FLPPR with a single receiver
// vs the dual-receiver architecture (two paths from each input to every
// output). The paper's schematic shows the dual-receiver delay staying
// nearly flat over a wide load range and only rising at high loads.
// Includes a receiver-count ablation (R = 1, 2, 4) and a bursty-traffic
// variant, matching the OMNeT++ study the authors describe in §V.

#include <iostream>
#include <memory>

#include "src/sw/switch_sim.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

using namespace osmosis;

namespace {

sw::SwitchSimResult run(int receivers, double load, std::uint64_t slots,
                        double mean_burst) {
  sw::SwitchSimConfig cfg;
  cfg.ports = 64;
  cfg.sched.kind = sw::SchedulerKind::kFlppr;
  cfg.sched.receivers = receivers;
  cfg.measure_slots = slots;
  std::unique_ptr<sim::TrafficGen> traffic =
      mean_burst > 1.0 ? sim::make_bursty(cfg.ports, load, mean_burst, 0x717)
                       : sim::make_uniform(cfg.ports, load, 0x717);
  sw::SwitchSim s(cfg, std::move(traffic));
  return s.run();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto slots = static_cast<std::uint64_t>(cli.get_int("slots", 20'000));

  std::cout << "Fig. 7 reproduction: delay vs throughput, 64-port FLPPR "
               "switch (51.2 ns cell cycles)\n"
            << "(paper: the dual-receiver delay is ~constant over a large "
               "load range, rising only near saturation)\n\n";

  util::Table t({"offered load", "single-rx delay", "dual-rx delay",
                 "quad-rx delay", "single-rx thr", "dual-rx thr"},
                2);
  t.set_title("mean delay [cell cycles], uniform Bernoulli");
  for (double load : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.85, 0.9,
                      0.95, 0.99}) {
    const auto r1 = run(1, load, slots, 0.0);
    const auto r2 = run(2, load, slots, 0.0);
    const auto r4 = run(4, load, slots, 0.0);
    t.add_row({load, r1.mean_delay, r2.mean_delay, r4.mean_delay,
               r1.throughput, r2.throughput});
  }
  t.print(std::cout);

  std::cout << "\nBursty traffic (on/off, mean burst 16 cells):\n\n";
  util::Table b({"offered load", "single-rx delay", "dual-rx delay"}, 2);
  for (double load : {0.2, 0.4, 0.6, 0.8, 0.9}) {
    const auto r1 = run(1, load, slots, 16.0);
    const auto r2 = run(2, load, slots, 16.0);
    b.add_row({load, r1.mean_delay, r2.mean_delay});
  }
  b.print(std::cout);
  return 0;
}
