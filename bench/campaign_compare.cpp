// Perf-regression gate: diffs two osmosis.campaign.v1 documents and
// exits non-zero when the candidate regresses beyond tolerance on any
// gated metric (throughput down, latency up), fails a job the baseline
// completed, or dropped a baseline job entirely.
//
//   campaign_compare <baseline.json> <candidate.json>
//                    [--tolerance=0.02] [--latency-slack=0.5]
//
// scripts/check.sh runs this against the committed
// bench/baselines/campaign_smoke.json after every build.

#include <fstream>
#include <iostream>
#include <sstream>

#include "src/exec/campaign_compare.hpp"
#include "src/util/cli.hpp"

using namespace osmosis;

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot read " << path << "\n";
    std::exit(2);
  }
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  if (cli.positional().size() != 2) {
    std::cerr << "usage: campaign_compare <baseline.json> <candidate.json> "
                 "[--tolerance=0.02] [--latency-slack=0.5]\n";
    return 2;
  }

  exec::CompareOptions options;
  options.tolerance = cli.get_double("tolerance", options.tolerance);
  options.latency_slack =
      cli.get_double("latency-slack", options.latency_slack);

  const exec::CompareReport report =
      exec::compare_campaigns(slurp(cli.positional()[0]),
                              slurp(cli.positional()[1]), options);
  std::cout << exec::describe(report);
  return report.ok() ? 0 : 1;
}
