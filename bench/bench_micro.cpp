// Google-benchmark microbenchmarks for the library's hot paths: the
// schedulers' per-cycle arbitration (which in hardware must fit in a
// 51.2 ns cell cycle), FEC encode/decode throughput (which must keep up
// with a 40 Gb/s line), GF(2^8) arithmetic, and the kernel primitives.

#include <benchmark/benchmark.h>

#include "src/fec/gf256.hpp"
#include "src/fec/hamming272.hpp"
#include "src/prof/profiler.hpp"
#include "src/sim/event_queue.hpp"
#include "src/sim/rng.hpp"
#include "src/sim/traffic.hpp"
#include "src/sw/portset.hpp"
#include "src/sw/scheduler.hpp"
#include "src/sw/switch_sim.hpp"
#include "src/telemetry/trace.hpp"

using namespace osmosis;

namespace {

void BM_SchedulerTick(benchmark::State& state, sw::SchedulerKind kind) {
  sw::SchedulerConfig cfg;
  cfg.kind = kind;
  cfg.ports = static_cast<int>(state.range(0));
  cfg.receivers = 2;
  auto sched = sw::make_scheduler(cfg);
  sim::Rng rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    for (int in = 0; in < cfg.ports; ++in)
      if (rng.bernoulli(0.8))
        sched->request(in, static_cast<int>(rng.uniform_int(
                               static_cast<std::uint64_t>(cfg.ports))));
    state.ResumeTiming();
    benchmark::DoNotOptimize(sched->tick());
  }
}

void BM_FlpprTick(benchmark::State& state) {
  BM_SchedulerTick(state, sw::SchedulerKind::kFlppr);
}
void BM_PipelinedIslipTick(benchmark::State& state) {
  BM_SchedulerTick(state, sw::SchedulerKind::kPipelinedIslip);
}
void BM_IslipTick(benchmark::State& state) {
  BM_SchedulerTick(state, sw::SchedulerKind::kIslip);
}

void BM_FecEncode(benchmark::State& state) {
  sim::Rng rng(2);
  fec::Hamming272::DataBlock data;
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next() & 0xFF);
  for (auto _ : state) benchmark::DoNotOptimize(fec::Hamming272::encode(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}

void BM_FecDecodeClean(benchmark::State& state) {
  sim::Rng rng(3);
  fec::Hamming272::DataBlock data;
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next() & 0xFF);
  auto cw = fec::Hamming272::encode(data);
  for (auto _ : state) benchmark::DoNotOptimize(fec::Hamming272::decode(cw));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}

void BM_FecDecodeWithError(benchmark::State& state) {
  sim::Rng rng(4);
  fec::Hamming272::DataBlock data;
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next() & 0xFF);
  const auto clean = fec::Hamming272::encode(data);
  int bit = 0;
  for (auto _ : state) {
    auto cw = clean;
    fec::Hamming272::flip_bit(cw, bit);
    bit = (bit + 37) % fec::Hamming272::kCodeBits;
    benchmark::DoNotOptimize(fec::Hamming272::decode(cw));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}

void BM_GfMul(benchmark::State& state) {
  std::uint8_t a = 3, b = 7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fec::Gf256::mul(a, b));
    a += 1;
    b += 3;
  }
}

void BM_EventQueueScheduleFire(benchmark::State& state) {
  sim::EventQueue q;
  for (auto _ : state) {
    q.schedule_in(1.0, [] {});
    q.step();
  }
}

void BM_PortSetNextCircular(benchmark::State& state) {
  sw::PortSet s(static_cast<int>(state.range(0)));
  s.set(static_cast<int>(state.range(0)) - 1);
  int from = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.next_circular(from));
    from = (from + 7) % static_cast<int>(state.range(0));
  }
}

void BM_Rng(benchmark::State& state) {
  sim::Rng rng(5);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}

// Whole-switch simulation with telemetry off (the default) vs tracing
// every cell. Arg = sample_every; 0 = telemetry disabled entirely. The
// off/disabled pair bounds the cost of having the hooks compiled in.
void BM_SwitchSimRun(benchmark::State& state) {
  const int sample_every = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sw::SwitchSimConfig cfg;
    cfg.ports = 16;
    cfg.warmup_slots = 100;
    cfg.measure_slots = 1'000;
    cfg.telemetry.enabled = sample_every > 0;
    cfg.telemetry.sample_every = sample_every > 0 ? sample_every : 1;
    sw::SwitchSim sim(cfg, sim::make_uniform(cfg.ports, 0.6, 7));
    benchmark::DoNotOptimize(sim.run());
  }
}

// Cost of one OSMOSIS_PROF_SCOPE with the profiler disabled (the
// steady state in every hot loop — one relaxed atomic load) and
// enabled (two clock reads plus a thread-local accumulate). The
// disabled number backs the <2%-per-slot bound schema_check --micro
// asserts against BM_SwitchSimRun/0.
void BM_ProfScopeDisabled(benchmark::State& state) {
  prof::Profiler::instance().disable();
  for (auto _ : state) {
    OSMOSIS_PROF_SCOPE("bench.micro");
    benchmark::ClobberMemory();
  }
}

void BM_ProfScopeEnabled(benchmark::State& state) {
  prof::Profiler::instance().enable(/*capture_spans=*/false);
  for (auto _ : state) {
    OSMOSIS_PROF_SCOPE("bench.micro");
    benchmark::ClobberMemory();
  }
  prof::Profiler::instance().disable();
  prof::Profiler::instance().reset();
}

void BM_CellTraceSpan(benchmark::State& state) {
  telemetry::CellTrace trace(/*ring_capacity=*/1024, /*sample_every=*/1);
  double t = 0.0;
  for (auto _ : state) {
    const auto h = trace.begin(0, 1, t);
    trace.mark(h, telemetry::Stage::kRequest, t + 1.0);
    trace.mark(h, telemetry::Stage::kGrant, t + 2.0);
    trace.mark(h, telemetry::Stage::kTransmit, t + 3.0);
    benchmark::DoNotOptimize(trace.end(h, t + 4.0));
    t += 1.0;
  }
}

}  // namespace

BENCHMARK(BM_FlpprTick)->Arg(16)->Arg(64);
BENCHMARK(BM_PipelinedIslipTick)->Arg(16)->Arg(64);
BENCHMARK(BM_IslipTick)->Arg(16)->Arg(64);
BENCHMARK(BM_FecEncode);
BENCHMARK(BM_FecDecodeClean);
BENCHMARK(BM_FecDecodeWithError);
BENCHMARK(BM_GfMul);
BENCHMARK(BM_EventQueueScheduleFire);
BENCHMARK(BM_PortSetNextCircular)->Arg(64)->Arg(256);
BENCHMARK(BM_Rng);
BENCHMARK(BM_SwitchSimRun)->Arg(0)->Arg(16)->Arg(1);
BENCHMARK(BM_ProfScopeDisabled);
BENCHMARK(BM_ProfScopeEnabled);
BENCHMARK(BM_CellTraceSpan);
