// Degraded-operation study (an ablation the paper's dual-receiver
// design implies but does not plot): the broadcast-and-select fabric
// with failed optical switching modules and failed broadcast fibers.
// The dual-receiver architecture doubles as path redundancy — an egress
// with one dead module stays at full line rate through the survivor —
// while a fiber failure cleanly isolates its 8-port WDM group.

#include <iostream>

#include "src/phy/crossbar_optical.hpp"
#include "src/sw/switch_sim.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

using namespace osmosis;

namespace {

sw::SwitchSimConfig base_config(std::uint64_t slots) {
  sw::SwitchSimConfig cfg;
  cfg.ports = 64;
  cfg.sched.kind = sw::SchedulerKind::kFlppr;
  cfg.sched.receivers = 2;
  cfg.measure_slots = slots;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto slots = static_cast<std::uint64_t>(cli.get_int("slots", 15'000));

  std::cout << "Degraded operation: failed switching modules and fibers in "
               "the 64-port dual-receiver OSMOSIS switch (0.85 uniform "
               "load)\n\n";

  util::Table t({"failed modules (of 128)", "throughput", "mean delay",
                 "p99 delay", "ooo"},
                3);
  for (int failed : {0, 8, 16, 32, 64}) {
    auto cfg = base_config(slots);
    // Spread the failures: kill receiver 1 of the first `failed` outputs.
    for (int out = 0; out < failed; ++out)
      cfg.failed_receivers.push_back({out, 1});
    const auto r = sw::run_uniform(cfg, 0.85, 0xFA1);
    t.add_row({static_cast<long long>(failed), r.throughput, r.mean_delay,
               r.p99_delay, static_cast<long long>(r.out_of_order)});
  }
  t.print(std::cout);
  std::cout << "(even with HALF the switching modules dead — one per "
               "egress — every port still runs at full line rate; only "
               "the dual-receiver delay benefit shrinks back toward the "
               "single-receiver curve of Fig. 7)\n";

  std::cout << "\nBroadcast-fiber failures (each takes one 8-port WDM "
               "group offline):\n\n";
  util::Table f({"failed fibers (of 8)", "live hosts", "aggregate "
                 "throughput", "per-live-host throughput", "ooo"},
                3);
  for (int fibers : {0, 1, 2, 4}) {
    auto cfg = base_config(slots);
    for (int fi = 0; fi < fibers; ++fi) cfg.failed_fibers.push_back(fi);
    const auto r = sw::run_uniform(cfg, 0.8, 0xFA2);
    const int live = 64 - fibers * 8;
    f.add_row({static_cast<long long>(fibers),
               static_cast<long long>(live), r.throughput,
               live > 0 ? r.throughput * 64.0 / live : 0.0,
               static_cast<long long>(r.out_of_order)});
  }
  f.print(std::cout);
  std::cout << "(surviving groups keep their full 0.8 load — failures are "
               "isolated, the fabric never drops or reorders)\n";

  // Reachability audit on the gate-accurate crossbar.
  phy::BroadcastSelectCrossbar xbar;
  for (int eg = 0; eg < 64; ++eg) xbar.fail_module(eg, 1);
  std::cout << "\nreachability with one module dead per egress: input 0 "
               "reaches " << xbar.reachable_egress_count(0)
            << "/64 egress ports\n";
  return 0;
}
