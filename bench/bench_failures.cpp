// Degraded-operation study (an ablation the paper's dual-receiver
// design implies but does not plot): the broadcast-and-select fabric
// with failed optical switching modules and failed broadcast fibers —
// both pre-run (static) and injected mid-run with automatic recovery.
// The dual-receiver architecture doubles as path redundancy — an egress
// with one dead module stays at full line rate through the survivor —
// while a fiber failure cleanly isolates its 8-port WDM group. The
// mid-run section measures time-to-recover (repair -> backlog back to
// its pre-fault baseline) and the throughput dip each fault carves out,
// and checks the exactly-once in-order delivery invariant end to end.
//
// --json=<path> dumps the RunReport of the combined-fault scenario
// (fault counters, recovery gauges, and the health event log).

#include <fstream>
#include <iostream>
#include <string>

#include "src/faults/fault_plan.hpp"
#include "src/phy/crossbar_optical.hpp"
#include "src/sw/switch_sim.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

using namespace osmosis;

namespace {

sw::SwitchSimConfig base_config(std::uint64_t slots) {
  sw::SwitchSimConfig cfg;
  cfg.ports = 64;
  cfg.sched.kind = sw::SchedulerKind::kFlppr;
  cfg.sched.receivers = 2;
  cfg.measure_slots = slots;
  return cfg;
}

struct Scenario {
  const char* name;
  faults::FaultPlan plan;
};

std::vector<Scenario> mid_run_scenarios(std::uint64_t slots) {
  const std::uint64_t t0 = 2'000 + slots / 4;  // inside the window
  const std::uint64_t dur = slots / 4;
  std::vector<Scenario> s;
  s.push_back({"fault-free", faults::FaultPlan{}});
  {
    faults::FaultPlan p;
    p.kill_module(t0, 7, 1, dur);
    s.push_back({"module outage (7,1)", p});
  }
  {
    faults::FaultPlan p;
    p.kill_module(t0, 7, 1);  // permanent: survivor carries the egress
    s.push_back({"module dead (7,1) perm", p});
  }
  {
    faults::FaultPlan p;
    p.cut_fiber(t0, 3, dur);
    s.push_back({"fiber 3 cut + splice", p});
  }
  {
    faults::FaultPlan p;
    p.corrupt_grants(t0, dur, 0.02);
    s.push_back({"grant corruption 2%", p});
  }
  {
    faults::FaultPlan p;
    p.burst_errors(t0, -1, dur, 0.01);
    s.push_back({"burst errors 1% all", p});
  }
  {
    faults::FaultPlan p;
    p.stall_adapter(t0, 12, dur);
    s.push_back({"adapter 12 stalled", p});
  }
  {
    faults::FaultPlan p;
    p.kill_module(t0, 7, 1, dur)
        .cut_fiber(t0 + dur / 2, 3, dur)
        .corrupt_grants(t0, dur, 0.01)
        .burst_errors(t0 + dur / 4, 5, dur, 0.02)
        .stall_adapter(t0 + dur / 3, 12, dur / 2);
    s.push_back({"combined", p});
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto slots = static_cast<std::uint64_t>(cli.get_int("slots", 15'000));

  std::cout << "Degraded operation: failed switching modules and fibers in "
               "the 64-port dual-receiver OSMOSIS switch (0.85 uniform "
               "load)\n\n";

  util::Table t({"failed modules (of 128)", "throughput", "mean delay",
                 "p99 delay", "ooo"},
                3);
  for (int failed : {0, 8, 16, 32, 64}) {
    auto cfg = base_config(slots);
    // Spread the failures: kill receiver 1 of the first `failed` outputs.
    for (int out = 0; out < failed; ++out)
      cfg.failed_receivers.push_back({out, 1});
    const auto r = sw::run_uniform(cfg, 0.85, 0xFA1);
    t.add_row({static_cast<long long>(failed), r.throughput, r.mean_delay,
               r.p99_delay, static_cast<long long>(r.out_of_order)});
  }
  t.print(std::cout);
  std::cout << "(even with HALF the switching modules dead — one per "
               "egress — every port still runs at full line rate; only "
               "the dual-receiver delay benefit shrinks back toward the "
               "single-receiver curve of Fig. 7)\n";

  std::cout << "\nBroadcast-fiber failures (each takes one 8-port WDM "
               "group offline):\n\n";
  util::Table f({"failed fibers (of 8)", "live hosts", "aggregate "
                 "throughput", "per-live-host throughput", "ooo"},
                3);
  for (int fibers : {0, 1, 2, 4}) {
    auto cfg = base_config(slots);
    for (int fi = 0; fi < fibers; ++fi) cfg.failed_fibers.push_back(fi);
    const auto r = sw::run_uniform(cfg, 0.8, 0xFA2);
    const int live = 64 - fibers * 8;
    f.add_row({static_cast<long long>(fibers),
               static_cast<long long>(live), r.throughput,
               live > 0 ? r.throughput * 64.0 / live : 0.0,
               static_cast<long long>(r.out_of_order)});
  }
  f.print(std::cout);
  std::cout << "(surviving groups keep their full 0.8 load — failures are "
               "isolated, the fabric never drops or reorders)\n";

  // Reachability audit on the gate-accurate crossbar.
  phy::BroadcastSelectCrossbar xbar;
  for (int eg = 0; eg < 64; ++eg) xbar.fail_module(eg, 1);
  std::cout << "\nreachability with one module dead per egress: input 0 "
               "reaches " << xbar.reachable_egress_count(0)
            << "/64 egress ports\n";

  // ---- mid-run faults with automatic recovery ---------------------------
  std::cout << "\nMid-run fault injection with automatic recovery (0.7 "
               "uniform load, fault window inside the measurement "
               "phase):\n\n";
  util::Table m({"scenario", "throughput", "min 512-slot thr",
                 "grant corr", "retx", "recov", "mean recov slots",
                 "exactly-once"},
                3);
  for (auto& scenario : mid_run_scenarios(slots)) {
    auto cfg = base_config(slots);
    cfg.fault_plan = scenario.plan;
    cfg.drain_max_slots = 50'000;
    const bool emit_json = cli.has("json") &&
                           std::string(scenario.name) == "combined";
    cfg.telemetry.enabled = emit_json;
    sw::SwitchSim sim(cfg, sim::make_uniform(cfg.ports, 0.7, 0xFA3));
    const auto r = sim.run();
    m.add_row({scenario.name, r.throughput, r.min_window_throughput,
               static_cast<long long>(r.grant_corruptions),
               static_cast<long long>(r.retransmissions),
               static_cast<long long>(r.faults_recovered),
               r.mean_recovery_slots,
               r.exactly_once_in_order ? "yes" : "NO"});
    if (emit_json) {
      const std::string path = cli.get("json", "");
      std::ofstream out(path);
      if (!(out << sim.report().to_json() << "\n")) {
        std::cerr << "cannot write " << path << "\n";
        return 1;
      }
      std::cout << "(combined-scenario RunReport written to " << path
                << ")\n";
    }
  }
  m.print(std::cout);
  std::cout << "(every scenario drains to empty after the window and "
               "passes the exactly-once in-order invariant; the min "
               "512-slot throughput column is the depth of the dip the "
               "fault carves out, and recovery time runs from repair to "
               "backlog back at its pre-fault baseline)\n";
  return 0;
}
