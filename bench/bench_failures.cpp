// Degraded-operation study (an ablation the paper's dual-receiver
// design implies but does not plot): the broadcast-and-select fabric
// with failed optical switching modules and failed broadcast fibers —
// both pre-run (static) and injected mid-run with automatic recovery.
// The dual-receiver architecture doubles as path redundancy — an egress
// with one dead module stays at full line rate through the survivor —
// while a fiber failure cleanly isolates its 8-port WDM group. The
// mid-run section measures time-to-recover (repair -> backlog back to
// its pre-fault baseline) and the throughput dip each fault carves out,
// and checks the exactly-once in-order delivery invariant end to end.
//
// The mid-run scenario table is a fault-scenario axis driven through the
// exec::CampaignRunner; the static failed-module/failed-fiber sweeps fan
// out directly over an exec::ThreadPool. --threads=N bounds the worker
// count (default: every hardware thread); the numbers are identical at
// any thread count.
//
// --json=<path> dumps the RunReport of the combined-fault scenario
// (fault counters, recovery gauges, and the health event log).
//
// --permanent switches to the graceful-degradation study on the
// two-stage fabric: a spine is cut permanently mid-measurement with
// fault-aware adaptive routing and degraded-mode admission on, and the
// run must sustain at least (surviving fraction) x (fault-free
// throughput) x 0.9 while keeping exactly-once delivery for every
// non-shed cell. --json then dumps the degraded run's RunReport, whose
// `availability` section carries the SLO numbers.

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/exec/campaign_runner.hpp"
#include "src/exec/thread_pool.hpp"
#include "src/fabric/fabric_sim.hpp"
#include "src/phy/crossbar_optical.hpp"
#include "src/sim/traffic.hpp"
#include "src/sw/switch_sim.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

using namespace osmosis;

namespace {

sw::SwitchSimConfig base_config(std::uint64_t slots) {
  sw::SwitchSimConfig cfg;
  cfg.ports = 64;
  cfg.sched.kind = sw::SchedulerKind::kFlppr;
  cfg.sched.receivers = 2;
  cfg.measure_slots = slots;
  return cfg;
}

fabric::FabricSimConfig degraded_config(std::uint64_t slots) {
  fabric::FabricSimConfig cfg;
  cfg.radix = 8;  // 4 spines, 32 hosts
  cfg.scheduler = sw::SchedulerKind::kIslip;
  cfg.warmup_slots = 2'000;
  cfg.measure_slots = slots;
  cfg.adaptive_routing = true;
  cfg.admission.enabled = true;
  // Post-run drain so the exactly-once verdict covers every in-flight
  // cell; capacity-derived headroom for the 3/4-survivor degraded run.
  cfg.drain_max_slots = 200'000;
  return cfg;
}

/// Graceful-degradation study: permanent spine cut under adaptive
/// routing + admission, checked against the availability floor.
int run_permanent(const util::Cli& cli, std::uint64_t slots) {
  std::cout << "Graceful degradation: permanent spine cut on the "
               "two-stage fabric (radix 8, 4 spines, 0.85 uniform load, "
               "adaptive routing + degraded-mode admission)\n\n";

  const double load = 0.85;
  const int spines = 4;
  const std::uint64_t cut_at = 2'000 + slots / 4;

  auto fault_free_cfg = degraded_config(slots);
  auto degraded_cfg = degraded_config(slots);
  degraded_cfg.fault_plan.fail_plane(cut_at, 0);  // duration 0: permanent

  const int hosts = fault_free_cfg.radix * fault_free_cfg.radix / 2;
  fabric::FabricSim fault_free(fault_free_cfg,
                               sim::make_uniform(hosts, load, 0xFA4));
  const auto base = fault_free.run();

  fabric::FabricSim degraded(degraded_cfg,
                             sim::make_uniform(hosts, load, 0xFA4));
  const auto r = degraded.run();

  util::Table t({"run", "throughput", "delivered", "shed", "resteered",
                 "reseq depth", "brownout slots", "exactly-once"},
                4);
  auto row = [&](const char* name, const fabric::FabricSimResult& x) {
    t.add_row({std::string(name), x.throughput,
               static_cast<long long>(x.delivered),
               static_cast<long long>(x.shed_cells),
               static_cast<long long>(x.resteered),
               static_cast<long long>(x.max_resequencer_depth),
               static_cast<long long>(x.brownout_slots),
               x.exactly_once_in_order ? "yes" : "NO"});
  };
  row("fault-free", base);
  row("spine 0 cut", r);
  t.print(std::cout);

  // Acceptance floor: a permanent cut of 1 of 4 spines must sustain at
  // least the surviving fraction of fault-free throughput, less a 10%
  // transient allowance for the re-steer and resequencing window.
  const double surviving = static_cast<double>(spines - 1) / spines;
  const double floor = surviving * base.throughput * 0.9;
  std::cout << "\nfloor check: degraded throughput " << r.throughput
            << " vs floor " << floor << " (" << (spines - 1) << "/"
            << spines << " survivors x fault-free " << base.throughput
            << " x 0.9)\n";

  bool ok = true;
  if (r.throughput < floor) {
    std::cerr << "FAIL: degraded throughput below the availability "
                 "floor\n";
    ok = false;
  }
  if (!r.exactly_once_in_order) {
    std::cerr << "FAIL: non-shed cells were not delivered exactly once "
                 "in order\n";
    ok = false;
  }
  if (r.generated != r.offered + r.shed_cells) {
    std::cerr << "FAIL: shed accounting does not close (generated="
              << r.generated << " offered=" << r.offered
              << " shed=" << r.shed_cells << ")\n";
    ok = false;
  }
  std::cout << "(every generated cell is accounted for: " << r.offered
            << " offered = " << r.generated << " generated - "
            << r.shed_cells << " shed; " << r.resteered
            << " VOQ cells re-steered off the dead uplink and "
            << r.reroute_ooo
            << " reorders absorbed by the egress resequencer)\n";

  if (cli.has("json")) {
    const std::string path = cli.get_path("json", "");
    std::ofstream out(path);
    if (!(out << degraded.report().to_json() << "\n")) {
      std::cerr << "cannot write " << path << "\n";
      return 1;
    }
    std::cout << "(degraded RunReport written to " << path << ")\n";
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto slots = static_cast<std::uint64_t>(cli.get_int("slots", 15'000));
  if (cli.has("permanent")) return run_permanent(cli, slots);
  exec::ThreadPool pool(static_cast<unsigned>(cli.get_int("threads", 0)));

  std::cout << "Degraded operation: failed switching modules and fibers in "
               "the 64-port dual-receiver OSMOSIS switch (0.85 uniform "
               "load)\n\n";

  // Static-failure sweeps: independent points, fanned out over the pool
  // into pre-sized result slots (each worker writes only its own index).
  const std::vector<int> module_counts = {0, 8, 16, 32, 64};
  std::vector<sw::SwitchSimResult> module_results(module_counts.size());
  for (std::size_t i = 0; i < module_counts.size(); ++i) {
    pool.submit([&, i] {
      auto cfg = base_config(slots);
      // Spread the failures: kill receiver 1 of the first `failed` outputs.
      for (int out = 0; out < module_counts[i]; ++out)
        cfg.failed_receivers.push_back({out, 1});
      module_results[i] = sw::run_uniform(cfg, 0.85, 0xFA1);
    });
  }

  const std::vector<int> fiber_counts = {0, 1, 2, 4};
  std::vector<sw::SwitchSimResult> fiber_results(fiber_counts.size());
  for (std::size_t i = 0; i < fiber_counts.size(); ++i) {
    pool.submit([&, i] {
      auto cfg = base_config(slots);
      for (int fi = 0; fi < fiber_counts[i]; ++fi)
        cfg.failed_fibers.push_back(fi);
      fiber_results[i] = sw::run_uniform(cfg, 0.8, 0xFA2);
    });
  }
  pool.wait_idle();
  for (const auto& e : pool.take_exceptions()) std::rethrow_exception(e);

  util::Table t({"failed modules (of 128)", "throughput", "mean delay",
                 "p99 delay", "ooo"},
                3);
  for (std::size_t i = 0; i < module_counts.size(); ++i) {
    const auto& r = module_results[i];
    t.add_row({static_cast<long long>(module_counts[i]), r.throughput,
               r.mean_delay, r.p99_delay,
               static_cast<long long>(r.out_of_order)});
  }
  t.print(std::cout);
  std::cout << "(even with HALF the switching modules dead — one per "
               "egress — every port still runs at full line rate; only "
               "the dual-receiver delay benefit shrinks back toward the "
               "single-receiver curve of Fig. 7)\n";

  std::cout << "\nBroadcast-fiber failures (each takes one 8-port WDM "
               "group offline):\n\n";
  util::Table f({"failed fibers (of 8)", "live hosts", "aggregate "
                 "throughput", "per-live-host throughput", "ooo"},
                3);
  for (std::size_t i = 0; i < fiber_counts.size(); ++i) {
    const auto& r = fiber_results[i];
    const int live = 64 - fiber_counts[i] * 8;
    f.add_row({static_cast<long long>(fiber_counts[i]),
               static_cast<long long>(live), r.throughput,
               live > 0 ? r.throughput * 64.0 / live : 0.0,
               static_cast<long long>(r.out_of_order)});
  }
  f.print(std::cout);
  std::cout << "(surviving groups keep their full 0.8 load — failures are "
               "isolated, the fabric never drops or reorders)\n";

  // Reachability audit on the gate-accurate crossbar.
  phy::BroadcastSelectCrossbar xbar;
  for (int eg = 0; eg < 64; ++eg) xbar.fail_module(eg, 1);
  std::cout << "\nreachability with one module dead per egress: input 0 "
               "reaches " << xbar.reachable_egress_count(0)
            << "/64 egress ports\n";

  // ---- mid-run faults with automatic recovery ---------------------------
  // The scenario table is the FaultScenario axis of a campaign: one job
  // per scenario at 0.7 uniform load, dual receivers.
  std::cout << "\nMid-run fault injection with automatic recovery (0.7 "
               "uniform load, fault window inside the measurement "
               "phase):\n\n";

  exec::CampaignSpec spec;
  spec.name = "failures_mid_run";
  spec.ports = {64};
  spec.receivers = {2};
  spec.loads = {0.7};
  spec.faults = {exec::FaultScenario::kNone,
                 exec::FaultScenario::kModuleOutage,
                 exec::FaultScenario::kModulePermanent,
                 exec::FaultScenario::kFiberCut,
                 exec::FaultScenario::kGrantCorruption,
                 exec::FaultScenario::kBurstErrors,
                 exec::FaultScenario::kAdapterStall,
                 exec::FaultScenario::kCombined};
  spec.warmup_slots = 2'000;
  spec.measure_slots = slots;
  spec.campaign_seed = 0xFA3;

  exec::RunnerOptions opts;
  opts.threads = static_cast<unsigned>(cli.get_int("threads", 0));
  exec::CampaignRunner runner(opts);
  const exec::CampaignResult result = runner.run(spec);

  util::Table m({"scenario", "throughput", "min 512-slot thr",
                 "grant corr", "retx", "recov", "mean recov slots",
                 "exactly-once"},
                3);
  for (const auto& j : result.jobs) {
    if (!j.ok) {
      m.add_row({to_string(j.spec.fault),
                 std::string("FAILED: " + j.error), std::string("-"),
                 std::string("-"), std::string("-"), std::string("-"),
                 std::string("-"), std::string("-")});
      continue;
    }
    auto metric = [&](const char* name) {
      auto it = j.metrics.find(name);
      return it != j.metrics.end() ? it->second : 0.0;
    };
    m.add_row({to_string(j.spec.fault), metric("throughput"),
               metric("min_window_throughput"),
               static_cast<long long>(metric("grant_corruptions")),
               static_cast<long long>(metric("retransmissions")),
               static_cast<long long>(metric("faults_recovered")),
               metric("mean_recovery_slots"),
               metric("exactly_once_in_order") != 0.0 ? "yes" : "NO"});
  }
  m.print(std::cout);
  std::cout << "(every scenario drains to empty after the window and "
               "passes the exactly-once in-order invariant; the min "
               "512-slot throughput column is the depth of the dip the "
               "fault carves out, and recovery time runs from repair to "
               "backlog back at its pre-fault baseline; "
            << result.jobs.size() << " jobs on " << result.threads_used
            << " threads, " << result.wall_ms << " ms wall)\n";

  if (cli.has("json")) {
    const exec::JobResult* combined =
        result.find([](const exec::JobSpec& s) {
          return s.fault == exec::FaultScenario::kCombined;
        });
    if (combined && combined->ok) {
      const std::string path = cli.get_path("json", "");
      std::ofstream out(path);
      if (!(out << combined->report.to_json() << "\n")) {
        std::cerr << "cannot write " << path << "\n";
        return 1;
      }
      std::cout << "(combined-scenario RunReport written to " << path
                << ")\n";
    }
  }
  return 0;
}
