// In-repo schema checker for the observability artifacts (DESIGN.md
// §11), used by scripts/check.sh and runnable by hand:
//
//   schema_check --trace=<chrome_trace.json>
//       Valid JSON, every event carries ph/pid/tid, timestamps are
//       globally nondecreasing, B/E duration events nest and balance per
//       (pid, tid) track, async b/e events balance per (pid, cat, id).
//
//   schema_check --perf=<BENCH_perf.json> [--baseline=<path>]
//       osmosis.bench_perf.v1 shape: build provenance, profiler-cost
//       block under its bound, positive slots/sec and cells/sec for
//       every row. With --baseline, the (sim, ports) row set must match
//       the committed baseline — a vanished simulator or size fails CI
//       even though raw rates are machine-dependent and never compared.
//
//   schema_check --report=<run_report.json> [--need-profile]
//                [--need-timeseries] [--need-availability] [--need-serving]
//                [--need-topology]
//       osmosis.run_report.v1 shape, optionally requiring the "profile",
//       "timeseries", "availability", "serving", and "topology" sections
//       to be present and well formed. "availability" and "serving" are shape-
//       and invariant-checked whenever present, required only under
//       their --need flags. Serving checks: per-tenant rows sum to the
//       summary, offered == accepted + shed >= delivered, and every
//       latency summary's quantile ladder (min <= p50 <= p99 <= p999
//       [<= p9999] <= max) is monotone. Histogram summaries in the main
//       "histograms" map get the same ladder check.
//
//   schema_check --micro=<bench_micro.json>
//       google-benchmark JSON from bench_micro: asserts the disabled
//       OSMOSIS_PROF_SCOPE (BM_ProfScopeDisabled) costs < 2% of a
//       16-port SwitchSim slot (BM_SwitchSimRun/0, 1100 slots/iter).
//
//   schema_check --campaign=<campaign.json>
//       osmosis.campaign.v1 shape: campaign seed, per-job rows with
//       index/label/seed/ok/attempts, an aggregate block whose job and
//       failure counts agree with the rows, and a consistent quarantine
//       view — every quarantined row appears in the top-level
//       "quarantine" section and vice versa, with a known class.
//
//   schema_check --repro=<repro.json>
//       osmosis.repro.v1 shape (DESIGN.md §12): 64-bit seeds as decimal
//       strings, a known simulator/scheduler/defect, a non-degenerate
//       slot horizon, well-formed fault events, and an expected-verdict
//       block naming an invariant whenever a violation is recorded.

#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "src/telemetry/json.hpp"
#include "src/util/cli.hpp"

using namespace osmosis;
using telemetry::JsonValue;

namespace {

int fail(const std::string& msg) {
  std::cerr << "schema_check: FAIL: " << msg << "\n";
  return 1;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

// ---- Chrome trace ---------------------------------------------------------

int check_trace(const JsonValue& doc) {
  if (!doc.has("traceEvents") || !doc.at("traceEvents").is_array())
    return fail("trace: missing traceEvents array");
  const auto& events = doc.at("traceEvents").array;
  if (events.empty()) return fail("trace: traceEvents is empty");

  // Duration-event stacks per (pid, tid); async open-counts per
  // (pid, cat, id).
  std::map<std::pair<int, int>, std::vector<std::string>> stacks;
  std::map<std::tuple<int, std::string, std::uint64_t>, int> async_open;
  double last_ts = 0.0;
  bool have_ts = false;
  std::size_t timed = 0;

  for (std::size_t i = 0; i < events.size(); ++i) {
    const JsonValue& e = events[i];
    const std::string where = "trace event " + std::to_string(i);
    if (!e.is_object()) return fail(where + ": not an object");
    if (!e.has("ph") || !e.at("ph").is_string() || e.at("ph").str.size() != 1)
      return fail(where + ": missing one-char ph");
    const char ph = e.at("ph").str[0];
    if (std::string("MBEbeCiX").find(ph) == std::string::npos)
      return fail(where + ": unknown ph '" + e.at("ph").str + "'");
    if (!e.has("pid") || !e.at("pid").is_number())
      return fail(where + ": missing pid");
    const int pid = static_cast<int>(e.at("pid").number);
    const int tid =
        e.has("tid") ? static_cast<int>(e.at("tid").number) : 0;
    if (ph == 'M') continue;  // metadata carries no timestamp
    if (!e.has("tid")) return fail(where + ": missing tid");
    if (!e.has("ts") || !e.at("ts").is_number())
      return fail(where + ": missing ts");
    const double ts = e.at("ts").number;
    if (have_ts && ts < last_ts)
      return fail(where + ": ts decreases (" + telemetry::json_number(ts) +
                  " after " + telemetry::json_number(last_ts) + ")");
    last_ts = ts;
    have_ts = true;
    ++timed;

    if (ph == 'B' || ph == 'b') {
      if (!e.has("name") || !e.at("name").is_string())
        return fail(where + ": begin event without a name");
    }
    if (ph == 'B') {
      stacks[{pid, tid}].push_back(e.at("name").str);
    } else if (ph == 'E') {
      auto& stack = stacks[{pid, tid}];
      if (stack.empty())
        return fail(where + ": E with no open B on its track");
      const std::string open = stack.back();
      stack.pop_back();
      if (e.has("name") && e.at("name").str != open)
        return fail(where + ": E for '" + e.at("name").str +
                    "' but innermost open span is '" + open + "'");
    } else if (ph == 'b' || ph == 'e') {
      if (!e.has("cat") || !e.has("id"))
        return fail(where + ": async event without cat/id");
      const auto key = std::make_tuple(
          pid, e.at("cat").str,
          static_cast<std::uint64_t>(e.at("id").number));
      if (ph == 'b') {
        ++async_open[key];
      } else {
        auto it = async_open.find(key);
        if (it == async_open.end() || it->second == 0)
          return fail(where + ": async e with no matching b");
        --it->second;
      }
    }
  }

  for (const auto& [track, stack] : stacks)
    if (!stack.empty())
      return fail("trace: track pid=" + std::to_string(track.first) +
                  " tid=" + std::to_string(track.second) + " ends with '" +
                  stack.back() + "' still open");
  for (const auto& [key, open] : async_open)
    if (open != 0)
      return fail("trace: async id " + std::to_string(std::get<2>(key)) +
                  " in cat '" + std::get<1>(key) + "' never closed");

  std::cout << "trace OK: " << events.size() << " events (" << timed
            << " timed), all tracks balanced, ts nondecreasing\n";
  return 0;
}

// ---- BENCH_perf -----------------------------------------------------------

int check_perf(const JsonValue& doc, const JsonValue* baseline) {
  if (!doc.has("schema") || doc.at("schema").str != "osmosis.bench_perf.v1")
    return fail("perf: schema is not osmosis.bench_perf.v1");
  if (!doc.has("meta") || !doc.at("meta").has("build"))
    return fail("perf: missing meta.build provenance");
  const JsonValue& build = doc.at("meta").at("build");
  for (const char* key : {"build_type", "compiler", "git_sha"})
    if (!build.has(key))
      return fail(std::string("perf: meta.build missing ") + key);

  if (!doc.has("profiler")) return fail("perf: missing profiler block");
  const JsonValue& prof = doc.at("profiler");
  for (const char* key :
       {"disabled_scope_ns", "enabled_scope_ns", "disabled_overhead_frac",
        "bound"})
    if (!prof.has(key) || !prof.at(key).is_number())
      return fail(std::string("perf: profiler block missing ") + key);
  if (prof.at("disabled_overhead_frac").number >= prof.at("bound").number)
    return fail("perf: disabled-profiler overhead " +
                telemetry::json_number(
                    prof.at("disabled_overhead_frac").number) +
                " exceeds bound " +
                telemetry::json_number(prof.at("bound").number));

  if (!doc.has("sims") || !doc.at("sims").is_array() ||
      doc.at("sims").array.empty())
    return fail("perf: missing sims rows");
  std::set<std::string> sims_seen;
  std::set<std::pair<std::string, int>> keys;
  for (const JsonValue& row : doc.at("sims").array) {
    for (const char* key : {"sim", "ports", "slots", "cells", "wall_ms",
                            "slots_per_sec", "cells_per_sec",
                            "telemetry_overhead"})
      if (!row.has(key))
        return fail(std::string("perf: sims row missing ") + key);
    const std::string sim = row.at("sim").str;
    if (row.at("slots_per_sec").number <= 0.0 ||
        row.at("cells_per_sec").number <= 0.0)
      return fail("perf: " + sim + " row has a non-positive rate");
    sims_seen.insert(sim);
    keys.insert({sim, static_cast<int>(row.at("ports").number)});
  }
  for (const char* sim : {"switch", "event", "fabric", "multiplane"})
    if (sims_seen.count(sim) == 0)
      return fail(std::string("perf: simulator '") + sim + "' has no rows");

  if (baseline) {
    std::set<std::pair<std::string, int>> base_keys;
    for (const JsonValue& row : baseline->at("sims").array)
      base_keys.insert(
          {row.at("sim").str, static_cast<int>(row.at("ports").number)});
    if (keys != base_keys)
      return fail("perf: (sim, ports) row set differs from the baseline");
    if (doc.at("mode").str != baseline->at("mode").str)
      return fail("perf: mode differs from the baseline");
  }

  std::cout << "perf OK: " << doc.at("sims").array.size()
            << " rows over 4 simulators, overhead "
            << telemetry::json_number(
                   prof.at("disabled_overhead_frac").number * 100.0)
            << "% < bound\n";
  return 0;
}

// ---- RunReport ------------------------------------------------------------

// Histogram summaries in reports carry the full quantile ladder; empty
// histograms export zeros (vacuously monotone). Returns "" when valid.
std::string hist_summary_errors(const JsonValue& h, const std::string& name) {
  for (const char* key : {"count", "mean", "min", "p50", "p99", "p999",
                          "max"})
    if (!h.has(key) || !h.at(key).is_number())
      return "histogram '" + name + "' missing " + key;
  const double mn = h.at("min").number;
  const double mx = h.at("max").number;
  const double p50 = h.at("p50").number;
  const double p99 = h.at("p99").number;
  const double p999 = h.at("p999").number;
  if (h.at("count").number > 0.0) {
    if (!(mn <= p50 && p50 <= p99 && p99 <= p999 && p999 <= mx))
      return "histogram '" + name +
             "' quantiles not monotone (min <= p50 <= p99 <= p999 <= max)";
    if (h.has("p9999")) {
      const double p9999 = h.at("p9999").number;
      if (!(p999 <= p9999 && p9999 <= mx))
        return "histogram '" + name + "' p9999 outside [p999, max]";
    }
  }
  return "";
}

int check_serving(const JsonValue& sv) {
  for (const char* key : {"arrival", "summary", "latency", "tenants"})
    if (!sv.has(key))
      return fail(std::string("report: serving missing ") + key);
  if (!sv.at("arrival").is_string())
    return fail("report: serving.arrival is not a string");
  const JsonValue& sum = sv.at("summary");
  if (!sum.is_object())
    return fail("report: serving.summary is not an object");
  for (const char* key :
       {"offered", "accepted", "shed", "delivered", "inflight", "tenants"})
    if (!sum.has(key) || !sum.at(key).is_number())
      return fail(std::string("report: serving.summary missing ") + key);
  const double offered = sum.at("offered").number;
  const double accepted = sum.at("accepted").number;
  const double shed = sum.at("shed").number;
  const double delivered = sum.at("delivered").number;
  if (offered != accepted + shed)
    return fail("report: serving offered != accepted + shed "
                "(requests unaccounted for)");
  if (!(offered >= accepted && accepted >= delivered))
    return fail("report: serving ledger not monotone "
                "(offered >= accepted >= delivered)");
  if (sum.at("inflight").number != accepted - delivered)
    return fail("report: serving inflight != accepted - delivered");

  std::string err = hist_summary_errors(sv.at("latency"), "serving.latency");
  if (!err.empty()) return fail("report: " + err);

  if (!sv.at("tenants").is_array() || sv.at("tenants").array.empty())
    return fail("report: serving.tenants rows absent");
  if (sv.at("tenants").array.size() !=
      static_cast<std::size_t>(sum.at("tenants").number))
    return fail("report: serving tenant row count != summary.tenants");
  double t_offered = 0.0, t_accepted = 0.0, t_delivered = 0.0, t_shed = 0.0;
  for (std::size_t i = 0; i < sv.at("tenants").array.size(); ++i) {
    const JsonValue& row = sv.at("tenants").array[i];
    const std::string where = "report: serving tenant " + std::to_string(i);
    for (const char* key :
         {"tenant", "offered", "accepted", "delivered", "shed", "latency"})
      if (!row.has(key)) return fail(where + " missing " + key);
    if (static_cast<std::size_t>(row.at("tenant").number) != i)
      return fail(where + " out of order");
    if (!(row.at("offered").number >= row.at("accepted").number &&
          row.at("accepted").number >= row.at("delivered").number))
      return fail(where + " ledger not monotone");
    err = hist_summary_errors(row.at("latency"),
                              "tenant " + std::to_string(i) + " latency");
    if (!err.empty()) return fail("report: " + err);
    t_offered += row.at("offered").number;
    t_accepted += row.at("accepted").number;
    t_delivered += row.at("delivered").number;
    t_shed += row.at("shed").number;
  }
  if (t_offered != offered || t_accepted != accepted ||
      t_delivered != delivered || t_shed != shed)
    return fail("report: serving tenant rows do not sum to the summary");
  return 0;
}

int check_report(const JsonValue& doc, bool need_profile,
                 bool need_timeseries, bool need_availability,
                 bool need_serving, bool need_topology) {
  if (!doc.has("schema") || doc.at("schema").str != "osmosis.run_report.v1")
    return fail("report: schema is not osmosis.run_report.v1");
  for (const char* key :
       {"sim", "time_unit", "config", "info", "counters", "histograms",
        "health"})
    if (!doc.has(key))
      return fail(std::string("report: missing ") + key);
  // Every exported histogram summary carries the full quantile ladder
  // (p999 always; p9999 when the sample count supports it) and the
  // quantiles are monotone.
  for (const auto& [hname, h] : doc.at("histograms").object) {
    const std::string err = hist_summary_errors(h, hname);
    if (!err.empty()) return fail("report: " + err);
  }
  // Availability/SLO section: validated whenever present, required under
  // --need-availability (the graceful-degradation benches).
  if (need_availability && !doc.has("availability"))
    return fail("report: availability section required but absent");
  if (doc.has("availability")) {
    const JsonValue& av = doc.at("availability");
    if (!av.is_object() || av.object.empty())
      return fail("report: availability must be a non-empty object");
    for (const char* key :
         {"measured_slots", "brownout_slots", "brownout_fraction",
          "capacity_fraction_min", "throughput_pre", "throughput_degraded",
          "throughput_post", "min_window_throughput", "offered_cells",
          "delivered_cells", "shed_cells", "shed_fraction",
          "delivered_fraction", "recoveries"})
      if (!av.has(key))
        return fail(std::string("report: availability missing ") + key);
    for (const char* frac : {"brownout_fraction", "capacity_fraction_min",
                             "shed_fraction", "delivered_fraction"}) {
      const double v = av.at(frac).number;
      if (v < 0.0 || v > 1.0)
        return fail(std::string("report: availability ") + frac +
                    " outside [0, 1]");
    }
    if (av.at("brownout_slots").number > av.at("measured_slots").number)
      return fail("report: availability brownout_slots > measured_slots");
    if (av.at("delivered_cells").number + av.at("shed_cells").number <
        av.at("offered_cells").number)
      return fail("report: availability delivered + shed < offered "
                  "(cells unaccounted for)");
  }
  if (need_profile) {
    if (!doc.has("profile") || !doc.at("profile").is_object() ||
        doc.at("profile").object.empty())
      return fail("report: profile section required but absent/empty");
    for (const auto& [phase, stats] : doc.at("profile").object)
      for (const char* key : {"count", "total_ns", "mean_ns", "max_ns"})
        if (!stats.has(key))
          return fail("report: profile phase '" + phase + "' missing " + key);
  }
  // Serving section: validated whenever present, required under
  // --need-serving (bench_serve reports).
  if (need_serving && !doc.has("serving"))
    return fail("report: serving section required but absent");
  if (doc.has("serving")) {
    if (!doc.at("serving").is_object())
      return fail("report: serving is not an object");
    const int rc = check_serving(doc.at("serving"));
    if (rc != 0) return rc;
  }
  // Topology section (TopoSim reports): a flat map of numbers carrying
  // the graph shape plus per-stage wait/occupancy rows. Validated
  // whenever present, required under --need-topology.
  if (need_topology && !doc.has("topology"))
    return fail("report: topology section required but absent");
  if (doc.has("topology")) {
    const JsonValue& tp = doc.at("topology");
    if (!tp.is_object() || tp.object.empty())
      return fail("report: topology must be a non-empty object");
    for (const char* key : {"stages", "diameter", "switches", "hosts"})
      if (!tp.has(key) || !tp.at(key).is_number())
        return fail(std::string("report: topology missing ") + key);
    for (const auto& [key, v] : tp.object)
      if (!v.is_number())
        return fail("report: topology." + key + " is not a number");
    const double stages = tp.at("stages").number;
    if (stages < 1.0) return fail("report: topology.stages < 1");
    if (tp.at("diameter").number < stages)
      return fail("report: topology.diameter < stages");
    // Every traversed stage exports its queueing-wait and peak-occupancy
    // rows; a missing row means the per-stage attribution broke.
    for (int s = 1; s <= static_cast<int>(stages); ++s) {
      const std::string base = "stage." + std::to_string(s) + ".";
      for (const char* suffix : {"wait_mean", "occ_max"})
        if (!tp.has(base + suffix))
          return fail("report: topology missing " + base + suffix);
    }
  }
  if (need_timeseries) {
    if (!doc.has("timeseries"))
      return fail("report: timeseries section required but absent");
    const JsonValue& ts = doc.at("timeseries");
    for (const char* key : {"every_slots", "channels", "slots", "values"})
      if (!ts.has(key))
        return fail(std::string("report: timeseries missing ") + key);
    const std::size_t rows = ts.at("slots").array.size();
    if (rows == 0) return fail("report: timeseries has no rows");
    if (ts.at("values").array.size() != rows)
      return fail("report: timeseries values/slots row mismatch");
    const std::size_t nch = ts.at("channels").array.size();
    for (const JsonValue& row : ts.at("values").array)
      if (row.array.size() != nch)
        return fail("report: timeseries row width != channel count");
  }
  std::cout << "report OK: sim=" << doc.at("sim").str
            << (need_profile ? ", profile present" : "")
            << (need_timeseries ? ", timeseries present" : "")
            << (doc.has("availability") ? ", availability present" : "")
            << (doc.has("serving") ? ", serving present" : "")
            << (doc.has("topology") ? ", topology present" : "") << "\n";
  return 0;
}

// ---- bench_micro ----------------------------------------------------------

int check_micro(const JsonValue& doc) {
  if (!doc.has("benchmarks") || !doc.at("benchmarks").is_array())
    return fail("micro: missing benchmarks array");
  double disabled_ns = -1.0;
  double run_ns = -1.0;
  for (const JsonValue& b : doc.at("benchmarks").array) {
    if (!b.has("name") || !b.has("real_time")) continue;
    const std::string& name = b.at("name").str;
    if (b.has("time_unit") && b.at("time_unit").str != "ns")
      return fail("micro: " + name + " not reported in ns");
    if (name == "BM_ProfScopeDisabled") disabled_ns = b.at("real_time").number;
    if (name == "BM_SwitchSimRun/0") run_ns = b.at("real_time").number;
  }
  if (disabled_ns < 0.0) return fail("micro: BM_ProfScopeDisabled not found");
  if (run_ns < 0.0) return fail("micro: BM_SwitchSimRun/0 not found");
  // BM_SwitchSimRun/0 executes 1100 slots (100 warmup + 1000 measured)
  // of a 16-port switch per iteration; ~8 scopes guard each slot.
  const double slot_ns = run_ns / 1100.0;
  const double frac = disabled_ns * 8.0 / slot_ns;
  if (frac >= 0.02)
    return fail("micro: disabled scope costs " +
                telemetry::json_number(disabled_ns) + " ns = " +
                telemetry::json_number(frac * 100.0) +
                "% of a slot (bound 2%)");
  std::cout << "micro OK: disabled scope " << disabled_ns << " ns, "
            << telemetry::json_number(frac * 100.0)
            << "% of a 16-port slot (< 2%)\n";
  return 0;
}

// ---- campaign -------------------------------------------------------------

int check_campaign(const JsonValue& doc) {
  if (!doc.has("schema") || doc.at("schema").str != "osmosis.campaign.v1")
    return fail("campaign: schema is not osmosis.campaign.v1");
  if (!doc.has("name") || !doc.at("name").is_string())
    return fail("campaign: missing name");
  if (!doc.has("campaign_seed") || !doc.at("campaign_seed").is_string() ||
      doc.at("campaign_seed").str.rfind("0x", 0) != 0)
    return fail("campaign: campaign_seed is not an 0x-prefixed string");

  if (!doc.has("jobs") || !doc.at("jobs").is_array() ||
      doc.at("jobs").array.empty())
    return fail("campaign: missing jobs rows");
  const auto& jobs = doc.at("jobs").array;
  std::size_t failed = 0;
  std::set<std::size_t> quarantined_rows;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const JsonValue& j = jobs[i];
    const std::string where = "campaign job " + std::to_string(i);
    for (const char* key : {"index", "label", "seed", "ok", "attempts"})
      if (!j.has(key)) return fail(where + ": missing " + key);
    if (static_cast<std::size_t>(j.at("index").number) != i)
      return fail(where + ": index out of order");
    if (j.at("attempts").number < 1.0)
      return fail(where + ": attempts < 1");
    const bool ok = j.at("ok").boolean;
    if (!ok) ++failed;
    if (ok && j.has("metrics") && !j.at("metrics").is_object())
      return fail(where + ": metrics is not an object");
    const bool quarantined =
        j.has("quarantined") && j.at("quarantined").boolean;
    if (quarantined) {
      if (ok) return fail(where + ": quarantined but ok");
      quarantined_rows.insert(i);
    }
    if (j.has("failure_class")) {
      const std::string& cls = j.at("failure_class").str;
      if (cls != "deterministic" && cls != "transient" && cls != "timeout")
        return fail(where + ": unknown failure_class '" + cls + "'");
      if ((cls != "transient") != quarantined)
        return fail(where + ": failure_class '" + cls +
                    "' disagrees with quarantined flag");
    } else if (quarantined) {
      return fail(where + ": quarantined without a failure_class");
    }
  }

  if (!doc.has("aggregate") || !doc.at("aggregate").is_object())
    return fail("campaign: missing aggregate block");
  const JsonValue& agg = doc.at("aggregate");
  for (const char* key : {"jobs", "failed", "counters", "histograms"})
    if (!agg.has(key))
      return fail(std::string("campaign: aggregate missing ") + key);
  if (static_cast<std::size_t>(agg.at("jobs").number) != jobs.size())
    return fail("campaign: aggregate.jobs != row count");
  if (static_cast<std::size_t>(agg.at("failed").number) != failed)
    return fail("campaign: aggregate.failed disagrees with rows (" +
                std::to_string(failed) + " rows not ok)");

  // The quarantine section and the per-job flags must be the same set.
  std::set<std::size_t> section_rows;
  if (doc.has("quarantine")) {
    if (!doc.at("quarantine").is_array())
      return fail("campaign: quarantine is not an array");
    for (const JsonValue& q : doc.at("quarantine").array) {
      for (const char* key : {"index", "label", "class", "error"})
        if (!q.has(key))
          return fail(std::string("campaign: quarantine entry missing ") +
                      key);
      section_rows.insert(static_cast<std::size_t>(q.at("index").number));
    }
  }
  if (section_rows != quarantined_rows)
    return fail("campaign: quarantine section does not match the "
                "quarantined job rows");

  std::cout << "campaign OK: " << jobs.size() << " jobs, " << failed
            << " failed, " << quarantined_rows.size() << " quarantined\n";
  return 0;
}

// ---- repro ----------------------------------------------------------------

bool is_decimal_string(const JsonValue& v) {
  if (!v.is_string() || v.str.empty()) return false;
  for (char c : v.str)
    if (c < '0' || c > '9') return false;
  return true;
}

int check_repro(const JsonValue& doc) {
  if (!doc.has("format") || doc.at("format").str != "osmosis.repro.v1")
    return fail("repro: format is not osmosis.repro.v1");
  for (const char* key : {"campaign_seed", "seed", "fault_seed"})
    if (!doc.has(key) || !is_decimal_string(doc.at(key)))
      return fail(std::string("repro: ") + key +
                  " is not a decimal string (JSON numbers are doubles and "
                  "would round 64-bit seeds)");

  if (!doc.has("sim") || !doc.at("sim").is_string())
    return fail("repro: missing sim");
  const std::string& sim = doc.at("sim").str;
  if (sim != "switch" && sim != "event-switch" && sim != "fabric" &&
      sim != "multiplane" && sim != "topo")
    return fail("repro: unknown sim '" + sim + "'");
  static const std::set<std::string> kSchedulers = {
      "islip", "pim", "pislip", "flppr", "tdm", "wfa"};
  if (!doc.has("scheduler") || kSchedulers.count(doc.at("scheduler").str) == 0)
    return fail("repro: unknown scheduler");

  for (const char* key : {"ports", "planes", "receivers", "load",
                          "mean_burst", "warmup_slots", "measure_slots",
                          "drain_max_slots", "deadlock_slots",
                          "defect_period"})
    if (!doc.has(key) || !doc.at(key).is_number())
      return fail(std::string("repro: missing numeric ") + key);
  if (doc.at("ports").number < 2.0)
    return fail("repro: ports < 2");
  if (doc.at("measure_slots").number < 1.0)
    return fail("repro: degenerate measure_slots");
  const double load = doc.at("load").number;
  if (load <= 0.0 || load > 1.0)
    return fail("repro: load outside (0, 1]");
  if (!doc.has("defect") || !doc.at("defect").is_string())
    return fail("repro: missing defect");
  if (!doc.has("muted_sources") || !doc.at("muted_sources").is_array())
    return fail("repro: missing muted_sources array");

  if (!doc.has("faults") || !doc.at("faults").is_array())
    return fail("repro: missing faults array");
  const auto& faults = doc.at("faults").array;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const JsonValue& e = faults[i];
    const std::string where = "repro fault " + std::to_string(i);
    if (!e.has("kind") || !e.at("kind").is_string())
      return fail(where + ": missing kind");
    for (const char* key : {"at_slot", "a", "b", "duration_slots", "rate"})
      if (!e.has(key) || !e.at(key).is_number())
        return fail(where + ": missing numeric " + key);
    const double rate = e.at("rate").number;
    if (rate < 0.0 || rate > 1.0)
      return fail(where + ": rate outside [0, 1]");
  }

  if (!doc.has("expected") || !doc.at("expected").is_object())
    return fail("repro: missing expected block");
  const JsonValue& exp = doc.at("expected");
  for (const char* key : {"violated", "invariant", "violations"})
    if (!exp.has(key))
      return fail(std::string("repro: expected block missing ") + key);
  if (exp.at("violated").boolean && exp.at("invariant").str.empty())
    return fail("repro: expected.violated without an invariant token");
  if (exp.at("violated").boolean && faults.empty())
    return fail("repro: records a violation but carries no fault events "
                "(the monitor's defects only fire under an open fault)");

  std::cout << "repro OK: sim=" << sim << ", " << faults.size()
            << " fault event(s), expected "
            << (exp.at("violated").boolean
                    ? "violation of '" + exp.at("invariant").str + "'"
                    : std::string("clean run"))
            << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);

  auto load = [](const std::string& path, JsonValue& out) {
    std::string text;
    if (!read_file(path, text)) {
      std::cerr << "schema_check: cannot read " << path << "\n";
      return false;
    }
    out = telemetry::json_parse(text);
    return true;
  };

  JsonValue doc;
  if (cli.has("trace")) {
    if (!load(cli.get_path("trace", ""), doc)) return 1;
    return check_trace(doc);
  }
  if (cli.has("perf")) {
    if (!load(cli.get_path("perf", ""), doc)) return 1;
    JsonValue baseline;
    const bool with_base = cli.has("baseline");
    if (with_base && !load(cli.get_path("baseline", ""), baseline)) return 1;
    return check_perf(doc, with_base ? &baseline : nullptr);
  }
  if (cli.has("report")) {
    if (!load(cli.get_path("report", ""), doc)) return 1;
    return check_report(doc, cli.has("need-profile"),
                        cli.has("need-timeseries"),
                        cli.has("need-availability"),
                        cli.has("need-serving"), cli.has("need-topology"));
  }
  if (cli.has("micro")) {
    if (!load(cli.get_path("micro", ""), doc)) return 1;
    return check_micro(doc);
  }
  if (cli.has("campaign")) {
    if (!load(cli.get_path("campaign", ""), doc)) return 1;
    return check_campaign(doc);
  }
  if (cli.has("repro")) {
    if (!load(cli.get_path("repro", ""), doc)) return 1;
    return check_repro(doc);
  }
  std::cerr << "usage: schema_check --trace=F | --perf=F [--baseline=F] | "
               "--report=F [--need-profile] [--need-timeseries] "
               "[--need-availability] [--need-serving] [--need-topology] | "
               "--micro=F | --campaign=F | --repro=F\n";
  return 2;
}
