// Fig. 1 — control and data latency of a single-stage bufferless fabric
// with a central scheduler: one cable round trip for the request/grant
// cycle plus one more for the data transfer. Swept over the machine-room
// diameter and compared against the 3-stage input-buffered alternative,
// which pays the cable time only once. This is the paper's core argument
// that "a multistage topology is required irrespective of whether
// electronic or optical switch elements are used".

#include <iostream>

#include "src/core/latency_budget.hpp"
#include "src/phy/guard_time.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"
#include "src/util/units.hpp"

using namespace osmosis;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const double cell_ns = phy::demonstrator_cell_format().cycle_ns();
  // Central arbitration + crossbar transfer, one cell cycle each.
  const double sched_ns = cli.get_double("sched_ns", cell_ns);
  const double switch_ns = cli.get_double("switch_ns", cell_ns);

  std::cout << "Fig. 1 reproduction: single-stage central-scheduler latency "
               "(2 RTT + scheduling + switching)\nvs 3-stage input-buffered "
               "fabric (cables paid once), by machine-room diameter\n"
            << "(paper: the 2-RTT cost exceeds the 500 ns latency goal, "
               "forcing multistage)\n\n";

  util::Table t({"diameter [m]", "cable RTT [ns]", "single-stage [ns]",
                 "3-stage multistage [ns]", "single > 500 ns budget"},
                1);
  for (double d : {10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 80.0, 100.0}) {
    const auto s = core::single_stage_latency(d, sched_ns, switch_ns);
    const double multi = core::multistage_latency_ns(
        3, sched_ns + switch_ns, util::fiber_delay_ns(d));
    t.add_row({d, s.rtt_ns, s.total_ns, multi,
               std::string(s.total_ns > 500.0 ? "yes" : "no")});
  }
  t.print(std::cout);

  std::cout
      << "\nNote: a 2048-port single-stage scheduler is additionally "
         "considered infeasible at these speeds (§III); the table shows "
         "that even ignoring that, cable physics alone breaks the budget "
         "at machine-room scale.\n";
  return 0;
}
