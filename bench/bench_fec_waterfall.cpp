// §IV.C — the FEC + retransmission reliability chain of the (272,256)
// GF(2^8) cyclic Hamming code: exhaustive single-bit correction, forced
// error-weight decoder behaviour, Monte-Carlo at observable BERs, the
// analytic waterfall (raw -> FEC -> ARQ) and the block-length trade-off
// the paper mentions ("optimizes between low coding latency and low
// overhead").

#include <iostream>

#include "src/arq/residual.hpp"
#include "src/fec/channel.hpp"
#include "src/fec/hamming272.hpp"
#include "src/fec/interleave.hpp"
#include "src/sim/rng.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

using namespace osmosis;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto trials = static_cast<std::uint64_t>(cli.get_int("trials", 20'000));
  sim::Rng rng(0x4EC);

  std::cout << "SS IV.C reproduction: (272,256,3) GF(2^8) cyclic Hamming "
               "FEC + hop-by-hop retransmission\n\n";

  // Exhaustive single-bit correction.
  {
    sim::Rng r2(1);
    fec::Hamming272::DataBlock data{};
    for (auto& b : data) b = static_cast<std::uint8_t>(r2.next() & 0xFF);
    const auto clean = fec::Hamming272::encode(data);
    int corrected = 0;
    for (int bit = 0; bit < fec::Hamming272::kCodeBits; ++bit) {
      auto noisy = clean;
      fec::Hamming272::flip_bit(noisy, bit);
      if (fec::Hamming272::decode(noisy).status ==
              fec::Hamming272::DecodeStatus::kCorrected &&
          noisy == clean)
        ++corrected;
    }
    std::cout << "exhaustive single-bit errors corrected: " << corrected
              << "/" << fec::Hamming272::kCodeBits
              << " (paper: corrects ALL single bit errors)\n\n";
  }

  // Decoder behaviour by injected bit-error weight.
  util::Table w({"bit errors", "corrected ok", "detected", "miscorrected",
                 "detected frac"},
                4);
  w.set_title("forced-weight decoder outcomes (" + std::to_string(trials) +
              " trials each)");
  double miscorrect_w2 = 0.0;
  for (int weight : {1, 2, 3, 4, 8, 16}) {
    const auto out = fec::inject_bit_errors(weight, trials, rng);
    if (weight == 2) miscorrect_w2 = out.miscorrected_fraction();
    w.add_row({static_cast<long long>(weight),
               static_cast<long long>(out.corrected_ok),
               static_cast<long long>(out.detected),
               static_cast<long long>(out.miscorrected),
               out.detected_fraction()});
  }
  w.print(std::cout);
  std::cout << "(>= 2 errors: d = 3 detects the large majority; the "
               "aliasing fraction ~ n/q = 13 % matches theory. In "
               "detect-only mode ALL <= 2-symbol errors are flagged.)\n";

  // Monte-Carlo at an observable BER.
  const auto mc = fec::run_bsc(1e-3, trials, rng);
  std::cout << "\nMonte-Carlo BSC at 1e-3: clean " << mc.clean
            << ", corrected " << mc.corrected << ", detected " << mc.detected
            << ", miscorrected " << mc.miscorrected << "\n";

  // Analytic waterfall, using the decoder's MEASURED conditional
  // miscorrection fraction for the ARQ tier (only miscorrections escape
  // retransmission).
  std::cout << "\nReliability waterfall (paper: raw 1e-10..1e-12 -> FEC "
               "better than 1e-17 -> retransmission better than 1e-21; the "
               "1e-21 tier corresponds to the 1e-12 end of the raw-BER "
               "envelope):\n\n";
  util::Table t({"raw BER", "post-FEC user BER", "post-ARQ residual BER"});
  char buf[64];
  for (const auto& tier :
       arq::reliability_sweep({1e-12, 1e-11, 1e-10}, miscorrect_w2)) {
    std::snprintf(buf, sizeof buf, "%.2e", tier.raw_ber);
    std::string raw = buf;
    std::snprintf(buf, sizeof buf, "%.2e", tier.post_fec_ber);
    std::string fecs = buf;
    std::snprintf(buf, sizeof buf, "%.2e", tier.post_arq_ber);
    t.add_row({raw, fecs, std::string(buf)});
  }
  t.print(std::cout);

  // Block-length trade-off: coding latency vs overhead for RS-style
  // distance-3 codes with 2 parity symbols at various lengths.
  std::cout << "\nBlock-length trade-off (2 parity symbols, d = 3): the "
               "paper picked 272 bits to balance coding latency against "
               "overhead:\n\n";
  util::Table bl({"block [bits]", "overhead [%]", "coding latency @40G [ns]"},
                 2);
  for (int data_symbols : {8, 16, 32, 64, 128, 253}) {
    const double n_bits = (data_symbols + 2) * 8.0;
    bl.add_row({static_cast<long long>(n_bits),
                100.0 * 2.0 / data_symbols, n_bits / 40.0});
  }
  bl.print(std::cout);
  std::cout << "\nmeasured weight-2 miscorrection fraction used for the ARQ "
               "tier bound: " << miscorrect_w2 << "\n";

  // Burst protection by symbol interleaving within the cell (a 256 B
  // cell carries 6 FEC blocks): a wire burst of <= depth symbols lands
  // one symbol per codeword — always corrected.
  std::cout << "\nBurst survival with cell-level symbol interleaving "
               "(500 random bursts per point):\n\n";
  util::Table il({"interleave depth", "burst 2 sym", "burst 6 sym",
                  "burst 12 sym"},
                 3);
  for (int depth : {1, 2, 6}) {
    auto survival = [&](int burst) {
      int ok = 0;
      for (int trial = 0; trial < 500; ++trial)
        ok += fec::burst_survives(depth, burst, rng) ? 1 : 0;
      return ok / 500.0;
    };
    const double s2 = survival(2);
    const double s6 = survival(6);
    const double s12 = survival(12);
    il.add_row({static_cast<long long>(depth), s2, s6, s12});
  }
  il.print(std::cout);
  std::cout << "(survival fraction; bursts up to the interleave depth are "
               "corrected with certainty — the depth-6 cell grouping "
               "rides out 6-symbol = 48-bit wire bursts)\n";
  return 0;
}
