// Fig. 2 — the three buffer-placement options around the optical
// crossbar: (1) input+output buffers, (2) output only, (3) input only
// (the OSMOSIS choice). Reports OEO conversion pairs per stage, the
// request/grant loop latency, the input-buffer size each option needs,
// and whether simple point-to-point flow control suffices.

#include <iostream>

#include "src/fabric/placement.hpp"
#include "src/phy/guard_time.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"
#include "src/util/units.hpp"

using namespace osmosis;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const double cable_m = cli.get_double("cable_m", 50.0);
  const double cable_ns = util::fiber_delay_ns(cable_m);
  const double cell_ns = phy::demonstrator_cell_format().cycle_ns();
  const double sched_ns = cli.get_double("sched_ns", cell_ns);

  std::cout << "Fig. 2 reproduction: buffer placement options around the "
               "optical crossbar\n(cable " << cable_m << " m = " << cable_ns
            << " ns, cell " << cell_ns << " ns, scheduler " << sched_ns
            << " ns)\n\n";

  util::Table t({"option", "description", "OEO pairs/stage",
                 "req/grant RTT [ns]", "min input buffer [cells]",
                 "point-to-point FC"},
                1);
  for (const auto& a : fabric::compare_placements(cable_ns, cell_ns,
                                                  sched_ns)) {
    t.add_row({static_cast<long long>(a.option), a.description,
               static_cast<long long>(a.oeo_pairs_per_stage),
               a.request_grant_rtt_ns,
               static_cast<long long>(a.min_input_buffer_cells),
               std::string(a.point_to_point_fc ? "yes" : "no (relayed)")});
  }
  t.print(std::cout);

  std::cout
      << "\nPaper's conclusion: option 1 doubles OEO cost; option 2 adds "
         "the cable flight time to every scheduling decision; option 3 "
         "(chosen) keeps request/grant local at the price of RTT-sized "
         "input buffers and scheduler-relayed flow control (Figs. 3-4).\n";

  std::cout << "\nInput-buffer size vs cable length (option 3):\n\n";
  util::Table b({"cable [m]", "FC RTT [ns]", "buffer [cells]"}, 1);
  for (double m : {5.0, 10.0, 25.0, 50.0, 100.0, 200.0}) {
    const double rtt = 2.0 * util::fiber_delay_ns(m);
    b.add_row({m, rtt, static_cast<long long>(
                           fabric::buffer_cells_for_rtt(rtt, cell_ns))});
  }
  b.print(std::cout);
  return 0;
}
