// Port-bandwidth scaling via plane striping: the Table 1 port rate
// (12 GByte/s ~ 96 Gb/s, "Infiniband 12x QDR") exceeds any single
// 40 Gb/s optical line, so fabric ports aggregate parallel switch
// planes. This harness measures what striping costs: cross-plane
// reordering absorbed by the egress resequencer (depth and added
// delay) as the plane count and load grow — and confirms the delivered
// stream stays strictly in order (Table 1).

#include <iostream>

#include "src/fabric/multiplane.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

using namespace osmosis;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto slots = static_cast<std::uint64_t>(cli.get_int("slots", 15'000));

  std::cout << "Plane-striped fabric ports (16 ports, FLPPR planes): "
               "aggregate bandwidth vs resequencing cost\n\n";

  util::Table t({"planes", "aggregate Gb/s @40G lines", "load/plane",
                 "throughput/plane", "mean delay", "reseq wait",
                 "max reseq depth", "post-reseq ooo"},
                2);
  for (int planes : {1, 2, 4, 8, 12}) {
    fabric::MultiPlaneConfig cfg;
    cfg.ports = 16;
    cfg.planes = planes;
    cfg.measure_slots = slots;
    const auto r = fabric::run_multiplane_uniform(cfg, 0.8, 0x12A);
    t.add_row({static_cast<long long>(planes), 40.0 * planes, 0.8,
               r.throughput_per_plane, r.mean_delay_slots,
               r.mean_resequencing_wait,
               static_cast<long long>(r.max_resequencer_depth),
               static_cast<long long>(r.post_resequencer_ooo)});
  }
  t.print(std::cout);
  std::cout << "(12 planes x 40 Gb/s = 480 Gb/s raw per port — the 12x-"
               "lane shape of the paper's 12-25 GByte/s fabric ports; "
               "resequencing stays shallow because every plane is "
               "internally in-order and planes share the load evenly)\n";

  std::cout << "\nResequencing cost vs load (4 planes):\n\n";
  util::Table l({"load/plane", "mean delay", "reseq wait",
                 "max reseq depth"},
                2);
  for (double load : {0.2, 0.5, 0.8, 0.95}) {
    fabric::MultiPlaneConfig cfg;
    cfg.ports = 16;
    cfg.planes = 4;
    cfg.measure_slots = slots;
    const auto r = fabric::run_multiplane_uniform(cfg, load, 0x12B);
    l.add_row({load, r.mean_delay_slots, r.mean_resequencing_wait,
               static_cast<long long>(r.max_resequencer_depth)});
  }
  l.print(std::cout);
  return 0;
}
