// Tracked performance suite (DESIGN.md §11): measures raw simulation
// rate — cells/sec and slots/sec — for all four simulators across a port
// sweep, the telemetry-on / telemetry-off overhead ratio for each
// configuration, and the cost of a disabled profiler scope relative to a
// simulator slot. Emits one osmosis.bench_perf.v1 JSON document
// (BENCH_perf.json by convention) stamped with build provenance, so a
// perf trajectory can be tracked commit over commit.
//
//   bench_perf [--smoke] [--json=<path>] [--trace=<path>]
//              [--sim-trace=<path>] [--report=<path>]
//
// --smoke shrinks the sweep to seconds (the CI shape; its key set is
// held against bench/baselines/BENCH_perf_smoke.json by
// schema_check --perf). The full sweep reaches the paper's 2048-port
// scale and is meant for manual runs on quiet machines.
//
// --trace / --sim-trace additionally run one small instrumented switch
// and write the wall-clock / sim-time Chrome trace (Perfetto-loadable);
// --report writes that run's RunReport with "profile" and "timeseries"
// attached. scripts/check.sh feeds all three to schema_check.
//
// The suite hard-fails (exit 1) when the disabled-profiler overhead
// estimate exceeds 2% of the cheapest measured simulator slot — the
// cost discipline that keeps OSMOSIS_PROF_SCOPE compiled into release
// binaries.

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/exec/campaign.hpp"
#include "src/fabric/fabric_sim.hpp"
#include "src/fabric/multiplane.hpp"
#include "src/prof/profiler.hpp"
#include "src/prof/trace_export.hpp"
#include "src/sim/traffic.hpp"
#include "src/sw/event_switch_sim.hpp"
#include "src/sw/switch_sim.hpp"
#include "src/telemetry/build_info.hpp"
#include "src/telemetry/json.hpp"
#include "src/util/cli.hpp"

using namespace osmosis;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// Keeps the measured loops honest without pulling in google-benchmark.
inline void clobber() { asm volatile("" ::: "memory"); }

struct PerfRow {
  std::string sim;
  int ports = 0;           // host/port count (fabric: hosts = radix²/2)
  std::uint64_t slots = 0;
  std::uint64_t cells = 0;
  double wall_ms = 0.0;            // telemetry off
  double telemetry_wall_ms = 0.0;  // telemetry + time series on
};

telemetry::TelemetryConfig telemetry_on() {
  telemetry::TelemetryConfig t;
  t.enabled = true;
  t.sample_every = 4;
  t.timeseries.enabled = true;
  t.timeseries.every_slots = 64;
  return t;
}

PerfRow measure_switch(int ports, std::uint64_t slots) {
  PerfRow row{"switch", ports, slots, 0, 0.0, 0.0};
  for (const bool telemetry : {false, true}) {
    sw::SwitchSimConfig cfg;
    cfg.ports = ports;
    cfg.warmup_slots = slots / 10;
    cfg.measure_slots = slots - cfg.warmup_slots;
    if (telemetry) cfg.telemetry = telemetry_on();
    sw::SwitchSim sim(cfg, sim::make_uniform(ports, 0.6, 7));
    const auto t0 = Clock::now();
    const auto r = sim.run();
    (telemetry ? row.telemetry_wall_ms : row.wall_ms) = ms_since(t0);
    if (!telemetry) row.cells = r.offered;
  }
  return row;
}

PerfRow measure_event(int ports, std::uint64_t slots) {
  PerfRow row{"event", ports, slots, 0, 0.0, 0.0};
  for (const bool telemetry : {false, true}) {
    sw::EventSwitchConfig cfg;
    cfg.ports = ports;
    cfg.warmup_ns = static_cast<double>(slots / 10) * cfg.cell_ns;
    cfg.measure_ns = static_cast<double>(slots - slots / 10) * cfg.cell_ns;
    if (telemetry) cfg.telemetry = telemetry_on();
    sw::EventSwitchSim sim(cfg, sim::make_uniform(ports, 0.6, 7));
    const auto t0 = Clock::now();
    const auto r = sim.run();
    (telemetry ? row.telemetry_wall_ms : row.wall_ms) = ms_since(t0);
    if (!telemetry) row.cells = r.offered;
  }
  return row;
}

PerfRow measure_fabric(int radix, std::uint64_t slots) {
  const int hosts = radix * (radix / 2);
  PerfRow row{"fabric", hosts, slots, 0, 0.0, 0.0};
  for (const bool telemetry : {false, true}) {
    fabric::FabricSimConfig cfg;
    cfg.radix = radix;
    cfg.warmup_slots = slots / 10;
    cfg.measure_slots = slots - cfg.warmup_slots;
    if (telemetry) cfg.telemetry = telemetry_on();
    fabric::FabricSim sim(cfg, sim::make_uniform(hosts, 0.5, 7));
    const auto t0 = Clock::now();
    const auto r = sim.run();
    (telemetry ? row.telemetry_wall_ms : row.wall_ms) = ms_since(t0);
    if (!telemetry) row.cells = r.offered;
  }
  return row;
}

PerfRow measure_multiplane(int ports, std::uint64_t slots) {
  PerfRow row{"multiplane", ports, slots, 0, 0.0, 0.0};
  // MultiPlaneSim has no telemetry member: both columns time the same
  // configuration and the overhead ratio stays ~1.
  for (const bool second : {false, true}) {
    fabric::MultiPlaneConfig cfg;
    cfg.ports = ports;
    cfg.planes = 2;
    cfg.warmup_slots = slots / 10;
    cfg.measure_slots = slots - cfg.warmup_slots;
    const auto t0 = Clock::now();
    const auto r = fabric::run_multiplane_uniform(cfg, 0.4, 7);
    (second ? row.telemetry_wall_ms : row.wall_ms) = ms_since(t0);
    if (!second) row.cells = r.offered;
  }
  return row;
}

/// ns per disabled/enabled OSMOSIS_PROF_SCOPE, averaged over many
/// iterations (each iteration = one construct/destruct pair).
double scope_cost_ns(bool enabled) {
  if (enabled)
    prof::Profiler::instance().enable();
  else
    prof::Profiler::instance().disable();
  constexpr std::uint64_t kIters = 1 << 21;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < kIters; ++i) {
    OSMOSIS_PROF_SCOPE("bench.scope");
    clobber();
  }
  const double total_ns = ms_since(t0) * 1e6;
  prof::Profiler::instance().disable();
  prof::Profiler::instance().reset();
  return total_ns / static_cast<double>(kIters);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool smoke = cli.has("smoke");

  std::vector<PerfRow> rows;
  if (smoke) {
    rows.push_back(measure_switch(16, 4'000));
    rows.push_back(measure_switch(64, 2'000));
    rows.push_back(measure_event(16, 4'000));
    rows.push_back(measure_event(64, 1'000));
    rows.push_back(measure_fabric(8, 4'000));    // 32 hosts
    rows.push_back(measure_fabric(16, 1'000));   // 128 hosts
    rows.push_back(measure_multiplane(16, 4'000));
    rows.push_back(measure_multiplane(64, 1'000));
  } else {
    for (const int p : {64, 256, 1024, 2048})
      rows.push_back(measure_switch(p, 512'000 / static_cast<unsigned>(p)));
    for (const int p : {64, 256, 1024, 2048})
      rows.push_back(measure_event(p, 256'000 / static_cast<unsigned>(p)));
    for (const int radix : {16, 32, 64})  // 128 / 512 / 2048 hosts
      rows.push_back(measure_fabric(
          radix, 64'000 / static_cast<unsigned>(radix)));
    for (const int p : {64, 256, 1024, 2048})
      rows.push_back(
          measure_multiplane(p, 256'000 / static_cast<unsigned>(p)));
  }

  // Profiler cost discipline: a disabled scope must stay under 2% of the
  // cheapest simulator slot measured above (DESIGN.md §11). A slot
  // passes ~8 scopes, so compare 8x the scope cost against the bound.
  const double disabled_ns = scope_cost_ns(false);
  const double enabled_ns = scope_cost_ns(true);
  double min_slot_ns = 0.0;
  for (const auto& r : rows) {
    const double slot_ns =
        r.wall_ms * 1e6 / static_cast<double>(r.slots ? r.slots : 1);
    if (min_slot_ns == 0.0 || slot_ns < min_slot_ns) min_slot_ns = slot_ns;
  }
  constexpr double kScopesPerSlot = 8.0;
  constexpr double kBound = 0.02;
  const double overhead_frac =
      min_slot_ns > 0.0 ? disabled_ns * kScopesPerSlot / min_slot_ns : 0.0;

  telemetry::JsonWriter w(2);
  w.open('{');
  w.key("schema");
  w.string("osmosis.bench_perf.v1");
  w.key("mode");
  w.string(smoke ? "smoke" : "full");
  w.key("meta");
  w.open('{');
  w.key("build");
  w.open('{');
  for (const auto& [k, v] : telemetry::build_info()) {
    w.key(k);
    w.string(v);
  }
  w.close('}');
  w.close('}');
  w.key("profiler");
  w.open('{');
  w.key("disabled_scope_ns");
  w.number(disabled_ns);
  w.key("enabled_scope_ns");
  w.number(enabled_ns);
  w.key("min_slot_ns");
  w.number(min_slot_ns);
  w.key("disabled_overhead_frac");
  w.number(overhead_frac);
  w.key("bound");
  w.number(kBound);
  w.close('}');
  w.key("sims");
  w.open('[');
  for (const auto& r : rows) {
    const double sec = r.wall_ms / 1e3;
    w.open('{');
    w.key("sim");
    w.string(r.sim);
    w.key("ports");
    w.number(r.ports);
    w.key("slots");
    w.number(static_cast<double>(r.slots));
    w.key("cells");
    w.number(static_cast<double>(r.cells));
    w.key("wall_ms");
    w.number(r.wall_ms);
    w.key("slots_per_sec");
    w.number(sec > 0.0 ? static_cast<double>(r.slots) / sec : 0.0);
    w.key("cells_per_sec");
    w.number(sec > 0.0 ? static_cast<double>(r.cells) / sec : 0.0);
    w.key("telemetry_wall_ms");
    w.number(r.telemetry_wall_ms);
    w.key("telemetry_overhead");
    w.number(r.wall_ms > 0.0 ? r.telemetry_wall_ms / r.wall_ms : 0.0);
    w.close('}');
  }
  w.close(']');
  w.close('}');
  const std::string doc = w.str();

  if (cli.has("json")) {
    const std::string path = cli.get_path("json", "");
    std::ofstream out(path);
    if (!(out << doc << "\n")) {
      std::cerr << "error: cannot write " << path << "\n";
      return 1;
    }
    std::cout << "perf document written to " << path << "\n";
  } else {
    std::cout << doc << "\n";
  }

  for (const auto& r : rows) {
    const double sec = r.wall_ms / 1e3;
    std::cout << r.sim << "/" << r.ports << ": "
              << (sec > 0.0 ? static_cast<double>(r.slots) / sec : 0.0)
              << " slots/s, "
              << (sec > 0.0 ? static_cast<double>(r.cells) / sec : 0.0)
              << " cells/s, telemetry x"
              << (r.wall_ms > 0.0 ? r.telemetry_wall_ms / r.wall_ms : 0.0)
              << "\n";
  }
  std::cout << "profiler: disabled scope " << disabled_ns
            << " ns, enabled scope " << enabled_ns << " ns, overhead "
            << overhead_frac * 100.0 << "% of the cheapest slot (bound "
            << kBound * 100.0 << "%)\n";

  // Optional instrumented-run artifacts for the trace tooling.
  if (cli.has("trace") || cli.has("sim-trace") || cli.has("report")) {
    sw::SwitchSimConfig cfg;
    cfg.ports = 16;
    cfg.warmup_slots = 200;
    cfg.measure_slots = 2'000;
    cfg.telemetry = telemetry_on();
    cfg.telemetry.sample_every = 1;
    cfg.fault_plan = exec::make_fault_plan(exec::FaultScenario::kCombined,
                                           cfg.warmup_slots,
                                           cfg.measure_slots);
    cfg.fault_plan.seeded(0xBEEF);
    cfg.drain_max_slots = 20'000;
    sw::SwitchSim sim(cfg, sim::make_uniform(cfg.ports, 0.6, 11));
    prof::Profiler::instance().reset();
    prof::Profiler::instance().enable(/*capture_spans=*/true);
    prof::Profiler::instance().set_thread_name("bench_perf");
    sim.run();
    prof::Profiler::instance().disable();

    auto write_doc = [](const std::string& path, const std::string& body,
                        const char* what) {
      std::ofstream out(path);
      if (!(out << body << "\n")) {
        std::cerr << "error: cannot write " << path << "\n";
        return false;
      }
      std::cout << what << " written to " << path << "\n";
      return true;
    };
    if (cli.has("trace") &&
        !write_doc(cli.get_path("trace", ""),
                   prof::wall_trace_json(prof::Profiler::instance(), 0),
                   "wall-clock Chrome trace"))
      return 1;
    if (cli.has("sim-trace")) {
      const prof::TimeSeriesData series = sim.telemetry().series().snapshot();
      if (!write_doc(cli.get_path("sim-trace", ""),
                     prof::sim_trace_json(&sim.telemetry().trace(),
                                          &cfg.fault_plan, &series),
                     "sim-time Chrome trace"))
        return 1;
    }
    if (cli.has("report")) {
      telemetry::RunReport report = sim.report();
      report.attach_build_info();
      report.profile = prof::Profiler::instance().flat_profile();
      if (!write_doc(cli.get_path("report", ""), report.to_json(2),
                     "run report"))
        return 1;
    }
    prof::Profiler::instance().reset();
  }

  if (overhead_frac >= kBound) {
    std::cerr << "error: disabled-profiler overhead " << overhead_frac * 100.0
              << "% exceeds the " << kBound * 100.0 << "% bound\n";
    return 1;
  }
  return 0;
}
