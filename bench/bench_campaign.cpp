// End-to-end campaign runner for the paper's headline sweep: the Fig. 7
// delay-vs-throughput grid (receiver count x offered load on the 64-port
// FLPPR switch) executed as one declarative CampaignSpec fanned out over
// a worker pool, emitted as a single osmosis.campaign.v1 JSON document.
//
//   bench_campaign [--threads=N] [--slots=S] [--loads=a,b,c]
//                  [--receivers=1,2,4] [--seed=S] [--json=<path>]
//                  [--timing=false] [--smoke] [--serve] [--topo]
//                  [--progress] [--trace=<path>]
//                  [--checkpoint-dir=DIR] [--checkpoint-every=N]
//                  [--resume=DIR] [--help]
//
// --serve swaps the grid for the open-loop serving preset (serve jobs
// on the 16-port switch, Poisson + MMPP arrivals) — same pool,
// checkpointing, and document machinery, different simulator.
//
// --topo swaps the grid for the topology-zoo preset (fat tree, Clos,
// Benes under credit/relayed/wormhole-VC flow control at 32 hosts,
// clean and with a transient mid-run spine outage); its output is
// committed as bench/baselines/topo_smoke.json.
//
// --progress emits one JSON heartbeat line to stderr per completed job
// ({"job", "digest", "wall_ms", "throughput", "ok"}), so a supervisor
// tailing the stream sees liveness without parsing the final document.
//
// --trace=<path> records wall-clock profiler spans for the whole
// campaign and writes a Chrome-trace JSON (open in Perfetto or
// chrome://tracing): one track per pool worker, one slice per job —
// the campaign's Gantt chart. See DESIGN.md §11.
//
// --threads=0 (default) uses every hardware thread; results are
// byte-identical at any thread count because each job's seed derives
// from (campaign_seed, job_index), never from execution order.
//
// --smoke runs the small fixed campaign whose output is committed as
// bench/baselines/campaign_smoke.json; scripts/check.sh re-runs it and
// holds the fresh document against the baseline with campaign_compare.
//
// --checkpoint-dir=DIR snapshots each in-flight job every
// --checkpoint-every=N steps and records finished jobs, so a killed
// campaign resumes with --resume=DIR: completed jobs load verbatim,
// interrupted jobs restore mid-flight, and the final document is
// byte-identical (with --timing=false) to an uninterrupted run. See
// DESIGN.md §10.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "src/ckpt/ckpt.hpp"
#include "src/exec/campaign_runner.hpp"
#include "src/prof/profiler.hpp"
#include "src/prof/trace_export.hpp"
#include "src/telemetry/json.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

using namespace osmosis;

namespace {

exec::CampaignSpec smoke_spec() {
  exec::CampaignSpec spec;
  spec.name = "campaign_smoke";
  spec.ports = {16};
  spec.schedulers = {sw::SchedulerKind::kFlppr, sw::SchedulerKind::kIslip};
  spec.receivers = {2};
  spec.loads = {0.3, 0.7};
  spec.faults = {exec::FaultScenario::kNone, exec::FaultScenario::kCombined};
  spec.warmup_slots = 500;
  spec.measure_slots = 4'000;
  spec.campaign_seed = 0xCA4B;
  return spec;
}

exec::CampaignSpec serve_spec() {
  // Serving preset: open-loop serve jobs mixed into the same campaign
  // machinery (pool, retries, checkpointing) as the cell-level sweeps.
  exec::CampaignSpec spec;
  spec.name = "campaign_serve";
  spec.sims = {exec::SimKind::kServe};
  spec.ports = {16};
  spec.receivers = {2};
  spec.loads = {0.4, 0.8};
  spec.clients = {2'000};
  spec.arrivals = {api::ArrivalKind::kPoisson, api::ArrivalKind::kMmpp};
  spec.warmup_slots = 500;
  spec.measure_slots = 4'000;
  spec.campaign_seed = 0x5E12'CA;
  return spec;
}

exec::CampaignSpec topo_spec() {
  // Topology-zoo preset: the §VI.C scenario matrix as a campaign grid.
  // Three topology families x all three flow-control kinds, clean and
  // under a transient spine/middle-column outage — 18 jobs at 32 hosts
  // (the smallest count every generator accepts).
  exec::CampaignSpec spec;
  spec.name = "campaign_topo";
  spec.sims = {exec::SimKind::kTopo};
  spec.schedulers = {sw::SchedulerKind::kIslip};
  spec.ports = {32};  // hosts for topo jobs
  spec.receivers = {1};
  spec.loads = {0.6};
  spec.topologies = {topo::TopoKind::kFatTree, topo::TopoKind::kClos,
                     topo::TopoKind::kBenes};
  spec.flow_controls = {topo::FcKind::kCredit, topo::FcKind::kRelayed,
                        topo::FcKind::kWormholeVc};
  spec.routings = {topo::RouteKind::kDestMod};
  spec.faults = {exec::FaultScenario::kNone,
                 exec::FaultScenario::kSpineOutage};
  spec.warmup_slots = 500;
  spec.measure_slots = 4'000;
  spec.campaign_seed = 0x7090'CA;
  return spec;
}

exec::CampaignSpec headline_spec(const util::Cli& cli) {
  exec::CampaignSpec spec;
  spec.name = "fig7_headline";
  spec.ports = {64};
  std::vector<int> rx;
  for (long long r : cli.get_ints("receivers", {1, 2, 4}))
    rx.push_back(static_cast<int>(r));
  spec.receivers = rx;
  spec.loads = cli.get_doubles(
      "loads", {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.85, 0.9, 0.95,
                0.99});
  spec.warmup_slots = 2'000;
  spec.measure_slots =
      static_cast<std::uint64_t>(cli.get_int("slots", 20'000));
  spec.campaign_seed = static_cast<std::uint64_t>(cli.get_int("seed", 0x717));
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);

  const exec::CampaignSpec spec =
      cli.has("smoke")   ? smoke_spec()
      : cli.has("serve") ? serve_spec()
      : cli.has("topo")  ? topo_spec()
                         : headline_spec(cli);
  // With a preset flag the sweep getters never run; invoke them anyway
  // under --help so the listing stays complete.
  if (cli.has("help") &&
      (cli.has("smoke") || cli.has("serve") || cli.has("topo")))
    headline_spec(cli);

  exec::RunnerOptions opts;
  opts.threads = static_cast<unsigned>(cli.get_int("threads", 0));
  const std::string resume_dir = cli.get_path("resume", "");
  opts.checkpoint.dir = resume_dir.empty()
                            ? cli.get_path("checkpoint-dir", "")
                            : resume_dir;
  opts.checkpoint.every =
      static_cast<std::uint64_t>(cli.get_int("checkpoint-every", 0));
  opts.checkpoint.resume = !resume_dir.empty();
  if (!opts.checkpoint.dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opts.checkpoint.dir, ec);
    if (ec) {
      std::cerr << "error: cannot create checkpoint dir "
                << opts.checkpoint.dir << ": " << ec.message() << "\n";
      return 1;
    }
  }

  if (cli.has("progress")) {
    // One line per finished job; the runner serializes calls, so lines
    // never interleave. stderr keeps the machine-readable stream clear
    // of the human-readable stdout tables.
    opts.on_job_done = [](const exec::JobResult& r) {
      const std::string label = r.spec.label();
      telemetry::JsonWriter w(0);
      w.open('{');
      w.key("job");
      w.number(static_cast<double>(r.spec.index));
      w.key("digest");
      char digest[16];
      std::snprintf(digest, sizeof digest, "%08x", ckpt::crc32(label));
      w.string(digest);
      w.key("label");
      w.string(label);
      w.key("wall_ms");
      w.number(r.wall_ms);
      w.key("throughput");
      w.number(r.ok ? r.metrics.at("throughput") : 0.0);
      w.key("ok");
      w.boolean(r.ok);
      w.close('}');
      std::fprintf(stderr, "%s\n", w.str().c_str());
    };
  }

  const bool tracing = cli.has("trace");
  const bool timing = cli.get_bool("timing", true);
  const std::string json_path = cli.get_path("json", "");
  cli.maybe_help(
      "campaign runner for the Fig. 7 delay-vs-throughput sweep "
      "(--smoke: fixed baseline grid; --serve: open-loop serving preset)");
  if (tracing) prof::Profiler::instance().enable(/*capture_spans=*/true);

  std::cout << "campaign '" << spec.name << "': " << spec.job_count()
            << " jobs\n";

  exec::CampaignRunner runner(opts);
  const exec::CampaignResult result = runner.run(spec);

  if (tracing) {
    prof::Profiler::instance().disable();
    const std::string path = cli.get_path("trace", "");
    std::ofstream out(path);
    if (!(out << prof::wall_trace_json(prof::Profiler::instance(), 0)
              << "\n")) {
      std::cerr << "error: cannot write trace JSON to " << path << "\n";
      return 1;
    }
    std::cout << "Chrome trace written to " << path << "\n";
  }

  util::Table t({"label", "throughput", "mean delay", "p99 delay",
                 "grant lat"},
                3);
  t.set_title("per-job results (delays in cell cycles)");
  for (const auto& j : result.jobs) {
    if (!j.ok) {
      t.add_row({j.spec.label(), std::string("FAILED: " + j.error),
                 std::string("-"), std::string("-"), std::string("-")});
      continue;
    }
    // Not every simulator reports every column (topo jobs have no
    // grant path), so missing metrics render as 0.
    const auto metric = [&j](const char* key) {
      const auto it = j.metrics.find(key);
      return it == j.metrics.end() ? 0.0 : it->second;
    };
    t.add_row({j.spec.label(), metric("throughput"), metric("mean_delay"),
               metric("p99_delay"), metric("mean_grant_latency")});
  }
  t.print(std::cout);

  std::cout << "\naggregate: " << result.jobs.size() << " jobs ("
            << result.failed_jobs() << " failed), "
            << result.threads_used << " threads, " << result.wall_ms
            << " ms wall\n";
  for (const auto& [name, h] : result.aggregate_hists)
    std::cout << "  " << name << ": n=" << h.count() << " mean=" << h.mean()
              << " p99=" << h.p99() << "\n";

  if (result.failed_jobs() > 0) {
    std::cerr << "error: " << result.failed_jobs() << " jobs failed\n";
    return 1;
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!(out << result.to_json(2, timing) << "\n")) {
      std::cerr << "error: cannot write campaign JSON to " << json_path
                << "\n";
      return 1;
    }
    std::cout << "campaign JSON written to " << json_path << "\n";
  }
  return 0;
}
