// §IV.C / §V — guard time vs effective user bandwidth. The 51.2 ns cell
// carries guard time (switch settling + burst-mode phase reacquisition +
// arrival jitter), FEC overhead (6.25 %) and a header; what remains is
// ~75 % effective user bandwidth. Swept over switching technologies and
// cell sizes, including the §VII path to shorter cells via sub-ns
// DPSK-saturated SOA guards.

#include <iostream>

#include "src/phy/guard_time.hpp"
#include "src/phy/technology.hpp"
#include "src/util/table.hpp"

using namespace osmosis;

int main() {
  std::cout << "SS V reproduction: cell timing and effective user "
               "bandwidth\n\n";
  const auto demo = phy::demonstrator_cell_format();
  std::cout << "demonstrator format: " << phy::describe(demo) << "\n"
            << "(paper: 51.2 ns packet cycle, effective user bandwidth "
               "close to 75 %)\n\n";

  std::cout << "Technology sweep (256 B cell at 40 Gb/s):\n\n";
  util::Table t({"switch technology", "guard [ns]", "user efficiency [%]",
                 "viable for 51.2 ns cells?"},
                2);
  for (const auto& tech : phy::technology_catalogue()) {
    phy::CellFormat f = demo;
    f.guard.switch_settle_ns = tech.guard_time_ns;
    const bool viable = phy::viable_for_packet_switching(tech, f.cycle_ns());
    t.add_row({tech.name, tech.guard_time_ns,
               f.feasible() && viable ? f.user_efficiency() * 100.0 : 0.0,
               std::string(viable ? "yes" : "no")});
  }
  t.print(std::cout);

  std::cout << "\nCell-size sweep: user efficiency [%] by cell size and "
               "guard technology (40 Gb/s):\n\n";
  util::Table c({"cell [B]", "cycle [ns]", "SOA 5 ns", "DPSK-sat 0.8 ns",
                 "tunable laser 45 ns"},
                1);
  for (double bytes : {64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0}) {
    auto eff = [&](double guard) {
      phy::CellFormat f = demo;
      f.cell_bytes = bytes;
      f.guard.switch_settle_ns = guard;
      return f.feasible() ? f.user_efficiency() * 100.0 : 0.0;
    };
    phy::CellFormat probe = demo;
    probe.cell_bytes = bytes;
    c.add_row({bytes, probe.cycle_ns(), eff(5.0), eff(0.8), eff(45.0)});
  }
  c.print(std::cout);
  std::cout
      << "\nShapes to note: at 51.2 ns cells the 45 ns tunable-laser "
         "guard is hopeless (hence SOAs, SS IV.C); sub-ns guards (SS VII) "
         "keep ~75 % efficiency even for 64 B cells, enabling shorter "
         "cells or faster ports.\n";
  return 0;
}
