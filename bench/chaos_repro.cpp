// Replays an osmosis.repro.v1 file (the chaos shrinker's minimal-repro
// output) and checks the observed verdict against the one recorded in
// the file: same violated/clean flag and, when violated, the same
// invariant token. Exit 0 = reproduced, 1 = verdict mismatch, 2 = usage.
//
//   chaos_repro <repro.json> [--verbose]

#include <cstdio>
#include <iostream>
#include <string>

#include "src/chaos/repro.hpp"
#include "src/chaos/trial.hpp"
#include "src/util/cli.hpp"

int main(int argc, char** argv) {
  osmosis::util::Cli cli(argc, argv);
  if (cli.positional().size() != 1) {
    std::cerr << "usage: chaos_repro <repro.json> [--verbose]\n";
    return 2;
  }
  const bool verbose = cli.get_bool("verbose", false);

  const osmosis::chaos::Repro repro =
      osmosis::chaos::read_repro_file(cli.positional()[0]);
  std::printf("chaos_repro: %s\n", repro.spec.label().c_str());
  if (!repro.note.empty()) std::printf("  note: %s\n", repro.note.c_str());
  std::printf("  expecting: %s%s\n",
              repro.expected_violated ? "violated " : "clean",
              repro.expected_violated ? repro.expected_invariant.c_str()
                                      : "");

  osmosis::chaos::TrialResult r;
  const bool match = osmosis::chaos::replay_matches(repro, r);
  std::printf("  observed:  %s%s (%llu violations over %llu checks)\n",
              r.violated ? "violated " : "clean",
              r.violated ? r.invariant.c_str() : "",
              static_cast<unsigned long long>(r.violations),
              static_cast<unsigned long long>(r.checks));
  if (verbose) {
    for (const std::string& line : r.violation_log)
      std::printf("    %s\n", line.c_str());
  }
  std::printf("chaos_repro: %s\n", match ? "REPRODUCED" : "MISMATCH");
  return match ? 0 : 1;
}
