// Table 1 — key HPC fabric requirements, re-evaluated against the
// simulated OSMOSIS architecture: latency, port count, port bandwidth,
// sustained throughput, packet size, loss, effective user bandwidth and
// ordering. Also reports the bimodal control/data latency split that
// §III demands ("the fabric must deliver performance for both types of
// traffic simultaneously").

#include <iostream>
#include <memory>

#include "src/core/osmosis_system.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

using namespace osmosis;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto slots = static_cast<std::uint64_t>(cli.get_int("slots", 20'000));

  core::OsmosisSystem sys;
  std::cout << "Table 1 reproduction: key HPC fabric requirements vs the "
               "simulated OSMOSIS architecture\n\n";

  util::Table t({"requirement", "target (Table 1)", "achieved", "pass"});
  for (const auto& row : sys.check_requirements(slots)) {
    t.add_row({row.requirement, row.target, row.achieved,
               std::string(row.pass ? "yes" : "NO")});
  }
  t.print(std::cout);

  // Bimodal mix: control packets must see low latency while data
  // packets keep utilization high.
  const auto& cfg = sys.config();
  auto bimodal = std::make_unique<sim::BimodalHpc>(cfg.ports, 0.9, 0.1,
                                                   sim::Rng(0x71));
  const auto r = sys.simulate(std::move(bimodal), slots);
  std::cout << "\nBimodal traffic at 90 % load (10 % control class, strict "
               "priority):\n";
  util::Table b({"class", "mean delay [cycles]", "mean delay [ns]"}, 2);
  b.add_row({std::string("control"), r.mean_control_delay,
             r.mean_control_delay * cfg.cell.cycle_ns()});
  b.add_row({std::string("data"), r.mean_data_delay,
             r.mean_data_delay * cfg.cell.cycle_ns()});
  b.print(std::cout);

  std::cout << "\nThroughput at 90 % bimodal load: " << r.throughput
            << ", out-of-order deliveries: " << r.out_of_order << "\n";
  return 0;
}
