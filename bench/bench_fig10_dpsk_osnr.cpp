// Fig. 10 — OSNR penalty as a function of SOA input power for DPSK and
// NRZ modulation formats, at BER targets 1e-6 and 1e-10. The paper's
// headline: DPSK's constant envelope suppresses cross-gain-modulation
// transients, allowing ~14 dB more SOA input loading at 1 dB OSNR
// penalty (and deep-saturation operation that cuts guard times to
// sub-ns, §VII).

#include <cstdio>
#include <iostream>

#include "src/phy/link_budget.hpp"
#include "src/phy/soa.hpp"
#include "src/util/table.hpp"

using namespace osmosis;

int main() {
  phy::SoaGainModel model;

  std::cout << "Fig. 10 reproduction: OSNR penalty vs SOA input power, "
               "NRZ vs DPSK\n\n";

  util::Table t({"Pin [dBm]", "NRZ 1e-6", "NRZ 1e-10", "DPSK 1e-6",
                 "DPSK 1e-10", "SOA gain [dB]"},
                2);
  t.set_title("OSNR penalty [dB] (capped at 30)");
  for (double p = 0.0; p <= 20.0; p += 2.0) {
    t.add_row({p,
               model.osnr_penalty_db(p, phy::Modulation::kNrz, 1e-6),
               model.osnr_penalty_db(p, phy::Modulation::kNrz, 1e-10),
               model.osnr_penalty_db(p, phy::Modulation::kDpsk, 1e-6),
               model.osnr_penalty_db(p, phy::Modulation::kDpsk, 1e-10),
               model.gain_db(p)});
  }
  t.print(std::cout);

  std::cout << "\nInput loading at 1 dB OSNR penalty (the paper's metric):\n\n";
  util::Table h({"BER target", "NRZ [dBm]", "DPSK [dBm]",
                 "DPSK improvement [dB]"},
                2);
  for (double ber : {1e-6, 1e-10}) {
    const double nrz =
        model.input_power_at_penalty(1.0, phy::Modulation::kNrz, ber);
    const double dpsk =
        model.input_power_at_penalty(1.0, phy::Modulation::kDpsk, ber);
    char label[32];
    std::snprintf(label, sizeof label, "%.0e", ber);
    h.add_row({std::string(label), nrz, dpsk, dpsk - nrz});
  }
  h.print(std::cout);
  std::cout << "(paper: 14 dB improvement measured)\n";

  std::cout << "\nRequired OSNR by format (separate measurement in SS VII: "
               "DPSK ~3 dB lower at any BER):\n\n";
  util::Table o({"BER", "NRZ OSNR [dB]", "DPSK OSNR [dB]"}, 2);
  for (double ber : {1e-6, 1e-9, 1e-10, 1e-12}) {
    char label[32];
    std::snprintf(label, sizeof label, "%.0e", ber);
    o.add_row({std::string(label),
               phy::required_osnr_db(ber, phy::Modulation::kNrz),
               phy::required_osnr_db(ber, phy::Modulation::kDpsk)});
  }
  o.print(std::cout);
  return 0;
}
