// Table 1's throughput requirement rests on work conservation ("a
// switch output may never be idle when a packet is available somewhere
// in the switch", citing [11]). This harness reproduces the [11]-style
// study on the CIOQ model: work-conservation violation rate vs crossbar
// speedup and vs output-buffer depth, against the ideal output-queued
// floor.

#include <iostream>

#include "src/baseline/cioq.hpp"
#include "src/baseline/oq_switch.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

using namespace osmosis;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto slots = static_cast<std::uint64_t>(cli.get_int("slots", 15'000));

  std::cout << "[11] reproduction: work-conservingness of CIOQ switches "
               "with limited output buffers (16 ports, 90 % uniform "
               "load)\n\n";

  util::Table t({"speedup", "violation rate", "mean delay",
                 "max output occupancy"},
                4);
  for (int speedup : {1, 2, 3, 4}) {
    baseline::CioqConfig cfg;
    cfg.ports = 16;
    cfg.speedup = speedup;
    cfg.output_buffer_cells = 8;
    cfg.measure_slots = slots;
    const auto r = baseline::run_cioq_uniform(cfg, 0.9, 0x11C);
    t.add_row({static_cast<long long>(speedup),
               r.work_conservation_violation_rate, r.mean_delay,
               static_cast<long long>(r.max_output_occupancy)});
  }
  t.print(std::cout);
  const auto oq = baseline::run_oq_uniform(16, 0.9, 0x11C, 1'000, slots);
  std::cout << "ideal output-queued floor: violation rate 0, mean delay "
            << oq.mean_delay << "\n";

  std::cout << "\nOutput-buffer depth at speedup 2 (the 'limited output "
               "buffers' axis of [11]):\n\n";
  util::Table b({"buffer [cells]", "violation rate", "mean delay"}, 4);
  for (int buffers : {1, 2, 4, 8, 16}) {
    baseline::CioqConfig cfg;
    cfg.ports = 16;
    cfg.speedup = 2;
    cfg.output_buffer_cells = buffers;
    cfg.measure_slots = slots;
    const auto r = baseline::run_cioq_uniform(cfg, 0.9, 0x11D);
    b.add_row({static_cast<long long>(buffers),
               r.work_conservation_violation_rate, r.mean_delay});
  }
  b.print(std::cout);
  std::cout << "(shape per [11]: speedup 2 with a handful of output "
               "buffer cells is effectively work-conserving; speedup 1 — "
               "a plain input-queued crossbar — is not, which is why the "
               "OSMOSIS egress adapters buffer and the dual-receiver "
               "architecture gives the crossbar its effective speedup)\n";
  return 0;
}
