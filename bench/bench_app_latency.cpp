// §III — application-to-application latency. The paper's contemporary
// target is 1 µs app-to-app, decomposed into the driver stack and HCA at
// both ends, the switch fabric (< 500 ns including machine-room cabling)
// and cable time of flight. This harness measures message latencies over
// the simulated demonstrator switch (segmentation, VOQ, FLPPR,
// reassembly) and prints the full budget, plus message-size sweeps and
// collective (all-to-all / ring) completion times.

#include <iostream>
#include <memory>

#include "src/host/message_sim.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

using namespace osmosis;

namespace {

host::MessageSimConfig demo_config(int hosts, std::uint64_t slots) {
  host::MessageSimConfig cfg;
  cfg.sw.ports = hosts;
  cfg.sw.sched.kind = sw::SchedulerKind::kFlppr;
  cfg.sw.sched.receivers = 2;
  cfg.sw.warmup_slots = 0;
  cfg.sw.measure_slots = slots;
  cfg.cell = phy::demonstrator_cell_format();
  cfg.stats_after_slot = slots / 10;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto slots = static_cast<std::uint64_t>(cli.get_int("slots", 20'000));

  std::cout << "SS III reproduction: application-to-application latency "
               "(target ~1 us; < 500 ns in the fabric incl. cabling)\n\n";

  // Small control messages through a lightly loaded 64-port switch.
  auto cfg = demo_config(64, slots);
  host::MessageSim light(cfg, std::make_unique<host::RandomMessages>(
                                  64, 0.02, 1.0, 64.0, 64.0, sim::Rng(0xA11)));
  const auto lr = light.run();

  const auto budget =
      host::measure_app_to_app(cfg, lr.mean_control_latency_cycles);
  util::Table b({"budget element", "ns"}, 1);
  b.set_title("app-to-app budget, 64 B control message, light load");
  for (const auto& item : budget.items) b.add_row({item.name, item.ns});
  b.add_row({std::string("TOTAL"), budget.total_ns()});
  b.print(std::cout);
  std::cout << "fabric share (switch + cables): "
            << lr.mean_control_latency_cycles * cfg.cell.cycle_ns() +
                   2.0 * cfg.cable_one_way_ns
            << " ns (paper target: < 500 ns)\n";

  // Message-size sweep at moderate random load.
  std::cout << "\nMessage latency vs size (random traffic, ~50 % cell "
               "load, 64 hosts):\n\n";
  util::Table t({"message [B]", "cells", "mean latency [cycles]",
                 "p99 [cycles]", "mean app-to-app [ns]"},
                2);
  for (double bytes : {64.0, 256.0, 1024.0, 4096.0, 16384.0}) {
    auto c = demo_config(64, slots);
    host::Segmenter probe(c.cell.user_bytes());
    const int cells = probe.cells_for(bytes);
    // Keep the cell load near 50 % regardless of size.
    const double rate = 0.5 / cells;
    host::MessageSim sim(c, std::make_unique<host::RandomMessages>(
                                64, rate, 0.0, 64.0, bytes, sim::Rng(0xB22)));
    const auto r = sim.run();
    t.add_row({bytes, static_cast<long long>(cells), r.mean_latency_cycles,
               r.p99_latency_cycles, r.mean_app_latency_ns});
  }
  t.print(std::cout);

  // Collectives.
  std::cout << "\nCollective completion (64 hosts, cycles of 51.2 ns):\n\n";
  util::Table c({"collective", "message [B]", "posted msgs",
                 "completion [cycles]", "completion [us]"},
                2);
  for (double bytes : {256.0, 1024.0, 4096.0}) {
    auto cfgA = demo_config(64, 200'000);
    host::MessageSim a2a(cfgA,
                         std::make_unique<host::AllToAll>(64, bytes));
    const auto ra = a2a.run();
    c.add_row({std::string("all-to-all"), bytes,
               static_cast<long long>(ra.posted),
               static_cast<double>(ra.collective_completion_slot),
               ra.collective_completion_slot * cfgA.cell.cycle_ns() / 1000.0});
    auto cfgR = demo_config(64, 20'000);
    host::MessageSim ring(cfgR,
                          std::make_unique<host::RingExchange>(64, bytes));
    const auto rr = ring.run();
    c.add_row({std::string("ring exchange"), bytes,
               static_cast<long long>(rr.posted),
               static_cast<double>(rr.collective_completion_slot),
               rr.collective_completion_slot * cfgR.cell.cycle_ns() / 1000.0});
  }
  c.print(std::cout);
  std::cout << "(all-to-all floor = (N-1) x cells-per-message injection "
               "slots; ring is contention-free and finishes in ~cells + "
               "pipeline)\n";
  return 0;
}
