// Open-loop serving sweep over the libfabric-flavored front-end
// (DESIGN.md §14): a population of clients (up to millions) issues
// tagged sends and one-sided RMA into the switch at a rate independent
// of completions, per-tenant token buckets shed the excess, and each
// grid point reports offered/accepted/shed/delivered plus the end-to-end
// latency tail (p50/p99/p999) against an optional SLO envelope.
//
//   bench_serve [--clients=1000,1000000] [--arrival=poisson,mmpp,diurnal]
//               [--loads=0.5,0.8] [--tenants=4] [--ports=16]
//               [--slots=S] [--warmup=W] [--threads=N] [--seed=S]
//               [--slo-p99=CYCLES] [--slo-p999=CYCLES]
//               [--json=<path>] [--timing=false] [--report=<path>]
//               [--smoke] [--progress]
//               [--checkpoint-dir=DIR] [--checkpoint-every=N]
//               [--resume=DIR] [--help]
//
// The grid expands clients x arrival x load into one CampaignSpec with
// sims = {serve}, so the sweep rides the campaign runner's worker pool,
// retry/quarantine rotation, and kill-safe checkpointing unchanged. The
// document is byte-identical at any --threads value (job seeds derive
// from grid position) and across a SIGKILL + --resume.
//
// --smoke runs the small fixed grid whose output is committed as
// bench/baselines/serve_smoke.json (includes a 1,000,000-client Poisson
// point); scripts/check.sh re-runs it and diffs against the baseline.
//
// --report writes the first grid point's full RunReport (with the
// "serving" section) for schema_check --report --need-serving.
//
// --slo-p99 / --slo-p999 (cell slots; 0 = unchecked) turn the table's
// last column into a verdict and the exit status into a gate: any
// measured-window quantile over its bound fails the run.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/api/openloop.hpp"
#include "src/ckpt/ckpt.hpp"
#include "src/exec/campaign_runner.hpp"
#include "src/telemetry/json.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

using namespace osmosis;

namespace {

std::vector<api::ArrivalKind> parse_arrivals(const util::Cli& cli) {
  std::vector<api::ArrivalKind> kinds;
  std::string text = cli.get("arrival", "poisson");
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = text.find(',', start);
    const std::string item = text.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    api::ArrivalKind k;
    if (!api::parse_arrival(item, &k)) {
      std::cerr << "error: --arrival: '" << item
                << "' is not an arrival process (poisson/mmpp/diurnal)\n";
      std::exit(2);
    }
    kinds.push_back(k);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return kinds;
}

exec::CampaignSpec smoke_spec() {
  // Committed as bench/baselines/serve_smoke.json. Includes the headline
  // acceptance point: one million Poisson clients on the 16-port switch.
  exec::CampaignSpec spec;
  spec.name = "serve_smoke";
  spec.sims = {exec::SimKind::kServe};
  spec.ports = {16};
  spec.receivers = {2};
  spec.loads = {0.65};
  spec.clients = {1'000, 1'000'000};
  spec.arrivals = {api::ArrivalKind::kPoisson, api::ArrivalKind::kMmpp,
                   api::ArrivalKind::kDiurnal};
  spec.tenants = 4;
  spec.warmup_slots = 500;
  spec.measure_slots = 4'000;
  spec.campaign_seed = 0x5E12'FE;
  return spec;
}

exec::CampaignSpec sweep_spec(const util::Cli& cli) {
  exec::CampaignSpec spec;
  spec.name = "serve_sweep";
  spec.sims = {exec::SimKind::kServe};
  spec.ports = {static_cast<int>(cli.get_int("ports", 16))};
  spec.receivers = {2};
  spec.loads = cli.get_doubles("loads", {0.5, 0.8});
  spec.clients.clear();
  for (long long c : cli.get_ints("clients", {1'000, 1'000'000}))
    spec.clients.push_back(c);
  spec.arrivals = parse_arrivals(cli);
  spec.tenants = static_cast<int>(cli.get_int("tenants", 4));
  spec.warmup_slots = static_cast<std::uint64_t>(cli.get_int("warmup", 2'000));
  spec.measure_slots =
      static_cast<std::uint64_t>(cli.get_int("slots", 20'000));
  spec.campaign_seed = static_cast<std::uint64_t>(cli.get_int("seed", 0x5E12));
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);

  const bool smoke = cli.has("smoke");
  const exec::CampaignSpec spec = smoke ? smoke_spec() : sweep_spec(cli);
  if (smoke) {
    // Register the sweep flags so --smoke --help still lists them all.
    if (cli.has("help")) sweep_spec(cli);
  }

  exec::RunnerOptions opts;
  opts.threads = static_cast<unsigned>(cli.get_int("threads", 0));
  const std::string resume_dir = cli.get_path("resume", "");
  opts.checkpoint.dir = resume_dir.empty()
                            ? cli.get_path("checkpoint-dir", "")
                            : resume_dir;
  opts.checkpoint.every =
      static_cast<std::uint64_t>(cli.get_int("checkpoint-every", 0));
  opts.checkpoint.resume = !resume_dir.empty();
  const double slo_p99 = cli.get_double("slo-p99", 0.0);
  const double slo_p999 = cli.get_double("slo-p999", 0.0);
  const bool progress = cli.has("progress");
  const bool timing = cli.get_bool("timing", true);
  const std::string json_path = cli.get_path("json", "");
  const std::string report_path = cli.get_path("report", "");
  cli.maybe_help(
      "open-loop serving sweep: clients x arrival x load on the serving "
      "front-end,\nchecked against --slo-p99/--slo-p999 latency envelopes "
      "(cell slots; 0 = off)");

  if (!opts.checkpoint.dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opts.checkpoint.dir, ec);
    if (ec) {
      std::cerr << "error: cannot create checkpoint dir "
                << opts.checkpoint.dir << ": " << ec.message() << "\n";
      return 1;
    }
  }

  if (progress) {
    opts.on_job_done = [](const exec::JobResult& r) {
      const std::string label = r.spec.label();
      telemetry::JsonWriter w(0);
      w.open('{');
      w.key("job");
      w.number(static_cast<double>(r.spec.index));
      w.key("digest");
      char digest[16];
      std::snprintf(digest, sizeof digest, "%08x", ckpt::crc32(label));
      w.string(digest);
      w.key("label");
      w.string(label);
      w.key("wall_ms");
      w.number(r.wall_ms);
      w.key("delivered");
      w.number(r.ok ? r.metrics.at("delivered") : 0.0);
      w.key("ok");
      w.boolean(r.ok);
      w.close('}');
      std::fprintf(stderr, "%s\n", w.str().c_str());
    };
  }

  std::cout << "serving campaign '" << spec.name << "': " << spec.job_count()
            << " jobs\n";

  exec::CampaignRunner runner(opts);
  const exec::CampaignResult result = runner.run(spec);

  const bool gated = slo_p99 > 0.0 || slo_p999 > 0.0;
  bool slo_ok = true;
  util::Table t({"label", "offered", "accepted", "shed", "delivered",
                 "p50", "p99", "p999", gated ? "slo" : "cq_over"},
                2);
  t.set_title("per-job serving results (latencies in cell slots)");
  for (const auto& j : result.jobs) {
    if (!j.ok) {
      t.add_row({j.spec.label(), std::string("FAILED: " + j.error),
                 std::string("-"), std::string("-"), std::string("-"),
                 std::string("-"), std::string("-"), std::string("-"),
                 std::string("-")});
      continue;
    }
    const double p99 = j.metrics.at("p99_latency");
    const double p999 = j.metrics.at("p999_latency");
    const bool pass = (slo_p99 <= 0.0 || p99 <= slo_p99) &&
                      (slo_p999 <= 0.0 || p999 <= slo_p999);
    slo_ok = slo_ok && pass;
    t.add_row({j.spec.label(), j.metrics.at("offered"),
               j.metrics.at("accepted"), j.metrics.at("shed"),
               j.metrics.at("delivered"), j.metrics.at("p50_latency"), p99,
               p999,
               gated ? std::string(pass ? "ok" : "VIOLATED")
                     : std::to_string(static_cast<long long>(
                           j.metrics.at("cq_overruns")))});
  }
  t.print(std::cout);

  std::cout << "\naggregate: " << result.jobs.size() << " jobs ("
            << result.failed_jobs() << " failed), " << result.threads_used
            << " threads, " << result.wall_ms << " ms wall\n";
  for (const auto& [name, h] : result.aggregate_hists)
    std::cout << "  " << name << ": n=" << h.count() << " mean=" << h.mean()
              << " p99=" << h.p99() << " p999=" << h.p999() << "\n";

  if (result.failed_jobs() > 0) {
    std::cerr << "error: " << result.failed_jobs() << " jobs failed\n";
    return 1;
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!(out << result.to_json(2, timing) << "\n")) {
      std::cerr << "error: cannot write campaign JSON to " << json_path
                << "\n";
      return 1;
    }
    std::cout << "campaign JSON written to " << json_path << "\n";
  }

  if (!report_path.empty()) {
    // The first grid point's full RunReport: the artifact schema_check
    // validates with --report --need-serving.
    std::ofstream out(report_path);
    if (!(out << result.jobs.front().report.to_json(2) << "\n")) {
      std::cerr << "error: cannot write run report to " << report_path
                << "\n";
      return 1;
    }
    std::cout << "run report written to " << report_path << "\n";
  }

  if (gated && !slo_ok) {
    std::cerr << "error: SLO envelope violated (p99 <= " << slo_p99
              << ", p999 <= " << slo_p999 << ")\n";
    return 1;
  }
  return 0;
}
