// §VI.D — comparison with other switch architectures, all at the same
// port count and under the same uniform traffic:
//   * OSMOSIS (FLPPR, dual receiver) — the paper's design,
//   * ideal output-queued switch — the work-conserving floor,
//   * burst/container switching — latency on the order of the burst time
//     even unloaded,
//   * load-balanced Birkhoff-von-Neumann — N/2 unloaded latency and
//     out-of-order delivery,
//   * Data Vortex — deflection routing with limited per-port throughput.

#include <iostream>

#include "src/baseline/birkhoff.hpp"
#include "src/baseline/burst_switch.hpp"
#include "src/baseline/data_vortex.hpp"
#include "src/baseline/oq_switch.hpp"
#include "src/sw/switch_sim.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

using namespace osmosis;

namespace {

struct Row {
  std::string name;
  double unloaded_delay;
  double delay_at_half;
  double saturation_throughput;
  double reorder_fraction;
  std::string loss;
};

sw::SwitchSimResult osmosis_run(int ports, double load, std::uint64_t slots) {
  sw::SwitchSimConfig cfg;
  cfg.ports = ports;
  cfg.sched.kind = sw::SchedulerKind::kFlppr;
  cfg.sched.receivers = 2;
  cfg.measure_slots = slots;
  return sw::run_uniform(cfg, load, 0x61D);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int ports = static_cast<int>(cli.get_int("ports", 16));
  const auto slots = static_cast<std::uint64_t>(cli.get_int("slots", 25'000));

  std::cout << "SS VI.D reproduction: architecture comparison at " << ports
            << " ports, uniform Bernoulli traffic (delays in cell "
               "cycles)\n\n";

  std::vector<Row> rows;

  {
    const auto lo = osmosis_run(ports, 0.05, slots);
    const auto mid = osmosis_run(ports, 0.5, slots);
    const auto hi = osmosis_run(ports, 1.0, slots);
    rows.push_back({"OSMOSIS (FLPPR, dual rx)", lo.mean_delay, mid.mean_delay,
                    hi.throughput, 0.0, "lossless"});
  }
  {
    const auto lo = baseline::run_oq_uniform(ports, 0.05, 1, 2'000, slots);
    const auto mid = baseline::run_oq_uniform(ports, 0.5, 1, 2'000, slots);
    const auto hi = baseline::run_oq_uniform(ports, 1.0, 1, 2'000, slots);
    rows.push_back({"ideal output-queued", lo.mean_delay, mid.mean_delay,
                    hi.throughput, 0.0, "lossless"});
  }
  {
    baseline::BurstSwitchConfig cfg;
    cfg.ports = ports;
    cfg.burst_cells = 16;
    cfg.measure_slots = slots;
    const auto lo = baseline::run_burst_uniform(cfg, 0.05, 2);
    const auto mid = baseline::run_burst_uniform(cfg, 0.5, 2);
    const auto hi = baseline::run_burst_uniform(cfg, 1.0, 2);
    rows.push_back({"burst switching (S=16)", lo.mean_delay, mid.mean_delay,
                    hi.throughput, 0.0, "lossless"});
  }
  {
    const auto lo = baseline::run_bvn_uniform(ports, 0.05, 3, 2'000, slots);
    const auto mid = baseline::run_bvn_uniform(ports, 0.5, 3, 2'000, slots);
    const auto hi = baseline::run_bvn_uniform(ports, 1.0, 3, 2'000, slots);
    rows.push_back({"Birkhoff-von-Neumann LB", lo.mean_delay, mid.mean_delay,
                    hi.throughput, mid.reorder_fraction, "lossless, OOO"});
  }
  {
    baseline::DataVortexConfig cfg;
    cfg.ports = ports;
    cfg.measure_slots = slots;
    const auto lo = baseline::run_vortex_uniform(cfg, 0.05, 4);
    const auto mid = baseline::run_vortex_uniform(cfg, 0.5, 4);
    const auto hi = baseline::run_vortex_uniform(cfg, 1.0, 4);
    rows.push_back({"Data Vortex (deflection)", lo.mean_delay, mid.mean_delay,
                    hi.throughput, 0.0, "inj. blocking"});
  }

  util::Table t({"architecture", "unloaded delay", "delay @ 50%",
                 "sat. throughput", "reorder frac @ 50%", "loss model"},
                3);
  for (const auto& r : rows)
    t.add_row({r.name, r.unloaded_delay, r.delay_at_half,
               r.saturation_throughput, r.reorder_fraction, r.loss});
  t.print(std::cout);

  std::cout << "\nExpected shapes (paper SS VI.D): burst switching pays ~the "
               "container time unloaded; BvN pays ~N/2 = "
            << ports / 2
            << " cycles unloaded and reorders heavily; Data Vortex "
               "saturates below full line rate; OSMOSIS tracks the "
               "output-queued floor closely while remaining bufferless in "
               "the optical core.\n";
  return 0;
}
