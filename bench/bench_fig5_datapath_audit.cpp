// Fig. 5 — structural audit of the OSMOSIS broadcast-and-select
// datapath: 8 broadcast modules (8x1 combiner + amplifier + 1x128 star
// coupler) and 128 switching modules with 8 fiber-select + 8
// wavelength-select SOA gates each, then the optical power budget along
// a selected path and the electrical power of the crossbar.

#include <iostream>

#include "src/core/config.hpp"
#include "src/phy/crossbar_optical.hpp"
#include "src/util/table.hpp"

using namespace osmosis;

int main() {
  const auto cfg = core::demonstrator_config().crossbar();
  phy::BroadcastSelectCrossbar xbar(cfg);

  std::cout << "Fig. 5 reproduction: OSMOSIS demonstrator datapath audit\n\n";

  util::Table s({"element", "count"});
  s.add_row({std::string("ingress adapters (Tx)"),
             static_cast<long long>(cfg.ports)});
  s.add_row({std::string("broadcast modules (fibers)"),
             static_cast<long long>(cfg.fibers)});
  s.add_row({std::string("WDM colors per fiber"),
             static_cast<long long>(cfg.wavelengths)});
  s.add_row({std::string("star-coupler split ways per fiber"),
             static_cast<long long>(cfg.split_ways())});
  s.add_row({std::string("optical switching modules"),
             static_cast<long long>(cfg.switching_modules())});
  s.add_row({std::string("SOA gates per module (fiber+color)"),
             static_cast<long long>(cfg.gates_per_module())});
  s.add_row({std::string("total fast SOA gates"),
             static_cast<long long>(cfg.total_soa_gates())});
  s.add_row({std::string("egress adapters (Rx), dual receiver"),
             static_cast<long long>(cfg.ports)});
  s.print(std::cout);

  const auto budget = xbar.power_budget();
  std::cout << "\nOptical power budget along one selected path:\n\n";
  util::Table p({"quantity", "value [dB(m)]"}, 2);
  p.add_row({std::string("launch power [dBm]"), cfg.launch_power_dbm});
  p.add_row({std::string("combiner+mux loss [dB]"), -cfg.mux_loss_db});
  p.add_row({std::string("broadcast amplifier gain [dB]"),
             cfg.preamp_gain_db});
  p.add_row({std::string("1x128 split loss [dB]"), -budget.split_loss_db});
  p.add_row({std::string("excess/demux loss [dB]"), -cfg.excess_loss_db});
  p.add_row({std::string("2 x SOA gate gain [dB]"),
             2.0 * cfg.soa_gate_gain_db});
  p.add_row({std::string("received power [dBm]"), budget.received_power_dbm});
  p.add_row({std::string("receiver sensitivity [dBm]"),
             cfg.receiver_sensitivity_dbm});
  p.add_row({std::string("margin [dB]"), budget.margin_db});
  p.print(std::cout);
  std::cout << "budget closes: " << (budget.closes ? "yes" : "NO") << "\n";

  // Fully configured crossbar: every egress receiver selects some input.
  for (int eg = 0; eg < cfg.ports; ++eg)
    for (int rx = 0; rx < cfg.receivers_per_egress; ++rx)
      xbar.connect((eg * 7 + rx * 13) % cfg.ports, eg, rx);
  const double cell_rate = 1.0 / 51.2e-9;
  std::cout << "\nElectrical power, fully configured: "
            << xbar.electrical_power_w() << " W (amplifiers + "
            << xbar.gates_on() << " biased SOA gates)\n"
            << "Control power at full cell rate (128 modules x "
            << cell_rate / 1e6 << " Mreconfig/s): "
            << xbar.control_power_w(128.0 * cell_rate) << " W\n"
            << "Note: neither number depends on the 40 Gb/s line rate — "
               "the paper's core power argument (SS I).\n";
  return 0;
}
