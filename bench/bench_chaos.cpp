// Chaos soak driver (DESIGN.md §12): generate seeded randomized trials
// across all four simulators, run them under the invariant monitor, and
// report any violation as a failure. Two modes:
//
//   fixed     (default) run exactly --trials trials; the emitted
//             osmosis.chaos_manifest.v1 document is byte-identical for a
//             given (--seed, --trials) at any --threads value;
//   soak      (--soak --budget-seconds=B) keep launching trial waves
//             until the wall-clock budget expires — trial count varies,
//             violations still fail the run.
//
// A deliberate accounting defect can be armed with --inject-defect to
// exercise the failure path end-to-end: the run then *expects*
// violations, and --shrink reduces the first violating trial to a
// minimal osmosis.repro.v1 file (--repro-out) that `chaos_repro`
// replays.
//
// Flags: --trials=100 --seed=1 --threads=0 --soak --budget-seconds=60
//        --json=PATH (manifest out) --inject-defect=KIND
//        --defect-period=7 --shrink --repro-out=PATH --verbose

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/chaos/generator.hpp"
#include "src/chaos/repro.hpp"
#include "src/chaos/shrink.hpp"
#include "src/chaos/trial.hpp"
#include "src/exec/thread_pool.hpp"
#include "src/telemetry/json.hpp"
#include "src/util/cli.hpp"

namespace {

using osmosis::chaos::Defect;
using osmosis::chaos::TrialResult;
using osmosis::chaos::TrialSpec;

struct TrialRow {
  TrialSpec spec;
  TrialResult result;
  bool ran = false;
};

std::string u64_str(std::uint64_t v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

/// Deterministic manifest: rows in trial-index order, no timing fields.
std::string manifest_json(std::uint64_t seed,
                          const std::vector<TrialRow>& rows) {
  std::uint64_t violations = 0, checks = 0, offered = 0, delivered = 0;
  for (const auto& r : rows) {
    violations += r.result.violations;
    checks += r.result.checks;
    offered += r.result.offered;
    delivered += r.result.delivered;
  }
  osmosis::telemetry::JsonWriter w(2);
  w.open('{');
  w.key("format");
  w.string("osmosis.chaos_manifest.v1");
  w.key("campaign_seed");
  w.string(u64_str(seed));
  w.key("trials");
  w.number(static_cast<double>(rows.size()));
  w.key("violations");
  w.number(static_cast<double>(violations));
  w.key("checks");
  w.number(static_cast<double>(checks));
  w.key("offered");
  w.number(static_cast<double>(offered));
  w.key("delivered");
  w.number(static_cast<double>(delivered));
  w.key("per_trial");
  w.open('[');
  for (const auto& r : rows) {
    w.open('{');
    w.key("index");
    w.number(static_cast<double>(r.spec.trial_index));
    w.key("label");
    w.string(r.spec.label());
    w.key("sim");
    w.string(osmosis::chaos::to_string(r.spec.sim));
    w.key("seed");
    w.string(u64_str(r.spec.seed));
    w.key("faults");
    w.number(static_cast<double>(r.spec.plan.size()));
    w.key("checks");
    w.number(static_cast<double>(r.result.checks));
    w.key("offered");
    w.number(static_cast<double>(r.result.offered));
    w.key("delivered");
    w.number(static_cast<double>(r.result.delivered));
    w.key("violations");
    w.number(static_cast<double>(r.result.violations));
    if (r.result.violated) {
      w.key("invariant");
      w.string(r.result.invariant);
      w.key("first_violation");
      w.string(r.result.first_violation);
    }
    w.close('}');
  }
  w.close(']');
  w.close('}');
  return w.str() + "\n";
}

}  // namespace

int main(int argc, char** argv) {
  osmosis::util::Cli cli(argc, argv);
  const std::uint64_t campaign_seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const long long trials = cli.get_int("trials", 100);
  const unsigned threads =
      static_cast<unsigned>(cli.get_int("threads", 0));
  const bool soak = cli.get_bool("soak", false);
  const double budget_s = cli.get_double("budget-seconds", 60.0);
  const std::string json_path = cli.get("json", "");
  const std::string defect_name = cli.get("inject-defect", "");
  const std::uint64_t defect_period =
      static_cast<std::uint64_t>(cli.get_int("defect-period", 7));
  const bool do_shrink = cli.get_bool("shrink", false);
  const std::string repro_out = cli.get("repro-out", "");
  const bool verbose = cli.get_bool("verbose", false);

  const Defect defect = defect_name.empty()
                            ? Defect::kNone
                            : osmosis::chaos::defect_from_string(defect_name);

  osmosis::exec::ThreadPool pool(threads);
  std::vector<TrialRow> rows;

  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed_s = [&t0]() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  std::uint64_t next_index = 0;
  const auto launch_wave = [&](std::uint64_t count) {
    const std::size_t base = rows.size();
    rows.resize(base + count);
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t index = next_index++;
      TrialRow* row = &rows[base + i];
      pool.submit([row, campaign_seed, index, defect, defect_period]() {
        TrialSpec spec = osmosis::chaos::generate_trial(campaign_seed, index);
        spec.defect = defect;
        spec.defect_period = defect_period;
        row->spec = spec;
        row->result = osmosis::chaos::run_trial(spec);
        row->ran = true;
      });
    }
    pool.wait_idle();
    for (std::exception_ptr& e : pool.take_exceptions()) {
      try {
        std::rethrow_exception(e);
      } catch (const std::exception& ex) {
        std::cerr << "bench_chaos: trial crashed: " << ex.what() << "\n";
        return false;
      }
    }
    return true;
  };

  bool crashed = false;
  if (soak) {
    const std::uint64_t wave = std::max(1u, pool.size()) * 4;
    while (elapsed_s() < budget_s) {
      if (!launch_wave(wave)) {
        crashed = true;
        break;
      }
    }
  } else {
    crashed = !launch_wave(static_cast<std::uint64_t>(trials));
  }

  // Verdict sweep (index order — rows were appended in index order).
  std::uint64_t violated_trials = 0, total_violations = 0;
  const TrialRow* first_bad = nullptr;
  for (const auto& r : rows) {
    if (!r.ran) continue;
    if (verbose || r.result.violated) {
      std::cout << (r.result.violated ? "VIOLATED " : "ok       ")
                << r.spec.label();
      if (r.result.violated)
        std::cout << "  [" << r.result.first_violation << "]";
      std::cout << "\n";
    }
    if (r.result.violated) {
      ++violated_trials;
      total_violations += r.result.violations;
      if (!first_bad) first_bad = &r;
    }
  }

  std::printf(
      "bench_chaos: %zu trials, %llu violated (%llu violations), "
      "%.1f s elapsed\n",
      rows.size(), static_cast<unsigned long long>(violated_trials),
      static_cast<unsigned long long>(total_violations), elapsed_s());

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out.good()) {
      std::cerr << "bench_chaos: cannot write " << json_path << "\n";
      return 2;
    }
    out << manifest_json(campaign_seed, rows);
  }

  // Shrink the first violating trial to a minimal repro.
  if (do_shrink && first_bad) {
    osmosis::chaos::ShrinkResult sr =
        osmosis::chaos::shrink(first_bad->spec);
    std::printf(
        "shrink: %s -> %zu/%zu fault events, %llu/%llu slots, %zu muted "
        "sources (%d runs)\n",
        sr.invariant.c_str(), sr.shrunk_events, sr.original_events,
        static_cast<unsigned long long>(sr.shrunk_slots),
        static_cast<unsigned long long>(sr.original_slots),
        sr.muted_sources, sr.runs);
    if (!repro_out.empty()) {
      osmosis::chaos::Repro repro;
      repro.spec = sr.spec;
      repro.expected_violated = true;
      repro.expected_invariant = sr.invariant;
      repro.expected_violations = sr.result.violations;
      repro.note = "shrunk from " + first_bad->spec.label();
      osmosis::chaos::write_repro_file(repro_out, repro);
      std::printf("shrink: wrote %s\n", repro_out.c_str());
    }
  }

  if (crashed) return 2;
  if (defect != Defect::kNone) {
    // Defect mode inverts the verdict: the armed bug must be caught.
    if (violated_trials == 0) {
      std::cerr << "bench_chaos: armed defect was never detected\n";
      return 1;
    }
    return 0;
  }
  return violated_trials == 0 ? 0 : 1;
}
