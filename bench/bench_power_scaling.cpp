// §I / §VII — power and aggregate-bandwidth scaling. CMOS switch power
// is proportional to the data rate; optical switch element power is not
// (only the control function scales, with the packet rate). And the
// broadcast-and-select architecture scales its aggregate as
// fibers x wavelengths x line rate, past 50 Tb/s per stage where
// electronics tops out at 6-8 Tb/s.

#include <iostream>

#include "src/power/power_model.hpp"
#include "src/util/table.hpp"

using namespace osmosis;

int main() {
  std::cout << "SS I / SS VII reproduction: power and bandwidth scaling\n\n";

  std::cout << "Per-switch power vs per-port data rate (64-port switch, "
               "256 B cells):\n\n";
  util::Table t({"port rate [Gb/s]", "CMOS switch [W]", "optical switch [W]",
                 "optical control share [W]"},
                2);
  const auto osm = power::osmosis_profile();
  auto cmos = power::highend_electronic_profile();
  cmos.radix = 64;  // same radix for an apples-to-apples element view
  for (double rate : {10.0, 40.0, 100.0, 200.0, 400.0, 800.0}) {
    const double agg = 64.0 * rate;
    const double cells = 64.0 * rate * 1e9 / (256.0 * 8.0);
    const double optical = power::switch_power_w(osm, agg, cells);
    t.add_row({rate, power::switch_power_w(cmos, agg, cells), optical,
               optical - osm.optical_static_w_per_switch});
  }
  t.print(std::cout);
  std::cout << "(optical element power flat in the data rate; control "
               "share scales with the packet rate only)\n";

  std::cout << "\nSingle-stage aggregate-bandwidth envelope:\n\n";
  util::Table a({"design point", "fibers", "lambdas", "rate [Gb/s]",
                 "aggregate [Tb/s]", "within electronic limit?"},
                2);
  struct Point {
    const char* name;
    int f, w;
    double r;
  };
  for (const auto& p : {Point{"OSMOSIS demonstrator", 8, 8, 40.0},
                        Point{"more wavelengths", 8, 16, 40.0},
                        Point{"faster ports", 8, 8, 160.0},
                        Point{"SS VII product point", 16, 16, 200.0},
                        Point{"stretch", 16, 32, 200.0}}) {
    const double agg = power::osmosis_aggregate_tbps(p.f, p.w, p.r);
    a.add_row({std::string(p.name), static_cast<long long>(p.f),
               static_cast<long long>(p.w), p.r, agg,
               std::string(agg <= power::electronic_single_stage_limit_tbps()
                               ? "yes"
                               : "no — beyond electronics")});
  }
  a.print(std::cout);
  std::cout << "(paper: electronics tops out at 6-8 Tb/s per stage; the "
               "OSMOSIS architecture scales to >= 50 Tb/s, e.g. 256 ports "
               "x 200 Gb/s)\n";

  std::cout << "\nFabric-level power per port vs rate (2048 endpoints):\n\n";
  util::Table f({"port rate [Gb/s]", "OSMOSIS 3-stage [W]",
                 "high-end 5-stage [W]", "commodity 9-stage [W]"},
                2);
  for (double rate : {40.0, 120.0, 320.0, 640.0, 960.0}) {
    f.add_row(
        {rate,
         power::fabric_power(power::osmosis_profile(), 2048, rate, 256.0)
             .power_per_port_w,
         power::fabric_power(power::highend_electronic_profile(), 2048, rate,
                             256.0)
             .power_per_port_w,
         power::fabric_power(power::commodity_electronic_profile(), 2048,
                             rate, 256.0)
             .power_per_port_w});
  }
  f.print(std::cout);
  std::cout << "(the optical fabric's power is ~flat in rate; CMOS fabrics "
               "cross over and lose as rates climb)\n";
  return 0;
}
