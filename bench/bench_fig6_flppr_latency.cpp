// Fig. 6 — FLPPR request-to-grant latency for a 64-port switch.
//
// The paper's figure shows a request transmitted in packet cycle i being
// granted in cycle i+1 by FLPPR, versus cycle i+log2(N) (= i+6 at 64
// ports) by the previous state of the art (a snapshot-pipelined
// scheduler). We reproduce it as measured request-to-grant latency vs
// offered load for FLPPR, the pipelined prior art, and idealized
// single-cycle iSLIP, plus an ablation over the FLPPR sub-scheduler
// count K.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "src/sw/switch_sim.hpp"
#include "src/telemetry/run_report.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

using namespace osmosis;

namespace {

sw::SwitchSimResult run(sw::SchedulerKind kind, int depth, double load,
                        std::uint64_t slots) {
  sw::SwitchSimConfig cfg;
  cfg.ports = 64;
  cfg.sched.kind = kind;
  cfg.sched.receivers = 1;
  cfg.sched.iterations = depth;
  cfg.measure_slots = slots;
  return sw::run_uniform(cfg, load, 0x516);
}

// Structured companion to the tables: one traced run at the figure's
// headline operating point, exported as RunReport JSON to stdout or, with
// --json=<path>, to a file.
void emit_report(const util::Cli& cli, const char* figure, double load,
                 std::uint64_t slots) {
  sw::SwitchSimConfig cfg;
  cfg.ports = 64;
  cfg.sched.kind = sw::SchedulerKind::kFlppr;
  cfg.sched.receivers = 1;
  cfg.measure_slots = slots;
  cfg.telemetry.enabled = true;
  cfg.telemetry.sample_every = 4;
  sw::SwitchSim sim(cfg, sim::make_uniform(cfg.ports, load, 0x516));
  sim.run();
  auto report = sim.report();
  report.info["figure"] = figure;
  const std::string json = report.to_json();
  if (cli.has("json")) {
    const std::string path = cli.get("json", "");
    std::ofstream out(path);
    if (!(out << json << "\n")) {
      std::cerr << "error: cannot write RunReport to " << path << "\n";
      std::exit(EXIT_FAILURE);
    }
    std::cout << "\nRunReport written to " << path << "\n";
  } else {
    std::cout << "\nRunReport (FLPPR at load " << load << "):\n"
              << json << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto slots =
      static_cast<std::uint64_t>(cli.get_int("slots", 20'000));

  std::cout << "Fig. 6 reproduction: request-to-grant latency, 64-port "
               "switch, uniform Bernoulli traffic\n"
            << "(paper: FLPPR grants in 1 cycle at light-to-moderate load; "
               "prior art needs log2(64) = 6)\n\n";

  util::Table t({"load", "FLPPR mean", "FLPPR p99", "prior-art mean",
                 "prior-art p99", "ideal iSLIP mean"},
                2);
  t.set_title("request-to-grant latency [cell cycles]");
  for (double load : {0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    const auto flppr = run(sw::SchedulerKind::kFlppr, 0, load, slots);
    const auto pipe = run(sw::SchedulerKind::kPipelinedIslip, 0, load, slots);
    const auto ideal = run(sw::SchedulerKind::kIslip, 0, load, slots);
    t.add_row({load, flppr.mean_grant_latency, flppr.p99_grant_latency,
               pipe.mean_grant_latency, pipe.p99_grant_latency,
               ideal.mean_grant_latency});
  }
  t.print(std::cout);

  std::cout << "\nAblation: FLPPR sub-scheduler count K at load 0.3 "
               "(K = 6 is the paper's log2(N) design point)\n\n";
  util::Table abl({"K", "grant latency mean", "throughput @ 99% load"}, 3);
  for (int k : {1, 2, 3, 6, 8}) {
    const auto light = run(sw::SchedulerKind::kFlppr, k, 0.3, slots);
    const auto heavy = run(sw::SchedulerKind::kFlppr, k, 0.99, slots);
    abl.add_row({static_cast<long long>(k), light.mean_grant_latency,
                 heavy.throughput});
  }
  abl.print(std::cout);

  std::cout << "\nAblation: request-filing policy (the FLPPR novelty is "
               "serving the soonest-issuing sub-scheduler first)\n\n";
  util::Table pol({"policy", "grant latency @ 0.1", "grant latency @ 0.5",
                   "throughput @ 99% load"},
                  3);
  for (const auto policy :
       {sw::FlpprPolicy::kEarliestFirst, sw::FlpprPolicy::kFixedOrder}) {
    auto run_policy = [&](double load) {
      sw::SwitchSimConfig cfg;
      cfg.ports = 64;
      cfg.sched.kind = sw::SchedulerKind::kFlppr;
      cfg.sched.receivers = 1;
      cfg.sched.flppr_policy = policy;
      cfg.measure_slots = slots;
      return sw::run_uniform(cfg, load, 0x516);
    };
    const auto l1 = run_policy(0.1);
    const auto l5 = run_policy(0.5);
    const auto heavy = run_policy(0.99);
    pol.add_row({std::string(policy == sw::FlpprPolicy::kEarliestFirst
                                 ? "earliest-first (paper)"
                                 : "fixed order (naive)"),
                 l1.mean_grant_latency, l5.mean_grant_latency,
                 heavy.throughput});
  }
  pol.print(std::cout);

  emit_report(cli, "fig6", /*load=*/0.5, slots);
  return 0;
}
