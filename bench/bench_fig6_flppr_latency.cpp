// Fig. 6 — FLPPR request-to-grant latency for a 64-port switch.
//
// The paper's figure shows a request transmitted in packet cycle i being
// granted in cycle i+1 by FLPPR, versus cycle i+log2(N) (= i+6 at 64
// ports) by the previous state of the art (a snapshot-pipelined
// scheduler). We reproduce it as measured request-to-grant latency vs
// offered load for FLPPR, the pipelined prior art, and idealized
// single-cycle iSLIP, plus ablations over the FLPPR sub-scheduler count
// K and the request-filing policy.
//
// All three grids run through the exec::CampaignRunner: --threads=N
// (default: every hardware thread) fans the grid points out over a
// worker pool; per-job seeds derive from (campaign seed, job index), so
// the tables are identical at any thread count.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "src/exec/campaign_runner.hpp"
#include "src/sw/switch_sim.hpp"
#include "src/telemetry/run_report.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

using namespace osmosis;

namespace {

exec::CampaignSpec base_spec(std::uint64_t slots) {
  exec::CampaignSpec spec;
  spec.ports = {64};
  spec.receivers = {1};
  spec.warmup_slots = 2'000;
  spec.measure_slots = slots;
  spec.campaign_seed = 0x516;
  return spec;
}

double metric(const exec::CampaignResult& result,
              const std::function<bool(const exec::JobSpec&)>& pred,
              const char* name) {
  const exec::JobResult* j = result.find(pred);
  return j && j->ok ? j->metrics.at(name) : 0.0;
}

// Structured companion to the tables: one traced run at the figure's
// headline operating point, exported as RunReport JSON to stdout or, with
// --json=<path>, to a file.
void emit_report(const util::Cli& cli, const char* figure, double load,
                 std::uint64_t slots) {
  sw::SwitchSimConfig cfg;
  cfg.ports = 64;
  cfg.sched.kind = sw::SchedulerKind::kFlppr;
  cfg.sched.receivers = 1;
  cfg.measure_slots = slots;
  cfg.telemetry.enabled = true;
  cfg.telemetry.sample_every = 4;
  sw::SwitchSim sim(cfg, sim::make_uniform(cfg.ports, load, 0x516));
  sim.run();
  auto report = sim.report();
  report.info["figure"] = figure;
  const std::string json = report.to_json();
  if (cli.has("json")) {
    const std::string path = cli.get_path("json", "");
    std::ofstream out(path);
    if (!(out << json << "\n")) {
      std::cerr << "error: cannot write RunReport to " << path << "\n";
      std::exit(EXIT_FAILURE);
    }
    std::cout << "\nRunReport written to " << path << "\n";
  } else {
    std::cout << "\nRunReport (FLPPR at load " << load << "):\n"
              << json << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto slots =
      static_cast<std::uint64_t>(cli.get_int("slots", 20'000));

  exec::RunnerOptions opts;
  opts.threads = static_cast<unsigned>(cli.get_int("threads", 0));
  exec::CampaignRunner runner(opts);

  std::cout << "Fig. 6 reproduction: request-to-grant latency, 64-port "
               "switch, uniform Bernoulli traffic\n"
            << "(paper: FLPPR grants in 1 cycle at light-to-moderate load; "
               "prior art needs log2(64) = 6)\n\n";

  exec::CampaignSpec grid = base_spec(slots);
  grid.name = "fig6_schedulers";
  grid.schedulers = {sw::SchedulerKind::kFlppr,
                     sw::SchedulerKind::kPipelinedIslip,
                     sw::SchedulerKind::kIslip};
  grid.loads = cli.get_doubles(
      "loads", {0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9});
  const exec::CampaignResult sched = runner.run(grid);

  util::Table t({"load", "FLPPR mean", "FLPPR p99", "prior-art mean",
                 "prior-art p99", "ideal iSLIP mean"},
                2);
  t.set_title("request-to-grant latency [cell cycles]");
  for (double load : grid.loads) {
    auto at = [&](sw::SchedulerKind kind, const char* name) {
      return metric(sched,
                    [&](const exec::JobSpec& s) {
                      return s.scheduler == kind && s.load == load;
                    },
                    name);
    };
    t.add_row({load, at(sw::SchedulerKind::kFlppr, "mean_grant_latency"),
               at(sw::SchedulerKind::kFlppr, "p99_grant_latency"),
               at(sw::SchedulerKind::kPipelinedIslip, "mean_grant_latency"),
               at(sw::SchedulerKind::kPipelinedIslip, "p99_grant_latency"),
               at(sw::SchedulerKind::kIslip, "mean_grant_latency")});
  }
  t.print(std::cout);

  std::cout << "\nAblation: FLPPR sub-scheduler count K at load 0.3 "
               "(K = 6 is the paper's log2(N) design point)\n\n";
  exec::CampaignSpec kgrid = base_spec(slots);
  kgrid.name = "fig6_k_ablation";
  kgrid.iterations = {1, 2, 3, 6, 8};
  kgrid.loads = {0.3, 0.99};
  const exec::CampaignResult kres = runner.run(kgrid);

  util::Table abl({"K", "grant latency mean", "throughput @ 99% load"}, 3);
  for (int k : kgrid.iterations) {
    auto at = [&](double load, const char* name) {
      return metric(kres,
                    [&](const exec::JobSpec& s) {
                      return s.iterations == k && s.load == load;
                    },
                    name);
    };
    abl.add_row({static_cast<long long>(k),
                 at(0.3, "mean_grant_latency"), at(0.99, "throughput")});
  }
  abl.print(std::cout);

  std::cout << "\nAblation: request-filing policy (the FLPPR novelty is "
               "serving the soonest-issuing sub-scheduler first)\n\n";
  exec::CampaignSpec pgrid = base_spec(slots);
  pgrid.name = "fig6_policy";
  pgrid.policies = {sw::FlpprPolicy::kEarliestFirst,
                    sw::FlpprPolicy::kFixedOrder};
  pgrid.loads = {0.1, 0.5, 0.99};
  const exec::CampaignResult pres = runner.run(pgrid);

  util::Table pol({"policy", "grant latency @ 0.1", "grant latency @ 0.5",
                   "throughput @ 99% load"},
                  3);
  for (const auto policy : pgrid.policies) {
    auto at = [&](double load, const char* name) {
      return metric(pres,
                    [&](const exec::JobSpec& s) {
                      return s.policy == policy && s.load == load;
                    },
                    name);
    };
    pol.add_row({std::string(policy == sw::FlpprPolicy::kEarliestFirst
                                 ? "earliest-first (paper)"
                                 : "fixed order (naive)"),
                 at(0.1, "mean_grant_latency"),
                 at(0.5, "mean_grant_latency"), at(0.99, "throughput")});
  }
  pol.print(std::cout);

  std::cout << "\n("
            << sched.jobs.size() + kres.jobs.size() + pres.jobs.size()
            << " jobs on " << sched.threads_used << " threads, "
            << sched.wall_ms + kres.wall_ms + pres.wall_ms << " ms wall)\n";

  emit_report(cli, "fig6", /*load=*/0.5, slots);
  return 0;
}
