// §VI.C — building a 2048-port fabric: 3 stages of 64-port OSMOSIS
// switches vs 5 stages of high-end 32-port electronic switches vs 9
// stages of 8-port commodity parts. Every stage adds latency, power and
// OEO conversions; OSMOSIS saves two OEO layers vs the high-end
// electronic fat tree.

#include <iostream>

#include "src/fabric/clos_sim.hpp"
#include "src/fabric/fat_tree.hpp"
#include "src/phy/cascade.hpp"
#include "src/power/power_model.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

using namespace osmosis;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto ports = static_cast<std::uint64_t>(cli.get_int("ports", 2048));
  const double rate = cli.get_double("rate_gbps", 320.0);

  std::cout << "SS VI.C reproduction: " << ports
            << "-port fabric, per-port rate " << rate << " Gb/s\n"
            << "(paper: 3 OSMOSIS stages vs 5 high-end electronic vs 9 "
               "commodity)\n\n";

  util::Table t({"technology", "radix", "stages", "endpoints", "switches",
                 "cables", "OEO pairs/path", "power/port [W]", "$/Gb/s"},
                2);
  for (const auto& tech :
       {power::osmosis_profile(), power::highend_electronic_profile(),
        power::commodity_electronic_profile()}) {
    const auto r = power::fabric_power(tech, ports, rate, 256.0);
    t.add_row({r.technology, static_cast<long long>(tech.radix),
               static_cast<long long>(r.sizing.path_stages),
               static_cast<long long>(r.sizing.endpoint_ports),
               static_cast<long long>(r.sizing.switches_total),
               static_cast<long long>(r.sizing.host_cables +
                                      r.sizing.interswitch_cables),
               r.oeo_pairs_per_path, r.power_per_port_w, r.usd_per_gbps});
  }
  t.print(std::cout);

  const auto osmosis = fabric::size_fat_tree(64, ports);
  const auto highend = fabric::size_fat_tree(32, ports);
  std::cout << "\nOEO layers saved by OSMOSIS vs high-end electronic: "
            << highend.oeo_pairs_per_path - osmosis.oeo_pairs_per_path
            << " (paper: two layers)\n";

  std::cout << "\nWorst-case path latency (ASIC-class 102.4 ns per stage + "
               "245 ns total cabling):\n\n";
  util::Table l({"technology", "stages", "latency [ns]"}, 1);
  for (int radix : {64, 32, 8}) {
    const auto s = fabric::size_fat_tree(radix, ports);
    l.add_row({std::string(radix == 64   ? "OSMOSIS 64p"
                           : radix == 32 ? "high-end electronic 32p"
                                         : "commodity 8p"),
               static_cast<long long>(s.path_stages),
               static_cast<double>(s.path_stages) * 102.4 + 245.0});
  }
  l.print(std::cout);

  // Cell-accurate cross-check at reduced scale: the same 128 hosts
  // built either as a 3-stage fat tree of radix-16 switches (the
  // OSMOSIS shape) or a 5-stage fat tree of radix-8 switches (the
  // commodity shape). The extra stages show up directly as traversal
  // hops and queueing delay.
  std::cout << "\nCell-level stage-count comparison (128 hosts, 60 % "
               "uniform load, trunk 4 cycles):\n\n";
  util::Table c({"fabric", "stages", "switches", "throughput",
                 "mean hops", "mean delay [cycles]", "overflows", "ooo"},
                3);
  for (const auto& [name, radix, levels] :
       {std::tuple{"radix-16, 2-level (OSMOSIS shape)", 16, 2},
        std::tuple{"radix-8, 3-level (commodity shape)", 8, 3}}) {
    fabric::ClosConfig cc;
    cc.radix = radix;
    cc.levels = levels;
    cc.trunk_cable_slots = 4;
    cc.buffer_cells = 16;
    cc.measure_slots =
        static_cast<std::uint64_t>(cli.get_int("slots", 10'000));
    const auto r = fabric::run_clos_uniform(cc, 0.6, 0x61C);
    c.add_row({std::string(name), static_cast<long long>(r.path_stages),
               static_cast<long long>(r.switches), r.throughput,
               r.mean_hops, r.mean_delay_slots,
               static_cast<long long>(r.buffer_overflows),
               static_cast<long long>(r.out_of_order)});
  }
  c.print(std::cout);

  // Optical signal integrity across the cascade: every stage adds ASE.
  std::cout << "\nOSNR across the stage cascade (per-stage input -3 dBm, "
               "NF 8 dB; BER target 1e-12, 1 dB impairment allowance):\n\n";
  util::Table o({"stages", "final OSNR [dB]", "NRZ margin [dB]",
                 "DPSK margin [dB]"},
                2);
  const phy::CascadeStage stage;
  for (int stages : {3, 5, 9}) {
    const auto nrz =
        phy::analyze_cascade(stage, stages, 1e-12, phy::Modulation::kNrz);
    const auto dpsk =
        phy::analyze_cascade(stage, stages, 1e-12, phy::Modulation::kDpsk);
    o.add_row({static_cast<long long>(stages), nrz.final_osnr_db,
               nrz.margin_db, dpsk.margin_db});
  }
  o.print(std::cout);
  std::cout << "(all three cascade depths close optically — the paper's "
               "case against deep multistage optics is buffering and "
               "latency, not OSNR; DPSK adds 3 dB of margin throughout)\n";
  return 0;
}
