// §VI.C — building a 2048-port fabric: 3 stages of 64-port OSMOSIS
// switches vs 5 stages of high-end 32-port electronic switches vs 9
// stages of 8-port commodity parts. Every stage adds latency, power and
// OEO conversions; OSMOSIS saves two OEO layers vs the high-end
// electronic fat tree.

#include <fstream>
#include <iostream>
#include <map>

#include "src/fabric/clos_sim.hpp"
#include "src/phy/cascade.hpp"
#include "src/power/power_model.hpp"
#include "src/telemetry/run_report.hpp"
#include "src/topo/sizing.hpp"
#include "src/topo/topo_sim.hpp"
#include "src/util/cli.hpp"
#include "src/util/log.hpp"
#include "src/util/table.hpp"

using namespace osmosis;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto ports = static_cast<std::uint64_t>(cli.get_int("ports", 2048));
  const double rate = cli.get_double("rate_gbps", 320.0);

  std::cout << "SS VI.C reproduction: " << ports
            << "-port fabric, per-port rate " << rate << " Gb/s\n"
            << "(paper: 3 OSMOSIS stages vs 5 high-end electronic vs 9 "
               "commodity)\n\n";

  util::Table t({"technology", "radix", "stages", "endpoints", "switches",
                 "cables", "OEO pairs/path", "power/port [W]", "$/Gb/s"},
                2);
  for (const auto& tech :
       {power::osmosis_profile(), power::highend_electronic_profile(),
        power::commodity_electronic_profile()}) {
    const auto r = power::fabric_power(tech, ports, rate, 256.0);
    t.add_row({r.technology, static_cast<long long>(tech.radix),
               static_cast<long long>(r.sizing.path_stages),
               static_cast<long long>(r.sizing.endpoint_ports),
               static_cast<long long>(r.sizing.switches_total),
               static_cast<long long>(r.sizing.host_cables +
                                      r.sizing.interswitch_cables),
               r.oeo_pairs_per_path, r.power_per_port_w, r.usd_per_gbps});
  }
  t.print(std::cout);

  const auto osmosis = topo::size_fat_tree(64, ports);
  const auto highend = topo::size_fat_tree(32, ports);
  std::cout << "\nOEO layers saved by OSMOSIS vs high-end electronic: "
            << highend.oeo_pairs_per_path - osmosis.oeo_pairs_per_path
            << " (paper: two layers)\n";

  std::cout << "\nWorst-case path latency (ASIC-class 102.4 ns per stage + "
               "245 ns total cabling):\n\n";
  util::Table l({"technology", "stages", "latency [ns]"}, 1);
  for (int radix : {64, 32, 8}) {
    const auto s = topo::size_fat_tree(radix, ports);
    l.add_row({std::string(radix == 64   ? "OSMOSIS 64p"
                           : radix == 32 ? "high-end electronic 32p"
                                         : "commodity 8p"),
               static_cast<long long>(s.path_stages),
               static_cast<double>(s.path_stages) * 102.4 + 245.0});
  }
  l.print(std::cout);

  // Cell-accurate cross-check at reduced scale: the same 128 hosts
  // built either as a 3-stage fat tree of radix-16 switches (the
  // OSMOSIS shape) or a 5-stage fat tree of radix-8 switches (the
  // commodity shape). The extra stages show up directly as traversal
  // hops and queueing delay.
  std::cout << "\nCell-level stage-count comparison (128 hosts, 60 % "
               "uniform load, trunk 4 cycles):\n\n";
  util::Table c({"fabric", "stages", "switches", "throughput",
                 "mean hops", "mean delay [cycles]", "overflows", "ooo"},
                3);
  for (const auto& [name, radix, levels] :
       {std::tuple{"radix-16, 2-level (OSMOSIS shape)", 16, 2},
        std::tuple{"radix-8, 3-level (commodity shape)", 8, 3}}) {
    fabric::ClosConfig cc;
    cc.radix = radix;
    cc.levels = levels;
    cc.trunk_cable_slots = 4;
    cc.buffer_cells = 16;
    cc.measure_slots =
        static_cast<std::uint64_t>(cli.get_int("slots", 10'000));
    const auto r = fabric::run_clos_uniform(cc, 0.6, 0x61C);
    c.add_row({std::string(name), static_cast<long long>(r.path_stages),
               static_cast<long long>(r.switches), r.throughput,
               r.mean_hops, r.mean_delay_slots,
               static_cast<long long>(r.buffer_overflows),
               static_cast<long long>(r.out_of_order)});
  }
  c.print(std::cout);

  // The §VI.C argument as a simulated scenario matrix: one machine of
  // `matrix-hosts` endpoints built as every zoo topology, run under all
  // three flow-control kinds at matched offered load. At the default 32
  // hosts the generated path depths are exactly the paper's triple — a
  // 3-hop folded fat tree (the OSMOSIS shape), 5-column Omega/Banyan
  // MINs, and a 9-column Benes — so the throughput/latency ordering the
  // paper argues from (shallow beats deep at equal load) is REQUIREd,
  // not eyeballed.
  const int mhosts = cli.get_int("matrix-hosts", 32);
  const double mload = cli.get_double("matrix-load", 0.6);
  const auto mslots =
      static_cast<std::uint64_t>(cli.get_int("matrix-slots", 8'000));
  std::cout << "\nSimulated scenario matrix (" << mhosts << " hosts, "
            << mload * 100.0 << " % uniform load, topology x flow "
            << "control):\n\n";
  util::Table m({"topology", "flow control", "stages", "path hops",
                 "throughput", "mean delay", "p99 delay", "clean"},
                3);
  // Peak throughput per topology family under cell flow control, for
  // the stage-count ordering check below.
  std::map<topo::TopoKind, double> cell_thr;
  std::map<topo::TopoKind, double> cell_delay;
  for (const topo::TopoKind kind :
       {topo::TopoKind::kFatTree, topo::TopoKind::kClos,
        topo::TopoKind::kOmega, topo::TopoKind::kBanyan,
        topo::TopoKind::kBenes}) {
    for (const topo::FcKind fc :
         {topo::FcKind::kCredit, topo::FcKind::kRelayed,
          topo::FcKind::kWormholeVc}) {
      topo::TopoSimConfig tc;
      tc.topology = kind;
      tc.hosts = mhosts;
      tc.fc.kind = fc;
      tc.warmup_slots = 1'000;
      tc.measure_slots = mslots;
      tc.drain_max_slots = 50'000;
      const auto r = topo::run_topo_uniform(tc, mload, 0x61C);
      const bool clean = r.exactly_once_in_order &&
                         r.buffer_overflows == 0 && r.out_of_order == 0 &&
                         r.invariant_violations == 0;
      OSMOSIS_REQUIRE(clean, "matrix run " << r.topology << "/"
                                           << r.flow_control
                                           << " is not lossless in-order");
      m.add_row({r.topology, r.flow_control,
                 static_cast<long long>(r.stages),
                 static_cast<long long>(r.diameter), r.throughput,
                 r.mean_delay_slots, r.p99_delay_slots,
                 std::string(clean ? "yes" : "NO")});
      if (fc == topo::FcKind::kCredit) {
        cell_thr[kind] = r.throughput;
        cell_delay[kind] = r.mean_delay_slots;
      }
    }
  }
  m.print(std::cout);

  // The ordering the paper's scaling argument predicts: at matched
  // load, the 3-hop OSMOSIS shape sustains at least the throughput of
  // the deeper MINs (1% tolerance — at moderate load the shallow and
  // 5-stage fabrics both carry the full offered load) and strictly
  // lower mean latency.
  const double eps = 0.01;
  for (const topo::TopoKind deep :
       {topo::TopoKind::kOmega, topo::TopoKind::kBanyan,
        topo::TopoKind::kBenes}) {
    OSMOSIS_REQUIRE(
        cell_thr[topo::TopoKind::kFatTree] + eps >= cell_thr[deep],
        "stage-count ordering violated: 3-stage fat tree throughput "
            << cell_thr[topo::TopoKind::kFatTree] << " < "
            << to_string(deep) << " throughput " << cell_thr[deep]);
    OSMOSIS_REQUIRE(
        cell_delay[topo::TopoKind::kFatTree] < cell_delay[deep],
        "stage-count ordering violated: 3-stage fat tree mean delay "
            << cell_delay[topo::TopoKind::kFatTree]
            << " not below " << to_string(deep) << " delay "
            << cell_delay[deep]);
  }
  std::cout << "\nstage-count ordering holds: 3-stage fat tree >= 5/9-stage "
               "MIN throughput at matched load, with strictly lower mean "
               "delay\n";

  // Optional RunReport export (the "topology" section carries stage
  // count, diameter, VC occupancy and per-stage waits) — check.sh holds
  // it against schema_check --report --need-topology.
  const std::string report_path = cli.get_path("report", "");
  if (!report_path.empty()) {
    topo::TopoSimConfig tc;
    tc.topology = topo::TopoKind::kBenes;
    tc.hosts = mhosts;
    tc.fc.kind = topo::FcKind::kWormholeVc;
    tc.warmup_slots = 1'000;
    tc.measure_slots = mslots;
    tc.drain_max_slots = 50'000;
    topo::TopoSim sim(tc, sim::make_uniform(
                              tc.hosts, mload / tc.fc.flits_per_packet,
                              0x61C));
    while (sim.advance_slot()) {
    }
    sim.finalize();
    std::ofstream out(report_path);
    if (!(out << sim.report().to_json(2) << "\n")) {
      std::cerr << "error: cannot write report JSON to " << report_path
                << "\n";
      return 1;
    }
    std::cout << "RunReport written to " << report_path << "\n";
  }

  // Optical signal integrity across the cascade: every stage adds ASE.
  std::cout << "\nOSNR across the stage cascade (per-stage input -3 dBm, "
               "NF 8 dB; BER target 1e-12, 1 dB impairment allowance):\n\n";
  util::Table o({"stages", "final OSNR [dB]", "NRZ margin [dB]",
                 "DPSK margin [dB]"},
                2);
  const phy::CascadeStage stage;
  for (int stages : {3, 5, 9}) {
    const auto nrz =
        phy::analyze_cascade(stage, stages, 1e-12, phy::Modulation::kNrz);
    const auto dpsk =
        phy::analyze_cascade(stage, stages, 1e-12, phy::Modulation::kDpsk);
    o.add_row({static_cast<long long>(stages), nrz.final_osnr_db,
               nrz.margin_db, dpsk.margin_db});
  }
  o.print(std::cout);
  std::cout << "(all three cascade depths close optically — the paper's "
               "case against deep multistage optics is buffering and "
               "latency, not OSNR; DPSK adds 3 dB of margin throughout)\n";
  return 0;
}
