// Figs. 3-4 — local and remote flow-control loops in a multistage fat
// tree with input-only buffers. The scheduler acts as FC manager: it
// only grants toward downstream buffers with space, and FC state rides
// the existing links with a deterministic RTT. We verify the paper's
// claims on a simulated two-level fat tree: (a) lossless under any
// pressure, (b) in-order delivery, (c) buffers sized to the FC RTT
// sustain full throughput, smaller ones throttle but never drop.

#include <iostream>

#include "src/fabric/fabric_sim.hpp"
#include "src/fabric/placement.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

using namespace osmosis;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto slots = static_cast<std::uint64_t>(cli.get_int("slots", 15'000));

  fabric::FabricSimConfig base;
  base.radix = 8;                // 32 hosts, 8 leaves + 4 spines
  base.trunk_cable_slots = 6;    // FC RTT = 12 cell cycles
  base.measure_slots = slots;

  std::cout << "Figs. 3-4 reproduction: scheduler-relayed flow control in a "
               "two-level fat tree (radix 8, 32 hosts, trunk RTT = 12 "
               "cycles)\n\n";

  std::cout << "Buffer-size sweep at 90 % uniform load (paper: the "
               "deterministic FC RTT makes buffer sizing straightforward; "
               "undersized buffers cost throughput, never packets):\n\n";
  util::Table t({"buffer [cells]", "throughput", "mean delay [cycles]",
                 "max leaf occ", "max spine occ", "overflows", "ooo"},
                3);
  for (int buf : {2, 4, 8, 12, 16, 24, 32}) {
    auto cfg = base;
    cfg.buffer_cells = buf;
    const auto r = fabric::run_fabric_uniform(cfg, 0.9, 0x34);
    t.add_row({static_cast<long long>(buf), r.throughput, r.mean_delay_slots,
               static_cast<long long>(r.max_leaf_input_occupancy),
               static_cast<long long>(r.max_spine_input_occupancy),
               static_cast<long long>(r.buffer_overflows),
               static_cast<long long>(r.out_of_order)});
  }
  t.print(std::cout);
  const int rtt_cells = fabric::buffer_cells_for_rtt(12.0, 1.0, 2);
  std::cout << "\nFC-RTT buffer sizing rule suggests "
            << rtt_cells << " cells for this RTT.\n";

  std::cout << "\nAdversarial many-to-one hotspot (50 % of traffic to one "
               "host) — the many-to-one case the scheduler relay must "
               "handle:\n\n";
  util::Table h({"load", "throughput", "overflows", "ooo",
                 "max leaf occ [<= buffer]"},
                3);
  for (double load : {0.3, 0.6, 0.9}) {
    auto cfg = base;
    cfg.buffer_cells = 16;
    const int hosts = cfg.radix * cfg.radix / 2;
    fabric::FabricSim sim(cfg, sim::make_hotspot(hosts, load, 5, 0.5, 0x43));
    const auto r = sim.run();
    h.add_row({load, r.throughput,
               static_cast<long long>(r.buffer_overflows),
               static_cast<long long>(r.out_of_order),
               static_cast<long long>(r.max_leaf_input_occupancy)});
  }
  h.print(std::cout);
  std::cout
      << "\n(The hot egress line caps at 1 cell/slot, i.e. 1/32 of the "
         "aggregate; backpressure then spreads through the shared per-port "
         "input buffers — classic tree saturation. The FC keeps it "
         "strictly lossless and in order, which is exactly the Table 1 "
         "contract: loss only from transmission errors, never from "
         "congestion.)\n";
  return 0;
}
