// Divergence-checking replay for job snapshots (DESIGN.md §10).
//
//   ckpt_verify --state=<job_N.state.ckpt> [--stride=N]
//
// Loads the snapshot into driver A, replays the same job from scratch in
// driver B up to the snapshot's recorded step count, then advances both
// in lockstep, comparing full serialized-state digests every --stride
// steps (default 1). Any mismatch reports the first diverging step and
// exits 1; a clean run also requires the two finalized results to be
// byte-identical. This is the tool that turns "restore looked fine" into
// "restore is provably the same trajectory".

#include <cstdint>
#include <iostream>
#include <string>

#include "src/ckpt/ckpt.hpp"
#include "src/exec/campaign_runner.hpp"
#include "src/util/cli.hpp"

using namespace osmosis;

namespace {

// Serialized JobResult bytes (spec + metrics + report + raw hists); two
// results are equivalent iff these match byte for byte.
std::string result_bytes(exec::JobResult r) {
  ckpt::Sink s;
  ckpt::field(s, r.ok);
  ckpt::field(s, r.metrics);
  ckpt::field(s, r.report);
  for (auto& [name, h] : r.raw_hists) {
    std::string key = name;
    ckpt::field(s, key);
    ckpt::field(s, h);
  }
  return s.take();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::string state_path = cli.get_path("state", "");
  const std::uint64_t stride =
      static_cast<std::uint64_t>(cli.get_int("stride", 1));
  if (state_path.empty() || stride == 0) {
    std::cerr << "usage: ckpt_verify --state=<job.state.ckpt> [--stride=N]\n";
    return 2;
  }

  try {
    const ckpt::Reader r = ckpt::Reader::from_file(state_path);
    const exec::JobSpec spec = exec::read_job_spec_chunk(r);
    const std::uint64_t snap_steps = exec::read_job_progress(r);
    std::cout << "ckpt_verify: job '" << spec.label() << "', snapshot at step "
              << snap_steps << "\n";

    auto restored = exec::make_job_driver(spec);
    restored->load(r);

    auto replayed = exec::make_job_driver(spec);
    for (std::uint64_t i = 0; i < snap_steps; ++i) {
      if (!replayed->advance()) {
        std::cerr << "FAIL: fresh replay finished at step " << i
                  << ", before the snapshot's step " << snap_steps << "\n";
        return 1;
      }
    }

    if (exec::job_state_digest(*restored) != exec::job_state_digest(*replayed)) {
      std::cerr << "FAIL: state digests differ already at the snapshot step "
                << snap_steps << "\n";
      return 1;
    }

    std::uint64_t step = snap_steps;
    std::uint64_t compared = 1;
    for (;;) {
      const bool more_a = restored->advance();
      const bool more_b = replayed->advance();
      if (more_a != more_b) {
        std::cerr << "FAIL: trajectories end at different steps (restored "
                  << (more_a ? "continues" : "stops") << " at step " << step
                  << ")\n";
        return 1;
      }
      if (more_a) ++step;
      if (!more_a || (step - snap_steps) % stride == 0) {
        ++compared;
        if (exec::job_state_digest(*restored) !=
            exec::job_state_digest(*replayed)) {
          std::cerr << "FAIL: first divergence at or before step " << step
                    << " (stride " << stride << ")\n";
          return 1;
        }
      }
      if (!more_a) break;
    }

    if (result_bytes(restored->finalize()) != result_bytes(replayed->finalize())) {
      std::cerr << "FAIL: finalized results differ despite matching state "
                   "digests\n";
      return 1;
    }
    std::cout << "PASS: " << compared << " digest comparisons, no divergence "
              << "through step " << step << "; finalized results identical\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  return 0;
}
