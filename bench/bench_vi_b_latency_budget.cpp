// §VI.B — scheduler and latency: the demonstrator's ~1200 ns FPGA
// latency decomposed, the ASIC mapping to a few hundred ns, the <= 4
// scheduler ASICs sizing result, and the §III 500 ns fabric budget for
// the 3-stage, 2048-port fat tree.

#include <iostream>

#include "src/core/config.hpp"
#include "src/core/latency_budget.hpp"
#include "src/core/osmosis_system.hpp"
#include "src/util/table.hpp"
#include "src/util/units.hpp"

using namespace osmosis;

int main() {
  std::cout << "SS VI.B reproduction: demonstrator latency budget\n\n";

  const auto budget = core::demonstrator_latency_budget();
  util::Table t({"pipeline element", "FPGA demo [ns]", "ASIC mapping [ns]"},
                1);
  for (const auto& item : budget.items)
    t.add_row({item.name, item.fpga_ns, item.asic_ns});
  t.add_row({std::string("TOTAL"), budget.fpga_total_ns(),
             budget.asic_total_ns()});
  t.print(std::cout);
  std::cout << "(paper: ~1200 ns as built; 'a straightforward mapping of "
               "the FPGAs into ASIC technology will reduce the latency "
               "down to a few hundred nanoseconds')\n";

  std::cout << "\nScheduler partitioning: " << core::scheduler_asic_count(64, 6)
            << " identical ASICs for 64 ports x depth 6 (paper: no more "
               "than four)\n";

  std::cout << "\nFabric-level worst-case latency (3-stage fat tree, 50 m "
               "machine room):\n\n";
  util::Table f({"design point", "cell cycle [ns]", "per-stage [ns]",
                 "cables [ns]", "total [ns]", "meets < 500 ns"},
                1);
  for (const auto& [name, cfg] :
       {std::pair{"demonstrator 40G", core::demonstrator_config()},
        std::pair{"product 200G", core::product_config()}}) {
    core::OsmosisSystem sys(cfg);
    const double cable_ns = util::fiber_delay_ns(cfg.machine_diameter_m);
    const double total = sys.fabric_latency_ns();
    f.add_row({std::string(name), cfg.cell.cycle_ns(),
               2.0 * cfg.cell.cycle_ns(), cable_ns, total,
               std::string(total < 500.0 ? "yes" : "no")});
  }
  f.print(std::cout);
  std::cout << "(the 40 Gb/s demonstrator cell is too long for the 500 ns "
               "budget; the SS VII ASIC/200G point meets it — matching the "
               "paper's commercialization argument)\n";
  return 0;
}
