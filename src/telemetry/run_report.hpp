#pragma once
// Structured run export: one machine-readable JSON document per
// simulation run, carrying the run configuration, performance counters
// (mgmt::CounterRegistry snapshot), per-stage latency histogram
// summaries, health events, and trace-sampling statistics. Every
// simulator emits the same schema (DESIGN.md "Telemetry & metrics"), so
// benches and tooling can diff runs without parsing per-bench tables.
//
// Schema (bracketed keys appear only when their data is non-empty, so a
// run with profiling/provenance off emits byte-identical documents to
// the pre-observability schema):
//   {
//     "schema": "osmosis.run_report.v1",
//     "sim": "<simulator name>",
//     "time_unit": "cycles" | "ns",
//     ["meta": { "build": { "git_sha": "...", "compiler": "...", ... } },]
//     "config": { "<knob>": <number>, ... },
//     "info": { "<key>": "<string>", ... },
//     "counters": { "<subsystem.port.metric>": <number>, ... },
//     "histograms": { "<name>": {"count","mean","min","p50","p99","max"} },
//     ["availability": { "<metric>": <number>, ... },]
//     ["serving": { "arrival": "<process>", "summary": {...},
//                   "latency": {<histogram summary>},
//                   "tenants": [ {"tenant","offered","accepted",
//                                 "delivered","shed","latency"}, ... ] },]
//     ["invariants": { "<metric>": <number>, ...,
//                      ["violation_log": [ "<violation>", ... ]] },]
//     ["profile": { "<phase>": {"count","total_ns","mean_ns","max_ns"} },]
//     ["timeseries": { "every_slots", "channels", "slots", "values" },]
//     "health": [ "<event>", ... ]
//   }

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/ckpt/archive.hpp"
#include "src/mgmt/counters.hpp"
#include "src/prof/profiler.hpp"
#include "src/prof/timeseries.hpp"
#include "src/sim/stats.hpp"

namespace osmosis::telemetry {

/// Tail summary of a latency histogram. p999 is always carried; p9999 is
/// only meaningful (and only serialized) once the sample count clears
/// kP9999MinCount — below that the 0.9999 quantile is indistinguishable
/// from the observed max and would just add noise to diffs.
struct HistogramSummary {
  /// Minimum sample count before the p9999 column is emitted.
  static constexpr std::uint64_t kP9999MinCount = 10'000;

  std::uint64_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  double p9999 = 0.0;  // 0 unless count >= kP9999MinCount
  double max = 0.0;

  bool has_p9999() const { return count >= kP9999MinCount; }

  static HistogramSummary of(const sim::Histogram& h);

  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, count);
    ckpt::field(a, mean);
    ckpt::field(a, min);
    ckpt::field(a, p50);
    ckpt::field(a, p99);
    ckpt::field(a, p999);
    ckpt::field(a, p9999);
    ckpt::field(a, max);
  }
};

class JsonWriter;
struct JsonValue;

/// Shared summary (de)serialization: the {count,mean,min,p50,p99,max}
/// object shape used by both osmosis.run_report.v1 and
/// osmosis.campaign.v1 documents.
void write_histogram_summary(JsonWriter& w, const HistogramSummary& h);
HistogramSummary parse_histogram_summary(const JsonValue& h);

/// One tenant's open-loop serving ledger (DESIGN.md §14). The offered /
/// accepted / delivered chain is the SLO bookkeeping contract:
///   offered == accepted + shed   and   accepted >= delivered
/// (the gap is requests still in flight when the run stopped).
struct ServingTenantRow {
  int tenant = 0;
  std::uint64_t offered = 0;
  std::uint64_t accepted = 0;
  std::uint64_t delivered = 0;
  std::uint64_t shed = 0;
  HistogramSummary latency;  // end-to-end, issue slot -> completion slot

  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, tenant);
    ckpt::field(a, offered);
    ckpt::field(a, accepted);
    ckpt::field(a, delivered);
    ckpt::field(a, shed);
    ckpt::field(a, latency);
  }
};

/// RunReport "serving" section: aggregate + per-tenant open-loop serving
/// statistics from the api layer. Emitted only when non-empty, so every
/// run without the serving front-end stays byte-identical.
struct ServingReport {
  std::string arrival;  // arrival-process name ("poisson", "mmpp", ...)
  std::map<std::string, double> summary;
  HistogramSummary latency;  // all tenants combined
  std::vector<ServingTenantRow> tenants;

  bool empty() const { return summary.empty() && tenants.empty(); }

  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, arrival);
    ckpt::field(a, summary);
    ckpt::field(a, latency);
    ckpt::field(a, tenants);
  }
};

struct RunReport {
  static constexpr const char* kSchema = "osmosis.run_report.v1";

  std::string sim;        // simulator name, e.g. "SwitchSim"
  std::string time_unit;  // unit of every histogram: "cycles" or "ns"
  std::map<std::string, std::string> build;  // "meta.build" when non-empty
  std::map<std::string, double> config;
  std::map<std::string, std::string> info;
  mgmt::Snapshot counters;
  std::map<std::string, HistogramSummary> histograms;
  // Graceful-degradation / SLO accounting (DESIGN.md §13): delivered
  // fraction, brownout duration, per-phase throughput floors, MTTR
  // summary, shed-cell accounting. Emitted only when non-empty, so
  // runs without the degradation layer stay byte-identical.
  std::map<std::string, double> availability;
  // Runtime invariant-verification verdict (chaos::InvariantMonitor):
  // check/violation counts plus the exactly-once audit, with retained
  // violation messages. Emitted only when non-empty.
  std::map<std::string, double> invariants;
  std::vector<std::string> invariant_violations;
  // Open-loop serving statistics (api::ServeSim). Emitted only when
  // non-empty, so legacy runs stay byte-identical with the api layer
  // compiled in.
  ServingReport serving;
  // Topology-zoo section (src/topo/): stage count, diameter, generator
  // parameters, peak VC/buffer occupancy and per-stage latency, keyed
  // flat ("stages", "diameter", "stage.<i>.wait_mean", ...). Emitted
  // only when non-empty, so the fixed-topology simulators' reports stay
  // byte-identical.
  std::map<std::string, double> topology;
  std::map<std::string, prof::PhaseStats> profile;  // emitted when non-empty
  prof::TimeSeriesData timeseries;                  // emitted when non-empty
  std::vector<std::string> health;

  /// Stamps the producing binary's provenance (telemetry::build_info)
  /// into the report. Opt-in per harness: without this call the report
  /// stays byte-identical across builds.
  void attach_build_info();

  /// Serializes to JSON with deterministic key order (maps are sorted).
  /// indent <= 0 emits a single line.
  std::string to_json(int indent = 2) const;

  /// Parses a document produced by to_json (exact round trip for the
  /// schema fields; aborts on schema mismatch).
  static RunReport from_json(const std::string& text);

  /// Binary checkpoint serialization (doubles as raw bits, never text) —
  /// used by the campaign runner's per-job checkpoints so a resumed
  /// campaign reproduces the exact report bytes.
  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, sim);
    ckpt::field(a, time_unit);
    ckpt::field(a, build);
    ckpt::field(a, config);
    ckpt::field(a, info);
    ckpt::field(a, counters);
    ckpt::field(a, histograms);
    ckpt::field(a, profile);
    ckpt::field(a, timeseries);
    ckpt::field(a, health);
    ckpt::field(a, invariants);
    ckpt::field(a, invariant_violations);
    ckpt::field(a, availability);
    ckpt::field(a, serving);
    ckpt::field(a, topology);
  }
};

}  // namespace osmosis::telemetry
