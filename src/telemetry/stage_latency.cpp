#include "src/telemetry/stage_latency.hpp"

#include "src/util/log.hpp"

namespace osmosis::telemetry {

StageLatencyBook::StageLatencyBook(double linear_limit, double growth)
    : req_grant_(linear_limit, growth),
      grant_tx_(linear_limit, growth),
      tx_deliver_(linear_limit, growth),
      end_to_end_(linear_limit, growth) {}

void StageLatencyBook::record(const CellSpan& s) {
  OSMOSIS_REQUIRE(s.has(Stage::kEnqueue) && s.has(Stage::kGrant) &&
                      s.has(Stage::kTransmit) && s.has(Stage::kDeliver),
                  "span for cell " << s.src << "->" << s.dst
                                   << " is missing lifecycle stamps");
  req_grant_.add(s.request_to_grant());
  grant_tx_.add(s.grant_to_transmit());
  tx_deliver_.add(s.transmit_to_deliver());
  end_to_end_.add(s.end_to_end());
}

double StageLatencyBook::decomposition_mean() const {
  return req_grant_.mean() + grant_tx_.mean() + tx_deliver_.mean();
}

}  // namespace osmosis::telemetry
