#include "src/telemetry/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/util/log.hpp"

namespace osmosis::telemetry {

void JsonWriter::key(const std::string& k) {
  item_prefix();
  os_ << '"' << json_escape(k) << "\":";
  if (indent_ > 0) os_ << ' ';
  pending_value_ = true;
}

void JsonWriter::string(const std::string& v) {
  value_prefix();
  os_ << '"' << json_escape(v) << '"';
}

void JsonWriter::number(double v) {
  value_prefix();
  os_ << json_number(v);
}

const JsonValue& JsonValue::at(const std::string& key) const {
  OSMOSIS_REQUIRE(kind == Kind::kObject, "JSON value is not an object");
  auto it = object.find(key);
  OSMOSIS_REQUIRE(it != object.end(), "JSON object has no key \"" << key
                                                                  << "\"");
  return it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    OSMOSIS_REQUIRE(pos_ == text_.size(),
                    "trailing garbage after JSON document at offset " << pos_);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    OSMOSIS_REQUIRE(pos_ < text_.size(), "unexpected end of JSON input");
    return text_[pos_];
  }

  void expect(char c) {
    OSMOSIS_REQUIRE(peek() == c, "expected '" << c << "' at offset " << pos_
                                              << ", got '" << peek() << "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n]) ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.str = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.boolean = false;
      return v;
    }
    if (consume_literal("null")) return JsonValue{};
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          OSMOSIS_REQUIRE(pos_ + 4 <= text_.size(), "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            unsigned digit;
            if (h >= '0' && h <= '9')
              digit = static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              digit = static_cast<unsigned>(h - 'a') + 10;
            else if (h >= 'A' && h <= 'F')
              digit = static_cast<unsigned>(h - 'A') + 10;
            else
              OSMOSIS_REQUIRE(false, "bad hex digit in \\u escape: " << h);
            code = code * 16 + digit;
          }
          OSMOSIS_REQUIRE(code < 0x80,
                          "non-ASCII \\u escape not supported: " << code);
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          OSMOSIS_REQUIRE(false, "bad string escape: \\" << esc);
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    OSMOSIS_REQUIRE(pos_ > start, "expected a JSON value at offset " << start);
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    const std::string tok = text_.substr(start, pos_ - start);
    char* endp = nullptr;
    v.number = std::strtod(tok.c_str(), &endp);
    OSMOSIS_REQUIRE(endp == tok.c_str() + tok.size(),
                    "malformed number: " << tok);
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(const std::string& text) {
  return Parser(text).parse_document();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  OSMOSIS_REQUIRE(std::isfinite(v), "JSON numbers must be finite, got " << v);
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  OSMOSIS_REQUIRE(ec == std::errc(), "number formatting failed");
  return std::string(buf, ptr);
}

}  // namespace osmosis::telemetry
