#pragma once
// Minimal JSON support for the RunReport exporter: string escaping for
// the writer side and a small recursive-descent parser for the read
// side, so tests and tooling can round-trip a report without external
// dependencies. Supports the JSON subset RunReport emits: objects,
// arrays, strings (with \"\\/bfnrt and \uXXXX escapes parsed to raw
// bytes for ASCII), finite numbers, booleans, and null.

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace osmosis::telemetry {

/// Tiny structural JSON writer shared by the RunReport and campaign
/// exporters: tracks nesting and lays out either pretty (indent > 0) or
/// single-line documents. The caller drives structure with open/close
/// and key/value calls; output is deterministic for identical call
/// sequences, which is what makes report diffs byte-stable.
class JsonWriter {
 public:
  explicit JsonWriter(int indent) : indent_(indent) {}

  void open(char bracket) {
    value_prefix();
    os_ << bracket;
    ++depth_;
    first_ = true;
  }
  void close(char bracket) {
    --depth_;
    if (!first_) newline(depth_);
    os_ << bracket;
    first_ = false;
  }
  void key(const std::string& k);
  void string(const std::string& v);
  void number(double v);
  void boolean(bool v) {
    value_prefix();
    os_ << (v ? "true" : "false");
  }

  std::string str() const { return os_.str(); }

 private:
  void item_prefix() {
    if (!first_) os_ << ',';
    newline(depth_);
    first_ = false;
  }
  void value_prefix() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    item_prefix();
  }
  void newline(int depth) {
    if (indent_ <= 0) return;
    os_ << '\n';
    for (int i = 0; i < depth * indent_; ++i) os_ << ' ';
  }

  std::ostringstream os_;
  int indent_;
  int depth_ = 0;
  bool first_ = true;
  bool pending_value_ = false;
};

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  bool has(const std::string& key) const {
    return kind == Kind::kObject && object.count(key) > 0;
  }
  /// Member access; the value must be an object holding `key`.
  const JsonValue& at(const std::string& key) const;
};

/// Parses a complete JSON document; aborts (OSMOSIS_REQUIRE) on
/// malformed input or trailing garbage.
JsonValue json_parse(const std::string& text);

/// Escapes a string for embedding between double quotes in JSON.
std::string json_escape(const std::string& s);

/// Formats a double the way the writer emits numbers: integral values
/// without a fraction, otherwise shortest round-trippable form.
std::string json_number(double v);

}  // namespace osmosis::telemetry
