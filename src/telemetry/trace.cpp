#include "src/telemetry/trace.hpp"

#include "src/util/log.hpp"

namespace osmosis::telemetry {

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kEnqueue: return "enqueue";
    case Stage::kRequest: return "request";
    case Stage::kGrant: return "grant";
    case Stage::kTransmit: return "transmit";
    case Stage::kDeliver: return "deliver";
  }
  return "?";
}

// ---- TraceRing -------------------------------------------------------------

TraceRing::TraceRing(std::size_t capacity) : buf_(capacity) {
  OSMOSIS_REQUIRE(capacity >= 1, "trace ring needs capacity >= 1");
}

void TraceRing::push(const CellSpan& s) {
  buf_[head_] = s;
  head_ = (head_ + 1) % buf_.size();
  ++pushed_;
}

std::size_t TraceRing::size() const {
  return pushed_ < buf_.size() ? static_cast<std::size_t>(pushed_)
                               : buf_.size();
}

const CellSpan& TraceRing::at(std::size_t i) const {
  OSMOSIS_REQUIRE(i < size(), "trace ring index " << i << " out of range");
  // Before wrapping, the oldest span sits at slot 0; after, at head_.
  const std::size_t base = pushed_ < buf_.size() ? 0 : head_;
  return buf_[(base + i) % buf_.size()];
}

// ---- CellTrace -------------------------------------------------------------

CellTrace::CellTrace(std::size_t ring_capacity, std::uint32_t sample_every,
                     std::size_t max_open_spans)
    : sample_every_(sample_every),
      max_open_(max_open_spans),
      ring_(ring_capacity) {
  OSMOSIS_REQUIRE(sample_every_ >= 1, "sample_every must be >= 1");
  OSMOSIS_REQUIRE(max_open_ >= 1, "need at least one open-span slot");
}

std::int32_t CellTrace::begin(int src, int dst, double when) {
  if (seen_++ % sample_every_ != 0) return -1;
  std::int32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else if (open_.size() < max_open_) {
    slot = static_cast<std::int32_t>(open_.size());
    open_.emplace_back();
  } else {
    ++dropped_;
    return -1;
  }
  CellSpan& s = open_[static_cast<std::size_t>(slot)];
  s = CellSpan{};
  s.trace_seq = sampled_++;
  s.src = src;
  s.dst = dst;
  s.t[static_cast<int>(Stage::kEnqueue)] = when;
  s.stamped = 1;
  return slot;
}

void CellTrace::mark(std::int32_t handle, Stage s, double when) {
  if (handle < 0) return;
  CellSpan& span = open_[static_cast<std::size_t>(handle)];
  span.t[static_cast<int>(s)] = when;
  span.stamped |= static_cast<std::uint8_t>(1u << static_cast<int>(s));
}

void CellTrace::mark_first(std::int32_t handle, Stage s, double when) {
  if (handle < 0) return;
  if (!open_[static_cast<std::size_t>(handle)].has(s)) mark(handle, s, when);
}

void CellTrace::fc_hold(std::int32_t handle, std::uint32_t cycles) {
  if (handle < 0) return;
  open_[static_cast<std::size_t>(handle)].fc_hold_cycles += cycles;
}

void CellTrace::retransmit(std::int32_t handle) {
  if (handle < 0) return;
  ++open_[static_cast<std::size_t>(handle)].retransmits;
}

CellSpan CellTrace::end(std::int32_t handle, double when) {
  OSMOSIS_REQUIRE(handle >= 0 &&
                      handle < static_cast<std::int32_t>(open_.size()),
                  "bad trace handle " << handle);
  mark(handle, Stage::kDeliver, when);
  const CellSpan finished = open_[static_cast<std::size_t>(handle)];
  free_.push_back(handle);
  ring_.push(finished);
  return finished;
}

}  // namespace osmosis::telemetry
