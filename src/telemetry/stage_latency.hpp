#pragma once
// Per-stage latency bookkeeping: completed cell spans feed one
// sim::Histogram per lifecycle leg, giving the request→grant /
// grant→transmit / transmit→deliver decomposition that the paper's
// latency claims (<500 ns fabric, FLPPR one-cell request-to-grant,
// Fig. 7 delay flattening) are actually made of. Because the three legs
// telescope, their means sum exactly to the end-to-end mean — the
// invariant tests/telemetry_test.cpp checks — and the decomposition can
// be compared line-for-line against the §VI.B demonstrator budget in
// core/latency_budget (see examples/telemetry_tour.cpp, which scales the
// measured decomposition to ns and holds it against the budget total).

#include "src/ckpt/archive.hpp"
#include "src/sim/stats.hpp"
#include "src/telemetry/trace.hpp"

namespace osmosis::telemetry {

class StageLatencyBook {
 public:
  /// Histogram shape defaults suit latencies in cell cycles; pass a
  /// larger linear limit for nanosecond-unit simulators.
  explicit StageLatencyBook(double linear_limit = 256.0,
                            double growth = 1.25);

  /// Records one completed span (all three legs and the end-to-end leg,
  /// so every histogram covers the same cell population).
  void record(const CellSpan& s);

  std::uint64_t count() const { return end_to_end_.count(); }

  const sim::Histogram& request_to_grant() const { return req_grant_; }
  const sim::Histogram& grant_to_transmit() const { return grant_tx_; }
  const sim::Histogram& transmit_to_deliver() const { return tx_deliver_; }
  const sim::Histogram& end_to_end() const { return end_to_end_; }

  /// Sum of the three stage means; equals end_to_end().mean() up to
  /// floating-point rounding.
  double decomposition_mean() const;

  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, req_grant_);
    ckpt::field(a, grant_tx_);
    ckpt::field(a, tx_deliver_);
    ckpt::field(a, end_to_end_);
  }

 private:
  sim::Histogram req_grant_;
  sim::Histogram grant_tx_;
  sim::Histogram tx_deliver_;
  sim::Histogram end_to_end_;
};

}  // namespace osmosis::telemetry
