#pragma once
// The telemetry facade every simulator embeds: one TelemetryConfig knob
// on the sim's config struct, one Telemetry member on the sim. Disabled
// (the default) it is a handful of branches on a cold bool — cell
// handles stay -1 and every call is a guarded no-op, so the hot path
// pays nothing measurable. Enabled, it drives the CellTrace sampler,
// feeds the StageLatencyBook from completed spans, and assembles the
// RunReport from the sim's counters at the end of the run.

#include <cstdint>
#include <string>

#include "src/mgmt/counters.hpp"
#include "src/prof/timeseries.hpp"
#include "src/telemetry/run_report.hpp"
#include "src/telemetry/stage_latency.hpp"
#include "src/telemetry/trace.hpp"

namespace osmosis::telemetry {

struct TelemetryConfig {
  bool enabled = false;
  std::uint32_t sample_every = 16;   // trace 1-in-N cells
  std::size_t ring_capacity = 4096;  // completed spans retained
  std::size_t max_open_spans = 65536;
  // Stage-histogram shape; raise linear_limit for ns-unit simulators.
  double hist_linear_limit = 256.0;
  double hist_growth = 1.25;
  // In-run time series (DESIGN.md §11). Off by default and independent
  // of `enabled` above: the sampler is driven by slot count only, so it
  // stays deterministic regardless of cell-trace sampling.
  prof::TimeSeriesConfig timeseries;
};

class Telemetry {
 public:
  Telemetry() : Telemetry(TelemetryConfig{}) {}
  explicit Telemetry(const TelemetryConfig& cfg);

  bool enabled() const { return cfg_.enabled; }

  /// Samples one cell; returns its trace handle (-1 when disabled or
  /// not sampled). Stamps Stage::kEnqueue at `when`.
  std::int32_t begin_cell(int src, int dst, double when) {
    return cfg_.enabled ? trace_.begin(src, dst, when) : -1;
  }
  void mark(std::int32_t handle, Stage s, double when) {
    if (handle >= 0) trace_.mark(handle, s, when);
  }
  void mark_first(std::int32_t handle, Stage s, double when) {
    if (handle >= 0) trace_.mark_first(handle, s, when);
  }
  void fc_hold(std::int32_t handle, std::uint32_t cycles = 1) {
    if (handle >= 0) trace_.fc_hold(handle, cycles);
  }
  void retransmit(std::int32_t handle) {
    if (handle >= 0) trace_.retransmit(handle);
  }
  /// Completes a span at delivery; spans finished during the measuring
  /// window (`measured`) also feed the stage-latency histograms, so the
  /// decomposition covers exactly the measured cell population.
  void finish_cell(std::int32_t handle, double when, bool measured) {
    if (handle < 0) return;
    const CellSpan s = trace_.end(handle, when);
    if (measured) stages_.record(s);
  }

  CellTrace& trace() { return trace_; }
  const CellTrace& trace() const { return trace_; }
  prof::TimeSeriesSampler& series() { return series_; }
  const prof::TimeSeriesSampler& series() const { return series_; }
  StageLatencyBook& stages() { return stages_; }
  const StageLatencyBook& stages() const { return stages_; }
  mgmt::CounterRegistry& counters() { return counters_; }
  const mgmt::CounterRegistry& counters() const { return counters_; }

  /// Assembles the common report skeleton: schema/sim/unit, the counter
  /// snapshot (plus trace.* sampling counters), and the four stage
  /// histograms under their canonical names. The caller adds config,
  /// info, and extra histograms before serializing.
  RunReport make_report(const std::string& sim_name,
                        const std::string& time_unit) const;

  /// Checkpoint serialization: cfg_ is construction-time config (the
  /// sim rebuilds Telemetry from the same TelemetryConfig before load).
  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, trace_);
    ckpt::field(a, stages_);
    ckpt::field(a, counters_);
    ckpt::field(a, series_);
  }

 private:
  TelemetryConfig cfg_;
  CellTrace trace_;
  StageLatencyBook stages_;
  mgmt::CounterRegistry counters_;
  prof::TimeSeriesSampler series_;
};

}  // namespace osmosis::telemetry
