#pragma once
// Build provenance for RunReport's "meta.build" block: which binary
// produced this JSON? Values come from two places — the compiler's
// predefined macros (compiler id/version, always correct for the object
// actually built) and configure-time CMake definitions (git SHA, build
// type, sanitizer set; "unknown" when built outside CMake/git).
//
// Reports do NOT carry this block by default — RunReport stays
// byte-identical to its pre-profiling form unless a harness opts in via
// RunReport::attach_build_info() — so determinism comparisons across
// builds keep working.

#include <map>
#include <string>

namespace osmosis::telemetry {

/// Key → value provenance map with deterministic key order:
/// build_type, compiler, compiler_version, git_sha, sanitize.
std::map<std::string, std::string> build_info();

}  // namespace osmosis::telemetry
