#include "src/telemetry/build_info.hpp"

namespace osmosis::telemetry {

namespace {

std::string compiler_id() {
#if defined(__clang__)
  return "clang";
#elif defined(__GNUC__)
  return "gcc";
#else
  return "unknown";
#endif
}

std::string compiler_version() {
#if defined(__clang_major__)
  return std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return std::to_string(__GNUC__) + "." + std::to_string(__GNUC_MINOR__) +
         "." + std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

}  // namespace

std::map<std::string, std::string> build_info() {
  std::map<std::string, std::string> info;
#ifdef OSMOSIS_BUILD_TYPE
  info["build_type"] = OSMOSIS_BUILD_TYPE;
#else
  info["build_type"] = "unknown";
#endif
  info["compiler"] = compiler_id();
  info["compiler_version"] = compiler_version();
#ifdef OSMOSIS_GIT_SHA
  info["git_sha"] = OSMOSIS_GIT_SHA;
#else
  info["git_sha"] = "unknown";
#endif
#ifdef OSMOSIS_SANITIZE_FLAGS
  info["sanitize"] = OSMOSIS_SANITIZE_FLAGS;
#else
  info["sanitize"] = "OFF";
#endif
  return info;
}

}  // namespace osmosis::telemetry
