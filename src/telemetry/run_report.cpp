#include "src/telemetry/run_report.hpp"

#include <sstream>

#include "src/telemetry/build_info.hpp"
#include "src/telemetry/json.hpp"
#include "src/util/log.hpp"

namespace osmosis::telemetry {

HistogramSummary HistogramSummary::of(const sim::Histogram& h) {
  HistogramSummary s;
  s.count = h.count();
  s.mean = h.mean();
  s.min = h.min();
  s.p50 = h.p50();
  s.p99 = h.p99();
  s.p999 = h.p999();
  if (h.count() >= kP9999MinCount) s.p9999 = h.p9999();
  s.max = h.max();
  return s;
}

void write_histogram_summary(JsonWriter& w, const HistogramSummary& h) {
  w.open('{');
  w.key("count");
  w.number(static_cast<double>(h.count));
  w.key("mean");
  w.number(h.mean);
  w.key("min");
  w.number(h.min);
  w.key("p50");
  w.number(h.p50);
  w.key("p99");
  w.number(h.p99);
  w.key("p999");
  w.number(h.p999);
  // p9999 is only trustworthy with enough mass behind it; emitting it
  // conditionally keeps small-run documents free of a column that would
  // always equal max.
  if (h.has_p9999()) {
    w.key("p9999");
    w.number(h.p9999);
  }
  w.key("max");
  w.number(h.max);
  w.close('}');
}

HistogramSummary parse_histogram_summary(const JsonValue& h) {
  HistogramSummary s;
  s.count = static_cast<std::uint64_t>(h.at("count").number);
  s.mean = h.at("mean").number;
  s.min = h.at("min").number;
  s.p50 = h.at("p50").number;
  s.p99 = h.at("p99").number;
  // Tolerate pre-p999 documents (older baselines): missing keys read 0.
  if (h.has("p999")) s.p999 = h.at("p999").number;
  if (h.has("p9999")) s.p9999 = h.at("p9999").number;
  s.max = h.at("max").number;
  return s;
}

void RunReport::attach_build_info() { build = build_info(); }

std::string RunReport::to_json(int indent) const {
  JsonWriter w(indent);
  w.open('{');
  w.key("schema");
  w.string(kSchema);
  w.key("sim");
  w.string(sim);
  w.key("time_unit");
  w.string(time_unit);

  // Optional keys are omitted when empty so reports from runs without
  // provenance/profiling stay byte-identical to the original schema.
  if (!build.empty()) {
    w.key("meta");
    w.open('{');
    w.key("build");
    w.open('{');
    for (const auto& [k, v] : build) {
      w.key(k);
      w.string(v);
    }
    w.close('}');
    w.close('}');
  }

  w.key("config");
  w.open('{');
  for (const auto& [k, v] : config) {
    w.key(k);
    w.number(v);
  }
  w.close('}');

  w.key("info");
  w.open('{');
  for (const auto& [k, v] : info) {
    w.key(k);
    w.string(v);
  }
  w.close('}');

  w.key("counters");
  w.open('{');
  for (const auto& [k, v] : counters) {
    w.key(k);
    w.number(v);
  }
  w.close('}');

  w.key("histograms");
  w.open('{');
  for (const auto& [name, h] : histograms) {
    w.key(name);
    write_histogram_summary(w, h);
  }
  w.close('}');

  if (!availability.empty()) {
    w.key("availability");
    w.open('{');
    for (const auto& [k, v] : availability) {
      w.key(k);
      w.number(v);
    }
    w.close('}');
  }

  if (!topology.empty()) {
    w.key("topology");
    w.open('{');
    for (const auto& [k, v] : topology) {
      w.key(k);
      w.number(v);
    }
    w.close('}');
  }

  if (!serving.empty()) {
    w.key("serving");
    w.open('{');
    w.key("arrival");
    w.string(serving.arrival);
    w.key("summary");
    w.open('{');
    for (const auto& [k, v] : serving.summary) {
      w.key(k);
      w.number(v);
    }
    w.close('}');
    w.key("latency");
    write_histogram_summary(w, serving.latency);
    w.key("tenants");
    w.open('[');
    for (const auto& t : serving.tenants) {
      w.open('{');
      w.key("tenant");
      w.number(static_cast<double>(t.tenant));
      w.key("offered");
      w.number(static_cast<double>(t.offered));
      w.key("accepted");
      w.number(static_cast<double>(t.accepted));
      w.key("delivered");
      w.number(static_cast<double>(t.delivered));
      w.key("shed");
      w.number(static_cast<double>(t.shed));
      w.key("latency");
      write_histogram_summary(w, t.latency);
      w.close('}');
    }
    w.close(']');
    w.close('}');
  }

  if (!invariants.empty()) {
    w.key("invariants");
    w.open('{');
    for (const auto& [k, v] : invariants) {
      w.key(k);
      w.number(v);
    }
    if (!invariant_violations.empty()) {
      w.key("violation_log");
      w.open('[');
      for (const auto& v : invariant_violations) w.string(v);
      w.close(']');
    }
    w.close('}');
  }

  if (!profile.empty()) {
    w.key("profile");
    w.open('{');
    for (const auto& [name, ps] : profile) {
      w.key(name);
      w.open('{');
      w.key("count");
      w.number(static_cast<double>(ps.count));
      w.key("total_ns");
      w.number(ps.total_ns);
      w.key("mean_ns");
      w.number(ps.mean_ns());
      w.key("max_ns");
      w.number(ps.max_ns);
      w.close('}');
    }
    w.close('}');
  }

  if (!timeseries.empty()) {
    w.key("timeseries");
    w.open('{');
    w.key("every_slots");
    w.number(static_cast<double>(timeseries.every_slots));
    w.key("channels");
    w.open('[');
    for (const auto& c : timeseries.channels) w.string(c);
    w.close(']');
    w.key("slots");
    w.open('[');
    for (std::uint64_t s : timeseries.slots)
      w.number(static_cast<double>(s));
    w.close(']');
    w.key("values");
    w.open('[');
    for (const auto& row : timeseries.values) {
      w.open('[');
      for (double v : row) w.number(v);
      w.close(']');
    }
    w.close(']');
    w.close('}');
  }

  w.key("health");
  w.open('[');
  for (const auto& e : health) w.string(e);
  w.close(']');

  w.close('}');
  return w.str();
}

RunReport RunReport::from_json(const std::string& text) {
  const JsonValue doc = json_parse(text);
  OSMOSIS_REQUIRE(doc.is_object(), "run report must be a JSON object");
  OSMOSIS_REQUIRE(doc.at("schema").str == kSchema,
                  "unknown report schema: " << doc.at("schema").str);
  RunReport r;
  r.sim = doc.at("sim").str;
  r.time_unit = doc.at("time_unit").str;
  if (doc.has("meta") && doc.at("meta").has("build"))
    for (const auto& [k, v] : doc.at("meta").at("build").object)
      r.build[k] = v.str;
  for (const auto& [k, v] : doc.at("config").object) r.config[k] = v.number;
  for (const auto& [k, v] : doc.at("info").object) r.info[k] = v.str;
  for (const auto& [k, v] : doc.at("counters").object)
    r.counters[k] = v.number;
  for (const auto& [name, h] : doc.at("histograms").object)
    r.histograms.emplace(name, parse_histogram_summary(h));
  if (doc.has("availability"))
    for (const auto& [name, v] : doc.at("availability").object)
      r.availability.emplace(name, v.number);
  if (doc.has("topology"))
    for (const auto& [name, v] : doc.at("topology").object)
      r.topology.emplace(name, v.number);
  if (doc.has("serving")) {
    const JsonValue& sv = doc.at("serving");
    r.serving.arrival = sv.at("arrival").str;
    for (const auto& [k, v] : sv.at("summary").object)
      r.serving.summary.emplace(k, v.number);
    r.serving.latency = parse_histogram_summary(sv.at("latency"));
    for (const auto& t : sv.at("tenants").array) {
      ServingTenantRow row;
      row.tenant = static_cast<int>(t.at("tenant").number);
      row.offered = static_cast<std::uint64_t>(t.at("offered").number);
      row.accepted = static_cast<std::uint64_t>(t.at("accepted").number);
      row.delivered = static_cast<std::uint64_t>(t.at("delivered").number);
      row.shed = static_cast<std::uint64_t>(t.at("shed").number);
      row.latency = parse_histogram_summary(t.at("latency"));
      r.serving.tenants.push_back(row);
    }
  }
  if (doc.has("invariants")) {
    for (const auto& [name, v] : doc.at("invariants").object) {
      if (name == "violation_log") {
        for (const auto& e : v.array) r.invariant_violations.push_back(e.str);
      } else {
        r.invariants.emplace(name, v.number);
      }
    }
  }
  if (doc.has("profile")) {
    for (const auto& [name, p] : doc.at("profile").object) {
      prof::PhaseStats ps;
      ps.count = static_cast<std::uint64_t>(p.at("count").number);
      ps.total_ns = p.at("total_ns").number;
      ps.max_ns = p.at("max_ns").number;
      r.profile.emplace(name, ps);
    }
  }
  if (doc.has("timeseries")) {
    const JsonValue& ts = doc.at("timeseries");
    r.timeseries.every_slots =
        static_cast<std::uint64_t>(ts.at("every_slots").number);
    for (const auto& c : ts.at("channels").array)
      r.timeseries.channels.push_back(c.str);
    for (const auto& s : ts.at("slots").array)
      r.timeseries.slots.push_back(static_cast<std::uint64_t>(s.number));
    for (const auto& row : ts.at("values").array) {
      std::vector<double> vals;
      for (const auto& v : row.array) vals.push_back(v.number);
      r.timeseries.values.push_back(std::move(vals));
    }
  }
  for (const auto& e : doc.at("health").array) r.health.push_back(e.str);
  return r;
}

}  // namespace osmosis::telemetry
