#include "src/telemetry/run_report.hpp"

#include <sstream>

#include "src/telemetry/json.hpp"
#include "src/util/log.hpp"

namespace osmosis::telemetry {

HistogramSummary HistogramSummary::of(const sim::Histogram& h) {
  HistogramSummary s;
  s.count = h.count();
  s.mean = h.mean();
  s.min = h.min();
  s.p50 = h.p50();
  s.p99 = h.p99();
  s.max = h.max();
  return s;
}

void write_histogram_summary(JsonWriter& w, const HistogramSummary& h) {
  w.open('{');
  w.key("count");
  w.number(static_cast<double>(h.count));
  w.key("mean");
  w.number(h.mean);
  w.key("min");
  w.number(h.min);
  w.key("p50");
  w.number(h.p50);
  w.key("p99");
  w.number(h.p99);
  w.key("max");
  w.number(h.max);
  w.close('}');
}

HistogramSummary parse_histogram_summary(const JsonValue& h) {
  HistogramSummary s;
  s.count = static_cast<std::uint64_t>(h.at("count").number);
  s.mean = h.at("mean").number;
  s.min = h.at("min").number;
  s.p50 = h.at("p50").number;
  s.p99 = h.at("p99").number;
  s.max = h.at("max").number;
  return s;
}

std::string RunReport::to_json(int indent) const {
  JsonWriter w(indent);
  w.open('{');
  w.key("schema");
  w.string(kSchema);
  w.key("sim");
  w.string(sim);
  w.key("time_unit");
  w.string(time_unit);

  w.key("config");
  w.open('{');
  for (const auto& [k, v] : config) {
    w.key(k);
    w.number(v);
  }
  w.close('}');

  w.key("info");
  w.open('{');
  for (const auto& [k, v] : info) {
    w.key(k);
    w.string(v);
  }
  w.close('}');

  w.key("counters");
  w.open('{');
  for (const auto& [k, v] : counters) {
    w.key(k);
    w.number(v);
  }
  w.close('}');

  w.key("histograms");
  w.open('{');
  for (const auto& [name, h] : histograms) {
    w.key(name);
    write_histogram_summary(w, h);
  }
  w.close('}');

  w.key("health");
  w.open('[');
  for (const auto& e : health) w.string(e);
  w.close(']');

  w.close('}');
  return w.str();
}

RunReport RunReport::from_json(const std::string& text) {
  const JsonValue doc = json_parse(text);
  OSMOSIS_REQUIRE(doc.is_object(), "run report must be a JSON object");
  OSMOSIS_REQUIRE(doc.at("schema").str == kSchema,
                  "unknown report schema: " << doc.at("schema").str);
  RunReport r;
  r.sim = doc.at("sim").str;
  r.time_unit = doc.at("time_unit").str;
  for (const auto& [k, v] : doc.at("config").object) r.config[k] = v.number;
  for (const auto& [k, v] : doc.at("info").object) r.info[k] = v.str;
  for (const auto& [k, v] : doc.at("counters").object)
    r.counters[k] = v.number;
  for (const auto& [name, h] : doc.at("histograms").object)
    r.histograms.emplace(name, parse_histogram_summary(h));
  for (const auto& e : doc.at("health").array) r.health.push_back(e.str);
  return r;
}

}  // namespace osmosis::telemetry
