#pragma once
// Availability / SLO accounting for graceful degradation (DESIGN.md
// §13). Fed once per measured slot by the owning simulator, it splits
// the measurement interval into service phases — nominal-pre (before
// the first capacity loss), degraded (any path out of service), and
// nominal-post — and tracks per-phase delivered throughput, the
// windowed throughput floor (the worst complete `window_slots` window,
// overall and among brownout windows), the worst surviving-capacity
// fraction, and shed-cell accounting. Everything is integer or
// end-of-run ratio arithmetic, so reports stay byte-identical at any
// thread count; all state checkpoints via io_state.

#include <cstdint>

#include "src/ckpt/archive.hpp"
#include "src/sim/stats.hpp"
#include "src/telemetry/run_report.hpp"

namespace osmosis::telemetry {

struct AvailabilityConfig {
  bool enabled = false;
  // Throughput-floor window; also the brownout-detection granularity.
  std::uint64_t window_slots = 512;
};

class AvailabilityTracker {
 public:
  AvailabilityTracker() = default;
  AvailabilityTracker(AvailabilityConfig cfg, int total_paths);

  bool enabled() const { return cfg_.enabled; }

  /// One measured slot: `delivered` cells reached their destination,
  /// `live_paths` of the configured total were in service, `hosts`
  /// terminals define line rate (constant across a run).
  void record_slot(std::uint64_t delivered, int live_paths, int hosts);

  /// Fills RunReport::availability (and histograms["mttr"] when the
  /// recovery histogram is non-empty) from the window state plus the
  /// caller's end-of-run totals (offered = admitted into the fabric,
  /// shed = refused at the source by admission control). No-op when
  /// disabled or no slot was ever recorded, preserving byte-identical
  /// legacy reports.
  void to_report(RunReport& r, std::uint64_t offered,
                 std::uint64_t delivered, std::uint64_t shed,
                 const sim::Histogram* mttr) const;

  std::uint64_t degraded_slots() const { return degraded_slots_; }

  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, measured_slots_);
    ckpt::field(a, degraded_slots_);
    ckpt::field(a, saw_degraded_);
    ckpt::field(a, min_live_);
    ckpt::field(a, hosts_);
    ckpt::field(a, pre_slots_);
    ckpt::field(a, pre_delivered_);
    ckpt::field(a, deg_slots_);
    ckpt::field(a, deg_delivered_);
    ckpt::field(a, post_slots_);
    ckpt::field(a, post_delivered_);
    ckpt::field(a, win_slots_);
    ckpt::field(a, win_delivered_);
    ckpt::field(a, win_degraded_);
    ckpt::field(a, min_win_delivered_);
    ckpt::field(a, min_win_delivered_degraded_);
  }

 private:
  void close_window();

  AvailabilityConfig cfg_;
  int total_paths_ = 0;

  std::uint64_t measured_slots_ = 0;
  std::uint64_t degraded_slots_ = 0;  // brownout duration in slots
  bool saw_degraded_ = false;
  int min_live_ = 0;
  int hosts_ = 0;

  // Phase accumulators.
  std::uint64_t pre_slots_ = 0, pre_delivered_ = 0;
  std::uint64_t deg_slots_ = 0, deg_delivered_ = 0;
  std::uint64_t post_slots_ = 0, post_delivered_ = 0;

  // Current window + floors (cells per complete window; ~0 = none seen).
  std::uint64_t win_slots_ = 0, win_delivered_ = 0;
  bool win_degraded_ = false;
  std::uint64_t min_win_delivered_ = ~0ULL;
  std::uint64_t min_win_delivered_degraded_ = ~0ULL;
};

}  // namespace osmosis::telemetry
