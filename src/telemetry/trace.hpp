#pragma once
// Cell-lifecycle tracing for the §VI.A management system's "extracting
// performance values" function. A CellTrace samples one in N cells and
// records a timestamp for each lifecycle stage (VOQ enqueue, request
// issued, grant received, crossbar transmit, egress delivery) plus
// flow-control-hold and retransmit event counts. Completed spans land in
// a fixed-capacity ring buffer (oldest overwritten) so a long run keeps
// the most recent evidence without unbounded memory.
//
// Hot-path discipline: an unsampled cell costs one counter increment and
// a branch; a sampled cell writes into a pre-allocated slot pool (free
// list, no per-cell allocation in steady state). If the pool is
// exhausted, new traces are dropped and counted, never blocked.

#include <cstdint>
#include <vector>

#include "src/ckpt/archive.hpp"

namespace osmosis::telemetry {

/// Lifecycle stages of a cell crossing a switch or fabric, in order.
enum class Stage : std::uint8_t {
  kEnqueue = 0,   // entered the ingress VOQ / host source queue
  kRequest = 1,   // request reached the (first-stage) scheduler
  kGrant = 2,     // (first) grant received for this cell
  kTransmit = 3,  // (last) crossbar transfer completed
  kDeliver = 4,   // left the egress line toward the host
};

inline constexpr int kStageCount = 5;

/// Human-readable stage name ("enqueue", "request", ...).
const char* stage_name(Stage s);

/// One traced cell's lifecycle record. Timestamps are in whatever time
/// unit the owning simulator uses (cell cycles or nanoseconds).
struct CellSpan {
  std::uint64_t trace_seq = 0;  // monotonic index among sampled cells
  int src = -1;
  int dst = -1;
  double t[kStageCount] = {0, 0, 0, 0, 0};
  std::uint8_t stamped = 0;  // bit i set once stage i has a timestamp
  std::uint32_t fc_hold_cycles = 0;  // cycles held back by flow control
  std::uint32_t retransmits = 0;     // link-level retransmit events

  bool has(Stage s) const {
    return (stamped >> static_cast<int>(s)) & 1;
  }
  double at(Stage s) const { return t[static_cast<int>(s)]; }

  // The per-stage latency decomposition. By construction the three
  // stage terms telescope: their sum is exactly end_to_end().
  double request_to_grant() const { return at(Stage::kGrant) - at(Stage::kEnqueue); }
  double grant_to_transmit() const { return at(Stage::kTransmit) - at(Stage::kGrant); }
  double transmit_to_deliver() const { return at(Stage::kDeliver) - at(Stage::kTransmit); }
  double end_to_end() const { return at(Stage::kDeliver) - at(Stage::kEnqueue); }

  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, trace_seq);
    ckpt::field(a, src);
    ckpt::field(a, dst);
    for (double& ts : t) ckpt::field(a, ts);
    ckpt::field(a, stamped);
    ckpt::field(a, fc_hold_cycles);
    ckpt::field(a, retransmits);
  }
};

/// Fixed-capacity ring of completed spans; push overwrites the oldest.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity);

  void push(const CellSpan& s);

  std::size_t capacity() const { return buf_.size(); }
  /// Spans currently retained (<= capacity).
  std::size_t size() const;
  /// Spans ever pushed (>= size once wrapped).
  std::uint64_t total_pushed() const { return pushed_; }
  /// i = 0 is the oldest retained span, size()-1 the newest.
  const CellSpan& at(std::size_t i) const;

  /// The buffer is sized at construction (ring capacity is config);
  /// load verifies the saved ring matches.
  template <class Ar>
  void io_state(Ar& a) {
    std::uint64_t cap = buf_.size();
    ckpt::field(a, cap);
    if constexpr (Ar::kLoading) {
      if (cap != buf_.size())
        throw ckpt::Error("trace ring capacity mismatch in checkpoint");
    }
    for (auto& span : buf_) ckpt::field(a, span);
    std::uint64_t head = head_;
    ckpt::field(a, head);
    if constexpr (Ar::kLoading) {
      if (head >= buf_.size() && !(head == 0 && buf_.empty()))
        throw ckpt::Error("trace ring head out of range in checkpoint");
      head_ = static_cast<std::size_t>(head);
    }
    ckpt::field(a, pushed_);
  }

 private:
  std::vector<CellSpan> buf_;
  std::size_t head_ = 0;  // next write position
  std::uint64_t pushed_ = 0;
};

/// Sampling span recorder. begin() decides (deterministically, via a
/// cell counter) whether this cell is traced and returns a handle; all
/// other calls are no-ops for handle < 0, so call sites need no guards.
class CellTrace {
 public:
  CellTrace(std::size_t ring_capacity, std::uint32_t sample_every,
            std::size_t max_open_spans = 65536);

  /// Considers one cell for tracing; stamps Stage::kEnqueue at `when`.
  /// Returns a handle (>= 0) if sampled, -1 otherwise.
  std::int32_t begin(int src, int dst, double when);

  /// Stamps (or re-stamps) a stage timestamp.
  void mark(std::int32_t handle, Stage s, double when);
  /// Stamps a stage only if it has not been stamped yet (multi-hop
  /// fabrics: the *first* grant, not the last).
  void mark_first(std::int32_t handle, Stage s, double when);

  void fc_hold(std::int32_t handle, std::uint32_t cycles = 1);
  void retransmit(std::int32_t handle);

  /// Completes the span: stamps Stage::kDeliver at `when`, pushes it to
  /// the ring, frees the slot, and returns a copy of the finished span.
  /// Must not be called with handle < 0 (callers guard on the handle).
  CellSpan end(std::int32_t handle, double when);

  const TraceRing& ring() const { return ring_; }
  std::uint32_t sample_every() const { return sample_every_; }
  std::uint64_t cells_seen() const { return seen_; }
  std::uint64_t cells_sampled() const { return sampled_; }
  std::uint64_t cells_dropped() const { return dropped_; }
  std::size_t open_spans() const { return open_.size() - free_.size(); }

  /// In-flight spans are persisted with their pool slots and free list
  /// intact, so trace handles stored inside queued cells stay valid
  /// across a restore.
  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, seen_);
    ckpt::field(a, sampled_);
    ckpt::field(a, dropped_);
    ckpt::field(a, ring_);
    ckpt::field(a, open_);
    ckpt::field(a, free_);
    if constexpr (Ar::kLoading) {
      if (free_.size() > open_.size())
        throw ckpt::Error("trace pool free list inconsistent in checkpoint");
      for (std::int32_t idx : free_)
        if (idx < 0 || static_cast<std::size_t>(idx) >= open_.size())
          throw ckpt::Error("trace pool free index out of range");
    }
  }

 private:
  std::uint32_t sample_every_;
  std::size_t max_open_;
  std::uint64_t seen_ = 0;
  std::uint64_t sampled_ = 0;
  std::uint64_t dropped_ = 0;
  TraceRing ring_;
  std::vector<CellSpan> open_;       // slot pool for in-flight spans
  std::vector<std::int32_t> free_;   // free slot indices
};

}  // namespace osmosis::telemetry
