#include "src/telemetry/telemetry.hpp"

namespace osmosis::telemetry {

Telemetry::Telemetry(const TelemetryConfig& cfg)
    : cfg_(cfg),
      trace_(cfg.ring_capacity, cfg.sample_every, cfg.max_open_spans),
      stages_(cfg.hist_linear_limit, cfg.hist_growth),
      series_(cfg.timeseries) {}

RunReport Telemetry::make_report(const std::string& sim_name,
                                 const std::string& time_unit) const {
  RunReport r;
  r.sim = sim_name;
  r.time_unit = time_unit;
  r.counters = counters_.snapshot();
  r.counters["trace.cells_seen"] =
      static_cast<double>(trace_.cells_seen());
  r.counters["trace.cells_sampled"] =
      static_cast<double>(trace_.cells_sampled());
  r.counters["trace.cells_dropped"] =
      static_cast<double>(trace_.cells_dropped());
  r.counters["trace.sample_every"] =
      static_cast<double>(trace_.sample_every());
  r.histograms.emplace("stage.request_to_grant",
                       HistogramSummary::of(stages_.request_to_grant()));
  r.histograms.emplace("stage.grant_to_transmit",
                       HistogramSummary::of(stages_.grant_to_transmit()));
  r.histograms.emplace("stage.transmit_to_deliver",
                       HistogramSummary::of(stages_.transmit_to_deliver()));
  r.histograms.emplace("stage.end_to_end",
                       HistogramSummary::of(stages_.end_to_end()));
  // The timeseries key rides along only when the sampler captured rows;
  // an inert sampler keeps the report byte-identical to prior schemas.
  if (series_.enabled() && series_.size() > 0)
    r.timeseries = series_.snapshot();
  return r;
}

}  // namespace osmosis::telemetry
