#include "src/telemetry/availability.hpp"

#include <algorithm>

#include "src/util/log.hpp"

namespace osmosis::telemetry {

AvailabilityTracker::AvailabilityTracker(AvailabilityConfig cfg,
                                         int total_paths)
    : cfg_(cfg), total_paths_(total_paths), min_live_(total_paths) {
  OSMOSIS_REQUIRE(total_paths_ >= 1, "availability needs >= 1 path");
  OSMOSIS_REQUIRE(cfg_.window_slots >= 1, "availability window must be >= 1");
}

void AvailabilityTracker::record_slot(std::uint64_t delivered, int live_paths,
                                      int hosts) {
  if (!cfg_.enabled) return;
  hosts_ = hosts;
  const bool degraded = live_paths < total_paths_;
  min_live_ = std::min(min_live_, live_paths);
  ++measured_slots_;
  if (degraded) {
    ++degraded_slots_;
    saw_degraded_ = true;
    deg_slots_ += 1;
    deg_delivered_ += delivered;
  } else if (!saw_degraded_) {
    pre_slots_ += 1;
    pre_delivered_ += delivered;
  } else {
    post_slots_ += 1;
    post_delivered_ += delivered;
  }
  win_slots_ += 1;
  win_delivered_ += delivered;
  win_degraded_ = win_degraded_ || degraded;
  if (win_slots_ == cfg_.window_slots) close_window();
}

void AvailabilityTracker::close_window() {
  min_win_delivered_ = std::min(min_win_delivered_, win_delivered_);
  if (win_degraded_)
    min_win_delivered_degraded_ =
        std::min(min_win_delivered_degraded_, win_delivered_);
  win_slots_ = 0;
  win_delivered_ = 0;
  win_degraded_ = false;
}

void AvailabilityTracker::to_report(RunReport& r, std::uint64_t offered,
                                    std::uint64_t delivered,
                                    std::uint64_t shed,
                                    const sim::Histogram* mttr) const {
  if (!cfg_.enabled || measured_slots_ == 0) return;
  auto& av = r.availability;
  const auto thr = [this](std::uint64_t cells, std::uint64_t slots) {
    if (slots == 0 || hosts_ == 0) return 0.0;
    return static_cast<double>(cells) /
           (static_cast<double>(slots) * static_cast<double>(hosts_));
  };
  av["measured_slots"] = static_cast<double>(measured_slots_);
  av["brownout_slots"] = static_cast<double>(degraded_slots_);
  av["brownout_fraction"] =
      static_cast<double>(degraded_slots_) /
      static_cast<double>(measured_slots_);
  av["capacity_fraction_min"] =
      static_cast<double>(min_live_) / static_cast<double>(total_paths_);
  av["throughput_pre"] = thr(pre_delivered_, pre_slots_);
  av["throughput_degraded"] = thr(deg_delivered_, deg_slots_);
  av["throughput_post"] = thr(post_delivered_, post_slots_);
  av["min_window_throughput"] =
      min_win_delivered_ == ~0ULL ? 0.0
                                  : thr(min_win_delivered_, cfg_.window_slots);
  av["min_window_throughput_degraded"] =
      min_win_delivered_degraded_ == ~0ULL
          ? 0.0
          : thr(min_win_delivered_degraded_, cfg_.window_slots);
  const std::uint64_t generated = offered + shed;
  av["offered_cells"] = static_cast<double>(offered);
  av["delivered_cells"] = static_cast<double>(delivered);
  av["shed_cells"] = static_cast<double>(shed);
  av["shed_fraction"] = generated == 0
                            ? 0.0
                            : static_cast<double>(shed) /
                                  static_cast<double>(generated);
  av["delivered_fraction"] = generated == 0
                                 ? 1.0
                                 : static_cast<double>(delivered) /
                                       static_cast<double>(generated);
  if (mttr != nullptr) {
    av["recoveries"] = static_cast<double>(mttr->count());
    if (mttr->count() > 0) {
      av["mttr_mean_slots"] = mttr->mean();
      av["mttr_max_slots"] = mttr->max();
      r.histograms.emplace("mttr", HistogramSummary::of(*mttr));
    }
  }
}

}  // namespace osmosis::telemetry
