#pragma once
// WDM channel plan for the broadcast-and-select crossbar (Fig. 5: "Eight
// ingress adapters, each using a different WDM color, are optically
// multiplexed onto a single fiber"). Models the ITU-T C-band grid,
// assigns a color to every ingress adapter (adapter i uses color
// i mod W on fiber i / W), and checks the physical consistency of the
// plan: channel spacing vs the modulated signal's spectral width, total
// plan bandwidth vs the C-band, and laser tuning range.

#include <string>
#include <vector>

namespace osmosis::phy {

/// One ITU grid channel.
struct WdmChannel {
  int index = 0;             // 0-based within the plan
  double frequency_thz = 0;  // center frequency
  double wavelength_nm = 0;  // center wavelength
};

struct WdmPlanConfig {
  int channels = 8;               // colors per fiber
  double spacing_ghz = 100.0;     // ITU grid spacing
  double anchor_thz = 193.1;      // ITU anchor frequency (channel 0)
  double line_rate_gbps = 40.0;   // per-channel data rate
  // Spectral width factor: an NRZ/DPSK signal occupies roughly this
  // multiple of its symbol rate in optical bandwidth.
  double spectral_width_factor = 1.5;
};

class WdmPlan {
 public:
  explicit WdmPlan(WdmPlanConfig cfg = {});

  const WdmPlanConfig& config() const { return cfg_; }

  const std::vector<WdmChannel>& channels() const { return channels_; }
  const WdmChannel& channel(int index) const;

  /// The color an ingress adapter transmits on, given W colors per fiber
  /// (matches BroadcastSelectCrossbar::wavelength_of_input).
  const WdmChannel& channel_of_adapter(int adapter) const;

  /// Signal spectral width at the configured line rate, in GHz.
  double signal_width_ghz() const;

  /// True when adjacent channels do not overlap spectrally.
  bool spacing_sufficient() const;

  /// Total optical band the plan occupies, in GHz.
  double plan_width_ghz() const;

  /// True when the plan fits the C-band (~4.4 THz usable).
  bool fits_c_band() const;

  /// Tuning range a fast tunable receiver/laser needs to cover the whole
  /// plan, in nm.
  double tuning_range_nm() const;

  std::string describe() const;

 private:
  WdmPlanConfig cfg_;
  std::vector<WdmChannel> channels_;
};

/// Speed of light in nm*THz (c = 299792.458 nm·THz) — conversion between
/// frequency and wavelength on the grid.
inline constexpr double kCNmThz = 299'792.458;

}  // namespace osmosis::phy
