#include "src/phy/soa.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/log.hpp"
#include "src/util/units.hpp"

namespace osmosis::phy {

SoaGainModel::SoaGainModel(SoaParams params) : params_(params) {
  OSMOSIS_REQUIRE(params_.small_signal_gain_db > 0.0,
                  "SOA small-signal gain must be positive");
  OSMOSIS_REQUIRE(params_.dpsk_xgm_suppression_db >= 0.0,
                  "XGM suppression cannot be negative");
}

double SoaGainModel::gain_db(double input_dbm) const {
  const double p_mw = util::dbm_to_mw(input_dbm);
  const double psat_mw = util::dbm_to_mw(params_.saturation_input_dbm);
  const double g0 = util::from_db(params_.small_signal_gain_db);
  return util::to_db(g0 / (1.0 + p_mw / psat_mw));
}

double SoaGainModel::compression_db(double input_dbm) const {
  return params_.small_signal_gain_db - gain_db(input_dbm);
}

double SoaGainModel::q_for_ber(double ber) {
  OSMOSIS_REQUIRE(ber > 0.0 && ber < 0.5, "BER target out of (0, 0.5)");
  // Invert BER = 0.5 * erfc(Q / sqrt(2)) by bisection; erfc is strictly
  // decreasing so this is robust.
  double lo = 0.0, hi = 12.0;
  for (int i = 0; i < 80; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double b = 0.5 * std::erfc(mid / std::sqrt(2.0));
    (b > ber ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

double SoaGainModel::xgm_eye_closure(double input_dbm, Modulation mod) const {
  // Small-signal XGM: the co-propagating channels' power transients
  // modulate the gain in proportion to the total input loading relative
  // to the saturation power. DPSK's constant envelope suppresses the
  // transients by the measured suppression factor.
  const double p_mw = util::dbm_to_mw(input_dbm);
  const double psat_mw = util::dbm_to_mw(params_.saturation_input_dbm);
  double closure = p_mw / psat_mw;
  if (mod == Modulation::kDpsk)
    closure *= util::from_db(-params_.dpsk_xgm_suppression_db);
  return closure;
}

double SoaGainModel::osnr_penalty_db(double input_dbm, Modulation mod,
                                     double ber_target) const {
  // Eye closure must be compensated by extra OSNR; the required margin
  // scales with the Q demanded by the BER target (a more stringent BER
  // leaves less eye to give away). Normalized so the 1e-6 curve matches
  // the paper's calibration point.
  const double q = q_for_ber(ber_target);
  const double q_ref = q_for_ber(1e-6);
  const double effective = xgm_eye_closure(input_dbm, mod) * (q / q_ref);
  if (effective >= 1.0 - 1e-12) return kMaxPenaltyDb;
  const double penalty = -util::to_db(1.0 - effective);
  return std::min(penalty, kMaxPenaltyDb);
}

double SoaGainModel::input_power_at_penalty(double penalty_db, Modulation mod,
                                            double ber_target) const {
  OSMOSIS_REQUIRE(penalty_db > 0.0 && penalty_db < kMaxPenaltyDb,
                  "penalty level out of model range");
  double lo = -40.0, hi = 60.0;  // dBm; penalty is monotone in power
  for (int i = 0; i < 100; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double p = osnr_penalty_db(mid, mod, ber_target);
    (p < penalty_db ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

double SoaGainModel::dpsk_loading_improvement_db(double penalty_db,
                                                 double ber_target) const {
  return input_power_at_penalty(penalty_db, Modulation::kDpsk, ber_target) -
         input_power_at_penalty(penalty_db, Modulation::kNrz, ber_target);
}

std::vector<OsnrPoint> sweep_osnr_penalty(const SoaGainModel& model,
                                          double ber_target, double start_dbm,
                                          double stop_dbm, double step_db) {
  OSMOSIS_REQUIRE(step_db > 0.0, "sweep step must be positive");
  std::vector<OsnrPoint> points;
  for (double p = start_dbm; p <= stop_dbm + 1e-9; p += step_db) {
    points.push_back(OsnrPoint{
        p,
        model.osnr_penalty_db(p, Modulation::kNrz, ber_target),
        model.osnr_penalty_db(p, Modulation::kDpsk, ber_target),
    });
  }
  return points;
}

}  // namespace osmosis::phy
