#include "src/phy/sync.hpp"

#include <cmath>

#include "src/util/log.hpp"
#include "src/util/units.hpp"

namespace osmosis::phy {

SyncAnalysis analyze_sync_tree(const SyncTreeParams& p) {
  OSMOSIS_REQUIRE(p.fanout >= 2, "fanout must be >= 2");
  OSMOSIS_REQUIRE(p.levels >= 1, "need at least one level");
  OSMOSIS_REQUIRE(p.jitter_ps_per_hop >= 0.0 &&
                      p.residual_skew_ps_per_hop >= 0.0,
                  "jitter/skew cannot be negative");
  SyncAnalysis a;
  a.adapters_covered = static_cast<int>(
      util::ipow(static_cast<std::uint64_t>(p.fanout),
                 static_cast<unsigned>(p.levels)));
  const double per_hop_ns =
      (p.jitter_ps_per_hop + p.residual_skew_ps_per_hop) / 1000.0;
  a.worst_case_jitter_ns = per_hop_ns * p.levels;
  a.rss_jitter_ns =
      std::sqrt(static_cast<double>(p.levels)) * per_hop_ns;
  // Two adapters can be off in opposite directions.
  a.arrival_window_ns = 2.0 * a.worst_case_jitter_ns;
  return a;
}

int sync_levels_needed(int adapters, int fanout) {
  OSMOSIS_REQUIRE(adapters >= 1 && fanout >= 2, "invalid tree parameters");
  int levels = 0;
  std::uint64_t covered = 1;
  while (covered < static_cast<std::uint64_t>(adapters)) {
    covered *= static_cast<std::uint64_t>(fanout);
    ++levels;
  }
  return std::max(levels, 1);
}

bool sync_fits_budget(const SyncAnalysis& a, const GuardTimeBudget& guard) {
  return a.arrival_window_ns <= guard.arrival_jitter_ns;
}

}  // namespace osmosis::phy
