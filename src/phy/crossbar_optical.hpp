#pragma once
// Structural model of the OSMOSIS broadcast-and-select optical crossbar
// (Fig. 5): 64 ingress adapters on 8 WDM colors × 8 fibers; each fiber is
// split 128 ways; 128 switching modules (two per egress adapter — the
// dual-receiver architecture) each select one fiber and then one color
// with two stages of fast SOA gates.
//
// The model is a gate-accurate state machine: configuring a connection
// turns on exactly one fiber-select and one wavelength-select SOA in the
// target module. It also closes the optical power budget (split loss vs
// amplifier/SOA gain) and books the electrical power of the gates, which
// feeds the §I/§VII power-scaling benches.

#include <cstdint>
#include <vector>

#include "src/ckpt/archive.hpp"

namespace osmosis::phy {

/// Geometry and optical-budget parameters of the crossbar.
struct BroadcastSelectConfig {
  int ports = 64;                // ingress adapters (= egress adapters)
  int fibers = 8;                // broadcast modules / WDM fibers
  int wavelengths = 8;           // colors per fiber; ports = fibers*wavelengths
  int receivers_per_egress = 2;  // dual-receiver architecture

  // Optical budget elements along the path
  // Tx -> mux -> amplifier -> star coupler -> fiber-select SOA ->
  // demux -> wavelength-select SOA -> Rx.
  double launch_power_dbm = 3.0;
  double mux_loss_db = 3.5;           // 8x1 combiner + WDM mux
  double preamp_gain_db = 17.0;       // optical amplifier in broadcast module
  double excess_loss_db = 2.0;        // connectors, bends, demux
  double soa_gate_gain_db = 10.0;     // each SOA gate amplifies when on
  double receiver_sensitivity_dbm = -18.0;
  double required_margin_db = 3.0;

  // Electrical power bookkeeping (per element).
  double soa_bias_power_mw = 150.0;        // one "on" SOA gate
  double amplifier_power_mw = 2000.0;      // EDFA/amp per broadcast module
  double control_energy_pj = 20.0;         // per gate reconfiguration

  // Off-state suppression of one SOA gate; leakage from unselected
  // channels becomes in-band crosstalk at the receiver.
  double soa_extinction_db = 40.0;
  double min_signal_to_crosstalk_db = 25.0;  // receiver tolerance

  /// Number of ways each broadcast fiber is split.
  int split_ways() const { return ports * receivers_per_egress; }
  /// Number of switching modules (Fig. 5: 128).
  int switching_modules() const { return ports * receivers_per_egress; }
  /// SOA gates per switching module (fiber-select + wavelength-select).
  int gates_per_module() const { return fibers + wavelengths; }
  /// Total SOA gate count (Fig. 5: 128 × 16 = 2048).
  int total_soa_gates() const {
    return switching_modules() * gates_per_module();
  }
};

/// Closed optical power budget along one selected path.
struct PowerBudgetReport {
  double split_loss_db = 0.0;
  double received_power_dbm = 0.0;
  double margin_db = 0.0;
  bool closes = false;
};

/// Gate-accurate broadcast-and-select crossbar state machine.
class BroadcastSelectCrossbar {
 public:
  explicit BroadcastSelectCrossbar(BroadcastSelectConfig cfg = {});

  const BroadcastSelectConfig& config() const { return cfg_; }

  /// The WDM fiber an ingress port transmits on (port / wavelengths).
  int fiber_of_input(int input) const;
  /// The WDM color an ingress port transmits on (port % wavelengths).
  int wavelength_of_input(int input) const;
  /// Module index for (egress port, receiver) pairs.
  int module_of(int egress, int receiver) const;

  /// Connects `input` to receiver `receiver` of `egress`: turns on the
  /// module's fiber-select gate for the input's fiber and the
  /// wavelength-select gate for the input's color. Reconfiguring an
  /// already-connected module first releases the old selection.
  void connect(int input, int egress, int receiver = 0);

  /// Turns off both gates of the module (no light selected).
  void release(int egress, int receiver = 0);
  void release_all();

  /// Which ingress port's light reaches this module, or -1 when dark
  /// (including failed modules and selections of failed fibers).
  int selected_input(int egress, int receiver = 0) const;

  // ---- failure injection ----------------------------------------------------
  // The dual-receiver architecture is also a redundancy story: an egress
  // adapter whose switching module dies stays reachable through its
  // surviving receiver; a broadcast-module (fiber) failure takes its
  // `wavelengths` ingress adapters off the crossbar but leaves the other
  // 56 ports fully connected.

  void fail_module(int egress, int receiver);
  void repair_module(int egress, int receiver);
  bool module_failed(int egress, int receiver) const;

  void fail_fiber(int fiber);
  void repair_fiber(int fiber);
  bool fiber_failed(int fiber) const;

  /// Egress ports still reachable from `input` (0 when its fiber is
  /// down; otherwise the count of egress ports with >= 1 live module).
  int reachable_egress_count(int input) const;

  /// Structural invariant: per module at most one fiber gate and one
  /// wavelength gate are on. Returns the number of "on" gates overall.
  int gates_on() const;

  /// Cumulative count of gate state changes (drives control power).
  std::uint64_t reconfigurations() const { return reconfigs_; }

  /// Optical power budget for any selected path (all paths are
  /// symmetric in this topology).
  PowerBudgetReport power_budget() const;

  /// Worst-case in-band signal-to-crosstalk ratio at a receiver when
  /// every ingress transmits simultaneously. Same-fiber other colors
  /// leak through one off wavelength-gate; same-color other fibers leak
  /// through one off fiber-gate; everything else is suppressed twice.
  double signal_to_crosstalk_db() const;

  /// True when the SXR clears the configured receiver tolerance.
  bool crosstalk_acceptable() const {
    return signal_to_crosstalk_db() >= cfg_.min_signal_to_crosstalk_db;
  }

  /// Instantaneous electrical power: amplifiers + bias of all "on" SOA
  /// gates. Independent of the data rate by construction (§I).
  double electrical_power_w() const;

  /// Average control power at the given cell (reconfiguration) rate.
  double control_power_w(double reconfigs_per_s) const;

  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, modules_);
    ckpt::field(a, module_failed_);
    ckpt::field(a, fiber_failed_);
    ckpt::field(a, reconfigs_);
    if constexpr (Ar::kLoading) {
      if (modules_.size() !=
              static_cast<std::size_t>(cfg_.switching_modules()) ||
          fiber_failed_.size() != static_cast<std::size_t>(cfg_.fibers))
        throw ckpt::Error("crossbar geometry mismatch in checkpoint");
    }
  }

 private:
  struct ModuleState {
    int fiber = -1;       // selected fiber gate, -1 = all off
    int wavelength = -1;  // selected wavelength gate, -1 = all off

    template <class Ar>
    void io_state(Ar& a) {
      ckpt::field(a, fiber);
      ckpt::field(a, wavelength);
    }
  };

  BroadcastSelectConfig cfg_;
  std::vector<ModuleState> modules_;
  std::vector<std::uint8_t> module_failed_;
  std::vector<std::uint8_t> fiber_failed_;
  std::uint64_t reconfigs_ = 0;
};

}  // namespace osmosis::phy
