#pragma once
// Hierarchical system synchronization ([20], cited in §IV.C): all cells
// must arrive at the optical crossbar inside the reconfiguration window,
// so a central reference clock is distributed over a tree to every
// ingress adapter. Each distribution hop adds timing jitter; what the
// guard-time budget must reserve as "packet-arrival jitter time" is the
// resulting arrival window. This model sizes the tree for a machine and
// checks it against the cell format's jitter allocation.

#include "src/phy/guard_time.hpp"

namespace osmosis::phy {

struct SyncTreeParams {
  int fanout = 8;                 // distribution fanout per level
  int levels = 2;                 // hops from the reference to an adapter
  double jitter_ps_per_hop = 150.0;  // random jitter added per hop
  // Deterministic skew per hop is calibrated out by the scheme in [20]
  // (per-link delay measurement); only this residual remains.
  double residual_skew_ps_per_hop = 40.0;
};

/// Analysis of one synchronization tree.
struct SyncAnalysis {
  int adapters_covered = 0;        // fanout^levels
  double worst_case_jitter_ns = 0; // linear accumulation over hops
  double rss_jitter_ns = 0;        // root-sum-square (independent hops)
  /// Arrival window the crossbar must tolerate: +-worst-case jitter of
  /// two independently synchronized adapters.
  double arrival_window_ns = 0;
};

SyncAnalysis analyze_sync_tree(const SyncTreeParams& p);

/// Levels needed to reach `adapters` endpoints at the given fanout.
int sync_levels_needed(int adapters, int fanout);

/// True when the cell format's arrival-jitter allocation covers the
/// tree's arrival window.
bool sync_fits_budget(const SyncAnalysis& a, const GuardTimeBudget& guard);

}  // namespace osmosis::phy
