#include "src/phy/burst_rx.hpp"

#include <cmath>

#include "src/util/log.hpp"

namespace osmosis::phy {

BurstRxAnalysis analyze_burst_rx(const BurstRxParams& p) {
  OSMOSIS_REQUIRE(p.line_rate_gbps > 0.0, "line rate must be positive");
  OSMOSIS_REQUIRE(p.fast_loop_gain > 0.0 && p.fast_loop_gain < 1.0,
                  "fast loop gain must be in (0,1)");
  OSMOSIS_REQUIRE(p.slow_loop_gain > 0.0 && p.slow_loop_gain < 1.0,
                  "slow loop gain must be in (0,1)");
  OSMOSIS_REQUIRE(p.lock_threshold_ui > 0.0 && p.lock_threshold_ui < 0.5,
                  "lock threshold must be in (0, 0.5) UI");

  BurstRxAnalysis a;
  // Worst-case initial phase error: half a unit interval. Each preamble
  // bit multiplies the error by (1 - g): lock after
  //   n >= ln(threshold / 0.5) / ln(1 - g).
  a.lock_bits = static_cast<int>(std::ceil(
      std::log(p.lock_threshold_ui / 0.5) / std::log(1.0 - p.fast_loop_gain)));
  a.lock_time_ns =
      static_cast<double>(a.lock_bits) / p.line_rate_gbps;

  // Frequency offset in UI per bit: 1 ppm = 1e-6 UI drift per UI.
  a.drift_ui_per_bit = p.frequency_offset_ppm * 1e-6;

  // The slow loop corrects `slow_loop_gain` of the error per TRANSITION;
  // it holds lock while the drift accumulated over a transition-free run
  // stays below the threshold it can pull back:
  //   run * drift <= threshold  =>  max run = threshold / drift.
  a.max_run_length_bits = p.lock_threshold_ui / a.drift_ui_per_bit;
  // Stable when it can ride out the 8B-symbol worst-case runs of the
  // (272,256) coded stream (< 64 identical bits by construction).
  a.tracking_stable = a.max_run_length_bits >= 64.0;
  return a;
}

double phase_reacquisition_ns(const BurstRxParams& p) {
  return analyze_burst_rx(p).lock_time_ns;
}

}  // namespace osmosis::phy
