#include "src/phy/wdm.hpp"

#include <sstream>

#include "src/util/log.hpp"

namespace osmosis::phy {

WdmPlan::WdmPlan(WdmPlanConfig cfg) : cfg_(cfg) {
  OSMOSIS_REQUIRE(cfg_.channels >= 1, "need at least one channel");
  OSMOSIS_REQUIRE(cfg_.spacing_ghz > 0.0, "spacing must be positive");
  OSMOSIS_REQUIRE(cfg_.line_rate_gbps > 0.0, "line rate must be positive");
  channels_.reserve(static_cast<std::size_t>(cfg_.channels));
  for (int i = 0; i < cfg_.channels; ++i) {
    WdmChannel ch;
    ch.index = i;
    ch.frequency_thz = cfg_.anchor_thz + i * cfg_.spacing_ghz / 1000.0;
    ch.wavelength_nm = kCNmThz / ch.frequency_thz;
    channels_.push_back(ch);
  }
}

const WdmChannel& WdmPlan::channel(int index) const {
  OSMOSIS_REQUIRE(index >= 0 && index < cfg_.channels,
                  "channel index out of range: " << index);
  return channels_[static_cast<std::size_t>(index)];
}

const WdmChannel& WdmPlan::channel_of_adapter(int adapter) const {
  OSMOSIS_REQUIRE(adapter >= 0, "adapter index cannot be negative");
  return channel(adapter % cfg_.channels);
}

double WdmPlan::signal_width_ghz() const {
  return cfg_.line_rate_gbps * cfg_.spectral_width_factor;
}

bool WdmPlan::spacing_sufficient() const {
  return cfg_.spacing_ghz >= signal_width_ghz();
}

double WdmPlan::plan_width_ghz() const {
  return static_cast<double>(cfg_.channels - 1) * cfg_.spacing_ghz +
         signal_width_ghz();
}

bool WdmPlan::fits_c_band() const { return plan_width_ghz() <= 4'400.0; }

double WdmPlan::tuning_range_nm() const {
  if (cfg_.channels == 1) return 0.0;
  return channels_.front().wavelength_nm - channels_.back().wavelength_nm;
}

std::string WdmPlan::describe() const {
  std::ostringstream oss;
  oss << cfg_.channels << " channels @ " << cfg_.spacing_ghz
      << " GHz from " << channels_.front().frequency_thz << " THz ("
      << channels_.front().wavelength_nm << " nm), signal width "
      << signal_width_ghz() << " GHz, plan " << plan_width_ghz() << " GHz";
  return oss.str();
}

}  // namespace osmosis::phy
