#pragma once
// Optical signal-integrity accumulation across fabric stages. Every
// stage of the fat tree re-amplifies the signal (broadcast-module
// amplifier + SOA gates), adding ASE noise; OSNR degrades with stage
// count, which bounds how deep a multistage optical fabric can cascade
// before the §IV.C BER targets (and the Fig. 10 penalty allowances)
// stop closing — one more reason fewer stages (§VI.C) is not just a
// latency/power argument.

#include <vector>

#include "src/phy/soa.hpp"

namespace osmosis::phy {

/// Noise contribution of one opto-electronic stage.
struct CascadeStage {
  double input_power_dbm = -3.0;  // per-channel power into the stage's
                                  // amplification chain
  double noise_figure_db = 8.0;   // effective NF (amp + 2 SOA gates)
};

/// OSNR (dB, 0.1 nm reference bandwidth) contributed by one stage:
/// the standard 58 + P_in - NF link formula.
double stage_osnr_db(const CascadeStage& s);

/// OSNR after `stages` identical stages: noise powers add, so
/// 1/OSNR_total = sum(1/OSNR_i).
double cascade_osnr_db(const CascadeStage& s, int stages);

struct CascadeAnalysis {
  int stages = 0;
  double final_osnr_db = 0.0;
  double required_osnr_db = 0.0;  // for the BER target + penalty
  double margin_db = 0.0;
  bool closes = false;
};

/// Checks an n-stage cascade against a BER target, reserving
/// `penalty_allowance_db` for XGM/crosstalk impairments (Fig. 10's 1 dB
/// operating point by default).
CascadeAnalysis analyze_cascade(const CascadeStage& s, int stages,
                                double ber, Modulation mod,
                                double penalty_allowance_db = 1.0);

/// Largest stage count that still closes.
int max_cascade_stages(const CascadeStage& s, double ber, Modulation mod,
                       double penalty_allowance_db = 1.0);

}  // namespace osmosis::phy
