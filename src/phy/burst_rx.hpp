#pragma once
// Burst-mode receiver model (§IV.C: "a given deserializer receives
// bitstreams from different serializers for different packets ... These
// bitstreams have independent phase and frequencies. We partially
// address this problem by ensuring a central reference-clock
// distribution, but phase re-acquisition is still required"; §VII:
// "custom clock and data recovery circuits that have a fast phase-lock
// time constant during the first few bits of a packet followed by a slow
// time constant to facilitate long run lengths").
//
// Model: with a shared reference clock the frequency offset is bounded
// (ppm-level) and only the phase is unknown. A two-time-constant CDR
// first slews the phase with a wide loop bandwidth (fast lock, noisy),
// then narrows the loop for the payload (jitter-tolerant). Lock time is
// the preamble needed for the wide loop to pull in half a unit interval
// of worst-case phase error.

namespace osmosis::phy {

struct BurstRxParams {
  double line_rate_gbps = 40.0;
  // Wide (acquisition) loop: phase correction per bit, as a fraction of
  // the remaining error — an exponential pull-in.
  double fast_loop_gain = 0.2;
  // Residual phase error (fraction of a UI) considered "locked".
  double lock_threshold_ui = 0.02;
  // Frequency offset between Tx and Rx after reference distribution.
  double frequency_offset_ppm = 5.0;
  // Tracking (payload) loop gain; must out-pull the ppm drift.
  double slow_loop_gain = 0.002;
};

struct BurstRxAnalysis {
  int lock_bits = 0;          // preamble bits to acquire phase
  double lock_time_ns = 0.0;  // = lock_bits / rate
  double drift_ui_per_bit = 0.0;  // phase drift from the ppm offset
  bool tracking_stable = false;   // slow loop holds lock over a cell
  double max_run_length_bits = 0.0;  // transition-free run it tolerates
};

/// Closed-form analysis of the two-time-constant CDR.
BurstRxAnalysis analyze_burst_rx(const BurstRxParams& p);

/// The phase-reacquisition guard contribution for a cell format: the
/// lock time of this receiver (what GuardTimeBudget::phase_reacquisition
/// must budget).
double phase_reacquisition_ns(const BurstRxParams& p);

}  // namespace osmosis::phy
