#include "src/phy/cascade.hpp"

#include "src/phy/link_budget.hpp"
#include "src/util/log.hpp"
#include "src/util/units.hpp"

namespace osmosis::phy {

double stage_osnr_db(const CascadeStage& s) {
  // 58 dB is the shot-noise-limited OSNR of 0 dBm in 0.1 nm at 1550 nm;
  // each stage's ASE burdens it by its noise figure.
  return 58.0 + s.input_power_dbm - s.noise_figure_db;
}

double cascade_osnr_db(const CascadeStage& s, int stages) {
  OSMOSIS_REQUIRE(stages >= 1, "need at least one stage");
  const double one = util::from_db(stage_osnr_db(s));
  // Identical stages: total inverse OSNR is n times one stage's.
  return util::to_db(one / static_cast<double>(stages));
}

CascadeAnalysis analyze_cascade(const CascadeStage& s, int stages,
                                double ber, Modulation mod,
                                double penalty_allowance_db) {
  OSMOSIS_REQUIRE(penalty_allowance_db >= 0.0,
                  "penalty allowance cannot be negative");
  CascadeAnalysis a;
  a.stages = stages;
  a.final_osnr_db = cascade_osnr_db(s, stages);
  a.required_osnr_db = required_osnr_db(ber, mod) + penalty_allowance_db;
  a.margin_db = a.final_osnr_db - a.required_osnr_db;
  a.closes = a.margin_db >= 0.0;
  return a;
}

int max_cascade_stages(const CascadeStage& s, double ber, Modulation mod,
                       double penalty_allowance_db) {
  // OSNR falls by 10*log10(n); solve for the largest n with margin >= 0.
  const double headroom_db = stage_osnr_db(s) -
                             (required_osnr_db(ber, mod) +
                              penalty_allowance_db);
  if (headroom_db < 0.0) return 0;
  return static_cast<int>(util::from_db(headroom_db));
}

}  // namespace osmosis::phy
