#include "src/phy/link_budget.hpp"

#include <cmath>

#include "src/util/log.hpp"
#include "src/util/units.hpp"

namespace osmosis::phy {

double ber_from_q(double q) {
  OSMOSIS_REQUIRE(q >= 0.0, "Q-factor cannot be negative");
  return 0.5 * std::erfc(q / std::sqrt(2.0));
}

double q_from_ber(double ber) { return SoaGainModel::q_for_ber(ber); }

double required_osnr_db(double ber, Modulation mod) {
  const double q = q_from_ber(ber);
  // OSNR ~ Q^2 in the shot/ASE-limited regime; the format constant is
  // calibrated so DPSK sits 3 dB below NRZ (balanced detection gain),
  // matching the paper's separate measurement.
  const double base_db = mod == Modulation::kNrz ? 3.0 : 0.0;
  return util::to_db(q * q) + base_db;
}

double chained_error_rate(double per_hop, int hops) {
  OSMOSIS_REQUIRE(per_hop >= 0.0 && per_hop <= 1.0,
                  "per-hop error rate out of [0,1]");
  OSMOSIS_REQUIRE(hops >= 0, "negative hop count");
  // 1 - (1 - p)^n, computed via expm1/log1p to stay accurate for the
  // 1e-21-scale probabilities this module exists to reason about.
  return -std::expm1(static_cast<double>(hops) * std::log1p(-per_hop));
}

}  // namespace osmosis::phy
