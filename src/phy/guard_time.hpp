#pragma once
// Guard-time and cell-timing budgets (§IV.C, §V).
//
// The demonstrator uses fixed 256-byte cells at 40 Gb/s including the
// guard time, i.e. a 51.2 ns cell cycle. The guard time has three
// contributors the paper enumerates: the optical switch element settling
// time (~5 ns for SOAs), burst-mode receiver phase reacquisition (each
// cell arrives from a different serializer with independent phase), and
// the packet-arrival jitter margin (all cells must hit the crossbar
// while it reconfigures). On top of the guard time, FEC overhead
// (6.25 %) and the cell header reduce the user share to roughly 75 % —
// the paper's "effective user bandwidth" requirement.

#include <string>

namespace osmosis::phy {

/// The three guard-time contributors, in nanoseconds.
struct GuardTimeBudget {
  double switch_settle_ns = 5.0;        // SOA on/off settling
  double phase_reacquisition_ns = 2.0;  // burst-mode receiver lock (~80 bits)
  double arrival_jitter_ns = 1.0;       // synchronization margin [20]

  double total_ns() const {
    return switch_settle_ns + phase_reacquisition_ns + arrival_jitter_ns;
  }
};

/// Fixed-size cell format on an optical line.
struct CellFormat {
  double cell_bytes = 256.0;      // on-the-wire cell incl. guard share
  double line_rate_gbps = 40.0;   // raw line rate
  GuardTimeBudget guard;          // carved out of the cell cycle
  double fec_overhead = 0.0625;   // (272,256): 16/256 = 6.25 %
  double header_bytes = 8.0;      // routing + sequence + FC piggyback

  /// Full cell cycle (the demonstrator's 51.2 ns).
  double cycle_ns() const { return cell_bytes * 8.0 / line_rate_gbps; }

  /// Time in the cycle actually carrying light with data.
  double payload_window_ns() const { return cycle_ns() - guard.total_ns(); }

  /// Bytes transmitted within the payload window.
  double payload_bytes() const {
    return payload_window_ns() * line_rate_gbps / 8.0;
  }

  /// User-visible bytes after FEC overhead and header are removed.
  double user_bytes() const {
    return payload_bytes() / (1.0 + fec_overhead) - header_bytes;
  }

  /// Effective user bandwidth as a fraction of the raw line rate
  /// (the paper's ~75 % figure for the demonstrator format).
  double user_efficiency() const {
    return user_bytes() * 8.0 / (cell_bytes * 8.0);
  }

  /// Effective user bandwidth in Gb/s.
  double user_rate_gbps() const {
    return user_efficiency() * line_rate_gbps;
  }

  /// True when the guard fits in the cycle with a usable payload window.
  bool feasible() const { return user_bytes() > 0.0; }
};

/// Demonstrator cell format from §V (64 ports, 40 Gb/s, 256 B, 51.2 ns).
CellFormat demonstrator_cell_format();

/// Store-and-forward penalty of one buffer hop for this format: the time
/// to fully receive a cell before forwarding (§IV's 5.33 ns for 64 B at
/// 12 GByte/s example is this quantity).
double store_and_forward_penalty_ns(double cell_bytes, double rate_gbps);

/// One line of human-readable budget breakdown (for the bench harness).
std::string describe(const CellFormat& f);

}  // namespace osmosis::phy
