#pragma once
// Catalogue of optical switching technologies discussed in the paper
// (§II, §IV.C) with their reconfiguration (guard) times, and the
// suitability test the paper applies: packet switching needs state
// changes in the micro- to nanosecond range, which rules out mechanical
// and thermal effects.

#include <string>
#include <vector>

namespace osmosis::phy {

/// Switching technology families from the paper's related work.
enum class SwitchTech {
  kMems,               // moving mirrors [2] — milliseconds
  kThermoOptic,        // polymer/silica thermal control [3] — milliseconds
  kBeamSteering,       // Chiaro [4] — ~20 ns
  kTunableLaser,       // [7] — ~45 ns
  kSoa,                // semiconductor optical amplifier [6] — ~5 ns
  kSoaDpskSaturated,   // §VII: SOA + DPSK deep saturation — sub-ns
  kSoaXpmStrobed,      // §VII Cambridge XPM Mach-Zehnder [25] — femtoseconds
};

/// Static properties of one technology entry.
struct TechEntry {
  SwitchTech tech;
  std::string name;
  double guard_time_ns;        // reconfiguration time inserted between cells
  bool packet_switchable;      // fast enough for per-cell reconfiguration
  double max_port_bw_gbps;     // per-waveguide bandwidth the tech supports
  // Power model (per gate/element): static electrical power plus a
  // per-reconfiguration control energy. Optical switch element power is
  // independent of the data rate (§I); only control scales with packet
  // rate.
  double static_power_mw;
  double control_energy_pj_per_reconfig;
};

/// The full catalogue, ordered from slowest to fastest.
const std::vector<TechEntry>& technology_catalogue();

/// Lookup by enum; aborts on unknown entries.
const TechEntry& technology(SwitchTech tech);

/// The paper's viability test: can this technology reconfigure within a
/// tolerable fraction of the cell cycle? `max_guard_fraction` is the
/// largest share of the cell that may be spent as guard time.
bool viable_for_packet_switching(const TechEntry& t, double cell_time_ns,
                                 double max_guard_fraction = 0.25);

}  // namespace osmosis::phy
