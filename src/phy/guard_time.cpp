#include "src/phy/guard_time.hpp"

#include <sstream>

#include "src/util/log.hpp"
#include "src/util/units.hpp"

namespace osmosis::phy {

CellFormat demonstrator_cell_format() {
  CellFormat f;
  f.cell_bytes = 256.0;
  f.line_rate_gbps = 40.0;
  f.guard = GuardTimeBudget{};  // 5 + 2 + 1 ns
  f.fec_overhead = 0.0625;
  f.header_bytes = 8.0;
  return f;
}

double store_and_forward_penalty_ns(double cell_bytes, double rate_gbps) {
  OSMOSIS_REQUIRE(cell_bytes > 0.0 && rate_gbps > 0.0,
                  "cell size and rate must be positive");
  return util::serialization_ns(cell_bytes, rate_gbps);
}

std::string describe(const CellFormat& f) {
  std::ostringstream oss;
  oss << "cell " << f.cell_bytes << " B @ " << f.line_rate_gbps
      << " Gb/s: cycle " << f.cycle_ns() << " ns, guard "
      << f.guard.total_ns() << " ns, payload " << f.payload_bytes()
      << " B, user " << f.user_bytes() << " B, efficiency "
      << f.user_efficiency() * 100.0 << " %";
  return oss.str();
}

}  // namespace osmosis::phy
