#pragma once
// Semiconductor Optical Amplifier (SOA) gain model and the NRZ-vs-DPSK
// cross-gain-modulation (XGM) penalty study of Fig. 10 / §VII.
//
// Physics captured (phenomenologically, calibrated to the paper's
// reported numbers):
//  * Saturable gain: G(P) = G0 / (1 + P/Psat). Driving the SOA harder
//    compresses the gain.
//  * XGM distortion: with NRZ (on/off power envelope), the gain is
//    modulated by the other WDM channels' bit patterns, distorting the
//    amplitude of each channel. With DPSK the optical power envelope is
//    constant, so there are no fast power transients and the SOA can run
//    very deeply into saturation. The paper measured a 14 dB improvement
//    in allowed SOA input loading at 1 dB OSNR penalty, plus ~3 dB lower
//    required OSNR at any BER for the DPSK link.
//  * The OSNR penalty grows with the Q-factor demanded by the BER
//    target, so the 1e-10 curve sits above the 1e-6 curve.

#include <vector>

namespace osmosis::phy {

/// Modulation formats compared in Fig. 10.
enum class Modulation { kNrz, kDpsk };

/// Configuration of one SOA gate used as an on/off switching element.
struct SoaParams {
  double small_signal_gain_db = 20.0;  // G0
  double saturation_input_dbm = 10.0;  // input power giving 3 dB compression
  double noise_figure_db = 8.0;        // ASE noise figure
  // Calibration: the DPSK constant envelope suppresses XGM by this factor
  // (in dB of allowed input loading). The paper measured 14 dB.
  double dpsk_xgm_suppression_db = 14.0;
  // Electrical operating point (for the power model; §I: element power is
  // independent of the data rate).
  double bias_power_mw = 150.0;
};

/// Saturable-gain + XGM penalty model for an SOA gate.
class SoaGainModel {
 public:
  explicit SoaGainModel(SoaParams params = {});

  const SoaParams& params() const { return params_; }

  /// Compressed gain (dB) at the given input power (dBm).
  double gain_db(double input_dbm) const;

  /// Gain compression relative to small-signal gain, in dB (>= 0).
  double compression_db(double input_dbm) const;

  /// Q-factor demanded by a BER target (Gaussian noise approximation).
  static double q_for_ber(double ber);

  /// OSNR penalty (dB) incurred at `input_dbm` for the given modulation
  /// format and BER target — the y-axis of Fig. 10. Returns +inf-like
  /// large values (capped at `kMaxPenaltyDb`) once the eye collapses.
  double osnr_penalty_db(double input_dbm, Modulation mod,
                         double ber_target) const;

  /// The input power (dBm) at which the OSNR penalty reaches
  /// `penalty_db` (bisection over the monotone penalty curve). This is
  /// the paper's "SOA input loading at 1 dB OSNR penalty" metric.
  double input_power_at_penalty(double penalty_db, Modulation mod,
                                double ber_target) const;

  /// DPSK-vs-NRZ improvement in allowed input loading at the given
  /// penalty level (paper: ~14 dB at 1 dB OSNR penalty).
  double dpsk_loading_improvement_db(double penalty_db,
                                     double ber_target) const;

  static constexpr double kMaxPenaltyDb = 30.0;

 private:
  /// Fractional eye closure caused by XGM at this operating point.
  double xgm_eye_closure(double input_dbm, Modulation mod) const;

  SoaParams params_;
};

/// One sampled point of the Fig. 10 sweep.
struct OsnrPoint {
  double input_dbm;
  double penalty_nrz_db;
  double penalty_dpsk_db;
};

/// Sweeps input power and returns the two penalty curves for a BER
/// target (run once for 1e-6 and once for 1e-10 to regenerate Fig. 10).
std::vector<OsnrPoint> sweep_osnr_penalty(const SoaGainModel& model,
                                          double ber_target,
                                          double start_dbm = 0.0,
                                          double stop_dbm = 20.0,
                                          double step_db = 1.0);

}  // namespace osmosis::phy
