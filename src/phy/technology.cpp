#include "src/phy/technology.hpp"

#include "src/util/log.hpp"

namespace osmosis::phy {

const std::vector<TechEntry>& technology_catalogue() {
  // Guard times from the paper: MEMS/thermo-optic switch in milliseconds
  // (circuit provisioning only), Chiaro beam steering ~20 ns [4], tunable
  // lasers 45 ns [7], SOAs ~5 ns currently, sub-ns with DPSK-enabled deep
  // saturation (§VII), femtoseconds for XPM-strobed Mach-Zehnder [25].
  static const std::vector<TechEntry> catalogue = {
      {SwitchTech::kMems, "MEMS moving mirror", 5e6, false, 1000.0, 50.0,
       5e6},
      {SwitchTech::kThermoOptic, "thermo-optic polymer", 2e6, false, 1000.0,
       400.0, 2e6},
      {SwitchTech::kBeamSteering, "beam steering (Chiaro)", 20.0, true,
       1000.0, 300.0, 200.0},
      {SwitchTech::kTunableLaser, "fast tunable laser", 45.0, true, 1000.0,
       250.0, 150.0},
      {SwitchTech::kSoa, "SOA gate", 5.0, true, 1000.0, 150.0, 20.0},
      {SwitchTech::kSoaDpskSaturated, "SOA gate, DPSK deep saturation", 0.8,
       true, 1000.0, 120.0, 20.0},
      {SwitchTech::kSoaXpmStrobed, "SOA XPM-strobed Mach-Zehnder", 1e-3,
       true, 1000.0, 200.0, 40.0},
  };
  return catalogue;
}

const TechEntry& technology(SwitchTech tech) {
  for (const auto& entry : technology_catalogue())
    if (entry.tech == tech) return entry;
  OSMOSIS_REQUIRE(false, "unknown switch technology");
  __builtin_unreachable();
}

bool viable_for_packet_switching(const TechEntry& t, double cell_time_ns,
                                 double max_guard_fraction) {
  OSMOSIS_REQUIRE(cell_time_ns > 0.0, "cell time must be positive");
  OSMOSIS_REQUIRE(max_guard_fraction > 0.0 && max_guard_fraction < 1.0,
                  "guard fraction must be in (0,1)");
  return t.guard_time_ns <= max_guard_fraction * cell_time_ns;
}

}  // namespace osmosis::phy
