#pragma once
// Bit-error-rate arithmetic for optical links (§IV.C).
//
// The paper's reliability story: raw optical links achieve BER in the
// 1e-10..1e-12 range (copper can be engineered to 1e-17); a (272,256)
// FEC lifts the user BER past 1e-17, and hop-by-hop retransmission past
// 1e-21. This header provides the Q-factor/BER conversions and link
// chaining used throughout; the FEC and ARQ layers compute their own
// output error rates on top.

#include "src/phy/soa.hpp"  // Modulation

namespace osmosis::phy {

/// Raw BER envelopes the paper quotes.
inline constexpr double kOpticalRawBerBest = 1e-12;
inline constexpr double kOpticalRawBerWorst = 1e-10;
inline constexpr double kCopperEngineeredBer = 1e-17;

/// Gaussian-noise BER for a given Q-factor: 0.5 * erfc(Q / sqrt(2)).
double ber_from_q(double q);

/// Inverse of ber_from_q (bisection; ber in (0, 0.5)).
double q_from_ber(double ber);

/// Required OSNR (dB, 0.1 nm reference bandwidth) to reach a BER target.
/// DPSK with balanced detection needs ~3 dB less OSNR than NRZ at any
/// BER — the advantage the paper measured on the SOA-switched link.
double required_osnr_db(double ber, Modulation mod);

/// Error probability after `hops` independent link traversals, each with
/// per-hop error probability `per_hop` (union bound, exact for the
/// complement-product form used here).
double chained_error_rate(double per_hop, int hops);

}  // namespace osmosis::phy
