#include "src/phy/crossbar_optical.hpp"

#include <cmath>

#include "src/util/log.hpp"
#include "src/util/units.hpp"

namespace osmosis::phy {

BroadcastSelectCrossbar::BroadcastSelectCrossbar(BroadcastSelectConfig cfg)
    : cfg_(cfg),
      modules_(static_cast<std::size_t>(cfg.switching_modules())),
      module_failed_(static_cast<std::size_t>(cfg.switching_modules()), 0),
      fiber_failed_(static_cast<std::size_t>(cfg.fibers), 0) {
  OSMOSIS_REQUIRE(cfg_.fibers >= 1 && cfg_.wavelengths >= 1,
                  "need at least one fiber and one wavelength");
  OSMOSIS_REQUIRE(cfg_.ports == cfg_.fibers * cfg_.wavelengths,
                  "ports (" << cfg_.ports << ") must equal fibers*wavelengths ("
                            << cfg_.fibers * cfg_.wavelengths << ")");
  OSMOSIS_REQUIRE(cfg_.receivers_per_egress >= 1,
                  "need at least one receiver per egress");
}

int BroadcastSelectCrossbar::fiber_of_input(int input) const {
  OSMOSIS_REQUIRE(input >= 0 && input < cfg_.ports, "input out of range");
  return input / cfg_.wavelengths;
}

int BroadcastSelectCrossbar::wavelength_of_input(int input) const {
  OSMOSIS_REQUIRE(input >= 0 && input < cfg_.ports, "input out of range");
  return input % cfg_.wavelengths;
}

int BroadcastSelectCrossbar::module_of(int egress, int receiver) const {
  OSMOSIS_REQUIRE(egress >= 0 && egress < cfg_.ports, "egress out of range");
  OSMOSIS_REQUIRE(receiver >= 0 && receiver < cfg_.receivers_per_egress,
                  "receiver out of range");
  return egress * cfg_.receivers_per_egress + receiver;
}

void BroadcastSelectCrossbar::connect(int input, int egress, int receiver) {
  ModuleState& m = modules_[static_cast<std::size_t>(module_of(egress, receiver))];
  const int f = fiber_of_input(input);
  const int w = wavelength_of_input(input);
  if (m.fiber != f) {
    ++reconfigs_;
    m.fiber = f;
  }
  if (m.wavelength != w) {
    ++reconfigs_;
    m.wavelength = w;
  }
}

void BroadcastSelectCrossbar::release(int egress, int receiver) {
  ModuleState& m = modules_[static_cast<std::size_t>(module_of(egress, receiver))];
  if (m.fiber != -1) {
    ++reconfigs_;
    m.fiber = -1;
  }
  if (m.wavelength != -1) {
    ++reconfigs_;
    m.wavelength = -1;
  }
}

void BroadcastSelectCrossbar::release_all() {
  for (int e = 0; e < cfg_.ports; ++e)
    for (int r = 0; r < cfg_.receivers_per_egress; ++r) release(e, r);
}

int BroadcastSelectCrossbar::selected_input(int egress, int receiver) const {
  const int mod = module_of(egress, receiver);
  if (module_failed_[static_cast<std::size_t>(mod)]) return -1;
  const ModuleState& m = modules_[static_cast<std::size_t>(mod)];
  if (m.fiber < 0 || m.wavelength < 0) return -1;
  if (fiber_failed_[static_cast<std::size_t>(m.fiber)]) return -1;
  return m.fiber * cfg_.wavelengths + m.wavelength;
}

void BroadcastSelectCrossbar::fail_module(int egress, int receiver) {
  module_failed_[static_cast<std::size_t>(module_of(egress, receiver))] = 1;
}

void BroadcastSelectCrossbar::repair_module(int egress, int receiver) {
  module_failed_[static_cast<std::size_t>(module_of(egress, receiver))] = 0;
}

bool BroadcastSelectCrossbar::module_failed(int egress, int receiver) const {
  return module_failed_[static_cast<std::size_t>(
             module_of(egress, receiver))] != 0;
}

void BroadcastSelectCrossbar::fail_fiber(int fiber) {
  OSMOSIS_REQUIRE(fiber >= 0 && fiber < cfg_.fibers, "fiber out of range");
  fiber_failed_[static_cast<std::size_t>(fiber)] = 1;
}

void BroadcastSelectCrossbar::repair_fiber(int fiber) {
  OSMOSIS_REQUIRE(fiber >= 0 && fiber < cfg_.fibers, "fiber out of range");
  fiber_failed_[static_cast<std::size_t>(fiber)] = 0;
}

bool BroadcastSelectCrossbar::fiber_failed(int fiber) const {
  OSMOSIS_REQUIRE(fiber >= 0 && fiber < cfg_.fibers, "fiber out of range");
  return fiber_failed_[static_cast<std::size_t>(fiber)] != 0;
}

int BroadcastSelectCrossbar::reachable_egress_count(int input) const {
  if (fiber_failed_[static_cast<std::size_t>(fiber_of_input(input))])
    return 0;
  int reachable = 0;
  for (int eg = 0; eg < cfg_.ports; ++eg) {
    for (int rx = 0; rx < cfg_.receivers_per_egress; ++rx) {
      if (!module_failed_[static_cast<std::size_t>(module_of(eg, rx))]) {
        ++reachable;
        break;
      }
    }
  }
  return reachable;
}

int BroadcastSelectCrossbar::gates_on() const {
  int on = 0;
  for (const auto& m : modules_) {
    on += (m.fiber >= 0 ? 1 : 0) + (m.wavelength >= 0 ? 1 : 0);
  }
  return on;
}

PowerBudgetReport BroadcastSelectCrossbar::power_budget() const {
  PowerBudgetReport r;
  r.split_loss_db = util::to_db(static_cast<double>(cfg_.split_ways()));
  // Path: Tx launch - mux + preamp - split - excess + two SOA gate gains.
  r.received_power_dbm = cfg_.launch_power_dbm - cfg_.mux_loss_db +
                         cfg_.preamp_gain_db - r.split_loss_db -
                         cfg_.excess_loss_db + 2.0 * cfg_.soa_gate_gain_db;
  r.margin_db = r.received_power_dbm - cfg_.receiver_sensitivity_dbm;
  r.closes = r.margin_db >= cfg_.required_margin_db;
  return r;
}

double BroadcastSelectCrossbar::signal_to_crosstalk_db() const {
  const double leak = util::from_db(-cfg_.soa_extinction_db);
  // With all ingress ports lit at equal power: (W-1) same-fiber colors
  // behind one off wavelength gate, (F-1) same-color fibers behind one
  // off fiber gate, and (F-1)(W-1) doubly-suppressed channels.
  const double w1 = static_cast<double>(cfg_.wavelengths - 1);
  const double f1 = static_cast<double>(cfg_.fibers - 1);
  const double crosstalk = (w1 + f1) * leak + w1 * f1 * leak * leak;
  OSMOSIS_REQUIRE(crosstalk > 0.0,
                  "degenerate 1x1 crossbar has no crosstalk to analyze");
  return -util::to_db(crosstalk);
}

double BroadcastSelectCrossbar::electrical_power_w() const {
  const double amps_mw =
      static_cast<double>(cfg_.fibers) * cfg_.amplifier_power_mw;
  const double gates_mw =
      static_cast<double>(gates_on()) * cfg_.soa_bias_power_mw;
  return (amps_mw + gates_mw) / 1000.0;
}

double BroadcastSelectCrossbar::control_power_w(double reconfigs_per_s) const {
  OSMOSIS_REQUIRE(reconfigs_per_s >= 0.0, "negative reconfiguration rate");
  return reconfigs_per_s * cfg_.control_energy_pj * 1e-12;
}

}  // namespace osmosis::phy
