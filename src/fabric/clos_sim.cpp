#include "src/fabric/clos_sim.hpp"

#include <algorithm>

#include "src/util/log.hpp"
#include "src/util/units.hpp"

namespace osmosis::fabric {

int ClosFabricSim::new_switch(int level, int ports) {
  SwitchNode node;
  node.level = level;
  sw::SchedulerConfig sc;
  sc.kind = cfg_.scheduler;
  sc.ports = ports;
  sc.receivers = 1;
  sc.iterations = cfg_.scheduler_iterations;
  sc.seed = 0xC105ULL + static_cast<std::uint64_t>(switches_.size());
  node.sched = sw::make_scheduler(sc);
  node.peer.resize(static_cast<std::size_t>(ports));
  node.voq.assign(static_cast<std::size_t>(ports),
                  std::vector<std::deque<FabricCell>>(
                      static_cast<std::size_t>(ports)));
  node.input_occupancy.assign(static_cast<std::size_t>(ports), 0);
  node.out_credits.assign(static_cast<std::size_t>(ports),
                          cfg_.buffer_cells);
  node.out_data.resize(static_cast<std::size_t>(ports));
  node.credit_in.resize(static_cast<std::size_t>(ports));
  switches_.push_back(std::move(node));
  return static_cast<int>(switches_.size()) - 1;
}

void ClosFabricSim::wire(int sw_a, int port_a, int sw_b, int port_b,
                         int delay) {
  auto& a = switches_[static_cast<std::size_t>(sw_a)];
  auto& b = switches_[static_cast<std::size_t>(sw_b)];
  OSMOSIS_REQUIRE(a.peer[static_cast<std::size_t>(port_a)].kind ==
                          PeerKind::kNone &&
                      b.peer[static_cast<std::size_t>(port_b)].kind ==
                          PeerKind::kNone,
                  "double wiring of a port");
  a.peer[static_cast<std::size_t>(port_a)] =
      Peer{PeerKind::kSwitch, sw_b, port_b, delay};
  b.peer[static_cast<std::size_t>(port_b)] =
      Peer{PeerKind::kSwitch, sw_a, port_a, delay};
}

std::vector<ClosFabricSim::Uplink> ClosFabricSim::build_slice(
    int level, int& host_base) {
  std::vector<Uplink> uplinks;
  if (level == 1) {
    const int sw = new_switch(1, cfg_.radix);
    auto& node = switches_[static_cast<std::size_t>(sw)];
    for (int p = 0; p < m_; ++p) {
      const int host = host_base++;
      node.peer[static_cast<std::size_t>(p)] =
          Peer{PeerKind::kHost, host, -1, cfg_.host_cable_slots};
      node.down_ranges.push_back({host, host + 1, p});
      host_attach_.push_back(HostAttach{sw, p});
    }
    for (int u = 0; u < m_; ++u) {
      node.up_ports.push_back(m_ + u);
      uplinks.push_back(Uplink{sw, m_ + u});
    }
    return uplinks;
  }

  // m sub-pods, then m^(level-1) switches of this level on top of them.
  std::vector<std::vector<Uplink>> pod_up;
  std::vector<std::pair<int, int>> pod_range;  // hosts [lo, hi) per pod
  pod_up.reserve(static_cast<std::size_t>(m_));
  for (int i = 0; i < m_; ++i) {
    const int lo = host_base;
    pod_up.push_back(build_slice(level - 1, host_base));
    pod_range.emplace_back(lo, host_base);
  }
  const int top_count = static_cast<int>(pod_up[0].size());
  std::vector<int> tops;
  tops.reserve(static_cast<std::size_t>(top_count));
  for (int j = 0; j < top_count; ++j) {
    const int sw = new_switch(level, cfg_.radix);
    tops.push_back(sw);
  }
  for (int i = 0; i < m_; ++i) {
    OSMOSIS_REQUIRE(static_cast<int>(pod_up[static_cast<std::size_t>(i)]
                                         .size()) == top_count,
                    "unbalanced pod uplink counts");
    for (int j = 0; j < top_count; ++j) {
      const Uplink& up = pod_up[static_cast<std::size_t>(i)]
                               [static_cast<std::size_t>(j)];
      wire(up.sw, up.port, tops[static_cast<std::size_t>(j)], i,
           cfg_.trunk_cable_slots);
      switches_[static_cast<std::size_t>(tops[static_cast<std::size_t>(j)])]
          .down_ranges.push_back({pod_range[static_cast<std::size_t>(i)].first,
                                  pod_range[static_cast<std::size_t>(i)].second,
                                  i});
    }
  }
  // Expose this slice's uplinks: ports m..2m-1 of every top switch,
  // spread so consecutive indices hit distinct switches. Each (switch,
  // port) pair is pushed exactly once.
  for (int u = 0; u < m_; ++u) {
    for (int j = 0; j < top_count; ++j) {
      switches_[static_cast<std::size_t>(tops[static_cast<std::size_t>(j)])]
          .up_ports.push_back(m_ + u);
      uplinks.push_back(Uplink{tops[static_cast<std::size_t>(j)], m_ + u});
    }
  }
  return uplinks;
}

ClosFabricSim::ClosFabricSim(ClosConfig cfg,
                             std::unique_ptr<sim::TrafficGen> traffic)
    : cfg_(cfg), m_(cfg.radix / 2), traffic_(std::move(traffic)) {
  OSMOSIS_REQUIRE(cfg_.radix >= 4 && cfg_.radix % 2 == 0,
                  "radix must be even and >= 4");
  OSMOSIS_REQUIRE(cfg_.levels >= 1 && cfg_.levels <= 4,
                  "levels must be in 1..4");
  OSMOSIS_REQUIRE(cfg_.scheduler == sw::SchedulerKind::kIslip ||
                      cfg_.scheduler == sw::SchedulerKind::kPim ||
                      cfg_.scheduler == sw::SchedulerKind::kTdm ||
                      cfg_.scheduler == sw::SchedulerKind::kWfa,
                  "fabric stages need an immediate-issue scheduler kind");

  int host_base = 0;
  if (cfg_.levels == 1) {
    // A single switch: every port is a host port.
    const int sw = new_switch(1, cfg_.radix);
    auto& node = switches_[static_cast<std::size_t>(sw)];
    for (int p = 0; p < cfg_.radix; ++p) {
      node.peer[static_cast<std::size_t>(p)] =
          Peer{PeerKind::kHost, host_base, -1, cfg_.host_cable_slots};
      node.down_ranges.push_back({host_base, host_base + 1, p});
      host_attach_.push_back(HostAttach{sw, p});
      ++host_base;
    }
  } else {
    // 2m pods of FT'(L-1) + m^(L-1) top switches with all ports down.
    std::vector<std::vector<Uplink>> pod_up;
    std::vector<std::pair<int, int>> pod_range;
    for (int p = 0; p < cfg_.radix; ++p) {
      const int lo = host_base;
      pod_up.push_back(build_slice(cfg_.levels - 1, host_base));
      pod_range.emplace_back(lo, host_base);
    }
    const int top_count = static_cast<int>(pod_up[0].size());
    for (int j = 0; j < top_count; ++j) {
      const int top = new_switch(cfg_.levels, cfg_.radix);
      for (int p = 0; p < cfg_.radix; ++p) {
        const Uplink& up = pod_up[static_cast<std::size_t>(p)]
                                 [static_cast<std::size_t>(j)];
        wire(up.sw, up.port, top, p, cfg_.trunk_cable_slots);
        switches_[static_cast<std::size_t>(top)].down_ranges.push_back(
            {pod_range[static_cast<std::size_t>(p)].first,
             pod_range[static_cast<std::size_t>(p)].second, p});
      }
    }
  }
  hosts_ = host_base;
  const std::uint64_t expected =
      static_cast<std::uint64_t>(cfg_.radix) *
      util::ipow(static_cast<std::uint64_t>(m_),
                 static_cast<unsigned>(cfg_.levels - 1));
  OSMOSIS_REQUIRE(static_cast<std::uint64_t>(hosts_) == expected,
                  "built " << hosts_ << " hosts, expected " << expected);
  OSMOSIS_REQUIRE(traffic_ != nullptr && traffic_->ports() == hosts_,
                  "traffic generator must cover all " << hosts_ << " hosts");

  failed_.assign(switches_.size(), 0);
  for (const int id : cfg_.failed_switches) {
    OSMOSIS_REQUIRE(id >= 0 && id < static_cast<int>(switches_.size()),
                    "failed switch " << id << " out of range (have "
                                     << switches_.size() << " switches)");
    const SwitchNode& node = switches_[static_cast<std::size_t>(id)];
    if (node.level == 1) {
      // A leaf is its hosts' only attachment point: no rerouting exists.
      const int lo = node.down_ranges.front().lo;
      const int hi = node.down_ranges.back().hi;
      OSMOSIS_REQUIRE(false, "failed leaf switch "
                                 << id << " disconnects hosts " << lo << ".."
                                 << hi - 1 << " outright");
    }
    failed_[static_cast<std::size_t>(id)] = 1;
    degraded_ = true;
  }

  build_routes();
  if (degraded_) verify_connectivity();

  host_queue_.resize(static_cast<std::size_t>(hosts_));
  host_credits_.assign(static_cast<std::size_t>(hosts_), cfg_.buffer_cells);
  host_credit_in_.resize(static_cast<std::size_t>(hosts_));
  host_out_.resize(static_cast<std::size_t>(hosts_));
  flow_seq_.assign(
      static_cast<std::size_t>(hosts_) * static_cast<std::size_t>(hosts_), 0);
}

bool ClosFabricSim::reachable(int sw, int dst,
                              std::vector<signed char>& memo) const {
  signed char& m = memo[static_cast<std::size_t>(sw) *
                            static_cast<std::size_t>(hosts_) +
                        static_cast<std::size_t>(dst)];
  if (m != -1) return m != 0;
  bool ok = false;
  if (!failed_[static_cast<std::size_t>(sw)]) {
    const SwitchNode& node = switches_[static_cast<std::size_t>(sw)];
    int down = -1;
    for (const auto& dr : node.down_ranges)
      if (dst >= dr.lo && dst < dr.hi) {
        down = dr.port;
        break;
      }
    if (down >= 0) {
      const Peer& peer = node.peer[static_cast<std::size_t>(down)];
      ok = peer.kind == PeerKind::kHost || reachable(peer.id, dst, memo);
    } else {
      for (const int u : node.up_ports) {
        const Peer& peer = node.peer[static_cast<std::size_t>(u)];
        if (peer.kind == PeerKind::kSwitch && reachable(peer.id, dst, memo)) {
          ok = true;
          break;
        }
      }
    }
  }
  m = ok ? 1 : 0;
  return ok;
}

void ClosFabricSim::build_routes() {
  std::vector<signed char> memo;
  if (degraded_)
    memo.assign(switches_.size() * static_cast<std::size_t>(hosts_), -1);
  for (auto& node : switches_) {
    node.route.assign(static_cast<std::size_t>(hosts_), -1);
    const bool dead =
        degraded_ &&
        failed_[static_cast<std::size_t>(&node - switches_.data())];
    if (dead) continue;  // carries no cells; routes stay unused
    for (int dst = 0; dst < hosts_; ++dst) {
      int port = -1;
      for (const auto& dr : node.down_ranges) {
        if (dst >= dr.lo && dst < dr.hi) {
          port = dr.port;
          break;
        }
      }
      if (port < 0) {
        OSMOSIS_REQUIRE(!node.up_ports.empty(),
                        "top-level switch cannot reach host " << dst);
        // Static destination-digit uplink choice (d-mod-k): level l keys
        // on the l-th base-m digit of the destination. Using a DIFFERENT
        // digit per level is essential — traffic reaching a level-l
        // switch already shares the lower digits, so reusing them would
        // funnel everything onto one uplink. Deterministic per
        // destination, so per-flow order is preserved.
        std::uint64_t digit = static_cast<std::uint64_t>(dst);
        for (int l = 1; l < node.level; ++l)
          digit /= static_cast<std::uint64_t>(m_);
        if (!degraded_) {
          port = node.up_ports[digit % node.up_ports.size()];
        } else {
          // Same digit choice, spread over the uplinks whose peer can
          // still reach dst: the fault-free table is reproduced exactly
          // when nothing failed, and flows re-spread deterministically
          // around the holes when something did.
          std::vector<int> valid;
          for (const int u : node.up_ports) {
            const Peer& peer = node.peer[static_cast<std::size_t>(u)];
            if (peer.kind == PeerKind::kSwitch &&
                reachable(peer.id, dst, memo))
              valid.push_back(u);
          }
          if (valid.empty()) continue;  // verify_connectivity() reports
          port = valid[digit % valid.size()];
        }
      }
      node.route[static_cast<std::size_t>(dst)] = port;
    }
  }
}

void ClosFabricSim::verify_connectivity() const {
  // Follow each host pair's actual routed path; a -1 route or a failed
  // switch on the way means the failure set strands that pair.
  for (int src = 0; src < hosts_; ++src) {
    const HostAttach& at = host_attach_[static_cast<std::size_t>(src)];
    for (int dst = 0; dst < hosts_; ++dst) {
      int sw = at.sw;
      const int max_hops = 2 * cfg_.levels - 1;
      for (int hop = 0; hop <= max_hops; ++hop) {
        OSMOSIS_REQUIRE(!failed_[static_cast<std::size_t>(sw)],
                        "failed switches disconnect host "
                            << dst << " from host " << src
                            << " (path dead-ends at switch " << sw << ")");
        const SwitchNode& node = switches_[static_cast<std::size_t>(sw)];
        const int out = node.route[static_cast<std::size_t>(dst)];
        OSMOSIS_REQUIRE(out >= 0, "failed switches disconnect host "
                                      << dst << " from host " << src
                                      << " (no surviving uplink at switch "
                                      << sw << ")");
        const Peer& peer = node.peer[static_cast<std::size_t>(out)];
        if (peer.kind == PeerKind::kHost) break;
        OSMOSIS_REQUIRE(hop < max_hops,
                        "routing loop toward host " << dst);
        sw = peer.id;
      }
    }
  }
}

void ClosFabricSim::accept_cell(int sw_id, int in_port, FabricCell cell) {
  SwitchNode& node = switches_[static_cast<std::size_t>(sw_id)];
  ++cell.hops;
  const int out = node.route[static_cast<std::size_t>(cell.dst)];
  node.voq[static_cast<std::size_t>(in_port)][static_cast<std::size_t>(out)]
      .push_back(cell);
  int& occ = node.input_occupancy[static_cast<std::size_t>(in_port)];
  ++occ;
  node.max_input_occ = std::max(node.max_input_occ, occ);
  if (occ > cfg_.buffer_cells) ++overflows_;
  node.sched->request(in_port, out);
}

void ClosFabricSim::step(std::uint64_t t, bool measuring) {
  // 1. Hosts generate traffic.
  for (int h = 0; h < hosts_; ++h) {
    sim::Arrival a;
    if (!traffic_->sample(h, a)) continue;
    const std::size_t flow = static_cast<std::size_t>(h) *
                                 static_cast<std::size_t>(hosts_) +
                             static_cast<std::size_t>(a.dst);
    host_queue_[static_cast<std::size_t>(h)].push_back(
        FabricCell{h, a.dst, flow_seq_[flow]++, t, 0});
    ++injected_total_;
  }

  // 2. Credits come home.
  for (int h = 0; h < hosts_; ++h) {
    auto& q = host_credit_in_[static_cast<std::size_t>(h)];
    while (!q.empty() && q.front() <= t) {
      q.pop_front();
      ++host_credits_[static_cast<std::size_t>(h)];
    }
  }
  for (auto& node : switches_) {
    for (std::size_t p = 0; p < node.credit_in.size(); ++p) {
      auto& q = node.credit_in[p];
      while (!q.empty() && q.front() <= t) {
        q.pop_front();
        ++node.out_credits[p];
      }
    }
  }

  // 3a. Host-to-leaf arrivals.
  for (int h = 0; h < hosts_; ++h) {
    auto& q = host_out_[static_cast<std::size_t>(h)];
    while (!q.empty() && q.front().slot <= t) {
      const FabricCell cell = q.front().cell;
      q.pop_front();
      const auto& at = host_attach_[static_cast<std::size_t>(h)];
      accept_cell(at.sw, at.port, cell);
    }
  }

  // 3b. Inter-switch and egress cable arrivals.
  for (auto& node : switches_) {
    for (std::size_t p = 0; p < node.out_data.size(); ++p) {
      auto& q = node.out_data[p];
      while (!q.empty() && q.front().slot <= t) {
        const FabricCell cell = q.front().cell;
        q.pop_front();
        const Peer& peer = node.peer[p];
        if (peer.kind == PeerKind::kHost) {
          reorder_.deliver(cell.src, cell.dst, cell.seq);
          ++delivered_total_;
          if (measuring) {
            delay_hist_.add(static_cast<double>(t - cell.inject_slot));
            hops_.add(static_cast<double>(cell.hops));
            meter_.add_delivery();
          }
        } else {
          accept_cell(peer.id, peer.port, cell);
        }
      }
    }
  }

  // 4. Host injection, gated by leaf input-buffer credits.
  for (int h = 0; h < hosts_; ++h) {
    auto& q = host_queue_[static_cast<std::size_t>(h)];
    int& credits = host_credits_[static_cast<std::size_t>(h)];
    if (!q.empty() && credits > 0) {
      --credits;
      host_out_[static_cast<std::size_t>(h)].push_back(
          Timed{t + static_cast<std::uint64_t>(cfg_.host_cable_slots),
                q.front()});
      q.pop_front();
    }
  }

  // 5. Per-stage scheduling and crossbar transfer.
  for (auto& node : switches_) {
    if (degraded_ &&
        failed_[static_cast<std::size_t>(&node - switches_.data())])
      continue;  // out of service: routing never sends cells here
    const int ports = static_cast<int>(node.peer.size());
    for (int p = 0; p < ports; ++p) {
      const bool fc = node.peer[static_cast<std::size_t>(p)].kind ==
                      PeerKind::kSwitch;
      if (fc && node.out_credits[static_cast<std::size_t>(p)] == 0)
        node.sched->block_output(p);
      else
        node.sched->unblock_output(p);
    }
    for (const sw::Grant& g : node.sched->tick()) {
      auto& fifo = node.voq[static_cast<std::size_t>(g.input)]
                           [static_cast<std::size_t>(g.output)];
      OSMOSIS_REQUIRE(!fifo.empty(), "clos grant without a queued cell");
      const FabricCell cell = fifo.front();
      fifo.pop_front();
      --node.input_occupancy[static_cast<std::size_t>(g.input)];

      // Credit back to whatever feeds this input port.
      const Peer& upstream = node.peer[static_cast<std::size_t>(g.input)];
      if (upstream.kind == PeerKind::kHost) {
        host_credit_in_[static_cast<std::size_t>(upstream.id)].push_back(
            t + static_cast<std::uint64_t>(upstream.delay));
      } else {
        switches_[static_cast<std::size_t>(upstream.id)]
            .credit_in[static_cast<std::size_t>(upstream.port)]
            .push_back(t + static_cast<std::uint64_t>(upstream.delay));
      }

      // Consume downstream credit (switch links only) and launch.
      const Peer& downstream = node.peer[static_cast<std::size_t>(g.output)];
      if (downstream.kind == PeerKind::kSwitch) {
        int& credits = node.out_credits[static_cast<std::size_t>(g.output)];
        OSMOSIS_REQUIRE(credits > 0, "clos grant to credit-less output");
        --credits;
      }
      node.out_data[static_cast<std::size_t>(g.output)].push_back(
          Timed{t + static_cast<std::uint64_t>(downstream.delay), cell});
    }
  }
}

ClosResult ClosFabricSim::run() {
  for (std::uint64_t t = 0; t < cfg_.warmup_slots; ++t) step(t, false);
  for (std::uint64_t t = cfg_.warmup_slots;
       t < cfg_.warmup_slots + cfg_.measure_slots; ++t) {
    step(t, true);
    meter_.advance_slots(1, static_cast<std::uint64_t>(hosts_));
  }

  ClosResult r;
  r.radix = cfg_.radix;
  r.levels = cfg_.levels;
  r.hosts = hosts_;
  r.switches = static_cast<int>(switches_.size());
  r.path_stages = 2 * cfg_.levels - 1;
  r.offered_load = traffic_->offered_load();
  r.throughput = meter_.utilization();
  r.delivered = delay_hist_.count();
  r.mean_delay_slots = delay_hist_.mean();
  r.p99_delay_slots = delay_hist_.p99();
  r.mean_hops = hops_.mean();
  r.max_input_occupancy_per_level.assign(
      static_cast<std::size_t>(cfg_.levels), 0);
  for (const auto& node : switches_) {
    auto& slot = r.max_input_occupancy_per_level[static_cast<std::size_t>(
        node.level - 1)];
    slot = std::max(slot, node.max_input_occ);
  }
  r.buffer_overflows = overflows_;
  r.out_of_order = reorder_.out_of_order();
  r.injected_total = injected_total_;
  r.delivered_total = delivered_total_;
  return r;
}

ClosResult run_clos_uniform(const ClosConfig& cfg, double load,
                            std::uint64_t seed) {
  const int hosts = cfg.radix * static_cast<int>(util::ipow(
                                    static_cast<std::uint64_t>(cfg.radix / 2),
                                    static_cast<unsigned>(cfg.levels - 1)));
  ClosFabricSim sim(cfg, sim::make_uniform(hosts, load, seed));
  return sim.run();
}

}  // namespace osmosis::fabric
