#include "src/fabric/clos_sim.hpp"

#include <algorithm>

#include "src/util/log.hpp"
#include "src/util/units.hpp"

namespace osmosis::fabric {

ClosFabricSim::ClosFabricSim(ClosConfig cfg,
                             std::unique_ptr<sim::TrafficGen> traffic)
    : cfg_(cfg), traffic_(std::move(traffic)) {
  OSMOSIS_REQUIRE(cfg_.radix >= 4 && cfg_.radix % 2 == 0,
                  "radix must be even and >= 4");
  OSMOSIS_REQUIRE(cfg_.levels >= 1 && cfg_.levels <= 4,
                  "levels must be in 1..4");
  OSMOSIS_REQUIRE(cfg_.scheduler == sw::SchedulerKind::kIslip ||
                      cfg_.scheduler == sw::SchedulerKind::kPim ||
                      cfg_.scheduler == sw::SchedulerKind::kTdm ||
                      cfg_.scheduler == sw::SchedulerKind::kWfa,
                  "fabric stages need an immediate-issue scheduler kind");

  topo::FatTreeParams fp;
  fp.radix = cfg_.radix;
  fp.levels = cfg_.levels;
  fp.host_delay = cfg_.host_cable_slots;
  fp.trunk_delay = cfg_.trunk_cable_slots;
  fp.routing = topo::RouteKind::kDestMod;
  fp.failed_switches = cfg_.failed_switches;
  topo_ = topo::make_fat_tree(fp);

  OSMOSIS_REQUIRE(traffic_ != nullptr && traffic_->ports() == topo_.hosts,
                  "traffic generator must cover all " << topo_.hosts
                                                      << " hosts");
  if (!cfg_.failed_switches.empty()) {
    const auto findings = topo_.audit(1);
    OSMOSIS_REQUIRE(findings.empty(), findings.front());
  }

  switches_.resize(topo_.switches.size());
  for (std::size_t id = 0; id < switches_.size(); ++id) {
    SwitchNode& node = switches_[id];
    sw::SchedulerConfig sc;
    sc.kind = cfg_.scheduler;
    sc.ports = cfg_.radix;
    sc.receivers = 1;
    sc.iterations = cfg_.scheduler_iterations;
    sc.seed = 0xC105ULL + static_cast<std::uint64_t>(id);
    node.sched = sw::make_scheduler(sc);
    node.voq.assign(static_cast<std::size_t>(cfg_.radix),
                    std::vector<std::deque<FabricCell>>(
                        static_cast<std::size_t>(cfg_.radix)));
    node.input_occupancy.assign(static_cast<std::size_t>(cfg_.radix), 0);
    node.out_credits.assign(static_cast<std::size_t>(cfg_.radix),
                            cfg_.buffer_cells);
    node.out_data.resize(static_cast<std::size_t>(cfg_.radix));
    node.credit_in.resize(static_cast<std::size_t>(cfg_.radix));
  }

  host_queue_.resize(static_cast<std::size_t>(topo_.hosts));
  host_credits_.assign(static_cast<std::size_t>(topo_.hosts),
                       cfg_.buffer_cells);
  host_credit_in_.resize(static_cast<std::size_t>(topo_.hosts));
  host_out_.resize(static_cast<std::size_t>(topo_.hosts));
  flow_seq_.assign(static_cast<std::size_t>(topo_.hosts) *
                       static_cast<std::size_t>(topo_.hosts),
                   0);
}

void ClosFabricSim::accept_cell(int sw_id, int in_port, FabricCell cell) {
  SwitchNode& node = switches_[static_cast<std::size_t>(sw_id)];
  ++cell.hops;
  const int out =
      topo_.switches[static_cast<std::size_t>(sw_id)]
          .route[static_cast<std::size_t>(cell.dst)];
  node.voq[static_cast<std::size_t>(in_port)][static_cast<std::size_t>(out)]
      .push_back(cell);
  int& occ = node.input_occupancy[static_cast<std::size_t>(in_port)];
  ++occ;
  node.max_input_occ = std::max(node.max_input_occ, occ);
  if (occ > cfg_.buffer_cells) ++overflows_;
  node.sched->request(in_port, out);
}

void ClosFabricSim::step(std::uint64_t t, bool measuring) {
  const int hosts = topo_.hosts;
  const bool degraded = !cfg_.failed_switches.empty();

  // 1. Hosts generate traffic.
  for (int h = 0; h < hosts; ++h) {
    sim::Arrival a;
    if (!traffic_->sample(h, a)) continue;
    const std::size_t flow = static_cast<std::size_t>(h) *
                                 static_cast<std::size_t>(hosts) +
                             static_cast<std::size_t>(a.dst);
    host_queue_[static_cast<std::size_t>(h)].push_back(
        FabricCell{h, a.dst, flow_seq_[flow]++, t, 0});
    ++injected_total_;
  }

  // 2. Credits come home.
  for (int h = 0; h < hosts; ++h) {
    auto& q = host_credit_in_[static_cast<std::size_t>(h)];
    while (!q.empty() && q.front() <= t) {
      q.pop_front();
      ++host_credits_[static_cast<std::size_t>(h)];
    }
  }
  for (auto& node : switches_) {
    for (std::size_t p = 0; p < node.credit_in.size(); ++p) {
      auto& q = node.credit_in[p];
      while (!q.empty() && q.front() <= t) {
        q.pop_front();
        ++node.out_credits[p];
      }
    }
  }

  // 3a. Host-to-leaf arrivals.
  for (int h = 0; h < hosts; ++h) {
    auto& q = host_out_[static_cast<std::size_t>(h)];
    while (!q.empty() && q.front().slot <= t) {
      const FabricCell cell = q.front().cell;
      q.pop_front();
      const auto& at = topo_.inject[static_cast<std::size_t>(h)];
      accept_cell(at.sw, at.port, cell);
    }
  }

  // 3b. Inter-switch and egress cable arrivals.
  for (std::size_t s = 0; s < switches_.size(); ++s) {
    SwitchNode& node = switches_[s];
    const topo::SwitchSpec& spec = topo_.switches[s];
    for (std::size_t p = 0; p < node.out_data.size(); ++p) {
      auto& q = node.out_data[p];
      while (!q.empty() && q.front().slot <= t) {
        const FabricCell cell = q.front().cell;
        q.pop_front();
        const topo::Peer& peer = spec.out_peer[p];
        if (peer.kind == topo::PeerKind::kHost) {
          reorder_.deliver(cell.src, cell.dst, cell.seq);
          ++delivered_total_;
          if (measuring) {
            delay_hist_.add(static_cast<double>(t - cell.inject_slot));
            hops_.add(static_cast<double>(cell.hops));
            meter_.add_delivery();
          }
        } else {
          accept_cell(peer.id, peer.port, cell);
        }
      }
    }
  }

  // 4. Host injection, gated by leaf input-buffer credits.
  for (int h = 0; h < hosts; ++h) {
    auto& q = host_queue_[static_cast<std::size_t>(h)];
    int& credits = host_credits_[static_cast<std::size_t>(h)];
    if (!q.empty() && credits > 0) {
      --credits;
      host_out_[static_cast<std::size_t>(h)].push_back(
          Timed{t + static_cast<std::uint64_t>(cfg_.host_cable_slots),
                q.front()});
      q.pop_front();
    }
  }

  // 5. Per-stage scheduling and crossbar transfer.
  for (std::size_t s = 0; s < switches_.size(); ++s) {
    if (degraded && topo_.dead(static_cast<int>(s)))
      continue;  // out of service: routing never sends cells here
    SwitchNode& node = switches_[s];
    const topo::SwitchSpec& spec = topo_.switches[s];
    const int ports = spec.out_ports();
    for (int p = 0; p < ports; ++p) {
      const bool fc = spec.out_peer[static_cast<std::size_t>(p)].kind ==
                      topo::PeerKind::kSwitch;
      if (fc && node.out_credits[static_cast<std::size_t>(p)] == 0)
        node.sched->block_output(p);
      else
        node.sched->unblock_output(p);
    }
    for (const sw::Grant& g : node.sched->tick()) {
      auto& fifo = node.voq[static_cast<std::size_t>(g.input)]
                           [static_cast<std::size_t>(g.output)];
      OSMOSIS_REQUIRE(!fifo.empty(), "clos grant without a queued cell");
      const FabricCell cell = fifo.front();
      fifo.pop_front();
      --node.input_occupancy[static_cast<std::size_t>(g.input)];

      // Credit back to whatever feeds this input port.
      const topo::Peer& upstream =
          spec.in_peer[static_cast<std::size_t>(g.input)];
      if (upstream.kind == topo::PeerKind::kHost) {
        host_credit_in_[static_cast<std::size_t>(upstream.id)].push_back(
            t + static_cast<std::uint64_t>(upstream.delay));
      } else {
        switches_[static_cast<std::size_t>(upstream.id)]
            .credit_in[static_cast<std::size_t>(upstream.port)]
            .push_back(t + static_cast<std::uint64_t>(upstream.delay));
      }

      // Consume downstream credit (switch links only) and launch.
      const topo::Peer& downstream =
          spec.out_peer[static_cast<std::size_t>(g.output)];
      if (downstream.kind == topo::PeerKind::kSwitch) {
        int& credits = node.out_credits[static_cast<std::size_t>(g.output)];
        OSMOSIS_REQUIRE(credits > 0, "clos grant to credit-less output");
        --credits;
      }
      node.out_data[static_cast<std::size_t>(g.output)].push_back(
          Timed{t + static_cast<std::uint64_t>(downstream.delay), cell});
    }
  }
}

ClosResult ClosFabricSim::run() {
  for (std::uint64_t t = 0; t < cfg_.warmup_slots; ++t) step(t, false);
  for (std::uint64_t t = cfg_.warmup_slots;
       t < cfg_.warmup_slots + cfg_.measure_slots; ++t) {
    step(t, true);
    meter_.advance_slots(1, static_cast<std::uint64_t>(topo_.hosts));
  }

  ClosResult r;
  r.radix = cfg_.radix;
  r.levels = cfg_.levels;
  r.hosts = topo_.hosts;
  r.switches = topo_.switch_count();
  r.path_stages = 2 * cfg_.levels - 1;
  r.offered_load = traffic_->offered_load();
  r.throughput = meter_.utilization();
  r.delivered = delay_hist_.count();
  r.mean_delay_slots = delay_hist_.mean();
  r.p99_delay_slots = delay_hist_.p99();
  r.mean_hops = hops_.mean();
  r.max_input_occupancy_per_level.assign(
      static_cast<std::size_t>(cfg_.levels), 0);
  for (std::size_t s = 0; s < switches_.size(); ++s) {
    auto& slot = r.max_input_occupancy_per_level[static_cast<std::size_t>(
        topo_.switches[s].stage - 1)];
    slot = std::max(slot, switches_[s].max_input_occ);
  }
  r.buffer_overflows = overflows_;
  r.out_of_order = reorder_.out_of_order();
  r.injected_total = injected_total_;
  r.delivered_total = delivered_total_;
  return r;
}

ClosResult run_clos_uniform(const ClosConfig& cfg, double load,
                            std::uint64_t seed) {
  const int hosts = cfg.radix * static_cast<int>(util::ipow(
                                    static_cast<std::uint64_t>(cfg.radix / 2),
                                    static_cast<unsigned>(cfg.levels - 1)));
  ClosFabricSim sim(cfg, sim::make_uniform(hosts, load, seed));
  return sim.run();
}

}  // namespace osmosis::fabric
