#include "src/fabric/fabric_sim.hpp"

#include <algorithm>
#include <sstream>
#include <string>

#include "src/prof/profiler.hpp"
#include "src/util/log.hpp"

namespace osmosis::fabric {

namespace {

std::string fab_fault_key(const faults::FaultEvent& e) {
  std::ostringstream oss;
  oss << faults::to_string(e.kind) << '/' << e.a << '@' << e.at_slot;
  return oss.str();
}

}  // namespace

FabricSim::FabricSim(FabricSimConfig cfg,
                     std::unique_ptr<sim::TrafficGen> traffic)
    : cfg_(cfg),
      radix_(cfg.radix),
      m_(cfg.radix / 2),
      hosts_(cfg.radix * (cfg.radix / 2)),
      traffic_(std::move(traffic)),
      telem_(cfg.telemetry) {
  OSMOSIS_REQUIRE(radix_ >= 2 && radix_ % 2 == 0,
                  "radix must be even and >= 2");
  OSMOSIS_REQUIRE(cfg_.buffer_cells >= 1, "need at least one buffer cell");
  OSMOSIS_REQUIRE(cfg_.host_cable_slots >= 1 && cfg_.trunk_cable_slots >= 1,
                  "cable delays must be >= 1 slot");
  OSMOSIS_REQUIRE(cfg_.scheduler == sw::SchedulerKind::kIslip ||
                      cfg_.scheduler == sw::SchedulerKind::kPim ||
                      cfg_.scheduler == sw::SchedulerKind::kTdm ||
                      cfg_.scheduler == sw::SchedulerKind::kWfa,
                  "fabric stages need an immediate-issue scheduler kind");
  OSMOSIS_REQUIRE(traffic_ != nullptr && traffic_->ports() == hosts_,
                  "traffic generator must cover all " << hosts_ << " hosts");

  // The two-level fat tree from the topology zoo: leaves 0..k-1 (hosts
  // on ports 0..m-1, uplinks m..2m-1), spines k..k+m-1, static d-mod-k
  // routes. Switch ids and port assignments match the arithmetic wiring
  // this simulator historically computed inline.
  topo::FatTreeParams fp;
  fp.radix = radix_;
  fp.levels = 2;
  fp.host_delay = cfg_.host_cable_slots;
  fp.trunk_delay = cfg_.trunk_cable_slots;
  fp.routing = topo::RouteKind::kDestMod;
  topo_ = topo::make_fat_tree(fp);
  OSMOSIS_REQUIRE(topo_.hosts == hosts_ && topo_.switch_count() == radix_ + m_,
                  "fat-tree generator shape mismatch");

  const int total_switches = radix_ + m_;  // leaves + spines
  switches_.resize(static_cast<std::size_t>(total_switches));
  for (int s = 0; s < total_switches; ++s) {
    SwitchNode& node = switches_[static_cast<std::size_t>(s)];
    sw::SchedulerConfig sc;
    sc.kind = cfg_.scheduler;
    sc.ports = radix_;
    sc.receivers = 1;
    sc.iterations = cfg_.scheduler_iterations;
    sc.seed = 0x0505ULL + static_cast<std::uint64_t>(s);
    node.sched = sw::make_scheduler(sc);
    node.voq.assign(static_cast<std::size_t>(radix_),
                    std::vector<std::deque<FabricCell>>(
                        static_cast<std::size_t>(radix_)));
    node.input_occupancy.assign(static_cast<std::size_t>(radix_), 0);
    node.out_data.resize(static_cast<std::size_t>(radix_));
    node.credit_in.resize(static_cast<std::size_t>(radix_));
    node.out_credits.assign(static_cast<std::size_t>(radix_),
                            cfg_.buffer_cells);
    if (is_leaf(s)) {
      // Leaf down-ports face hosts: egress, no fabric-internal FC.
      for (int p = 0; p < m_; ++p)
        node.out_credits[static_cast<std::size_t>(p)] = -1;
    }
  }

  // ---- graceful degradation (DESIGN.md §13) ----------------------------
  adaptive_ = cfg_.adaptive_routing;
  if (adaptive_) {
    routes_ = SpineRouteTable(m_, cfg_.reroute_hysteresis_slots);
    parked_.resize(static_cast<std::size_t>(hosts_));
    expected_.assign(
        static_cast<std::size_t>(hosts_),
        std::vector<std::uint64_t>(static_cast<std::size_t>(hosts_), 0));
  }
  if (cfg_.admission.enabled) {
    admission_ = host::AdmissionControl(cfg_.admission, hosts_);
    admission_.set_capacity(m_, m_);
  }
  {
    telemetry::AvailabilityConfig acfg = cfg_.availability;
    acfg.enabled =
        acfg.enabled || cfg_.adaptive_routing || cfg_.admission.enabled;
    avail_ = telemetry::AvailabilityTracker(acfg, m_);
  }

  {
    chaos::MonitorConfig mc = cfg_.monitor;
    // Adaptive routing drains permanent spine outages fully (the dead
    // spine keeps scheduling its resident cells, queued cells re-steer);
    // any other permanent fault can legitimately strand cells.
    bool permanent_stranding = false;
    for (const faults::FaultEvent& e : cfg_.fault_plan.events())
      if (!e.transient() &&
          !(adaptive_ && e.kind == faults::FaultKind::kPlaneFailure))
        permanent_stranding = true;
    mc.allow_stranded = mc.allow_stranded || permanent_stranding;
    mc.expect_drain = cfg_.drain_max_slots > 0;
    monitor_.configure(mc);
  }

  host_queue_.resize(static_cast<std::size_t>(hosts_));
  host_credits_.assign(static_cast<std::size_t>(hosts_), cfg_.buffer_cells);
  host_credit_in_.resize(static_cast<std::size_t>(hosts_));
  host_out_.resize(static_cast<std::size_t>(hosts_));
  flow_seq_.assign(
      static_cast<std::size_t>(hosts_) * static_cast<std::size_t>(hosts_), 0);
  grants_per_switch_.assign(static_cast<std::size_t>(total_switches), 0);
  telem_.series().set_channels({"backlog", "host_backlog", "input_occupancy",
                                "credit_occupancy", "throughput",
                                "sched_matches"});

  // ---- runtime fault plan ----------------------------------------------
  spine_down_.assign(static_cast<std::size_t>(m_), 0);
  host_stalled_.assign(static_cast<std::size_t>(hosts_), 0);
  for (int sp = 0; sp < m_; ++sp)
    health_.declare("spine/" + std::to_string(sp));
  for (int lf = 0; lf < radix_; ++lf)
    health_.declare("leaf/" + std::to_string(lf));
  for (int h = 0; h < hosts_; ++h)
    health_.declare("host/" + std::to_string(h));
  if (!cfg_.fault_plan.empty()) {
    for (const faults::FaultEvent& e : cfg_.fault_plan.events()) {
      switch (e.kind) {
        case faults::FaultKind::kPlaneFailure:
          OSMOSIS_REQUIRE(e.a >= 0 && e.a < m_,
                          "fault plan: spine " << e.a << " out of range");
          // Static d-mod-k routing has no alternate path: a permanently
          // dead spine strands every flow hashed onto it, so only
          // transient outages are accepted unless adaptive routing can
          // re-spread those flows over the survivors.
          OSMOSIS_REQUIRE(e.transient() || adaptive_,
                          "fabric spine failures must be transient");
          break;
        case faults::FaultKind::kAdapterStall:
          OSMOSIS_REQUIRE(e.a >= 0 && e.a < hosts_,
                          "fault plan: host " << e.a << " out of range");
          break;
        default:
          OSMOSIS_REQUIRE(false,
                          "fabric fault plan accepts only spine "
                          "kPlaneFailure and host kAdapterStall entries");
      }
    }
    if (adaptive_) {
      // Adaptive routing needs somewhere to steer: reject plans whose
      // combined permanent spine faults kill every spine.
      std::vector<std::uint8_t> perm(static_cast<std::size_t>(m_), 0);
      int dead = 0;
      for (const faults::FaultEvent& e : cfg_.fault_plan.events())
        if (e.kind == faults::FaultKind::kPlaneFailure && !e.transient() &&
            !perm[static_cast<std::size_t>(e.a)]) {
          perm[static_cast<std::size_t>(e.a)] = 1;
          ++dead;
        }
      OSMOSIS_REQUIRE(dead < m_,
                      "permanent spine faults must leave at least one "
                      "surviving spine");
    }
    injector_.emplace(cfg_.fault_plan);
  }
}

void FabricSim::apply_fault_transitions(std::uint64_t t) {
  for (const faults::FaultTransition& tr : injector_->tick(t)) {
    const faults::FaultEvent& e = tr.event;
    if (tr.begin) {
      ++faults_injected_;
      recovery_.on_fault(t, fab_fault_key(e), backlog());
    } else {
      ++faults_repaired_;
      recovery_.on_repair(t, fab_fault_key(e));
    }
    if (e.kind == faults::FaultKind::kPlaneFailure) {
      spine_down_[static_cast<std::size_t>(e.a)] = tr.begin ? 1 : 0;
      health_.report("spine/" + std::to_string(e.a),
                     tr.begin ? mgmt::Status::kFailed : mgmt::Status::kOk, t,
                     tr.begin ? "spine down" : "spine restored");
      if (adaptive_) {
        if (tr.begin)
          routes_.fail(e.a);
        else
          routes_.revive(e.a, t);  // quarantined until the hold-down ends
        resteer_dead_uplinks();
      }
      update_admission_capacity();
    } else {  // kAdapterStall
      host_stalled_[static_cast<std::size_t>(e.a)] = tr.begin ? 1 : 0;
      health_.report("host/" + std::to_string(e.a),
                     tr.begin ? mgmt::Status::kDegraded : mgmt::Status::kOk,
                     t, tr.begin ? "adapter stalled" : "resumed");
    }
  }
}

std::uint64_t FabricSim::backlog() const {
  std::uint64_t total = 0;
  for (const auto& q : host_queue_) total += q.size();
  for (const auto& q : host_out_) total += q.size();
  for (const auto& node : switches_) {
    for (const int occ : node.input_occupancy)
      total += static_cast<std::uint64_t>(occ);
    for (const auto& q : node.out_data) total += q.size();
  }
  // Resequencer-parked cells are queued work, not deliveries.
  for (const auto& park : parked_) total += park.size();
  return total;
}

int FabricSim::route(int sw_id, int dst) const {
  const int port =
      topo_.switches[static_cast<std::size_t>(sw_id)]
          .route[static_cast<std::size_t>(dst)];
  // Fault-aware uplink spread replaces the static d-mod-k spine choice
  // (down-ports are unique paths either way).
  if (adaptive_ && is_leaf(sw_id) && port >= m_)
    return m_ + routes_.route(dst);
  return port;
}

void FabricSim::deliver_now(const FabricCell& cell, std::uint64_t t,
                            bool measuring) {
  reorder_.deliver(cell.src, cell.dst, cell.seq);
  monitor_.delivered(static_cast<std::uint64_t>(cell.src) *
                             static_cast<std::uint64_t>(hosts_) +
                         static_cast<std::uint64_t>(cell.dst),
                     cell.seq);
  telem_.finish_cell(cell.trace, static_cast<double>(t), measuring);
  ++total_delivered_;
  if (measuring) {
    delay_hist_.add(static_cast<double>(t - cell.inject_slot));
    meter_.add_delivery();
  }
}

void FabricSim::deliver_or_park(const FabricCell& cell, std::uint64_t t,
                                bool measuring) {
  auto& park = parked_[static_cast<std::size_t>(cell.dst)];
  std::uint64_t& next = expected_[static_cast<std::size_t>(cell.dst)]
                                 [static_cast<std::size_t>(cell.src)];
  if (cell.seq != next) {
    // Early arrival via a detour: park until the gap closes.
    ++reroute_ooo_;
    park.emplace(std::make_pair(cell.src, cell.seq), cell);
    max_park_depth_ =
        std::max(max_park_depth_, static_cast<std::uint64_t>(park.size()));
    return;
  }
  deliver_now(cell, t, measuring);
  ++next;
  for (auto it = park.find({cell.src, next}); it != park.end();
       it = park.find({cell.src, next})) {
    deliver_now(it->second, t, measuring);
    park.erase(it);
    ++next;
  }
}

void FabricSim::resteer_dead_uplinks() {
  for (int sp = 0; sp < m_; ++sp) {
    if (routes_.usable(sp)) continue;
    const int dead = m_ + sp;
    for (int lf = 0; lf < radix_; ++lf) {
      SwitchNode& leaf = switches_[static_cast<std::size_t>(lf)];
      for (int in = 0; in < radix_; ++in) {
        auto& fifo = leaf.voq[static_cast<std::size_t>(in)]
                             [static_cast<std::size_t>(dead)];
        if (fifo.empty()) continue;
        std::deque<FabricCell> keep;
        while (!fifo.empty()) {
          const FabricCell cell = fifo.front();
          fifo.pop_front();
          const int out = route(lf, cell.dst);
          if (out == dead) {
            keep.push_back(cell);  // no survivor: wait out the outage
            continue;
          }
          // Same input buffer, new VOQ: occupancy and the credit ledger
          // are untouched, only the scheduler's demand moves.
          leaf.sched->cancel(in, dead);
          leaf.voq[static_cast<std::size_t>(in)]
                  [static_cast<std::size_t>(out)]
              .push_back(cell);
          leaf.sched->request(in, out);
          ++resteered_;
        }
        fifo.swap(keep);
      }
    }
  }
}

int FabricSim::live_spines() const {
  if (adaptive_) return routes_.usable_count();
  int down = 0;
  for (const std::uint8_t d : spine_down_) down += d;
  return m_ - down;
}

void FabricSim::update_admission_capacity() {
  if (!cfg_.admission.enabled) return;
  // The health registry is the management-plane authority on terminal
  // capacity; only fault transitions call this, so the lookups are cold.
  int live = 0;
  for (int sp = 0; sp < m_; ++sp)
    if (health_.status("spine/" + std::to_string(sp)) == mgmt::Status::kOk)
      ++live;
  admission_.set_capacity(live, m_);
}

void FabricSim::step(std::uint64_t t, bool measuring, bool inject_traffic) {
  // 0. Scheduled faults begin / get repaired at the slot boundary.
  if (injector_) {
    OSMOSIS_PROF_SCOPE("fabric.faults");
    apply_fault_transitions(t);
  }
  // Hold-down expiry re-homes routes onto re-admitted spines; anything
  // still queued toward an out-of-service uplink gets a fresh chance.
  if (adaptive_ && routes_.tick(t)) resteer_dead_uplinks();

  // 1. Hosts generate traffic, gated by degraded-mode admission.
  if (inject_traffic) {
    OSMOSIS_PROF_SCOPE("fabric.ingest");
    if (cfg_.admission.enabled) admission_.begin_slot();
    for (int h = 0; h < hosts_; ++h) {
      sim::Arrival a;
      if (!traffic_->sample(h, a)) continue;
      ++generated_;
      // Shed BEFORE the cell takes a sequence number: per-flow sequence
      // space stays dense, so exactly-once applies to admitted cells and
      // shed cells are accounted separately (never silently dropped).
      if (cfg_.admission.enabled && !admission_.admit(h)) {
        ++shed_;
        monitor_.shed();
        continue;
      }
      const std::size_t flow = static_cast<std::size_t>(h) *
                                   static_cast<std::size_t>(hosts_) +
                               static_cast<std::size_t>(a.dst);
      FabricCell cell{h, a.dst, flow_seq_[flow]++, t,
                      telem_.begin_cell(h, a.dst, static_cast<double>(t))};
      ++offered_;
      monitor_.offered(static_cast<std::uint64_t>(flow));
      host_queue_[static_cast<std::size_t>(h)].push_back(cell);
      max_host_backlog_ =
          std::max(max_host_backlog_,
                   static_cast<std::uint64_t>(
                       host_queue_[static_cast<std::size_t>(h)].size()));
    }
  }

  // 2. Credits come home.
  {
  OSMOSIS_PROF_SCOPE("fabric.credits");
  for (int h = 0; h < hosts_; ++h) {
    auto& q = host_credit_in_[static_cast<std::size_t>(h)];
    while (!q.empty() && q.front() <= t) {
      q.pop_front();
      ++host_credits_[static_cast<std::size_t>(h)];
    }
  }
  for (auto& node : switches_) {
    for (int p = 0; p < radix_; ++p) {
      auto& q = node.credit_in[static_cast<std::size_t>(p)];
      while (!q.empty() && q.front() <= t) {
        q.pop_front();
        ++node.out_credits[static_cast<std::size_t>(p)];
      }
    }
  }
  }

  // Helper: a cell lands on a switch input port.
  auto accept_cell = [&](int sw_id, int in_port, const FabricCell& cell) {
    SwitchNode& node = switches_[static_cast<std::size_t>(sw_id)];
    const int out = route(sw_id, cell.dst);
    node.voq[static_cast<std::size_t>(in_port)][static_cast<std::size_t>(out)]
        .push_back(cell);
    int& occ = node.input_occupancy[static_cast<std::size_t>(in_port)];
    ++occ;
    node.max_input_occ = std::max(node.max_input_occ, occ);
    if (occ > cfg_.buffer_cells) ++overflows_;  // must never happen
    node.sched->request(in_port, out);
    // First switch reached = the request stage of the lifecycle.
    telem_.mark_first(cell.trace, telemetry::Stage::kRequest,
                      static_cast<double>(t));
  };

  // 3a. Host-to-leaf cable arrivals.
  {
  OSMOSIS_PROF_SCOPE("fabric.cables");
  for (int h = 0; h < hosts_; ++h) {
    auto& q = host_out_[static_cast<std::size_t>(h)];
    while (!q.empty() && q.front().slot <= t) {
      const FabricCell cell = q.front().cell;
      q.pop_front();
      const topo::HostAttach& at = topo_.inject[static_cast<std::size_t>(h)];
      accept_cell(at.sw, at.port, cell);
    }
  }

  // 3b. Switch output cables: either host delivery or next-stage input.
  for (int s = 0; s < static_cast<int>(switches_.size()); ++s) {
    SwitchNode& node = switches_[static_cast<std::size_t>(s)];
    const topo::SwitchSpec& spec = topo_.switches[static_cast<std::size_t>(s)];
    for (int p = 0; p < radix_; ++p) {
      auto& q = node.out_data[static_cast<std::size_t>(p)];
      while (!q.empty() && q.front().slot <= t) {
        const FabricCell cell = q.front().cell;
        q.pop_front();
        const topo::Peer& peer = spec.out_peer[static_cast<std::size_t>(p)];
        if (peer.kind == topo::PeerKind::kHost) {
          // Delivery, through the egress resequencer when adaptive
          // re-steering may have reshuffled the flow.
          if (adaptive_)
            deliver_or_park(cell, t, measuring);
          else
            deliver_now(cell, t, measuring);
        } else {
          accept_cell(peer.id, peer.port, cell);
        }
      }
    }
  }
  }

  // 4. Host injection, gated by credits into the leaf input buffer. A
  //    stalled adapter holds its queue (generation continues upstream).
  {
  OSMOSIS_PROF_SCOPE("fabric.inject");
  for (int h = 0; h < hosts_; ++h) {
    if (host_stalled_[static_cast<std::size_t>(h)]) continue;
    auto& q = host_queue_[static_cast<std::size_t>(h)];
    int& credits = host_credits_[static_cast<std::size_t>(h)];
    if (!q.empty() && credits == 0) {
      // Head-of-line cell held back by exhausted downstream credits.
      telem_.fc_hold(q.front().trace);
      ++fc_host_hold_cycles_;
    }
    if (!q.empty() && credits > 0) {
      --credits;
      host_out_[static_cast<std::size_t>(h)].push_back(
          Timed{t + static_cast<std::uint64_t>(cfg_.host_cable_slots),
                q.front()});
      q.pop_front();
    }
  }
  }

  // 5. Per-stage scheduling and crossbar transfer.
  {
  OSMOSIS_PROF_SCOPE("fabric.sched");
  for (int s = 0; s < static_cast<int>(switches_.size()); ++s) {
    SwitchNode& node = switches_[static_cast<std::size_t>(s)];
    // Legacy mode: a downed spine's scheduler and crossbar freeze — its
    // buffered cells wait out the outage and resume untouched on repair.
    // Adaptive mode instead takes the spine out of service for NEW cells
    // (the leaf uplink mask below) but keeps it scheduling so resident
    // cells drain: the management-plane quiesce model, which is what
    // makes permanent spine faults drainable at all.
    if (!is_leaf(s) && spine_down_[static_cast<std::size_t>(s - radix_)] &&
        !adaptive_)
      continue;
    // Remote-FC bookkeeping at the scheduler (§IV.B): an output with no
    // credit for the downstream input buffer is not grantable. The same
    // mask covers a leaf uplink whose spine is down (the management
    // plane tells every leaf scheduler about the outage).
    for (int p = 0; p < radix_; ++p) {
      const int credits = node.out_credits[static_cast<std::size_t>(p)];
      const bool dead_uplink =
          is_leaf(s) && p >= m_ &&
          spine_down_[static_cast<std::size_t>(p - m_)] != 0;
      if (credits == 0 || dead_uplink) {
        node.sched->block_output(p);
        ++fc_blocked_output_cycles_;
      } else {
        node.sched->unblock_output(p);
      }
    }
    const std::vector<sw::Grant> grants = node.sched->tick();
    grants_per_switch_[static_cast<std::size_t>(s)] += grants.size();
    for (const sw::Grant& g : grants) {
      auto& fifo = node.voq[static_cast<std::size_t>(g.input)]
                           [static_cast<std::size_t>(g.output)];
      OSMOSIS_REQUIRE(!fifo.empty(), "fabric grant without a queued cell");
      const FabricCell cell = fifo.front();
      fifo.pop_front();
      --node.input_occupancy[static_cast<std::size_t>(g.input)];
      // First grant = the grant stage; the last grant (each re-stamp
      // overwrites) launches the final hop = the transmit stage.
      telem_.mark_first(cell.trace, telemetry::Stage::kGrant,
                        static_cast<double>(t));
      telem_.mark(cell.trace, telemetry::Stage::kTransmit,
                  static_cast<double>(t));

      // Return a credit to whatever feeds this input port.
      const topo::Peer& upstream =
          topo_.switches[static_cast<std::size_t>(s)]
              .in_peer[static_cast<std::size_t>(g.input)];
      if (upstream.kind == topo::PeerKind::kHost) {
        host_credit_in_[static_cast<std::size_t>(upstream.id)].push_back(
            t + static_cast<std::uint64_t>(upstream.delay));
      } else {
        switches_[static_cast<std::size_t>(upstream.id)]
            .credit_in[static_cast<std::size_t>(upstream.port)]
            .push_back(t + static_cast<std::uint64_t>(upstream.delay));
      }

      // Consume a credit toward the downstream buffer and launch; the
      // egress link (host peer, out_credits == -1) carries no FC.
      const topo::Peer& downstream =
          topo_.switches[static_cast<std::size_t>(s)]
              .out_peer[static_cast<std::size_t>(g.output)];
      int& credits = node.out_credits[static_cast<std::size_t>(g.output)];
      if (credits >= 0) {
        OSMOSIS_REQUIRE(credits > 0, "grant issued to credit-less output");
        --credits;
      }
      node.out_data[static_cast<std::size_t>(g.output)].push_back(
          Timed{t + static_cast<std::uint64_t>(downstream.delay), cell});
    }
  }
  }

  // 6. Recovery bookkeeping: a repaired fault counts as recovered once
  //    the fabric-wide backlog returns to its pre-fault baseline.
  if (injector_) {
    OSMOSIS_PROF_SCOPE("fabric.recovery");
    recovery_.observe(t, backlog());
  }

  // 7. Slot-boundary invariant verification: cell conservation, the
  //    credit-conservation ledger, occupancy caps, liveness watchdog.
  check_invariants(t);
}

void FabricSim::check_invariants(std::uint64_t t) {
  OSMOSIS_PROF_SCOPE("fabric.invariants");
  // Credit-conservation ledger. Every flow-controlled input buffer in
  // the fabric (leaf inputs fed by hosts, spine inputs fed by leaf
  // uplinks, leaf inputs fed by spine down-ports) starts with
  // buffer_cells credits in its upstream holder. At any slot boundary a
  // credit is in exactly one place: the holder (host_credits_ /
  // out_credits), in flight home (host_credit_in_ / credit_in), held by
  // a cell resident in the downstream buffer (input_occupancy), or held
  // by a cell in flight toward it (host_out_ / out_data of an FC
  // output). Host-egress ports (out_credits == -1) carry no credits.
  std::uint64_t ledger = 0;
  long long min_pool = cfg_.buffer_cells;
  for (const int c : host_credits_) {
    ledger += static_cast<std::uint64_t>(c < 0 ? 0 : c);
    min_pool = std::min<long long>(min_pool, c);
  }
  for (const auto& q : host_credit_in_) ledger += q.size();
  for (const auto& q : host_out_) ledger += q.size();
  std::uint64_t input_occ_total = 0;
  for (const auto& node : switches_) {
    for (int p = 0; p < radix_; ++p) {
      const int c = node.out_credits[static_cast<std::size_t>(p)];
      if (c >= 0) {
        ledger += static_cast<std::uint64_t>(c);
        min_pool = std::min<long long>(min_pool, c);
        ledger += node.out_data[static_cast<std::size_t>(p)].size();
      }
      ledger += node.credit_in[static_cast<std::size_t>(p)].size();
    }
    for (int in = 0; in < radix_; ++in) {
      const int occ = node.input_occupancy[static_cast<std::size_t>(in)];
      input_occ_total += static_cast<std::uint64_t>(occ);
      monitor_.check_occupancy(
          t, "fabric.input_buffer", static_cast<std::uint64_t>(occ),
          static_cast<std::uint64_t>(cfg_.buffer_cells));
    }
  }
  ledger += input_occ_total;
  // Source-side conservation: every generated cell was either offered
  // into the fabric or explicitly shed by admission control.
  monitor_.check_generated(t, generated_);
  // FC pools: hosts_ host links + radix_*m_ leaf uplinks + m_*radix_
  // spine down-ports = 3 * radix_ * m_ pools of buffer_cells each.
  const std::uint64_t pool_total =
      static_cast<std::uint64_t>(cfg_.buffer_cells) * 3u *
      static_cast<std::uint64_t>(radix_) * static_cast<std::uint64_t>(m_);
  monitor_.check_credits(t, ledger, pool_total, min_pool);

  // Cell conservation + liveness. A stalled host adapter or frozen
  // spine shows up as an active fault window, which suspends the
  // deadlock watchdog for the outage.
  monitor_.end_slot(
      {t, backlog(), injector_ ? injector_->active_faults() : 0, 0});
}

void FabricSim::sample_series(std::uint64_t t) {
  prof::TimeSeriesSampler& s = telem_.series();
  if (!s.due(t)) return;
  OSMOSIS_PROF_SCOPE("fabric.telemetry");
  std::uint64_t host_backlog = 0;
  for (const auto& q : host_queue_) host_backlog += q.size();
  std::uint64_t input_occ = 0;
  for (const auto& node : switches_)
    for (const int occ : node.input_occupancy)
      input_occ += static_cast<std::uint64_t>(occ);
  // Credit occupancy: grantable downstream buffer slots, host links
  // included (host egress ports carry -1 = no FC and are skipped).
  std::uint64_t credits = 0;
  for (const int c : host_credits_) credits += static_cast<std::uint64_t>(c);
  for (const auto& node : switches_)
    for (const int c : node.out_credits)
      if (c >= 0) credits += static_cast<std::uint64_t>(c);
  std::uint64_t grants_total = 0;
  for (const std::uint64_t g : grants_per_switch_) grants_total += g;
  // Rates over the window since the previous sample; the first sample
  // of a run has no window yet and records 0.
  const std::uint64_t dslots = t - last_sample_slot_;
  const double ddeliv =
      static_cast<double>(total_delivered_ - last_sample_delivered_);
  const double dgrants =
      static_cast<double>(grants_total - last_sample_grants_);
  const double thr =
      dslots ? ddeliv / (static_cast<double>(dslots) *
                         static_cast<double>(hosts_))
             : 0.0;
  s.record(t, {static_cast<double>(backlog()),
               static_cast<double>(host_backlog),
               static_cast<double>(input_occ), static_cast<double>(credits),
               thr,
               dslots ? dgrants / static_cast<double>(dslots) : 0.0});
  last_sample_slot_ = t;
  last_sample_delivered_ = total_delivered_;
  last_sample_grants_ = grants_total;
}

bool FabricSim::advance_slot() {
  const std::uint64_t measure_end = cfg_.warmup_slots + cfg_.measure_slots;
  if (now_ < cfg_.warmup_slots) {
    step(now_, false, true);
    sample_series(now_);
    ++now_;
    return true;
  }
  if (now_ < measure_end) {
    const std::uint64_t before = total_delivered_;
    step(now_, true, true);
    if (avail_.enabled())
      avail_.record_slot(total_delivered_ - before, live_spines(), hosts_);
    sample_series(now_);
    meter_.advance_slots(1, static_cast<std::uint64_t>(hosts_));
    ++now_;
    return true;
  }
  // Post-run drain: arrivals off, keep stepping until every buffer and
  // cable is empty (exactly-once verification needs it).
  if (cfg_.drain_max_slots == 0) return false;
  if (now_ >= measure_end + cfg_.drain_max_slots) return false;
  if (backlog() == 0 && !(injector_ && injector_->pending() > 0))
    return false;
  step(now_, false, false);
  sample_series(now_);
  ++drained_slots_;
  ++now_;
  return true;
}

FabricSimResult FabricSim::run() {
  while (advance_slot()) {
  }
  return finalize();
}

FabricSimResult FabricSim::finalize() {
  FabricSimResult r;
  r.radix = radix_;
  r.hosts = hosts_;
  r.offered_load = traffic_->offered_load();
  r.throughput = meter_.utilization();
  r.delivered = delay_hist_.count();
  r.mean_delay_slots = delay_hist_.mean();
  r.p99_delay_slots = delay_hist_.p99();
  r.max_delay_slots = delay_hist_.max();
  for (int s = 0; s < static_cast<int>(switches_.size()); ++s) {
    const int occ = switches_[static_cast<std::size_t>(s)].max_input_occ;
    if (is_leaf(s))
      r.max_leaf_input_occupancy = std::max(r.max_leaf_input_occupancy, occ);
    else
      r.max_spine_input_occupancy =
          std::max(r.max_spine_input_occupancy, occ);
  }
  r.max_host_backlog = max_host_backlog_;
  r.out_of_order = reorder_.out_of_order();
  r.buffer_overflows = overflows_;
  r.offered = offered_;
  r.faults_injected = faults_injected_;
  r.faults_repaired = faults_repaired_;
  r.faults_recovered = recovery_.recovered();
  r.mean_recovery_slots = recovery_.mean_recovery_slots();
  r.max_recovery_slots = recovery_.max_recovery_slots();
  r.drained_slots = drained_slots_;
  monitor_.finish(now_, backlog());
  const auto inv = monitor_.exactly_once().report();
  r.exactly_once_in_order = inv.exactly_once_in_order();
  r.duplicates = inv.duplicates;
  r.missing = inv.missing;
  r.invariant_violations = monitor_.violations();
  r.first_violation = monitor_.first_violation();
  r.generated = generated_;
  r.shed_cells = shed_;
  r.resteered = resteered_;
  r.reroute_ooo = reroute_ooo_;
  r.max_resequencer_depth = max_park_depth_;
  r.brownout_slots = avail_.degraded_slots();

  if (telem_.enabled()) {
    auto& ctr = telem_.counters();
    for (int s = 0; s < static_cast<int>(switches_.size()); ++s) {
      const SwitchNode& node = switches_[static_cast<std::size_t>(s)];
      const std::string name =
          is_leaf(s) ? "stage.leaf." + std::to_string(s)
                     : "stage.spine." + std::to_string(s - radix_);
      ctr.add(name + ".grants",
              static_cast<double>(
                  grants_per_switch_[static_cast<std::size_t>(s)]));
      ctr.set_gauge("buffer." + name.substr(6) + ".max_occupancy",
                    node.max_input_occ);
    }
    // Per-stage roll-up of the per-switch counters.
    ctr.set_gauge("rollup.leaf.grants", ctr.subtotal("stage.leaf."));
    ctr.set_gauge("rollup.spine.grants", ctr.subtotal("stage.spine."));
    ctr.add("fc.host_hold_cycles",
            static_cast<double>(fc_host_hold_cycles_));
    ctr.add("fc.blocked_output_cycles",
            static_cast<double>(fc_blocked_output_cycles_));
    ctr.add("fabric.delivered", static_cast<double>(r.delivered));
    ctr.add("fabric.out_of_order", static_cast<double>(r.out_of_order));
    ctr.add("fabric.buffer_overflows", static_cast<double>(r.buffer_overflows));
    if (injector_) {
      ctr.add("faults.injected", static_cast<double>(r.faults_injected));
      ctr.add("faults.repaired", static_cast<double>(r.faults_repaired));
      ctr.add("faults.recovered", static_cast<double>(r.faults_recovered));
      ctr.set_gauge("faults.mean_recovery_slots", r.mean_recovery_slots);
      ctr.set_gauge("faults.drained_slots",
                    static_cast<double>(r.drained_slots));
    }
    if (adaptive_ || cfg_.admission.enabled) {
      ctr.add("degraded.shed_cells", static_cast<double>(r.shed_cells));
      ctr.add("degraded.resteered", static_cast<double>(r.resteered));
      ctr.add("degraded.reroute_ooo", static_cast<double>(r.reroute_ooo));
      ctr.set_gauge("degraded.max_resequencer_depth",
                    static_cast<double>(r.max_resequencer_depth));
    }
  }
  return r;
}

template <class Ar>
void FabricSim::io_core(Ar& a) {
  ckpt::field(a, now_);
  ckpt::field(a, host_queue_);
  ckpt::field(a, host_credits_);
  ckpt::field(a, host_credit_in_);
  ckpt::field(a, host_out_);
  ckpt::field(a, flow_seq_);
  ckpt::field(a, spine_down_);
  ckpt::field(a, host_stalled_);
  ckpt::field(a, offered_);
  ckpt::field(a, faults_injected_);
  ckpt::field(a, faults_repaired_);
  ckpt::field(a, drained_slots_);
  ckpt::field(a, grants_per_switch_);
  ckpt::field(a, fc_blocked_output_cycles_);
  ckpt::field(a, fc_host_hold_cycles_);
  ckpt::field(a, total_delivered_);
  ckpt::field(a, last_sample_slot_);
  ckpt::field(a, last_sample_delivered_);
  ckpt::field(a, last_sample_grants_);
  ckpt::field(a, generated_);
  ckpt::field(a, shed_);
  ckpt::field(a, resteered_);
  ckpt::field(a, reroute_ooo_);
  ckpt::field(a, max_park_depth_);
  if (adaptive_) {
    ckpt::field(a, routes_);
    ckpt::field(a, parked_);
    ckpt::field(a, expected_);
  }
  if (cfg_.admission.enabled) ckpt::field(a, admission_);
  if constexpr (Ar::kLoading) {
    if (host_queue_.size() != static_cast<std::size_t>(hosts_) ||
        spine_down_.size() != static_cast<std::size_t>(m_) ||
        grants_per_switch_.size() != switches_.size())
      throw ckpt::Error("fabric core state sized for a different topology");
  }
}

template <class Ar>
void FabricSim::io_stats(Ar& a) {
  ckpt::field(a, delay_hist_);
  ckpt::field(a, meter_);
  ckpt::field(a, reorder_);
  ckpt::field(a, max_host_backlog_);
  ckpt::field(a, overflows_);
  ckpt::field(a, monitor_);
  ckpt::field(a, recovery_);
  ckpt::field(a, health_);
  ckpt::field(a, avail_);
}

void FabricSim::save_state(ckpt::Writer& w) const {
  auto* self = const_cast<FabricSim*>(this);
  ckpt::write_chunk(w, "fabric.core",
                    [&](ckpt::Sink& s) { self->io_core(s); });
  ckpt::write_chunk(w, "fabric.traffic",
                    [&](ckpt::Sink& s) { traffic_->save_state(s); });
  ckpt::write_chunk(w, "fabric.switches", [&](ckpt::Sink& s) {
    std::uint64_t n = switches_.size();
    ckpt::field(s, n);
    for (auto& node : self->switches_) {
      node.sched->save_state(s);
      ckpt::field(s, node.voq);
      ckpt::field(s, node.input_occupancy);
      ckpt::field(s, node.out_credits);
      ckpt::field(s, node.out_data);
      ckpt::field(s, node.credit_in);
      ckpt::field(s, node.max_input_occ);
    }
  });
  ckpt::write_chunk(w, "fabric.stats",
                    [&](ckpt::Sink& s) { self->io_stats(s); });
  if (injector_)
    ckpt::write_chunk(w, "fabric.faults", [&](ckpt::Sink& s) {
      ckpt::field(s, *self->injector_);
    });
  ckpt::write_chunk(w, "fabric.telemetry",
                    [&](ckpt::Sink& s) { ckpt::field(s, self->telem_); });
}

void FabricSim::load_state(const ckpt::Reader& r) {
  ckpt::read_chunk(r, "fabric.core", [&](ckpt::Source& s) { io_core(s); });
  ckpt::read_chunk(r, "fabric.traffic",
                   [&](ckpt::Source& s) { traffic_->load_state(s); });
  ckpt::read_chunk(r, "fabric.switches", [&](ckpt::Source& s) {
    std::uint64_t n = 0;
    ckpt::field(s, n);
    if (n != switches_.size())
      throw ckpt::Error("fabric switch count mismatch in checkpoint");
    for (auto& node : switches_) {
      node.sched->load_state(s);
      ckpt::field(s, node.voq);
      ckpt::field(s, node.input_occupancy);
      ckpt::field(s, node.out_credits);
      ckpt::field(s, node.out_data);
      ckpt::field(s, node.credit_in);
      ckpt::field(s, node.max_input_occ);
      if (node.voq.size() != static_cast<std::size_t>(radix_) ||
          node.input_occupancy.size() != static_cast<std::size_t>(radix_))
        throw ckpt::Error("fabric switch state sized for a different radix");
    }
  });
  ckpt::read_chunk(r, "fabric.stats", [&](ckpt::Source& s) { io_stats(s); });
  if (injector_)
    ckpt::read_chunk(r, "fabric.faults",
                     [&](ckpt::Source& s) { ckpt::field(s, *injector_); });
  ckpt::read_chunk(r, "fabric.telemetry",
                   [&](ckpt::Source& s) { ckpt::field(s, telem_); });
}

telemetry::RunReport FabricSim::report() const {
  telemetry::RunReport r = telem_.make_report("FabricSim", "cycles");
  r.config["radix"] = radix_;
  r.config["hosts"] = hosts_;
  r.config["host_cable_slots"] = cfg_.host_cable_slots;
  r.config["trunk_cable_slots"] = cfg_.trunk_cable_slots;
  r.config["buffer_cells"] = cfg_.buffer_cells;
  r.config["warmup_slots"] = static_cast<double>(cfg_.warmup_slots);
  r.config["measure_slots"] = static_cast<double>(cfg_.measure_slots);
  r.config["offered_load"] = traffic_->offered_load();
  r.config["telemetry.sample_every"] = cfg_.telemetry.sample_every;
  if (!cfg_.fault_plan.empty()) {
    r.config["fault_events"] = static_cast<double>(cfg_.fault_plan.size());
    r.config["drain_max_slots"] = static_cast<double>(cfg_.drain_max_slots);
  }
  if (cfg_.adaptive_routing) {
    r.config["adaptive_routing"] = 1;
    r.config["reroute_hysteresis_slots"] =
        static_cast<double>(cfg_.reroute_hysteresis_slots);
  }
  if (cfg_.admission.enabled) {
    r.config["admission.margin_pct"] = cfg_.admission.margin_pct;
    r.config["admission.burst_cells"] = cfg_.admission.burst_cells;
  }
  r.info["scheduler"] = switches_.front().sched->name();
  r.health = health_.event_log();
  r.histograms.emplace("delay",
                       telemetry::HistogramSummary::of(delay_hist_));
  avail_.to_report(r, offered_, total_delivered_, shed_,
                   injector_ ? &recovery_.recovery_histogram() : nullptr);
  monitor_.to_report(r);
  return r;
}

FabricSimResult run_fabric_uniform(const FabricSimConfig& cfg, double load,
                                   std::uint64_t seed) {
  const int hosts = cfg.radix * (cfg.radix / 2);
  FabricSim sim(cfg, sim::make_uniform(hosts, load, seed));
  return sim.run();
}

}  // namespace osmosis::fabric
