#pragma once
// Fault-aware spine route table for the leaf/spine fabric (graceful
// degradation, DESIGN.md §13).
//
// Nominal routing is the paper's static d-mod-k spread: destination d
// homes on spine d mod m. When a spine fails, every flow homed there is
// deterministically re-spread over the surviving spines by hashing the
// destination — the same inputs always pick the same detour, so per-flow
// order survives modulo the one reshuffle the egress resequencer
// absorbs. Revival is damped by a hold-down (hysteresis): a spine that
// comes back is quarantined for `hysteresis_slots` before flows re-home,
// so a flapping spine cannot reshuffle routes on every transition. A
// re-failure during quarantine simply marks it down again.
//
// Pure bookkeeping, single-threaded, fully checkpointed via io_state.

#include <cstdint>
#include <vector>

#include "src/ckpt/archive.hpp"

namespace osmosis::fabric {

class SpineRouteTable {
 public:
  SpineRouteTable() = default;
  SpineRouteTable(int spines, std::uint64_t hysteresis_slots);

  int spines() const { return spines_; }

  /// Spine went out of service (fault begin). Cancels any quarantine.
  void fail(int spine);

  /// Spine came back (fault repair). It stays quarantined — usable for
  /// no NEW routes — until `hysteresis_slots` have passed without a
  /// re-failure.
  void revive(int spine, std::uint64_t now);

  /// Per-slot hold-down expiry. Returns true when at least one
  /// quarantined spine was re-admitted this slot (routes re-home, so the
  /// caller may want to re-steer queued cells off dead uplinks).
  bool tick(std::uint64_t now);

  /// True when the spine may carry new cells (up and not quarantined).
  bool usable(int spine) const;
  int usable_count() const { return usable_count_; }

  /// Spine for destination `dst`: the d-mod-k home spine when usable,
  /// otherwise a hash-spread over the survivors. With zero survivors the
  /// (masked) home spine is returned — cells queue losslessly until
  /// capacity returns.
  int route(int dst) const;

  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, up_);
    ckpt::field(a, quarantine_until_);
    ckpt::field(a, usable_count_);
    if constexpr (Ar::kLoading) {
      if (up_.size() != static_cast<std::size_t>(spines_))
        throw ckpt::Error("SpineRouteTable size inconsistent in checkpoint");
    }
  }

 private:
  void recount();

  int spines_ = 0;
  std::uint64_t hysteresis_slots_ = 0;
  std::vector<std::uint8_t> up_;
  // ~0 when not quarantined; otherwise the first slot the spine may be
  // used again.
  std::vector<std::uint64_t> quarantine_until_;
  int usable_count_ = 0;
};

}  // namespace osmosis::fabric
