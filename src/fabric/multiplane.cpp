#include "src/fabric/multiplane.hpp"

#include <algorithm>

#include "src/util/log.hpp"

namespace osmosis::fabric {

MultiPlaneSim::MultiPlaneSim(
    MultiPlaneConfig cfg,
    std::vector<std::unique_ptr<sim::TrafficGen>> per_plane)
    : cfg_(cfg), traffic_(std::move(per_plane)) {
  OSMOSIS_REQUIRE(cfg_.ports >= 2, "need at least two ports");
  OSMOSIS_REQUIRE(cfg_.planes >= 1, "need at least one plane");
  OSMOSIS_REQUIRE(static_cast<int>(traffic_.size()) == cfg_.planes,
                  "need one traffic generator per plane");
  for (const auto& gen : traffic_)
    OSMOSIS_REQUIRE(gen != nullptr && gen->ports() == cfg_.ports,
                    "per-plane traffic generator port mismatch");

  planes_.resize(static_cast<std::size_t>(cfg_.planes));
  for (int p = 0; p < cfg_.planes; ++p) {
    Plane& plane = planes_[static_cast<std::size_t>(p)];
    sw::SchedulerConfig sc;
    sc.kind = cfg_.scheduler;
    sc.ports = cfg_.ports;
    sc.receivers = cfg_.receivers;
    sc.iterations = cfg_.scheduler_iterations;
    sc.seed = 0x12AE + static_cast<std::uint64_t>(p);
    plane.sched = sw::make_scheduler(sc);
    plane.voqs.reserve(static_cast<std::size_t>(cfg_.ports));
    for (int in = 0; in < cfg_.ports; ++in)
      plane.voqs.emplace_back(in, cfg_.ports);
    plane.egress.resize(static_cast<std::size_t>(cfg_.ports));
  }
  flow_seq_.assign(static_cast<std::size_t>(cfg_.ports) *
                       static_cast<std::size_t>(cfg_.ports),
                   0);
  parked_.resize(static_cast<std::size_t>(cfg_.ports));
  expected_.resize(static_cast<std::size_t>(cfg_.ports));
}

void MultiPlaneSim::deliver_in_order(int dst, std::uint64_t t,
                                     bool measuring) {
  // Drain every run of consecutive sequences that has become available.
  auto& park = parked_[static_cast<std::size_t>(dst)];
  auto& expect = expected_[static_cast<std::size_t>(dst)];
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = park.begin(); it != park.end();) {
      const auto [src, seq] = it->first;
      auto& next = expect[src];  // default 0
      if (seq != next) {
        ++it;
        continue;
      }
      // Deliver.
      const Parked& parked_cell = it->second;
      post_reseq_.deliver(src, dst, seq);
      if (measuring) {
        delay_hist_.add(
            static_cast<double>(t - parked_cell.cell.arrival_slot) + 1.0);
        reseq_wait_.add(static_cast<double>(t - parked_cell.egress_slot));
        meter_.add_delivery();
      }
      ++next;
      it = park.erase(it);
      progress = true;
    }
  }
  max_park_depth_ = std::max(max_park_depth_, static_cast<int>(park.size()));
}

void MultiPlaneSim::step(std::uint64_t t, bool measuring) {
  const int n = cfg_.ports;

  // 1. Arrivals: each plane's generator feeds that plane; sequences are
  //    assigned globally per flow, so one flow's cells interleave over
  //    all planes (striping).
  for (int p = 0; p < cfg_.planes; ++p) {
    Plane& plane = planes_[static_cast<std::size_t>(p)];
    for (int in = 0; in < n; ++in) {
      sim::Arrival a;
      if (!traffic_[static_cast<std::size_t>(p)]->sample(in, a)) continue;
      const std::size_t flow = static_cast<std::size_t>(in) *
                                   static_cast<std::size_t>(n) +
                               static_cast<std::size_t>(a.dst);
      sw::Cell cell;
      cell.src = in;
      cell.dst = a.dst;
      cell.seq = flow_seq_[flow]++;
      cell.arrival_slot = t;
      plane.voqs[static_cast<std::size_t>(in)].push(cell);
      plane.sched->request(in, a.dst);
    }
  }

  // 2. Each plane arbitrates and transfers independently.
  for (auto& plane : planes_) {
    for (const sw::Grant& g : plane.sched->tick()) {
      sw::Cell cell =
          plane.voqs[static_cast<std::size_t>(g.input)].pop(g.output);
      plane.egress[static_cast<std::size_t>(g.output)].push_back(cell);
    }
  }

  // 3. Plane egress lines feed the resequencers (one cell per plane per
  //    slot — the P physical lanes of the port).
  for (auto& plane : planes_) {
    for (int out = 0; out < n; ++out) {
      auto& q = plane.egress[static_cast<std::size_t>(out)];
      if (q.empty()) continue;
      const sw::Cell cell = q.front();
      q.pop_front();
      auto& expect = expected_[static_cast<std::size_t>(out)];
      if (cell.seq != expect[cell.src]) ++cross_plane_ooo_;
      parked_[static_cast<std::size_t>(out)].emplace(
          std::make_pair(cell.src, cell.seq), Parked{cell, t});
    }
  }
  for (int out = 0; out < n; ++out) deliver_in_order(out, t, measuring);
}

MultiPlaneResult MultiPlaneSim::run() {
  for (std::uint64_t t = 0; t < cfg_.warmup_slots; ++t) step(t, false);
  for (std::uint64_t t = cfg_.warmup_slots;
       t < cfg_.warmup_slots + cfg_.measure_slots; ++t) {
    step(t, true);
    meter_.advance_slots(1, static_cast<std::uint64_t>(cfg_.ports) *
                                static_cast<std::uint64_t>(cfg_.planes));
  }
  MultiPlaneResult r;
  r.ports = cfg_.ports;
  r.planes = cfg_.planes;
  r.offered_load_per_plane = traffic_.front()->offered_load();
  r.throughput_per_plane = meter_.utilization();
  r.delivered = delay_hist_.count();
  r.mean_delay_slots = delay_hist_.mean();
  r.p99_delay_slots = delay_hist_.p99();
  r.mean_resequencing_wait = reseq_wait_.mean();
  r.max_resequencer_depth = max_park_depth_;
  r.cross_plane_ooo = cross_plane_ooo_;
  r.post_resequencer_ooo = post_reseq_.out_of_order();
  return r;
}

MultiPlaneResult run_multiplane_uniform(const MultiPlaneConfig& cfg,
                                        double load_per_plane,
                                        std::uint64_t seed) {
  std::vector<std::unique_ptr<sim::TrafficGen>> gens;
  gens.reserve(static_cast<std::size_t>(cfg.planes));
  for (int p = 0; p < cfg.planes; ++p)
    gens.push_back(sim::make_uniform(cfg.ports, load_per_plane,
                                     seed + static_cast<std::uint64_t>(p)));
  MultiPlaneSim sim(cfg, std::move(gens));
  return sim.run();
}

}  // namespace osmosis::fabric
