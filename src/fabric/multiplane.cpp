#include "src/fabric/multiplane.hpp"

#include <algorithm>
#include <sstream>
#include <string>

#include "src/prof/profiler.hpp"
#include "src/util/log.hpp"

namespace osmosis::fabric {

namespace {

std::string mp_fault_key(const faults::FaultEvent& e) {
  std::ostringstream oss;
  oss << faults::to_string(e.kind) << '/' << e.a << '@' << e.at_slot;
  return oss.str();
}

}  // namespace

MultiPlaneSim::MultiPlaneSim(
    MultiPlaneConfig cfg,
    std::vector<std::unique_ptr<sim::TrafficGen>> per_plane)
    : cfg_(cfg), traffic_(std::move(per_plane)) {
  OSMOSIS_REQUIRE(cfg_.ports >= 2, "need at least two ports");
  OSMOSIS_REQUIRE(cfg_.planes >= 1, "need at least one plane");
  OSMOSIS_REQUIRE(static_cast<int>(traffic_.size()) == cfg_.planes,
                  "need one traffic generator per plane");
  for (const auto& gen : traffic_)
    OSMOSIS_REQUIRE(gen != nullptr && gen->ports() == cfg_.ports,
                    "per-plane traffic generator port mismatch");

  {
    chaos::MonitorConfig mc = cfg_.monitor;
    mc.allow_stranded =
        mc.allow_stranded || cfg_.fault_plan.has_permanent_fault();
    mc.expect_drain = cfg_.drain_max_slots > 0;
    monitor_.configure(mc);
  }

  planes_.resize(static_cast<std::size_t>(cfg_.planes));
  for (int p = 0; p < cfg_.planes; ++p) {
    Plane& plane = planes_[static_cast<std::size_t>(p)];
    sw::SchedulerConfig sc;
    sc.kind = cfg_.scheduler;
    sc.ports = cfg_.ports;
    sc.receivers = cfg_.receivers;
    sc.iterations = cfg_.scheduler_iterations;
    sc.seed = 0x12AE + static_cast<std::uint64_t>(p);
    plane.sched = sw::make_scheduler(sc);
    plane.voqs.reserve(static_cast<std::size_t>(cfg_.ports));
    for (int in = 0; in < cfg_.ports; ++in)
      plane.voqs.emplace_back(in, cfg_.ports);
    plane.egress.resize(static_cast<std::size_t>(cfg_.ports));
  }
  flow_seq_.assign(static_cast<std::size_t>(cfg_.ports) *
                       static_cast<std::size_t>(cfg_.ports),
                   0);
  parked_.resize(static_cast<std::size_t>(cfg_.ports));
  expected_.resize(static_cast<std::size_t>(cfg_.ports));

  // ---- runtime fault plan ----------------------------------------------
  plane_down_.assign(static_cast<std::size_t>(cfg_.planes), 0);
  for (int p = 0; p < cfg_.planes; ++p)
    health_.declare("plane/" + std::to_string(p));
  if (!cfg_.fault_plan.empty()) {
    for (const faults::FaultEvent& e : cfg_.fault_plan.events()) {
      OSMOSIS_REQUIRE(e.kind == faults::FaultKind::kPlaneFailure,
                      "multi-plane fault plan accepts only kPlaneFailure "
                      "entries");
      OSMOSIS_REQUIRE(e.a >= 0 && e.a < cfg_.planes,
                      "fault plan: plane " << e.a << " out of range");
    }
    injector_.emplace(cfg_.fault_plan);
  }
}

int MultiPlaneSim::next_live_plane(int from) const {
  for (int k = 1; k <= cfg_.planes; ++k) {
    const int p = (from + k) % cfg_.planes;
    if (!plane_down_[static_cast<std::size_t>(p)]) return p;
  }
  OSMOSIS_REQUIRE(false, "every plane is down: nothing to re-steer onto");
  return -1;
}

void MultiPlaneSim::apply_fault_transitions(std::uint64_t t) {
  for (const faults::FaultTransition& tr : injector_->tick(t)) {
    const faults::FaultEvent& e = tr.event;
    if (tr.begin) {
      ++faults_injected_;
      recovery_.on_fault(t, mp_fault_key(e), backlog());
    } else {
      ++faults_repaired_;
      recovery_.on_repair(t, mp_fault_key(e));
    }
    plane_down_[static_cast<std::size_t>(e.a)] = tr.begin ? 1 : 0;
    health_.report("plane/" + std::to_string(e.a),
                   tr.begin ? mgmt::Status::kFailed : mgmt::Status::kOk, t,
                   tr.begin ? "plane down" : "plane restored");
    if (!tr.begin) continue;
    // Re-steer: the VOQs live in the ingress adapters, not the plane, so
    // their cells survive the plane loss. Move them (FIFO per VOQ) to
    // the next live plane and re-file the requests there; the egress
    // resequencer absorbs the resulting cross-plane reordering. The
    // plane's egress buffers sit in the egress adapters and keep
    // draining.
    Plane& dead = planes_[static_cast<std::size_t>(e.a)];
    const int target = next_live_plane(e.a);
    Plane& live = planes_[static_cast<std::size_t>(target)];
    for (int in = 0; in < cfg_.ports; ++in) {
      for (int dst = 0; dst < cfg_.ports; ++dst) {
        while (dead.voqs[static_cast<std::size_t>(in)].occupancy(dst) > 0) {
          const sw::Cell cell =
              dead.voqs[static_cast<std::size_t>(in)].pop(dst);
          live.voqs[static_cast<std::size_t>(in)].push(cell);
          live.sched->request(in, dst);
          ++resteered_;
        }
      }
    }
    // The failed plane's scheduler card is replaced along with the
    // plane: rebuild it so stale demand for the re-steered cells can't
    // produce phantom grants after a revival.
    sw::SchedulerConfig sc;
    sc.kind = cfg_.scheduler;
    sc.ports = cfg_.ports;
    sc.receivers = cfg_.receivers;
    sc.iterations = cfg_.scheduler_iterations;
    sc.seed = 0x12AE + static_cast<std::uint64_t>(e.a);
    dead.sched = sw::make_scheduler(sc);
  }
}

std::uint64_t MultiPlaneSim::backlog() const {
  std::uint64_t total = 0;
  for (const auto& plane : planes_) {
    for (const auto& v : plane.voqs)
      total += static_cast<std::uint64_t>(v.total_occupancy());
    for (const auto& q : plane.egress) total += q.size();
  }
  for (const auto& park : parked_) total += park.size();
  return total;
}

void MultiPlaneSim::deliver_in_order(int dst, std::uint64_t t,
                                     bool measuring) {
  // Drain every run of consecutive sequences that has become available.
  auto& park = parked_[static_cast<std::size_t>(dst)];
  auto& expect = expected_[static_cast<std::size_t>(dst)];
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = park.begin(); it != park.end();) {
      const auto [src, seq] = it->first;
      auto& next = expect[src];  // default 0
      if (seq != next) {
        ++it;
        continue;
      }
      // Deliver.
      const Parked& parked_cell = it->second;
      post_reseq_.deliver(src, dst, seq);
      monitor_.delivered(static_cast<std::uint64_t>(src) *
                                    static_cast<std::uint64_t>(cfg_.ports) +
                                static_cast<std::uint64_t>(dst),
                            seq);
      if (measuring) {
        delay_hist_.add(
            static_cast<double>(t - parked_cell.cell.arrival_slot) + 1.0);
        reseq_wait_.add(static_cast<double>(t - parked_cell.egress_slot));
        meter_.add_delivery();
      }
      ++next;
      it = park.erase(it);
      progress = true;
    }
  }
  max_park_depth_ = std::max(max_park_depth_, static_cast<int>(park.size()));
}

void MultiPlaneSim::step(std::uint64_t t, bool measuring,
                         bool inject_traffic) {
  const int n = cfg_.ports;

  // 0. Scheduled faults begin / get repaired at the slot boundary.
  if (injector_) {
    OSMOSIS_PROF_SCOPE("multiplane.faults");
    apply_fault_transitions(t);
  }

  // 1. Arrivals: each plane's generator feeds that plane; sequences are
  //    assigned globally per flow, so one flow's cells interleave over
  //    all planes (striping). Arrivals for a dead plane are re-steered
  //    to the next live one by the ingress adapter.
  if (inject_traffic) {
    OSMOSIS_PROF_SCOPE("multiplane.ingest");
    for (int p = 0; p < cfg_.planes; ++p) {
      const int lane = plane_down_[static_cast<std::size_t>(p)]
                           ? next_live_plane(p)
                           : p;
      Plane& plane = planes_[static_cast<std::size_t>(lane)];
      for (int in = 0; in < n; ++in) {
        sim::Arrival a;
        if (!traffic_[static_cast<std::size_t>(p)]->sample(in, a)) continue;
        const std::size_t flow = static_cast<std::size_t>(in) *
                                     static_cast<std::size_t>(n) +
                                 static_cast<std::size_t>(a.dst);
        sw::Cell cell;
        cell.src = in;
        cell.dst = a.dst;
        cell.seq = flow_seq_[flow]++;
        cell.arrival_slot = t;
        ++offered_;
        monitor_.offered(static_cast<std::uint64_t>(flow));
        plane.voqs[static_cast<std::size_t>(in)].push(cell);
        plane.sched->request(in, a.dst);
      }
    }
  }

  // 2. Each live plane arbitrates and transfers independently; a dead
  //    plane's scheduler and crossbar are frozen.
  {
  OSMOSIS_PROF_SCOPE("multiplane.sched");
  for (int p = 0; p < cfg_.planes; ++p) {
    if (plane_down_[static_cast<std::size_t>(p)]) continue;
    Plane& plane = planes_[static_cast<std::size_t>(p)];
    for (const sw::Grant& g : plane.sched->tick()) {
      sw::Cell cell =
          plane.voqs[static_cast<std::size_t>(g.input)].pop(g.output);
      plane.egress[static_cast<std::size_t>(g.output)].push_back(cell);
    }
  }
  }

  // 3. Plane egress lines feed the resequencers (one cell per plane per
  //    slot — the P physical lanes of the port).
  {
  OSMOSIS_PROF_SCOPE("multiplane.egress");
  for (auto& plane : planes_) {
    for (int out = 0; out < n; ++out) {
      auto& q = plane.egress[static_cast<std::size_t>(out)];
      if (q.empty()) continue;
      const sw::Cell cell = q.front();
      q.pop_front();
      auto& expect = expected_[static_cast<std::size_t>(out)];
      if (cell.seq != expect[cell.src]) ++cross_plane_ooo_;
      parked_[static_cast<std::size_t>(out)].emplace(
          std::make_pair(cell.src, cell.seq), Parked{cell, t});
    }
  }
  for (int out = 0; out < n; ++out) deliver_in_order(out, t, measuring);
  }

  // 4. Recovery bookkeeping: a repaired fault counts as recovered once
  //    the port-wide backlog returns to its pre-fault baseline.
  if (injector_) {
    OSMOSIS_PROF_SCOPE("multiplane.recovery");
    recovery_.observe(t, backlog());
  }

  // 5. Slot-boundary invariant verification. A frozen plane keeps its
  //    cells parked across the outage; the open fault window suspends
  //    the deadlock watchdog until the repair lands.
  monitor_.end_slot(
      {t, backlog(), injector_ ? injector_->active_faults() : 0, 0});
}

bool MultiPlaneSim::advance_slot() {
  const std::uint64_t measure_end = cfg_.warmup_slots + cfg_.measure_slots;
  if (now_ < cfg_.warmup_slots) {
    step(now_, false, true);
    ++now_;
    return true;
  }
  if (now_ < measure_end) {
    step(now_, true, true);
    meter_.advance_slots(1, static_cast<std::uint64_t>(cfg_.ports) *
                                static_cast<std::uint64_t>(cfg_.planes));
    ++now_;
    return true;
  }
  // Post-run drain: arrivals off, keep stepping until the planes and
  // resequencers are empty (exactly-once verification needs it).
  if (cfg_.drain_max_slots == 0) return false;
  if (now_ >= measure_end + cfg_.drain_max_slots) return false;
  if (backlog() == 0 && !(injector_ && injector_->pending() > 0))
    return false;
  step(now_, false, false);
  ++drained_slots_;
  ++now_;
  return true;
}

MultiPlaneResult MultiPlaneSim::run() {
  while (advance_slot()) {
  }
  return finalize();
}

MultiPlaneResult MultiPlaneSim::finalize() {
  MultiPlaneResult r;
  r.ports = cfg_.ports;
  r.planes = cfg_.planes;
  r.offered_load_per_plane = traffic_.front()->offered_load();
  r.throughput_per_plane = meter_.utilization();
  r.delivered = delay_hist_.count();
  r.mean_delay_slots = delay_hist_.mean();
  r.p99_delay_slots = delay_hist_.p99();
  r.mean_resequencing_wait = reseq_wait_.mean();
  r.max_resequencer_depth = max_park_depth_;
  r.cross_plane_ooo = cross_plane_ooo_;
  r.post_resequencer_ooo = post_reseq_.out_of_order();
  r.offered = offered_;
  r.resteered = resteered_;
  r.faults_injected = faults_injected_;
  r.faults_repaired = faults_repaired_;
  r.faults_recovered = recovery_.recovered();
  r.mean_recovery_slots = recovery_.mean_recovery_slots();
  r.max_recovery_slots = recovery_.max_recovery_slots();
  r.drained_slots = drained_slots_;
  monitor_.finish(now_, backlog());
  const auto inv = monitor_.exactly_once().report();
  r.exactly_once_in_order = inv.exactly_once_in_order();
  r.duplicates = inv.duplicates;
  r.missing = inv.missing;
  r.invariant_violations = monitor_.violations();
  r.first_violation = monitor_.first_violation();
  return r;
}

template <class Ar>
void MultiPlaneSim::io_core(Ar& a) {
  ckpt::field(a, now_);
  ckpt::field(a, flow_seq_);
  ckpt::field(a, parked_);
  ckpt::field(a, expected_);
  ckpt::field(a, plane_down_);
  ckpt::field(a, offered_);
  ckpt::field(a, resteered_);
  ckpt::field(a, faults_injected_);
  ckpt::field(a, faults_repaired_);
  ckpt::field(a, drained_slots_);
  if constexpr (Ar::kLoading) {
    if (parked_.size() != static_cast<std::size_t>(cfg_.ports) ||
        plane_down_.size() != static_cast<std::size_t>(cfg_.planes))
      throw ckpt::Error(
          "multi-plane core state sized for a different topology");
  }
}

template <class Ar>
void MultiPlaneSim::io_stats(Ar& a) {
  ckpt::field(a, delay_hist_);
  ckpt::field(a, reseq_wait_);
  ckpt::field(a, meter_);
  ckpt::field(a, post_reseq_);
  ckpt::field(a, cross_plane_ooo_);
  ckpt::field(a, max_park_depth_);
  ckpt::field(a, monitor_);
  ckpt::field(a, recovery_);
  ckpt::field(a, health_);
}

void MultiPlaneSim::save_state(ckpt::Writer& w) const {
  auto* self = const_cast<MultiPlaneSim*>(this);
  ckpt::write_chunk(w, "multiplane.core",
                    [&](ckpt::Sink& s) { self->io_core(s); });
  ckpt::write_chunk(w, "multiplane.traffic", [&](ckpt::Sink& s) {
    std::uint64_t n = traffic_.size();
    ckpt::field(s, n);
    for (const auto& gen : traffic_) gen->save_state(s);
  });
  ckpt::write_chunk(w, "multiplane.planes", [&](ckpt::Sink& s) {
    std::uint64_t n = planes_.size();
    ckpt::field(s, n);
    for (auto& plane : self->planes_) {
      plane.sched->save_state(s);
      std::uint64_t nv = plane.voqs.size();
      ckpt::field(s, nv);
      for (auto& v : plane.voqs) ckpt::field(s, v);
      ckpt::field(s, plane.egress);
    }
  });
  ckpt::write_chunk(w, "multiplane.stats",
                    [&](ckpt::Sink& s) { self->io_stats(s); });
  if (injector_)
    ckpt::write_chunk(w, "multiplane.faults", [&](ckpt::Sink& s) {
      ckpt::field(s, *self->injector_);
    });
}

void MultiPlaneSim::load_state(const ckpt::Reader& r) {
  ckpt::read_chunk(r, "multiplane.core",
                   [&](ckpt::Source& s) { io_core(s); });
  ckpt::read_chunk(r, "multiplane.traffic", [&](ckpt::Source& s) {
    std::uint64_t n = 0;
    ckpt::field(s, n);
    if (n != traffic_.size())
      throw ckpt::Error("plane traffic count mismatch in checkpoint");
    for (auto& gen : traffic_) gen->load_state(s);
  });
  ckpt::read_chunk(r, "multiplane.planes", [&](ckpt::Source& s) {
    std::uint64_t n = 0;
    ckpt::field(s, n);
    if (n != planes_.size())
      throw ckpt::Error("plane count mismatch in checkpoint");
    for (auto& plane : planes_) {
      plane.sched->load_state(s);
      std::uint64_t nv = 0;
      ckpt::field(s, nv);
      if (nv != plane.voqs.size())
        throw ckpt::Error("plane VOQ bank count mismatch in checkpoint");
      for (auto& v : plane.voqs) ckpt::field(s, v);
      ckpt::field(s, plane.egress);
    }
  });
  ckpt::read_chunk(r, "multiplane.stats",
                   [&](ckpt::Source& s) { io_stats(s); });
  if (injector_)
    ckpt::read_chunk(r, "multiplane.faults",
                     [&](ckpt::Source& s) { ckpt::field(s, *injector_); });
}

MultiPlaneResult run_multiplane_uniform(const MultiPlaneConfig& cfg,
                                        double load_per_plane,
                                        std::uint64_t seed) {
  std::vector<std::unique_ptr<sim::TrafficGen>> gens;
  gens.reserve(static_cast<std::size_t>(cfg.planes));
  for (int p = 0; p < cfg.planes; ++p)
    gens.push_back(sim::make_uniform(cfg.ports, load_per_plane,
                                     seed + static_cast<std::uint64_t>(p)));
  MultiPlaneSim sim(cfg, std::move(gens));
  return sim.run();
}

}  // namespace osmosis::fabric
