#pragma once
// Cell-level simulation of a multistage (two-level fat tree / leaf-spine)
// fabric built from input-buffered switches with independent central
// schedulers per stage and the paper's input-only buffer placement
// (§IV.A option 3, §IV.B flow control).
//
// Flow control is credit-based with the credits managed at the granting
// scheduler, exactly the paper's scheme in effect: a scheduler "only
// issues transmission grants for links/buffers that are available and
// performs the necessary bookkeeping". Credits return to the upstream
// stage when a cell leaves the downstream input buffer, delayed by the
// cable flight time — giving the deterministic FC round trip the paper
// uses for buffer sizing. The simulator asserts losslessness (no input
// buffer ever exceeds its capacity) and in-order delivery per flow.
//
// Topology: `radix`-port switches; k = radix leaves each with k/2 host
// ports and k/2 uplinks; k/2 spines; N = k²/2 hosts (64-port switches
// give the paper's 2048-port fabric; tests run scaled-down radices).
// Routing is d-mod-k (spine = dst mod k/2): static per destination, so
// per-flow order is preserved.

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/chaos/monitor.hpp"
#include "src/ckpt/ckpt.hpp"
#include "src/fabric/route_table.hpp"
#include "src/faults/fault_injector.hpp"
#include "src/faults/fault_plan.hpp"
#include "src/faults/invariant.hpp"
#include "src/host/admission.hpp"
#include "src/mgmt/health.hpp"
#include "src/sim/stats.hpp"
#include "src/sim/traffic.hpp"
#include "src/sw/scheduler.hpp"
#include "src/telemetry/availability.hpp"
#include "src/telemetry/telemetry.hpp"
#include "src/topo/topology.hpp"

namespace osmosis::fabric {

struct FabricSimConfig {
  int radix = 8;                   // switch port count (even)
  int host_cable_slots = 1;        // host <-> leaf flight time, cell cycles
  int trunk_cable_slots = 4;       // leaf <-> spine flight time
  int buffer_cells = 16;           // input-buffer capacity per switch port
  // Stage scheduler. Must be an immediate-issue kind (kIslip, kPim,
  // kTdm): grants must be issued in the same cycle they are matched so
  // the credit check at matching time still holds at issue time.
  sw::SchedulerKind scheduler = sw::SchedulerKind::kIslip;
  int scheduler_iterations = 0;    // 0 = log2(radix)
  std::uint64_t warmup_slots = 2'000;
  std::uint64_t measure_slots = 30'000;
  // Cell-lifecycle tracing / RunReport export (timestamps in cell
  // cycles). The multi-hop stage mapping: request = arrival at the leaf
  // ingress buffer, grant = first-stage grant, transmit = the grant
  // that launches the final hop. Off by default.
  telemetry::TelemetryConfig telemetry;
  // Mid-run fault schedule (src/faults/). The fabric accepts
  // kPlaneFailure (a = spine index; must be transient — d-mod-k routing
  // has no alternate path, so a permanent spine loss would strand
  // cells) and kAdapterStall (a = host index). While a spine is down
  // its scheduler freezes and every leaf masks the uplink toward it;
  // credit flow control backpressures the sources losslessly.
  faults::FaultPlan fault_plan;
  // Extra slots (arrivals off) after the measurement window so the
  // invariant checker can confirm exactly-once delivery. 0 = no drain.
  std::uint64_t drain_max_slots = 0;
  // Runtime invariant verification (chaos soak layer): cell conservation,
  // the full credit-conservation ledger, input-buffer occupancy caps, and
  // the liveness watchdog. Pure accounting, always on.
  chaos::MonitorConfig monitor;

  // ---- graceful degradation (DESIGN.md §13) ----------------------------
  // Fault-aware adaptive routing: spine failures (including permanent
  // ones) take the spine out of service instead of freezing it — flows
  // homed there re-spread deterministically over the survivors, the dead
  // spine drains its resident cells, and an egress resequencer absorbs
  // the reshuffle. Revival is damped by a hold-down so routes don't flap.
  // Off by default: the legacy freeze-and-backpressure behavior (and its
  // transient-only fault plan check) is byte-identical.
  bool adaptive_routing = false;
  // Hold-down after a spine revival before flows re-home onto it.
  std::uint64_t reroute_hysteresis_slots = 256;
  // Degraded-mode admission control at the hosts: when the health
  // registry reports spines out of service, per-source token buckets
  // shed excess arrivals fairly so backlog stays bounded. Off by default.
  host::AdmissionConfig admission;
  // Availability/SLO accounting (RunReport "availability" section).
  // Forced on whenever adaptive routing or admission control is enabled.
  telemetry::AvailabilityConfig availability;
};

struct FabricSimResult {
  int radix = 0;
  int hosts = 0;
  double offered_load = 0.0;
  double throughput = 0.0;          // delivered / slot / host
  std::uint64_t delivered = 0;
  double mean_delay_slots = 0.0;    // injection -> delivery, cell cycles
  double p99_delay_slots = 0.0;
  double max_delay_slots = 0.0;
  int max_leaf_input_occupancy = 0;   // must stay <= buffer_cells
  int max_spine_input_occupancy = 0;  // must stay <= buffer_cells
  std::uint64_t max_host_backlog = 0; // source queue (backpressure depth)
  std::uint64_t out_of_order = 0;     // must be 0
  std::uint64_t buffer_overflows = 0; // must be 0 (lossless)
  // Degraded-operation accounting (fault injection / recovery).
  std::uint64_t offered = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t faults_repaired = 0;
  std::uint64_t faults_recovered = 0;
  double mean_recovery_slots = 0.0;
  double max_recovery_slots = 0.0;
  std::uint64_t drained_slots = 0;
  bool exactly_once_in_order = false;
  std::uint64_t duplicates = 0;
  std::uint64_t missing = 0;
  std::uint64_t invariant_violations = 0;
  std::string first_violation;  // "" when clean
  // Graceful-degradation accounting (adaptive routing / admission).
  std::uint64_t generated = 0;      // offered + shed
  std::uint64_t shed_cells = 0;     // refused at the source by admission
  std::uint64_t resteered = 0;      // VOQ cells moved off a dead uplink
  std::uint64_t reroute_ooo = 0;    // pre-resequencer reorder (absorbed)
  std::uint64_t max_resequencer_depth = 0;
  std::uint64_t brownout_slots = 0; // measured slots with a spine out
};

class FabricSim {
 public:
  FabricSim(FabricSimConfig cfg, std::unique_ptr<sim::TrafficGen> traffic);

  FabricSimResult run();

  /// Incremental stepping for checkpoint/restore: advances one slot of
  /// the warmup / measurement / drain schedule; returns false when the
  /// run is complete. run() == { while (advance_slot()) {} finalize(); }.
  bool advance_slot();

  /// Assembles the result and writes the end-of-run telemetry counters.
  /// Call exactly once, after advance_slot() returns false.
  FabricSimResult finalize();

  std::uint64_t current_slot() const { return now_; }

  /// Snapshots every mutable field (schedulers, VOQs, cables, credits,
  /// stats, fault cursor) into "fabric.*" chunks. The loader must be a
  /// FabricSim built from the identical config; structural mismatches
  /// throw ckpt::Error.
  void save_state(ckpt::Writer& w) const;
  void load_state(const ckpt::Reader& r);

  int hosts() const { return hosts_; }

  telemetry::Telemetry& telemetry() { return telem_; }
  const telemetry::Telemetry& telemetry() const { return telem_; }

  /// Component health view with the injector-driven transitions.
  const mgmt::HealthRegistry& health() const { return health_; }

  /// Runtime invariant verdict (chaos soak layer).
  const chaos::InvariantMonitor& monitor() const { return monitor_; }

  /// Structured run export; stage histograms are in cell cycles and the
  /// counters carry the per-switch (leaf.<id>.* / spine.<id>.*) grant
  /// counts plus their rollup.* subtotals.
  telemetry::RunReport report() const;

  /// Raw end-to-end delay histogram (cell cycles), for exact cross-run
  /// aggregation via sim::Histogram::merge.
  const sim::Histogram& delay_histogram() const { return delay_hist_; }

 private:
  struct FabricCell {
    int src = -1;
    int dst = -1;
    std::uint64_t seq = 0;
    std::uint64_t inject_slot = 0;
    std::int32_t trace = -1;  // telemetry::CellTrace handle

    template <class Ar>
    void io_state(Ar& a) {
      ckpt::field(a, src);
      ckpt::field(a, dst);
      ckpt::field(a, seq);
      ckpt::field(a, inject_slot);
      ckpt::field(a, trace);
    }
  };
  struct Timed {
    std::uint64_t slot = 0;
    FabricCell cell;

    template <class Ar>
    void io_state(Ar& a) {
      ckpt::field(a, slot);
      ckpt::field(a, cell);
    }
  };
  struct SwitchNode {
    std::unique_ptr<sw::Scheduler> sched;
    // voq[input][output] FIFO; the input buffer is the bank of one input.
    std::vector<std::vector<std::deque<FabricCell>>> voq;
    std::vector<int> input_occupancy;
    std::vector<int> out_credits;          // -1 = host egress (no FC)
    std::vector<std::deque<Timed>> out_data;        // per output port
    std::vector<std::deque<std::uint64_t>> credit_in;  // per OUTPUT port
    int max_input_occ = 0;
  };

  // Routing: output port of switch `sw_id` toward host `dst`, read from
  // the topology's static d-mod-k table. Adaptive mode overrides the
  // uplink choice with the fault-aware route table.
  int route(int sw_id, int dst) const;
  bool is_leaf(int sw_id) const { return sw_id < radix_; }

  // ---- graceful degradation helpers (adaptive mode only) --------------
  /// Egress delivery through the resequencer: in-order cells pass
  /// straight through (and unlock parked successors), early cells park.
  void deliver_or_park(const FabricCell& cell, std::uint64_t t,
                       bool measuring);
  void deliver_now(const FabricCell& cell, std::uint64_t t, bool measuring);
  /// Moves every leaf VOQ cell queued toward an out-of-service uplink to
  /// its re-routed survivor (deterministic order: spines, leaves, inputs
  /// ascending, FIFO within a queue), cancelling the stale scheduler
  /// request per moved cell. Cells with no survivor stay parked in place.
  void resteer_dead_uplinks();
  /// Spines currently able to carry new cells.
  int live_spines() const;
  /// Pushes the health registry's spine capacity view into admission.
  void update_admission_capacity();

  void step(std::uint64_t t, bool measuring, bool inject_traffic);
  /// Records one time-series row (DESIGN.md §11) after slot `t` when the
  /// sampler is enabled and due. Purely slot-driven, so the recorded
  /// series is identical at any thread count and across checkpoints.
  void sample_series(std::uint64_t t);
  template <class Ar>
  void io_core(Ar& a);
  template <class Ar>
  void io_stats(Ar& a);
  void apply_fault_transitions(std::uint64_t t);
  std::uint64_t backlog() const;
  /// Feeds the slot-boundary invariant checks (conservation, credit
  /// ledger, occupancy caps, liveness watchdog).
  void check_invariants(std::uint64_t t);

  FabricSimConfig cfg_;
  int radix_;
  int m_;       // radix / 2: spine count = uplinks per leaf = hosts per leaf
  int hosts_;
  // Wiring, static routes, and host attach points (topo::make_fat_tree
  // with levels = 2); this class owns only the cell-moving machinery.
  topo::Topology topo_;
  std::unique_ptr<sim::TrafficGen> traffic_;
  std::vector<SwitchNode> switches_;  // leaves 0..k-1, spines k..k+m-1
  std::uint64_t now_ = 0;             // next slot advance_slot() will run

  // Host state.
  std::vector<std::deque<FabricCell>> host_queue_;
  std::vector<int> host_credits_;
  std::vector<std::deque<std::uint64_t>> host_credit_in_;
  std::vector<std::deque<Timed>> host_out_;  // host -> leaf cable
  std::vector<std::uint64_t> flow_seq_;

  // Statistics.
  sim::Histogram delay_hist_{256.0};
  sim::ThroughputMeter meter_;
  sim::ReorderDetector reorder_;
  std::uint64_t max_host_backlog_ = 0;
  std::uint64_t overflows_ = 0;

  // Telemetry.
  telemetry::Telemetry telem_;
  std::vector<std::uint64_t> grants_per_switch_;
  std::uint64_t fc_blocked_output_cycles_ = 0;
  std::uint64_t fc_host_hold_cycles_ = 0;
  // Time-series rate cursors (checkpointed with the core).
  std::uint64_t total_delivered_ = 0;
  std::uint64_t last_sample_slot_ = 0;
  std::uint64_t last_sample_delivered_ = 0;
  std::uint64_t last_sample_grants_ = 0;

  // Runtime fault injection & recovery.
  std::optional<faults::FaultInjector> injector_;
  mgmt::HealthRegistry health_;
  chaos::InvariantMonitor monitor_;
  faults::RecoveryTracker recovery_;
  std::vector<std::uint8_t> spine_down_;    // per spine
  std::vector<std::uint8_t> host_stalled_;  // per host adapter
  std::uint64_t offered_ = 0;
  std::uint64_t faults_injected_ = 0;
  std::uint64_t faults_repaired_ = 0;
  std::uint64_t drained_slots_ = 0;

  // Graceful degradation (DESIGN.md §13). The resequencer mirrors
  // MultiPlaneSim's failover scheme: parked_[dst] holds early cells
  // keyed (src, seq); expected_[dst][src] is the next in-order sequence
  // per flow. Both are allocated only in adaptive mode.
  bool adaptive_ = false;
  SpineRouteTable routes_;
  host::AdmissionControl admission_;
  telemetry::AvailabilityTracker avail_;
  std::vector<std::map<std::pair<int, std::uint64_t>, FabricCell>> parked_;
  std::vector<std::vector<std::uint64_t>> expected_;
  std::uint64_t generated_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t resteered_ = 0;
  std::uint64_t reroute_ooo_ = 0;
  std::uint64_t max_park_depth_ = 0;
};

/// Builds and runs a fabric under uniform Bernoulli host traffic.
FabricSimResult run_fabric_uniform(const FabricSimConfig& cfg, double load,
                                   std::uint64_t seed);

}  // namespace osmosis::fabric
