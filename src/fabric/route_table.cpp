#include "src/fabric/route_table.hpp"

#include "src/sim/rng.hpp"
#include "src/util/log.hpp"

namespace osmosis::fabric {

namespace {
constexpr std::uint64_t kNoQuarantine = ~0ULL;
}  // namespace

SpineRouteTable::SpineRouteTable(int spines, std::uint64_t hysteresis_slots)
    : spines_(spines),
      hysteresis_slots_(hysteresis_slots),
      up_(static_cast<std::size_t>(spines), 1),
      quarantine_until_(static_cast<std::size_t>(spines), kNoQuarantine),
      usable_count_(spines) {
  OSMOSIS_REQUIRE(spines_ >= 1, "route table needs at least one spine");
}

void SpineRouteTable::fail(int spine) {
  OSMOSIS_REQUIRE(spine >= 0 && spine < spines_, "spine out of range");
  up_[static_cast<std::size_t>(spine)] = 0;
  quarantine_until_[static_cast<std::size_t>(spine)] = kNoQuarantine;
  recount();
}

void SpineRouteTable::revive(int spine, std::uint64_t now) {
  OSMOSIS_REQUIRE(spine >= 0 && spine < spines_, "spine out of range");
  up_[static_cast<std::size_t>(spine)] = 1;
  quarantine_until_[static_cast<std::size_t>(spine)] =
      now + hysteresis_slots_;
  recount();
}

bool SpineRouteTable::tick(std::uint64_t now) {
  bool admitted = false;
  for (int s = 0; s < spines_; ++s) {
    auto& q = quarantine_until_[static_cast<std::size_t>(s)];
    if (q != kNoQuarantine && q <= now && up_[static_cast<std::size_t>(s)]) {
      q = kNoQuarantine;
      admitted = true;
    }
  }
  if (admitted) recount();
  return admitted;
}

bool SpineRouteTable::usable(int spine) const {
  OSMOSIS_REQUIRE(spine >= 0 && spine < spines_, "spine out of range");
  return up_[static_cast<std::size_t>(spine)] != 0 &&
         quarantine_until_[static_cast<std::size_t>(spine)] == kNoQuarantine;
}

int SpineRouteTable::route(int dst) const {
  const int home = dst % spines_;
  if (usable(home)) return home;
  if (usable_count_ == 0) return home;
  // Hash-spread over the survivors, in ascending spine order so the
  // choice is independent of failure arrival order.
  std::uint64_t h = static_cast<std::uint64_t>(dst);
  const std::uint64_t pick = sim::splitmix64(h) %
                             static_cast<std::uint64_t>(usable_count_);
  std::uint64_t seen = 0;
  int last = home;
  for (int s = 0; s < spines_; ++s) {
    if (!usable(s)) continue;
    if (seen == pick) return s;
    last = s;
    ++seen;
  }
  return last;  // unreachable: pick < usable_count_
}

void SpineRouteTable::recount() {
  int n = 0;
  for (int s = 0; s < spines_; ++s)
    if (usable(s)) ++n;
  usable_count_ = n;
}

}  // namespace osmosis::fabric
