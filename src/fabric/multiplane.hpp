#pragma once
// Multi-plane fabric: stripe each host port's traffic across P parallel
// single-stage switch planes. This is how the paper's port bandwidths
// work in practice — a "12x QDR" InfiniBand port is twelve lanes, and a
// 12-25 GByte/s OSMOSIS fabric port aggregates multiple 40 Gb/s optical
// planes. Each plane is internally in-order, but planes see independent
// queueing, so cells of one flow can cross each other BETWEEN planes;
// the egress resequencing buffer restores the Table 1 ordering
// guarantee, and its depth/extra delay is the price of striping, which
// this simulator measures.

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "src/chaos/monitor.hpp"
#include "src/ckpt/ckpt.hpp"
#include "src/faults/fault_injector.hpp"
#include "src/faults/fault_plan.hpp"
#include "src/faults/invariant.hpp"
#include "src/mgmt/health.hpp"
#include "src/sim/stats.hpp"
#include "src/sim/traffic.hpp"
#include "src/sw/scheduler.hpp"
#include "src/sw/voq.hpp"

namespace osmosis::fabric {

struct MultiPlaneConfig {
  int ports = 16;   // host ports (each striped over all planes)
  int planes = 4;   // parallel switch planes
  sw::SchedulerKind scheduler = sw::SchedulerKind::kFlppr;
  int receivers = 1;
  int scheduler_iterations = 0;
  // Offered load PER PLANE LINE (so aggregate per-port load = planes x
  // load cells/slot).
  std::uint64_t warmup_slots = 1'000;
  std::uint64_t measure_slots = 20'000;
  // Mid-run fault schedule (src/faults/). The multi-plane port accepts
  // kPlaneFailure entries (a = plane index; transient or permanent).
  // When a plane dies, its scheduler and crossbar freeze; the ingress
  // adapters re-steer both their parked VOQ cells and all new arrivals
  // to the next live plane, and the egress resequencer absorbs the
  // cross-plane reordering — delivery stays exactly-once, in-order.
  faults::FaultPlan fault_plan;
  // Extra slots (arrivals off) after the measurement window so the
  // invariant checker can confirm exactly-once delivery. 0 = no drain.
  std::uint64_t drain_max_slots = 0;
  // Runtime invariant verification (chaos soak layer); pure accounting.
  chaos::MonitorConfig monitor;
};

struct MultiPlaneResult {
  int ports = 0;
  int planes = 0;
  double offered_load_per_plane = 0.0;
  double throughput_per_plane = 0.0;  // delivered / slot / port / plane
  std::uint64_t delivered = 0;
  double mean_delay_slots = 0.0;      // injection -> in-order delivery
  double p99_delay_slots = 0.0;
  double mean_resequencing_wait = 0.0;  // extra slots spent in the buffer
  int max_resequencer_depth = 0;        // cells parked at one egress
  std::uint64_t cross_plane_ooo = 0;    // raw arrivals out of order
  std::uint64_t post_resequencer_ooo = 0;  // must be 0
  // Degraded-operation accounting (fault injection / recovery).
  std::uint64_t offered = 0;
  std::uint64_t resteered = 0;  // cells moved off a dead plane
  std::uint64_t faults_injected = 0;
  std::uint64_t faults_repaired = 0;
  std::uint64_t faults_recovered = 0;
  double mean_recovery_slots = 0.0;
  double max_recovery_slots = 0.0;
  std::uint64_t drained_slots = 0;
  bool exactly_once_in_order = false;
  std::uint64_t duplicates = 0;
  std::uint64_t missing = 0;
  std::uint64_t invariant_violations = 0;
  std::string first_violation;  // "" when clean
};

class MultiPlaneSim {
 public:
  /// One traffic generator per plane, each covering `ports` endpoints.
  MultiPlaneSim(MultiPlaneConfig cfg,
                std::vector<std::unique_ptr<sim::TrafficGen>> per_plane);

  MultiPlaneResult run();

  /// Incremental stepping for checkpoint/restore: advances one slot of
  /// the warmup / measurement / drain schedule; returns false when the
  /// run is complete. run() == { while (advance_slot()) {} finalize(); }.
  bool advance_slot();

  /// Assembles the result. Call once, after advance_slot() returns false.
  MultiPlaneResult finalize();

  std::uint64_t current_slot() const { return now_; }

  /// Snapshots every mutable field (plane schedulers, VOQs, egress
  /// lines, resequencers, stats, fault cursor) into "multiplane.*"
  /// chunks. The loader must be a MultiPlaneSim built from the identical
  /// config; structural mismatches throw ckpt::Error.
  void save_state(ckpt::Writer& w) const;
  void load_state(const ckpt::Reader& r);

  /// Component health view ("plane/<p>") with injector transitions.
  const mgmt::HealthRegistry& health() const { return health_; }

  /// Runtime invariant verdict (chaos soak layer).
  const chaos::InvariantMonitor& monitor() const { return monitor_; }

 private:
  struct Plane {
    std::unique_ptr<sw::Scheduler> sched;
    std::vector<sw::VoqBank> voqs;
    std::vector<std::deque<sw::Cell>> egress;
  };
  struct Parked {
    sw::Cell cell;
    std::uint64_t egress_slot = 0;  // when it left the plane

    template <class Ar>
    void io_state(Ar& a) {
      ckpt::field(a, cell);
      ckpt::field(a, egress_slot);
    }
  };

  void step(std::uint64_t t, bool measuring, bool inject_traffic);
  void deliver_in_order(int dst, std::uint64_t t, bool measuring);
  void apply_fault_transitions(std::uint64_t t);
  int next_live_plane(int from) const;
  std::uint64_t backlog() const;
  template <class Ar>
  void io_core(Ar& a);
  template <class Ar>
  void io_stats(Ar& a);

  MultiPlaneConfig cfg_;
  std::vector<std::unique_ptr<sim::TrafficGen>> traffic_;
  std::vector<Plane> planes_;
  std::uint64_t now_ = 0;  // next slot advance_slot() will run
  std::vector<std::uint64_t> flow_seq_;      // global per (src, dst)
  // Resequencers: per egress port, per flow (src), parked cells keyed by
  // sequence plus the next expected sequence.
  std::vector<std::map<std::pair<int, std::uint64_t>, Parked>> parked_;
  std::vector<std::map<int, std::uint64_t>> expected_;  // [dst][src] -> seq

  sim::Histogram delay_hist_{256.0};
  sim::MeanVar reseq_wait_;
  sim::ThroughputMeter meter_;
  sim::ReorderDetector post_reseq_;
  std::uint64_t cross_plane_ooo_ = 0;
  int max_park_depth_ = 0;

  // Runtime fault injection & recovery.
  std::optional<faults::FaultInjector> injector_;
  mgmt::HealthRegistry health_;
  chaos::InvariantMonitor monitor_;
  faults::RecoveryTracker recovery_;
  std::vector<std::uint8_t> plane_down_;
  std::uint64_t offered_ = 0;
  std::uint64_t resteered_ = 0;
  std::uint64_t faults_injected_ = 0;
  std::uint64_t faults_repaired_ = 0;
  std::uint64_t drained_slots_ = 0;
};

/// Uniform Bernoulli traffic on every plane.
MultiPlaneResult run_multiplane_uniform(const MultiPlaneConfig& cfg,
                                        double load_per_plane,
                                        std::uint64_t seed);

}  // namespace osmosis::fabric
