#pragma once
// Buffer-placement analysis around the optical crossbar — Fig. 2 and
// §IV.A. Three options for a multistage fabric built from identical
// input-queued switches:
//   1. buffers at inputs AND outputs of every stage,
//   2. buffers at outputs only,
//   3. buffers at inputs only (the paper's choice).
// Option 1 doubles the OEO conversions. Option 2 pushes the
// request/grant protocol onto the long inter-switch cable, adding its
// flight time to every scheduling decision. Option 3 hides request/grant
// inside the switch but combines each stage's output buffer with the
// next stage's input buffer, so those buffers must absorb the cable
// round trip (flow-control loop of Figs. 3-4) — they grow with RTT.

#include <string>
#include <vector>

namespace osmosis::fabric {

enum class BufferPlacement {
  kInputAndOutput = 1,
  kOutputOnly = 2,
  kInputOnly = 3,  // OSMOSIS
};

struct PlacementAnalysis {
  BufferPlacement option;
  std::string description;
  int oeo_pairs_per_stage;        // O/E+E/O pairs a cell pays per stage
  double request_grant_rtt_ns;    // control loop latency per scheduling
  int min_input_buffer_cells;     // to sustain full rate without underrun
  bool point_to_point_fc;         // simple link FC possible?
};

/// Analyzes one option for a stage whose upstream cable is
/// `cable_ns` away, with `cell_ns` cell cycles and `sched_ns` scheduler
/// pipeline delay.
PlacementAnalysis analyze_placement(BufferPlacement option, double cable_ns,
                                    double cell_ns, double sched_ns);

/// All three options side by side (the Fig. 2 bench table).
std::vector<PlacementAnalysis> compare_placements(double cable_ns,
                                                  double cell_ns,
                                                  double sched_ns);

/// Buffer cells needed to cover a flow-control loop of `rtt_ns` at one
/// cell per `cell_ns`: ceil(rtt/cell) plus a safety margin. "The FC loop
/// has a deterministic RTT, which allows straightforward buffer sizing."
int buffer_cells_for_rtt(double rtt_ns, double cell_ns, int margin = 2);

}  // namespace osmosis::fabric
