#pragma once
// Generalized L-level folded-Clos (fat-tree) cell simulator — the
// multistage machine of §VI.C at cell granularity, for any level count:
// L = 2 is the paper's three-stage OSMOSIS fabric, L = 3 the five-stage
// high-end-electronic alternative. Same input-only buffering and
// credit-based scheduler-relayed flow control as FabricSim (Figs. 3-4).
//
// The wiring, routing tables, and fault handling come from the topology
// zoo (topo::make_fat_tree): the FT' recursion, static d-mod-k up/down
// routing, degraded re-spreading around failed switches, and the
// connectivity audit all live in src/topo/ — this class only owns the
// cell-moving machinery (VOQs, per-switch central schedulers, credit
// flow control, cable-flight queues).

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "src/sim/stats.hpp"
#include "src/sim/traffic.hpp"
#include "src/sw/scheduler.hpp"
#include "src/topo/topology.hpp"

namespace osmosis::fabric {

struct ClosConfig {
  int radix = 8;   // even, >= 4
  int levels = 2;  // L: path traverses 2L-1 switch stages worst case
  int host_cable_slots = 1;
  int trunk_cable_slots = 4;  // every inter-switch link
  int buffer_cells = 16;      // input-buffer capacity per switch port
  sw::SchedulerKind scheduler = sw::SchedulerKind::kIslip;
  int scheduler_iterations = 0;
  std::uint64_t warmup_slots = 2'000;
  std::uint64_t measure_slots = 20'000;
  // Switches (by build id) permanently out of service: routing tables
  // are computed over the survivors, so every flow re-spreads around the
  // holes while the fixed per-destination digit choice keeps per-flow
  // order. Leaf switches cannot fail (their hosts would be disconnected)
  // and a set of failures that strands any host pair is rejected at
  // construction with an error naming the unreachable host. Empty =
  // byte-identical to the fault-free routing.
  std::vector<int> failed_switches;
};

struct ClosResult {
  int radix = 0;
  int levels = 0;
  int hosts = 0;
  int switches = 0;
  int path_stages = 0;  // 2L-1
  double offered_load = 0.0;
  double throughput = 0.0;
  std::uint64_t delivered = 0;
  double mean_delay_slots = 0.0;
  double p99_delay_slots = 0.0;
  double mean_hops = 0.0;  // switch stages actually traversed
  std::vector<int> max_input_occupancy_per_level;  // leaf-first
  std::uint64_t buffer_overflows = 0;  // must be 0
  std::uint64_t out_of_order = 0;      // must be 0
  // All-time conservation counters (warmup included): every injected
  // cell must eventually be delivered — the fabric never loses cells.
  std::uint64_t injected_total = 0;
  std::uint64_t delivered_total = 0;
};

class ClosFabricSim {
 public:
  ClosFabricSim(ClosConfig cfg, std::unique_ptr<sim::TrafficGen> traffic);

  ClosResult run();

  int hosts() const { return topo_.hosts; }
  int switch_count() const { return topo_.switch_count(); }
  const topo::Topology& topology() const { return topo_; }

 private:
  struct FabricCell {
    int src = -1;
    int dst = -1;
    std::uint64_t seq = 0;
    std::uint64_t inject_slot = 0;
    int hops = 0;
  };
  struct Timed {
    std::uint64_t slot;
    FabricCell cell;
  };
  // Per-switch cell-moving state; the wiring and routes live in the
  // matching topo_.switches[id] entry.
  struct SwitchNode {
    std::unique_ptr<sw::Scheduler> sched;
    std::vector<std::vector<std::deque<FabricCell>>> voq;  // [in][out]
    std::vector<int> input_occupancy;
    std::vector<int> out_credits;                // -1 = host egress
    std::vector<std::deque<Timed>> out_data;     // per port
    std::vector<std::deque<std::uint64_t>> credit_in;  // per port
    int max_input_occ = 0;
  };

  void step(std::uint64_t t, bool measuring);
  void accept_cell(int sw_id, int in_port, FabricCell cell);

  ClosConfig cfg_;
  topo::Topology topo_;
  std::vector<SwitchNode> switches_;
  std::unique_ptr<sim::TrafficGen> traffic_;

  // Host state.
  std::vector<std::deque<FabricCell>> host_queue_;
  std::vector<int> host_credits_;
  std::vector<std::deque<std::uint64_t>> host_credit_in_;
  std::vector<std::deque<Timed>> host_out_;
  std::vector<std::uint64_t> flow_seq_;

  // Statistics.
  sim::Histogram delay_hist_{512.0};
  sim::MeanVar hops_;
  sim::ThroughputMeter meter_;
  sim::ReorderDetector reorder_;
  std::uint64_t overflows_ = 0;
  std::uint64_t injected_total_ = 0;
  std::uint64_t delivered_total_ = 0;
};

/// Convenience: uniform Bernoulli run.
ClosResult run_clos_uniform(const ClosConfig& cfg, double load,
                            std::uint64_t seed);

}  // namespace osmosis::fabric
