#include "src/fabric/placement.hpp"

#include <cmath>

#include "src/util/log.hpp"

namespace osmosis::fabric {

int buffer_cells_for_rtt(double rtt_ns, double cell_ns, int margin) {
  OSMOSIS_REQUIRE(cell_ns > 0.0, "cell time must be positive");
  OSMOSIS_REQUIRE(rtt_ns >= 0.0, "RTT cannot be negative");
  return static_cast<int>(std::ceil(rtt_ns / cell_ns)) + margin;
}

PlacementAnalysis analyze_placement(BufferPlacement option, double cable_ns,
                                    double cell_ns, double sched_ns) {
  OSMOSIS_REQUIRE(cable_ns >= 0.0 && cell_ns > 0.0 && sched_ns >= 0.0,
                  "invalid timing parameters");
  PlacementAnalysis a;
  a.option = option;
  switch (option) {
    case BufferPlacement::kInputAndOutput:
      a.description = "buffers at inputs and outputs of each stage";
      a.oeo_pairs_per_stage = 2;  // into input buffer AND into output buffer
      // Request/grant stays inside the switch: scheduler next to buffers.
      a.request_grant_rtt_ns = sched_ns;
      // Output buffer decouples the cable; input buffer only rides out
      // the local scheduling pipeline.
      a.min_input_buffer_cells = buffer_cells_for_rtt(sched_ns, cell_ns);
      a.point_to_point_fc = true;
      break;
    case BufferPlacement::kOutputOnly:
      a.description = "buffers at outputs only (scheduler across the cable)";
      a.oeo_pairs_per_stage = 1;
      // The input buffers live in the PRECEDING stage, so the
      // request/grant protocol crosses the long cable both ways.
      a.request_grant_rtt_ns = 2.0 * cable_ns + sched_ns;
      a.min_input_buffer_cells =
          buffer_cells_for_rtt(2.0 * cable_ns + sched_ns, cell_ns);
      a.point_to_point_fc = true;
      break;
    case BufferPlacement::kInputOnly:
      a.description = "buffers at inputs only (OSMOSIS; FC via scheduler)";
      a.oeo_pairs_per_stage = 1;
      // Request/grant is local; the price is the remote FC loop, which
      // sizes the input buffer to the data-cable round trip.
      a.request_grant_rtt_ns = sched_ns;
      a.min_input_buffer_cells =
          buffer_cells_for_rtt(2.0 * cable_ns, cell_ns);
      a.point_to_point_fc = false;  // many-to-one, relayed via scheduler
      break;
  }
  return a;
}

std::vector<PlacementAnalysis> compare_placements(double cable_ns,
                                                  double cell_ns,
                                                  double sched_ns) {
  return {
      analyze_placement(BufferPlacement::kInputAndOutput, cable_ns, cell_ns,
                        sched_ns),
      analyze_placement(BufferPlacement::kOutputOnly, cable_ns, cell_ns,
                        sched_ns),
      analyze_placement(BufferPlacement::kInputOnly, cable_ns, cell_ns,
                        sched_ns),
  };
}

}  // namespace osmosis::fabric
