#pragma once
// Hop-by-hop hardware retransmission (§IV.C): a go-back-N link layer on
// one fabric hop. Sits above the FEC: the decoder either delivers a
// clean block, or flags a *detected* uncorrectable block (which this
// layer repairs by retransmission), or — very rarely — miscorrects
// (which escapes undetected; quantified by fec::post_arq_ber).
//
// The simulation is slot-synchronous at cell-cycle granularity, matching
// the hardware the paper describes: per-cell sequence numbers, cumulative
// ACKs returning on the reverse channel (the paper relays ACKs on the
// same scheduler-mediated control path as flow control), and a
// retransmit timeout derived from the deterministic link RTT.

#include <cstdint>
#include <deque>
#include <vector>

#include "src/ckpt/archive.hpp"
#include "src/sim/rng.hpp"

namespace osmosis::arq {

/// Link and protocol parameters.
struct GoBackNParams {
  int window = 32;             // outstanding unacked cells
  int link_delay_slots = 4;    // one-way cell flight time, in cell cycles
  int ack_delay_slots = 4;     // reverse control-path delay
  // Probability a transmitted cell arrives FEC-uncorrectable (detected);
  // the receiver discards it and the sender eventually retransmits.
  double detected_loss_prob = 0.0;
  // Probability a cell arrives corrupted but *undetected* (miscorrected
  // FEC); it is delivered and counted as a residual error.
  double undetected_error_prob = 0.0;
  int timeout_margin_slots = 2;  // extra slack on top of the RTT

  int rtt_slots() const { return link_delay_slots + ack_delay_slots; }
  int timeout_slots() const { return rtt_slots() + timeout_margin_slots; }
};

/// Results of a go-back-N run.
struct GoBackNStats {
  std::uint64_t offered = 0;          // cells the source wanted to send
  std::uint64_t transmissions = 0;    // cells put on the wire (incl. retx)
  std::uint64_t delivered = 0;        // cells accepted in order at receiver
  std::uint64_t retransmissions = 0;
  std::uint64_t residual_errors = 0;  // undetected corrupt cells delivered
  std::uint64_t out_of_order = 0;     // must stay 0: GBN preserves order
  std::uint64_t slots = 0;

  double goodput() const {
    return slots ? static_cast<double>(delivered) / static_cast<double>(slots)
                 : 0.0;
  }
  double retransmission_overhead() const {
    return delivered ? static_cast<double>(retransmissions) /
                           static_cast<double>(delivered)
                     : 0.0;
  }
};

/// Slot-accurate simulator of one reliable hop.
class GoBackNLink {
 public:
  GoBackNLink(GoBackNParams params, sim::Rng rng);

  /// Runs `slots` cell cycles with a saturated source (always has the
  /// next cell ready) and returns the stats.
  GoBackNStats run_saturated(std::uint64_t slots);

  /// Runs with a Bernoulli source of the given load.
  GoBackNStats run(std::uint64_t slots, double offered_load);

 private:
  struct InFlight {
    std::uint64_t seq;
    std::uint64_t arrive_slot;
    bool detected_bad;
    bool undetected_bad;
  };
  struct AckInFlight {
    std::uint64_t cumulative_ack;  // next expected seq at receiver
    std::uint64_t arrive_slot;
  };

  GoBackNParams p_;
  sim::Rng rng_;

 public:
  /// Checkpoint serialization: between run_saturated calls the only
  /// carried state is the PRNG (the in-flight/ack queues are locals of
  /// one run); params are construction-time config.
  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, rng_);
  }
};

}  // namespace osmosis::arq
