#include "src/arq/residual.hpp"

#include "src/fec/channel.hpp"
#include "src/util/log.hpp"

namespace osmosis::arq {

ReliabilityTier reliability_waterfall(double raw_ber,
                                      double miscorrect_given_multi) {
  OSMOSIS_REQUIRE(raw_ber >= 0.0 && raw_ber <= 1.0, "raw BER out of [0,1]");
  ReliabilityTier tier;
  tier.raw_ber = raw_ber;
  tier.post_fec_ber = fec::post_fec_ber(raw_ber);
  tier.post_arq_ber = fec::post_arq_ber(raw_ber, miscorrect_given_multi);
  return tier;
}

std::vector<ReliabilityTier> reliability_sweep(
    const std::vector<double>& raw_bers, double miscorrect_given_multi) {
  std::vector<ReliabilityTier> tiers;
  tiers.reserve(raw_bers.size());
  for (double ber : raw_bers)
    tiers.push_back(reliability_waterfall(ber, miscorrect_given_multi));
  return tiers;
}

}  // namespace osmosis::arq
