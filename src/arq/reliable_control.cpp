#include "src/arq/reliable_control.hpp"

#include "src/util/log.hpp"

namespace osmosis::arq {

ReliableControlChannel::ReliableControlChannel(int voqs, double error_prob,
                                               sim::Rng rng)
    : voqs_(voqs),
      error_prob_(error_prob),
      adapter_(static_cast<std::size_t>(voqs), 0),
      scheduler_(static_cast<std::size_t>(voqs), 0),
      rng_(rng) {
  OSMOSIS_REQUIRE(voqs_ >= 1, "need at least one VOQ counter");
  OSMOSIS_REQUIRE(error_prob_ >= 0.0 && error_prob_ < 1.0,
                  "error probability out of [0,1)");
}

ControlChannelStats ReliableControlChannel::run(std::uint64_t slots,
                                                double arrival_prob) {
  OSMOSIS_REQUIRE(arrival_prob >= 0.0 && arrival_prob <= 1.0,
                  "arrival probability out of [0,1]");
  ControlChannelStats stats;

  auto send_message = [&] {
    // The message carries absolute cumulative counts, so applying any
    // one message fully resynchronizes the receiver (idempotence).
    ++seq_sent_;
    ++stats.messages_sent;
    if (rng_.bernoulli(error_prob_)) {
      ++stats.messages_corrupted;  // control CRC catches it; discarded
      return;
    }
    if (scheduler_ != adapter_) ++stats.resyncs;
    scheduler_ = adapter_;
    seq_applied_ = seq_sent_;
  };

  for (std::uint64_t t = 0; t < slots; ++t) {
    // Ground truth evolves: a new cell may arrive into a random VOQ.
    if (rng_.bernoulli(arrival_prob)) {
      const auto v = rng_.uniform_int(static_cast<std::uint64_t>(voqs_));
      ++adapter_[static_cast<std::size_t>(v)];
    }
    send_message();
  }

  // Deterministic flush: in hardware the bounded control RTT guarantees
  // the last state is re-sent until acknowledged; model that with a
  // handful of error-free rounds.
  for (int i = 0; i < 4; ++i) {
    ++stats.messages_sent;
    if (scheduler_ != adapter_) ++stats.resyncs;
    scheduler_ = adapter_;
    seq_applied_ = ++seq_sent_;
  }
  stats.consistent_at_end = scheduler_ == adapter_;
  return stats;
}

}  // namespace osmosis::arq
