#pragma once
// The §IV.C two-tier reliability waterfall: raw optical BER -> FEC ->
// hop-by-hop retransmission. Combines the phy raw-BER envelope, the fec
// analytic coded-BER estimates, and the ARQ undetected-error residue
// into the single table the paper reports (1e-10 -> better than 1e-17 ->
// better than 1e-21).

#include <vector>

namespace osmosis::arq {

/// One row of the reliability waterfall.
struct ReliabilityTier {
  double raw_ber;        // physical link BER
  double post_fec_ber;   // user BER after (272,256) FEC
  double post_arq_ber;   // residual undetected BER after retransmission
};

/// Computes the waterfall for one raw BER. `miscorrect_given_multi` is
/// the decoder's conditional miscorrection probability for blocks with
/// >= 2 corrupted symbols (measure it with fec::inject_bit_errors; the
/// union-bound default 0.13 comes from counting correctable syndromes of
/// the shortened code: n·(q-1)/q² ≈ 34·255/65536).
ReliabilityTier reliability_waterfall(double raw_ber,
                                      double miscorrect_given_multi = 0.13);

/// The waterfall across a sweep of raw BERs (for the bench table).
std::vector<ReliabilityTier> reliability_sweep(
    const std::vector<double>& raw_bers, double miscorrect_given_multi = 0.13);

}  // namespace osmosis::arq
