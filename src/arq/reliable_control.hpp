#pragma once
// Reliable crossbar-arbitration control channel, after Minkenberg, Abel
// & Gusat, "Reliable control protocol for crossbar arbitration" [19]
// (cited in §IV.B as the mechanism that makes the request/grant and
// flow-control relay channels dependable).
//
// The problem: the central scheduler's view of every ingress adapter's
// VOQ occupancy is maintained incrementally from per-cell control
// messages (request increments and grant confirmations). A corrupted or
// lost control message would silently desynchronize the scheduler's
// counters from reality, so the protocol must make the counter state
// *exactly* consistent despite an unreliable channel.
//
// Scheme implemented here (the essence of [19]): each adapter numbers
// its control messages with a per-adapter sequence number and each
// message carries the *absolute* cumulative arrival count per VOQ (not a
// delta), so any successfully received message fully resynchronizes the
// scheduler regardless of how many predecessors were lost. The scheduler
// acknowledges the highest sequence applied; unacknowledged state is
// simply re-sent — idempotent by construction.

#include <cstdint>
#include <vector>

#include "src/ckpt/archive.hpp"
#include "src/sim/rng.hpp"

namespace osmosis::arq {

/// Statistics of a reliable-control run.
struct ControlChannelStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_corrupted = 0;
  std::uint64_t resyncs = 0;  // messages that repaired stale scheduler state
  bool consistent_at_end = false;
};

/// Simulates one adapter-to-scheduler control channel carrying VOQ
/// occupancy counts over a lossy link, verifying the scheduler converges
/// to the adapter's true state.
class ReliableControlChannel {
 public:
  /// `voqs`: number of VOQ counters carried; `error_prob`: per-message
  /// corruption probability (detected by the control CRC and discarded).
  ReliableControlChannel(int voqs, double error_prob, sim::Rng rng);

  /// Runs `slots` cycles. Each cycle the adapter's true counters advance
  /// randomly (new arrivals), one control message is sent, and the
  /// scheduler applies it if it survives the channel. Returns stats;
  /// `consistent_at_end` is evaluated after a short error-free flush,
  /// which the deterministic control-channel RTT guarantees in hardware.
  ControlChannelStats run(std::uint64_t slots, double arrival_prob);

  const std::vector<std::uint64_t>& adapter_counters() const {
    return adapter_;
  }
  const std::vector<std::uint64_t>& scheduler_counters() const {
    return scheduler_;
  }

  /// Checkpoint serialization: the ARQ window position (sent/applied
  /// sequence numbers), both counter views, and the roll stream.
  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, adapter_);
    ckpt::field(a, scheduler_);
    ckpt::field(a, seq_sent_);
    ckpt::field(a, seq_applied_);
    ckpt::field(a, rng_);
  }

 private:
  int voqs_;
  double error_prob_;
  std::vector<std::uint64_t> adapter_;    // ground truth at the adapter
  std::vector<std::uint64_t> scheduler_;  // scheduler's view
  std::uint64_t seq_sent_ = 0;
  std::uint64_t seq_applied_ = 0;
  sim::Rng rng_;
};

}  // namespace osmosis::arq
