#include "src/arq/go_back_n.hpp"

#include <algorithm>

#include "src/util/log.hpp"

namespace osmosis::arq {

GoBackNLink::GoBackNLink(GoBackNParams params, sim::Rng rng)
    : p_(params), rng_(rng) {
  OSMOSIS_REQUIRE(p_.window >= 1, "window must be >= 1");
  OSMOSIS_REQUIRE(p_.link_delay_slots >= 1 && p_.ack_delay_slots >= 1,
                  "link delays must be >= 1 slot");
  OSMOSIS_REQUIRE(p_.detected_loss_prob >= 0.0 && p_.detected_loss_prob < 1.0,
                  "detected-loss probability out of [0,1)");
  OSMOSIS_REQUIRE(
      p_.undetected_error_prob >= 0.0 && p_.undetected_error_prob < 1.0,
      "undetected-error probability out of [0,1)");
  // A window smaller than the RTT cannot keep the pipe full; allowed,
  // but the timeout must still exceed the RTT for correctness.
  OSMOSIS_REQUIRE(p_.timeout_slots() > p_.rtt_slots(),
                  "timeout must exceed the round-trip time");
}

GoBackNStats GoBackNLink::run_saturated(std::uint64_t slots) {
  return run(slots, 1.0);
}

GoBackNStats GoBackNLink::run(std::uint64_t slots, double offered_load) {
  OSMOSIS_REQUIRE(offered_load >= 0.0 && offered_load <= 1.0,
                  "offered load out of [0,1]");
  GoBackNStats stats;
  stats.slots = slots;

  std::deque<InFlight> data_fifo;
  std::deque<AckInFlight> ack_fifo;

  std::uint64_t backlog_limit = 0;  // cells the source has produced so far
  std::uint64_t next_new_seq = 0;   // first never-transmitted sequence
  std::uint64_t base = 0;           // oldest unacked sequence
  std::uint64_t cursor = 0;         // next sequence to put on the wire
  std::uint64_t expected = 0;       // receiver's next in-order sequence
  std::uint64_t timer_expiry = 0;
  bool timer_armed = false;

  for (std::uint64_t t = 0; t < slots; ++t) {
    // 1. Source produces work.
    if (offered_load >= 1.0 || rng_.bernoulli(offered_load)) {
      ++backlog_limit;
      ++stats.offered;
    }

    // 2. Data arrivals at the receiver.
    while (!data_fifo.empty() && data_fifo.front().arrive_slot <= t) {
      const InFlight cell = data_fifo.front();
      data_fifo.pop_front();
      if (cell.detected_bad) continue;  // FEC flagged it; discarded
      if (cell.seq == expected) {
        ++expected;
        ++stats.delivered;
        if (cell.undetected_bad) ++stats.residual_errors;
      } else if (cell.seq > expected) {
        // Out-of-order arrival is never *delivered* by a GBN receiver —
        // it is discarded, preserving the in-order guarantee.
        ++stats.out_of_order;  // counts discards, not deliveries
      }
      // duplicates (seq < expected) are silently dropped
    }

    // 3. Receiver emits a cumulative ACK every cycle (the OSMOSIS control
    //    path carries per-cell control traffic anyway).
    ack_fifo.push_back(AckInFlight{expected, t + static_cast<std::uint64_t>(
                                                     p_.ack_delay_slots)});

    // 4. ACK arrivals at the sender.
    while (!ack_fifo.empty() && ack_fifo.front().arrive_slot <= t) {
      const AckInFlight ack = ack_fifo.front();
      ack_fifo.pop_front();
      if (ack.cumulative_ack > base) {
        base = ack.cumulative_ack;
        cursor = std::max(cursor, base);
        timer_armed = base < next_new_seq;
        timer_expiry = t + static_cast<std::uint64_t>(p_.timeout_slots());
      }
    }

    // 5. Timeout: go back to the window base and resend everything.
    if (timer_armed && t >= timer_expiry && base < next_new_seq) {
      cursor = base;
      timer_expiry = t + static_cast<std::uint64_t>(p_.timeout_slots());
    }

    // 6. Transmit one cell per slot if the window and backlog allow.
    const std::uint64_t window_end =
        base + static_cast<std::uint64_t>(p_.window);
    const std::uint64_t sendable_end = std::min(window_end, backlog_limit);
    if (cursor < sendable_end) {
      const bool is_retx = cursor < next_new_seq;
      InFlight cell;
      cell.seq = cursor;
      cell.arrive_slot = t + static_cast<std::uint64_t>(p_.link_delay_slots);
      cell.detected_bad = rng_.bernoulli(p_.detected_loss_prob);
      cell.undetected_bad =
          !cell.detected_bad && rng_.bernoulli(p_.undetected_error_prob);
      data_fifo.push_back(cell);
      ++stats.transmissions;
      if (is_retx) ++stats.retransmissions;
      if (cursor == base || !timer_armed) {
        timer_armed = true;
        timer_expiry = t + static_cast<std::uint64_t>(p_.timeout_slots());
      }
      ++cursor;
      next_new_seq = std::max(next_new_seq, cursor);
    }
  }
  return stats;
}

}  // namespace osmosis::arq
