#include "src/mgmt/health.hpp"

#include <sstream>

#include "src/util/log.hpp"

namespace osmosis::mgmt {

void HealthRegistry::declare(const std::string& name) {
  const auto [it, inserted] = status_.emplace(name, Status::kOk);
  OSMOSIS_REQUIRE(inserted, "component declared twice: " << name);
  (void)it;
}

void HealthRegistry::report(const std::string& name, Status status,
                            std::uint64_t slot, const std::string& note) {
  auto it = status_.find(name);
  OSMOSIS_REQUIRE(it != status_.end(), "unknown component: " << name);
  if (it->second == status) return;
  it->second = status;
  events_.push_back(Event{slot, name, status, note});
}

Status HealthRegistry::status(const std::string& name) const {
  auto it = status_.find(name);
  OSMOSIS_REQUIRE(it != status_.end(), "unknown component: " << name);
  return it->second;
}

bool HealthRegistry::known(const std::string& name) const {
  return status_.count(name) > 0;
}

std::size_t HealthRegistry::count(Status s) const {
  std::size_t n = 0;
  for (const auto& [name, st] : status_) n += st == s;
  return n;
}

std::vector<std::string> HealthRegistry::event_log() const {
  std::vector<std::string> lines;
  lines.reserve(events_.size());
  for (const Event& e : events_) {
    std::ostringstream oss;
    oss << "t=" << e.time_slot << ' ' << e.component << ' '
        << (e.status == Status::kOk         ? "OK"
            : e.status == Status::kDegraded ? "DEGRADED"
                                            : "FAILED");
    if (!e.note.empty()) oss << " (" << e.note << ")";
    lines.push_back(oss.str());
  }
  return lines;
}

Status HealthRegistry::system_status() const {
  // A switching-module failure is absorbed by its dual-receiver peer:
  // "module/<egress>/0" and "module/<egress>/1" are redundant pairs.
  bool degraded = false;
  for (const auto& [name, st] : status_) {
    if (st == Status::kOk) continue;
    if (st == Status::kDegraded) {
      degraded = true;
      continue;
    }
    // Failed: redundant peer?
    std::string peer;
    if (name.rfind("module/", 0) == 0) {
      const auto slash = name.find_last_of('/');
      const std::string rx = name.substr(slash + 1);
      peer = name.substr(0, slash + 1) + (rx == "0" ? "1" : "0");
    }
    if (!peer.empty() && known(peer) &&
        status_.at(peer) == Status::kOk) {
      degraded = true;  // redundancy holds
    } else {
      return Status::kFailed;
    }
  }
  return degraded ? Status::kDegraded : Status::kOk;
}

HealthRegistry survey_crossbar(const phy::BroadcastSelectCrossbar& xbar,
                               std::uint64_t slot) {
  HealthRegistry reg;
  const auto& cfg = xbar.config();
  for (int f = 0; f < cfg.fibers; ++f) {
    std::ostringstream name;
    name << "broadcast/" << f;
    reg.declare(name.str());
    if (xbar.fiber_failed(f))
      reg.report(name.str(), Status::kFailed, slot, "fiber dark");
  }
  for (int eg = 0; eg < cfg.ports; ++eg) {
    for (int rx = 0; rx < cfg.receivers_per_egress; ++rx) {
      std::ostringstream name;
      name << "module/" << eg << "/" << rx;
      reg.declare(name.str());
      if (xbar.module_failed(eg, rx))
        reg.report(name.str(), Status::kFailed, slot, "no light output");
    }
  }
  reg.declare("scheduler");
  return reg;
}

}  // namespace osmosis::mgmt
