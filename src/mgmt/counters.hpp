#pragma once
// Performance-counter registry for the management system (§VI.A: "a
// software-based management system ... for the tasks of configuring and
// testing the system, monitoring demonstrator operation, and extracting
// performance values"). Components register named monotonic counters and
// gauges; the manager takes snapshots and derives deltas/rates between
// them — the standard shape of switch telemetry.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/ckpt/archive.hpp"

namespace osmosis::mgmt {

/// A point-in-time copy of every counter.
using Snapshot = std::map<std::string, double>;

class CounterRegistry {
 public:
  /// Adds `delta` to a monotonic counter (created on first use).
  void add(const std::string& name, double delta = 1.0);

  /// Sets a gauge to an instantaneous value (created on first use).
  void set_gauge(const std::string& name, double value);

  double value(const std::string& name) const;
  bool has(const std::string& name) const;
  std::size_t size() const { return values_.size(); }

  /// All counters whose name starts with `prefix` (hierarchical names,
  /// e.g. "ingress.3.").
  std::vector<std::string> names_with_prefix(const std::string& prefix) const;

  /// Value-wise accumulation of another registry: every counter of
  /// `other` is added to the counter of the same name here (created if
  /// absent). Used to roll per-stage/per-switch registries up into one.
  void merge(const CounterRegistry& other);

  /// Same accumulation from a raw snapshot — the shape a RunReport
  /// carries — so campaign aggregation can roll job reports up without
  /// reconstructing registries.
  void merge(const Snapshot& other);

  /// Sum of all values whose name starts with `prefix` — the per-prefix
  /// subtotal behind roll-ups like "all leaf.* grants".
  double subtotal(const std::string& prefix) const;

  Snapshot snapshot() const { return values_; }

  /// counter-wise (later - earlier); gauges report their later value.
  static Snapshot delta(const Snapshot& earlier, const Snapshot& later);

  /// Per-second rates given the elapsed time between two snapshots.
  static Snapshot rates(const Snapshot& earlier, const Snapshot& later,
                        double elapsed_s);

  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, values_);
  }

 private:
  Snapshot values_;
};

}  // namespace osmosis::mgmt
