#include "src/mgmt/counters.hpp"

#include "src/util/log.hpp"

namespace osmosis::mgmt {

void CounterRegistry::add(const std::string& name, double delta) {
  OSMOSIS_REQUIRE(delta >= 0.0, "monotonic counter cannot decrease: "
                                    << name << " += " << delta);
  values_[name] += delta;
}

void CounterRegistry::set_gauge(const std::string& name, double value) {
  values_[name] = value;
}

double CounterRegistry::value(const std::string& name) const {
  auto it = values_.find(name);
  OSMOSIS_REQUIRE(it != values_.end(), "unknown counter: " << name);
  return it->second;
}

bool CounterRegistry::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::vector<std::string> CounterRegistry::names_with_prefix(
    const std::string& prefix) const {
  std::vector<std::string> out;
  for (auto it = values_.lower_bound(prefix); it != values_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

void CounterRegistry::merge(const CounterRegistry& other) {
  merge(other.values_);
}

void CounterRegistry::merge(const Snapshot& other) {
  for (const auto& [name, value] : other) values_[name] += value;
}

double CounterRegistry::subtotal(const std::string& prefix) const {
  double sum = 0.0;
  for (auto it = values_.lower_bound(prefix); it != values_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    sum += it->second;
  }
  return sum;
}

Snapshot CounterRegistry::delta(const Snapshot& earlier,
                                const Snapshot& later) {
  Snapshot d;
  for (const auto& [name, value] : later) {
    auto it = earlier.find(name);
    d[name] = it == earlier.end() ? value : value - it->second;
  }
  return d;
}

Snapshot CounterRegistry::rates(const Snapshot& earlier, const Snapshot& later,
                                double elapsed_s) {
  OSMOSIS_REQUIRE(elapsed_s > 0.0, "elapsed time must be positive");
  Snapshot r = delta(earlier, later);
  for (auto& [name, value] : r) value /= elapsed_s;
  return r;
}

}  // namespace osmosis::mgmt
