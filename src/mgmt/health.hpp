#pragma once
// Component health model for the management system: tracks the status
// of every field-replaceable unit of the demonstrator (broadcast
// modules, switching modules, adapters, scheduler cards), aggregates a
// system-level verdict, and keeps an event log — the "monitoring
// demonstrator operation" function of §VI.A.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/ckpt/archive.hpp"
#include "src/phy/crossbar_optical.hpp"

namespace osmosis::mgmt {

enum class Status { kOk, kDegraded, kFailed };

struct Event {
  std::uint64_t time_slot = 0;
  std::string component;
  Status status = Status::kOk;
  std::string note;

  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, time_slot);
    ckpt::field(a, component);
    ckpt::field(a, status);
    ckpt::field(a, note);
  }
};

class HealthRegistry {
 public:
  /// Declares a component (initially Ok).
  void declare(const std::string& name);

  /// Updates a component's status and logs the transition.
  void report(const std::string& name, Status status, std::uint64_t slot,
              const std::string& note = "");

  Status status(const std::string& name) const;
  bool known(const std::string& name) const;
  std::size_t component_count() const { return status_.size(); }

  /// Worst status across all components, with degraded-vs-failed
  /// semantics: any Failed component that has a declared redundant peer
  /// in Ok state only degrades the system.
  Status system_status() const;

  std::size_t count(Status s) const;
  const std::vector<Event>& events() const { return events_; }

  /// The event log rendered one line per transition
  /// ("t=<slot> <component> FAILED (<note>)") — the RunReport `health`
  /// section consumes exactly this.
  std::vector<std::string> event_log() const;

  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, status_);
    ckpt::field(a, events_);
  }

 private:
  std::map<std::string, Status> status_;
  std::vector<Event> events_;
};

/// Builds the demonstrator's component inventory from a crossbar and
/// imports its current failure state: one component per broadcast module
/// (fiber), per switching module, plus scheduler and adapters. Returns a
/// populated registry; the Fig. 5 inventory becomes the health view.
HealthRegistry survey_crossbar(const phy::BroadcastSelectCrossbar& xbar,
                               std::uint64_t slot);

}  // namespace osmosis::mgmt
