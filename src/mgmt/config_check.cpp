#include "src/mgmt/config_check.hpp"

#include <sstream>

#include "src/core/latency_budget.hpp"
#include "src/phy/crossbar_optical.hpp"
#include "src/phy/sync.hpp"
#include "src/util/units.hpp"

namespace osmosis::mgmt {
namespace {

void finding(std::vector<Finding>& out, Severity sev, std::string check,
             std::string detail) {
  out.push_back(Finding{sev, std::move(check), std::move(detail)});
}

}  // namespace

std::vector<Finding> validate_config(const core::OsmosisConfig& cfg) {
  std::vector<Finding> out;

  // Geometry.
  if (cfg.ports != cfg.fibers * cfg.wavelengths) {
    std::ostringstream oss;
    oss << cfg.ports << " ports != " << cfg.fibers << " fibers x "
        << cfg.wavelengths << " wavelengths";
    finding(out, Severity::kError, "geometry", oss.str());
    return out;  // everything downstream depends on this
  }
  if (cfg.receivers < 1 || cfg.receivers > 4)
    finding(out, Severity::kError, "geometry",
            "receivers per egress must be 1..4");

  // Cell timing.
  if (!cfg.cell.feasible()) {
    std::ostringstream oss;
    oss << "guard " << cfg.cell.guard.total_ns() << " ns + overheads leave "
        << "no payload in a " << cfg.cell.cycle_ns() << " ns cycle";
    finding(out, Severity::kError, "cell timing", oss.str());
  } else if (cfg.cell.user_efficiency() < 0.75) {
    std::ostringstream oss;
    oss << "effective user bandwidth "
        << cfg.cell.user_efficiency() * 100.0
        << " % below the 75 % requirement";
    finding(out, Severity::kWarning, "cell timing", oss.str());
  }

  // Optical power budget and crosstalk.
  if (out.empty() || config_ok(out)) {
    phy::BroadcastSelectCrossbar xbar(cfg.crossbar());
    const auto budget = xbar.power_budget();
    if (!budget.closes) {
      std::ostringstream oss;
      oss << "margin " << budget.margin_db << " dB below required "
          << cfg.crossbar().required_margin_db << " dB (split loss "
          << budget.split_loss_db << " dB)";
      finding(out, Severity::kError, "optical power budget", oss.str());
    }
    if (!xbar.crosstalk_acceptable()) {
      std::ostringstream oss;
      oss << "signal-to-crosstalk " << xbar.signal_to_crosstalk_db()
          << " dB below tolerance";
      finding(out, Severity::kError, "crosstalk", oss.str());
    }
  }

  // Synchronization window.
  {
    phy::SyncTreeParams tree;
    tree.levels = phy::sync_levels_needed(cfg.ports, tree.fanout);
    const auto sync = phy::analyze_sync_tree(tree);
    if (!phy::sync_fits_budget(sync, cfg.cell.guard)) {
      std::ostringstream oss;
      oss << "arrival window " << sync.arrival_window_ns
          << " ns exceeds the jitter allocation "
          << cfg.cell.guard.arrival_jitter_ns << " ns";
      finding(out, Severity::kWarning, "synchronization", oss.str());
    }
  }

  // Scheduler sizing (§VI.B: no more than four ASICs).
  {
    const int depth =
        cfg.scheduler_depth > 0
            ? cfg.scheduler_depth
            : util::ceil_log2(static_cast<std::uint64_t>(cfg.ports));
    const int asics = core::scheduler_asic_count(cfg.ports, depth);
    std::ostringstream oss;
    oss << "depth " << depth << " needs " << asics << " scheduler ASIC(s)";
    finding(out, asics <= 4 ? Severity::kInfo : Severity::kWarning,
            "scheduler sizing", oss.str());
  }

  return out;
}

bool config_ok(const std::vector<Finding>& findings) {
  for (const auto& f : findings)
    if (f.severity == Severity::kError) return false;
  return true;
}

std::string to_string(const Finding& f) {
  const char* sev = f.severity == Severity::kError     ? "ERROR"
                    : f.severity == Severity::kWarning ? "WARN "
                                                       : "INFO ";
  return std::string(sev) + " [" + f.check + "] " + f.detail;
}

}  // namespace osmosis::mgmt
