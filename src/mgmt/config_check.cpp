#include "src/mgmt/config_check.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "src/core/latency_budget.hpp"
#include "src/phy/crossbar_optical.hpp"
#include "src/phy/sync.hpp"
#include "src/util/units.hpp"

namespace osmosis::mgmt {
namespace {

void finding(std::vector<Finding>& out, Severity sev, std::string check,
             std::string detail) {
  out.push_back(Finding{sev, std::move(check), std::move(detail)});
}

}  // namespace

std::vector<Finding> validate_config(const core::OsmosisConfig& cfg) {
  std::vector<Finding> out;

  // Geometry.
  if (cfg.ports != cfg.fibers * cfg.wavelengths) {
    std::ostringstream oss;
    oss << cfg.ports << " ports != " << cfg.fibers << " fibers x "
        << cfg.wavelengths << " wavelengths";
    finding(out, Severity::kError, "geometry", oss.str());
    return out;  // everything downstream depends on this
  }
  if (cfg.receivers < 1 || cfg.receivers > 4)
    finding(out, Severity::kError, "geometry",
            "receivers per egress must be 1..4");

  // Cell timing.
  if (!cfg.cell.feasible()) {
    std::ostringstream oss;
    oss << "guard " << cfg.cell.guard.total_ns() << " ns + overheads leave "
        << "no payload in a " << cfg.cell.cycle_ns() << " ns cycle";
    finding(out, Severity::kError, "cell timing", oss.str());
  } else if (cfg.cell.user_efficiency() < 0.75) {
    std::ostringstream oss;
    oss << "effective user bandwidth "
        << cfg.cell.user_efficiency() * 100.0
        << " % below the 75 % requirement";
    finding(out, Severity::kWarning, "cell timing", oss.str());
  }

  // Optical power budget and crosstalk.
  if (out.empty() || config_ok(out)) {
    phy::BroadcastSelectCrossbar xbar(cfg.crossbar());
    const auto budget = xbar.power_budget();
    if (!budget.closes) {
      std::ostringstream oss;
      oss << "margin " << budget.margin_db << " dB below required "
          << cfg.crossbar().required_margin_db << " dB (split loss "
          << budget.split_loss_db << " dB)";
      finding(out, Severity::kError, "optical power budget", oss.str());
    }
    if (!xbar.crosstalk_acceptable()) {
      std::ostringstream oss;
      oss << "signal-to-crosstalk " << xbar.signal_to_crosstalk_db()
          << " dB below tolerance";
      finding(out, Severity::kError, "crosstalk", oss.str());
    }
  }

  // Synchronization window.
  {
    phy::SyncTreeParams tree;
    tree.levels = phy::sync_levels_needed(cfg.ports, tree.fanout);
    const auto sync = phy::analyze_sync_tree(tree);
    if (!phy::sync_fits_budget(sync, cfg.cell.guard)) {
      std::ostringstream oss;
      oss << "arrival window " << sync.arrival_window_ns
          << " ns exceeds the jitter allocation "
          << cfg.cell.guard.arrival_jitter_ns << " ns";
      finding(out, Severity::kWarning, "synchronization", oss.str());
    }
  }

  // Scheduler sizing (§VI.B: no more than four ASICs).
  {
    const int depth =
        cfg.scheduler_depth > 0
            ? cfg.scheduler_depth
            : util::ceil_log2(static_cast<std::uint64_t>(cfg.ports));
    const int asics = core::scheduler_asic_count(cfg.ports, depth);
    std::ostringstream oss;
    oss << "depth " << depth << " needs " << asics << " scheduler ASIC(s)";
    finding(out, asics <= 4 ? Severity::kInfo : Severity::kWarning,
            "scheduler sizing", oss.str());
  }

  return out;
}

std::vector<Finding> validate_failures(
    const core::OsmosisConfig& cfg,
    const std::vector<std::pair<int, int>>& failed_receivers,
    const std::vector<int>& failed_fibers) {
  std::vector<Finding> out;

  std::set<std::pair<int, int>> seen_rx;
  std::map<int, int> dead_per_egress;
  for (const auto& [egress, rx] : failed_receivers) {
    std::ostringstream oss;
    if (egress < 0 || egress >= cfg.ports || rx < 0 || rx >= cfg.receivers) {
      oss << "failed receiver (" << egress << "," << rx
          << ") outside the " << cfg.ports << "x" << cfg.receivers
          << " module grid";
      finding(out, Severity::kError, "failures", oss.str());
      continue;
    }
    if (!seen_rx.insert({egress, rx}).second) {
      oss << "receiver (" << egress << "," << rx << ") listed twice";
      finding(out, Severity::kWarning, "failures", oss.str());
      continue;
    }
    ++dead_per_egress[egress];
  }
  for (const auto& [egress, dead] : dead_per_egress) {
    if (dead >= cfg.receivers) {
      std::ostringstream oss;
      oss << "egress " << egress << " has no surviving switching module";
      finding(out, Severity::kError, "failures", oss.str());
    } else if (dead > 0) {
      std::ostringstream oss;
      oss << "egress " << egress << " running on "
          << cfg.receivers - dead << " of " << cfg.receivers
          << " modules (redundancy exhausted on next failure)";
      finding(out, Severity::kInfo, "failures", oss.str());
    }
  }

  std::set<int> seen_fiber;
  for (const int f : failed_fibers) {
    std::ostringstream oss;
    if (f < 0 || f >= cfg.fibers) {
      oss << "failed fiber " << f << " outside the " << cfg.fibers
          << "-fiber broadcast stage";
      finding(out, Severity::kError, "failures", oss.str());
      continue;
    }
    if (!seen_fiber.insert(f).second) {
      oss << "fiber " << f << " listed twice";
      finding(out, Severity::kWarning, "failures", oss.str());
    }
  }
  if (static_cast<int>(seen_fiber.size()) >= cfg.fibers && cfg.fibers > 0)
    finding(out, Severity::kError, "failures",
            "every broadcast fiber is dark: no ingress can reach the "
            "crossbar");

  return out;
}

std::vector<Finding> validate_fault_plan(const core::OsmosisConfig& cfg,
                                         const faults::FaultPlan& plan,
                                         int parallel_paths) {
  std::vector<Finding> out;

  for (const faults::FaultEvent& e : plan.events()) {
    std::ostringstream oss;
    oss << faults::to_string(e.kind) << " at slot " << e.at_slot << ": ";
    if (e.rate < 0.0 || e.rate > 1.0) {
      oss << "rate " << e.rate << " is not a probability";
      finding(out, Severity::kError, "fault plan", oss.str());
      continue;
    }
    switch (e.kind) {
      case faults::FaultKind::kModuleDeath:
        if (e.a < 0 || e.a >= cfg.ports || e.b < 0 ||
            e.b >= cfg.receivers) {
          oss << "module (" << e.a << "," << e.b << ") outside the "
              << cfg.ports << "x" << cfg.receivers << " grid";
          finding(out, Severity::kError, "fault plan", oss.str());
        }
        break;
      case faults::FaultKind::kFiberCut:
        if (e.a < 0 || e.a >= cfg.fibers) {
          oss << "fiber " << e.a << " outside the " << cfg.fibers
              << "-fiber broadcast stage";
          finding(out, Severity::kError, "fault plan", oss.str());
        }
        break;
      case faults::FaultKind::kBurstErrors:
        if (e.a < -1 || e.a >= cfg.ports) {
          oss << "link " << e.a << " outside the " << cfg.ports
              << " ingress links (-1 = all)";
          finding(out, Severity::kError, "fault plan", oss.str());
        } else if (!e.transient()) {
          oss << "burst-error windows must be transient";
          finding(out, Severity::kError, "fault plan", oss.str());
        }
        break;
      case faults::FaultKind::kGrantCorruption:
        if (!e.transient()) {
          oss << "grant-corruption windows must be transient";
          finding(out, Severity::kError, "fault plan", oss.str());
        }
        break;
      case faults::FaultKind::kAdapterStall:
        if (e.a < 0 || e.a >= cfg.ports) {
          oss << "adapter " << e.a << " outside the " << cfg.ports
              << " ingress adapters";
          finding(out, Severity::kError, "fault plan", oss.str());
        } else if (!e.transient()) {
          oss << "adapter stalls must be transient";
          finding(out, Severity::kError, "fault plan", oss.str());
        }
        break;
      case faults::FaultKind::kPlaneFailure:
        if (e.a < 0) {
          oss << "plane index must be non-negative";
          finding(out, Severity::kError, "fault plan", oss.str());
        } else {
          oss << "plane " << e.a
              << " (only meaningful to multi-plane / fabric simulators)";
          finding(out, Severity::kInfo, "fault plan", oss.str());
        }
        break;
    }
  }

  // Overlapping module kills that leave an egress with no live module:
  // the scheduler masks the output and its VOQs back up for the whole
  // overlap — legal, but worth flagging.
  for (std::size_t i = 0; i < plan.events().size(); ++i) {
    const auto& a = plan.events()[i];
    if (a.kind != faults::FaultKind::kModuleDeath) continue;
    int concurrent = 1;
    for (std::size_t j = 0; j < plan.events().size(); ++j) {
      if (j == i) continue;
      const auto& b = plan.events()[j];
      if (b.kind != faults::FaultKind::kModuleDeath || b.a != a.a ||
          b.b == a.b)
        continue;
      const std::uint64_t a_end =
          a.transient() ? a.end_slot() : ~std::uint64_t{0};
      const std::uint64_t b_end =
          b.transient() ? b.end_slot() : ~std::uint64_t{0};
      if (b.at_slot < a_end && a.at_slot < b_end) ++concurrent;
    }
    if (concurrent >= cfg.receivers && cfg.receivers > 0) {
      std::ostringstream oss;
      oss << "egress " << a.a << " loses all " << cfg.receivers
          << " modules around slot " << a.at_slot
          << " (output fully masked until a repair)";
      finding(out, Severity::kWarning, "fault plan", oss.str());
    }
  }

  // Combined permanent plane/spine failures that cover EVERY parallel
  // path disconnect each leaf outright: no transient window ever
  // reopens them and adaptive routing has no survivor to steer to.
  if (parallel_paths > 0) {
    std::vector<int> dead;
    for (const auto& e : plan.events()) {
      if (e.kind != faults::FaultKind::kPlaneFailure || e.transient())
        continue;
      if (e.a >= 0 && e.a < parallel_paths &&
          std::find(dead.begin(), dead.end(), e.a) == dead.end())
        dead.push_back(e.a);
    }
    if (static_cast<int>(dead.size()) >= parallel_paths) {
      std::ostringstream oss;
      oss << "permanent plane failures cover all " << parallel_paths
          << " parallel paths: port 0 (and every other leaf port) is "
             "isolated with no surviving spine/plane";
      finding(out, Severity::kError, "fault plan", oss.str());
    }
  }

  if (plan.has_permanent_fault())
    finding(out, Severity::kInfo, "fault plan",
            "plan contains permanent faults: post-repair recovery "
            "metrics will stay open for them");

  return out;
}

namespace {

// Per-switch stage list in build-id order, mirroring the FT' recursion
// of topo::make_fat_tree without wiring anything: slice(l) = m pods of
// slice(l-1) followed by m^(l-1) level-l tops; the machine = radix pods
// of slice(L-1) followed by m^(L-1) top switches.
std::uint64_t tops_of_level(int m, int level) {
  std::uint64_t t = 1;
  for (int i = 1; i < level; ++i) t *= static_cast<std::uint64_t>(m);
  return t;
}

void slice_stages(int m, int l, std::vector<int>& out) {
  if (l == 1) {
    out.push_back(1);
    return;
  }
  for (int i = 0; i < m; ++i) slice_stages(m, l - 1, out);
  for (std::uint64_t j = 0; j < tops_of_level(m, l); ++j) out.push_back(l);
}

void fat_tree_stages(int radix, int levels, std::vector<int>& stages) {
  const int m = radix / 2;
  if (levels == 1) {
    stages.push_back(1);
    return;
  }
  for (int q = 0; q < radix; ++q) slice_stages(m, levels - 1, stages);
  for (std::uint64_t j = 0; j < tops_of_level(m, levels); ++j)
    stages.push_back(levels);
}

}  // namespace

std::vector<Finding> validate_topology(
    topo::TopoKind kind, int hosts,
    const std::vector<int>& failed_switches) {
  std::vector<Finding> out;

  const topo::Shape shape = topo::derive_shape(kind, hosts);
  if (!shape.ok) {
    finding(out, Severity::kError, "topology", shape.error);
    return out;  // every failure check needs the shape
  }

  switch (kind) {
    case topo::TopoKind::kOmega:
    case topo::TopoKind::kBanyan:
    case topo::TopoKind::kBenes: {
      if (!failed_switches.empty()) {
        std::ostringstream oss;
        oss << topo::to_string(kind)
            << " has a unique path per (src, dst): a permanent switch "
               "failure disconnects hosts — use a transient fault window "
               "instead";
        finding(out, Severity::kError, "topology", oss.str());
      }
      break;
    }
    case topo::TopoKind::kClos: {
      const int total = 2 * shape.r + shape.m;
      std::set<int> dead_middles;
      for (const int id : failed_switches) {
        std::ostringstream oss;
        if (id < 0 || id >= total) {
          oss << "failed switch " << id << " out of range (clos(m" << shape.m
              << ",n" << shape.n << ",r" << shape.r << ") has " << total
              << " switches)";
          finding(out, Severity::kError, "topology", oss.str());
        } else if (id < shape.r) {
          oss << "failed ingress switch " << id << " disconnects hosts "
              << id * shape.n << ".." << (id + 1) * shape.n - 1
              << " outright";
          finding(out, Severity::kError, "topology", oss.str());
        } else if (id >= shape.r + shape.m) {
          const int eg = id - shape.r - shape.m;
          oss << "failed egress switch " << id << " disconnects hosts "
              << eg * shape.n << ".." << (eg + 1) * shape.n - 1
              << " outright";
          finding(out, Severity::kError, "topology", oss.str());
        } else {
          dead_middles.insert(id);
        }
      }
      if (static_cast<int>(dead_middles.size()) >= shape.m && shape.m > 0) {
        std::ostringstream oss;
        oss << "all " << shape.m
            << " middle switches failed: no ingress can reach any egress";
        finding(out, Severity::kError, "topology", oss.str());
      }
      break;
    }
    case topo::TopoKind::kFatTree: {
      std::vector<int> stages;
      fat_tree_stages(shape.radix, shape.levels, stages);
      const int total = static_cast<int>(stages.size());
      std::set<int> dead_tops;
      int top_count = 0;
      for (const int st : stages)
        if (st == shape.levels) ++top_count;
      for (const int id : failed_switches) {
        std::ostringstream oss;
        if (id < 0 || id >= total) {
          oss << "failed switch " << id << " out of range (fat_tree(r"
              << shape.radix << ",L" << shape.levels << ") has " << total
              << " switches)";
          finding(out, Severity::kError, "topology", oss.str());
        } else if (stages[static_cast<std::size_t>(id)] == 1) {
          oss << "failed leaf switch " << id
              << " disconnects its hosts outright (leaves have no path "
                 "diversity)";
          finding(out, Severity::kError, "topology", oss.str());
        } else if (stages[static_cast<std::size_t>(id)] == shape.levels &&
                   shape.levels > 1) {
          dead_tops.insert(id);
        }
      }
      if (static_cast<int>(dead_tops.size()) >= top_count && top_count > 0 &&
          shape.levels > 1) {
        std::ostringstream oss;
        oss << "all " << top_count << " top-level switches failed: no "
            << "inter-pod path survives";
        finding(out, Severity::kError, "topology", oss.str());
      }
      break;
    }
  }
  return out;
}

std::vector<Finding> validate_flow_control(const topo::FcParams& fc,
                                           int buffer_cells,
                                           int trunk_cable_slots) {
  std::vector<Finding> out;
  if (trunk_cable_slots < 1)
    finding(out, Severity::kError, "flow control",
            "trunk cable delay must be >= 1 slot");
  if (fc.kind == topo::FcKind::kWormholeVc) {
    if (fc.lanes < 1 || fc.lane_flits < 1 || fc.flits_per_packet < 1) {
      std::ostringstream oss;
      oss << "wormhole VC shape must be positive (lanes " << fc.lanes
          << ", lane_flits " << fc.lane_flits << ", flits_per_packet "
          << fc.flits_per_packet << ")";
      finding(out, Severity::kError, "flow control", oss.str());
      return out;
    }
    // Per-lane credit round trip: flit flight down + credit flight back.
    if (fc.lane_flits < 2 * trunk_cable_slots + 1) {
      std::ostringstream oss;
      oss << "lane depth " << fc.lane_flits << " flits below the "
          << 2 * trunk_cable_slots + 1 << "-slot credit round trip of a "
          << trunk_cable_slots << "-slot trunk: a lone worm cannot "
          << "stream at line rate";
      finding(out, Severity::kWarning, "flow control", oss.str());
    }
    return out;
  }
  if (buffer_cells < 1) {
    finding(out, Severity::kError, "flow control",
            "cell flow control needs at least one buffer cell");
    return out;
  }
  // §IV.B buffer sizing: credit FC pays the full cable round trip;
  // relayed FC returns credits on the control path (next cell cycle),
  // so only the downstream data flight remains.
  const int rtt = fc.kind == topo::FcKind::kRelayed
                      ? trunk_cable_slots + 1
                      : 2 * trunk_cable_slots + 1;
  if (buffer_cells < rtt) {
    std::ostringstream oss;
    oss << buffer_cells << " buffer cells below the " << rtt
        << "-slot credit round trip of a " << trunk_cable_slots
        << "-slot trunk under " << topo::to_string(fc.kind)
        << " flow control: a single flow cannot sustain line rate";
    finding(out, Severity::kWarning, "flow control", oss.str());
  }
  return out;
}

bool config_ok(const std::vector<Finding>& findings) {
  for (const auto& f : findings)
    if (f.severity == Severity::kError) return false;
  return true;
}

std::string to_string(const Finding& f) {
  const char* sev = f.severity == Severity::kError     ? "ERROR"
                    : f.severity == Severity::kWarning ? "WARN "
                                                       : "INFO ";
  return std::string(sev) + " [" + f.check + "] " + f.detail;
}

}  // namespace osmosis::mgmt
