#include "src/mgmt/config_check.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "src/core/latency_budget.hpp"
#include "src/phy/crossbar_optical.hpp"
#include "src/phy/sync.hpp"
#include "src/util/units.hpp"

namespace osmosis::mgmt {
namespace {

void finding(std::vector<Finding>& out, Severity sev, std::string check,
             std::string detail) {
  out.push_back(Finding{sev, std::move(check), std::move(detail)});
}

}  // namespace

std::vector<Finding> validate_config(const core::OsmosisConfig& cfg) {
  std::vector<Finding> out;

  // Geometry.
  if (cfg.ports != cfg.fibers * cfg.wavelengths) {
    std::ostringstream oss;
    oss << cfg.ports << " ports != " << cfg.fibers << " fibers x "
        << cfg.wavelengths << " wavelengths";
    finding(out, Severity::kError, "geometry", oss.str());
    return out;  // everything downstream depends on this
  }
  if (cfg.receivers < 1 || cfg.receivers > 4)
    finding(out, Severity::kError, "geometry",
            "receivers per egress must be 1..4");

  // Cell timing.
  if (!cfg.cell.feasible()) {
    std::ostringstream oss;
    oss << "guard " << cfg.cell.guard.total_ns() << " ns + overheads leave "
        << "no payload in a " << cfg.cell.cycle_ns() << " ns cycle";
    finding(out, Severity::kError, "cell timing", oss.str());
  } else if (cfg.cell.user_efficiency() < 0.75) {
    std::ostringstream oss;
    oss << "effective user bandwidth "
        << cfg.cell.user_efficiency() * 100.0
        << " % below the 75 % requirement";
    finding(out, Severity::kWarning, "cell timing", oss.str());
  }

  // Optical power budget and crosstalk.
  if (out.empty() || config_ok(out)) {
    phy::BroadcastSelectCrossbar xbar(cfg.crossbar());
    const auto budget = xbar.power_budget();
    if (!budget.closes) {
      std::ostringstream oss;
      oss << "margin " << budget.margin_db << " dB below required "
          << cfg.crossbar().required_margin_db << " dB (split loss "
          << budget.split_loss_db << " dB)";
      finding(out, Severity::kError, "optical power budget", oss.str());
    }
    if (!xbar.crosstalk_acceptable()) {
      std::ostringstream oss;
      oss << "signal-to-crosstalk " << xbar.signal_to_crosstalk_db()
          << " dB below tolerance";
      finding(out, Severity::kError, "crosstalk", oss.str());
    }
  }

  // Synchronization window.
  {
    phy::SyncTreeParams tree;
    tree.levels = phy::sync_levels_needed(cfg.ports, tree.fanout);
    const auto sync = phy::analyze_sync_tree(tree);
    if (!phy::sync_fits_budget(sync, cfg.cell.guard)) {
      std::ostringstream oss;
      oss << "arrival window " << sync.arrival_window_ns
          << " ns exceeds the jitter allocation "
          << cfg.cell.guard.arrival_jitter_ns << " ns";
      finding(out, Severity::kWarning, "synchronization", oss.str());
    }
  }

  // Scheduler sizing (§VI.B: no more than four ASICs).
  {
    const int depth =
        cfg.scheduler_depth > 0
            ? cfg.scheduler_depth
            : util::ceil_log2(static_cast<std::uint64_t>(cfg.ports));
    const int asics = core::scheduler_asic_count(cfg.ports, depth);
    std::ostringstream oss;
    oss << "depth " << depth << " needs " << asics << " scheduler ASIC(s)";
    finding(out, asics <= 4 ? Severity::kInfo : Severity::kWarning,
            "scheduler sizing", oss.str());
  }

  return out;
}

std::vector<Finding> validate_failures(
    const core::OsmosisConfig& cfg,
    const std::vector<std::pair<int, int>>& failed_receivers,
    const std::vector<int>& failed_fibers) {
  std::vector<Finding> out;

  std::set<std::pair<int, int>> seen_rx;
  std::map<int, int> dead_per_egress;
  for (const auto& [egress, rx] : failed_receivers) {
    std::ostringstream oss;
    if (egress < 0 || egress >= cfg.ports || rx < 0 || rx >= cfg.receivers) {
      oss << "failed receiver (" << egress << "," << rx
          << ") outside the " << cfg.ports << "x" << cfg.receivers
          << " module grid";
      finding(out, Severity::kError, "failures", oss.str());
      continue;
    }
    if (!seen_rx.insert({egress, rx}).second) {
      oss << "receiver (" << egress << "," << rx << ") listed twice";
      finding(out, Severity::kWarning, "failures", oss.str());
      continue;
    }
    ++dead_per_egress[egress];
  }
  for (const auto& [egress, dead] : dead_per_egress) {
    if (dead >= cfg.receivers) {
      std::ostringstream oss;
      oss << "egress " << egress << " has no surviving switching module";
      finding(out, Severity::kError, "failures", oss.str());
    } else if (dead > 0) {
      std::ostringstream oss;
      oss << "egress " << egress << " running on "
          << cfg.receivers - dead << " of " << cfg.receivers
          << " modules (redundancy exhausted on next failure)";
      finding(out, Severity::kInfo, "failures", oss.str());
    }
  }

  std::set<int> seen_fiber;
  for (const int f : failed_fibers) {
    std::ostringstream oss;
    if (f < 0 || f >= cfg.fibers) {
      oss << "failed fiber " << f << " outside the " << cfg.fibers
          << "-fiber broadcast stage";
      finding(out, Severity::kError, "failures", oss.str());
      continue;
    }
    if (!seen_fiber.insert(f).second) {
      oss << "fiber " << f << " listed twice";
      finding(out, Severity::kWarning, "failures", oss.str());
    }
  }
  if (static_cast<int>(seen_fiber.size()) >= cfg.fibers && cfg.fibers > 0)
    finding(out, Severity::kError, "failures",
            "every broadcast fiber is dark: no ingress can reach the "
            "crossbar");

  return out;
}

std::vector<Finding> validate_fault_plan(const core::OsmosisConfig& cfg,
                                         const faults::FaultPlan& plan,
                                         int parallel_paths) {
  std::vector<Finding> out;

  for (const faults::FaultEvent& e : plan.events()) {
    std::ostringstream oss;
    oss << faults::to_string(e.kind) << " at slot " << e.at_slot << ": ";
    if (e.rate < 0.0 || e.rate > 1.0) {
      oss << "rate " << e.rate << " is not a probability";
      finding(out, Severity::kError, "fault plan", oss.str());
      continue;
    }
    switch (e.kind) {
      case faults::FaultKind::kModuleDeath:
        if (e.a < 0 || e.a >= cfg.ports || e.b < 0 ||
            e.b >= cfg.receivers) {
          oss << "module (" << e.a << "," << e.b << ") outside the "
              << cfg.ports << "x" << cfg.receivers << " grid";
          finding(out, Severity::kError, "fault plan", oss.str());
        }
        break;
      case faults::FaultKind::kFiberCut:
        if (e.a < 0 || e.a >= cfg.fibers) {
          oss << "fiber " << e.a << " outside the " << cfg.fibers
              << "-fiber broadcast stage";
          finding(out, Severity::kError, "fault plan", oss.str());
        }
        break;
      case faults::FaultKind::kBurstErrors:
        if (e.a < -1 || e.a >= cfg.ports) {
          oss << "link " << e.a << " outside the " << cfg.ports
              << " ingress links (-1 = all)";
          finding(out, Severity::kError, "fault plan", oss.str());
        } else if (!e.transient()) {
          oss << "burst-error windows must be transient";
          finding(out, Severity::kError, "fault plan", oss.str());
        }
        break;
      case faults::FaultKind::kGrantCorruption:
        if (!e.transient()) {
          oss << "grant-corruption windows must be transient";
          finding(out, Severity::kError, "fault plan", oss.str());
        }
        break;
      case faults::FaultKind::kAdapterStall:
        if (e.a < 0 || e.a >= cfg.ports) {
          oss << "adapter " << e.a << " outside the " << cfg.ports
              << " ingress adapters";
          finding(out, Severity::kError, "fault plan", oss.str());
        } else if (!e.transient()) {
          oss << "adapter stalls must be transient";
          finding(out, Severity::kError, "fault plan", oss.str());
        }
        break;
      case faults::FaultKind::kPlaneFailure:
        if (e.a < 0) {
          oss << "plane index must be non-negative";
          finding(out, Severity::kError, "fault plan", oss.str());
        } else {
          oss << "plane " << e.a
              << " (only meaningful to multi-plane / fabric simulators)";
          finding(out, Severity::kInfo, "fault plan", oss.str());
        }
        break;
    }
  }

  // Overlapping module kills that leave an egress with no live module:
  // the scheduler masks the output and its VOQs back up for the whole
  // overlap — legal, but worth flagging.
  for (std::size_t i = 0; i < plan.events().size(); ++i) {
    const auto& a = plan.events()[i];
    if (a.kind != faults::FaultKind::kModuleDeath) continue;
    int concurrent = 1;
    for (std::size_t j = 0; j < plan.events().size(); ++j) {
      if (j == i) continue;
      const auto& b = plan.events()[j];
      if (b.kind != faults::FaultKind::kModuleDeath || b.a != a.a ||
          b.b == a.b)
        continue;
      const std::uint64_t a_end =
          a.transient() ? a.end_slot() : ~std::uint64_t{0};
      const std::uint64_t b_end =
          b.transient() ? b.end_slot() : ~std::uint64_t{0};
      if (b.at_slot < a_end && a.at_slot < b_end) ++concurrent;
    }
    if (concurrent >= cfg.receivers && cfg.receivers > 0) {
      std::ostringstream oss;
      oss << "egress " << a.a << " loses all " << cfg.receivers
          << " modules around slot " << a.at_slot
          << " (output fully masked until a repair)";
      finding(out, Severity::kWarning, "fault plan", oss.str());
    }
  }

  // Combined permanent plane/spine failures that cover EVERY parallel
  // path disconnect each leaf outright: no transient window ever
  // reopens them and adaptive routing has no survivor to steer to.
  if (parallel_paths > 0) {
    std::vector<int> dead;
    for (const auto& e : plan.events()) {
      if (e.kind != faults::FaultKind::kPlaneFailure || e.transient())
        continue;
      if (e.a >= 0 && e.a < parallel_paths &&
          std::find(dead.begin(), dead.end(), e.a) == dead.end())
        dead.push_back(e.a);
    }
    if (static_cast<int>(dead.size()) >= parallel_paths) {
      std::ostringstream oss;
      oss << "permanent plane failures cover all " << parallel_paths
          << " parallel paths: port 0 (and every other leaf port) is "
             "isolated with no surviving spine/plane";
      finding(out, Severity::kError, "fault plan", oss.str());
    }
  }

  if (plan.has_permanent_fault())
    finding(out, Severity::kInfo, "fault plan",
            "plan contains permanent faults: post-repair recovery "
            "metrics will stay open for them");

  return out;
}

bool config_ok(const std::vector<Finding>& findings) {
  for (const auto& f : findings)
    if (f.severity == Severity::kError) return false;
  return true;
}

std::string to_string(const Finding& f) {
  const char* sev = f.severity == Severity::kError     ? "ERROR"
                    : f.severity == Severity::kWarning ? "WARN "
                                                       : "INFO ";
  return std::string(sev) + " [" + f.check + "] " + f.detail;
}

}  // namespace osmosis::mgmt
