#pragma once
// Configuration validation — the "configuring and testing the system"
// function of the §VI.A management software. Cross-checks an
// OsmosisConfig against every physical and architectural constraint the
// library models: geometry, cell-timing feasibility, effective
// bandwidth, optical power budget, crosstalk, synchronization window,
// scheduler sizing. Returns findings rather than aborting, so an
// operator can review a proposed configuration before deployment.

#include <string>
#include <utility>
#include <vector>

#include "src/core/config.hpp"
#include "src/faults/fault_plan.hpp"
#include "src/topo/flow_control.hpp"
#include "src/topo/topology.hpp"

namespace osmosis::mgmt {

enum class Severity { kInfo, kWarning, kError };

struct Finding {
  Severity severity;
  std::string check;
  std::string detail;
};

/// Runs every check; errors mean the configuration cannot work, warnings
/// flag requirement misses (e.g. user bandwidth below 75 %).
std::vector<Finding> validate_config(const core::OsmosisConfig& cfg);

/// Validates a static failure set (pre-run failed receivers / dark
/// fibers) against the geometry: indices in range, no duplicates, and
/// at least one surviving switching module per egress — losing both
/// modules of a dual-receiver egress makes that port unreachable.
std::vector<Finding> validate_failures(
    const core::OsmosisConfig& cfg,
    const std::vector<std::pair<int, int>>& failed_receivers,
    const std::vector<int>& failed_fibers);

/// Validates a runtime fault plan against the geometry: per-kind index
/// ranges, probability rates, windows that must be transient, and
/// overlapping module kills that would take a whole egress dark.
/// `parallel_paths` > 0 declares how many parallel planes/spines the
/// consuming simulator offers (fabric: radix/2 spines; multi-plane: the
/// plane count); combined PERMANENT plane failures covering every path
/// disconnect each leaf's uplink side outright — adaptive routing has
/// nowhere left to steer — and are rejected with an error naming the
/// isolated port.
std::vector<Finding> validate_fault_plan(const core::OsmosisConfig& cfg,
                                         const faults::FaultPlan& plan,
                                         int parallel_paths = 0);

/// Validates a topology-zoo scenario axis (generator kind x endpoint
/// count x construction-time failed switches) WITHOUT building it, so a
/// campaign/chaos grid can be reviewed before any simulator constructor
/// aborts. Shape mismatches surface derive_shape()'s error verbatim —
/// the "(m,n,r) / k-vs-port-count" messages naming the nearest valid
/// counts. Failed-switch checks cover what is decidable from the shape
/// alone: index ranges, zero-diversity switches (fat-tree leaves, Clos
/// ingress/egress, any MIN switch), and failure sets that kill every
/// parallel path (all Clos middles, every top-level fat-tree switch).
std::vector<Finding> validate_topology(
    topo::TopoKind kind, int hosts,
    const std::vector<int>& failed_switches = {});

/// Validates a flow-control configuration for the topo simulator:
/// positive buffer/VC shape parameters (errors), plus buffer-sizing
/// warnings when the per-link buffering cannot cover the credit round
/// trip of a `trunk_cable_slots` link (§IV.B: full line rate then needs
/// relayed FC or deeper buffers).
std::vector<Finding> validate_flow_control(const topo::FcParams& fc,
                                           int buffer_cells,
                                           int trunk_cable_slots = 4);

/// True when no finding is an error.
bool config_ok(const std::vector<Finding>& findings);

/// One-line rendering, for the status report / CLI.
std::string to_string(const Finding& f);

}  // namespace osmosis::mgmt
