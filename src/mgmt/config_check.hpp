#pragma once
// Configuration validation — the "configuring and testing the system"
// function of the §VI.A management software. Cross-checks an
// OsmosisConfig against every physical and architectural constraint the
// library models: geometry, cell-timing feasibility, effective
// bandwidth, optical power budget, crosstalk, synchronization window,
// scheduler sizing. Returns findings rather than aborting, so an
// operator can review a proposed configuration before deployment.

#include <string>
#include <vector>

#include "src/core/config.hpp"

namespace osmosis::mgmt {

enum class Severity { kInfo, kWarning, kError };

struct Finding {
  Severity severity;
  std::string check;
  std::string detail;
};

/// Runs every check; errors mean the configuration cannot work, warnings
/// flag requirement misses (e.g. user bandwidth below 75 %).
std::vector<Finding> validate_config(const core::OsmosisConfig& cfg);

/// True when no finding is an error.
bool config_ok(const std::vector<Finding>& findings);

/// One-line rendering, for the status report / CLI.
std::string to_string(const Finding& f);

}  // namespace osmosis::mgmt
