#include "src/chaos/generator.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "src/core/config.hpp"
#include "src/exec/campaign.hpp"
#include "src/mgmt/config_check.hpp"
#include "src/sim/rng.hpp"
#include "src/util/log.hpp"

namespace osmosis::chaos {
namespace {

/// Weighted pick: returns an index into `weights`.
std::size_t pick_weighted(sim::Rng& rng, const std::vector<int>& weights) {
  int total = 0;
  for (int w : weights) total += w;
  int roll = static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(total)));
  for (std::size_t i = 0; i < weights.size(); ++i) {
    roll -= weights[i];
    if (roll < 0) return i;
  }
  return weights.size() - 1;
}

/// Mirrors the fibers derivation in SwitchSim/EventSwitchSim: smallest
/// power of two whose square covers the port count.
int derive_fibers(int ports) {
  int fibers = 1;
  while (fibers * fibers < ports) fibers <<= 1;
  return fibers;
}

/// Count of switches in the stage TopoSim aims mid-run plane faults at
/// (top level of a folded tree, middle column of an unfolded MIN) —
/// mirrors the top_stage_ derivation in TopoSim's constructor.
int topo_fault_planes(const TrialSpec& spec) {
  const topo::Topology t = topo::make_topology(
      spec.topology, spec.ports, spec.routing, spec.failed_switches);
  int max_stage = 1;
  for (const topo::SwitchSpec& s : t.switches)
    max_stage = std::max(max_stage, s.stage);
  const int fault_stage = t.folded ? max_stage : (t.stages + 1) / 2;
  return static_cast<int>(t.stage_switches(fault_stage).size());
}

/// Management-layer vetting: would the plan plus this event still pass
/// mgmt::validate_fault_plan against a config mirroring the trial's
/// geometry?
bool event_valid(const TrialSpec& spec, const faults::FaultEvent& e) {
  core::OsmosisConfig mirror;
  mirror.ports = spec.sources();
  mirror.receivers = spec.receivers;
  if (spec.sim == TrialSim::kSwitch || spec.sim == TrialSim::kEventSwitch) {
    mirror.fibers = derive_fibers(spec.ports);
    mirror.wavelengths = spec.ports / mirror.fibers;
  }
  // Parallel-path count for the permanent-disconnection check: the
  // fabric's spines or the multi-plane's planes.
  int parallel_paths = 0;
  if (spec.sim == TrialSim::kFabric) parallel_paths = spec.ports / 2;
  if (spec.sim == TrialSim::kMultiPlane) parallel_paths = spec.planes;
  if (spec.sim == TrialSim::kTopo) parallel_paths = topo_fault_planes(spec);
  faults::FaultPlan probe = spec.plan;
  probe.add(e);
  return mgmt::config_ok(
      mgmt::validate_fault_plan(mirror, probe, parallel_paths));
}

bool windows_overlap(const faults::FaultEvent& a, const faults::FaultEvent& b) {
  const std::uint64_t a_end = a.transient() ? a.end_slot() : ~0ULL;
  const std::uint64_t b_end = b.transient() ? b.end_slot() : ~0ULL;
  return a.at_slot < b_end && b.at_slot < a_end;
}

/// True when the candidate overlaps an existing event of the same kind
/// on the same target. The injector composes *different* kinds on one
/// input (refcounted masks), but same-kind same-target nesting would
/// repair early on the first window's end — keep the grammar clear of it.
bool same_target_overlap(const faults::FaultPlan& plan,
                         const faults::FaultEvent& e) {
  for (const auto& prev : plan.events()) {
    if (prev.kind != e.kind) continue;
    if (prev.kind != faults::FaultKind::kGrantCorruption &&
        (prev.a != e.a || prev.b != e.b))
      continue;
    if (windows_overlap(prev, e)) return true;
  }
  return false;
}

/// Parallel-path guard: adding `e` must never leave an instant with
/// every plane/spine down (the re-steering simulators abort when there
/// is nothing to re-steer onto). Only kPlaneFailure events count —
/// fabric plans also carry adapter stalls, whose target indices range
/// over hosts, not spines. The down-set only changes at window begins,
/// so checking each begin instant suffices.
bool keeps_a_plane_alive(const faults::FaultPlan& plan,
                         const faults::FaultEvent& e, int planes) {
  std::vector<faults::FaultEvent> all;
  for (const auto& w : plan.events())
    if (w.kind == faults::FaultKind::kPlaneFailure) all.push_back(w);
  all.push_back(e);
  for (const auto& at : all) {
    std::vector<std::uint8_t> down(static_cast<std::size_t>(planes), 0);
    for (const auto& w : all) {
      const std::uint64_t end = w.transient() ? w.end_slot() : ~0ULL;
      if (w.at_slot <= at.at_slot && at.at_slot < end)
        down[static_cast<std::size_t>(w.a)] = 1;
    }
    int alive = 0;
    for (std::uint8_t d : down)
      if (!d) ++alive;
    if (alive == 0) return false;
  }
  return true;
}

/// Window placement shared by all grammars: begins mid-warmup through
/// late measurement, and transient windows always close by the end of
/// the measurement phase so the drain starts fault-free (a window still
/// open when the drain budget expires would strand cells and read as a
/// false liveness violation).
std::uint64_t roll_at_slot(sim::Rng& rng, const TrialSpec& spec) {
  const std::uint64_t lo = spec.warmup_slots / 2;
  const std::uint64_t hi = spec.warmup_slots + spec.measure_slots - 128;
  return lo + rng.uniform_int(hi - lo);
}

std::uint64_t roll_duration(sim::Rng& rng, const TrialSpec& spec,
                            std::uint64_t at_slot) {
  const std::uint64_t close_by = spec.warmup_slots + spec.measure_slots;
  const std::uint64_t room = close_by - at_slot;
  const std::uint64_t cap = std::min<std::uint64_t>(spec.measure_slots / 2,
                                                    room);
  if (cap <= 32) return std::max<std::uint64_t>(cap, 1);
  return 32 + rng.uniform_int(cap - 32);
}

/// Grammar for the two switch simulators: the five single-stage fault
/// kinds, weighted toward the data-path ones, with a small chance of a
/// permanent module death / fiber cut.
faults::FaultEvent roll_switch_event(sim::Rng& rng, const TrialSpec& spec) {
  static const std::vector<int> kWeights = {3, 2, 3, 2, 2};
  static const faults::FaultKind kKinds[] = {
      faults::FaultKind::kModuleDeath, faults::FaultKind::kFiberCut,
      faults::FaultKind::kBurstErrors, faults::FaultKind::kGrantCorruption,
      faults::FaultKind::kAdapterStall};
  faults::FaultEvent e;
  e.kind = kKinds[pick_weighted(rng, kWeights)];
  e.at_slot = roll_at_slot(rng, spec);
  e.duration_slots = roll_duration(rng, spec, e.at_slot);
  switch (e.kind) {
    case faults::FaultKind::kModuleDeath:
      e.a = static_cast<int>(rng.uniform_int(spec.ports));
      e.b = static_cast<int>(rng.uniform_int(spec.receivers));
      if (rng.bernoulli(0.12)) e.duration_slots = 0;  // permanent
      break;
    case faults::FaultKind::kFiberCut:
      e.a = static_cast<int>(rng.uniform_int(derive_fibers(spec.ports)));
      if (rng.bernoulli(0.12)) e.duration_slots = 0;  // permanent
      break;
    case faults::FaultKind::kBurstErrors:
      e.a = rng.bernoulli(0.2)
                ? -1
                : static_cast<int>(rng.uniform_int(spec.ports));
      e.rate = 0.05 + 0.55 * rng.uniform();
      break;
    case faults::FaultKind::kGrantCorruption:
      e.a = -1;
      e.rate = 0.05 + 0.45 * rng.uniform();
      break;
    case faults::FaultKind::kAdapterStall:
      e.a = static_cast<int>(rng.uniform_int(spec.ports));
      break;
    case faults::FaultKind::kPlaneFailure:
      break;  // unreachable
  }
  return e;
}

/// Grammar for the two-stage fabric: spine failures and host adapter
/// stalls (the only kinds its constructor accepts). Spine failures are
/// transient-only in legacy mode; adaptive routing unlocks a permanent
/// chance (the cross-event guard keeps a surviving spine) plus the
/// reroute-inducing revive/re-fail mixes that exercise the hysteresis.
faults::FaultEvent roll_fabric_event(sim::Rng& rng, const TrialSpec& spec) {
  const int spines = spec.ports / 2;  // radix/2 spine switches
  faults::FaultEvent e;
  e.kind = rng.bernoulli(0.6) ? faults::FaultKind::kPlaneFailure
                              : faults::FaultKind::kAdapterStall;
  e.at_slot = roll_at_slot(rng, spec);
  e.duration_slots = roll_duration(rng, spec, e.at_slot);
  if (e.kind == faults::FaultKind::kPlaneFailure) {
    e.a = static_cast<int>(rng.uniform_int(spines));
    if (spec.adaptive_routing && spines > 1 && rng.bernoulli(0.25))
      e.duration_slots = 0;  // permanent: adaptive routing carries it
  } else {
    e.a = static_cast<int>(rng.uniform_int(spec.sources()));
  }
  return e;
}

/// Grammar for the multi-plane fabric: plane failures only, with a small
/// permanent chance; the caller enforces the >= 1 live plane invariant.
faults::FaultEvent roll_multiplane_event(sim::Rng& rng,
                                         const TrialSpec& spec) {
  faults::FaultEvent e;
  e.kind = faults::FaultKind::kPlaneFailure;
  e.at_slot = roll_at_slot(rng, spec);
  e.duration_slots = roll_duration(rng, spec, e.at_slot);
  e.a = static_cast<int>(rng.uniform_int(spec.planes));
  if (spec.planes > 1 && rng.bernoulli(0.10)) e.duration_slots = 0;
  return e;
}

/// Grammar for the topology zoo: transient freezes of fault-stage
/// switches (TopoSim rejects permanent mid-run faults — construction-
/// time failed_switches cover the permanent case) plus host adapter
/// stalls, the only two kinds its constructor accepts.
faults::FaultEvent roll_topo_event(sim::Rng& rng, const TrialSpec& spec,
                                   int planes) {
  faults::FaultEvent e;
  e.kind = rng.bernoulli(0.6) ? faults::FaultKind::kPlaneFailure
                              : faults::FaultKind::kAdapterStall;
  e.at_slot = roll_at_slot(rng, spec);
  e.duration_slots = roll_duration(rng, spec, e.at_slot);
  if (e.kind == faults::FaultKind::kPlaneFailure)
    e.a = static_cast<int>(rng.uniform_int(planes));
  else
    e.a = static_cast<int>(rng.uniform_int(spec.sources()));
  return e;
}

}  // namespace

const char* to_string(TrialSim s) {
  switch (s) {
    case TrialSim::kSwitch:
      return "switch";
    case TrialSim::kEventSwitch:
      return "event-switch";
    case TrialSim::kFabric:
      return "fabric";
    case TrialSim::kMultiPlane:
      return "multiplane";
    case TrialSim::kTopo:
      return "topo";
  }
  return "unknown";
}

TrialSim trial_sim_from_string(const std::string& name) {
  for (TrialSim s : {TrialSim::kSwitch, TrialSim::kEventSwitch,
                     TrialSim::kFabric, TrialSim::kMultiPlane,
                     TrialSim::kTopo}) {
    if (name == to_string(s)) return s;
  }
  OSMOSIS_REQUIRE(false, "unknown trial simulator name: " << name);
  return TrialSim::kSwitch;
}

const char* scheduler_name(sw::SchedulerKind k) {
  switch (k) {
    case sw::SchedulerKind::kIslip:
      return "islip";
    case sw::SchedulerKind::kPim:
      return "pim";
    case sw::SchedulerKind::kPipelinedIslip:
      return "pislip";
    case sw::SchedulerKind::kFlppr:
      return "flppr";
    case sw::SchedulerKind::kTdm:
      return "tdm";
    case sw::SchedulerKind::kWfa:
      return "wfa";
  }
  return "unknown";
}

sw::SchedulerKind scheduler_from_name(const std::string& name) {
  for (sw::SchedulerKind k :
       {sw::SchedulerKind::kIslip, sw::SchedulerKind::kPim,
        sw::SchedulerKind::kPipelinedIslip, sw::SchedulerKind::kFlppr,
        sw::SchedulerKind::kTdm, sw::SchedulerKind::kWfa}) {
    if (name == scheduler_name(k)) return k;
  }
  OSMOSIS_REQUIRE(false, "unknown scheduler name: " << name);
  return sw::SchedulerKind::kFlppr;
}

int TrialSpec::sources() const {
  return sim == TrialSim::kFabric ? ports * ports / 2 : ports;
}

std::string TrialSpec::label() const {
  std::ostringstream os;
  os << 't' << std::setw(4) << std::setfill('0') << trial_index << ' '
     << to_string(sim) << '/' << scheduler_name(scheduler) << " p" << ports;
  if (sim == TrialSim::kMultiPlane) os << " x" << planes;
  if (sim == TrialSim::kTopo)
    os << ' ' << topo::to_string(topology) << '/'
       << topo::to_string(flow_control) << '/' << topo::to_string(routing);
  os << " r" << receivers << ' ' << (bursty ? "bursty" : "uniform") << " l"
     << std::fixed << std::setprecision(2) << load << " w" << warmup_slots
     << " m" << measure_slots << " faults=" << plan.size();
  if (adaptive_routing) os << " adaptive";
  if (admission) os << " admit";
  if (!failed_switches.empty()) os << " dead_sw=" << failed_switches.size();
  if (!muted_sources.empty()) os << " muted=" << muted_sources.size();
  if (defect != Defect::kNone) os << " defect=" << to_string(defect);
  return os.str();
}

TrialSpec generate_trial(std::uint64_t campaign_seed,
                         std::uint64_t trial_index) {
  TrialSpec spec;
  spec.campaign_seed = campaign_seed;
  spec.trial_index = trial_index;
  spec.seed = exec::derive_job_seed(campaign_seed, trial_index);
  sim::Rng rng(spec.seed);

  // Simulator kind, then geometry from its legal menu.
  static const TrialSim kSims[] = {TrialSim::kSwitch, TrialSim::kEventSwitch,
                                   TrialSim::kFabric, TrialSim::kMultiPlane,
                                   TrialSim::kTopo};
  spec.sim = kSims[pick_weighted(rng, {7, 4, 5, 4, 5})];
  switch (spec.sim) {
    case TrialSim::kSwitch: {
      static const int kPorts[] = {8, 16, 32};
      spec.ports = kPorts[pick_weighted(rng, {1, 2, 1})];
      spec.receivers = rng.bernoulli(0.3) ? 1 : 2;
      static const sw::SchedulerKind kScheds[] = {
          sw::SchedulerKind::kFlppr, sw::SchedulerKind::kIslip,
          sw::SchedulerKind::kPim,   sw::SchedulerKind::kPipelinedIslip,
          sw::SchedulerKind::kWfa,   sw::SchedulerKind::kTdm};
      spec.scheduler = kScheds[pick_weighted(rng, {3, 2, 2, 2, 1, 1})];
      break;
    }
    case TrialSim::kEventSwitch: {
      // The event sim pays per-event overhead; keep it on the small
      // geometries so trials stay sub-second.
      spec.ports = rng.bernoulli(0.5) ? 8 : 16;
      spec.receivers = rng.bernoulli(0.3) ? 1 : 2;
      static const sw::SchedulerKind kScheds[] = {
          sw::SchedulerKind::kFlppr, sw::SchedulerKind::kIslip,
          sw::SchedulerKind::kPim, sw::SchedulerKind::kPipelinedIslip};
      spec.scheduler = kScheds[pick_weighted(rng, {3, 2, 2, 2})];
      break;
    }
    case TrialSim::kFabric: {
      // `ports` is the switch radix; hosts = radix^2/2.
      spec.ports = rng.bernoulli(0.65) ? 4 : 8;
      spec.receivers = 1;
      // Immediate-issue kinds only (credit check must hold at issue).
      static const sw::SchedulerKind kScheds[] = {
          sw::SchedulerKind::kIslip, sw::SchedulerKind::kPim,
          sw::SchedulerKind::kTdm, sw::SchedulerKind::kWfa};
      spec.scheduler = kScheds[pick_weighted(rng, {3, 2, 1, 1})];
      // Graceful degradation: half the fabric trials run fault-aware
      // adaptive routing, and half of those also shed at the sources.
      spec.adaptive_routing = rng.bernoulli(0.5);
      spec.admission = spec.adaptive_routing && rng.bernoulli(0.5);
      break;
    }
    case TrialSim::kMultiPlane: {
      spec.ports = rng.bernoulli(0.5) ? 8 : 16;
      spec.planes = 2 + static_cast<int>(rng.uniform_int(3));
      spec.receivers = rng.bernoulli(0.3) ? 2 : 1;
      static const sw::SchedulerKind kScheds[] = {
          sw::SchedulerKind::kFlppr, sw::SchedulerKind::kIslip,
          sw::SchedulerKind::kPim, sw::SchedulerKind::kPipelinedIslip};
      spec.scheduler = kScheds[pick_weighted(rng, {3, 2, 2, 2})];
      break;
    }
    case TrialSim::kTopo: {
      // `ports` is the host count; 32 is the smallest shape every
      // generator accepts (128 keeps the bigger recursions honest).
      spec.ports = rng.bernoulli(0.75) ? 32 : 128;
      spec.receivers = 1;
      static const topo::TopoKind kTopos[] = {
          topo::TopoKind::kFatTree, topo::TopoKind::kClos,
          topo::TopoKind::kOmega, topo::TopoKind::kBanyan,
          topo::TopoKind::kBenes};
      spec.topology = kTopos[pick_weighted(rng, {3, 3, 2, 2, 2})];
      static const topo::FcKind kFcs[] = {topo::FcKind::kCredit,
                                          topo::FcKind::kRelayed,
                                          topo::FcKind::kWormholeVc};
      spec.flow_control = kFcs[pick_weighted(rng, {3, 2, 3})];
      spec.routing = rng.bernoulli(0.3) ? topo::RouteKind::kHashSpread
                                        : topo::RouteKind::kDestMod;
      // Immediate-issue kinds only (credit check must hold at issue;
      // wormhole routes per-flit and ignores the scheduler entirely).
      static const sw::SchedulerKind kScheds[] = {
          sw::SchedulerKind::kIslip, sw::SchedulerKind::kPim,
          sw::SchedulerKind::kTdm, sw::SchedulerKind::kWfa};
      spec.scheduler = kScheds[pick_weighted(rng, {3, 2, 1, 1})];
      // Construction-time permanent failure where path diversity exists
      // (fat-tree non-leaf switches, Clos middles): roll a switch id and
      // keep it only when the management validator accepts the wounded
      // shape. A rejected roll simply runs the trial fault-free there.
      if ((spec.topology == topo::TopoKind::kFatTree ||
           spec.topology == topo::TopoKind::kClos) &&
          rng.bernoulli(0.35)) {
        const topo::Topology whole =
            topo::make_topology(spec.topology, spec.ports);
        const int id =
            static_cast<int>(rng.uniform_int(whole.switch_count()));
        if (mgmt::config_ok(
                mgmt::validate_topology(spec.topology, spec.ports, {id})))
          spec.failed_switches = {id};
      }
      break;
    }
  }

  // Traffic mix. Loads are quantized to 0.05 steps for readable labels;
  // the multi-plane per-plane-line load and the fabric host load run a
  // little lower so faulted trials still drain inside the budget.
  spec.bursty = rng.bernoulli(0.35);
  switch (spec.sim) {
    case TrialSim::kFabric:
      spec.load = 0.30 + 0.05 * static_cast<double>(rng.uniform_int(10));
      break;
    case TrialSim::kMultiPlane:
      spec.load = 0.20 + 0.05 * static_cast<double>(rng.uniform_int(9));
      break;
    case TrialSim::kTopo:
      // Deep MINs saturate well below a single stage (bench_vi_c shows
      // wormhole Benes peaking near 0.26) — keep the offered load under
      // saturation so faulted backlogs still drain inside the budget.
      spec.load = spec.flow_control == topo::FcKind::kWormholeVc
                      ? 0.10 + 0.05 * static_cast<double>(rng.uniform_int(4))
                      : 0.15 + 0.05 * static_cast<double>(rng.uniform_int(8));
      break;
    default:
      spec.load = 0.30 + 0.05 * static_cast<double>(rng.uniform_int(11));
      break;
  }
  static const double kBursts[] = {4.0, 8.0, 16.0};
  spec.mean_burst = kBursts[rng.uniform_int(3)];

  // Horizons.
  spec.warmup_slots = rng.bernoulli(0.5) ? 128 : 256;
  spec.measure_slots = 1'024 * (2 + rng.uniform_int(3));

  // Fault schedule: 0-4 events from the per-simulator grammar, each
  // vetted by the management validator; a candidate that fails vetting
  // (or violates the cross-event constraints) is re-rolled a fixed
  // number of times so generation stays deterministic.
  const std::size_t kCountWeightsIdx =
      pick_weighted(rng, {1, 3, 3, 2, 1});  // 0..4 events
  const int topo_planes =
      spec.sim == TrialSim::kTopo ? topo_fault_planes(spec) : 0;
  for (std::size_t i = 0; i < kCountWeightsIdx; ++i) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      faults::FaultEvent e;
      switch (spec.sim) {
        case TrialSim::kSwitch:
        case TrialSim::kEventSwitch:
          e = roll_switch_event(rng, spec);
          break;
        case TrialSim::kFabric:
          e = roll_fabric_event(rng, spec);
          break;
        case TrialSim::kMultiPlane:
          e = roll_multiplane_event(rng, spec);
          break;
        case TrialSim::kTopo:
          e = roll_topo_event(rng, spec, topo_planes);
          break;
      }
      if (same_target_overlap(spec.plan, e)) continue;
      if (spec.sim == TrialSim::kMultiPlane &&
          !keeps_a_plane_alive(spec.plan, e, spec.planes))
        continue;
      // Topology zoo: a freeze is backpressure, not loss, but a window
      // with the whole fault stage frozen stalls the machine and burns
      // the drain budget — keep one stage switch running at all times.
      if (spec.sim == TrialSim::kTopo &&
          e.kind == faults::FaultKind::kPlaneFailure &&
          !keeps_a_plane_alive(spec.plan, e, topo_planes))
        continue;
      // Adaptive fabric: never leave an instant with every spine out —
      // with zero survivors nothing re-steers and permanents would make
      // the strand permanent.
      if (spec.sim == TrialSim::kFabric && spec.adaptive_routing &&
          e.kind == faults::FaultKind::kPlaneFailure &&
          !keeps_a_plane_alive(spec.plan, e, spec.ports / 2))
        continue;
      if (!event_valid(spec, e)) continue;
      spec.plan.add(e);
      break;
    }
  }
  std::uint64_t mix = spec.seed;  // splitmix64 advances its state in place
  spec.plan.seeded(sim::splitmix64(mix) ^ 0x05'0A'7EULL);

  // Permanent faults normally strand cells, so the drain can never
  // terminate on empty queues — cap the budget burned walking to it.
  // The adaptive fabric is the exception: it drains a permanent spine
  // cut completely, just slower, so its budget is DERIVED from the
  // surviving capacity (scale the fault-free budget by total/surviving
  // spines). The two-stage fabric's fault-free budget is bigger to begin
  // with: a TDM timetable drains a deep faulted backlog at ~1/radix
  // cells per slot per input.
  if (spec.sim == TrialSim::kFabric) {
    const int spines = spec.ports / 2;
    int dead = 0;
    std::vector<std::uint8_t> seen(static_cast<std::size_t>(spines), 0);
    for (const auto& e : spec.plan.events())
      if (e.kind == faults::FaultKind::kPlaneFailure && !e.transient() &&
          !seen[static_cast<std::size_t>(e.a)]) {
        seen[static_cast<std::size_t>(e.a)] = 1;
        ++dead;
      }
    spec.drain_max_slots =
        80'000ULL * static_cast<std::uint64_t>(spines) /
        static_cast<std::uint64_t>(std::max(1, spines - dead));
  } else if (spec.sim == TrialSim::kTopo) {
    // Every topo fault is transient (construction-time failed_switches
    // are routed around, not drained around), so the run always empties
    // — but wormhole backlogs behind a long freeze clear one flit per
    // lane per slot, so give the zoo the campaign driver's budget.
    spec.drain_max_slots = 50'000;
  } else if (spec.plan.has_permanent_fault()) {
    spec.drain_max_slots = 4'096;
  } else {
    spec.drain_max_slots = 20'000;
  }
  return spec;
}

}  // namespace osmosis::chaos
