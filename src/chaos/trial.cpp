#include "src/chaos/trial.hpp"

#include <memory>
#include <utility>

#include "src/exec/campaign.hpp"
#include "src/fabric/fabric_sim.hpp"
#include "src/fabric/multiplane.hpp"
#include "src/sim/traffic.hpp"
#include "src/sw/event_switch_sim.hpp"
#include "src/sw/switch_sim.hpp"
#include "src/topo/topo_sim.hpp"

namespace osmosis::chaos {
namespace {

/// Masks a set of sources out of an inner generator by sampling it and
/// discarding the arrival. Sampling (rather than skipping) keeps the
/// inner RNG stream aligned, so every unmuted source sees exactly the
/// arrivals it saw before the mask — the property the shrinker's
/// source-reduction pass depends on.
class MaskedTraffic final : public sim::TrafficGen {
 public:
  MaskedTraffic(std::unique_ptr<sim::TrafficGen> inner,
                const std::vector<int>& muted)
      : inner_(std::move(inner)),
        muted_(static_cast<std::size_t>(inner_->ports()), 0) {
    for (int m : muted)
      if (m >= 0 && m < inner_->ports())
        muted_[static_cast<std::size_t>(m)] = 1;
  }

  int ports() const override { return inner_->ports(); }
  double offered_load() const override { return inner_->offered_load(); }
  bool sample(int input, sim::Arrival& out) override {
    const bool got = inner_->sample(input, out);
    return muted_[static_cast<std::size_t>(input)] ? false : got;
  }

 private:
  std::unique_ptr<sim::TrafficGen> inner_;
  std::vector<std::uint8_t> muted_;
};

std::unique_ptr<sim::TrafficGen> make_traffic(const TrialSpec& spec,
                                              int sources,
                                              std::uint64_t seed,
                                              double load_override = -1.0) {
  const double load = load_override < 0.0 ? spec.load : load_override;
  std::unique_ptr<sim::TrafficGen> gen =
      spec.bursty
          ? sim::make_bursty(sources, load, spec.mean_burst, seed)
          : sim::make_uniform(sources, load, seed);
  if (!spec.muted_sources.empty())
    gen = std::make_unique<MaskedTraffic>(std::move(gen),
                                          spec.muted_sources);
  return gen;
}

MonitorConfig monitor_config(const TrialSpec& spec) {
  MonitorConfig mon;
  mon.deadlock_slots = spec.deadlock_slots;
  mon.defect = spec.defect;
  mon.defect_period = spec.defect_period;
  return mon;
}

TrialResult from_monitor(const InvariantMonitor& m) {
  TrialResult r;
  r.violated = !m.ok();
  r.violations = m.violations();
  r.checks = m.checks();
  r.offered = m.offered_cells();
  r.delivered = m.delivered_cells();
  r.first_violation_slot = m.first_violation_slot();
  r.first_violation = m.first_violation();
  r.invariant = violation_invariant(r.first_violation);
  r.violation_log = m.violation_log();
  return r;
}

}  // namespace

std::string violation_invariant(const std::string& message) {
  const auto space = message.find(' ');
  if (space == std::string::npos) return "";
  const auto colon = message.find(':', space);
  if (colon == std::string::npos) return "";
  return message.substr(space + 1, colon - space - 1);
}

TrialResult run_trial(const TrialSpec& spec) {
  const std::uint64_t traffic_seed = exec::derive_job_seed(spec.seed, 1);
  switch (spec.sim) {
    case TrialSim::kSwitch: {
      sw::SwitchSimConfig c;
      c.ports = spec.ports;
      c.sched.kind = spec.scheduler;
      c.sched.receivers = spec.receivers;
      c.sched.seed = exec::derive_job_seed(spec.seed, 2);
      c.warmup_slots = spec.warmup_slots;
      c.measure_slots = spec.measure_slots;
      c.drain_max_slots = spec.drain_max_slots;
      c.fault_plan = spec.plan;
      c.monitor = monitor_config(spec);
      sw::SwitchSim sim(c, make_traffic(spec, spec.sources(), traffic_seed));
      sim.run();
      return from_monitor(sim.monitor());
    }
    case TrialSim::kEventSwitch: {
      sw::EventSwitchConfig c;
      c.ports = spec.ports;
      c.sched.kind = spec.scheduler;
      c.sched.receivers = spec.receivers;
      c.sched.seed = exec::derive_job_seed(spec.seed, 2);
      c.warmup_ns = static_cast<double>(spec.warmup_slots) * c.cell_ns;
      c.measure_ns = static_cast<double>(spec.measure_slots) * c.cell_ns;
      c.drain_max_cycles = spec.drain_max_slots;
      c.fault_plan = spec.plan;
      c.monitor = monitor_config(spec);
      sw::EventSwitchSim sim(c,
                             make_traffic(spec, spec.sources(), traffic_seed));
      sim.run();
      return from_monitor(sim.monitor());
    }
    case TrialSim::kFabric: {
      fabric::FabricSimConfig c;
      c.radix = spec.ports;
      c.scheduler = spec.scheduler;
      c.warmup_slots = spec.warmup_slots;
      c.measure_slots = spec.measure_slots;
      c.drain_max_slots = spec.drain_max_slots;
      c.fault_plan = spec.plan;
      c.monitor = monitor_config(spec);
      c.adaptive_routing = spec.adaptive_routing;
      c.admission.enabled = spec.admission;
      fabric::FabricSim sim(c,
                            make_traffic(spec, spec.sources(), traffic_seed));
      sim.run();
      return from_monitor(sim.monitor());
    }
    case TrialSim::kMultiPlane: {
      fabric::MultiPlaneConfig c;
      c.ports = spec.ports;
      c.planes = spec.planes;
      c.scheduler = spec.scheduler;
      c.receivers = spec.receivers;
      c.warmup_slots = spec.warmup_slots;
      c.measure_slots = spec.measure_slots;
      c.drain_max_slots = spec.drain_max_slots;
      c.fault_plan = spec.plan;
      c.monitor = monitor_config(spec);
      std::vector<std::unique_ptr<sim::TrafficGen>> per_plane;
      for (int p = 0; p < spec.planes; ++p) {
        per_plane.push_back(make_traffic(
            spec, spec.ports,
            exec::derive_job_seed(spec.seed,
                                  16 + static_cast<std::uint64_t>(p))));
      }
      fabric::MultiPlaneSim sim(c, std::move(per_plane));
      sim.run();
      return from_monitor(sim.monitor());
    }
    case TrialSim::kTopo: {
      topo::TopoSimConfig c;
      c.topology = spec.topology;
      c.hosts = spec.ports;  // topo trials: the ports axis is hosts
      c.routing = spec.routing;
      c.failed_switches = spec.failed_switches;
      c.fc.kind = spec.flow_control;
      c.scheduler = spec.scheduler;
      c.warmup_slots = spec.warmup_slots;
      c.measure_slots = spec.measure_slots;
      c.drain_max_slots = spec.drain_max_slots;
      c.fault_plan = spec.plan;
      c.monitor = monitor_config(spec);
      // spec.load is per-host cell load; wormhole injects whole packets,
      // so scale the packet probability to keep the flit load matched.
      const double p = spec.flow_control == topo::FcKind::kWormholeVc
                           ? spec.load / c.fc.flits_per_packet
                           : spec.load;
      topo::TopoSim sim(
          c, make_traffic(spec, spec.sources(), traffic_seed, p));
      sim.run();
      return from_monitor(sim.monitor());
    }
  }
  return TrialResult{};
}

}  // namespace osmosis::chaos
