#pragma once
// Seeded property-based trial generation for the chaos soak subsystem
// (DESIGN.md §12). generate_trial(campaign_seed, trial_index) derives a
// complete, valid randomized experiment — simulator kind, geometry,
// scheduler, traffic mix, horizons, and a weighted-grammar FaultPlan —
// deterministically from the pair, using the same SplitMix64 job-seed
// derivation as the campaign runner. The same (seed, index) always
// yields byte-identical TrialSpecs regardless of thread count or
// generation order, which is what makes soak failures replayable.
//
// Validity is enforced twice: the per-simulator grammars only emit
// events each constructor accepts (kind whitelists, index ranges,
// transient-only kinds, never all multi-planes down at once), and every
// candidate event is additionally vetted through the management layer's
// mgmt::validate_fault_plan before being committed to the plan.

#include <cstdint>
#include <string>
#include <vector>

#include "src/chaos/monitor.hpp"
#include "src/faults/fault_plan.hpp"
#include "src/sw/scheduler.hpp"
#include "src/topo/flow_control.hpp"
#include "src/topo/topology.hpp"

namespace osmosis::chaos {

/// Which simulator a trial drives. Distinct from exec::SimKind because
/// chaos trials also cover the multi-plane fabric (which campaigns do
/// not) and the mapping must stay stable for repro files.
enum class TrialSim : std::uint8_t {
  kSwitch = 0,       // sw::SwitchSim, slot-accurate single stage
  kEventSwitch = 1,  // sw::EventSwitchSim, event-driven ns timeline
  kFabric = 2,       // fabric::FabricSim, two-stage leaf/spine + credits
  kMultiPlane = 3,   // fabric::MultiPlaneSim, striped planes + resequencer
  kTopo = 4,         // topo::TopoSim, topology x flow-control zoo
};

const char* to_string(TrialSim s);
/// Inverse of to_string; aborts (OSMOSIS_REQUIRE) on an unknown name.
TrialSim trial_sim_from_string(const std::string& name);

/// Stable scheduler-kind names for labels and osmosis.repro.v1 files.
const char* scheduler_name(sw::SchedulerKind k);
sw::SchedulerKind scheduler_from_name(const std::string& name);

/// One fully specified randomized experiment. Everything a simulator
/// needs is here, so a spec round-tripped through a repro file replays
/// bit-identically.
struct TrialSpec {
  std::uint64_t campaign_seed = 1;
  std::uint64_t trial_index = 0;
  /// exec::derive_job_seed(campaign_seed, trial_index); seeds traffic,
  /// randomized schedulers, and the injector's error-roll stream.
  std::uint64_t seed = 0;

  TrialSim sim = TrialSim::kSwitch;
  // Geometry. `ports` is host ports for the switch kinds and the
  // multi-plane fabric, and the switch radix for the two-stage fabric
  // (whose host count is radix^2/2).
  int ports = 16;
  int planes = 4;     // multi-plane only
  int receivers = 2;  // switch kinds + multi-plane
  sw::SchedulerKind scheduler = sw::SchedulerKind::kFlppr;

  // Topology-zoo axes (kTopo only; `ports` is the host count there).
  // `failed_switches` are construction-time permanent failures, only
  // rolled where the topology can route around them (fat-tree non-leaf
  // switches, Clos middles) and vetted by mgmt::validate_topology.
  topo::TopoKind topology = topo::TopoKind::kFatTree;
  topo::FcKind flow_control = topo::FcKind::kCredit;
  topo::RouteKind routing = topo::RouteKind::kDestMod;
  std::vector<int> failed_switches;

  // Graceful degradation (two-stage fabric only): fault-aware adaptive
  // routing unlocks permanent spine faults in the grammar, and admission
  // additionally sheds at the sources while capacity is reduced (the
  // monitor's shed accounting keeps conservation exact either way).
  bool adaptive_routing = false;
  bool admission = false;

  // Traffic mix.
  bool bursty = false;
  double load = 0.6;       // per source (per plane line for multi-plane)
  double mean_burst = 8.0; // bursty only

  // Horizons, in cell slots (the event sim converts to ns internally).
  std::uint64_t warmup_slots = 256;
  std::uint64_t measure_slots = 4'096;
  std::uint64_t drain_max_slots = 20'000;

  // Seeded fault schedule (already .seeded() from `seed`).
  faults::FaultPlan plan;

  // Shrinker state: traffic sources whose arrivals are masked (sampled
  // then discarded, so every other source's stream is untouched).
  std::vector<int> muted_sources;

  // Deliberate accounting defect (test hook; kNone in real soaks).
  Defect defect = Defect::kNone;
  std::uint64_t defect_period = 7;

  // Liveness watchdog horizon handed to the monitor.
  std::uint64_t deadlock_slots = 2'048;

  /// Number of traffic endpoints (== ports except the two-stage fabric,
  /// where it is the host count radix^2/2).
  int sources() const;

  /// Human-readable one-liner: "t0042 switch/flppr p16 r2 uniform
  /// l0.60 w256 m4096 faults=2".
  std::string label() const;
};

/// Derives trial `trial_index` of the campaign seeded `campaign_seed`.
/// Pure function of its arguments.
TrialSpec generate_trial(std::uint64_t campaign_seed,
                         std::uint64_t trial_index);

}  // namespace osmosis::chaos
