#pragma once
// osmosis.repro.v1 — the minimal-repro interchange format produced by
// the chaos shrinker and replayed by the `chaos_repro` tool. A repro
// file is a complete, self-contained TrialSpec (geometry, traffic,
// horizons, fault schedule, muted sources, optional armed defect) plus
// the verdict the producer observed, so a replay can assert it
// reproduces the same invariant violation.
//
// 64-bit seeds are serialized as decimal strings: JSON numbers are
// doubles and would silently round anything above 2^53.

#include <cstdint>
#include <string>

#include "src/chaos/generator.hpp"
#include "src/chaos/trial.hpp"

namespace osmosis::chaos {

inline constexpr const char* kReproFormat = "osmosis.repro.v1";

struct Repro {
  TrialSpec spec;
  // Verdict observed by the producer (the shrinker's final run).
  bool expected_violated = false;
  std::string expected_invariant;        // invariant token, "" when clean
  std::uint64_t expected_violations = 0; // informational
  std::string note;                      // freeform provenance line
};

/// Serializes to a pretty-printed osmosis.repro.v1 document.
std::string repro_to_json(const Repro& r, int indent = 2);

/// Parses a document; aborts (OSMOSIS_REQUIRE) on a malformed file or a
/// format marker other than osmosis.repro.v1.
Repro repro_from_json(const std::string& text);

/// File convenience wrappers (abort on I/O failure).
void write_repro_file(const std::string& path, const Repro& r);
Repro read_repro_file(const std::string& path);

/// Replays the repro and reports whether the observed verdict matches
/// the expected one (same violated flag; same invariant token when
/// violated). `out` receives the replay's result.
bool replay_matches(const Repro& r, TrialResult& out);

}  // namespace osmosis::chaos
