#pragma once
// Chaos trial execution: materialize a TrialSpec into the simulator it
// names, run it to completion, and distill the InvariantMonitor's
// verdict into a TrialResult. run_trial is a pure function of the spec
// (all randomness flows from spec.seed), which is what lets the
// shrinker re-run mutated specs and trust that a reproduced violation
// is the same violation.

#include <cstdint>
#include <string>
#include <vector>

#include "src/chaos/generator.hpp"

namespace osmosis::chaos {

struct TrialResult {
  bool violated = false;
  std::uint64_t violations = 0;
  std::uint64_t checks = 0;       // per-slot invariant evaluations
  std::uint64_t offered = 0;      // cells, all phases
  std::uint64_t delivered = 0;
  std::uint64_t first_violation_slot = ~0ULL;
  std::string first_violation;    // "slot=<t> <invariant>: <detail>"
  std::string invariant;          // parsed invariant token; "" when clean
  std::vector<std::string> violation_log;
};

/// Extracts the invariant token from a violation message:
/// "slot=12 conservation: offered=..." -> "conservation".
std::string violation_invariant(const std::string& message);

/// Builds the spec's simulator, runs warmup + measurement + drain, and
/// returns the monitor's verdict. Deterministic in the spec.
TrialResult run_trial(const TrialSpec& spec);

}  // namespace osmosis::chaos
