#include "src/chaos/shrink.hpp"

#include <algorithm>

#include "src/util/log.hpp"

namespace osmosis::chaos {
namespace {

/// Rebuilds a plan carrying a subset of the original's events (same
/// error-roll seed, so surviving windows reproduce bit-identically).
faults::FaultPlan plan_subset(const faults::FaultPlan& orig,
                              const std::vector<faults::FaultEvent>& events) {
  faults::FaultPlan plan;
  plan.seeded(orig.seed());
  for (const auto& e : events) plan.add(e);
  return plan;
}

/// True when every fault window fires and closes inside the candidate
/// horizon — a window sliced off by a shorter run would change what the
/// trial even exercises, so such candidates are skipped, not re-run.
bool plan_fits_horizon(const faults::FaultPlan& plan,
                       std::uint64_t warmup, std::uint64_t measure) {
  const std::uint64_t end = warmup + measure;
  for (const auto& e : plan.events()) {
    if (e.at_slot + 64 > end) return false;
    if (e.transient() && e.end_slot() > end) return false;
  }
  return true;
}

class Shrinker {
 public:
  Shrinker(const TrialSpec& failing, const ShrinkOptions& opts)
      : opts_(opts), best_(failing) {}

  ShrinkResult run() {
    TrialResult original = execute(best_);
    OSMOSIS_REQUIRE(original.violated,
                    "shrink: the original spec does not violate any "
                    "invariant when re-run");
    invariant_ = original.invariant;
    best_result_ = original;

    ShrinkResult out;
    out.original_events = best_.plan.size();
    out.original_slots = best_.warmup_slots + best_.measure_slots;

    shrink_events();
    shrink_horizon();
    if (opts_.shrink_sources) shrink_sources();
    // The horizon may shrink further once fewer sources feed the run.
    shrink_horizon();

    out.spec = best_;
    out.result = best_result_;
    out.invariant = invariant_;
    out.runs = runs_;
    out.shrunk_events = best_.plan.size();
    out.shrunk_slots = best_.warmup_slots + best_.measure_slots;
    out.muted_sources = best_.muted_sources.size();
    return out;
  }

 private:
  TrialResult execute(const TrialSpec& spec) {
    ++runs_;
    return run_trial(spec);
  }

  bool budget_left() const { return runs_ < opts_.max_runs; }

  /// Re-runs `candidate`; adopts it as the new best when it still
  /// violates the same invariant.
  bool try_adopt(const TrialSpec& candidate) {
    if (!budget_left()) return false;
    TrialResult r = execute(candidate);
    if (!r.violated || r.invariant != invariant_) return false;
    best_ = candidate;
    best_result_ = r;
    return true;
  }

  /// Pass 1: drop fault events one at a time until no single removal
  /// preserves the violation.
  void shrink_events() {
    bool progress = true;
    while (progress && best_.plan.size() > 0 && budget_left()) {
      progress = false;
      const auto events = best_.plan.events();
      for (std::size_t i = 0; i < events.size() && budget_left(); ++i) {
        std::vector<faults::FaultEvent> kept;
        for (std::size_t j = 0; j < events.size(); ++j)
          if (j != i) kept.push_back(events[j]);
        TrialSpec candidate = best_;
        candidate.plan = plan_subset(best_.plan, kept);
        if (try_adopt(candidate)) {
          progress = true;
          break;  // indices shifted; restart the sweep
        }
      }
    }
  }

  /// Pass 2: bisect the measurement horizon, then try the short warmup.
  void shrink_horizon() {
    while (best_.measure_slots > 512 && budget_left()) {
      TrialSpec candidate = best_;
      candidate.measure_slots = best_.measure_slots / 2;
      if (!plan_fits_horizon(candidate.plan, candidate.warmup_slots,
                             candidate.measure_slots) ||
          !try_adopt(candidate))
        break;
    }
    if (best_.warmup_slots > 128 && budget_left()) {
      TrialSpec candidate = best_;
      candidate.warmup_slots = 128;
      if (plan_fits_horizon(candidate.plan, candidate.warmup_slots,
                            candidate.measure_slots))
        try_adopt(candidate);
    }
  }

  /// Pass 3: greedily mute one source at a time; a mute that keeps the
  /// violation sticks, one that loses it is rolled back.
  void shrink_sources() {
    const int sources = best_.sources();
    for (int s = 0; s < sources && budget_left(); ++s) {
      if (std::find(best_.muted_sources.begin(), best_.muted_sources.end(),
                    s) != best_.muted_sources.end())
        continue;
      TrialSpec candidate = best_;
      candidate.muted_sources.push_back(s);
      if (static_cast<int>(candidate.muted_sources.size()) == sources)
        continue;  // muting everything reproduces nothing
      try_adopt(candidate);
    }
    std::sort(best_.muted_sources.begin(), best_.muted_sources.end());
  }

  ShrinkOptions opts_;
  TrialSpec best_;
  TrialResult best_result_;
  std::string invariant_;
  int runs_ = 0;
};

}  // namespace

ShrinkResult shrink(const TrialSpec& failing, const ShrinkOptions& opts) {
  return Shrinker(failing, opts).run();
}

}  // namespace osmosis::chaos
