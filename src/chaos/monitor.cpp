#include "src/chaos/monitor.hpp"

#include <sstream>

#include "src/telemetry/run_report.hpp"
#include "src/util/log.hpp"

namespace osmosis::chaos {

const char* to_string(Defect d) {
  switch (d) {
    case Defect::kNone:
      return "none";
    case Defect::kDropDeliveryDuringFault:
      return "drop_delivery_during_fault";
    case Defect::kDuplicateDeliveryDuringFault:
      return "duplicate_delivery_during_fault";
    case Defect::kLeakCreditDuringFault:
      return "leak_credit_during_fault";
  }
  return "unknown";
}

Defect defect_from_string(const std::string& name) {
  for (Defect d : {Defect::kNone, Defect::kDropDeliveryDuringFault,
                   Defect::kDuplicateDeliveryDuringFault,
                   Defect::kLeakCreditDuringFault}) {
    if (name == to_string(d)) return d;
  }
  OSMOSIS_REQUIRE(false, "unknown chaos defect name: " << name);
  return Defect::kNone;
}

bool InvariantMonitor::defect_fires(Defect kind) {
  if (cfg_.defect != kind) return false;
  if (open_faults_ <= 0) return false;  // only corrupt inside fault windows
  ++defect_counter_;
  return cfg_.defect_period > 0 && defect_counter_ % cfg_.defect_period == 0;
}

void InvariantMonitor::delivered(std::uint64_t flow, std::uint64_t seq) {
  if (defect_fires(Defect::kDropDeliveryDuringFault)) return;
  ++delivered_;
  checker_.delivered(flow, seq);
  if (defect_fires(Defect::kDuplicateDeliveryDuringFault)) {
    ++delivered_;
    checker_.delivered(flow, seq);
  }
}

void InvariantMonitor::violate(std::uint64_t slot, const std::string& what) {
  if (violations_ == 0) first_violation_slot_ = slot;
  ++violations_;
  if (log_.size() < cfg_.max_violation_log) {
    std::ostringstream os;
    os << "slot=" << slot << ' ' << what;
    log_.push_back(os.str());
  }
}

void InvariantMonitor::end_slot(const SlotState& s) {
  ++checks_;
  open_faults_ = s.active_faults;

  // Cell conservation: every offered cell is delivered, queued somewhere
  // in the machine, or declared dropped by an active fault semantic.
  if (offered_ != delivered_ + dropped_ + s.queued) {
    std::ostringstream os;
    os << "conservation: offered=" << offered_ << " != delivered="
       << delivered_ << " + queued=" << s.queued << " + dropped=" << dropped_;
    violate(s.slot, os.str());
  }

  // Liveness watchdog. Progress = a delivery since the last check, an
  // empty machine, an open fault window, or retries still maturing
  // toward their timeout; any of these re-arms the timer.
  if (delivered_ != last_delivered_ || s.queued == 0 || s.active_faults > 0 ||
      s.retries_pending > 0) {
    last_progress_slot_ = s.slot;
    last_delivered_ = delivered_;
  } else if (s.slot - last_progress_slot_ >= cfg_.deadlock_slots) {
    std::ostringstream os;
    os << "deadlock: backlog=" << s.queued << " cells with no delivery for "
       << (s.slot - last_progress_slot_) << " slots and no active fault";
    violate(s.slot, os.str());
    last_progress_slot_ = s.slot;  // re-arm; report once per horizon
  }
}

void InvariantMonitor::check_generated(std::uint64_t slot,
                                       std::uint64_t generated) {
  if (generated == offered_ + shed_) return;
  std::ostringstream os;
  os << "conservation(source): generated=" << generated
     << " != offered=" << offered_ << " + shed=" << shed_;
  violate(slot, os.str());
}

void InvariantMonitor::check_occupancy(std::uint64_t slot, const char* what,
                                       std::uint64_t value,
                                       std::uint64_t cap) {
  if (cap == 0 || value <= cap) return;
  std::ostringstream os;
  os << "occupancy: " << what << "=" << value << " exceeds cap " << cap;
  violate(slot, os.str());
}

void InvariantMonitor::check_credits(std::uint64_t slot, std::uint64_t ledger,
                                     std::uint64_t pool_total,
                                     long long min_pool) {
  std::uint64_t reported = ledger;
  if (defect_fires(Defect::kLeakCreditDuringFault)) ++credit_leak_;
  reported -= credit_leak_ > reported ? reported : credit_leak_;
  if (min_pool < 0) {
    std::ostringstream os;
    os << "credit: pool went negative (" << min_pool << ")";
    violate(slot, os.str());
  }
  if (reported != pool_total) {
    std::ostringstream os;
    os << "credit: ledger=" << reported << " != pool=" << pool_total;
    violate(slot, os.str());
  }
}

void InvariantMonitor::finish(std::uint64_t slot,
                              std::uint64_t residual_backlog) {
  if (finished_) return;  // idempotent: run()/finalize() pairs may overlap
  finished_ = true;

  // Residual conservation: after the drain phase everything offered must
  // be delivered (or stranded behind a declared permanent fault).
  if (offered_ != delivered_ + dropped_ + residual_backlog) {
    std::ostringstream os;
    os << "conservation(final): offered=" << offered_
       << " != delivered=" << delivered_ << " + residual=" << residual_backlog
       << " + dropped=" << dropped_;
    violate(slot, os.str());
  }
  if (residual_backlog != 0 && cfg_.expect_drain && !cfg_.allow_stranded) {
    std::ostringstream os;
    os << "liveness(final): " << residual_backlog
       << " cells stranded with no permanent fault declared";
    violate(slot, os.str());
  }

  const auto rep = checker_.report();
  if (rep.duplicates != 0) {
    std::ostringstream os;
    os << "exactly_once: " << rep.duplicates << " duplicate deliveries";
    violate(slot, os.str());
  }
  if (rep.reordered != 0) {
    std::ostringstream os;
    os << "ordering: " << rep.reordered << " reordered deliveries";
    violate(slot, os.str());
  }
  if (rep.missing != 0 && cfg_.expect_drain && !cfg_.allow_stranded) {
    std::ostringstream os;
    os << "exactly_once: " << rep.missing << " cells missing at end of run";
    violate(slot, os.str());
  }
}

void InvariantMonitor::to_report(telemetry::RunReport& r) const {
  if (checks_ == 0 && offered_ == 0) return;  // monitor never engaged
  const auto rep = checker_.report();
  r.invariants["checks"] = static_cast<double>(checks_);
  r.invariants["violations"] = static_cast<double>(violations_);
  r.invariants["offered"] = static_cast<double>(offered_);
  r.invariants["delivered"] = static_cast<double>(delivered_);
  r.invariants["dropped_declared"] = static_cast<double>(dropped_);
  if (shed_ != 0) r.invariants["shed"] = static_cast<double>(shed_);
  r.invariants["duplicates"] = static_cast<double>(rep.duplicates);
  r.invariants["reordered"] = static_cast<double>(rep.reordered);
  r.invariants["missing"] = static_cast<double>(rep.missing);
  if (violations_ != 0) {
    r.invariants["first_violation_slot"] =
        static_cast<double>(first_violation_slot_);
  }
  r.invariant_violations = log_;
}

}  // namespace osmosis::chaos
