#pragma once
// Delta-debugging shrinker for violating chaos trials. Given a spec
// whose run violates an invariant, shrink() searches for a smaller spec
// that still violates the *same* invariant, reducing in order:
//
//   1. fault events   — remove-one-at-a-time to a fixpoint (plans are
//                       small, so full ddmin machinery is overkill);
//   2. slot horizon   — bisect measure_slots, then try the short warmup,
//                       skipping candidates whose fault windows would no
//                       longer fit inside the shrunk run;
//   3. traffic sources — greedily mute sources whose arrivals are not
//                        needed to reproduce the violation.
//
// Every candidate is verified by actually re-running the trial; the
// total rerun budget is bounded and the search is deterministic, so the
// same failing spec always shrinks to the same minimal repro.

#include <cstdint>
#include <string>

#include "src/chaos/generator.hpp"
#include "src/chaos/trial.hpp"

namespace osmosis::chaos {

struct ShrinkOptions {
  int max_runs = 200;          // rerun budget (original check included)
  bool shrink_sources = true;  // pass 3 costs one run per source
};

struct ShrinkResult {
  TrialSpec spec;          // minimal spec still violating `invariant`
  TrialResult result;      // verdict of the minimal spec's run
  std::string invariant;   // invariant token being preserved
  int runs = 0;            // trials executed, original check included
  std::size_t original_events = 0;
  std::size_t shrunk_events = 0;
  std::uint64_t original_slots = 0;  // warmup + measure before/after
  std::uint64_t shrunk_slots = 0;
  std::size_t muted_sources = 0;
};

/// Shrinks a violating spec. Aborts (OSMOSIS_REQUIRE) if the original
/// spec does not violate any invariant when re-run.
ShrinkResult shrink(const TrialSpec& failing,
                    const ShrinkOptions& opts = {});

}  // namespace osmosis::chaos
