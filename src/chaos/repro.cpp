#include "src/chaos/repro.hpp"

#include <fstream>
#include <sstream>

#include "src/telemetry/json.hpp"
#include "src/util/log.hpp"

namespace osmosis::chaos {
namespace {

std::string u64_str(std::uint64_t v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

std::uint64_t parse_u64(const telemetry::JsonValue& v, const char* what) {
  OSMOSIS_REQUIRE(v.is_string(), "repro: " << what
                                           << " must be a decimal string");
  std::uint64_t out = 0;
  for (char c : v.str) {
    OSMOSIS_REQUIRE(c >= '0' && c <= '9',
                    "repro: " << what << " is not a decimal string: "
                              << v.str);
    out = out * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return out;
}

}  // namespace

std::string repro_to_json(const Repro& r, int indent) {
  const TrialSpec& s = r.spec;
  telemetry::JsonWriter w(indent);
  w.open('{');
  w.key("format");
  w.string(kReproFormat);
  if (!r.note.empty()) {
    w.key("note");
    w.string(r.note);
  }
  w.key("campaign_seed");
  w.string(u64_str(s.campaign_seed));
  w.key("trial_index");
  w.number(static_cast<double>(s.trial_index));
  w.key("seed");
  w.string(u64_str(s.seed));
  w.key("sim");
  w.string(to_string(s.sim));
  w.key("ports");
  w.number(s.ports);
  w.key("planes");
  w.number(s.planes);
  w.key("receivers");
  w.number(s.receivers);
  w.key("scheduler");
  w.string(scheduler_name(s.scheduler));
  w.key("topology");
  w.string(topo::to_string(s.topology));
  w.key("flow_control");
  w.string(topo::to_string(s.flow_control));
  w.key("routing");
  w.string(topo::to_string(s.routing));
  w.key("failed_switches");
  w.open('[');
  for (int id : s.failed_switches) w.number(id);
  w.close(']');
  w.key("adaptive_routing");
  w.boolean(s.adaptive_routing);
  w.key("admission");
  w.boolean(s.admission);
  w.key("bursty");
  w.boolean(s.bursty);
  w.key("load");
  w.number(s.load);
  w.key("mean_burst");
  w.number(s.mean_burst);
  w.key("warmup_slots");
  w.number(static_cast<double>(s.warmup_slots));
  w.key("measure_slots");
  w.number(static_cast<double>(s.measure_slots));
  w.key("drain_max_slots");
  w.number(static_cast<double>(s.drain_max_slots));
  w.key("deadlock_slots");
  w.number(static_cast<double>(s.deadlock_slots));
  w.key("defect");
  w.string(to_string(s.defect));
  w.key("defect_period");
  w.number(static_cast<double>(s.defect_period));
  w.key("muted_sources");
  w.open('[');
  for (int m : s.muted_sources) w.number(m);
  w.close(']');
  w.key("fault_seed");
  w.string(u64_str(s.plan.seed()));
  w.key("faults");
  w.open('[');
  for (const auto& e : s.plan.events()) {
    w.open('{');
    w.key("kind");
    w.string(faults::to_string(e.kind));
    w.key("at_slot");
    w.number(static_cast<double>(e.at_slot));
    w.key("a");
    w.number(e.a);
    w.key("b");
    w.number(e.b);
    w.key("duration_slots");
    w.number(static_cast<double>(e.duration_slots));
    w.key("rate");
    w.number(e.rate);
    w.close('}');
  }
  w.close(']');
  w.key("expected");
  w.open('{');
  w.key("violated");
  w.boolean(r.expected_violated);
  w.key("invariant");
  w.string(r.expected_invariant);
  w.key("violations");
  w.number(static_cast<double>(r.expected_violations));
  w.close('}');
  w.close('}');
  return w.str() + "\n";
}

Repro repro_from_json(const std::string& text) {
  const telemetry::JsonValue doc = telemetry::json_parse(text);
  OSMOSIS_REQUIRE(doc.is_object(), "repro: document must be an object");
  OSMOSIS_REQUIRE(doc.has("format") && doc.at("format").str == kReproFormat,
                  "repro: not an " << kReproFormat << " document");

  Repro r;
  TrialSpec& s = r.spec;
  if (doc.has("note")) r.note = doc.at("note").str;
  s.campaign_seed = parse_u64(doc.at("campaign_seed"), "campaign_seed");
  s.trial_index = static_cast<std::uint64_t>(doc.at("trial_index").number);
  s.seed = parse_u64(doc.at("seed"), "seed");
  s.sim = trial_sim_from_string(doc.at("sim").str);
  s.ports = static_cast<int>(doc.at("ports").number);
  s.planes = static_cast<int>(doc.at("planes").number);
  s.receivers = static_cast<int>(doc.at("receivers").number);
  s.scheduler = scheduler_from_name(doc.at("scheduler").str);
  // Pre-topology-zoo repro files lack these keys; keep the defaults.
  if (doc.has("topology"))
    s.topology = topo::topo_kind_from_string(doc.at("topology").str);
  if (doc.has("flow_control"))
    s.flow_control = topo::fc_kind_from_string(doc.at("flow_control").str);
  if (doc.has("routing"))
    s.routing = topo::route_kind_from_string(doc.at("routing").str);
  if (doc.has("failed_switches"))
    for (const auto& id : doc.at("failed_switches").array)
      s.failed_switches.push_back(static_cast<int>(id.number));
  // Pre-graceful-degradation repro files lack these keys; default off.
  if (doc.has("adaptive_routing"))
    s.adaptive_routing = doc.at("adaptive_routing").boolean;
  if (doc.has("admission")) s.admission = doc.at("admission").boolean;
  s.bursty = doc.at("bursty").boolean;
  s.load = doc.at("load").number;
  s.mean_burst = doc.at("mean_burst").number;
  s.warmup_slots = static_cast<std::uint64_t>(doc.at("warmup_slots").number);
  s.measure_slots =
      static_cast<std::uint64_t>(doc.at("measure_slots").number);
  s.drain_max_slots =
      static_cast<std::uint64_t>(doc.at("drain_max_slots").number);
  s.deadlock_slots =
      static_cast<std::uint64_t>(doc.at("deadlock_slots").number);
  s.defect = defect_from_string(doc.at("defect").str);
  s.defect_period =
      static_cast<std::uint64_t>(doc.at("defect_period").number);
  for (const auto& m : doc.at("muted_sources").array)
    s.muted_sources.push_back(static_cast<int>(m.number));
  faults::FaultPlan plan;
  plan.seeded(parse_u64(doc.at("fault_seed"), "fault_seed"));
  for (const auto& ev : doc.at("faults").array) {
    faults::FaultEvent e;
    e.kind = faults::fault_kind_from_string(ev.at("kind").str);
    e.at_slot = static_cast<std::uint64_t>(ev.at("at_slot").number);
    e.a = static_cast<int>(ev.at("a").number);
    e.b = static_cast<int>(ev.at("b").number);
    e.duration_slots =
        static_cast<std::uint64_t>(ev.at("duration_slots").number);
    e.rate = ev.at("rate").number;
    plan.add(e);
  }
  s.plan = plan;
  const auto& exp = doc.at("expected");
  r.expected_violated = exp.at("violated").boolean;
  r.expected_invariant = exp.at("invariant").str;
  r.expected_violations =
      static_cast<std::uint64_t>(exp.at("violations").number);
  return r;
}

void write_repro_file(const std::string& path, const Repro& r) {
  std::ofstream out(path, std::ios::binary);
  OSMOSIS_REQUIRE(out.good(), "repro: cannot open " << path
                                                    << " for writing");
  out << repro_to_json(r);
  out.flush();
  OSMOSIS_REQUIRE(out.good(), "repro: short write to " << path);
}

Repro read_repro_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  OSMOSIS_REQUIRE(in.good(), "repro: cannot open " << path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return repro_from_json(buf.str());
}

bool replay_matches(const Repro& r, TrialResult& out) {
  out = run_trial(r.spec);
  if (out.violated != r.expected_violated) return false;
  if (out.violated && out.invariant != r.expected_invariant) return false;
  return true;
}

}  // namespace osmosis::chaos
