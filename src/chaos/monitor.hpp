#pragma once
// Runtime invariant verification for the chaos soak subsystem
// (DESIGN.md §12). The InvariantMonitor extends the end-of-run
// faults::ExactlyOnceChecker audit with continuously checked ledgers,
// evaluated every slot inside all four simulators:
//
//  * cell conservation — offered == delivered + in-flight/queued +
//    dropped-by-declared-fault, checked at every slot boundary and once
//    more at end of run;
//  * credit-balance accounting (fabric) — available credits + in-flight
//    credit messages + downstream buffer occupancy + cells in flight
//    toward flow-controlled buffers must equal the total credit pool
//    exactly, and no pool may go negative;
//  * occupancy caps — a named queue (e.g. a fabric input buffer) must
//    never exceed its declared capacity;
//  * liveness watchdog — backlog nonzero with no delivery progress for
//    `deadlock_slots`, while no fault window is open and no retries are
//    pending, is declared a deadlock.
//
// The monitor is pure accounting: it never changes simulator behavior,
// so a fault-free run with the monitor on is bit-identical to one
// without it. Violations are counted, timestamped (first offender), and
// logged as human-readable strings that flow into RunReport under
// "invariants" and into every chaos trial verdict.
//
// A seeded Defect can be armed through MonitorConfig as a test hook: it
// corrupts the *accounting* (never the simulator) in a deterministic
// way so the chaos shrinker and the `chaos_repro` replay tool can be
// exercised end-to-end against a known injected bug.

#include <cstdint>
#include <string>
#include <vector>

#include "src/ckpt/archive.hpp"
#include "src/faults/invariant.hpp"

namespace osmosis::telemetry {
struct RunReport;
}

namespace osmosis::chaos {

/// Deliberately injected accounting bugs (test hook for the shrinker /
/// repro round trip). Every defect is gated on an open fault window so
/// a minimal repro always retains at least one fault event.
enum class Defect : std::uint8_t {
  kNone = 0,
  // Every Nth delivered() call while a fault window is open is silently
  // swallowed — models a delivery-accounting bug in fault handling.
  kDropDeliveryDuringFault = 1,
  // Every Nth delivered() call while a fault window is open is recorded
  // twice — models a duplicate-completion bug.
  kDuplicateDeliveryDuringFault = 2,
  // Every Nth credit-ledger check while a fault window is open leaks one
  // credit from the reported balance — models a credit-return bug.
  kLeakCreditDuringFault = 3,
};

const char* to_string(Defect d);
/// Inverse of to_string; aborts (OSMOSIS_REQUIRE) on an unknown name.
Defect defect_from_string(const std::string& name);

struct MonitorConfig {
  // Liveness watchdog horizon: backlog > 0 with zero deliveries for this
  // many slots (no open fault, no pending retries) => deadlock verdict.
  std::uint64_t deadlock_slots = 2'048;
  // Retained violation messages (counting continues past the cap).
  std::uint64_t max_violation_log = 8;
  // A plan with a permanent fault may legitimately strand cells: the
  // end-of-run "missing" audit is skipped (duplicates/reorders still
  // count) and nonzero residual backlog is accepted at finish().
  bool allow_stranded = false;
  // True when the run ends with a drain phase (drain_max_slots > 0), so
  // everything offered is expected to be delivered by finish(). Without
  // a drain the run legitimately ends mid-flight and the end-of-run
  // stranding/missing audits are skipped.
  bool expect_drain = false;
  // Test hook (see Defect).
  Defect defect = Defect::kNone;
  std::uint64_t defect_period = 7;  // apply to every Nth opportunity
};

class InvariantMonitor {
 public:
  InvariantMonitor() = default;
  explicit InvariantMonitor(const MonitorConfig& cfg) : cfg_(cfg) {}

  /// Re-arms the configuration; call before the first ledger feed.
  void configure(const MonitorConfig& cfg) { cfg_ = cfg; }
  const MonitorConfig& config() const { return cfg_; }

  // ---- ledger feed (called from the simulators' hot paths) ------------
  void offered(std::uint64_t flow) {
    ++offered_;
    checker_.offered(flow);
  }
  void delivered(std::uint64_t flow, std::uint64_t seq);
  /// A cell lost to a *declared* fault semantic (none of the current
  /// simulators drop cells; retained for future lossy fault kinds).
  void dropped_by_fault(std::uint64_t n = 1) { dropped_ += n; }
  /// A cell refused at the source by degraded-mode admission control —
  /// before it gets a sequence number, so it never enters the offered
  /// ledger. Counted explicitly here (and cross-checked against the
  /// simulator's generation counter via check_generated) so shedding is
  /// never silent.
  void shed(std::uint64_t n = 1) { shed_ += n; }

  /// Source-side conservation: everything the traffic model generated
  /// was either admitted (offered) or explicitly shed.
  void check_generated(std::uint64_t slot, std::uint64_t generated);

  // ---- per-slot checks ------------------------------------------------
  struct SlotState {
    std::uint64_t slot = 0;
    std::uint64_t queued = 0;  // every cell resident in queues/pipelines
    int active_faults = 0;     // open fault windows this slot
    std::uint64_t retries_pending = 0;  // re-requests waiting on timeouts
  };
  /// Conservation + liveness, evaluated once per slot (or cycle).
  void end_slot(const SlotState& s);

  /// Occupancy cap: `value` must never exceed `cap` (cap 0 = disabled).
  void check_occupancy(std::uint64_t slot, const char* what,
                       std::uint64_t value, std::uint64_t cap);

  /// Credit-conservation ledger (fabric): the reported balance must
  /// equal the total credit pool exactly, and the smallest individual
  /// pool must be non-negative.
  void check_credits(std::uint64_t slot, std::uint64_t ledger,
                     std::uint64_t pool_total, long long min_pool);

  /// End-of-run audit: exactly-once verdict plus residual conservation.
  /// Call once, from the simulator's finalize().
  void finish(std::uint64_t slot, std::uint64_t residual_backlog);

  // ---- verdict --------------------------------------------------------
  bool ok() const { return violations_ == 0; }
  std::uint64_t violations() const { return violations_; }
  std::uint64_t checks() const { return checks_; }
  /// Slot of the first violation; ~0 when clean.
  std::uint64_t first_violation_slot() const { return first_violation_slot_; }
  const std::vector<std::string>& violation_log() const { return log_; }
  /// "invariant: detail" of the first violation, or "" when clean.
  std::string first_violation() const {
    return log_.empty() ? std::string() : log_.front();
  }

  std::uint64_t offered_cells() const { return offered_; }
  std::uint64_t delivered_cells() const { return delivered_; }
  std::uint64_t shed_cells() const { return shed_; }
  const faults::ExactlyOnceChecker& exactly_once() const { return checker_; }

  /// Fills RunReport::invariants (+ violation log). No-op before any
  /// ledger feed so unrelated reports stay byte-identical.
  void to_report(telemetry::RunReport& r) const;

  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, checker_);
    ckpt::field(a, offered_);
    ckpt::field(a, delivered_);
    ckpt::field(a, dropped_);
    ckpt::field(a, checks_);
    ckpt::field(a, violations_);
    ckpt::field(a, first_violation_slot_);
    ckpt::field(a, last_progress_slot_);
    ckpt::field(a, last_delivered_);
    ckpt::field(a, open_faults_);
    ckpt::field(a, defect_counter_);
    ckpt::field(a, credit_leak_);
    ckpt::field(a, finished_);
    ckpt::field(a, log_);
    ckpt::field(a, shed_);
  }

 private:
  void violate(std::uint64_t slot, const std::string& what);
  bool defect_fires(Defect kind);

  MonitorConfig cfg_;
  faults::ExactlyOnceChecker checker_;
  std::uint64_t offered_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t checks_ = 0;
  std::uint64_t violations_ = 0;
  std::uint64_t first_violation_slot_ = ~0ULL;
  // Liveness watchdog state.
  std::uint64_t last_progress_slot_ = 0;
  std::uint64_t last_delivered_ = 0;
  int open_faults_ = 0;  // last end_slot's active_faults (defect gating)
  // Defect state.
  std::uint64_t defect_counter_ = 0;
  std::uint64_t credit_leak_ = 0;
  bool finished_ = false;
  std::vector<std::string> log_;
};

}  // namespace osmosis::chaos
