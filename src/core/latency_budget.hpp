#pragma once
// Latency arithmetic: the Fig. 1 single-stage argument, the §III 500 ns
// fabric budget, and the §VI.B demonstrator decomposition (≈1200 ns in
// FPGAs, a few hundred ns after ASIC mapping).

#include <string>
#include <vector>

namespace osmosis::core {

/// Fig. 1: a single-stage fabric with a central scheduler pays one full
/// cable round trip for the request/grant cycle and another for the data
/// transfer (half RTT to the crossbar, half RTT onward), plus scheduling
/// and switching time.
struct SingleStageLatency {
  double rtt_ns = 0.0;       // machine-room cable round trip
  double schedule_ns = 0.0;  // central arbitration
  double switch_ns = 0.0;    // crossbar reconfiguration + transfer
  double total_ns = 0.0;     // 2*rtt + schedule + switch
};

SingleStageLatency single_stage_latency(double machine_diameter_m,
                                        double schedule_ns,
                                        double switch_ns);

/// Multistage alternative: per-stage switch latency accumulates but the
/// cable time is paid once (cells flow through, request/grant is local
/// to each stage).
double multistage_latency_ns(int stages, double per_stage_ns,
                             double total_cable_ns);

/// One line item of the §VI.B demonstrator latency budget.
struct LatencyItem {
  std::string name;
  double fpga_ns;  // as built, commercial FPGAs
  double asic_ns;  // straightforward ASIC mapping (>= 4x logic speedup)
};

struct LatencyBudget {
  std::vector<LatencyItem> items;
  double fpga_total_ns() const;
  double asic_total_ns() const;
};

/// The demonstrator's budget: adapters, FEC, scheduler pipeline and
/// chip crossings, SOA control cables, crossbar — totalling ≈1200 ns as
/// built and a few hundred ns as an ASIC (§VI.B).
LatencyBudget demonstrator_latency_budget();

/// Number of identical scheduler ASICs needed: the paper's size analysis
/// concludes <= 4. Modeled as ports*depth arbitration slices against a
/// per-ASIC slice capacity.
int scheduler_asic_count(int ports, int depth, int slices_per_asic = 128);

}  // namespace osmosis::core
