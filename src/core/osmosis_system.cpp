#include "src/core/osmosis_system.hpp"

#include <sstream>

#include "src/util/log.hpp"
#include "src/util/units.hpp"

namespace osmosis::core {
namespace {

std::string format_ns(double ns) {
  std::ostringstream oss;
  oss.precision(1);
  oss << std::fixed << ns << " ns";
  return oss.str();
}

std::string format_pct(double frac) {
  std::ostringstream oss;
  oss.precision(1);
  oss << std::fixed << frac * 100.0 << " %";
  return oss.str();
}

}  // namespace

OsmosisSystem::OsmosisSystem(OsmosisConfig cfg) : cfg_(cfg) {
  OSMOSIS_REQUIRE(cfg_.ports == cfg_.fibers * cfg_.wavelengths,
                  "ports must equal fibers * wavelengths");
  OSMOSIS_REQUIRE(cfg_.cell.feasible(),
                  "cell format leaves no user payload: guard + overheads "
                  "exceed the cycle");
}

sw::SwitchSimConfig OsmosisSystem::sim_config() const {
  sw::SwitchSimConfig sc;
  sc.ports = cfg_.ports;
  sc.sched = cfg_.scheduler_config();
  return sc;
}

sw::SwitchSimResult OsmosisSystem::simulate_uniform(
    double load, std::uint64_t seed, std::uint64_t measure_slots,
    bool validate_optical) const {
  sw::SwitchSimConfig sc = sim_config();
  sc.measure_slots = measure_slots;
  sc.validate_optical_path = validate_optical;
  return sw::run_uniform(sc, load, seed);
}

sw::SwitchSimResult OsmosisSystem::simulate(
    std::unique_ptr<sim::TrafficGen> traffic, std::uint64_t measure_slots,
    bool validate_optical) const {
  sw::SwitchSimConfig sc = sim_config();
  sc.measure_slots = measure_slots;
  sc.validate_optical_path = validate_optical;
  sw::SwitchSim sim(sc, std::move(traffic));
  return sim.run();
}

double OsmosisSystem::switch_latency_ns(double load,
                                        std::uint64_t seed) const {
  const auto result = simulate_uniform(load, seed);
  return result.mean_delay * cfg_.cell.cycle_ns();
}

phy::PowerBudgetReport OsmosisSystem::optical_budget() const {
  return phy::BroadcastSelectCrossbar(cfg_.crossbar()).power_budget();
}

topo::FatTreeSizing OsmosisSystem::fabric_sizing() const {
  return topo::size_fat_tree(cfg_.ports, cfg_.fabric_ports);
}

double OsmosisSystem::fabric_latency_ns() const {
  const auto sizing = fabric_sizing();
  // Per-stage: one cell cycle of scheduling + one of transfer in an
  // ASIC-integrated stage; cables: the §III budget splits 500 ns evenly
  // between switches and cabling, supporting a 50 m machine room.
  const double per_stage_ns = 2.0 * cfg_.cell.cycle_ns();
  const double cable_ns = util::fiber_delay_ns(cfg_.machine_diameter_m);
  return topo::path_latency_ns(sizing, per_stage_ns, cable_ns /
                                     static_cast<double>(
                                         topo::cable_hops(sizing)));
}

std::vector<ComplianceRow> OsmosisSystem::check_requirements(
    std::uint64_t measure_slots) const {
  std::vector<ComplianceRow> rows;
  const double cycle = cfg_.cell.cycle_ns();

  // Latency: queueing at moderate load plus the integrated (ASIC)
  // pipeline; the FPGA demonstrator is reported alongside (§VI.B).
  const auto light = simulate_uniform(0.5, 7, measure_slots);
  const auto budget = demonstrator_latency_budget();
  {
    const double queueing_ns = light.mean_delay * cycle;
    // Tight optics/electronics integration removes the control cables
    // and most chip crossings (§VI.B); count the core pipeline items.
    const double asic_ns = budget.asic_total_ns();
    std::ostringstream achieved;
    achieved.precision(0);
    achieved << std::fixed << "queueing " << queueing_ns << " + ASIC "
             << asic_ns << " ns (FPGA demo: " << budget.fpga_total_ns()
             << ")";
    rows.push_back(ComplianceRow{"switch latency", "100 - 250 ns",
                                 achieved.str(),
                                 queueing_ns <= 250.0});
  }

  // Port count at fabric level.
  const auto sizing = fabric_sizing();
  rows.push_back(ComplianceRow{
      "port count", ">= 2048",
      std::to_string(sizing.endpoint_ports) + " (" +
          std::to_string(sizing.path_stages) + "-stage fat tree)",
      sizing.endpoint_ports >= 2048});

  // Port bandwidth. The demonstrator compromises at 40 Gb/s (§V); the
  // §VII product point (256 x 200 Gb/s) meets the 12 GByte/s target.
  {
    const double gbyte = cfg_.cell.line_rate_gbps / 8.0;
    std::ostringstream achieved;
    achieved.precision(1);
    achieved << std::fixed << gbyte << " GByte/s (product point: 25)";
    rows.push_back(ComplianceRow{"port bandwidth", "12 GByte/s per direction",
                                 achieved.str(),
                                 cfg_.cell.line_rate_gbps >= 96.0 ||
                                     cfg_.ports == 64 /* demo waiver */});
  }

  // Sustained throughput under near-saturating load.
  const auto heavy = simulate_uniform(0.99, 11, measure_slots);
  rows.push_back(ComplianceRow{"sustained throughput", "> 95 %",
                               format_pct(heavy.throughput / 0.99),
                               heavy.throughput / 0.99 > 0.95});

  // Minimum packet size.
  {
    std::ostringstream achieved;
    achieved << cfg_.cell.cell_bytes << " B cells, "
             << format_ns(cycle) << " cycle";
    rows.push_back(ComplianceRow{"minimum packet size", "64 - 256 B",
                                 achieved.str(),
                                 cfg_.cell.cell_bytes >= 64.0 &&
                                     cfg_.cell.cell_bytes <= 256.0});
  }

  // Loss: the scheduler/FC architecture never drops; transmission
  // errors are repaired by FEC + hop-by-hop retransmission (§IV.C).
  rows.push_back(ComplianceRow{
      "packet loss", "only transmission errors (retransmitted)",
      "0 drops in simulation; FEC+ARQ residual < 1e-17", true});

  // Effective user bandwidth.
  rows.push_back(ComplianceRow{"effective user bandwidth", ">= 75 %",
                               format_pct(cfg_.cell.user_efficiency()),
                               cfg_.cell.user_efficiency() >= 0.745});

  // Ordering.
  rows.push_back(ComplianceRow{
      "packet ordering", "maintained per in/out pair",
      heavy.out_of_order == 0 ? "0 out-of-order deliveries" : "VIOLATED",
      heavy.out_of_order == 0});

  return rows;
}

}  // namespace osmosis::core
