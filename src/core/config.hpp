#pragma once
// Top-level OSMOSIS system configuration: the §V demonstrator
// (64 x 40 Gb/s, 8 fibers x 8 colors, dual receiver, 256 B cells) and
// the §VII commercialization design point (256 x 200 Gb/s).

#include <cstdint>

#include "src/phy/crossbar_optical.hpp"
#include "src/phy/guard_time.hpp"
#include "src/sw/scheduler.hpp"

namespace osmosis::core {

struct OsmosisConfig {
  // Single-stage switch geometry.
  int ports = 64;
  int fibers = 8;
  int wavelengths = 8;
  int receivers = 2;  // dual-receiver broadcast-and-select

  // Line format.
  phy::CellFormat cell;  // 256 B @ 40 Gb/s -> 51.2 ns cycle

  // Scheduler.
  sw::SchedulerKind scheduler = sw::SchedulerKind::kFlppr;
  int scheduler_depth = 0;  // 0 = log2(ports)

  // Fabric-level target (Table 1).
  std::uint64_t fabric_ports = 2048;
  double machine_diameter_m = 50.0;

  /// Derived: the broadcast-and-select crossbar geometry.
  phy::BroadcastSelectConfig crossbar() const;

  /// Derived: scheduler configuration for the switch simulator.
  sw::SchedulerConfig scheduler_config() const;
};

/// The §V hardware demonstrator.
OsmosisConfig demonstrator_config();

/// The §VII scaled design point: 256 ports x 200 Gb/s in one stage
/// (16 fibers x 16 wavelengths), ~50 Tb/s aggregate.
OsmosisConfig product_config();

}  // namespace osmosis::core
