#include "src/core/latency_budget.hpp"

#include "src/util/log.hpp"
#include "src/util/units.hpp"

namespace osmosis::core {

SingleStageLatency single_stage_latency(double machine_diameter_m,
                                        double schedule_ns,
                                        double switch_ns) {
  OSMOSIS_REQUIRE(machine_diameter_m >= 0.0, "negative machine diameter");
  SingleStageLatency l;
  // Host -> central crossbar spans the machine room; the round trip is
  // out and back across the diameter.
  l.rtt_ns = util::fiber_delay_ns(machine_diameter_m);
  l.schedule_ns = schedule_ns;
  l.switch_ns = switch_ns;
  l.total_ns = 2.0 * l.rtt_ns + schedule_ns + switch_ns;
  return l;
}

double multistage_latency_ns(int stages, double per_stage_ns,
                             double total_cable_ns) {
  OSMOSIS_REQUIRE(stages >= 1, "need at least one stage");
  OSMOSIS_REQUIRE(per_stage_ns >= 0.0 && total_cable_ns >= 0.0,
                  "latencies cannot be negative");
  return static_cast<double>(stages) * per_stage_ns + total_cable_ns;
}

double LatencyBudget::fpga_total_ns() const {
  double sum = 0.0;
  for (const auto& item : items) sum += item.fpga_ns;
  return sum;
}

double LatencyBudget::asic_total_ns() const {
  double sum = 0.0;
  for (const auto& item : items) sum += item.asic_ns;
  return sum;
}

LatencyBudget demonstrator_latency_budget() {
  // FPGA figures decompose the measured ~1200 ns (§VI.B); the ASIC
  // column applies the paper's "straightforward mapping" speedups: >= 4x
  // on pipelined logic, and short on-package connections replacing the
  // multi-meter scheduler-to-SOA control fibers.
  LatencyBudget b;
  b.items = {
      {"ingress adapter pipeline (VOQ, framing)", 180.0, 45.0},
      {"FEC encode", 90.0, 22.0},
      {"request/grant control path + chip crossings", 260.0, 65.0},
      {"FLPPR scheduler pipeline", 205.0, 51.0},
      {"scheduler -> SOA control cables", 160.0, 15.0},
      {"optical crossbar (guard + transfer)", 102.0, 102.0},
      {"egress burst-mode Rx + FEC decode", 140.0, 35.0},
      {"egress adapter pipeline", 75.0, 19.0},
  };
  return b;
}

int scheduler_asic_count(int ports, int depth, int slices_per_asic) {
  OSMOSIS_REQUIRE(ports >= 1 && depth >= 1 && slices_per_asic >= 1,
                  "invalid scheduler sizing parameters");
  const int slices = ports * depth;  // one arbitration slice per
                                     // (port, sub-scheduler) pair
  return (slices + slices_per_asic - 1) / slices_per_asic;
}

}  // namespace osmosis::core
