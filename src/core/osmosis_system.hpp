#pragma once
// The top-level OSMOSIS public API: one object that assembles the
// demonstrator — broadcast-and-select optical crossbar, FLPPR-scheduled
// VOQ switch, cell format with guard/FEC budgets, fat-tree fabric
// sizing — and evaluates it against the Table 1 requirements.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/config.hpp"
#include "src/core/latency_budget.hpp"
#include "src/topo/sizing.hpp"
#include "src/phy/crossbar_optical.hpp"
#include "src/sim/traffic.hpp"
#include "src/sw/switch_sim.hpp"

namespace osmosis::core {

/// One row of the Table 1 requirements-compliance report.
struct ComplianceRow {
  std::string requirement;
  std::string target;
  std::string achieved;
  bool pass = false;
};

class OsmosisSystem {
 public:
  explicit OsmosisSystem(OsmosisConfig cfg = demonstrator_config());

  const OsmosisConfig& config() const { return cfg_; }

  // ---- single-stage switch -------------------------------------------------

  /// Simulates the single-stage switch under uniform Bernoulli load.
  sw::SwitchSimResult simulate_uniform(double load, std::uint64_t seed = 1,
                                       std::uint64_t measure_slots = 30'000,
                                       bool validate_optical = false) const;

  /// Simulates with an arbitrary traffic generator.
  sw::SwitchSimResult simulate(std::unique_ptr<sim::TrafficGen> traffic,
                               std::uint64_t measure_slots = 30'000,
                               bool validate_optical = false) const;

  /// Mean switch traversal in nanoseconds at the given load
  /// (cell cycles from simulation x the configured cycle time).
  double switch_latency_ns(double load, std::uint64_t seed = 1) const;

  // ---- optical datapath -----------------------------------------------------

  /// Gate-count / power-budget audit of the Fig. 5 datapath.
  phy::BroadcastSelectConfig crossbar_geometry() const {
    return cfg_.crossbar();
  }
  phy::PowerBudgetReport optical_budget() const;

  // ---- fabric ----------------------------------------------------------------

  /// Fat-tree sizing to reach cfg().fabric_ports endpoints.
  topo::FatTreeSizing fabric_sizing() const;

  /// Worst-case fabric latency with ASIC-mapped stages and the
  /// machine-room cable budget (§III: target < 500 ns).
  double fabric_latency_ns() const;

  // ---- Table 1 ---------------------------------------------------------------

  /// Runs the measurements and builds the compliance report. Slots
  /// controls simulation length (larger = tighter estimates).
  std::vector<ComplianceRow> check_requirements(
      std::uint64_t measure_slots = 30'000) const;

 private:
  sw::SwitchSimConfig sim_config() const;

  OsmosisConfig cfg_;
};

}  // namespace osmosis::core
