#include "src/core/config.hpp"

#include "src/util/log.hpp"

namespace osmosis::core {

phy::BroadcastSelectConfig OsmosisConfig::crossbar() const {
  OSMOSIS_REQUIRE(ports == fibers * wavelengths,
                  "ports must equal fibers * wavelengths");
  phy::BroadcastSelectConfig c;
  c.ports = ports;
  c.fibers = fibers;
  c.wavelengths = wavelengths;
  c.receivers_per_egress = receivers;
  return c;
}

sw::SchedulerConfig OsmosisConfig::scheduler_config() const {
  sw::SchedulerConfig sc;
  sc.kind = scheduler;
  sc.ports = ports;
  sc.receivers = receivers;
  sc.iterations = scheduler_depth;
  return sc;
}

OsmosisConfig demonstrator_config() {
  OsmosisConfig c;
  c.ports = 64;
  c.fibers = 8;
  c.wavelengths = 8;
  c.receivers = 2;
  c.cell = phy::demonstrator_cell_format();
  c.scheduler = sw::SchedulerKind::kFlppr;
  c.fabric_ports = 2048;
  c.machine_diameter_m = 50.0;
  return c;
}

OsmosisConfig product_config() {
  OsmosisConfig c;
  c.ports = 256;
  c.fibers = 16;
  c.wavelengths = 16;
  c.receivers = 2;
  c.cell = phy::demonstrator_cell_format();
  c.cell.line_rate_gbps = 200.0;
  // ASIC scheduler (4x faster, §VII) supports a shorter cycle at the
  // higher rate; keep 256 B => 10.24 ns cycle. That only leaves room for
  // the sub-ns guard of deeply saturated DPSK-driven SOAs (§VII) plus a
  // fast-locking custom CDR.
  c.cell.guard.switch_settle_ns = 0.8;
  c.cell.guard.phase_reacquisition_ns = 0.5;
  c.cell.guard.arrival_jitter_ns = 0.3;
  c.scheduler = sw::SchedulerKind::kFlppr;
  c.fabric_ports = 32'768;
  c.machine_diameter_m = 50.0;
  return c;
}

}  // namespace osmosis::core
