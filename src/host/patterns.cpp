#include "src/host/patterns.hpp"

#include "src/util/log.hpp"

namespace osmosis::host {

RandomMessages::RandomMessages(int hosts, double msg_rate,
                               double control_fraction, double control_bytes,
                               double data_bytes, sim::Rng rng)
    : hosts_(hosts),
      msg_rate_(msg_rate),
      control_fraction_(control_fraction),
      control_bytes_(control_bytes),
      data_bytes_(data_bytes),
      rng_(rng) {
  OSMOSIS_REQUIRE(hosts_ >= 2, "need at least two hosts");
  OSMOSIS_REQUIRE(msg_rate_ >= 0.0 && msg_rate_ <= 1.0,
                  "message rate out of [0,1]");
  OSMOSIS_REQUIRE(control_fraction_ >= 0.0 && control_fraction_ <= 1.0,
                  "control fraction out of [0,1]");
}

void RandomMessages::poll(int host, std::uint64_t /*t*/,
                          std::vector<Message>& out) {
  if (!rng_.bernoulli(msg_rate_)) return;
  Message m;
  m.src = host;
  m.dst = static_cast<int>(
      rng_.uniform_int(static_cast<std::uint64_t>(hosts_ - 1)));
  if (m.dst >= host) ++m.dst;  // uniform over peers, excluding self
  m.id = next_id_++;
  m.control = rng_.bernoulli(control_fraction_);
  m.bytes = m.control ? control_bytes_ : data_bytes_;
  out.push_back(m);
}

AllToAll::AllToAll(int hosts, double bytes) : hosts_(hosts), bytes_(bytes) {
  OSMOSIS_REQUIRE(hosts_ >= 2, "need at least two hosts");
  OSMOSIS_REQUIRE(bytes_ > 0.0, "message size must be positive");
}

void AllToAll::poll(int host, std::uint64_t t, std::vector<Message>& out) {
  if (t != 0) return;
  for (int peer = 0; peer < hosts_; ++peer) {
    if (peer == host) continue;
    Message m;
    m.src = host;
    m.dst = peer;
    m.id = next_id_++;
    m.bytes = bytes_;
    out.push_back(m);
  }
}

RingExchange::RingExchange(int hosts, double bytes)
    : hosts_(hosts), bytes_(bytes) {
  OSMOSIS_REQUIRE(hosts_ >= 2, "need at least two hosts");
  OSMOSIS_REQUIRE(bytes_ > 0.0, "message size must be positive");
}

void RingExchange::poll(int host, std::uint64_t t,
                        std::vector<Message>& out) {
  if (t != 0) return;
  Message m;
  m.src = host;
  m.dst = (host + 1) % hosts_;
  // Ring messages get ids 1..N keyed by source for uniqueness.
  m.id = static_cast<std::uint64_t>(host) + 1;
  m.bytes = bytes_;
  out.push_back(m);
}

}  // namespace osmosis::host
