#include "src/host/hca.hpp"

#include "src/util/log.hpp"

namespace osmosis::host {

double AppLatencyBudget::total_ns() const {
  double sum = 0.0;
  for (const auto& item : items) sum += item.ns;
  return sum;
}

AppLatencyBudget app_to_app_budget(const HcaParams& hca,
                                   double fabric_switch_ns, double cable_ns) {
  OSMOSIS_REQUIRE(fabric_switch_ns >= 0.0 && cable_ns >= 0.0,
                  "latencies cannot be negative");
  AppLatencyBudget b;
  b.items = {
      {"source software stack", hca.sw_stack_ns},
      {"source HCA pipeline", hca.hca_pipeline_ns},
      {"switch fabric elements", fabric_switch_ns},
      {"cable time of flight", cable_ns},
      {"destination HCA pipeline", hca.hca_pipeline_ns},
      {"destination software stack", hca.sw_stack_ns},
  };
  return b;
}

}  // namespace osmosis::host
