#pragma once
// Message-level simulation over the single-stage OSMOSIS switch: hosts
// post messages (a workload), per-host Segmenters feed the switch one
// cell per slot (control priority), the switch's guaranteed in-order
// per-flow delivery feeds Reassemblers, and message completion times are
// recorded. This is the layer that turns the paper's cell-level switch
// into the application-to-application latency story of §III.

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/host/hca.hpp"
#include "src/host/message.hpp"
#include "src/host/patterns.hpp"
#include "src/phy/guard_time.hpp"
#include "src/sim/stats.hpp"
#include "src/sw/switch_sim.hpp"

namespace osmosis::host {

struct MessageSimConfig {
  sw::SwitchSimConfig sw;          // ports = number of hosts
  phy::CellFormat cell;            // payload per cell + cycle time
  HcaParams hca;                   // app-to-app fixed latencies
  double cable_one_way_ns = 122.4; // half the 50 m machine-room budget
  // Messages posted before this slot are excluded from statistics
  // (steady-state warmup for infinite workloads; set 0 for collectives).
  std::uint64_t stats_after_slot = 0;
};

struct MessageSimResult {
  std::uint64_t completed = 0;
  std::uint64_t posted = 0;
  // Fabric-level message latency: post -> last cell delivered [cycles].
  double mean_latency_cycles = 0.0;
  double p99_latency_cycles = 0.0;
  double mean_control_latency_cycles = 0.0;
  double mean_data_latency_cycles = 0.0;
  // Application-to-application latency [ns]: fabric + cables + 2x(stack
  // + HCA).
  double mean_app_latency_ns = 0.0;
  double control_app_latency_ns = 0.0;
  // For finite workloads: collective completion time [cycles].
  std::uint64_t collective_completion_slot = 0;
  bool all_complete = false;
  sw::SwitchSimResult cell_level;  // underlying cell statistics
};

class MessageSim {
 public:
  MessageSim(MessageSimConfig cfg, std::unique_ptr<MessageWorkload> workload);

  /// Runs for cfg.sw.warmup_slots + cfg.sw.measure_slots slots.
  MessageSimResult run();

 private:
  // TrafficGen adapter driving the switch from the segmenters.
  class Source;

  struct MsgInfo {
    std::uint64_t post_slot = 0;
    bool control = false;
    bool counted = false;  // included in statistics
  };

  void on_slot(std::uint64_t t);  // poll workload, post to segmenters
  void on_delivery(const sw::Cell& cell, std::uint64_t t);

  MessageSimConfig cfg_;
  std::unique_ptr<MessageWorkload> workload_;
  std::vector<Segmenter> segmenters_;
  Reassembler reassembler_;
  std::map<std::uint64_t, MsgInfo> info_;
  std::vector<Message> scratch_;

  sim::Histogram latency_;
  sim::Histogram control_latency_;
  sim::Histogram data_latency_;
  std::uint64_t posted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t last_completion_slot_ = 0;
};

/// Convenience: the §III application-to-application budget evaluated for
/// a small control message through a lightly loaded demonstrator switch.
AppLatencyBudget measure_app_to_app(const MessageSimConfig& cfg,
                                    double measured_fabric_cycles);

}  // namespace osmosis::host
