#pragma once
// Host Channel Adapter latency model (§III): the paper's contemporary
// target is 1 µs application to application, decomposed into the driver
// software stack and HCA at source and destination, the switch fabric
// elements, and time-of-flight in the cables — with < 500 ns allotted to
// the fabric including machine-room cabling.

#include <string>
#include <vector>

namespace osmosis::host {

/// Fixed (load-independent) latency contributions outside the fabric.
struct HcaParams {
  double sw_stack_ns = 250.0;     // driver/software stack, each side
  double hca_pipeline_ns = 120.0; // adapter DMA + segmentation pipeline,
                                  // each side
};

/// One line of the application-to-application latency budget.
struct AppLatencyItem {
  std::string name;
  double ns;
};

struct AppLatencyBudget {
  std::vector<AppLatencyItem> items;
  double total_ns() const;
};

/// Composes the §III budget: 2x (stack + HCA) + fabric switch latency +
/// cable time of flight. `fabric_switch_ns` is the measured traversal
/// (queueing + pipeline) and `cable_ns` the one-way machine-room cabling.
AppLatencyBudget app_to_app_budget(const HcaParams& hca,
                                   double fabric_switch_ns, double cable_ns);

}  // namespace osmosis::host
