#pragma once
// Degraded-mode admission control at the HCA (graceful degradation,
// DESIGN.md §13).
//
// When the management plane (mgmt::HealthRegistry, surfaced to the
// simulator as the count of in-service spines) reports terminal capacity
// below offered demand, the fabric cannot stay lossless AND keep backlog
// bounded — something has to give. This module gives deliberately: each
// source gets an identical token bucket whose refill rate tracks the
// surviving-capacity fraction, and cells that find an empty bucket are
// shed AT THE SOURCE, before they consume a sequence number or enter any
// ledger as offered work. Identical buckets are the fairness guarantee:
// no source can crowd out another during a brownout.
//
// All arithmetic is integer (micro-cells per slot) so runs stay
// byte-identical at any thread count. Fully checkpointed via io_state.

#include <cstdint>
#include <vector>

#include "src/ckpt/archive.hpp"

namespace osmosis::host {

struct AdmissionConfig {
  bool enabled = false;
  // Admit up to margin_pct % of the surviving-capacity fair share.
  // Slightly below 100 leaves scheduler headroom so queues drain.
  int margin_pct = 95;
  // Bucket depth in cells: tolerated burstiness per source.
  int burst_cells = 8;
};

class AdmissionControl {
 public:
  AdmissionControl() = default;
  AdmissionControl(AdmissionConfig cfg, int sources);

  bool enabled() const { return cfg_.enabled; }

  /// Health update: `live` of `total` parallel paths are in service.
  /// Full capacity disengages shedding entirely (buckets refill to
  /// burst depth and admit() short-circuits true).
  void set_capacity(int live, int total);

  /// Serving-layer explicit-rate mode (DESIGN.md §14): every source
  /// refills at this fixed micro-cell rate per slot, independent of
  /// reported path health, and the buckets stay engaged even at full
  /// capacity — an open-loop client population can offer more than line
  /// rate to a perfectly healthy fabric, and the excess must still be
  /// shed at the source. 0 (default) keeps the degraded-capacity refill
  /// formula. kCellCost micro-cells == one cell per slot.
  void set_rate(std::int64_t microcells_per_slot);
  std::int64_t rate() const { return rate_; }

  /// Per-slot token refill. Call once per slot before admit() rolls.
  void begin_slot();

  /// One arriving cell at `src`: true = admit, false = shed.
  bool admit(int src);

  /// All-or-nothing admission of a whole `cells`-cell request at `src`
  /// (the serving layer's unit of work: a message is either accepted in
  /// full or shed in full, never truncated mid-segmentation). Sheds are
  /// counted per request, matching the per-cell admit() convention of
  /// one shed event per rejected unit.
  bool admit_request(int src, int cells);

  std::uint64_t shed_total() const { return shed_total_; }
  std::uint64_t shed_at(int src) const {
    return shed_[static_cast<std::size_t>(src)];
  }
  /// Fairness telemetry: widest per-source shed spread seen so far.
  std::uint64_t shed_max() const;
  std::uint64_t shed_min() const;

  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, live_);
    ckpt::field(a, total_);
    ckpt::field(a, rate_);
    ckpt::field(a, tokens_);
    ckpt::field(a, shed_);
    ckpt::field(a, shed_total_);
    if constexpr (Ar::kLoading) {
      if (tokens_.size() != shed_.size())
        throw ckpt::Error("AdmissionControl size inconsistent in checkpoint");
    }
  }

  static constexpr std::int64_t kCellCost = 1'000'000;

 private:
  bool engaged() const {
    return cfg_.enabled && (rate_ > 0 || live_ < total_);
  }

  AdmissionConfig cfg_;
  int live_ = 0;
  int total_ = 0;
  std::int64_t rate_ = 0;  // explicit refill (micro-cells/slot); 0 = health
  std::vector<std::int64_t> tokens_;  // micro-cells, per source
  std::vector<std::uint64_t> shed_;   // per source
  std::uint64_t shed_total_ = 0;
};

}  // namespace osmosis::host
