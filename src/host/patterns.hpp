#pragma once
// Message-level workloads: the communication patterns HPC applications
// actually put on the fabric — random messaging with the paper's bimodal
// control/data mix, and collective exchanges (all-to-all, ring/neighbor)
// whose completion time the fabric determines.

#include <cstdint>
#include <memory>
#include <vector>

#include "src/host/message.hpp"
#include "src/sim/rng.hpp"

namespace osmosis::host {

/// Posts messages to hosts over time.
class MessageWorkload {
 public:
  virtual ~MessageWorkload() = default;

  virtual int hosts() const = 0;

  /// Appends the messages host `h` posts at slot `t` to `out`. Ids must
  /// be globally unique; the caller fills post_slot.
  virtual void poll(int host, std::uint64_t t, std::vector<Message>& out) = 0;

  /// True for workloads that post a fixed set of messages (collectives).
  virtual bool finite() const = 0;
};

/// Random messaging: each host posts a message per slot with probability
/// `msg_rate`; `control_fraction` of them are short control messages of
/// `control_bytes`, the rest data messages of `data_bytes`. Destinations
/// uniform (excluding self).
class RandomMessages final : public MessageWorkload {
 public:
  RandomMessages(int hosts, double msg_rate, double control_fraction,
                 double control_bytes, double data_bytes, sim::Rng rng);

  int hosts() const override { return hosts_; }
  void poll(int host, std::uint64_t t, std::vector<Message>& out) override;
  bool finite() const override { return false; }

 private:
  int hosts_;
  double msg_rate_;
  double control_fraction_;
  double control_bytes_;
  double data_bytes_;
  sim::Rng rng_;
  std::uint64_t next_id_ = 1;
};

/// All-to-all personalized exchange: at slot 0 every host posts one
/// message of `bytes` to every other host (the N(N-1)-message collective
/// that stresses every VOQ simultaneously).
class AllToAll final : public MessageWorkload {
 public:
  AllToAll(int hosts, double bytes);

  int hosts() const override { return hosts_; }
  void poll(int host, std::uint64_t t, std::vector<Message>& out) override;
  bool finite() const override { return true; }

 private:
  int hosts_;
  double bytes_;
  std::uint64_t next_id_ = 1;
};

/// Ring (nearest-neighbor) exchange: at slot 0 each host sends `bytes`
/// to (h+1) mod N — a permutation, the fabric's friendliest collective.
class RingExchange final : public MessageWorkload {
 public:
  RingExchange(int hosts, double bytes);

  int hosts() const override { return hosts_; }
  void poll(int host, std::uint64_t t, std::vector<Message>& out) override;
  bool finite() const override { return true; }

 private:
  int hosts_;
  double bytes_;
};

}  // namespace osmosis::host
