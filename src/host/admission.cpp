#include "src/host/admission.hpp"

#include <algorithm>

#include "src/util/log.hpp"

namespace osmosis::host {

AdmissionControl::AdmissionControl(AdmissionConfig cfg, int sources)
    : cfg_(cfg) {
  OSMOSIS_REQUIRE(sources >= 1, "admission needs at least one source");
  OSMOSIS_REQUIRE(cfg_.margin_pct >= 1 && cfg_.margin_pct <= 100,
                  "admission margin_pct must be in 1..100");
  OSMOSIS_REQUIRE(cfg_.burst_cells >= 1, "admission burst_cells must be >= 1");
  tokens_.assign(static_cast<std::size_t>(sources),
                 static_cast<std::int64_t>(cfg_.burst_cells) * kCellCost);
  shed_.assign(static_cast<std::size_t>(sources), 0);
}

void AdmissionControl::set_capacity(int live, int total) {
  OSMOSIS_REQUIRE(total >= 1 && live >= 0 && live <= total,
                  "capacity (" << live << "/" << total << ") out of range");
  live_ = live;
  total_ = total;
}

void AdmissionControl::set_rate(std::int64_t microcells_per_slot) {
  OSMOSIS_REQUIRE(microcells_per_slot >= 0,
                  "admission rate must be non-negative");
  rate_ = microcells_per_slot;
}

void AdmissionControl::begin_slot() {
  if (!cfg_.enabled) return;
  const std::int64_t cap =
      static_cast<std::int64_t>(cfg_.burst_cells) * kCellCost;
  if (!engaged()) {
    // Healthy fabric: buckets sit full so the first degraded slot still
    // honors the configured burst allowance.
    std::fill(tokens_.begin(), tokens_.end(), cap);
    return;
  }
  // Explicit serving rate when set; otherwise fair share under degraded
  // capacity: live/total of line rate, scaled by the admission margin.
  // Integer micro-cells keep this exact.
  const std::int64_t refill =
      rate_ > 0 ? rate_
                : kCellCost * live_ * cfg_.margin_pct /
                      (static_cast<std::int64_t>(total_) * 100);
  for (auto& t : tokens_) t = std::min(cap, t + refill);
}

bool AdmissionControl::admit(int src) {
  if (!engaged()) return true;
  auto& t = tokens_[static_cast<std::size_t>(src)];
  if (t >= kCellCost) {
    t -= kCellCost;
    return true;
  }
  ++shed_[static_cast<std::size_t>(src)];
  ++shed_total_;
  return false;
}

bool AdmissionControl::admit_request(int src, int cells) {
  OSMOSIS_REQUIRE(cells >= 1, "request must occupy at least one cell");
  if (!engaged()) return true;
  auto& t = tokens_[static_cast<std::size_t>(src)];
  const std::int64_t cost = static_cast<std::int64_t>(cells) * kCellCost;
  if (t >= cost) {
    t -= cost;
    return true;
  }
  ++shed_[static_cast<std::size_t>(src)];
  ++shed_total_;
  return false;
}

std::uint64_t AdmissionControl::shed_max() const {
  std::uint64_t m = 0;
  for (auto s : shed_) m = std::max(m, s);
  return m;
}

std::uint64_t AdmissionControl::shed_min() const {
  if (shed_.empty()) return 0;
  std::uint64_t m = ~0ULL;
  for (auto s : shed_) m = std::min(m, s);
  return m;
}

}  // namespace osmosis::host
