#pragma once
// Host-level messages over the cell fabric (§III): HPC nodes exchange
// variable-size messages — short latency-critical control messages and
// long bandwidth-critical data transfers — which the Host Channel
// Adapter segments into the fabric's fixed-size cells and reassembles at
// the destination. In-order cell delivery per (input, output, class)
// (a Table 1 requirement the switch guarantees) is what makes the
// reassembly here trivially streaming.

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "src/ckpt/archive.hpp"

namespace osmosis::host {

/// One application message.
struct Message {
  int src = -1;
  int dst = -1;
  std::uint64_t id = 0;       // globally unique
  double bytes = 0.0;         // application payload
  std::uint64_t post_slot = 0;  // slot the application posted the send
  bool control = false;       // short latency-critical class

  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, src);
    ckpt::field(a, dst);
    ckpt::field(a, id);
    ckpt::field(a, bytes);
    ckpt::field(a, post_slot);
    ckpt::field(a, control);
  }
};

/// Per-host segmentation engine: splits posted messages into cells (one
/// cell per slot per host — the line rate), FIFO per class with control
/// priority at the injection point.
class Segmenter {
 public:
  /// `user_bytes_per_cell`: payload a cell carries after guard/FEC/header
  /// (phy::CellFormat::user_bytes()).
  explicit Segmenter(double user_bytes_per_cell);

  /// Application posts a message for transmission.
  void post(const Message& msg);

  /// How many cells a message of `bytes` occupies (>= 1).
  int cells_for(double bytes) const;

  /// Emits the next cell this slot, if any work is pending. Returns
  /// false when idle. `msg_id_out` receives the owning message id,
  /// `dst_out` its destination, `control_out` its class, `last_out`
  /// whether this is the message's final cell.
  bool next_cell(std::uint64_t& msg_id_out, int& dst_out, bool& control_out,
                 bool& last_out);

  bool idle() const { return control_q_.empty() && data_q_.empty(); }
  std::size_t backlog_messages() const {
    return control_q_.size() + data_q_.size();
  }

  /// In-flight segmentation state (queued messages + cells-left
  /// cursors); `user_bytes_per_cell_` is construction config and is not
  /// serialized — the owner rebuilds from the same config before load.
  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, control_q_);
    ckpt::field(a, data_q_);
  }

 private:
  struct InProgress {
    Message msg;
    int cells_left = 0;

    template <class Ar>
    void io_state(Ar& a) {
      ckpt::field(a, msg);
      ckpt::field(a, cells_left);
    }
  };

  double user_bytes_per_cell_;
  std::deque<InProgress> control_q_;
  std::deque<InProgress> data_q_;
};

/// Destination-side reassembly: counts received cells per message and
/// reports completion. With in-order per-flow delivery no sequence
/// bookkeeping beyond the count is needed.
class Reassembler {
 public:
  /// Registers an expected message (called by the sim when it is posted).
  void expect(std::uint64_t msg_id, int total_cells);

  /// A cell of `msg_id` arrived. Returns true when the message is now
  /// complete (this was its last outstanding cell).
  bool receive(std::uint64_t msg_id);

  std::size_t incomplete() const { return pending_.size(); }

  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, pending_);
  }

 private:
  std::map<std::uint64_t, int> pending_;  // id -> cells still missing
};

}  // namespace osmosis::host
