#include "src/host/message.hpp"

#include <cmath>

#include "src/util/log.hpp"

namespace osmosis::host {

Segmenter::Segmenter(double user_bytes_per_cell)
    : user_bytes_per_cell_(user_bytes_per_cell) {
  OSMOSIS_REQUIRE(user_bytes_per_cell_ > 0.0,
                  "cell user payload must be positive");
}

int Segmenter::cells_for(double bytes) const {
  OSMOSIS_REQUIRE(bytes >= 0.0, "negative message size");
  return std::max(1, static_cast<int>(std::ceil(bytes / user_bytes_per_cell_)));
}

void Segmenter::post(const Message& msg) {
  InProgress ip;
  ip.msg = msg;
  ip.cells_left = cells_for(msg.bytes);
  (msg.control ? control_q_ : data_q_).push_back(ip);
}

bool Segmenter::next_cell(std::uint64_t& msg_id_out, int& dst_out,
                          bool& control_out, bool& last_out) {
  // Strict priority for control messages at the injection point, the
  // same policy the VOQs apply throughout the fabric (§IV).
  std::deque<InProgress>* q = nullptr;
  if (!control_q_.empty())
    q = &control_q_;
  else if (!data_q_.empty())
    q = &data_q_;
  else
    return false;

  InProgress& ip = q->front();
  msg_id_out = ip.msg.id;
  dst_out = ip.msg.dst;
  control_out = ip.msg.control;
  last_out = --ip.cells_left == 0;
  if (last_out) q->pop_front();
  return true;
}

void Reassembler::expect(std::uint64_t msg_id, int total_cells) {
  OSMOSIS_REQUIRE(total_cells >= 1, "message needs at least one cell");
  const auto [it, inserted] = pending_.emplace(msg_id, total_cells);
  OSMOSIS_REQUIRE(inserted, "duplicate message id " << msg_id);
  (void)it;
}

bool Reassembler::receive(std::uint64_t msg_id) {
  auto it = pending_.find(msg_id);
  OSMOSIS_REQUIRE(it != pending_.end(),
                  "cell for unknown/completed message " << msg_id);
  if (--it->second > 0) return false;
  pending_.erase(it);
  return true;
}

}  // namespace osmosis::host
