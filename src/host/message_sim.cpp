#include "src/host/message_sim.hpp"

#include <algorithm>

#include "src/util/log.hpp"

namespace osmosis::host {

/// Adapts the per-host segmenters to the switch's TrafficGen interface.
/// SwitchSim samples inputs 0..N-1 once per slot in order; input 0's
/// sample advances the message-level clock (workload polling).
class MessageSim::Source final : public sim::TrafficGen {
 public:
  explicit Source(MessageSim& owner) : owner_(owner) {}

  int ports() const override {
    return static_cast<int>(owner_.segmenters_.size());
  }
  double offered_load() const override { return 0.0; }  // message-driven

  bool sample(int input, sim::Arrival& out) override {
    if (input == 0) owner_.on_slot(slot_++);
    Segmenter& seg = owner_.segmenters_[static_cast<std::size_t>(input)];
    std::uint64_t msg_id;
    int dst;
    bool control, last;
    if (!seg.next_cell(msg_id, dst, control, last)) return false;
    out.dst = dst;
    out.cls = control ? sim::TrafficClass::kControl
                      : sim::TrafficClass::kData;
    out.tag = msg_id;
    return true;
  }

 private:
  MessageSim& owner_;
  std::uint64_t slot_ = 0;
};

MessageSim::MessageSim(MessageSimConfig cfg,
                       std::unique_ptr<MessageWorkload> workload)
    : cfg_(cfg), workload_(std::move(workload)), latency_(256.0),
      control_latency_(256.0), data_latency_(256.0) {
  OSMOSIS_REQUIRE(workload_ != nullptr, "workload required");
  OSMOSIS_REQUIRE(workload_->hosts() == cfg_.sw.ports,
                  "workload hosts (" << workload_->hosts()
                                     << ") must equal switch ports ("
                                     << cfg_.sw.ports << ")");
  segmenters_.reserve(static_cast<std::size_t>(cfg_.sw.ports));
  for (int h = 0; h < cfg_.sw.ports; ++h)
    segmenters_.emplace_back(cfg_.cell.user_bytes());
}

void MessageSim::on_slot(std::uint64_t t) {
  for (int h = 0; h < cfg_.sw.ports; ++h) {
    scratch_.clear();
    workload_->poll(h, t, scratch_);
    for (Message& m : scratch_) {
      m.post_slot = t;
      OSMOSIS_REQUIRE(m.src == h, "workload posted a message from the "
                                  "wrong host");
      OSMOSIS_REQUIRE(m.dst >= 0 && m.dst < cfg_.sw.ports && m.dst != m.src,
                      "bad message destination " << m.dst);
      Segmenter& seg = segmenters_[static_cast<std::size_t>(h)];
      seg.post(m);
      reassembler_.expect(m.id, seg.cells_for(m.bytes));
      MsgInfo info;
      info.post_slot = t;
      info.control = m.control;
      info.counted = t >= cfg_.stats_after_slot;
      info_.emplace(m.id, info);
      ++posted_;
    }
  }
}

void MessageSim::on_delivery(const sw::Cell& cell, std::uint64_t t) {
  if (cell.tag == 0) return;  // not a message cell
  if (!reassembler_.receive(cell.tag)) return;
  // Message complete.
  auto it = info_.find(cell.tag);
  OSMOSIS_REQUIRE(it != info_.end(), "completion for unknown message");
  const MsgInfo info = it->second;
  info_.erase(it);
  ++completed_;
  last_completion_slot_ = std::max(last_completion_slot_, t);
  if (info.counted) {
    const double cycles = static_cast<double>(t - info.post_slot) + 1.0;
    latency_.add(cycles);
    (info.control ? control_latency_ : data_latency_).add(cycles);
  }
}

MessageSimResult MessageSim::run() {
  sw::SwitchSimConfig swcfg = cfg_.sw;
  swcfg.on_delivery = [this](const sw::Cell& cell, std::uint64_t t) {
    on_delivery(cell, t);
  };
  sw::SwitchSim sim(swcfg, std::make_unique<Source>(*this));
  MessageSimResult r;
  r.cell_level = sim.run();

  r.posted = posted_;
  r.completed = completed_;
  r.mean_latency_cycles = latency_.mean();
  r.p99_latency_cycles = latency_.p99();
  r.mean_control_latency_cycles = control_latency_.mean();
  r.mean_data_latency_cycles = data_latency_.mean();

  const double cycle = cfg_.cell.cycle_ns();
  const double fixed = 2.0 * (cfg_.hca.sw_stack_ns + cfg_.hca.hca_pipeline_ns) +
                       2.0 * cfg_.cable_one_way_ns;
  r.mean_app_latency_ns = latency_.mean() * cycle + fixed;
  r.control_app_latency_ns = control_latency_.mean() * cycle + fixed;

  r.collective_completion_slot = last_completion_slot_;
  r.all_complete = reassembler_.incomplete() == 0 && posted_ == completed_;
  return r;
}

AppLatencyBudget measure_app_to_app(const MessageSimConfig& cfg,
                                    double measured_fabric_cycles) {
  return app_to_app_budget(cfg.hca,
                           measured_fabric_cycles * cfg.cell.cycle_ns(),
                           2.0 * cfg.cable_one_way_ns);
}

}  // namespace osmosis::host
