#include "src/ckpt/ckpt.hpp"

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace osmosis::ckpt {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

void append_u32(std::string& out, std::uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

void append_u64(std::string& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

}  // namespace

std::uint32_t crc32(std::string_view bytes) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (unsigned char b : bytes) c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void Writer::add_chunk(std::string name, std::string payload) {
  chunks_.emplace_back(std::move(name), std::move(payload));
}

std::string Writer::serialize() const {
  std::string out;
  out.append(kMagic.data(), kMagic.size());
  append_u64(out, chunks_.size());
  for (const auto& [name, payload] : chunks_) {
    append_u32(out, static_cast<std::uint32_t>(name.size()));
    out.append(name);
    append_u64(out, payload.size());
    out.append(payload);
  }
  append_u32(out, crc32(out));
  return out;
}

void Writer::write_file(const std::string& path) const {
  const std::string bytes = serialize();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out || !out.write(bytes.data(),
                           static_cast<std::streamsize>(bytes.size()))) {
      throw Error("cannot write checkpoint file " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error("cannot rename checkpoint file " + tmp + " -> " + path);
  }
}

Reader Reader::from_bytes(std::string bytes) {
  Reader r;
  r.bytes_ = std::move(bytes);
  const std::string& b = r.bytes_;

  if (b.size() < kMagic.size() + sizeof(std::uint64_t) + sizeof(std::uint32_t))
    throw Error("checkpoint too small to be valid");
  if (std::string_view(b.data(), kMagic.size()) != kMagic)
    throw Error("checkpoint magic mismatch (not an osmosis.ckpt.v1 file)");

  // Checksum covers everything before the trailing u32; validate it
  // before trusting any length field.
  const std::size_t body_size = b.size() - sizeof(std::uint32_t);
  std::uint32_t stored = 0;
  std::memcpy(&stored, b.data() + body_size, sizeof stored);
  if (crc32(std::string_view(b.data(), body_size)) != stored)
    throw Error("checkpoint checksum mismatch (corrupted or truncated)");

  std::size_t pos = kMagic.size();
  const auto need = [&](std::size_t n) {
    if (body_size - pos < n) throw Error("checkpoint structure overruns");
  };
  need(sizeof(std::uint64_t));
  std::uint64_t count = 0;
  std::memcpy(&count, b.data() + pos, sizeof count);
  pos += sizeof count;
  for (std::uint64_t i = 0; i < count; ++i) {
    need(sizeof(std::uint32_t));
    std::uint32_t name_len = 0;
    std::memcpy(&name_len, b.data() + pos, sizeof name_len);
    pos += sizeof name_len;
    need(name_len);
    std::string name(b.data() + pos, name_len);
    pos += name_len;
    need(sizeof(std::uint64_t));
    std::uint64_t payload_len = 0;
    std::memcpy(&payload_len, b.data() + pos, sizeof payload_len);
    pos += sizeof payload_len;
    need(static_cast<std::size_t>(payload_len));
    for (const auto& e : r.index_)
      if (e.name == name) throw Error("duplicate checkpoint chunk: " + name);
    r.index_.push_back({std::move(name), pos,
                        static_cast<std::size_t>(payload_len)});
    pos += static_cast<std::size_t>(payload_len);
  }
  if (pos != body_size)
    throw Error("checkpoint has trailing bytes after last chunk");
  return r;
}

Reader Reader::from_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open checkpoint file " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof())
    throw Error("cannot read checkpoint file " + path);
  return from_bytes(std::move(buf).str());
}

bool Reader::has(std::string_view name) const {
  for (const auto& e : index_)
    if (e.name == name) return true;
  return false;
}

Source Reader::chunk(std::string_view name) const {
  for (const auto& e : index_)
    if (e.name == name)
      return Source(std::string_view(bytes_.data() + e.offset, e.size));
  throw Error("checkpoint is missing chunk: " + std::string(name));
}

}  // namespace osmosis::ckpt
