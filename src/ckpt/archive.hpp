// Serialization primitives for the osmosis.ckpt.v1 snapshot format.
//
// A component exposes one member template
//
//   template <class Ar> void io_state(Ar& a) { field(a, x_); field(a, y_); }
//
// that lists its mutable state once; the same code path runs for saving
// (Ar = Sink, appends bytes) and loading (Ar = Source, consumes bytes),
// so save and load can never drift apart. `field` dispatches: classes
// with io_state recurse, everything else resolves to an `io` overload
// below (scalars, strings, and the standard containers the simulators
// use). Unordered containers are written sorted by key so identical
// logical state always produces identical bytes.
//
// Scalars are raw little-endian fixed-width copies of the in-memory
// representation (doubles as IEEE-754 bit patterns, never text): the
// format is bit-exact and self-consistent on one platform but not
// portable across architectures with different endianness or widths.
// See DESIGN.md §10.
//
// All load-side failures throw ckpt::Error — never OSMOSIS_REQUIRE —
// so a corrupted snapshot is reportable and recoverable (the campaign
// runner falls back to re-running the job from scratch).

#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <deque>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

namespace osmosis::ckpt {

class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Byte sink for saving. Never fails; never mutates what it serializes
// (components cast away const in their `save_state` wrappers, which is
// sound because Sink::raw only reads).
class Sink {
 public:
  static constexpr bool kLoading = false;

  void raw(const void* data, std::size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }
  const std::string& bytes() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

// Byte source for loading. Does not own the bytes; the Reader that
// produced it keeps them alive. Every read is bounds-checked and a
// short read throws, so a malformed chunk can never half-load a
// component silently.
class Source {
 public:
  static constexpr bool kLoading = true;

  explicit Source(std::string_view bytes)
      : p_(bytes.data()), end_(bytes.data() + bytes.size()) {}

  void raw(void* data, std::size_t n) {
    if (static_cast<std::size_t>(end_ - p_) < n)
      throw Error("checkpoint chunk truncated mid-field");
    std::memcpy(data, p_, n);
    p_ += n;
  }
  std::size_t remaining() const {
    return static_cast<std::size_t>(end_ - p_);
  }
  // Called after a component finishes loading a chunk: trailing bytes
  // mean the saved layout and the loading code disagree.
  void expect_end() const {
    if (p_ != end_) throw Error("checkpoint chunk has trailing bytes");
  }

 private:
  const char* p_;
  const char* end_;
};

template <class T>
concept Scalar = std::is_arithmetic_v<T> || std::is_enum_v<T>;

template <Scalar T>
void io(Sink& a, T& v) {
  a.raw(&v, sizeof v);
}
template <Scalar T>
void io(Source& a, T& v) {
  a.raw(&v, sizeof v);
}

// Dispatcher: every element/field goes through here so nested structs
// with io_state compose with the container overloads below.
template <class Ar, class T>
void field(Ar& a, T& v) {
  if constexpr (requires { v.io_state(a); }) {
    v.io_state(a);
  } else {
    io(a, v);
  }
}

inline void io(Sink& a, std::string& s) {
  std::uint64_t n = s.size();
  a.raw(&n, sizeof n);
  a.raw(s.data(), s.size());
}
inline void io(Source& a, std::string& s) {
  std::uint64_t n = 0;
  a.raw(&n, sizeof n);
  if (n > a.remaining()) throw Error("string length exceeds chunk");
  s.resize(static_cast<std::size_t>(n));
  a.raw(s.data(), static_cast<std::size_t>(n));
}

namespace detail {

// Each serialized element occupies at least one byte, so a length
// prefix larger than the bytes left is corrupt (and would otherwise be
// an allocation bomb).
inline std::uint64_t load_count(Source& a) {
  std::uint64_t n = 0;
  a.raw(&n, sizeof n);
  if (n > a.remaining()) throw Error("container length exceeds chunk");
  return n;
}

}  // namespace detail

template <class Ar, class T>
void io(Ar& a, std::vector<T>& v) {
  if constexpr (Ar::kLoading) {
    const std::uint64_t n = detail::load_count(a);
    v.clear();
    v.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      T e{};
      field(a, e);
      v.push_back(std::move(e));
    }
  } else {
    std::uint64_t n = v.size();
    a.raw(&n, sizeof n);
    for (auto& e : v) field(a, e);
  }
}

template <class Ar, class T>
void io(Ar& a, std::deque<T>& v) {
  if constexpr (Ar::kLoading) {
    const std::uint64_t n = detail::load_count(a);
    v.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
      T e{};
      field(a, e);
      v.push_back(std::move(e));
    }
  } else {
    std::uint64_t n = v.size();
    a.raw(&n, sizeof n);
    for (auto& e : v) field(a, e);
  }
}

template <class Ar, class T, std::size_t N>
void io(Ar& a, std::array<T, N>& v) {
  for (auto& e : v) field(a, e);
}

template <class Ar, class A, class B>
void io(Ar& a, std::pair<A, B>& p) {
  field(a, p.first);
  field(a, p.second);
}

template <class Ar, class K, class V>
void io(Ar& a, std::map<K, V>& m) {
  if constexpr (Ar::kLoading) {
    const std::uint64_t n = detail::load_count(a);
    m.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
      K k{};
      V v{};
      field(a, k);
      field(a, v);
      m.emplace_hint(m.end(), std::move(k), std::move(v));
    }
  } else {
    std::uint64_t n = m.size();
    a.raw(&n, sizeof n);
    for (auto& kv : m) {
      K k = kv.first;  // keys are const in place; copy for the writer
      field(a, k);
      field(a, kv.second);
    }
  }
}

// Same wire shape as std::map. Loading with an end() hint keeps the
// saved order of equal keys, which the retry queues rely on.
template <class Ar, class K, class V>
void io(Ar& a, std::multimap<K, V>& m) {
  if constexpr (Ar::kLoading) {
    const std::uint64_t n = detail::load_count(a);
    m.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
      K k{};
      V v{};
      field(a, k);
      field(a, v);
      m.emplace_hint(m.end(), std::move(k), std::move(v));
    }
  } else {
    std::uint64_t n = m.size();
    a.raw(&n, sizeof n);
    for (auto& kv : m) {
      K k = kv.first;
      field(a, k);
      field(a, kv.second);
    }
  }
}

// Written sorted by key: hash-table iteration order is not stable
// across processes, and the snapshot must be a pure function of the
// logical state.
template <class Ar, class K, class V, class H, class E>
void io(Ar& a, std::unordered_map<K, V, H, E>& m) {
  if constexpr (Ar::kLoading) {
    const std::uint64_t n = detail::load_count(a);
    m.clear();
    m.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      K k{};
      V v{};
      field(a, k);
      field(a, v);
      m.emplace(std::move(k), std::move(v));
    }
  } else {
    std::uint64_t n = m.size();
    a.raw(&n, sizeof n);
    std::vector<const typename std::unordered_map<K, V, H, E>::value_type*>
        sorted;
    sorted.reserve(m.size());
    for (const auto& kv : m) sorted.push_back(&kv);
    std::sort(sorted.begin(), sorted.end(),
              [](const auto* x, const auto* y) { return x->first < y->first; });
    for (const auto* kv : sorted) {
      K k = kv->first;
      V v = kv->second;
      field(a, k);
      field(a, v);
    }
  }
}

}  // namespace osmosis::ckpt
